#!/usr/bin/env python3
"""Determinism-contract linter for the prediction engine's contract paths.

The repo promises bit-identical predictions regardless of thread count
(see parallel_parity_test). That contract is easy to break silently: one
range-for over an unordered_map in an output-producing loop, one wall
clock read in a sampling stage, one pointer-keyed std::set, and results
depend on allocator addresses or the scheduler. This lint scans the
contract-path sources (src/engine, src/sampling, src/core, and
src/schedule — the SLO simulator promises byte-identical event logs at
every thread count and must never read a real clock — plus
src/service/fault.{h,cc}, whose injected-fault schedule is a pure
function of the configured seed so chaos runs replay bit-identically)
for the constructs that have historically caused exactly that:

  banned-random        std::random_device, rand(), srand() — all sampling
                       randomness must flow through the seeded PRNG plumbing.
  banned-clock         time(), clock(), ::now() — wall/steady clock reads
                       belong in bench/ and the service layer, never in a
                       stage that produces prediction output.
  unordered-iteration  range-for over (or .begin()/.cbegin() on) a variable
                       declared as std::unordered_{map,set,...} — iteration
                       order is hash-seed- and allocator-dependent.
  pointer-key          std::{map,set,...} keyed on a pointer type —
                       ordered by allocation address, i.e. nondeterministic.
  unwaived-sort        std::sort / std::stable_sort without a waiver —
                       std::sort on equal keys is permutation-unstable, and
                       even stable_sort on a nondeterministically-ordered
                       input just launders the nondeterminism.

Waivers: a finding is suppressed by `// det-lint: <tag>` on the same line
or the immediately preceding line. The tag documents WHY the construct is
safe (conventions used in this tree: `fixed-shape` for sorts whose shape
is pinned independent of thread count, `order-independent` for reductions
that commute exactly, `sorted-output` for sorts that canonicalize order).
A waiver without a tag is itself a finding.

Usage:
  tools/determinism_lint.py                 # scan the contract paths
  tools/determinism_lint.py FILE...         # scan specific files
  tools/determinism_lint.py --self-test     # run the fixture suite

Exit status: 0 clean, 1 findings (or fixture failures), 2 usage error.
"""

import argparse
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CONTRACT_DIRS = ("src/engine", "src/sampling", "src/core", "src/schedule")
# Individual contract files outside the contract dirs. The fault injector
# lives in the service layer (a test/bench seam), but its schedule is
# seed-derived by contract: the decision for (fingerprint, attempt) must be
# a pure function of the seed — no std::random_device, no clock reads — so
# chaos runs replay bit-identically across thread counts. Same rules, same
# waiver tags; no new waiver categories.
CONTRACT_FILES = ("src/service/fault.cc", "src/service/fault.h")
FIXTURE_DIR = "tests/determinism_lint"
SOURCE_EXTS = (".cc", ".h")

WAIVER_RE = re.compile(r"det-lint:\s*([A-Za-z0-9_-]+)?")

RANDOM_RE = re.compile(r"\bstd::random_device\b|\b(?:s?rand)\s*\(")
CLOCK_RE = re.compile(r"\b(?:time|clock)\s*\(|::now\s*\(")
SORT_RE = re.compile(r"\bstd::(?:sort|stable_sort)\s*\(")
# std::map/std::set whose FIRST template argument is a pointer type. The
# first argument is everything up to the first top-level comma or the
# closing angle bracket; a '*' in it means pointer-keyed.
POINTER_KEY_RE = re.compile(
    r"\bstd::(?:multi)?(?:map|set)\s*<\s*(?:const\s+)?[\w:]+(?:\s*<[^<>]*>)?\s*\*"
)
UNORDERED_DECL_RE = re.compile(r"\bstd::unordered_(?:multi)?(?:map|set)\s*<")
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;)]*:\s*\*?(\w+)\s*\)")
BEGIN_CALL_RE = re.compile(r"\b(\w+)\s*\.\s*c?begin\s*\(")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.path, self.line, self.rule, self.message)


def strip_code(lines):
    """Returns (code_lines, waivers) where code_lines have comments and
    string/char literals blanked (lengths preserved) and waivers maps a
    line number to the waiver tag found in its comment (None = untagged).
    """
    code_lines = []
    waivers = {}
    in_block = False
    for lineno, line in enumerate(lines, start=1):
        out = []
        i = 0
        n = len(line)
        while i < n:
            if in_block:
                end = line.find("*/", i)
                comment = line[i:] if end < 0 else line[i:end]
                m = WAIVER_RE.search(comment)
                if m:
                    waivers[lineno] = m.group(1)
                if end < 0:
                    out.append(" " * (n - i))
                    i = n
                else:
                    out.append(" " * (end + 2 - i))
                    i = end + 2
                    in_block = False
                continue
            ch = line[i]
            if ch == "/" and i + 1 < n and line[i + 1] == "/":
                m = WAIVER_RE.search(line[i:])
                if m:
                    waivers[lineno] = m.group(1)
                out.append(" " * (n - i))
                i = n
            elif ch == "/" and i + 1 < n and line[i + 1] == "*":
                in_block = True
                out.append("  ")
                i += 2
            elif ch == '"' or ch == "'":
                quote = ch
                out.append(quote)
                i += 1
                while i < n:
                    if line[i] == "\\" and i + 1 < n:
                        out.append("  ")
                        i += 2
                    elif line[i] == quote:
                        out.append(quote)
                        i += 1
                        break
                    else:
                        out.append(" ")
                        i += 1
            else:
                out.append(ch)
                i += 1
        code_lines.append("".join(out))
    return code_lines, waivers


def unordered_decl_names(code_lines):
    """Names declared (anywhere in the file) with an unordered container
    type: `std::unordered_map<K, V> name ...`. Template arguments may nest,
    so the closing '>' is found by bracket counting, not regex."""
    names = set()
    text = "\n".join(code_lines)
    for m in UNORDERED_DECL_RE.finditer(text):
        i = m.end() - 1  # at '<'
        depth = 0
        while i < len(text):
            if text[i] == "<":
                depth += 1
            elif text[i] == ">":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        if i >= len(text):
            continue
        # The declared name is the first identifier after the closing '>'
        # (skipping &, *, whitespace). `using Foo = std::unordered_...` and
        # function return types produce no match here, which is fine: the
        # lint tracks variables, not aliases.
        rest = text[i + 1 : i + 200]
        name_m = re.match(r"[\s&*]*(\w+)", rest)
        if name_m and not name_m.group(1)[0].isdigit():
            names.add(name_m.group(1))
    return names


def sibling_header_names(path):
    """Unordered-declared names from the same-stem .h next to a .cc, so
    member fields (`std::unordered_map<...> counts_;` in foo.h) are tracked
    when foo.cc iterates them."""
    stem, ext = os.path.splitext(path)
    if ext != ".cc":
        return set()
    header = stem + ".h"
    if not os.path.isfile(header):
        return set()
    with open(header, "r", encoding="utf-8", errors="replace") as f:
        code_lines, _ = strip_code(f.read().splitlines())
    return unordered_decl_names(code_lines)


def lint_file(path, display_path=None):
    display = display_path if display_path is not None else path
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        lines = f.read().splitlines()
    code_lines, waivers = strip_code(lines)
    unordered = unordered_decl_names(code_lines) | sibling_header_names(path)

    findings = []
    used_waivers = set()

    def waived(lineno):
        for candidate in (lineno, lineno - 1):
            if candidate in waivers:
                used_waivers.add(candidate)
                if waivers[candidate] is None:
                    findings.append(
                        Finding(display, candidate, "untagged-waiver",
                                "det-lint waiver without a tag: name the "
                                "reason (e.g. fixed-shape, order-independent)"))
                return True
        return False

    for lineno, code in enumerate(code_lines, start=1):
        if RANDOM_RE.search(code) and not waived(lineno):
            findings.append(Finding(
                display, lineno, "banned-random",
                "unseeded randomness on a contract path; route through the "
                "seeded PRNG plumbing"))
        if CLOCK_RE.search(code) and not waived(lineno):
            findings.append(Finding(
                display, lineno, "banned-clock",
                "clock read on a contract path; timing belongs in bench/ "
                "or the service layer"))
        if POINTER_KEY_RE.search(code) and not waived(lineno):
            findings.append(Finding(
                display, lineno, "pointer-key",
                "ordered container keyed on a pointer: iteration order is "
                "allocation-address order"))
        if SORT_RE.search(code) and not waived(lineno):
            findings.append(Finding(
                display, lineno, "unwaived-sort",
                "std::sort on a contract path needs a det-lint waiver "
                "stating why its result is thread-count-invariant"))
        for m in RANGE_FOR_RE.finditer(code):
            if m.group(1) in unordered and not waived(lineno):
                findings.append(Finding(
                    display, lineno, "unordered-iteration",
                    "range-for over unordered container '%s': iteration "
                    "order is hash-seed-dependent" % m.group(1)))
        for m in BEGIN_CALL_RE.finditer(code):
            if m.group(1) in unordered and not waived(lineno):
                findings.append(Finding(
                    display, lineno, "unordered-iteration",
                    "iterator over unordered container '%s': iteration "
                    "order is hash-seed-dependent" % m.group(1)))

    # A waiver nothing used is stale: it either outlived the construct it
    # excused or was misplaced — both worth a finding so waivers stay honest.
    for lineno in sorted(set(waivers) - used_waivers):
        findings.append(Finding(
            display, lineno, "stale-waiver",
            "det-lint waiver with no matching finding on this or the next "
            "line"))
    return findings


def contract_files():
    files = []
    for rel in CONTRACT_DIRS:
        root = os.path.join(REPO_ROOT, rel)
        for dirpath, _, filenames in sorted(os.walk(root)):
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTS):
                    files.append(os.path.join(dirpath, name))
    for rel in CONTRACT_FILES:
        path = os.path.join(REPO_ROOT, rel)
        if os.path.isfile(path):
            files.append(path)
    return files


def run_scan(paths):
    findings = []
    for path in paths:
        rel = os.path.relpath(path, REPO_ROOT)
        display = rel if not rel.startswith("..") else path
        findings.extend(lint_file(path, display))
    for f in findings:
        print(f)
    if findings:
        print("determinism-lint: %d finding(s)" % len(findings))
        return 1
    print("determinism-lint: clean (%d file(s) scanned)" % len(paths))
    return 0


def run_self_test():
    fixture_root = os.path.join(REPO_ROOT, FIXTURE_DIR)
    if not os.path.isdir(fixture_root):
        print("determinism-lint: fixture dir missing: %s" % fixture_root)
        return 1
    failures = 0
    checked = 0
    for name in sorted(os.listdir(fixture_root)):
        if not name.endswith(SOURCE_EXTS):
            continue
        path = os.path.join(fixture_root, name)
        findings = lint_file(path, os.path.join(FIXTURE_DIR, name))
        checked += 1
        if name.startswith("bad_"):
            if not findings:
                print("FAIL %s: expected >=1 finding, got none" % name)
                failures += 1
            else:
                print("ok   %s: %d finding(s) as expected" % (name, len(findings)))
        elif name.startswith("good_"):
            if findings:
                print("FAIL %s: expected clean, got:" % name)
                for f in findings:
                    print("     %s" % f)
                failures += 1
            else:
                print("ok   %s: clean as expected" % name)
        else:
            print("FAIL %s: fixture names must start with bad_ or good_" % name)
            failures += 1
    if checked == 0:
        print("determinism-lint: no fixtures found in %s" % fixture_root)
        return 1
    if failures:
        print("determinism-lint self-test: %d failure(s)" % failures)
        return 1
    print("determinism-lint self-test: %d fixture(s) ok" % checked)
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description="determinism-contract lint (see module docstring)")
    parser.add_argument("paths", nargs="*",
                        help="files to scan (default: the contract paths)")
    parser.add_argument("--self-test", action="store_true",
                        help="validate the linter against the fixture suite")
    args = parser.parse_args(argv)
    if args.self_test:
        if args.paths:
            parser.error("--self-test takes no paths")
        return run_self_test()
    paths = args.paths if args.paths else contract_files()
    for p in paths:
        if not os.path.isfile(p):
            print("determinism-lint: no such file: %s" % p)
            return 2
    return run_scan(paths)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
