// Tests for the core predictor: the variance engine (paper §5/Algorithm 3)
// against hand-computed cases, the predictor variants, and the evaluation
// metrics.

#include <gtest/gtest.h>

#include <cmath>

#include "core/metrics.h"
#include "core/predictor.h"
#include "core/variance.h"
#include "math/rng.h"

namespace uqp {
namespace {

CostUnits UnitTestUnits() {
  CostUnits units;
  // Simple round numbers: mean u+1, sd 10% of mean.
  for (int u = 0; u < kNumCostUnits; ++u) {
    const double mean = static_cast<double>(u + 1);
    units.Get(u) = Gaussian(mean, 0.01 * mean * mean);
  }
  return units;
}

/// Artifacts for a single operator whose only nonzero cost function is a
/// C2' (b0 X + b1) on one cost unit, with X ~ N(mu, var).
struct SingleOpArtifacts {
  PlanEstimates estimates;
  std::vector<OperatorCostFunctions> funcs;

  SingleOpArtifacts(int unit, double b0, double b1, double mu, double var) {
    SelectivityEstimate est;
    est.rho = mu;
    est.variance = var;
    est.leaf_begin = 0;
    est.leaf_end = 1;
    est.var_components = {var};
    estimates.ops = {est};
    estimates.variable_of_node = {0};
    estimates.leaf_sample_rows = {100.0};

    OperatorCostFunctions ocf;
    ocf.node_id = 0;
    ocf.op_type = OpType::kIndexScan;
    ocf.var_own = 0;
    for (int u = 0; u < kNumCostUnits; ++u) {
      ocf.funcs[u].type = CostFuncType::kConstant;
      ocf.funcs[u].b = {0.0};
    }
    ocf.funcs[unit].type = CostFuncType::kLinearOutput;
    ocf.funcs[unit].b = {b0, b1};
    funcs = {ocf};
  }
};

TEST(VarianceEngine, SingleLinearOperatorHandComputed) {
  // G_c = b0 X + b1 on unit 2 (mean 3, var 0.09); X ~ N(0.4, 0.01).
  const double b0 = 100.0, b1 = 10.0, mu_x = 0.4, var_x = 0.01;
  SingleOpArtifacts art(2, b0, b1, mu_x, var_x);
  const CostUnits units = UnitTestUnits();
  const double mu_c = 3.0, var_c = 0.09;

  const VarianceEngine engine(&art.estimates, &art.funcs, &units);
  const VarianceBreakdown out = engine.Compute();

  const double e_g = b0 * mu_x + b1;  // 50
  EXPECT_DOUBLE_EQ(out.expected_work[2], e_g);
  EXPECT_DOUBLE_EQ(out.mean, e_g * mu_c);
  // Var[G c] = E[G]² Var[c] + (mu_c² + Var[c]) Var[G],
  // Var[G] = b0² var_x = 1.
  const double var_g = b0 * b0 * var_x;
  EXPECT_NEAR(out.variance, e_g * e_g * var_c + (mu_c * mu_c + var_c) * var_g,
              1e-9);
  EXPECT_NEAR(out.var_cost_units, e_g * e_g * var_c, 1e-9);
  EXPECT_NEAR(out.var_selectivity, (mu_c * mu_c + var_c) * var_g, 1e-9);
  EXPECT_DOUBLE_EQ(out.var_cov_bounds, 0.0);
}

TEST(VarianceEngine, VariantsZeroTheRightParts) {
  SingleOpArtifacts art(2, 100.0, 10.0, 0.4, 0.01);
  const CostUnits units = UnitTestUnits();

  const VarianceEngine all(&art.estimates, &art.funcs, &units,
                           PredictorVariant::kAll);
  const VarianceEngine no_c(&art.estimates, &art.funcs, &units,
                            PredictorVariant::kNoVarC);
  const VarianceEngine no_x(&art.estimates, &art.funcs, &units,
                            PredictorVariant::kNoVarX);
  const double v_all = all.Compute().variance;
  const double v_no_c = no_c.Compute().variance;
  const double v_no_x = no_x.Compute().variance;
  EXPECT_LT(v_no_c, v_all);
  EXPECT_LT(v_no_x, v_all);
  EXPECT_DOUBLE_EQ(no_c.Compute().var_cost_units, 0.0);
  EXPECT_DOUBLE_EQ(no_x.Compute().var_selectivity, 0.0);
  // Dropping both leaves nothing.
  SingleOpArtifacts frozen(2, 100.0, 10.0, 0.4, 0.0);
  const CostUnits no_var_units = units.WithoutVariance();
  const VarianceEngine none(&frozen.estimates, &frozen.funcs, &no_var_units);
  EXPECT_DOUBLE_EQ(none.Compute().variance, 0.0);
}

TEST(VarianceEngine, SharedVariableAcrossUnitsAddsCovariance) {
  // The same X feeds units 2 and 4: Cov(G_2 c_2, G_4 c_4) =
  // mu_2 mu_4 b0 b0' Var[X] > 0 must appear in the total.
  SingleOpArtifacts art(2, 100.0, 0.0, 0.4, 0.01);
  art.funcs[0].funcs[4].type = CostFuncType::kLinearOutput;
  art.funcs[0].funcs[4].b = {50.0, 0.0};
  const CostUnits units = UnitTestUnits();
  const VarianceEngine engine(&art.estimates, &art.funcs, &units);
  const VarianceBreakdown out = engine.Compute();

  const double mu2 = 3.0, mu4 = 5.0, var2 = 0.09, var4 = 0.25;
  const double var_x = 0.01;
  const double expected =
      // unit 2 alone
      std::pow(100.0 * 0.4, 2) * var2 + (mu2 * mu2 + var2) * 100.0 * 100.0 * var_x +
      // unit 4 alone
      std::pow(50.0 * 0.4, 2) * var4 + (mu4 * mu4 + var4) * 50.0 * 50.0 * var_x +
      // cross-unit covariance, both directions
      2.0 * mu2 * mu4 * 100.0 * 50.0 * var_x;
  EXPECT_NEAR(out.variance, expected, 1e-6);
}

TEST(VarianceEngine, IndependentVariablesDoNotCovary) {
  // Two operators over disjoint leaf spans: no covariance terms at all.
  PlanEstimates estimates;
  SelectivityEstimate a, b;
  a.rho = 0.3;
  a.variance = 0.01;
  a.leaf_begin = 0;
  a.leaf_end = 1;
  a.var_components = {0.01};
  b.rho = 0.6;
  b.variance = 0.04;
  b.leaf_begin = 1;
  b.leaf_end = 2;
  b.var_components = {0.04};
  estimates.ops = {a, b};
  estimates.variable_of_node = {0, 1};
  estimates.leaf_sample_rows = {100.0, 100.0};

  OperatorCostFunctions f0, f1;
  for (int u = 0; u < kNumCostUnits; ++u) {
    f0.funcs[u].type = CostFuncType::kConstant;
    f0.funcs[u].b = {0.0};
    f1.funcs[u].type = CostFuncType::kConstant;
    f1.funcs[u].b = {0.0};
  }
  f0.node_id = 0;
  f0.var_own = 0;
  f0.funcs[2] = {CostFuncType::kLinearOutput, {10.0, 0.0}};
  f1.node_id = 1;
  f1.var_own = 1;
  f1.funcs[2] = {CostFuncType::kLinearOutput, {20.0, 0.0}};
  std::vector<OperatorCostFunctions> funcs = {f0, f1};

  const CostUnits units = UnitTestUnits();
  const VarianceEngine engine(&estimates, &funcs, &units);
  const VarianceBreakdown out = engine.Compute();
  // Var[G_2] = 100 * 0.01 + 400 * 0.04 = 17 (no cross term).
  const double mu_c = 3.0, var_c = 0.09;
  const double e_g = 10.0 * 0.3 + 20.0 * 0.6;
  EXPECT_NEAR(out.variance, e_g * e_g * var_c + (mu_c * mu_c + var_c) * 17.0,
              1e-9);
}

TEST(VarianceEngine, NestedVariablesAddBoundedCovariance) {
  // Operator 1 (descendant, leaf 0..1) and operator 0 (ancestor, 0..2),
  // both sampled: the cross term must be a bounded, positive addition.
  PlanEstimates estimates;
  SelectivityEstimate anc, desc;
  desc.rho = 0.3;
  desc.variance = 0.01;
  desc.leaf_begin = 0;
  desc.leaf_end = 1;
  desc.var_components = {0.01};
  anc.rho = 0.1;
  anc.variance = 0.02;
  anc.leaf_begin = 0;
  anc.leaf_end = 2;
  anc.var_components = {0.015, 0.005};
  estimates.ops = {anc, desc};
  estimates.variable_of_node = {0, 1};
  estimates.leaf_sample_rows = {50.0, 50.0};

  OperatorCostFunctions f0, f1;
  for (int u = 0; u < kNumCostUnits; ++u) {
    f0.funcs[u].type = CostFuncType::kConstant;
    f0.funcs[u].b = {0.0};
    f1.funcs[u].type = CostFuncType::kConstant;
    f1.funcs[u].b = {0.0};
  }
  f0.node_id = 0;
  f0.var_own = 0;
  f0.funcs[2] = {CostFuncType::kLinearOutput, {10.0, 0.0}};
  f1.node_id = 1;
  f1.var_own = 1;
  f1.funcs[2] = {CostFuncType::kLinearOutput, {20.0, 0.0}};
  std::vector<OperatorCostFunctions> funcs = {f0, f1};

  const CostUnits units = UnitTestUnits();
  const VarianceBreakdown with_cov =
      VarianceEngine(&estimates, &funcs, &units, PredictorVariant::kAll).Compute();
  const VarianceBreakdown no_cov =
      VarianceEngine(&estimates, &funcs, &units, PredictorVariant::kNoCov)
          .Compute();
  EXPECT_GT(with_cov.var_cov_bounds, 0.0);
  EXPECT_DOUBLE_EQ(no_cov.var_cov_bounds, 0.0);
  EXPECT_GT(with_cov.variance, no_cov.variance);
  // The bound cannot exceed Cauchy-Schwarz on the two terms.
  const double cs = 2.0 * 3.0 * 3.0 * 10.0 * 20.0 * std::sqrt(0.01 * 0.02);
  EXPECT_LE(with_cov.var_cov_bounds, cs * (1.0 + 0.09 / 9.0) + 1e-9);
}

TEST(VarianceEngine, BoundKindOrdering) {
  PlanEstimates estimates;
  SelectivityEstimate anc, desc;
  desc.rho = 0.3;
  desc.variance = 0.01;
  desc.leaf_begin = 0;
  desc.leaf_end = 1;
  desc.var_components = {0.01};
  anc.rho = 0.1;
  anc.variance = 0.02;
  anc.leaf_begin = 0;
  anc.leaf_end = 2;
  anc.var_components = {0.015, 0.005};
  estimates.ops = {anc, desc};
  estimates.variable_of_node = {0, 1};
  estimates.leaf_sample_rows = {50.0, 50.0};
  OperatorCostFunctions f0, f1;
  for (int u = 0; u < kNumCostUnits; ++u) {
    f0.funcs[u] = {CostFuncType::kConstant, {0.0}};
    f1.funcs[u] = {CostFuncType::kConstant, {0.0}};
  }
  f0.node_id = 0;
  f0.var_own = 0;
  f0.funcs[2] = {CostFuncType::kLinearOutput, {10.0, 0.0}};
  f1.node_id = 1;
  f1.var_own = 1;
  f1.funcs[2] = {CostFuncType::kLinearOutput, {20.0, 0.0}};
  std::vector<OperatorCostFunctions> funcs = {f0, f1};
  const CostUnits units = UnitTestUnits();

  auto bounded_part = [&](CovarianceBoundKind kind) {
    return VarianceEngine(&estimates, &funcs, &units, PredictorVariant::kAll,
                          kind)
        .Compute()
        .var_cov_bounds;
  };
  const double best = bounded_part(CovarianceBoundKind::kBest);
  const double b1 = bounded_part(CovarianceBoundKind::kB1);
  const double b2 = bounded_part(CovarianceBoundKind::kB2);
  const double b3 = bounded_part(CovarianceBoundKind::kB3);
  EXPECT_LE(best, b1 + 1e-15);
  EXPECT_LE(best, b3 + 1e-15);
  EXPECT_LE(b1, b2 + 1e-15);
}

// ---------- Prediction interface ----------

TEST(Prediction, ConfidenceIntervalAndProbBelow) {
  Prediction p;
  p.breakdown.mean = 100.0;
  p.breakdown.variance = 25.0;
  EXPECT_NEAR(p.ProbBelow(100.0), 0.5, 1e-12);
  EXPECT_NEAR(p.ProbBelow(105.0), NormalCdf(1.0), 1e-12);
  double lo = 0.0, hi = 0.0;
  p.ConfidenceInterval(0.7, &lo, &hi);
  EXPECT_NEAR(0.5 * (lo + hi), 100.0, 1e-9);
  // "With probability 70% between lo and hi."
  EXPECT_NEAR(p.ProbBelow(hi) - p.ProbBelow(lo), 0.7, 1e-9);
  double lo95 = 0.0, hi95 = 0.0;
  p.ConfidenceInterval(0.95, &lo95, &hi95);
  EXPECT_LT(lo95, lo);
  EXPECT_GT(hi95, hi);
}

// ---------- Metrics ----------

TEST(Metrics, QueryOutcomeErrors) {
  QueryOutcome q;
  q.predicted_mean = 10.0;
  q.predicted_stddev = 2.0;
  q.actual_time = 14.0;
  EXPECT_DOUBLE_EQ(q.error(), 4.0);
  EXPECT_DOUBLE_EQ(q.normalized_error(), 2.0);
  q.predicted_stddev = 0.0;
  EXPECT_TRUE(std::isinf(q.normalized_error()));
  q.actual_time = 10.0;
  EXPECT_DOUBLE_EQ(q.normalized_error(), 0.0);
}

TEST(Metrics, PerfectRankAgreementGivesSpearmanOne) {
  std::vector<QueryOutcome> outcomes;
  for (int i = 1; i <= 20; ++i) {
    QueryOutcome q;
    q.predicted_mean = 100.0;
    q.predicted_stddev = i;
    q.actual_time = 100.0 + 0.8 * i;  // error grows with sigma
    outcomes.push_back(q);
  }
  const EvaluationSummary s = Evaluate(outcomes);
  EXPECT_DOUBLE_EQ(s.spearman, 1.0);
  EXPECT_NEAR(s.pearson, 1.0, 1e-12);
  EXPECT_EQ(s.num_queries, 20);
}

TEST(Metrics, CalibratedPredictionsHaveSmallDn) {
  Rng rng(9);
  std::vector<QueryOutcome> outcomes;
  for (int i = 0; i < 3000; ++i) {
    QueryOutcome q;
    q.predicted_mean = 100.0;
    q.predicted_stddev = 5.0;
    q.actual_time = 100.0 + rng.NextGaussian(0.0, 5.0);
    outcomes.push_back(q);
  }
  EXPECT_LT(Evaluate(outcomes).dn, 0.03);
}

TEST(Metrics, OutlierProbeTrimsLargestSigma) {
  std::vector<QueryOutcome> outcomes;
  for (int i = 1; i <= 10; ++i) {
    QueryOutcome q;
    q.predicted_mean = 0.0;
    q.predicted_stddev = i;
    q.actual_time = (i % 2 == 0) ? i : 0.5 * i;  // noisy but increasing
    outcomes.push_back(q);
  }
  QueryOutcome outlier;
  outlier.predicted_mean = 0.0;
  outlier.predicted_stddev = 1000.0;
  outlier.actual_time = 2000.0;
  outcomes.push_back(outlier);
  const OutlierProbe probe = ProbeOutlierRobustness(outcomes);
  // Pearson moves more than Spearman when the extreme point disappears.
  EXPECT_GT(std::fabs(probe.pearson_all - probe.pearson_trimmed) + 1e-9,
            std::fabs(probe.spearman_all - probe.spearman_trimmed));
}

TEST(Metrics, VariantNamesAreStable) {
  EXPECT_STREQ(PredictorVariantName(PredictorVariant::kAll), "All");
  EXPECT_STREQ(PredictorVariantName(PredictorVariant::kNoVarC), "NoVar[c]");
  EXPECT_STREQ(PredictorVariantName(PredictorVariant::kNoVarX), "NoVar[X]");
  EXPECT_STREQ(PredictorVariantName(PredictorVariant::kNoCov), "NoCov");
}

}  // namespace
}  // namespace uqp
