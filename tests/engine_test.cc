// Executor correctness tests: every physical operator is checked against a
// naive reference evaluation on small synthetic tables, and the resource
// counters are checked against their defining formulas.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "engine/cardinality.h"
#include "engine/executor.h"
#include "engine/plan.h"
#include "engine/planner.h"
#include "math/rng.h"
#include "storage/database.h"

namespace uqp {
namespace {

/// Small deterministic test database:
///   t1(a int, b double, tag string)  -- 200 rows, a = i % 50, b = i
///   t2(k int, w double)              -- 40 rows,  k = i % 50, w = 2 i
Database MakeTestDb() {
  Database db("engine-test");
  {
    Table t1("t1", Schema({{"a", ValueType::kInt64},
                           {"b", ValueType::kDouble},
                           {"tag", ValueType::kString, 4}}));
    for (int i = 0; i < 200; ++i) {
      t1.AppendRow({Value::Int64(i % 50), Value::Double(i),
                    Value::String(i % 3 == 0 ? "x" : "y")});
    }
    t1.DeclareIndex(1);
    db.AddTable(std::move(t1));
  }
  {
    Table t2("t2", Schema({{"k", ValueType::kInt64}, {"w", ValueType::kDouble}}));
    for (int i = 0; i < 40; ++i) {
      t2.AppendRow({Value::Int64(i % 50), Value::Double(2 * i)});
    }
    db.AddTable(std::move(t2));
  }
  db.AnalyzeAll(16);
  return db;
}

ExecResult MustExecute(const Database& db, Plan* plan,
                       ExecOptions options = ExecOptions()) {
  EXPECT_TRUE(plan->Finalize(db).ok());
  Executor executor(&db);
  auto result = executor.Execute(*plan, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

/// Order-insensitive multiset comparison of result rows.
std::multiset<std::string> RowFingerprints(const RowBlock& block) {
  std::multiset<std::string> out;
  for (int64_t r = 0; r < block.num_rows(); ++r) {
    std::string key;
    for (int c = 0; c < block.schema.num_columns(); ++c) {
      key += block.row(r)[c].ToString();
      key += "|";
    }
    out.insert(key);
  }
  return out;
}

// ---------- Scans ----------

TEST(Executor, SeqScanFilterMatchesReference) {
  Database db = MakeTestDb();
  Plan plan(MakeSeqScan("t1", Expr::Cmp(0, CmpOp::kLt, Value::Int64(10))));
  const ExecResult result = MustExecute(db, &plan);
  // Reference: a = i % 50 < 10 <-> i % 50 in [0, 10) -> 4 * 10 = 40 rows.
  EXPECT_EQ(result.output.num_rows(), 40);
  for (int64_t r = 0; r < result.output.num_rows(); ++r) {
    EXPECT_LT(result.output.row(r)[0].AsInt64(), 10);
  }
}

TEST(Executor, SeqScanCountersMatchFormulas) {
  Database db = MakeTestDb();
  Plan plan(MakeSeqScan("t1", Expr::Cmp(0, CmpOp::kLt, Value::Int64(10))));
  const ExecResult result = MustExecute(db, &plan);
  const Table& t1 = db.GetTable("t1");
  const OpStats& st = result.ops[0];
  EXPECT_DOUBLE_EQ(st.actual.ns, static_cast<double>(t1.num_pages()));
  EXPECT_DOUBLE_EQ(st.actual.nt, 200.0);
  EXPECT_DOUBLE_EQ(st.actual.no, 200.0);  // one comparison per tuple
  EXPECT_DOUBLE_EQ(st.actual.nr, 0.0);
  EXPECT_DOUBLE_EQ(st.out_rows, 40.0);
  EXPECT_DOUBLE_EQ(st.leaf_row_product, 200.0);
  EXPECT_DOUBLE_EQ(st.selectivity(), 0.2);
}

class IndexVsSeqScan : public ::testing::TestWithParam<double> {};

TEST_P(IndexVsSeqScan, SameResults) {
  // Index scan over b <= v must return exactly what the seq scan returns.
  const double v = GetParam();
  Database db = MakeTestDb();
  Plan seq(MakeSeqScan("t1", Expr::Cmp(1, CmpOp::kLe, Value::Double(v))));
  Plan idx(MakeIndexScan("t1", 1, Expr::Cmp(1, CmpOp::kLe, Value::Double(v))));
  const ExecResult rs = MustExecute(db, &seq);
  const ExecResult ri = MustExecute(db, &idx);
  EXPECT_EQ(RowFingerprints(rs.output), RowFingerprints(ri.output));
}

INSTANTIATE_TEST_SUITE_P(Selectivities, IndexVsSeqScan,
                         ::testing::Values(-1.0, 0.0, 10.0, 99.5, 150.0, 500.0));

TEST(Executor, IndexScanWithResidualFilter) {
  Database db = MakeTestDb();
  // Range on b plus residual on tag.
  ExprPtr pred = Expr::And(Expr::Cmp(1, CmpOp::kLe, Value::Double(29.0)),
                           Expr::StrEq(2, "x"));
  Plan seq(MakeSeqScan("t1", pred));
  Plan idx(MakeIndexScan("t1", 1, pred));
  const ExecResult rs = MustExecute(db, &seq);
  const ExecResult ri = MustExecute(db, &idx);
  EXPECT_EQ(RowFingerprints(rs.output), RowFingerprints(ri.output));
  // Index counters scale with range matches (30), output is smaller.
  EXPECT_DOUBLE_EQ(ri.ops[0].actual.nt, 30.0);
  EXPECT_EQ(ri.output.num_rows(), 10);  // i % 3 == 0 among 0..29
  EXPECT_GT(ri.ops[0].actual.nr, 0.0);
  EXPECT_LE(ri.ops[0].actual.nr, static_cast<double>(db.GetTable("t1").num_pages()));
}

TEST(Executor, IndexScanResidualBatchParity) {
  // The batched residual-filter path (gather + EvalPredicateBatch +
  // run-copy) must be indistinguishable from tuple-at-a-time execution:
  // same rows in the same order, same provenance, same counters.
  Database db = MakeTestDb();
  ExprPtr pred = Expr::And(Expr::Cmp(1, CmpOp::kLe, Value::Double(97.0)),
                           Expr::StrEq(2, "x"));
  Plan tuple_plan(MakeIndexScan("t1", 1, pred));
  Plan batch_plan(MakeIndexScan("t1", 1, pred));

  ExecOptions tuple_opts;
  tuple_opts.max_batch_size = 1;  // reproduces the historical per-row loop
  tuple_opts.collect_provenance = true;
  ExecOptions batch_opts;
  batch_opts.max_batch_size = 7;  // odd chunk: exercises the tail chunk
  batch_opts.collect_provenance = true;

  const ExecResult rt = MustExecute(db, &tuple_plan, tuple_opts);
  const ExecResult rb = MustExecute(db, &batch_plan, batch_opts);

  EXPECT_EQ(rb.output.values.size(), rt.output.values.size());
  EXPECT_EQ(RowFingerprints(rb.output), RowFingerprints(rt.output));
  EXPECT_EQ(rb.output.prov, rt.output.prov);
  ASSERT_EQ(rb.ops.size(), rt.ops.size());
  const OpStats& st = rt.ops[0];
  const OpStats& sb = rb.ops[0];
  EXPECT_DOUBLE_EQ(sb.out_rows, st.out_rows);
  EXPECT_DOUBLE_EQ(sb.actual.ni, st.actual.ni);
  EXPECT_DOUBLE_EQ(sb.actual.nr, st.actual.nr);
  EXPECT_DOUBLE_EQ(sb.actual.nt, st.actual.nt);
  EXPECT_DOUBLE_EQ(sb.actual.no, st.actual.no);
}

TEST(Executor, AppendSelectedProvenanceModesBatchParity) {
  // AppendSelected serves both provenance modes: contiguous chunks (seq
  // scans, ids = base + lane) and gathered rows (index scans, ids from
  // the rid array). Both modes must produce identical rows, provenance
  // and counters at every batch size, with provenance on and off.
  Database db = MakeTestDb();
  ExprPtr pred = Expr::And(Expr::Cmp(1, CmpOp::kLe, Value::Double(97.0)),
                           Expr::StrEq(2, "x"));
  for (const bool prov : {false, true}) {
    ExecOptions base_opts;
    base_opts.collect_provenance = prov;
    base_opts.max_batch_size = 1;

    Plan seq_ref(MakeSeqScan("t1", pred));
    Plan idx_ref(MakeIndexScan("t1", 1, pred));
    const ExecResult seq_baseline = MustExecute(db, &seq_ref, base_opts);
    const ExecResult idx_baseline = MustExecute(db, &idx_ref, base_opts);

    for (const int64_t batch : {int64_t{1}, int64_t{7}, int64_t{1024}}) {
      ExecOptions opts = base_opts;
      opts.max_batch_size = batch;
      Plan seq_plan(MakeSeqScan("t1", pred));
      Plan idx_plan(MakeIndexScan("t1", 1, pred));
      const ExecResult rs = MustExecute(db, &seq_plan, opts);
      const ExecResult ri = MustExecute(db, &idx_plan, opts);

      // Contiguous mode vs its tuple-at-a-time baseline.
      EXPECT_EQ(RowFingerprints(rs.output), RowFingerprints(seq_baseline.output))
          << "seq batch " << batch << " prov " << prov;
      EXPECT_EQ(rs.output.prov, seq_baseline.output.prov);
      EXPECT_EQ(rs.output.prov_width, prov ? 1 : 0);
      // Rid mode vs its baseline.
      EXPECT_EQ(RowFingerprints(ri.output), RowFingerprints(idx_baseline.output))
          << "idx batch " << batch << " prov " << prov;
      EXPECT_EQ(ri.output.prov, idx_baseline.output.prov);
      // Across modes: same rows in the same (b-ordered == row-ordered for
      // MakeTestDb's monotone b column) order, same provenance ids.
      EXPECT_EQ(RowFingerprints(ri.output), RowFingerprints(rs.output));
      if (prov) EXPECT_EQ(ri.output.prov, rs.output.prov);
      EXPECT_DOUBLE_EQ(rs.ops[0].out_rows, ri.ops[0].out_rows);
    }
  }
}

// ---------- Joins ----------

ExprPtr NoPred() { return nullptr; }

std::multiset<std::string> ReferenceJoin(const Database& db, double t1_b_max) {
  // t1 (b <= max) equi-join t2 on a = k.
  std::multiset<std::string> out;
  const Table& t1 = db.GetTable("t1");
  const Table& t2 = db.GetTable("t2");
  for (int64_t i = 0; i < t1.num_rows(); ++i) {
    if (t1.at(i, 1).AsDouble() > t1_b_max) continue;
    for (int64_t j = 0; j < t2.num_rows(); ++j) {
      if (t1.at(i, 0).AsInt64() != t2.at(j, 0).AsInt64()) continue;
      std::string key;
      for (int c = 0; c < 3; ++c) key += t1.at(i, c).ToString() + "|";
      for (int c = 0; c < 2; ++c) key += t2.at(j, c).ToString() + "|";
      out.insert(key);
    }
  }
  return out;
}

class JoinAlgorithms : public ::testing::TestWithParam<OpType> {};

TEST_P(JoinAlgorithms, MatchReferenceJoin) {
  Database db = MakeTestDb();
  const OpType type = GetParam();
  auto left = MakeSeqScan("t1", Expr::Cmp(1, CmpOp::kLe, Value::Double(120.0)));
  auto right = MakeSeqScan("t2", NoPred());
  std::unique_ptr<PlanNode> join;
  if (type == OpType::kHashJoin) {
    join = MakeHashJoin(std::move(left), std::move(right), {{0, 0}});
  } else if (type == OpType::kNestLoopJoin) {
    join = MakeNestLoopJoin(std::move(left), std::move(right), {{0, 0}});
  } else {
    // Merge join needs sorted inputs.
    join = MakeMergeJoin(MakeSort(std::move(left), {0}),
                         MakeSort(std::move(right), {0}), {{0, 0}});
  }
  Plan plan(std::move(join));
  const ExecResult result = MustExecute(db, &plan);
  EXPECT_EQ(RowFingerprints(result.output), ReferenceJoin(db, 120.0));
}

INSTANTIATE_TEST_SUITE_P(Types, JoinAlgorithms,
                         ::testing::Values(OpType::kHashJoin,
                                           OpType::kNestLoopJoin,
                                           OpType::kMergeJoin));

TEST(Executor, MultiKeyHashJoin) {
  Database db = MakeTestDb();
  // Self-join t2 on (k, w): each row matches only itself.
  Plan plan(MakeHashJoin(MakeSeqScan("t2", NoPred()), MakeSeqScan("t2", NoPred()),
                         {{0, 0}, {1, 1}}));
  const ExecResult result = MustExecute(db, &plan);
  EXPECT_EQ(result.output.num_rows(), 40);
}

TEST(Executor, JoinResidualPredicate) {
  Database db = MakeTestDb();
  // Join t1 x t2 on a = k with residual w > b (column 4 vs column 1 in the
  // concatenated schema).
  ExprPtr residual = Expr::CmpColumns(4, CmpOp::kGt, 1);
  Plan plan(MakeHashJoin(MakeSeqScan("t1", NoPred()), MakeSeqScan("t2", NoPred()),
                         {{0, 0}}, residual));
  const ExecResult result = MustExecute(db, &plan);
  for (int64_t r = 0; r < result.output.num_rows(); ++r) {
    EXPECT_GT(result.output.row(r)[4].AsDouble(), result.output.row(r)[1].AsDouble());
  }
  // Same with nested loop.
  Plan nlj(MakeNestLoopJoin(MakeSeqScan("t1", NoPred()), MakeSeqScan("t2", NoPred()),
                            {{0, 0}}, residual));
  const ExecResult nlj_result = MustExecute(db, &nlj);
  EXPECT_EQ(RowFingerprints(result.output), RowFingerprints(nlj_result.output));
}

TEST(Executor, CrossJoinViaNestLoop) {
  Database db = MakeTestDb();
  Plan plan(MakeNestLoopJoin(MakeSeqScan("t2", NoPred()),
                             MakeSeqScan("t2", NoPred()), {}));
  const ExecResult result = MustExecute(db, &plan);
  EXPECT_EQ(result.output.num_rows(), 40 * 40);
  EXPECT_DOUBLE_EQ(result.ops[0].actual.no, 1600.0);  // one visit per pair
}

TEST(Executor, HashJoinCounters) {
  Database db = MakeTestDb();
  Plan plan(MakeHashJoin(MakeSeqScan("t1", NoPred()), MakeSeqScan("t2", NoPred()),
                         {{0, 0}}));
  const ExecResult result = MustExecute(db, &plan);
  const OpStats& join = result.ops[0];
  EXPECT_DOUBLE_EQ(join.left_rows, 200.0);
  EXPECT_DOUBLE_EQ(join.right_rows, 40.0);
  // Each t1 row with a < 40 matches exactly one t2 row: 4 * 40 = 160.
  EXPECT_DOUBLE_EQ(join.out_rows, 160.0);
  EXPECT_DOUBLE_EQ(join.actual.nt, 160.0);
  // Build + probe hash ops at minimum.
  EXPECT_GE(join.actual.no, 240.0);
  EXPECT_DOUBLE_EQ(join.leaf_row_product, 200.0 * 40.0);
}

// ---------- Sort / Aggregate / Materialize ----------

TEST(Executor, SortOrdersRows) {
  Database db = MakeTestDb();
  Plan plan(MakeSort(MakeSeqScan("t1", NoPred()), {0, 1}));
  const ExecResult result = MustExecute(db, &plan);
  ASSERT_EQ(result.output.num_rows(), 200);
  for (int64_t r = 1; r < result.output.num_rows(); ++r) {
    const auto prev = result.output.row(r - 1);
    const auto cur = result.output.row(r);
    const bool ordered =
        prev[0].AsInt64() < cur[0].AsInt64() ||
        (prev[0].AsInt64() == cur[0].AsInt64() &&
         prev[1].AsDouble() <= cur[1].AsDouble());
    EXPECT_TRUE(ordered) << "row " << r;
  }
  // Comparison counter: at least n log2 n / 2, at most n log2 n * 2 + n.
  const double n = 200.0;
  EXPECT_GT(result.ops[0].actual.no, 0.5 * n * std::log2(n));
  EXPECT_LT(result.ops[0].actual.no, 2.0 * n * std::log2(n) + n);
}

TEST(Executor, SortOnStringColumn) {
  Database db = MakeTestDb();
  Plan plan(MakeSort(MakeSeqScan("t1", NoPred()), {2}));
  const ExecResult result = MustExecute(db, &plan);
  for (int64_t r = 1; r < result.output.num_rows(); ++r) {
    EXPECT_LE(result.output.row(r - 1)[2].AsString(),
              result.output.row(r)[2].AsString());
  }
}

TEST(Executor, AggregateGroupsAndFunctions) {
  Database db = MakeTestDb();
  // Group t2 rows by k % ... -> each k in 0..39 has exactly one row; group
  // by constant-ish column instead: group t1 by tag.
  std::vector<AggSpec> aggs;
  aggs.push_back({AggSpec::Kind::kCount, -1, "cnt"});
  aggs.push_back({AggSpec::Kind::kSum, 1, "sum_b"});
  aggs.push_back({AggSpec::Kind::kMin, 1, "min_b"});
  aggs.push_back({AggSpec::Kind::kMax, 1, "max_b"});
  aggs.push_back({AggSpec::Kind::kAvg, 1, "avg_b"});
  Plan plan(MakeAggregate(MakeSeqScan("t1", NoPred()), {2}, aggs));
  const ExecResult result = MustExecute(db, &plan);
  ASSERT_EQ(result.output.num_rows(), 2);  // tags "x" and "y"
  std::map<std::string, std::vector<double>> by_tag;
  for (int64_t r = 0; r < 2; ++r) {
    const auto row = result.output.row(r);
    by_tag[row[0].AsString()] = {row[1].AsDouble(), row[2].AsDouble(),
                                 row[3].AsDouble(), row[4].AsDouble(),
                                 row[5].AsDouble()};
  }
  // Reference for tag "x": i in {0,3,...,198}, 67 rows, sum = 3*(0+..+66).
  const double cnt_x = 67.0;
  const double sum_x = 3.0 * (66.0 * 67.0 / 2.0);
  ASSERT_TRUE(by_tag.count("x"));
  EXPECT_DOUBLE_EQ(by_tag["x"][0], cnt_x);
  EXPECT_DOUBLE_EQ(by_tag["x"][1], sum_x);
  EXPECT_DOUBLE_EQ(by_tag["x"][2], 0.0);
  EXPECT_DOUBLE_EQ(by_tag["x"][3], 198.0);
  EXPECT_DOUBLE_EQ(by_tag["x"][4], sum_x / cnt_x);
}

TEST(Executor, AggregateOutputsGroupsInFirstAppearanceOrder) {
  Database db = MakeTestDb();
  std::vector<AggSpec> aggs;
  aggs.push_back({AggSpec::Kind::kCount, -1, "cnt"});
  // t1.a = i % 50, so grouping by a sees keys 0, 1, ..., 49 in row order.
  // The pinned contract: groups emit in FIRST-APPEARANCE order of their
  // key in the input — stable across standard-library implementations
  // (the old code followed unordered_map bucket iteration order) — and
  // independent of the chunking, so the same rows come back at every
  // batch size.
  for (int64_t batch : {int64_t{1024}, int64_t{7}, int64_t{1}}) {
    Plan plan(MakeAggregate(MakeSeqScan("t1", NoPred()), {0}, aggs));
    ExecOptions options;
    options.max_batch_size = batch;
    const ExecResult result = MustExecute(db, &plan, options);
    ASSERT_EQ(result.output.num_rows(), 50) << "batch " << batch;
    for (int64_t r = 0; r < 50; ++r) {
      EXPECT_EQ(result.output.row(r)[0].AsInt64(), r) << "batch " << batch;
      EXPECT_DOUBLE_EQ(result.output.row(r)[1].AsDouble(), 4.0);
    }
  }
  // String keys too: tag "x" appears at row 0, "y" at row 1.
  Plan by_tag(MakeAggregate(MakeSeqScan("t1", NoPred()), {2}, aggs));
  const ExecResult result = MustExecute(db, &by_tag);
  ASSERT_EQ(result.output.num_rows(), 2);
  EXPECT_EQ(result.output.row(0)[0].AsString(), "x");
  EXPECT_EQ(result.output.row(1)[0].AsString(), "y");
}

TEST(Executor, SortOutputIdenticalAcrossBatchSizes) {
  // The blocked merge sort's leaf/merge shape follows max_batch_size, but
  // its comparator is a total order (sort keys, then row index), so the
  // sorted permutation — and hence every output row — is unique: batch
  // size may change the comparison counter, never the rows.
  Database db = MakeTestDb();
  ExecOptions reference_options;
  reference_options.collect_provenance = true;
  Plan reference_plan(MakeSort(MakeSeqScan("t1", NoPred()), {0, 1}));
  const ExecResult reference = MustExecute(db, &reference_plan, reference_options);
  for (int64_t batch : {int64_t{3}, int64_t{64}}) {
    Plan plan(MakeSort(MakeSeqScan("t1", NoPred()), {0, 1}));
    ExecOptions options = reference_options;
    options.max_batch_size = batch;
    const ExecResult result = MustExecute(db, &plan, options);
    ASSERT_EQ(result.output.values.size(), reference.output.values.size());
    for (size_t i = 0; i < reference.output.values.size(); ++i) {
      ASSERT_TRUE(result.output.values[i].Equals(reference.output.values[i]))
          << "batch " << batch << " value " << i;
    }
    EXPECT_EQ(result.output.prov, reference.output.prov) << "batch " << batch;
  }
}

TEST(Executor, GlobalAggregateWithoutGroups) {
  Database db = MakeTestDb();
  std::vector<AggSpec> aggs;
  aggs.push_back({AggSpec::Kind::kCount, -1, "cnt"});
  Plan plan(MakeAggregate(MakeSeqScan("t1", NoPred()), {}, aggs));
  const ExecResult result = MustExecute(db, &plan);
  ASSERT_EQ(result.output.num_rows(), 1);
  EXPECT_DOUBLE_EQ(result.output.row(0)[0].AsDouble(), 200.0);
}

TEST(Executor, MaterializePassesThrough) {
  Database db = MakeTestDb();
  Plan plain(MakeSeqScan("t1", Expr::Cmp(0, CmpOp::kLt, Value::Int64(5))));
  Plan mat(MakeMaterialize(
      MakeSeqScan("t1", Expr::Cmp(0, CmpOp::kLt, Value::Int64(5)))));
  const ExecResult a = MustExecute(db, &plain);
  const ExecResult b = MustExecute(db, &mat);
  EXPECT_EQ(RowFingerprints(a.output), RowFingerprints(b.output));
}

// ---------- Provenance ----------

TEST(Executor, ScanProvenancePointsAtSourceRows) {
  Database db = MakeTestDb();
  Plan plan(MakeSeqScan("t1", Expr::Cmp(0, CmpOp::kLt, Value::Int64(3))));
  ExecOptions options;
  options.collect_provenance = true;
  const ExecResult result = MustExecute(db, &plan, options);
  const Table& t1 = db.GetTable("t1");
  ASSERT_EQ(result.output.prov_width, 1);
  for (int64_t r = 0; r < result.output.num_rows(); ++r) {
    const uint32_t src = result.output.prov_row(r)[0];
    for (int c = 0; c < 3; ++c) {
      EXPECT_TRUE(result.output.row(r)[c].Equals(t1.at(src, c)));
    }
  }
}

TEST(Executor, JoinProvenanceConcatenatesLeafIds) {
  Database db = MakeTestDb();
  Plan plan(MakeHashJoin(MakeSeqScan("t1", NoPred()), MakeSeqScan("t2", NoPred()),
                         {{0, 0}}));
  ExecOptions options;
  options.collect_provenance = true;
  options.retain_intermediates = true;
  const ExecResult result = MustExecute(db, &plan, options);
  const Table& t1 = db.GetTable("t1");
  const Table& t2 = db.GetTable("t2");
  ASSERT_EQ(result.output.prov_width, 2);
  for (int64_t r = 0; r < result.output.num_rows(); ++r) {
    const uint32_t* prov = result.output.prov_row(r);
    EXPECT_TRUE(result.output.row(r)[0].Equals(t1.at(prov[0], 0)));
    EXPECT_TRUE(result.output.row(r)[3].Equals(t2.at(prov[1], 0)));
  }
  // Retained blocks exist for every operator.
  ASSERT_EQ(result.blocks.size(), 3u);
  EXPECT_EQ(result.blocks[0].num_rows(), result.output.num_rows());
}

TEST(Executor, AggregateDropsProvenance) {
  Database db = MakeTestDb();
  std::vector<AggSpec> aggs;
  aggs.push_back({AggSpec::Kind::kCount, -1, "cnt"});
  Plan plan(MakeAggregate(MakeSeqScan("t1", NoPred()), {0}, aggs));
  ExecOptions options;
  options.collect_provenance = true;
  const ExecResult result = MustExecute(db, &plan, options);
  EXPECT_EQ(result.output.prov_width, 0);
}

// ---------- Leaf overrides ----------

TEST(Executor, LeafOverridesBindPerOccurrence) {
  Database db = MakeTestDb();
  // Tiny replacement tables with distinct contents per occurrence.
  Table small1("t2#a", db.GetTable("t2").schema());
  small1.AppendRow({Value::Int64(1), Value::Double(1.0)});
  Table small2("t2#b", db.GetTable("t2").schema());
  small2.AppendRow({Value::Int64(1), Value::Double(2.0)});
  small2.AppendRow({Value::Int64(2), Value::Double(3.0)});

  Plan plan(MakeHashJoin(MakeSeqScan("t2", NoPred()), MakeSeqScan("t2", NoPred()),
                         {{0, 0}}));
  ASSERT_TRUE(plan.Finalize(db).ok());
  std::vector<const Table*> overrides = {&small1, &small2};
  ExecOptions options;
  options.leaf_overrides = &overrides;
  Executor executor(&db);
  auto result = executor.Execute(plan, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->output.num_rows(), 1);  // k=1 matches k=1 only
  EXPECT_DOUBLE_EQ(result->ops[0].leaf_row_product, 1.0 * 2.0);
}

TEST(Executor, LeafOverrideCountMismatchFails) {
  Database db = MakeTestDb();
  Plan plan(MakeSeqScan("t1", NoPred()));
  ASSERT_TRUE(plan.Finalize(db).ok());
  std::vector<const Table*> overrides;
  ExecOptions options;
  options.leaf_overrides = &overrides;
  Executor executor(&db);
  EXPECT_FALSE(executor.Execute(plan, options).ok());
}

// ---------- Plan validation ----------

TEST(Plan, FinalizeRejectsUnknownTable) {
  Database db = MakeTestDb();
  Plan plan(MakeSeqScan("nonexistent", NoPred()));
  EXPECT_FALSE(plan.Finalize(db).ok());
}

TEST(Plan, FinalizeRejectsBadJoinKey) {
  Database db = MakeTestDb();
  Plan plan(MakeHashJoin(MakeSeqScan("t1", NoPred()), MakeSeqScan("t2", NoPred()),
                         {{99, 0}}));
  EXPECT_FALSE(plan.Finalize(db).ok());
}

TEST(Plan, PreorderIdsAndLeafSpans) {
  Database db = MakeTestDb();
  Plan plan(MakeHashJoin(MakeSeqScan("t1", NoPred()), MakeSeqScan("t2", NoPred()),
                         {{0, 0}}));
  ASSERT_TRUE(plan.Finalize(db).ok());
  EXPECT_EQ(plan.num_operators(), 3);
  EXPECT_EQ(plan.num_leaves(), 2);
  const auto nodes = plan.NodesPreorder();
  EXPECT_EQ(nodes[0]->id, 0);
  EXPECT_TRUE(IsJoin(nodes[0]->type));
  EXPECT_EQ(nodes[0]->leaf_begin, 0);
  EXPECT_EQ(nodes[0]->leaf_end, 2);
  EXPECT_EQ(nodes[1]->leaf_begin, 0);
  EXPECT_EQ(nodes[1]->leaf_end, 1);
  EXPECT_DOUBLE_EQ(nodes[0]->leaf_row_product, 8000.0);
}

TEST(Plan, ClonePreservesStructure) {
  Database db = MakeTestDb();
  auto original = MakeHashJoin(
      MakeSeqScan("t1", Expr::Cmp(0, CmpOp::kLt, Value::Int64(10))),
      MakeSeqScan("t2", NoPred()), {{0, 0}});
  auto clone = ClonePlanTree(*original);
  Plan p1(std::move(original)), p2(std::move(clone));
  const ExecResult a = MustExecute(db, &p1);
  const ExecResult b = MustExecute(db, &p2);
  EXPECT_EQ(RowFingerprints(a.output), RowFingerprints(b.output));
}

TEST(Plan, CloneCarriesFinalizedStateAndSharesNothing) {
  Database db = MakeTestDb();
  Plan plan(MakeHashJoin(
      MakeSeqScan("t1", Expr::And(Expr::Cmp(0, CmpOp::kLt, Value::Int64(10)),
                                  Expr::Cmp(1, CmpOp::kGe, Value::Double(2.0)))),
      MakeSeqScan("t2", NoPred()), {{0, 0}}));
  ASSERT_TRUE(plan.Finalize(db).ok());

  const Plan clone = plan.Clone();
  // Finalized state survives without re-running Finalize.
  EXPECT_EQ(clone.num_operators(), plan.num_operators());
  EXPECT_EQ(clone.num_leaves(), plan.num_leaves());
  const auto orig_nodes = plan.NodesPreorder();
  const auto clone_nodes = clone.NodesPreorder();
  ASSERT_EQ(clone_nodes.size(), orig_nodes.size());
  for (size_t i = 0; i < orig_nodes.size(); ++i) {
    EXPECT_EQ(clone_nodes[i]->id, orig_nodes[i]->id);
    EXPECT_EQ(clone_nodes[i]->leaf_begin, orig_nodes[i]->leaf_begin);
    EXPECT_EQ(clone_nodes[i]->leaf_end, orig_nodes[i]->leaf_end);
    EXPECT_EQ(clone_nodes[i]->output_schema.num_columns(),
              orig_nodes[i]->output_schema.num_columns());
    EXPECT_DOUBLE_EQ(clone_nodes[i]->leaf_row_product,
                     orig_nodes[i]->leaf_row_product);
    // A deep copy: no PlanNode and no Expr node is shared.
    EXPECT_NE(clone_nodes[i], orig_nodes[i]);
    if (orig_nodes[i]->predicate != nullptr) {
      EXPECT_NE(clone_nodes[i]->predicate.get(), orig_nodes[i]->predicate.get());
    }
  }
  // Identical structural identity: same fingerprint and canonical key.
  EXPECT_EQ(PlanFingerprint(clone), PlanFingerprint(plan));
  EXPECT_EQ(PlanStructuralKey(clone), PlanStructuralKey(plan));
  EXPECT_EQ(clone.ToString(), plan.ToString());

  // The clone executes standalone, WITHOUT re-running Finalize — and keeps
  // working after every plan it was cloned from is gone (the lifetime
  // contract PredictAsync's registry relies on).
  const ExecResult a = MustExecute(db, &plan);
  Plan survivor;
  {
    Plan doomed = plan.Clone();
    survivor = doomed.Clone();
  }  // doomed destroyed; survivor must share nothing with it
  Executor executor(&db);
  auto b = executor.Execute(survivor, ExecOptions{});
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(RowFingerprints(a.output), RowFingerprints(b->output));
}

// ---------- Planner ----------

TEST(Planner, PicksIndexScanForSelectiveRange) {
  Database db = MakeTestDb();
  auto plan = OptimizePlan(
      MakeSeqScan("t1", Expr::Cmp(1, CmpOp::kLe, Value::Double(3.0))), db);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->root()->type, OpType::kIndexScan);
  EXPECT_EQ(plan->root()->index_column, 1);
}

TEST(Planner, KeepsSeqScanForWideRange) {
  Database db = MakeTestDb();
  auto plan = OptimizePlan(
      MakeSeqScan("t1", Expr::Cmp(1, CmpOp::kLe, Value::Double(180.0))), db);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->root()->type, OpType::kSeqScan);
}

TEST(Planner, KeepsSeqScanForUnindexedColumn) {
  Database db = MakeTestDb();
  // Column 0 has no declared index.
  auto plan = OptimizePlan(
      MakeSeqScan("t1", Expr::Cmp(0, CmpOp::kLt, Value::Int64(1))), db);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->root()->type, OpType::kSeqScan);
}

TEST(Planner, SmallInnerBecomesNestLoop) {
  Database db = MakeTestDb();
  auto plan = OptimizePlan(
      MakeHashJoin(MakeSeqScan("t1", NoPred()), MakeSeqScan("t2", NoPred()),
                   {{0, 0}}),
      db);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->root()->type, OpType::kNestLoopJoin);  // t2 has 40 rows
}

TEST(Planner, LargeInnerStaysHashJoin) {
  Database db = MakeTestDb();
  auto plan = OptimizePlan(
      MakeHashJoin(MakeSeqScan("t2", NoPred()), MakeSeqScan("t1", NoPred()),
                   {{0, 0}}),
      db);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->root()->type, OpType::kHashJoin);  // t1 has 200 rows
}

TEST(Planner, KeylessJoinBecomesNestLoop) {
  Database db = MakeTestDb();
  auto plan = OptimizePlan(
      MakeHashJoin(MakeSeqScan("t1", NoPred()), MakeSeqScan("t1", NoPred()), {}),
      db);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->root()->type, OpType::kNestLoopJoin);
}

// ---------- Cardinality ----------

TEST(Cardinality, RangePairingAvoidsIndependenceBlowup) {
  Database db = MakeTestDb();
  CardinalityEstimator cards(&db);
  // b BETWEEN 100 AND 120 covers ~10% of rows; independence on the two
  // endpoint comparisons would claim ~30%.
  const auto pred = Expr::Between(1, Value::Double(100.0), Value::Double(120.0));
  const double sel = cards.PredicateSelectivity(pred.get(), "t1");
  EXPECT_NEAR(sel, 21.0 / 200.0, 0.04);
}

TEST(Cardinality, StringEqualityUsesFrequency) {
  Database db = MakeTestDb();
  CardinalityEstimator cards(&db);
  const auto pred = Expr::StrEq(2, "x");
  EXPECT_NEAR(cards.PredicateSelectivity(pred.get(), "t1"), 67.0 / 200.0, 0.01);
  const auto none = Expr::StrEq(2, "never-seen");
  EXPECT_DOUBLE_EQ(cards.PredicateSelectivity(none.get(), "t1"), 0.0);
}

TEST(Cardinality, EquiJoinUsesDistinctCounts) {
  Database db = MakeTestDb();
  Plan plan(MakeHashJoin(MakeSeqScan("t1", NoPred()), MakeSeqScan("t2", NoPred()),
                         {{0, 0}}));
  ASSERT_TRUE(plan.Finalize(db).ok());
  CardinalityEstimator cards(&db);
  const auto rows = cards.EstimatePlan(plan);
  // |t1 x t2| / max(d(a), d(k)) = 200 * 40 / 50 = 160 — matches the truth.
  EXPECT_NEAR(rows[0], 160.0, 1.0);
}

TEST(Cardinality, AggregateGroupEstimate) {
  Database db = MakeTestDb();
  std::vector<AggSpec> aggs;
  aggs.push_back({AggSpec::Kind::kCount, -1, "cnt"});
  Plan plan(MakeAggregate(MakeSeqScan("t1", NoPred()), {0}, aggs));
  ASSERT_TRUE(plan.Finalize(db).ok());
  CardinalityEstimator cards(&db);
  const auto rows = cards.EstimatePlan(plan);
  EXPECT_NEAR(rows[0], 50.0, 1.0);  // 50 distinct a values
}

TEST(Cardinality, PassThroughKeepsRows) {
  Database db = MakeTestDb();
  Plan plan(MakeSort(MakeSeqScan("t1", NoPred()), {0}));
  ASSERT_TRUE(plan.Finalize(db).ok());
  CardinalityEstimator cards(&db);
  const auto rows = cards.EstimatePlan(plan);
  EXPECT_DOUBLE_EQ(rows[0], rows[1]);
}

// ---------- Cost model ----------

TEST(CostModel, SeqScanResources) {
  OperatorContext ctx;
  ctx.type = OpType::kSeqScan;
  ctx.table_rows = 1000;
  ctx.table_pages = 25;
  ctx.qual_ops = 2;
  const ResourceVector r = EstimateResources(ctx, EngineConfig{});
  EXPECT_DOUBLE_EQ(r.ns, 25.0);
  EXPECT_DOUBLE_EQ(r.nt, 1000.0);
  EXPECT_DOUBLE_EQ(r.no, 2000.0);
}

TEST(CostModel, IndexScanUsesRangeRatio) {
  OperatorContext ctx;
  ctx.type = OpType::kIndexScan;
  ctx.table_rows = 10000;
  ctx.table_pages = 100;
  ctx.out_rows = 50;
  ctx.qual_ops = 1;
  ctx.index_range_ratio = 4.0;
  const ResourceVector r = EstimateResources(ctx, EngineConfig{});
  EXPECT_DOUBLE_EQ(r.nt, 200.0);  // 50 * 4 range matches
  EXPECT_GT(r.nr, 0.0);
  EXPECT_LE(r.nr, 100.0);
}

TEST(CostModel, HashJoinSpillsAboveWorkMem) {
  OperatorContext ctx;
  ctx.type = OpType::kHashJoin;
  ctx.left_rows = 10000;
  ctx.right_rows = 10000;
  ctx.left_width = 100;
  ctx.right_width = 100;
  ctx.out_rows = 100;
  EngineConfig small_mem;
  small_mem.work_mem_bytes = 1024;
  EngineConfig big_mem;
  big_mem.work_mem_bytes = 1e9;
  EXPECT_GT(EstimateResources(ctx, small_mem).ns, 0.0);
  EXPECT_DOUBLE_EQ(EstimateResources(ctx, big_mem).ns, 0.0);
}

TEST(CostModel, ExpectedPageFetchesSaturates) {
  EXPECT_DOUBLE_EQ(ExpectedPageFetches(0, 100), 0.0);
  EXPECT_NEAR(ExpectedPageFetches(1, 100), 1.0, 0.01);
  EXPECT_LE(ExpectedPageFetches(1e6, 100), 100.0);
  EXPECT_NEAR(ExpectedPageFetches(1e6, 100), 100.0, 0.1);
  // Monotone in rows.
  EXPECT_LT(ExpectedPageFetches(10, 100), ExpectedPageFetches(50, 100));
}

TEST(CostModel, ResourceVectorDotMatchesEq1) {
  ResourceVector r;
  r.ns = 1;
  r.nr = 2;
  r.nt = 3;
  r.ni = 4;
  r.no = 5;
  // t = ns cs + nr cr + nt ct + ni ci + no co.
  EXPECT_DOUBLE_EQ(r.Dot(1, 10, 100, 1000, 10000), 1 + 20 + 300 + 4000 + 50000);
  for (int u = 0; u < 5; ++u) {
    EXPECT_DOUBLE_EQ(r.Get(u), static_cast<double>(u + 1));
  }
}

}  // namespace
}  // namespace uqp
