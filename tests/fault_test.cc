// Unit tests for the deterministic fault-injection harness and the
// per-family circuit breaker (src/service/fault.{h,cc}): the schedule is
// a pure function of the seed (replayable bit-identically at any thread
// count), attempt numbering is exact under concurrency, and the breaker
// walks closed -> open -> half-open -> closed/open deterministically,
// with no clock anywhere.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "service/fault.h"

namespace uqp {
namespace {

ScheduledFaultOptions MixedOptions(uint64_t seed) {
  ScheduledFaultOptions opts;
  opts.seed = seed;
  opts.default_rule.fail_prob = 0.3;
  opts.default_rule.latency_prob = 0.5;
  opts.default_rule.latency_ms = 2.0;
  return opts;
}

TEST(ScheduledFaultInjectorTest, OnSampleRunReplaysThePredrawnSchedule) {
  ScheduledFaultInjector injector(MixedOptions(42));
  const uint64_t kFp = 7;
  constexpr uint64_t kAttempts = 64;
  for (uint64_t a = 0; a < kAttempts; ++a) {
    const FaultDecision want = injector.ScheduleAt(kFp, a);
    const FaultDecision got = injector.OnSampleRun(kFp);
    EXPECT_EQ(got.status.code(), want.status.code()) << "attempt " << a;
    EXPECT_EQ(got.latency_ms, want.latency_ms) << "attempt " << a;
  }
  EXPECT_EQ(injector.AttemptCount(kFp), kAttempts);
  // A mixed-probability rule over 64 draws fires both channels at least
  // once (schedule-determined, so this is deterministic, not flaky).
  EXPECT_GT(injector.faults_fired(), 0u);
  EXPECT_GT(injector.delays_fired(), 0u);
  EXPECT_LT(injector.faults_fired(), kAttempts);
}

TEST(ScheduledFaultInjectorTest, ScheduleAtIsPureAndCounterFree) {
  ScheduledFaultInjector injector(MixedOptions(9));
  const FaultDecision first = injector.ScheduleAt(3, 5);
  const FaultDecision again = injector.ScheduleAt(3, 5);
  EXPECT_EQ(first.status.code(), again.status.code());
  EXPECT_EQ(first.latency_ms, again.latency_ms);
  EXPECT_EQ(injector.AttemptCount(3), 0u) << "ScheduleAt must not consume";
  EXPECT_EQ(injector.faults_fired(), 0u);
}

TEST(ScheduledFaultInjectorTest, FailAttemptsIsCountExact) {
  ScheduledFaultOptions opts;
  opts.seed = 1;
  FaultRule rule;
  rule.fail_attempts = 3;
  opts.rules[11] = rule;
  ScheduledFaultInjector injector(opts);
  for (uint64_t a = 0; a < 3; ++a) {
    EXPECT_FALSE(injector.OnSampleRun(11).status.ok()) << "attempt " << a;
  }
  for (uint64_t a = 3; a < 8; ++a) {
    EXPECT_TRUE(injector.OnSampleRun(11).status.ok()) << "attempt " << a;
  }
  // Other fingerprints follow the (benign) default rule.
  EXPECT_TRUE(injector.OnSampleRun(12).status.ok());
  EXPECT_EQ(injector.faults_fired(), 3u);
}

TEST(ScheduledFaultInjectorTest, ScheduleBytesEqualIffSameSeed) {
  const std::vector<uint64_t> fps = {1, 2, 3, 99};
  ScheduledFaultInjector a(MixedOptions(7));
  ScheduledFaultInjector b(MixedOptions(7));
  ScheduledFaultInjector c(MixedOptions(8));
  EXPECT_EQ(a.ScheduleBytes(fps, 32), b.ScheduleBytes(fps, 32))
      << "same seed must pre-draw the identical schedule";
  EXPECT_NE(a.ScheduleBytes(fps, 32), c.ScheduleBytes(fps, 32))
      << "a different seed must not collide over 128 draws";
}

TEST(ScheduledFaultInjectorTest, FiredLogMatchesAcrossThreadCounts) {
  // Same per-family attempt totals => byte-identical fired log, however
  // the attempts were threaded. Run the same load single-threaded and
  // with 4 threads hammering concurrently.
  const std::vector<uint64_t> fps = {5, 6, 7};
  constexpr uint64_t kPerFp = 50;

  ScheduledFaultInjector serial(MixedOptions(123));
  for (uint64_t fp : fps) {
    for (uint64_t a = 0; a < kPerFp; ++a) serial.OnSampleRun(fp);
  }

  // Per-fingerprint atomic tickets split the same kPerFp attempts across
  // 4 racing threads (kPerFp need not divide evenly).
  ScheduledFaultInjector parallel(MixedOptions(123));
  std::vector<std::thread> threads;
  std::atomic<uint64_t> tickets[3] = {{0}, {0}, {0}};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (size_t i = 0; i < fps.size(); ++i) {
        while (tickets[i].fetch_add(1) < kPerFp) parallel.OnSampleRun(fps[i]);
      }
    });
  }
  for (auto& th : threads) th.join();

  for (uint64_t fp : fps) {
    ASSERT_EQ(parallel.AttemptCount(fp), kPerFp);
  }
  EXPECT_EQ(parallel.FiredLogBytes(), serial.FiredLogBytes())
      << "equal attempt totals must replay to identical fired bytes";
  EXPECT_EQ(parallel.faults_fired(), serial.faults_fired());
  EXPECT_EQ(parallel.delays_fired(), serial.delays_fired());
}

TEST(ScheduledFaultInjectorTest, SpuriousWakeupFiresEveryNth) {
  ScheduledFaultOptions opts;
  opts.spurious_every = 3;
  ScheduledFaultInjector injector(opts);
  int fired = 0;
  for (int i = 0; i < 12; ++i) {
    if (injector.InjectSpuriousWakeup()) ++fired;
  }
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(injector.spurious_fired(), 4u);

  ScheduledFaultInjector never({});
  for (int i = 0; i < 12; ++i) EXPECT_FALSE(never.InjectSpuriousWakeup());
}

// ---------------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------------

TEST(CircuitBreakerTest, DisabledRegistryAdmitsEverything) {
  CircuitBreakerRegistry breaker(BreakerOptions{});  // threshold 0: disabled
  EXPECT_FALSE(breaker.enabled());
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(breaker.OnStageResult(1, /*ok=*/false));
    const BreakerDecision d = breaker.Admit(1);
    EXPECT_FALSE(d.shed);
    EXPECT_FALSE(d.probe);
  }
  EXPECT_EQ(breaker.total_opens(), 0u);
}

TEST(CircuitBreakerTest, ConsecutiveFailuresOpenAtThreshold) {
  BreakerOptions opts;
  opts.failure_threshold = 3;
  opts.cooldown_requests = 4;
  CircuitBreakerRegistry breaker(opts);
  const uint64_t kFp = 21;

  EXPECT_FALSE(breaker.OnStageResult(kFp, false));
  EXPECT_FALSE(breaker.OnStageResult(kFp, false));
  EXPECT_FALSE(breaker.Admit(kFp).shed) << "still closed below threshold";
  EXPECT_TRUE(breaker.OnStageResult(kFp, false))
      << "the threshold-th consecutive failure must report the open";
  EXPECT_EQ(breaker.Family(kFp).state, BreakerState::kOpen);
  EXPECT_EQ(breaker.total_opens(), 1u);

  // A success anywhere before the threshold resets the streak.
  const uint64_t kOther = 22;
  breaker.OnStageResult(kOther, false);
  breaker.OnStageResult(kOther, true);
  breaker.OnStageResult(kOther, false);
  EXPECT_FALSE(breaker.OnStageResult(kOther, false))
      << "a success must reset the consecutive-failure streak";
  EXPECT_EQ(breaker.Family(kOther).state, BreakerState::kClosed);
}

TEST(CircuitBreakerTest, CooldownShedsThenProbesHalfOpen) {
  BreakerOptions opts;
  opts.failure_threshold = 2;
  opts.cooldown_requests = 3;
  CircuitBreakerRegistry breaker(opts);
  const uint64_t kFp = 33;
  breaker.OnStageResult(kFp, false);
  breaker.OnStageResult(kFp, false);  // open

  // cooldown_requests - 1 pure sheds, then the next request is the probe.
  for (int i = 0; i < opts.cooldown_requests - 1; ++i) {
    const BreakerDecision d = breaker.Admit(kFp);
    EXPECT_TRUE(d.shed) << "request " << i << " during cooldown";
    EXPECT_FALSE(d.probe);
  }
  const BreakerDecision probe = breaker.Admit(kFp);
  EXPECT_TRUE(probe.probe);
  EXPECT_FALSE(probe.shed);
  EXPECT_EQ(breaker.Family(kFp).state, BreakerState::kHalfOpen);
  EXPECT_EQ(breaker.total_probes(), 1u);

  // While the probe is in flight, everyone else keeps shedding.
  EXPECT_TRUE(breaker.Admit(kFp).shed);

  // Probe success closes; the family admits freely again.
  EXPECT_FALSE(breaker.OnStageResult(kFp, true));
  EXPECT_EQ(breaker.Family(kFp).state, BreakerState::kClosed);
  const BreakerDecision after = breaker.Admit(kFp);
  EXPECT_FALSE(after.shed);
  EXPECT_FALSE(after.probe);
}

TEST(CircuitBreakerTest, FailedProbeReopensImmediately) {
  BreakerOptions opts;
  opts.failure_threshold = 2;
  opts.cooldown_requests = 2;
  CircuitBreakerRegistry breaker(opts);
  const uint64_t kFp = 44;
  breaker.OnStageResult(kFp, false);
  breaker.OnStageResult(kFp, false);  // open (1st)
  breaker.Admit(kFp);                 // shed 1
  const BreakerDecision probe = breaker.Admit(kFp);  // shed 2 -> probe
  ASSERT_TRUE(probe.probe);
  EXPECT_TRUE(breaker.OnStageResult(kFp, false))
      << "a failed half-open probe must re-open (and report it)";
  EXPECT_EQ(breaker.Family(kFp).state, BreakerState::kOpen);
  EXPECT_EQ(breaker.Family(kFp).opens, 2u);
  EXPECT_EQ(breaker.total_opens(), 2u);
  // The cooldown restarts from zero after the re-open.
  EXPECT_TRUE(breaker.Admit(kFp).shed);
  EXPECT_TRUE(breaker.Admit(kFp).probe);
}

TEST(CircuitBreakerTest, SnapshotIsSortedAndComplete) {
  BreakerOptions opts;
  opts.failure_threshold = 1;
  opts.cooldown_requests = 8;
  CircuitBreakerRegistry breaker(opts);
  // Touch families across several shards, out of order.
  for (uint64_t fp : {19u, 3u, 8u, 200u}) breaker.OnStageResult(fp, false);
  breaker.Admit(19);  // one shed for family 19
  const std::vector<BreakerSnapshot> rows = breaker.Snapshot();
  ASSERT_EQ(rows.size(), 4u);
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LT(rows[i - 1].fingerprint, rows[i].fingerprint)
        << "snapshot must be sorted by fingerprint";
  }
  for (const BreakerSnapshot& row : rows) {
    EXPECT_EQ(row.state, BreakerState::kOpen);
    EXPECT_EQ(row.opens, 1u);
    EXPECT_EQ(row.shed, row.fingerprint == 19 ? 1u : 0u);
  }
  // An untouched family reads as a zero-value closed row.
  const BreakerSnapshot ghost = breaker.Family(777);
  EXPECT_EQ(ghost.state, BreakerState::kClosed);
  EXPECT_EQ(ghost.opens, 0u);
  EXPECT_STREQ(ToString(ghost.state), "closed");
  EXPECT_STREQ(ToString(BreakerState::kHalfOpen), "half_open");
}

}  // namespace
}  // namespace uqp
