// Tests for the logical cost functions (paper §4): the static shape
// mapping, the closed-form distributions of §5.2.1, and the grid + NNLS
// fitting pipeline against the optimizer's cost model.

#include <gtest/gtest.h>

#include <cmath>

#include "costfunc/fitter.h"
#include "costfunc/types.h"
#include "engine/planner.h"
#include "sampling/estimator.h"
#include "sampling/sample_db.h"

namespace uqp {
namespace {

// ---------- Shapes ----------

TEST(CostFuncTypes, StaticMappingMatchesSection41) {
  // Sequential scans are constant in the selectivities (C1).
  EXPECT_EQ(CostFunctionTypeFor(OpType::kSeqScan, kCostSeqPage),
            CostFuncType::kConstant);
  // Index scans are linear in the output cardinality (C2).
  EXPECT_EQ(CostFunctionTypeFor(OpType::kIndexScan, kCostRandPage),
            CostFuncType::kLinearOutput);
  // Hash joins: C5 for the inputs, C2 for emitted tuples.
  EXPECT_EQ(CostFunctionTypeFor(OpType::kHashJoin, kCostOperator),
            CostFuncType::kLinearBoth);
  EXPECT_EQ(CostFunctionTypeFor(OpType::kHashJoin, kCostTuple),
            CostFuncType::kLinearOutput);
  // Nested loops: the Nl*Nr product term (C6).
  EXPECT_EQ(CostFunctionTypeFor(OpType::kNestLoopJoin, kCostOperator),
            CostFuncType::kBilinear);
  // Sort comparisons: quadratic approximation of N log N (C4).
  EXPECT_EQ(CostFunctionTypeFor(OpType::kSort, kCostOperator),
            CostFuncType::kQuadraticLeft);
  // Materialize: linear in the input (C3).
  EXPECT_EQ(CostFunctionTypeFor(OpType::kMaterialize, kCostOperator),
            CostFuncType::kLinearLeft);
}

TEST(CostFuncTypes, CoefficientCounts) {
  EXPECT_EQ(CostFuncNumCoefficients(CostFuncType::kConstant), 1);
  EXPECT_EQ(CostFuncNumCoefficients(CostFuncType::kLinearOutput), 2);
  EXPECT_EQ(CostFuncNumCoefficients(CostFuncType::kQuadraticLeft), 3);
  EXPECT_EQ(CostFuncNumCoefficients(CostFuncType::kLinearBoth), 3);
  EXPECT_EQ(CostFuncNumCoefficients(CostFuncType::kBilinear), 4);
}

// ---------- Eval / Distribution ----------

TEST(FittedCostFunction, EvalPerShape) {
  FittedCostFunction f;
  f.type = CostFuncType::kBilinear;
  f.b = {2.0, 3.0, 5.0, 7.0};
  EXPECT_DOUBLE_EQ(f.Eval(0.0, 0.5, 0.2), 2.0 * 0.1 + 3.0 * 0.5 + 5.0 * 0.2 + 7.0);
  f.type = CostFuncType::kQuadraticLeft;
  f.b = {2.0, 3.0, 5.0};
  EXPECT_DOUBLE_EQ(f.Eval(0.0, 0.5, 0.0), 2.0 * 0.25 + 1.5 + 5.0);
  f.type = CostFuncType::kLinearOutput;
  f.b = {4.0, 1.0};
  EXPECT_DOUBLE_EQ(f.Eval(0.3, 0.0, 0.0), 2.2);
}

TEST(FittedCostFunction, LinearDistributionIsExact) {
  FittedCostFunction f;
  f.type = CostFuncType::kLinearOutput;
  f.b = {10.0, 2.0};
  const Gaussian x(0.4, 0.01);
  const Gaussian d = f.Distribution(x, Gaussian(), Gaussian());
  EXPECT_DOUBLE_EQ(d.mean, 6.0);
  EXPECT_DOUBLE_EQ(d.variance, 100.0 * 0.01);
}

TEST(FittedCostFunction, QuadraticDistributionUsesLemma4) {
  FittedCostFunction f;
  f.type = CostFuncType::kQuadraticLeft;
  f.b = {2.0, 1.0, 3.0};
  const Gaussian xl(0.5, 0.04);
  const Gaussian d = f.Distribution(Gaussian(), xl, Gaussian());
  // E[f] = b0 (mu² + var) + b1 mu + b2.
  EXPECT_DOUBLE_EQ(d.mean, 2.0 * (0.25 + 0.04) + 0.5 + 3.0);
  EXPECT_DOUBLE_EQ(d.variance, QuadraticFormVariance(2.0, 1.0, 0.5, 0.04));
}

TEST(FittedCostFunction, BilinearDistributionUsesLemma8) {
  FittedCostFunction f;
  f.type = CostFuncType::kBilinear;
  f.b = {2.0, 1.0, 0.5, 3.0};
  const Gaussian xl(0.3, 0.01), xr(0.6, 0.02);
  const Gaussian d = f.Distribution(Gaussian(), xl, xr);
  EXPECT_DOUBLE_EQ(d.mean, 2.0 * 0.18 + 0.3 + 0.3 + 3.0);
  EXPECT_DOUBLE_EQ(d.variance,
                   BilinearFormVariance(2.0, 1.0, 0.5, 0.3, 0.01, 0.6, 0.02));
}

TEST(FittedCostFunction, LinearBothSumsComponentVariances) {
  FittedCostFunction f;
  f.type = CostFuncType::kLinearBoth;
  f.b = {2.0, 3.0, 1.0};
  const Gaussian xl(0.3, 0.01), xr(0.6, 0.04);
  const Gaussian d = f.Distribution(Gaussian(), xl, xr);
  EXPECT_DOUBLE_EQ(d.mean, 0.6 + 1.8 + 1.0);
  EXPECT_DOUBLE_EQ(d.variance, 4.0 * 0.01 + 9.0 * 0.04);
}

// ---------- Fitting ----------

struct FitFixture {
  Database db;
  SampleDb samples;

  FitFixture() {
    Rng rng(5);
    Table r("r", Schema({{"a", ValueType::kInt64}, {"x", ValueType::kDouble}}));
    for (int i = 0; i < 4000; ++i) {
      r.AppendRow({Value::Int64(i % 100), Value::Double(rng.NextDouble())});
    }
    r.DeclareIndex(1);
    Table s("s", Schema({{"b", ValueType::kInt64}, {"y", ValueType::kDouble}}));
    for (int i = 0; i < 800; ++i) {
      s.AppendRow({Value::Int64(i % 100), Value::Double(rng.NextDouble())});
    }
    db = Database("fit-test");
    db.AddTable(std::move(r));
    db.AddTable(std::move(s));
    db.AnalyzeAll(16);
    SampleOptions options;
    options.sampling_ratio = 0.1;
    samples = SampleDb::Build(db, options);
  }
};

TEST(Fitter, FittedFunctionsMatchOracleAtDistributionCenter) {
  FitFixture fx;
  // join(scan(r: x <= 0.3), scan(s)) with a sort on top.
  auto join = MakeHashJoin(
      MakeSeqScan("r", Expr::Cmp(1, CmpOp::kLe, Value::Double(0.3))),
      MakeSeqScan("s", nullptr), {{0, 0}});
  Plan plan(MakeSort(std::move(join), {1}));
  ASSERT_TRUE(plan.Finalize(fx.db).ok());

  SamplingEstimator estimator(&fx.db, &fx.samples);
  auto estimates = estimator.Estimate(plan);
  ASSERT_TRUE(estimates.ok());
  CostFunctionFitter fitter(&fx.db);
  auto funcs = fitter.FitPlan(plan, *estimates);
  ASSERT_TRUE(funcs.ok());
  ASSERT_EQ(funcs->size(), 4u);

  // Every fitted function evaluated at the estimate means must be close to
  // the optimizer's resource estimate at the same cardinalities.
  const EngineConfig engine;
  for (const PlanNode* node : plan.NodesPreorder()) {
    const OperatorCostFunctions& ocf = (*funcs)[static_cast<size_t>(node->id)];
    const double x = (*estimates).ops[static_cast<size_t>(node->id)].rho;
    double xl = 1.0, xr = 1.0;
    std::vector<double> rows_by_id(4, 0.0);
    for (const PlanNode* n : plan.NodesPreorder()) {
      rows_by_id[static_cast<size_t>(n->id)] =
          (*estimates).ops[static_cast<size_t>(n->id)].rho * n->leaf_row_product;
    }
    if (node->left != nullptr) {
      xl = (*estimates).ops[static_cast<size_t>(node->left->id)].rho;
    }
    if (node->right != nullptr) {
      xr = (*estimates).ops[static_cast<size_t>(node->right->id)].rho;
    }
    const ResourceVector oracle =
        EstimateNodeResources(*node, fx.db, rows_by_id, engine);
    for (int u = 0; u < kNumCostUnits; ++u) {
      const double fitted = ocf.funcs[u].Eval(x, xl, xr);
      const double expected = oracle.Get(u);
      const double tol = std::max(1.0, 0.08 * std::fabs(expected));
      EXPECT_NEAR(fitted, expected, tol)
          << OpTypeName(node->type) << " unit " << u;
    }
  }
}

TEST(Fitter, WorkCoefficientsAreNonnegative) {
  FitFixture fx;
  auto join = MakeHashJoin(
      MakeSeqScan("r", Expr::Cmp(1, CmpOp::kLe, Value::Double(0.4))),
      MakeSeqScan("s", nullptr), {{0, 0}});
  Plan plan(std::move(join));
  ASSERT_TRUE(plan.Finalize(fx.db).ok());
  SamplingEstimator estimator(&fx.db, &fx.samples);
  auto estimates = estimator.Estimate(plan);
  ASSERT_TRUE(estimates.ok());
  CostFunctionFitter fitter(&fx.db);
  auto funcs = fitter.FitPlan(plan, *estimates);
  ASSERT_TRUE(funcs.ok());
  for (const OperatorCostFunctions& ocf : *funcs) {
    for (int u = 0; u < kNumCostUnits; ++u) {
      const auto& b = ocf.funcs[u].b;
      // All but the final (constant) coefficient must be nonnegative.
      for (size_t i = 0; i + 1 < b.size(); ++i) {
        EXPECT_GE(b[i], -1e-9) << OpTypeName(ocf.op_type) << " unit " << u;
      }
    }
  }
}

TEST(Fitter, SortQuadraticApproximatesNLogNOverLikelyRange) {
  FitFixture fx;
  Plan plan(MakeSort(
      MakeSeqScan("r", Expr::Cmp(1, CmpOp::kLe, Value::Double(0.5))), {0}));
  ASSERT_TRUE(plan.Finalize(fx.db).ok());
  SamplingEstimator estimator(&fx.db, &fx.samples);
  auto estimates = estimator.Estimate(plan);
  ASSERT_TRUE(estimates.ok());
  CostFunctionFitter fitter(&fx.db);
  auto funcs = fitter.FitPlan(plan, *estimates);
  ASSERT_TRUE(funcs.ok());
  const FittedCostFunction& no = (*funcs)[0].funcs[kCostOperator];
  EXPECT_EQ(no.type, CostFuncType::kQuadraticLeft);
  // Compare against Nl log2 Nl across the fitted interval.
  const Gaussian xl = (*estimates).ops[1].AsGaussian();
  for (double offset : {-2.0, -1.0, 0.0, 1.0, 2.0}) {
    const double x = xl.mean + offset * xl.stddev();
    const double nl = x * 4000.0;
    const double exact = nl * std::log2(std::max(2.0, nl));
    const double approx = no.Eval(x, x, 0.0);
    EXPECT_NEAR(approx, exact, 0.05 * exact + 10.0);
  }
}

TEST(Fitter, VariableIdsFollowPassThrough) {
  FitFixture fx;
  auto join = MakeHashJoin(
      MakeSort(MakeSeqScan("r", Expr::Cmp(1, CmpOp::kLe, Value::Double(0.4))),
               {0}),
      MakeSeqScan("s", nullptr), {{0, 0}});
  Plan plan(std::move(join));
  ASSERT_TRUE(plan.Finalize(fx.db).ok());
  SamplingEstimator estimator(&fx.db, &fx.samples);
  auto estimates = estimator.Estimate(plan);
  ASSERT_TRUE(estimates.ok());
  CostFunctionFitter fitter(&fx.db);
  auto funcs = fitter.FitPlan(plan, *estimates);
  ASSERT_TRUE(funcs.ok());
  // Node 0 = join, node 1 = sort, node 2 = scan r, node 3 = scan s.
  // The join's left variable must resolve through the sort to the scan.
  EXPECT_EQ((*funcs)[0].var_left, 2);
  EXPECT_EQ((*funcs)[0].var_right, 3);
  EXPECT_EQ((*funcs)[1].var_own, 2);
}

TEST(Fitter, DegenerateVarianceStillFits) {
  FitFixture fx;
  // A full scan has rho = 1, variance = 0: the grid degenerates but the
  // fit must still reproduce the oracle at the point.
  Plan plan(MakeSeqScan("r", nullptr));
  ASSERT_TRUE(plan.Finalize(fx.db).ok());
  SamplingEstimator estimator(&fx.db, &fx.samples);
  auto estimates = estimator.Estimate(plan);
  ASSERT_TRUE(estimates.ok());
  CostFunctionFitter fitter(&fx.db);
  auto funcs = fitter.FitPlan(plan, *estimates);
  ASSERT_TRUE(funcs.ok());
  const Table& r = fx.db.GetTable("r");
  EXPECT_NEAR((*funcs)[0].funcs[kCostSeqPage].Eval(1.0, 1.0, 1.0),
              static_cast<double>(r.num_pages()), 1.0);
  EXPECT_NEAR((*funcs)[0].funcs[kCostTuple].Eval(1.0, 1.0, 1.0), 4000.0, 1.0);
}

}  // namespace
}  // namespace uqp
