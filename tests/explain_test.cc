// Tests for the EXPLAIN-style prediction report and the histogram
// scan-selectivity mode.

#include <gtest/gtest.h>

#include <cmath>

#include "core/explain.h"
#include "core/predictor.h"
#include "cost/calibration.h"
#include "datagen/tpch.h"
#include "engine/planner.h"
#include "hw/machine.h"
#include "sampling/sample_db.h"
#include "workload/common.h"

namespace uqp {
namespace {

struct Fixture {
  Database db = MakeTpchDatabase(TpchConfig::Profile("tiny"));
  CostUnits units;
  SampleDb samples;
  Plan plan;

  Fixture() {
    SimulatedMachine machine(MachineProfile::PC1(), 2);
    Calibrator calibrator(&machine);
    units = calibrator.Calibrate();
    SampleOptions so;
    so.sampling_ratio = 0.1;
    samples = SampleDb::Build(db, so);
    Rng rng(3);
    ConstantPicker pick(&db, &rng);
    JoinChainBuilder chain(&db);
    chain.Start("lineitem", pick.LessEqAtFraction("lineitem", "l_shipdate", 0.4))
        .Join("orders", nullptr, {{"lineitem.l_orderkey", "o_orderkey"}});
    auto plan_or = OptimizePlan(chain.Finish(), db);
    EXPECT_TRUE(plan_or.ok());
    plan = std::move(plan_or).value();
  }
};

TEST(Explain, SharesSumToOneAndMeansSumToPrediction) {
  Fixture fx;
  Predictor predictor(&fx.db, &fx.samples, fx.units);
  auto pred = predictor.Predict(fx.plan);
  ASSERT_TRUE(pred.ok());
  const auto ops = ExplainOperators(fx.plan, *pred, fx.units);
  ASSERT_EQ(ops.size(), static_cast<size_t>(fx.plan.num_operators()));
  double share = 0.0, mean = 0.0;
  for (const OperatorExplain& op : ops) {
    EXPECT_GE(op.expected_ms, 0.0) << op.label;
    EXPECT_GE(op.stddev_ms, 0.0) << op.label;
    share += op.share;
    mean += op.expected_ms;
  }
  EXPECT_NEAR(share, 1.0, 1e-9);
  EXPECT_NEAR(mean, pred->mean(), 0.01 * pred->mean());
}

TEST(Explain, LabelsIncludeTableNames) {
  Fixture fx;
  Predictor predictor(&fx.db, &fx.samples, fx.units);
  auto pred = predictor.Predict(fx.plan);
  ASSERT_TRUE(pred.ok());
  const auto ops = ExplainOperators(fx.plan, *pred, fx.units);
  bool saw_lineitem = false;
  for (const OperatorExplain& op : ops) {
    if (op.label.find("lineitem") != std::string::npos) saw_lineitem = true;
  }
  EXPECT_TRUE(saw_lineitem);
}

TEST(Explain, RenderContainsHeaderAndOperators) {
  Fixture fx;
  Predictor predictor(&fx.db, &fx.samples, fx.units);
  auto pred = predictor.Predict(fx.plan);
  ASSERT_TRUE(pred.ok());
  const std::string text = RenderExplain(fx.plan, *pred, fx.units);
  EXPECT_NE(text.find("predicted:"), std::string::npos);
  EXPECT_NE(text.find("operator"), std::string::npos);
  EXPECT_NE(text.find("lineitem"), std::string::npos);
  EXPECT_NE(text.find("selectivity"), std::string::npos);
}

TEST(HistogramScanMode, ProducesReasonableScanEstimates) {
  Fixture fx;
  SamplingEstimator estimator(&fx.db, &fx.samples,
                              AggregateEstimateMode::kOptimizer,
                              ScanEstimateMode::kHistogram);
  auto est = estimator.Estimate(fx.plan);
  ASSERT_TRUE(est.ok());
  // The filtered lineitem scan targets ~0.4 selectivity.
  const PlanNode* scan = nullptr;
  for (const PlanNode* n : fx.plan.NodesPreorder()) {
    if (IsScan(n->type) && n->table_name == "lineitem") scan = n;
  }
  ASSERT_NE(scan, nullptr);
  const SelectivityEstimate& e = est->ops[static_cast<size_t>(scan->id)];
  EXPECT_NEAR(e.rho, 0.4, 0.1);
  // Resolution heuristic: one range conjunct over 64 buckets -> ~2/(12*64²).
  EXPECT_GT(e.variance, 0.0);
  EXPECT_LT(e.variance, 1e-3);
  EXPECT_FALSE(e.from_optimizer);
}

TEST(HistogramScanMode, JoinsStillUseSampling) {
  Fixture fx;
  SamplingEstimator sampling(&fx.db, &fx.samples);
  SamplingEstimator histogram(&fx.db, &fx.samples,
                              AggregateEstimateMode::kOptimizer,
                              ScanEstimateMode::kHistogram);
  auto a = sampling.Estimate(fx.plan);
  auto b = histogram.Estimate(fx.plan);
  ASSERT_TRUE(a.ok() && b.ok());
  // The root join's rho comes from the sample run in both modes.
  EXPECT_DOUBLE_EQ(a->ops[0].rho, b->ops[0].rho);
}

TEST(HistogramScanMode, UnfilteredScanIsExact) {
  Fixture fx;
  Plan plan(MakeSeqScan("orders", nullptr));
  ASSERT_TRUE(plan.Finalize(fx.db).ok());
  SamplingEstimator estimator(&fx.db, &fx.samples,
                              AggregateEstimateMode::kOptimizer,
                              ScanEstimateMode::kHistogram);
  auto est = estimator.Estimate(plan);
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->ops[0].rho, 1.0);
  EXPECT_DOUBLE_EQ(est->ops[0].variance, 0.0);
}

TEST(HistogramScanMode, EndToEndThroughPredictor) {
  Fixture fx;
  PredictorOptions options;
  options.scan_mode = ScanEstimateMode::kHistogram;
  Predictor predictor(&fx.db, &fx.samples, fx.units, options);
  auto pred = predictor.Predict(fx.plan);
  ASSERT_TRUE(pred.ok());
  EXPECT_GT(pred->mean(), 0.0);
  EXPECT_GT(pred->stddev(), 0.0);
}

}  // namespace
}  // namespace uqp
