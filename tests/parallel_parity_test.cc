// The determinism contract of intra-query parallel sample execution: for
// every workload plan, the parallel run must be BIT-IDENTICAL to the
// sequential run — same rows, provenance, resource counters,
// selectivities and final N(μ, σ²) — at every thread count. The harness
// asserts byte-equal SampleRunOutput serializations (doubles compared by
// bit pattern, via SampleRunOutputBytes) and exact Prediction equality
// against the num_threads = 1 baseline, plus seed-determinism: two runs
// at the same thread count are identical.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/pipeline.h"
#include "core/predictor.h"
#include "cost/calibration.h"
#include "cost/snapshot.h"
#include "datagen/tpch.h"
#include "engine/executor.h"
#include "engine/plan.h"
#include "engine/planner.h"
#include "hw/machine.h"
#include "sampling/sample_db.h"
#include "service/prediction_service.h"
#include "workload/common.h"

namespace uqp {
namespace {

/// Thread counts every parity check runs at, against the sequential
/// baseline. hardware_concurrency is appended at runtime.
std::vector<int> ParityThreadCounts() {
  std::vector<int> counts = {2, 5};
  const int hw = ResolveNumThreads(0);
  counts.push_back(hw);
  return counts;
}

/// Shared fixture: one tiny TPC-H database, sample tables, calibrated
/// units, and optimized plans from all three workloads (micro, seljoin,
/// TPC-H), capped per workload to keep the suite fast under TSan.
class ParallelParityTest : public ::testing::Test {
 protected:
  struct WorkloadPlans {
    std::string kind;
    std::vector<Plan> plans;
  };

  static void SetUpTestSuite() {
    db_ = new Database(MakeTpchDatabase(TpchConfig::Profile("tiny")));
    // Full-ratio samples: the tiny profile's 5%-samples all fit in a
    // single 1024-row batch, which would leave the chunk-sharded executor
    // paths untested. At ratio 1.0 the big relations span several batches,
    // so scans, builds and probes genuinely fan out.
    SampleOptions sample_options;
    sample_options.sampling_ratio = 1.0;
    samples_ = new SampleDb(SampleDb::Build(*db_, sample_options));
    SimulatedMachine machine(MachineProfile::PC1(), 17);
    Calibrator calibrator(&machine);
    units_ = new CostUnits(calibrator.Calibrate());

    workloads_ = new std::vector<WorkloadPlans>();
    const size_t kPlansPerWorkload = 6;
    for (const char* kind : {"micro", "seljoin", "tpch"}) {
      WorkloadPlans wp;
      wp.kind = kind;
      auto queries = MakeWorkload(*db_, kind, /*seed=*/29, /*size_hint=*/8);
      for (auto& q : queries) {
        if (wp.plans.size() >= kPlansPerWorkload) break;
        auto plan_or = OptimizePlan(std::move(q.logical), *db_);
        if (plan_or.ok()) wp.plans.push_back(std::move(plan_or).value());
      }
      ASSERT_GE(wp.plans.size(), 2u) << kind;
      workloads_->push_back(std::move(wp));
    }
  }

  static void TearDownTestSuite() {
    delete workloads_;
    delete units_;
    delete samples_;
    delete db_;
    workloads_ = nullptr;
    units_ = nullptr;
    samples_ = nullptr;
    db_ = nullptr;
  }

  static SampleRunOutput RunStage(const Plan& plan, int num_threads,
                                  const SampleDb* samples = nullptr,
                                  int64_t max_batch_size = 1024) {
    SampleRunStage stage(db_, samples != nullptr ? samples : samples_,
                         AggregateEstimateMode::kOptimizer,
                         ScanEstimateMode::kSampling, num_threads,
                         /*task_runner=*/nullptr, max_batch_size);
    SampleRunInput in;
    in.plan = &plan;
    auto out = stage.Run(in);
    EXPECT_TRUE(out.ok()) << out.status().ToString();
    return std::move(out).value();
  }

  /// Hand-built plans whose cost concentrates in the operators that were
  /// sequential until this PR: a big sort, a wide aggregation, a merge
  /// join with equal-group cross products, and an ORDER BY + GROUP BY
  /// stack over a merge join. (The planner never emits MergeJoin, so the
  /// workload plans above cannot cover its emission path.)
  static std::vector<Plan> MakeOperatorTailPlans() {
    std::vector<Plan> plans;
    const auto finalize = [&](std::unique_ptr<PlanNode> root) {
      Plan plan(std::move(root));
      ASSERT_TRUE(plan.Finalize(*db_).ok()) << plan.ToString();
      plans.push_back(std::move(plan));
    };
    // Sort-heavy: full lineitem (~6k sample rows at ratio 1.0) ordered by
    // (l_shipdate, l_orderkey).
    finalize(MakeSort(MakeSeqScan("lineitem", nullptr), {10, 0}));
    // Aggregate-heavy: one group per order (~1.5k groups) with the full
    // set of aggregate kinds.
    finalize(MakeAggregate(
        MakeSeqScan("lineitem", nullptr), {0},
        {{AggSpec::Kind::kCount, -1, "cnt"},
         {AggSpec::Kind::kSum, 5, "sum_price"},
         {AggSpec::Kind::kMin, 4, "min_qty"},
         {AggSpec::Kind::kMax, 6, "max_disc"},
         {AggSpec::Kind::kAvg, 7, "avg_tax"}}));
    // Merge-join-heavy: orders x lineitem on orderkey (1-to-many equal
    // groups), both sides sorted.
    finalize(MakeMergeJoin(MakeSort(MakeSeqScan("orders", nullptr), {0}),
                           MakeSort(MakeSeqScan("lineitem", nullptr), {0}),
                           {{0, 0}}));
    // The full tail stacked: ORDER BY revenue over GROUP BY customer over
    // the merge join.
    auto join =
        MakeMergeJoin(MakeSort(MakeSeqScan("orders", nullptr), {0}),
                      MakeSort(MakeSeqScan("lineitem", nullptr), {0}), {{0, 0}});
    auto agg = MakeAggregate(std::move(join), {1},
                             {{AggSpec::Kind::kSum, 12, "revenue"}});
    finalize(MakeSort(std::move(agg), {1}));
    return plans;
  }

  static Database* db_;
  static SampleDb* samples_;
  static CostUnits* units_;
  static std::vector<WorkloadPlans>* workloads_;
};

Database* ParallelParityTest::db_ = nullptr;
SampleDb* ParallelParityTest::samples_ = nullptr;
CostUnits* ParallelParityTest::units_ = nullptr;
std::vector<ParallelParityTest::WorkloadPlans>* ParallelParityTest::workloads_ =
    nullptr;

// The headline contract: every workload plan's SampleRunOutput — rows,
// counters, selectivities, variance components — serializes to the same
// bytes at num_threads ∈ {2, 5, hardware_concurrency} as at 1.
TEST_F(ParallelParityTest, SampleRunBitIdenticalAcrossThreadCounts) {
  for (const auto& wp : *workloads_) {
    for (size_t p = 0; p < wp.plans.size(); ++p) {
      const std::string baseline =
          SampleRunOutputBytes(RunStage(wp.plans[p], 1));
      for (int t : ParityThreadCounts()) {
        EXPECT_EQ(SampleRunOutputBytes(RunStage(wp.plans[p], t)), baseline)
            << wp.kind << " plan " << p << " at num_threads=" << t;
      }
    }
  }
}

// End to end: the full pipeline's N(μ, σ²) — and every variance term in
// the breakdown — is exactly equal under intra-query parallelism.
TEST_F(ParallelParityTest, PredictionBitIdenticalAcrossThreadCounts) {
  PredictorOptions sequential;
  Predictor baseline(db_, samples_, *units_, sequential);
  for (const auto& wp : *workloads_) {
    for (size_t p = 0; p < wp.plans.size(); ++p) {
      auto ref = baseline.Predict(wp.plans[p]);
      ASSERT_TRUE(ref.ok()) << ref.status().ToString();
      for (int t : ParityThreadCounts()) {
        PredictorOptions opts;
        opts.num_threads = t;
        Predictor parallel(db_, samples_, *units_, opts);
        auto got = parallel.Predict(wp.plans[p]);
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        EXPECT_EQ(got->mean(), ref->mean())
            << wp.kind << " plan " << p << " at num_threads=" << t;
        EXPECT_EQ(got->breakdown.variance, ref->breakdown.variance);
        EXPECT_EQ(got->breakdown.var_cost_units, ref->breakdown.var_cost_units);
        EXPECT_EQ(got->breakdown.var_selectivity,
                  ref->breakdown.var_selectivity);
        EXPECT_EQ(got->breakdown.var_cov_bounds, ref->breakdown.var_cov_bounds);
      }
    }
  }
}

// Seed-determinism: two parallel runs at the SAME thread count are
// identical — shard scheduling (which thread claims which morsel, in what
// order) must never leak into the result.
TEST_F(ParallelParityTest, SameThreadCountRunsIdentical) {
  const int threads = 3;
  for (const auto& wp : *workloads_) {
    const Plan& plan = wp.plans[0];
    const std::string first = SampleRunOutputBytes(RunStage(plan, threads));
    for (int rep = 0; rep < 3; ++rep) {
      EXPECT_EQ(SampleRunOutputBytes(RunStage(plan, threads)), first)
          << wp.kind << " rep " << rep;
    }
  }
}

// The estimator's alternative modes run through the same sharded executor
// and Q-counting: GEE aggregate estimation and histogram scan estimation
// must obey the same contract.
TEST_F(ParallelParityTest, AlternativeEstimatorModesBitIdentical) {
  for (const auto mode :
       {AggregateEstimateMode::kOptimizer, AggregateEstimateMode::kGee}) {
    for (const auto scan :
         {ScanEstimateMode::kSampling, ScanEstimateMode::kHistogram}) {
      for (const auto& wp : *workloads_) {
        const Plan& plan = wp.plans[1];
        SampleRunInput in;
        in.plan = &plan;
        SampleRunStage sequential(db_, samples_, mode, scan, 1);
        auto ref = sequential.Run(in);
        ASSERT_TRUE(ref.ok()) << ref.status().ToString();
        SampleRunStage parallel(db_, samples_, mode, scan, 4);
        auto got = parallel.Run(in);
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        EXPECT_EQ(SampleRunOutputBytes(got.value()),
                  SampleRunOutputBytes(ref.value()))
            << wp.kind;
      }
    }
  }
}

// Sample construction is seed-stable at any thread count too: each
// (relation, copy) permutation comes from an Rng substream keyed by its
// stable index, so a pool-built SampleDb equals the sequential one.
TEST_F(ParallelParityTest, SampleDbBuildThreadCountInvariant) {
  SampleOptions opts;
  opts.sampling_ratio = 0.05;
  opts.num_threads = 1;
  const SampleDb sequential = SampleDb::Build(*db_, opts);
  opts.num_threads = 4;
  const SampleDb pooled = SampleDb::Build(*db_, opts);
  // Compare through a sample run: identical samples produce identical
  // selectivity estimates for every plan.
  const Plan& plan = (*workloads_)[1].plans[0];
  EXPECT_EQ(SampleRunOutputBytes(RunStage(plan, 1, &pooled)),
            SampleRunOutputBytes(RunStage(plan, 1, &sequential)));
  // And cell by cell, for one relation's copies.
  for (const std::string& name : db_->TableNames()) {
    ASSERT_EQ(sequential.copies(name), pooled.copies(name));
    for (int c = 0; c < sequential.copies(name); ++c) {
      const Table& a = sequential.Get(name, c);
      const Table& b = pooled.Get(name, c);
      ASSERT_EQ(a.num_rows(), b.num_rows()) << name << " copy " << c;
      for (int64_t r = 0; r < a.num_rows(); ++r) {
        const RowRef ra = a.row(r);
        const RowRef rb = b.row(r);
        for (int col = 0; col < ra.num_columns; ++col) {
          ASSERT_TRUE(ra[col].Equals(rb[col]))
              << name << " copy " << c << " row " << r << " col " << col;
        }
      }
    }
  }
}

// Executor-level contract, checked at maximum resolution: everything an
// ExecResult carries — output rows, provenance ids, retained per-operator
// blocks and every resource counter — is equal under parallelism, across
// batch sizes small enough that every operator spans many morsels.
void ExpectBlocksEqual(const RowBlock& a, const RowBlock& b,
                       const std::string& what) {
  ASSERT_EQ(a.num_rows(), b.num_rows()) << what;
  ASSERT_EQ(a.values.size(), b.values.size()) << what;
  for (size_t i = 0; i < a.values.size(); ++i) {
    ASSERT_TRUE(a.values[i].Equals(b.values[i])) << what << " value " << i;
  }
  ASSERT_EQ(a.prov_width, b.prov_width) << what;
  ASSERT_EQ(a.prov, b.prov) << what;
}

void ExpectExecResultsEqual(const ExecResult& a, const ExecResult& b,
                            const std::string& what) {
  ExpectBlocksEqual(a.output, b.output, what + " output");
  ASSERT_EQ(a.ops.size(), b.ops.size()) << what;
  for (size_t i = 0; i < a.ops.size(); ++i) {
    const OpStats& x = a.ops[i];
    const OpStats& y = b.ops[i];
    EXPECT_EQ(x.actual.ns, y.actual.ns) << what << " op " << i;
    EXPECT_EQ(x.actual.nr, y.actual.nr) << what << " op " << i;
    EXPECT_EQ(x.actual.nt, y.actual.nt) << what << " op " << i;
    EXPECT_EQ(x.actual.ni, y.actual.ni) << what << " op " << i;
    EXPECT_EQ(x.actual.no, y.actual.no) << what << " op " << i;
    EXPECT_EQ(x.left_rows, y.left_rows) << what << " op " << i;
    EXPECT_EQ(x.right_rows, y.right_rows) << what << " op " << i;
    EXPECT_EQ(x.out_rows, y.out_rows) << what << " op " << i;
    EXPECT_EQ(x.leaf_row_product, y.leaf_row_product) << what << " op " << i;
  }
  ASSERT_EQ(a.blocks.size(), b.blocks.size()) << what;
  for (size_t i = 0; i < a.blocks.size(); ++i) {
    ExpectBlocksEqual(a.blocks[i], b.blocks[i],
                      what + " block " + std::to_string(i));
  }
}

TEST_F(ParallelParityTest, ExecutorResultsBitIdenticalAtSmallMorsels) {
  Executor executor(db_);
  // Two plans per workload keeps the {batch} x {threads} grid affordable
  // under TSan.
  for (const auto& wp : *workloads_) {
    for (size_t p = 0; p < 2 && p < wp.plans.size(); ++p) {
      for (int64_t batch : {int64_t{7}, int64_t{64}, int64_t{1024}}) {
        ExecOptions sequential;
        sequential.collect_provenance = true;
        sequential.retain_intermediates = true;
        sequential.max_batch_size = batch;
        auto ref = executor.Execute(wp.plans[p], sequential);
        ASSERT_TRUE(ref.ok()) << ref.status().ToString();
        for (int t : ParityThreadCounts()) {
          ExecOptions parallel = sequential;
          parallel.num_threads = t;
          auto got = executor.Execute(wp.plans[p], parallel);
          ASSERT_TRUE(got.ok()) << got.status().ToString();
          ExpectExecResultsEqual(
              got.value(), ref.value(),
              wp.kind + " plan " + std::to_string(p) + " batch " +
                  std::to_string(batch) + " threads " + std::to_string(t));
        }
      }
    }
  }
}

// A caller-owned pool shared across runs (the service-layer shape) gives
// the same bytes as per-run ephemeral pools.
TEST_F(ParallelParityTest, SharedPoolMatchesEphemeralPools) {
  MorselPool pool(4);
  const Plan& plan = (*workloads_)[0].plans[0];
  SampleRunInput in;
  in.plan = &plan;
  SampleRunStage shared(db_, samples_, AggregateEstimateMode::kOptimizer,
                        ScanEstimateMode::kSampling, 4, &pool);
  SampleRunStage ephemeral(db_, samples_, AggregateEstimateMode::kOptimizer,
                           ScanEstimateMode::kSampling, 4);
  for (int rep = 0; rep < 2; ++rep) {
    auto a = shared.Run(in);
    auto b = ephemeral.Run(in);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(SampleRunOutputBytes(a.value()), SampleRunOutputBytes(b.value()));
  }
}

// The 0 = auto morsel derivation: its output depends only on the bound
// sample cardinalities, so an auto run must equal an explicit run at the
// derived size — and stay bit-identical across thread counts, i.e. auto
// mode joins the determinism contract rather than weakening it.
TEST_F(ParallelParityTest, AutoBatchSizeMatchesDerivedExplicitSize) {
  for (const auto& wp : *workloads_) {
    const Plan& plan = wp.plans[0];
    // Re-derive the expected size exactly as the estimator binds samples:
    // one copy per occurrence, max rows across the bound tables.
    int64_t max_rows = 0;
    std::unordered_map<std::string, int> occurrence;
    for (const PlanNode* leaf : plan.Leaves()) {
      const int occ = occurrence[leaf->table_name]++;
      max_rows = std::max(max_rows,
                          samples_->Get(leaf->table_name, occ).num_rows());
    }
    const int64_t derived = AutoSampleBatchSize(max_rows);
    const std::string explicit_bytes = SampleRunOutputBytes(
        RunStage(plan, 1, /*samples=*/nullptr, derived));
    EXPECT_EQ(SampleRunOutputBytes(RunStage(plan, 1, /*samples=*/nullptr,
                                            /*max_batch_size=*/0)),
              explicit_bytes)
        << wp.kind;
    for (int t : ParityThreadCounts()) {
      EXPECT_EQ(SampleRunOutputBytes(RunStage(plan, t, /*samples=*/nullptr,
                                              /*max_batch_size=*/0)),
                explicit_bytes)
          << wp.kind << " auto batch at num_threads=" << t;
    }
  }
}

// End to end through PredictorOptions: 0 = auto produces a valid, exact
// prediction equal to the derived explicit size at any thread count.
TEST_F(ParallelParityTest, AutoBatchSizePredictionsExact) {
  const Plan& plan = (*workloads_)[0].plans[0];
  PredictorOptions auto_opts;
  auto_opts.max_batch_size = 0;
  Predictor auto_seq(db_, samples_, *units_, auto_opts);
  auto ref = auto_seq.Predict(plan);
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();
  for (int t : ParityThreadCounts()) {
    PredictorOptions opts = auto_opts;
    opts.num_threads = t;
    Predictor parallel(db_, samples_, *units_, opts);
    auto got = parallel.Predict(plan);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got->mean(), ref->mean()) << "auto batch at num_threads=" << t;
    EXPECT_EQ(got->breakdown.variance, ref->breakdown.variance);
  }
}

// The derivation itself: one morsel for single-block samples, ~64 morsels
// clamped to a vectorization-friendly range beyond that.
TEST(AutoSampleBatchSizeTest, DerivationShape) {
  EXPECT_EQ(AutoSampleBatchSize(0), 1);
  EXPECT_EQ(AutoSampleBatchSize(512), 512);
  EXPECT_EQ(AutoSampleBatchSize(4096), 4096);
  EXPECT_EQ(AutoSampleBatchSize(8192), 1024);    // 8192/64 clamped up
  EXPECT_EQ(AutoSampleBatchSize(65536), 1024);   // exactly 64 morsels
  EXPECT_EQ(AutoSampleBatchSize(int64_t{1} << 20), 16384);  // clamped down
}

// ---------------------------------------------------------------------------
// The operator tail (PR 5): sort, aggregation and merge-join emission used
// to be sequential; they now shard onto the same pool under the same
// contract. Sort's comparison counter is defined by the fixed-shape
// blocked merge tree and aggregation's output order by first appearance —
// both functions of (input, max_batch_size) only, so the parity grid
// sweeps batch sizes as well as thread counts.
// ---------------------------------------------------------------------------

TEST_F(ParallelParityTest, OperatorTailSampleRunsBitIdentical) {
  const std::vector<Plan> plans = MakeOperatorTailPlans();
  ASSERT_EQ(plans.size(), 4u);
  for (size_t p = 0; p < plans.size(); ++p) {
    for (int64_t batch : {int64_t{7}, int64_t{64}, int64_t{1024}}) {
      const std::string baseline = SampleRunOutputBytes(
          RunStage(plans[p], 1, /*samples=*/nullptr, batch));
      for (int t : ParityThreadCounts()) {
        EXPECT_EQ(SampleRunOutputBytes(
                      RunStage(plans[p], t, /*samples=*/nullptr, batch)),
                  baseline)
            << "tail plan " << p << " batch " << batch << " threads " << t;
      }
    }
  }
}

TEST_F(ParallelParityTest, OperatorTailPredictionsExact) {
  const std::vector<Plan> plans = MakeOperatorTailPlans();
  for (size_t p = 0; p < plans.size(); ++p) {
    for (int64_t batch : {int64_t{7}, int64_t{64}, int64_t{1024}}) {
      PredictorOptions sequential;
      sequential.max_batch_size = batch;
      Predictor baseline(db_, samples_, *units_, sequential);
      auto ref = baseline.Predict(plans[p]);
      ASSERT_TRUE(ref.ok()) << ref.status().ToString();
      for (int t : ParityThreadCounts()) {
        PredictorOptions opts = sequential;
        opts.num_threads = t;
        Predictor parallel(db_, samples_, *units_, opts);
        auto got = parallel.Predict(plans[p]);
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        EXPECT_EQ(got->mean(), ref->mean())
            << "tail plan " << p << " batch " << batch << " threads " << t;
        EXPECT_EQ(got->breakdown.variance, ref->breakdown.variance);
        EXPECT_EQ(got->breakdown.var_cost_units, ref->breakdown.var_cost_units);
        EXPECT_EQ(got->breakdown.var_selectivity,
                  ref->breakdown.var_selectivity);
        EXPECT_EQ(got->breakdown.var_cov_bounds, ref->breakdown.var_cov_bounds);
      }
    }
  }
}

// Maximum resolution for the tail operators: output rows (including
// chunk-merged aggregate sums), provenance through sorts and merge joins,
// retained blocks and every counter — equal at every (batch, threads)
// point of the grid.
TEST_F(ParallelParityTest, OperatorTailExecutorResultsBitIdentical) {
  Executor executor(db_);
  const std::vector<Plan> plans = MakeOperatorTailPlans();
  for (size_t p = 0; p < plans.size(); ++p) {
    for (int64_t batch : {int64_t{7}, int64_t{64}, int64_t{1024}}) {
      ExecOptions sequential;
      sequential.collect_provenance = true;
      sequential.retain_intermediates = true;
      sequential.max_batch_size = batch;
      auto ref = executor.Execute(plans[p], sequential);
      ASSERT_TRUE(ref.ok()) << ref.status().ToString();
      for (int t : ParityThreadCounts()) {
        ExecOptions parallel = sequential;
        parallel.num_threads = t;
        auto got = executor.Execute(plans[p], parallel);
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        ExpectExecResultsEqual(
            got.value(), ref.value(),
            "tail plan " + std::to_string(p) + " batch " +
                std::to_string(batch) + " threads " + std::to_string(t));
      }
    }
  }
}

// The aggregation chunk-merge is now a width-doubling pairwise tree
// rather than a sequential left fold (PR 10). Near-unique grouping keys
// are the tree's worst case: grouping lineitem by its primary key
// (l_orderkey, l_linenumber) makes every row its own group, so almost no
// chunk-table entry collapses before the final table and every merge
// level carries the full key set. Any order dependence in the tree —
// first-appearance ordering, sum accumulation order, provenance
// attribution — shows up here first. The grid sweeps the same
// {batch} x {threads} points as the rest of the tail suite.
TEST_F(ParallelParityTest, AggregationTreeMergeParityAtNearUniqueKeys) {
  Plan plan(MakeAggregate(MakeSeqScan("lineitem", nullptr), {0, 3},
                          {{AggSpec::Kind::kCount, -1, "cnt"},
                           {AggSpec::Kind::kSum, 5, "sum_price"},
                           {AggSpec::Kind::kAvg, 6, "avg_disc"}}));
  ASSERT_TRUE(plan.Finalize(*db_).ok());

  Executor executor(db_);
  const int64_t input_rows = db_->GetTable("lineitem").num_rows();
  for (int64_t batch : {int64_t{7}, int64_t{64}, int64_t{1024}}) {
    ExecOptions sequential;
    sequential.collect_provenance = true;
    sequential.retain_intermediates = true;
    sequential.max_batch_size = batch;
    auto ref = executor.Execute(plan, sequential);
    ASSERT_TRUE(ref.ok()) << ref.status().ToString();
    // The worst case is real: the primary key makes one group per row, so
    // the merge tree collapses nothing.
    ASSERT_EQ(ref->output.num_rows(), input_rows) << "batch " << batch;
    for (int t : ParityThreadCounts()) {
      ExecOptions parallel = sequential;
      parallel.num_threads = t;
      auto got = executor.Execute(plan, parallel);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ExpectExecResultsEqual(got.value(), ref.value(),
                             "unique-key agg batch " + std::to_string(batch) +
                                 " threads " + std::to_string(t));
    }
  }

  // And through the full pipeline: the sample-run bytes (counters,
  // selectivities, variance inputs) obey the same contract over the
  // full-ratio sample.
  for (int64_t batch : {int64_t{7}, int64_t{64}, int64_t{1024}}) {
    const std::string baseline =
        SampleRunOutputBytes(RunStage(plan, 1, /*samples=*/nullptr, batch));
    for (int t : ParityThreadCounts()) {
      EXPECT_EQ(SampleRunOutputBytes(
                    RunStage(plan, t, /*samples=*/nullptr, batch)),
                baseline)
          << "unique-key agg sample run batch " << batch << " threads " << t;
    }
  }
}

// ---------------------------------------------------------------------------
// The feedback loop (PR 7) joins the determinism contract: replaying a
// fixed observed-runtime trace must produce bit-identical error windows,
// convergence decisions, recalibration counts and recalibrated snapshots
// at every thread count — online learning must not erode reproducibility.
// ---------------------------------------------------------------------------

TEST_F(ParallelParityTest, FeedbackTrajectoryBitIdenticalAcrossThreadCounts) {
  const std::vector<Plan>& plans = (*workloads_)[1].plans;  // seljoin
  ASSERT_GE(plans.size(), 2u);

  // Synthesize the trace from the sequential reference predictions: four
  // accurate rounds (families converge), then six rounds at 2.2x (the
  // machine drifted; the detector must fire exactly once).
  Predictor reference(db_, samples_, *units_);
  std::vector<double> base_means;
  for (const Plan& plan : plans) {
    auto ref = reference.Predict(plan);
    ASSERT_TRUE(ref.ok()) << ref.status().ToString();
    base_means.push_back(ref->mean());
  }
  std::vector<std::pair<size_t, double>> trace;
  for (int round = 0; round < 4; ++round) {
    for (size_t i = 0; i < plans.size(); ++i) {
      trace.emplace_back(i, base_means[i]);
    }
  }
  for (int round = 0; round < 6; ++round) {
    for (size_t i = 0; i < plans.size(); ++i) {
      trace.emplace_back(i, base_means[i] * 2.2);
    }
  }

  struct Trajectory {
    std::vector<FamilyFeedback> families;
    ServiceStats stats;
    std::string snapshot_bytes;
    uint64_t epoch = 0;
  };
  const auto replay = [&](int num_threads) {
    ServiceOptions options;
    options.num_workers = std::max(1, num_threads);
    options.predictor.num_threads = num_threads;
    options.feedback.enabled = true;
    options.feedback.window_size = 4;
    options.feedback.converge_threshold = 0.01;
    options.feedback.drift_threshold = 0.30;
    options.feedback.cooldown_reports = 16;
    options.feedback.probe_interval = 3;
    // Deterministic re-derivation: a fresh fixed-seed machine matching the
    // drifted truth, run through the standard calibrator. The seed depends
    // only on the call index, so the Nth recalibration of every replay
    // produces the same fit.
    int recal_calls = 0;
    options.feedback.recalibrate = [&recal_calls]() {
      SimulatedMachine machine(
          MachineProfile::PC1().WithUnitMeansScaled(2.2),
          static_cast<uint64_t>(1000 + recal_calls));
      ++recal_calls;
      Calibrator calibrator(&machine);
      return calibrator.Calibrate();
    };
    PredictionService service(db_, samples_, *units_, options);
    const auto batch = service.PredictBatch(plans);
    for (const auto& r : batch) EXPECT_TRUE(r.ok());
    for (const auto& step : trace) {
      service.ReportObserved(plans[step.first], step.second);
    }
    Trajectory out;
    out.families = service.FeedbackSnapshot();
    out.stats = service.stats();
    out.snapshot_bytes = CalibrationSnapshotBytes(*service.calibration());
    out.epoch = service.calibration()->epoch;
    return out;
  };

  const Trajectory ref_run = replay(1);
  // The trace is built to actually exercise the loop: families converge in
  // the accurate phase, the drift phase triggers exactly one recalibration
  // (cooldown suppresses the rest of the round), and the post-publish
  // reports re-combine under the new epoch.
  EXPECT_EQ(ref_run.stats.recalibrations, 1u);
  EXPECT_EQ(ref_run.epoch, 2u);
  EXPECT_GT(ref_run.stats.recombines, 0u);
  EXPECT_EQ(ref_run.stats.feedback_reports, trace.size());
  ASSERT_EQ(ref_run.families.size(), plans.size());

  for (int t : ParityThreadCounts()) {
    const Trajectory run = replay(t);
    EXPECT_EQ(run.epoch, ref_run.epoch) << "num_threads=" << t;
    EXPECT_EQ(run.snapshot_bytes, ref_run.snapshot_bytes)
        << "recalibrated snapshot differs at num_threads=" << t;
    EXPECT_EQ(run.stats.recalibrations, ref_run.stats.recalibrations);
    EXPECT_EQ(run.stats.feedback_reports, ref_run.stats.feedback_reports);
    EXPECT_EQ(run.stats.feedback_dropped, ref_run.stats.feedback_dropped);
    EXPECT_EQ(run.stats.converged_families, ref_run.stats.converged_families);
    EXPECT_EQ(run.stats.feedback_families, ref_run.stats.feedback_families);
    ASSERT_EQ(run.families.size(), ref_run.families.size());
    for (size_t i = 0; i < ref_run.families.size(); ++i) {
      const FamilyFeedback& a = ref_run.families[i];
      const FamilyFeedback& b = run.families[i];
      EXPECT_EQ(b.fingerprint, a.fingerprint) << "family " << i;
      EXPECT_EQ(b.reports, a.reports) << "family " << i;
      EXPECT_EQ(b.window_updates, a.window_updates) << "family " << i;
      EXPECT_EQ(b.converged, a.converged) << "family " << i;
      ASSERT_EQ(b.window.size(), a.window.size()) << "family " << i;
      for (size_t w = 0; w < a.window.size(); ++w) {
        EXPECT_EQ(b.window[w], a.window[w])
            << "family " << i << " window slot " << w
            << " at num_threads=" << t;
      }
    }
  }
}

}  // namespace
}  // namespace uqp
