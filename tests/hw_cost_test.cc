// Tests for the simulated machines and the cost-unit calibration framework.

#include <gtest/gtest.h>

#include <cmath>

#include "cost/calibration.h"
#include "hw/machine.h"
#include "math/stats.h"

namespace uqp {
namespace {

TEST(Machine, ProfilesAreOrderedSensibly) {
  for (const MachineProfile& p : {MachineProfile::PC1(), MachineProfile::PC2()}) {
    EXPECT_GT(p.cr.mean, p.cs.mean) << p.name;       // random I/O >> sequential
    EXPECT_GT(p.cs.mean, p.ct.mean) << p.name;       // I/O >> CPU
    EXPECT_GT(p.ct.mean, p.ci.mean) << p.name;
    EXPECT_GT(p.ci.mean, p.co.mean) << p.name;
  }
  // PC2 is the faster machine.
  EXPECT_LT(MachineProfile::PC2().ct.mean, MachineProfile::PC1().ct.mean);
  EXPECT_LT(MachineProfile::PC2().cr.mean, MachineProfile::PC1().cr.mean);
}

TEST(Machine, UnitAccessorCoversAllFive) {
  const MachineProfile p = MachineProfile::PC1();
  EXPECT_DOUBLE_EQ(p.unit(0).mean, p.cs.mean);
  EXPECT_DOUBLE_EQ(p.unit(1).mean, p.cr.mean);
  EXPECT_DOUBLE_EQ(p.unit(2).mean, p.ct.mean);
  EXPECT_DOUBLE_EQ(p.unit(3).mean, p.ci.mean);
  EXPECT_DOUBLE_EQ(p.unit(4).mean, p.co.mean);
}

TEST(Machine, DeterministicPerSeed) {
  ResourceVector work;
  work.ns = 100;
  work.nt = 10000;
  SimulatedMachine a(MachineProfile::PC1(), 5);
  SimulatedMachine b(MachineProfile::PC1(), 5);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.ExecuteOnce({work}), b.ExecuteOnce({work}));
  }
}

TEST(Machine, TimeScalesWithWork) {
  SimulatedMachine machine(MachineProfile::PC1(), 5);
  ResourceVector small, large;
  small.nt = 1000;
  large.nt = 100000;
  const double t_small = machine.ExecuteAveraged({small}, 20);
  const double t_large = machine.ExecuteAveraged({large}, 20);
  EXPECT_NEAR(t_large / t_small, 100.0, 15.0);
}

TEST(Machine, RunToRunVarianceMatchesCostUnitDispersion) {
  // A pure-c_t workload's relative run-to-run sd should be close to the
  // c_t coefficient of variation (plus the small noise/jitter terms).
  SimulatedMachine machine(MachineProfile::PC1(), 6);
  ResourceVector work;
  work.nt = 100000;
  RunningStats stats;
  for (int i = 0; i < 2000; ++i) stats.Add(machine.ExecuteOnce({work}));
  const double cv = stats.stddev() / stats.mean();
  EXPECT_NEAR(cv, MachineProfile::PC1().ct.cv, 0.04);
}

TEST(Machine, AveragingReducesDispersion) {
  SimulatedMachine machine(MachineProfile::PC1(), 7);
  ResourceVector work;
  work.nr = 500;
  RunningStats single, averaged;
  for (int i = 0; i < 400; ++i) single.Add(machine.ExecuteOnce({work}));
  for (int i = 0; i < 400; ++i) averaged.Add(machine.ExecuteAveraged({work}, 5));
  EXPECT_LT(averaged.stddev(), 0.75 * single.stddev());
  EXPECT_NEAR(averaged.mean(), single.mean(), 0.1 * single.mean());
}

TEST(Machine, BufferHitRateLowersRandomIoCost) {
  ResourceVector work;
  work.nr = 1000;
  MachineProfile cold = MachineProfile::PC1();
  cold.buffer_hit_rate = 0.0;
  MachineProfile warm = MachineProfile::PC1();
  warm.buffer_hit_rate = 0.9;
  SimulatedMachine cold_machine(cold, 8);
  SimulatedMachine warm_machine(warm, 8);
  EXPECT_GT(cold_machine.ExecuteAveraged({work}, 30),
            2.0 * warm_machine.ExecuteAveraged({work}, 30));
}

TEST(Machine, OverlapHidesSmallerComponent) {
  // With full overlap the CPU time disappears under the I/O time.
  MachineProfile no_overlap = MachineProfile::PC1();
  no_overlap.overlap_discount = 0.0;
  no_overlap.noise_cv = 0.0;
  no_overlap.per_op_jitter_cv = 0.0;
  MachineProfile full_overlap = no_overlap;
  full_overlap.overlap_discount = 1.0;
  ResourceVector work;
  work.ns = 2000;   // ~100ms I/O
  work.nt = 100000; // ~50ms CPU
  SimulatedMachine a(no_overlap, 9);
  SimulatedMachine b(full_overlap, 9);
  const double ta = a.ExecuteAveraged({work}, 50);
  const double tb = b.ExecuteAveraged({work}, 50);
  EXPECT_GT(ta, tb * 1.2);
}

// ---------- Calibration ----------

class CalibrationTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CalibrationTest, RecoversUnitMeans) {
  const bool pc1 = std::string(GetParam()) == "PC1";
  MachineProfile profile = pc1 ? MachineProfile::PC1() : MachineProfile::PC2();
  SimulatedMachine machine(profile, 77);
  Calibrator calibrator(&machine);
  const CostUnits units = calibrator.Calibrate();

  // CPU units calibrate tightly; sequential I/O within ~15%.
  EXPECT_NEAR(units.Get(kCostTuple).mean, profile.ct.mean, 0.1 * profile.ct.mean);
  EXPECT_NEAR(units.Get(kCostOperator).mean, profile.co.mean,
              0.25 * profile.co.mean);
  EXPECT_NEAR(units.Get(kCostIndexTuple).mean, profile.ci.mean,
              0.25 * profile.ci.mean);
  EXPECT_NEAR(units.Get(kCostSeqPage).mean, profile.cs.mean,
              0.15 * profile.cs.mean);
  // Random I/O calibrates BELOW the uncached truth (buffer cache absorbs
  // part of it) but stays within a sane band.
  EXPECT_LT(units.Get(kCostRandPage).mean, profile.cr.mean);
  EXPECT_GT(units.Get(kCostRandPage).mean, 0.2 * profile.cr.mean);
}

TEST_P(CalibrationTest, ReportsPositiveVariances) {
  const bool pc1 = std::string(GetParam()) == "PC1";
  SimulatedMachine machine(pc1 ? MachineProfile::PC1() : MachineProfile::PC2(),
                           78);
  Calibrator calibrator(&machine);
  const CalibrationReport report = calibrator.CalibrateWithReport();
  for (int u = 0; u < kNumCostUnits; ++u) {
    EXPECT_GT(report.units.Get(u).variance, 0.0) << CostUnitSymbol(u);
    EXPECT_GE(report.samples[u].size(), 30u) << CostUnitSymbol(u);
  }
  // Random I/O is the most uncertain unit in relative terms.
  const auto rel_sd = [&report](int u) {
    return report.units.Get(u).stddev() / report.units.Get(u).mean;
  };
  EXPECT_GT(rel_sd(kCostRandPage), rel_sd(kCostTuple));
}

INSTANTIATE_TEST_SUITE_P(Machines, CalibrationTest,
                         ::testing::Values("PC1", "PC2"));

TEST(Calibration, MoreRepetitionsTightenTheEstimate) {
  CalibrationOptions few, many;
  few.repetitions_per_size = 2;
  many.repetitions_per_size = 24;
  double err_few = 0.0, err_many = 0.0;
  // Average absolute error of the c_t mean across seeds.
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    SimulatedMachine m1(MachineProfile::PC1(), seed);
    SimulatedMachine m2(MachineProfile::PC1(), seed);
    err_few += std::fabs(Calibrator(&m1).Calibrate(few).Get(kCostTuple).mean -
                         MachineProfile::PC1().ct.mean);
    err_many += std::fabs(Calibrator(&m2).Calibrate(many).Get(kCostTuple).mean -
                          MachineProfile::PC1().ct.mean);
  }
  EXPECT_LT(err_many, err_few);
}

TEST(CostUnits, WithoutVarianceZeroesOnlyVariance) {
  CostUnits units;
  units.Get(0) = Gaussian(1.0, 0.5);
  units.Get(1) = Gaussian(2.0, 0.25);
  const CostUnits stripped = units.WithoutVariance();
  EXPECT_DOUBLE_EQ(stripped.Get(0).mean, 1.0);
  EXPECT_DOUBLE_EQ(stripped.Get(0).variance, 0.0);
  EXPECT_DOUBLE_EQ(stripped.Get(1).mean, 2.0);
}

TEST(CostUnits, MeanDotMatchesEq1) {
  CostUnits units;
  for (int u = 0; u < kNumCostUnits; ++u) {
    units.Get(u) = Gaussian(static_cast<double>(u + 1), 0.0);
  }
  EXPECT_DOUBLE_EQ(units.MeanDot(1, 1, 1, 1, 1), 1 + 2 + 3 + 4 + 5);
}

}  // namespace
}  // namespace uqp
