// End-to-end smoke test: tiny database, full prediction pipeline.

#include <gtest/gtest.h>

#include "core/predictor.h"
#include "cost/calibration.h"
#include "datagen/tpch.h"
#include "engine/planner.h"
#include "exp/harness.h"
#include "hw/machine.h"
#include "sampling/sample_db.h"
#include "workload/common.h"

namespace uqp {
namespace {

TEST(Smoke, TinyDatabaseBuilds) {
  Database db = MakeTpchDatabase(TpchConfig::Profile("tiny"));
  EXPECT_GT(db.GetTable("lineitem").num_rows(), 1000);
  EXPECT_EQ(db.GetTable("region").num_rows(), 5);
  EXPECT_TRUE(db.catalog().Has("lineitem"));
}

TEST(Smoke, EndToEndPrediction) {
  Database db = MakeTpchDatabase(TpchConfig::Profile("tiny"));

  SampleOptions sample_options;
  sample_options.sampling_ratio = 0.1;
  SampleDb samples = SampleDb::Build(db, sample_options);

  SimulatedMachine machine(MachineProfile::PC1(), 99);
  Calibrator calibrator(&machine);
  CostUnits units = calibrator.Calibrate();
  EXPECT_GT(units.Get(kCostSeqPage).mean, 0.0);
  EXPECT_GT(units.Get(kCostRandPage).mean, units.Get(kCostSeqPage).mean);

  // A three-way join with filters.
  JoinChainBuilder chain(&db);
  Rng rng(5);
  ConstantPicker pick(&db, &rng);
  chain
      .Start("lineitem", pick.LessEqAtFraction("lineitem", "l_shipdate", 0.5))
      .Join("orders", pick.LessEqAtFraction("orders", "o_totalprice", 0.7),
            {{"lineitem.l_orderkey", "o_orderkey"}})
      .Join("customer", nullptr, {{"orders.o_custkey", "c_custkey"}});

  auto plan_or = OptimizePlan(chain.Finish(), db);
  ASSERT_TRUE(plan_or.ok()) << plan_or.status().ToString();
  Plan plan = std::move(plan_or).value();

  Predictor predictor(&db, &samples, units);
  auto pred_or = predictor.Predict(plan);
  ASSERT_TRUE(pred_or.ok()) << pred_or.status().ToString();
  const Prediction& pred = *pred_or;

  EXPECT_GT(pred.mean(), 0.0);
  EXPECT_GT(pred.stddev(), 0.0);
  double lo = 0.0, hi = 0.0;
  pred.ConfidenceInterval(0.7, &lo, &hi);
  EXPECT_LT(lo, pred.mean());
  EXPECT_GT(hi, pred.mean());

  // The actual run should land within a broad band of the prediction.
  Executor executor(&db);
  auto full_or = executor.Execute(plan, ExecOptions{});
  ASSERT_TRUE(full_or.ok());
  const double actual = machine.ExecuteAveraged(*full_or, 5);
  EXPECT_GT(actual, 0.0);
  // Not a tight assertion — just catch order-of-magnitude breakage.
  EXPECT_LT(pred.mean() / actual, 50.0);
  EXPECT_LT(actual / pred.mean(), 50.0);
}

TEST(Smoke, HarnessMicroEvaluation) {
  HarnessOptions options;
  options.profile = "tiny";
  ExperimentHarness harness(options);
  ASSERT_TRUE(harness.LoadWorkload("micro", 16).ok());
  auto result_or = harness.Evaluate("micro", "PC1", 0.1);
  ASSERT_TRUE(result_or.ok()) << result_or.status().ToString();
  const EvaluationResult& result = *result_or;
  // Grid layout may round the requested size down a little.
  EXPECT_GE(result.records.size(), 10u);
  EXPECT_LE(result.records.size(), 16u);
  for (const QueryRecord& r : result.records) {
    EXPECT_GT(r.outcome.predicted_mean, 0.0) << r.name;
    EXPECT_GE(r.outcome.predicted_stddev, 0.0) << r.name;
    EXPECT_GT(r.outcome.actual_time, 0.0) << r.name;
    EXPECT_GT(r.overhead_ratio, 0.0) << r.name;
    EXPECT_LT(r.overhead_ratio, 1.0) << r.name;
  }
}

}  // namespace
}  // namespace uqp
