// Tests for the MICRO / SELJOIN / TPCH workload generators: every
// generated query must plan and execute, and the workloads must have the
// structural properties the paper's benchmarks rely on.

#include <gtest/gtest.h>

#include <set>

#include "datagen/tpch.h"
#include "engine/executor.h"
#include "engine/planner.h"
#include "workload/common.h"

namespace uqp {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database(MakeTpchDatabase(TpchConfig::Profile("tiny")));
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }
  static Database* db_;

  static std::vector<Plan> PlanAll(std::vector<WorkloadQuery> queries) {
    std::vector<Plan> plans;
    for (auto& q : queries) {
      auto plan = OptimizePlan(std::move(q.logical), *db_);
      EXPECT_TRUE(plan.ok()) << q.name << ": " << plan.status().ToString();
      if (plan.ok()) plans.push_back(std::move(plan).value());
    }
    return plans;
  }
};
Database* WorkloadTest::db_ = nullptr;

TEST_F(WorkloadTest, MicroQueriesAllExecute) {
  MicroOptions options;
  options.selection_queries = 24;
  options.join_queries = 16;
  auto queries = MakeMicroWorkload(*db_, options);
  EXPECT_GE(queries.size(), 36u);
  Executor executor(db_);
  for (Plan& plan : PlanAll(std::move(queries))) {
    auto result = executor.Execute(plan, ExecOptions{});
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }
}

TEST_F(WorkloadTest, MicroSelectionsSpanSelectivitySpace) {
  MicroOptions options;
  options.selection_queries = 32;
  options.join_queries = 0;
  auto queries = MakeMicroWorkload(*db_, options);
  Executor executor(db_);
  double min_sel = 1.0, max_sel = 0.0;
  for (Plan& plan : PlanAll(std::move(queries))) {
    auto result = executor.Execute(plan, ExecOptions{});
    ASSERT_TRUE(result.ok());
    const double sel = result->ops[0].selectivity();
    min_sel = std::min(min_sel, sel);
    max_sel = std::max(max_sel, sel);
  }
  // Picasso-style even coverage of (0, 1).
  EXPECT_LT(min_sel, 0.15);
  EXPECT_GT(max_sel, 0.85);
}

TEST_F(WorkloadTest, MicroJoinQueriesAreTwoWayJoins) {
  MicroOptions options;
  options.selection_queries = 0;
  options.join_queries = 20;
  auto queries = MakeMicroWorkload(*db_, options);
  for (Plan& plan : PlanAll(std::move(queries))) {
    int joins = 0, scans = 0;
    for (const PlanNode* n : plan.NodesPreorder()) {
      joins += IsJoin(n->type) ? 1 : 0;
      scans += IsScan(n->type) ? 1 : 0;
    }
    EXPECT_EQ(joins, 1);
    EXPECT_EQ(scans, 2);
  }
}

TEST_F(WorkloadTest, SelJoinHasNoAggregatesAndDeepJoins) {
  SelJoinOptions options;
  options.instances_per_template = 2;
  auto queries = MakeSelJoinWorkload(*db_, options);
  EXPECT_EQ(queries.size(), 18u);  // 9 templates x 2
  Executor executor(db_);
  int max_joins = 0;
  for (Plan& plan : PlanAll(std::move(queries))) {
    int joins = 0;
    for (const PlanNode* n : plan.NodesPreorder()) {
      EXPECT_NE(n->type, OpType::kAggregate);
      joins += IsJoin(n->type) ? 1 : 0;
    }
    EXPECT_GE(joins, 1);
    max_joins = std::max(max_joins, joins);
    auto result = executor.Execute(plan, ExecOptions{});
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }
  EXPECT_GE(max_joins, 4);  // multi-way joins present (e.g. SJ5)
}

TEST_F(WorkloadTest, TpchTemplatesAllExecuteAndAggregate) {
  TpchWorkloadOptions options;
  options.instances_per_template = 1;
  auto queries = MakeTpchWorkload(*db_, options);
  EXPECT_EQ(queries.size(), 14u);  // the paper's 14 templates
  std::set<std::string> names;
  for (const auto& q : queries) names.insert(q.name);
  EXPECT_EQ(names.size(), queries.size());
  Executor executor(db_);
  for (Plan& plan : PlanAll(std::move(queries))) {
    bool has_aggregate = false;
    for (const PlanNode* n : plan.NodesPreorder()) {
      has_aggregate |= n->type == OpType::kAggregate;
    }
    EXPECT_TRUE(has_aggregate);
    auto result = executor.Execute(plan, ExecOptions{});
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_GE(result->output.num_rows(), 0);
  }
}

TEST_F(WorkloadTest, InstancesOfATemplateDiffer) {
  TpchWorkloadOptions options;
  options.instances_per_template = 2;
  auto queries = MakeTpchWorkload(*db_, options);
  // Find the two q6 instances and compare their predicates.
  const Expr* first = nullptr;
  for (const auto& q : queries) {
    if (q.name.rfind("tpch_q6_", 0) != 0) continue;
    const PlanNode* scan = q.logical.get();
    while (scan->left != nullptr) scan = scan->left.get();
    if (first == nullptr) {
      first = scan->predicate.get();
    } else {
      EXPECT_NE(first->ToString(), scan->predicate->ToString());
    }
  }
}

TEST_F(WorkloadTest, DispatchByKind) {
  EXPECT_FALSE(MakeWorkload(*db_, "micro", 1, 10).empty());
  EXPECT_FALSE(MakeWorkload(*db_, "seljoin", 1, 9).empty());
  EXPECT_FALSE(MakeWorkload(*db_, "tpch", 1, 14).empty());
  EXPECT_DEATH(MakeWorkload(*db_, "nope", 1, 10), "unknown workload");
}

TEST_F(WorkloadTest, SizeHintCapsQueryCount) {
  EXPECT_LE(MakeWorkload(*db_, "micro", 1, 12).size(), 12u);
  EXPECT_LE(MakeWorkload(*db_, "tpch", 1, 14).size(), 14u);
}

TEST_F(WorkloadTest, DeterministicPerSeed) {
  auto a = MakeWorkload(*db_, "seljoin", 99, 9);
  auto b = MakeWorkload(*db_, "seljoin", 99, 9);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    const PlanNode* sa = a[i].logical.get();
    const PlanNode* sb = b[i].logical.get();
    while (sa->left != nullptr) sa = sa->left.get();
    while (sb->left != nullptr) sb = sb->left.get();
    if (sa->predicate != nullptr && sb->predicate != nullptr) {
      EXPECT_EQ(sa->predicate->ToString(), sb->predicate->ToString());
    }
  }
}

TEST_F(WorkloadTest, ConstantPickerTargetsSelectivity) {
  Rng rng(3);
  ConstantPicker pick(db_, &rng);
  Executor executor(db_);
  for (double target : {0.1, 0.5, 0.9}) {
    Plan plan(MakeSeqScan("lineitem",
                          pick.LessEqAtFraction("lineitem", "l_quantity", target)));
    ASSERT_TRUE(plan.Finalize(*db_).ok());
    auto result = executor.Execute(plan, ExecOptions{});
    ASSERT_TRUE(result.ok());
    EXPECT_NEAR(result->ops[0].selectivity(), target, 0.08) << target;
  }
}

TEST_F(WorkloadTest, JoinChainBuilderTracksColumns) {
  JoinChainBuilder chain(db_);
  chain.Start("lineitem", nullptr)
      .Join("orders", nullptr, {{"lineitem.l_orderkey", "o_orderkey"}});
  const int lineitem_cols = db_->GetTable("lineitem").schema().num_columns();
  EXPECT_EQ(chain.Col("lineitem.l_orderkey"), 0);
  EXPECT_EQ(chain.Col("orders.o_orderkey"), lineitem_cols);
  EXPECT_EQ(chain.Col("orders.o_custkey"), lineitem_cols + 1);
}

}  // namespace
}  // namespace uqp
