// Tests for the storage substrate: values, schemas, tables with the page
// model, equi-depth histograms and catalog statistics.

#include <gtest/gtest.h>

#include <cmath>

#include "storage/catalog.h"
#include "storage/database.h"
#include "storage/histogram.h"
#include "storage/schema.h"
#include "storage/table.h"
#include "math/rng.h"
#include "storage/value.h"

namespace uqp {
namespace {

// ---------- Value / StringPool ----------

TEST(StringPool, InternIsIdempotent) {
  StringPool& pool = StringPool::Global();
  const int32_t a = pool.Intern("uqp-test-token-1");
  const int32_t b = pool.Intern("uqp-test-token-1");
  const int32_t c = pool.Intern("uqp-test-token-2");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(pool.Lookup(a), "uqp-test-token-1");
}

TEST(Value, NumericEqualityCrossType) {
  EXPECT_TRUE(Value::Int64(5).Equals(Value::Double(5.0)));
  EXPECT_FALSE(Value::Int64(5).Equals(Value::Double(5.5)));
  EXPECT_TRUE(Value::Int64(5).Equals(Value::Int64(5)));
}

TEST(Value, StringEqualityByPoolId) {
  EXPECT_TRUE(Value::String("abc").Equals(Value::String("abc")));
  EXPECT_FALSE(Value::String("abc").Equals(Value::String("abd")));
  EXPECT_FALSE(Value::String("5").Equals(Value::Int64(5)));
}

TEST(Value, HashConsistentWithEquality) {
  // Int-valued doubles must hash like the equal int64 (equi-join support).
  EXPECT_EQ(Value::Int64(42).Hash(), Value::Double(42.0).Hash());
  EXPECT_EQ(Value::String("x").Hash(), Value::String("x").Hash());
}

TEST(Value, NumericCompare) {
  EXPECT_LT(Value::Int64(1).Compare(Value::Double(1.5)), 0);
  EXPECT_GT(Value::Double(2.0).Compare(Value::Int64(1)), 0);
  EXPECT_EQ(Value::Int64(3).Compare(Value::Int64(3)), 0);
}

TEST(Value, ToString) {
  EXPECT_EQ(Value::Int64(7).ToString(), "7");
  EXPECT_EQ(Value::String("hi").ToString(), "hi");
}

// ---------- Schema ----------

TEST(Schema, IndexOfAndWidth) {
  Schema s({{"a", ValueType::kInt64}, {"b", ValueType::kString, 20}});
  EXPECT_EQ(s.num_columns(), 2);
  EXPECT_EQ(s.IndexOf("a"), 0);
  EXPECT_EQ(s.IndexOf("b"), 1);
  EXPECT_EQ(s.IndexOf("c"), -1);
  EXPECT_EQ(s.TupleWidthBytes(), 24 + 8 + 20);
}

TEST(Schema, Concat) {
  Schema l({{"a", ValueType::kInt64}});
  Schema r({{"b", ValueType::kDouble}, {"c", ValueType::kInt64}});
  const Schema j = Schema::Concat(l, r);
  EXPECT_EQ(j.num_columns(), 3);
  EXPECT_EQ(j.column(0).name, "a");
  EXPECT_EQ(j.column(2).name, "c");
}

// ---------- Table ----------

Table MakeNumbersTable(int64_t rows) {
  Table t("numbers", Schema({{"id", ValueType::kInt64},
                             {"val", ValueType::kDouble}}));
  for (int64_t i = 0; i < rows; ++i) {
    // val descends so the ordered index differs from row order.
    t.AppendRow({Value::Int64(i), Value::Double(static_cast<double>(rows - i))});
  }
  return t;
}

TEST(Table, PageModel) {
  Table t = MakeNumbersTable(1000);
  // width = 24 + 8 + 8 = 40 bytes -> 204 rows/page.
  EXPECT_EQ(t.rows_per_page(), kPageSizeBytes / 40);
  EXPECT_EQ(t.num_pages(), (1000 + t.rows_per_page() - 1) / t.rows_per_page());
}

TEST(Table, EmptyTableHasOnePage) {
  Table t("empty", Schema({{"a", ValueType::kInt64}}));
  EXPECT_EQ(t.num_rows(), 0);
  EXPECT_EQ(t.num_pages(), 1);
}

TEST(Table, OrderedIndexSortsByValue) {
  Table t = MakeNumbersTable(100);
  const auto& index = t.OrderedIndex(1);
  ASSERT_EQ(index.size(), 100u);
  for (size_t i = 1; i < index.size(); ++i) {
    EXPECT_LE(t.at(index[i - 1], 1).AsDouble(), t.at(index[i], 1).AsDouble());
  }
  // val is descending in row order, so index 0 of the ordered index must be
  // the last row.
  EXPECT_EQ(index[0], 99u);
}

TEST(Table, DeclareIndex) {
  Table t = MakeNumbersTable(10);
  EXPECT_FALSE(t.HasIndex(1));
  t.DeclareIndex(1);
  EXPECT_TRUE(t.HasIndex(1));
}

TEST(Table, RowAccess) {
  Table t = MakeNumbersTable(5);
  const RowRef r = t.row(2);
  EXPECT_EQ(r[0].AsInt64(), 2);
  EXPECT_DOUBLE_EQ(r[1].AsDouble(), 3.0);
}

// ---------- Histogram ----------

TEST(Histogram, EmptyBehaviour) {
  EquiDepthHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.FractionLessEq(1.0), 0.0);
}

TEST(Histogram, UniformFractions) {
  std::vector<double> values;
  for (int i = 0; i < 10000; ++i) values.push_back(i);
  const auto h = EquiDepthHistogram::Build(std::move(values), 64);
  EXPECT_EQ(h.count(), 10000);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 9999.0);
  EXPECT_NEAR(h.FractionLessEq(4999.5), 0.5, 0.02);
  EXPECT_NEAR(h.FractionLessEq(999.5), 0.1, 0.02);
  EXPECT_EQ(h.FractionLessEq(-1.0), 0.0);
  EXPECT_EQ(h.FractionLessEq(1e9), 1.0);
}

TEST(Histogram, FractionLessEqIsMonotone) {
  std::vector<double> values;
  Rng rng_seedless;  // default-seeded deterministic
  for (int i = 0; i < 5000; ++i) values.push_back(rng_seedless.NextDouble() * 100);
  const auto h = EquiDepthHistogram::Build(std::move(values), 32);
  double prev = 0.0;
  for (double v = -5.0; v <= 105.0; v += 0.5) {
    const double f = h.FractionLessEq(v);
    EXPECT_GE(f, prev - 1e-12);
    prev = f;
  }
}

class HistogramInverse : public ::testing::TestWithParam<double> {};

TEST_P(HistogramInverse, ValueAtFractionInvertsFraction) {
  const double q = GetParam();
  std::vector<double> values;
  for (int i = 0; i < 20000; ++i) values.push_back(std::sqrt(i));  // skewed
  const auto h = EquiDepthHistogram::Build(std::move(values), 64);
  const double v = h.ValueAtFraction(q);
  EXPECT_NEAR(h.FractionLessEq(v), q, 0.03);
}

INSTANTIATE_TEST_SUITE_P(Fractions, HistogramInverse,
                         ::testing::Values(0.05, 0.1, 0.25, 0.5, 0.75, 0.9,
                                           0.95));

TEST(Histogram, SkewedDistributionFractions) {
  // 90% of mass at small values.
  std::vector<double> values;
  for (int i = 0; i < 9000; ++i) values.push_back(i % 10);
  for (int i = 0; i < 1000; ++i) values.push_back(1000.0 + i);
  const auto h = EquiDepthHistogram::Build(std::move(values), 64);
  EXPECT_NEAR(h.FractionLessEq(9.5), 0.9, 0.03);
}

TEST(Histogram, RangeFraction) {
  std::vector<double> values;
  for (int i = 0; i < 10000; ++i) values.push_back(i);
  const auto h = EquiDepthHistogram::Build(std::move(values), 64);
  EXPECT_NEAR(h.FractionRange(2000, 3000), 0.1, 0.02);
  EXPECT_EQ(h.FractionRange(5, 1), 0.0);  // inverted range
}

TEST(Histogram, NumDistinct) {
  std::vector<double> values = {1, 1, 2, 2, 3};
  const auto h = EquiDepthHistogram::Build(std::move(values), 4);
  EXPECT_EQ(h.num_distinct(), 3);
}

// ---------- Catalog / Database ----------

TEST(Catalog, AnalyzeNumericAndString) {
  Table t("mixed", Schema({{"n", ValueType::kInt64},
                           {"s", ValueType::kString, 8}}));
  for (int i = 0; i < 100; ++i) {
    t.AppendRow({Value::Int64(i % 10), Value::String(i % 2 == 0 ? "even" : "odd")});
  }
  const TableStats stats = Catalog::Analyze(t, 16);
  EXPECT_EQ(stats.row_count, 100);
  ASSERT_EQ(stats.columns.size(), 2u);
  EXPECT_TRUE(stats.columns[0].numeric);
  EXPECT_EQ(stats.columns[0].num_distinct, 10);
  EXPECT_DOUBLE_EQ(stats.columns[0].min, 0.0);
  EXPECT_DOUBLE_EQ(stats.columns[0].max, 9.0);
  EXPECT_FALSE(stats.columns[1].numeric);
  EXPECT_EQ(stats.columns[1].num_distinct, 2);
  EXPECT_EQ(stats.columns[1].string_freq.at(StringPool::Global().Intern("even")),
            50);
}

TEST(Database, AddAnalyzeAndLookup) {
  Database db("testdb");
  db.AddTable(MakeNumbersTable(500));
  EXPECT_TRUE(db.HasTable("numbers"));
  EXPECT_FALSE(db.HasTable("nope"));
  db.AnalyzeAll(16);
  EXPECT_TRUE(db.catalog().Has("numbers"));
  EXPECT_EQ(db.catalog().Get("numbers").row_count, 500);
  EXPECT_EQ(db.TableNames(), std::vector<std::string>{"numbers"});
  EXPECT_EQ(db.TotalPages(), db.GetTable("numbers").num_pages());
}

}  // namespace
}  // namespace uqp
