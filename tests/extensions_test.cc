// Tests for the extension features: the GEE distinct-value estimator for
// aggregates (§3.2.2 future work) and the Monte-Carlo reference predictor
// (§5.2.4 fallback / normality validation).

#include <gtest/gtest.h>

#include <cmath>

#include "core/montecarlo.h"
#include "core/predictor.h"
#include "core/variance.h"
#include "cost/calibration.h"
#include "costfunc/fitter.h"
#include "datagen/tpch.h"
#include "engine/executor.h"
#include "engine/planner.h"
#include "hw/machine.h"
#include "math/rng.h"
#include "sampling/estimator.h"
#include "sampling/gee.h"
#include "workload/common.h"

namespace uqp {
namespace {

// ---------- GEE distinct-value estimator ----------

TEST(Gee, ExactWhenAllValuesRepeatInSample) {
  // 100 distinct keys, each seen 5 times: f1 = 0, so GEE = distinct-in-
  // sample = 100 regardless of the scale-up ratio.
  GeeDistinctCounter counter;
  for (uint64_t k = 0; k < 100; ++k) {
    for (int rep = 0; rep < 5; ++rep) counter.Add(k * 0x9e3779b9ULL);
  }
  EXPECT_EQ(counter.sample_rows(), 500);
  EXPECT_EQ(counter.sample_distinct(), 100);
  const GeeResult r = counter.Estimate(50000.0);
  EXPECT_NEAR(r.distinct, 100.0, 1e-9);
}

TEST(Gee, ScalesSingletonsBySqrtRatio) {
  // All singletons: D = sqrt(N/n) * f1.
  GeeDistinctCounter counter;
  for (uint64_t k = 0; k < 400; ++k) counter.Add(k * 0x2545F4914F6CDD1DULL);
  const GeeResult r = counter.Estimate(40000.0);
  EXPECT_NEAR(r.distinct, std::sqrt(40000.0 / 400.0) * 400.0, 1.0);
}

TEST(Gee, CappedAtPopulationSize) {
  GeeDistinctCounter counter;
  for (uint64_t k = 0; k < 100; ++k) counter.Add(k);
  const GeeResult r = counter.Estimate(150.0);
  EXPECT_LE(r.distinct, 150.0);
}

TEST(Gee, RatioErrorGuaranteeOnRandomData) {
  // Zipf-ish duplicated population: GEE must stay within the sqrt(N/n)
  // ratio band of the truth (the PODS'00 guarantee).
  Rng rng(13);
  const int64_t population = 50000;
  const int distinct = 800;
  std::vector<int> keys(population);
  for (auto& k : keys) {
    // Skewed duplication: low keys frequent.
    const double u = rng.NextDouble();
    k = static_cast<int>(distinct * u * u);
  }
  const int64_t n = 2500;
  GeeDistinctCounter counter;
  for (int64_t i = 0; i < n; ++i) {
    counter.Add(static_cast<uint64_t>(keys[rng.NextBelow(population)]) *
                0x9e3779b97f4a7c15ULL);
  }
  const GeeResult r = counter.Estimate(static_cast<double>(population));
  const double ratio_bound = std::sqrt(static_cast<double>(population) / n);
  const double ratio =
      std::max(r.distinct / distinct, distinct / std::max(1.0, r.distinct));
  EXPECT_LE(ratio, ratio_bound * 1.5);  // guarantee up to constants
  EXPECT_GE(r.variance, 0.0);
}

TEST(Gee, EmptyCounter) {
  GeeDistinctCounter counter;
  const GeeResult r = counter.Estimate(1000.0);
  EXPECT_DOUBLE_EQ(r.distinct, 0.0);
  EXPECT_DOUBLE_EQ(r.variance, 0.0);
}

// ---------- GEE inside the estimator ----------

struct AggFixture {
  Database db;

  AggFixture() {
    // Two strongly correlated columns: the optimizer multiplies their
    // distinct counts (20 * 20 = 400 groups) but the true joint distinct
    // count is only 20 — exactly the failure GEE repairs.
    Table t("t", Schema({{"g1", ValueType::kInt64},
                         {"g2", ValueType::kInt64},
                         {"v", ValueType::kDouble}}));
    Rng rng(7);
    for (int i = 0; i < 20000; ++i) {
      const int64_t g = rng.NextInt(0, 19);
      t.AppendRow({Value::Int64(g), Value::Int64(g), Value::Double(i)});
    }
    db = Database("agg-test");
    db.AddTable(std::move(t));
    db.AnalyzeAll(16);
  }

  Plan AggPlan() const {
    std::vector<AggSpec> aggs;
    aggs.push_back({AggSpec::Kind::kCount, -1, "cnt"});
    Plan plan(MakeAggregate(MakeSeqScan("t", nullptr), {0, 1}, aggs));
    EXPECT_TRUE(plan.Finalize(db).ok());
    return plan;
  }
};

TEST(GeeEstimator, BeatsOptimizerOnCorrelatedGroupColumns) {
  AggFixture fx;
  const Plan plan = fx.AggPlan();
  SampleOptions so;
  so.sampling_ratio = 0.05;
  const SampleDb samples = SampleDb::Build(fx.db, so);

  SamplingEstimator opt(&fx.db, &samples, AggregateEstimateMode::kOptimizer);
  SamplingEstimator gee(&fx.db, &samples, AggregateEstimateMode::kGee);
  auto est_opt = opt.Estimate(plan);
  auto est_gee = gee.Estimate(plan);
  ASSERT_TRUE(est_opt.ok() && est_gee.ok());

  const double denom = 20000.0;
  const double truth = 20.0;
  const double m_opt = est_opt->ops[0].rho * denom;
  const double m_gee = est_gee->ops[0].rho * denom;
  EXPECT_TRUE(est_opt->ops[0].from_optimizer);
  EXPECT_FALSE(est_gee->ops[0].from_optimizer);
  // Optimizer: ~400 groups (independence); GEE: ~20.
  EXPECT_GT(m_opt, 5.0 * truth);
  EXPECT_NEAR(m_gee, truth, 0.5 * truth);
}

TEST(GeeEstimator, OperatorsAboveAggregatesStillUseOptimizer) {
  Database db = MakeTpchDatabase(TpchConfig::Profile("tiny"));
  std::vector<AggSpec> aggs;
  aggs.push_back({AggSpec::Kind::kCount, -1, "cnt"});
  auto agg = MakeAggregate(MakeSeqScan("orders", nullptr), {1}, aggs);
  Plan plan(MakeHashJoin(std::move(agg), MakeSeqScan("customer", nullptr),
                         {{0, 0}}));
  ASSERT_TRUE(plan.Finalize(db).ok());
  const SampleDb samples = SampleDb::Build(db, SampleOptions{});
  SamplingEstimator estimator(&db, &samples, AggregateEstimateMode::kGee);
  auto est = estimator.Estimate(plan);
  ASSERT_TRUE(est.ok());
  EXPECT_TRUE(est->ops[0].from_optimizer);   // the join above
  EXPECT_FALSE(est->ops[1].from_optimizer);  // the aggregate itself (GEE)
}

TEST(GeeEstimator, GlobalAggregateHasCardinalityOne) {
  AggFixture fx;
  std::vector<AggSpec> aggs;
  aggs.push_back({AggSpec::Kind::kCount, -1, "cnt"});
  Plan plan(MakeAggregate(MakeSeqScan("t", nullptr), {}, aggs));
  ASSERT_TRUE(plan.Finalize(fx.db).ok());
  const SampleDb samples = SampleDb::Build(fx.db, SampleOptions{});
  SamplingEstimator estimator(&fx.db, &samples, AggregateEstimateMode::kGee);
  auto est = estimator.Estimate(plan);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(est->ops[0].rho * 20000.0, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(est->ops[0].variance, 0.0);
}

// ---------- Monte-Carlo reference predictor ----------

struct McFixture {
  Database db = MakeTpchDatabase(TpchConfig::Profile("tiny"));
  CostUnits units;
  Plan plan;

  McFixture() {
    SimulatedMachine machine(MachineProfile::PC1(), 3);
    Calibrator calibrator(&machine);
    units = calibrator.Calibrate();
    Rng rng(4);
    ConstantPicker pick(&db, &rng);
    JoinChainBuilder chain(&db);
    chain.Start("lineitem", pick.LessEqAtFraction("lineitem", "l_shipdate", 0.3))
        .Join("orders", pick.LessEqAtFraction("orders", "o_totalprice", 0.5),
              {{"lineitem.l_orderkey", "o_orderkey"}});
    auto plan_or = OptimizePlan(chain.Finish(), db);
    EXPECT_TRUE(plan_or.ok());
    plan = std::move(plan_or).value();
  }
};

TEST(MonteCarlo, AgreesWithAnalyticMoments) {
  McFixture fx;
  SampleOptions so;
  so.sampling_ratio = 0.1;
  const SampleDb samples = SampleDb::Build(fx.db, so);
  SamplingEstimator estimator(&fx.db, &samples);
  auto est = estimator.Estimate(fx.plan);
  ASSERT_TRUE(est.ok());
  CostFunctionFitter fitter(&fx.db);
  auto funcs = fitter.FitPlan(fx.plan, *est);
  ASSERT_TRUE(funcs.ok());

  const VarianceEngine engine(&*est, &*funcs, &fx.units);
  const VarianceBreakdown analytic = engine.Compute();
  MonteCarloOptions mco;
  mco.draws = 20000;
  const MonteCarloResult mc = SimulatePrediction(*est, *funcs, fx.units, mco);

  EXPECT_NEAR(mc.mean, analytic.mean, 0.03 * analytic.mean);
  // Monte-Carlo draws bounded pairs independently, so its variance must
  // not exceed the bound-augmented analytic variance by more than noise.
  EXPECT_LT(mc.variance, 1.25 * analytic.variance);
  EXPECT_GT(mc.variance, 0.5 * analytic.variance);
}

TEST(MonteCarlo, DistributionIsCloseToNormal) {
  McFixture fx;
  SampleOptions so;
  so.sampling_ratio = 0.2;
  const SampleDb samples = SampleDb::Build(fx.db, so);
  SamplingEstimator estimator(&fx.db, &samples);
  auto est = estimator.Estimate(fx.plan);
  ASSERT_TRUE(est.ok());
  CostFunctionFitter fitter(&fx.db);
  auto funcs = fitter.FitPlan(fx.plan, *est);
  ASSERT_TRUE(funcs.ok());
  MonteCarloOptions mco;
  mco.draws = 20000;
  const MonteCarloResult mc = SimulatePrediction(*est, *funcs, fx.units, mco);
  // Theorems 1/2: with large samples t_q is approximately normal.
  EXPECT_LT(mc.KsDistanceToNormal(mc.mean, mc.variance), 0.05);
}

TEST(MonteCarlo, QuantilesAreMonotoneAndBracketMean) {
  McFixture fx;
  const SampleDb samples = SampleDb::Build(fx.db, SampleOptions{});
  SamplingEstimator estimator(&fx.db, &samples);
  auto est = estimator.Estimate(fx.plan);
  ASSERT_TRUE(est.ok());
  CostFunctionFitter fitter(&fx.db);
  auto funcs = fitter.FitPlan(fx.plan, *est);
  ASSERT_TRUE(funcs.ok());
  const MonteCarloResult mc = SimulatePrediction(*est, *funcs, fx.units);
  EXPECT_LT(mc.Quantile(0.1), mc.Quantile(0.5));
  EXPECT_LT(mc.Quantile(0.5), mc.Quantile(0.9));
  EXPECT_LT(mc.Quantile(0.05), mc.mean);
  EXPECT_GT(mc.Quantile(0.95), mc.mean);
  // Sorted samples.
  for (size_t i = 1; i < mc.samples.size(); ++i) {
    ASSERT_LE(mc.samples[i - 1], mc.samples[i]);
  }
}

TEST(MonteCarlo, DeterministicPerSeed) {
  McFixture fx;
  const SampleDb samples = SampleDb::Build(fx.db, SampleOptions{});
  SamplingEstimator estimator(&fx.db, &samples);
  auto est = estimator.Estimate(fx.plan);
  ASSERT_TRUE(est.ok());
  CostFunctionFitter fitter(&fx.db);
  auto funcs = fitter.FitPlan(fx.plan, *est);
  ASSERT_TRUE(funcs.ok());
  MonteCarloOptions mco;
  mco.draws = 500;
  const MonteCarloResult a = SimulatePrediction(*est, *funcs, fx.units, mco);
  const MonteCarloResult b = SimulatePrediction(*est, *funcs, fx.units, mco);
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
  EXPECT_DOUBLE_EQ(a.variance, b.variance);
}

}  // namespace
}  // namespace uqp
