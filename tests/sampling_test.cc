// Tests for the sampling-based selectivity estimator (paper §3.2,
// Algorithm 1): sample table construction, unbiasedness, the S²_n variance
// estimator (checked against a brute-force implementation of Eq. 5), the
// partial variances S²(m, n), and the covariance bounds of Theorems 7/8.

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_map>

#include "engine/executor.h"
#include "math/stats.h"
#include "sampling/estimator.h"
#include "sampling/sample_db.h"

namespace uqp {
namespace {

/// Two-relation database with a controllable join:
///   r(a int, x double)   -- 3000 rows, a = i % 100
///   s(b int, y double)   -- 1000 rows, b = i % 100
Database MakeJoinDb(uint64_t seed = 3) {
  Rng rng(seed);
  Database db("sampling-test");
  {
    Table r("r", Schema({{"a", ValueType::kInt64}, {"x", ValueType::kDouble}}));
    for (int i = 0; i < 3000; ++i) {
      r.AppendRow({Value::Int64(i % 100), Value::Double(rng.NextDouble())});
    }
    db.AddTable(std::move(r));
  }
  {
    Table s("s", Schema({{"b", ValueType::kInt64}, {"y", ValueType::kDouble}}));
    for (int i = 0; i < 1000; ++i) {
      s.AppendRow({Value::Int64(i % 100), Value::Double(rng.NextDouble())});
    }
    db.AddTable(std::move(s));
  }
  db.AnalyzeAll(16);
  return db;
}

Plan ScanPlan(const Database& db, double x_max) {
  Plan plan(MakeSeqScan("r", Expr::Cmp(1, CmpOp::kLe, Value::Double(x_max))));
  EXPECT_TRUE(plan.Finalize(db).ok());
  return plan;
}

Plan JoinPlan(const Database& db) {
  Plan plan(MakeHashJoin(MakeSeqScan("r", nullptr), MakeSeqScan("s", nullptr),
                         {{0, 0}}));
  EXPECT_TRUE(plan.Finalize(db).ok());
  return plan;
}

// ---------- SampleDb ----------

TEST(SampleDb, SizesFollowRatio) {
  Database db = MakeJoinDb();
  SampleOptions options;
  options.sampling_ratio = 0.1;
  const SampleDb samples = SampleDb::Build(db, options);
  EXPECT_EQ(samples.SampleRows("r"), 300);
  EXPECT_EQ(samples.SampleRows("s"), 100);
  EXPECT_EQ(samples.BaseRows("r"), 3000);
  EXPECT_EQ(samples.copies("r"), options.copies_per_relation);
  EXPECT_GT(samples.TotalSamplePages(), 0);
}

TEST(SampleDb, MinimumSampleRowsEnforced) {
  Database db = MakeJoinDb();
  SampleOptions options;
  options.sampling_ratio = 0.0001;
  options.min_sample_rows = 4;
  const SampleDb samples = SampleDb::Build(db, options);
  EXPECT_GE(samples.SampleRows("r"), 4);
}

TEST(SampleDb, CopiesAreIndependentSamples) {
  Database db = MakeJoinDb();
  SampleOptions options;
  options.sampling_ratio = 0.05;
  const SampleDb samples = SampleDb::Build(db, options);
  const Table& c0 = samples.Get("r", 0);
  const Table& c1 = samples.Get("r", 1);
  ASSERT_EQ(c0.num_rows(), c1.num_rows());
  bool differs = false;
  for (int64_t i = 0; i < c0.num_rows() && !differs; ++i) {
    if (!c0.at(i, 1).Equals(c1.at(i, 1))) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(SampleDb, CopyIndexWrapsAround) {
  Database db = MakeJoinDb();
  SampleOptions options;
  options.copies_per_relation = 2;
  const SampleDb samples = SampleDb::Build(db, options);
  // Copy 2 wraps to copy 0.
  EXPECT_EQ(&samples.Get("r", 2), &samples.Get("r", 0));
}

TEST(SampleDb, RejectsBadRatio) {
  Database db = MakeJoinDb();
  SampleOptions options;
  options.sampling_ratio = 0.0;
  EXPECT_DEATH(SampleDb::Build(db, options), "sampling ratio");
}

// ---------- Scan estimates ----------

class ScanEstimate : public ::testing::TestWithParam<double> {};

TEST_P(ScanEstimate, RhoCloseToTruthAndVarianceIsBinomial) {
  const double x_max = GetParam();
  Database db = MakeJoinDb();
  SampleOptions options;
  options.sampling_ratio = 0.2;
  const SampleDb samples = SampleDb::Build(db, options);
  const Plan plan = ScanPlan(db, x_max);
  SamplingEstimator estimator(&db, &samples);
  auto estimates = estimator.Estimate(plan);
  ASSERT_TRUE(estimates.ok());
  const SelectivityEstimate& est = estimates->ops[0];
  EXPECT_FALSE(est.from_optimizer);
  // x ~ U(0,1) so the true selectivity is ~x_max.
  EXPECT_NEAR(est.rho, x_max, 0.08);
  // Algorithm 1 line 8: S² = rho(1-rho); Var = S²/n with n = 600.
  const double n = static_cast<double>(samples.SampleRows("r"));
  EXPECT_NEAR(est.variance, est.rho * (1.0 - est.rho) / n, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Selectivities, ScanEstimate,
                         ::testing::Values(0.05, 0.2, 0.5, 0.8, 0.95));

TEST(ScanEstimate, FullScanHasZeroVariance) {
  Database db = MakeJoinDb();
  const SampleDb samples = SampleDb::Build(db, SampleOptions{});
  Plan plan(MakeSeqScan("r", nullptr));
  ASSERT_TRUE(plan.Finalize(db).ok());
  SamplingEstimator estimator(&db, &samples);
  auto estimates = estimator.Estimate(plan);
  ASSERT_TRUE(estimates.ok());
  EXPECT_DOUBLE_EQ(estimates->ops[0].rho, 1.0);
  EXPECT_DOUBLE_EQ(estimates->ops[0].variance, 0.0);
}

// ---------- Join estimates ----------

TEST(JoinEstimate, RhoIsApproximatelyUnbiased) {
  Database db = MakeJoinDb();
  // True join selectivity: each r row matches 10 s rows ->
  // |r join s| = 30000; rho = 30000 / (3000 * 1000) = 1e-2.
  const Plan plan = JoinPlan(db);
  Executor executor(&db);
  auto full = executor.Execute(plan, ExecOptions{});
  ASSERT_TRUE(full.ok());
  const double truth = full->ops[0].selectivity();
  EXPECT_NEAR(truth, 0.01, 1e-9);

  RunningStats rho_hat;
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    SampleOptions options;
    options.sampling_ratio = 0.1;
    options.seed = seed;
    const SampleDb samples = SampleDb::Build(db, options);
    SamplingEstimator estimator(&db, &samples);
    auto estimates = estimator.Estimate(plan);
    ASSERT_TRUE(estimates.ok());
    rho_hat.Add(estimates->ops[0].rho);
  }
  // Mean over 40 independent sample sets within 3 standard errors.
  const double se = rho_hat.stddev() / std::sqrt(40.0);
  EXPECT_NEAR(rho_hat.mean(), truth, 3.0 * se + 1e-4);
}

/// Brute-force implementation of Eq. (5)/(6) for a two-way join over
/// specific sample tables, generalized to per-relation sample sizes:
/// V_k = (1/(n_k - 1)) sum_j (Q_{k,j} / D_k - rho)², Var = sum_k V_k / n_k.
double BruteForceJoinVariance(const Table& rs, const Table& ss, int rkey,
                              int skey, double* rho_out) {
  const int64_t nr = rs.num_rows();
  const int64_t ns = ss.num_rows();
  std::unordered_map<int64_t, double> q_r, q_s;
  double matches = 0.0;
  for (int64_t i = 0; i < nr; ++i) {
    for (int64_t j = 0; j < ns; ++j) {
      if (rs.at(i, rkey).Equals(ss.at(j, skey))) {
        matches += 1.0;
        q_r[i] += 1.0;
        q_s[j] += 1.0;
      }
    }
  }
  const double rho = matches / (static_cast<double>(nr) * ns);
  *rho_out = rho;
  auto component = [rho](const std::unordered_map<int64_t, double>& q,
                         int64_t n, double d) {
    double acc = 0.0;
    for (const auto& [j, count] : q) {
      const double diff = count / d - rho;
      acc += diff * diff;
    }
    acc += (static_cast<double>(n) - static_cast<double>(q.size())) * rho * rho;
    return acc / (static_cast<double>(n) - 1.0);
  };
  const double vr = component(q_r, nr, static_cast<double>(ns));
  const double vs = component(q_s, ns, static_cast<double>(nr));
  return vr / static_cast<double>(nr) + vs / static_cast<double>(ns);
}

TEST(JoinEstimate, VarianceMatchesBruteForceEq5) {
  Database db = MakeJoinDb();
  SampleOptions options;
  options.sampling_ratio = 0.05;
  const SampleDb samples = SampleDb::Build(db, options);
  const Plan plan = JoinPlan(db);
  SamplingEstimator estimator(&db, &samples);
  auto estimates = estimator.Estimate(plan);
  ASSERT_TRUE(estimates.ok());

  double rho_bf = 0.0;
  const double var_bf = BruteForceJoinVariance(samples.Get("r", 0),
                                               samples.Get("s", 0), 0, 0, &rho_bf);
  EXPECT_NEAR(estimates->ops[0].rho, rho_bf, 1e-12);
  EXPECT_NEAR(estimates->ops[0].variance, var_bf, 1e-12 + 1e-9 * var_bf);
}

TEST(JoinEstimate, VarianceShrinksWithSampleSize) {
  Database db = MakeJoinDb();
  const Plan plan = JoinPlan(db);
  double prev = 1e9;
  for (double sr : {0.02, 0.1, 0.5}) {
    SampleOptions options;
    options.sampling_ratio = sr;
    const SampleDb samples = SampleDb::Build(db, options);
    SamplingEstimator estimator(&db, &samples);
    auto estimates = estimator.Estimate(plan);
    ASSERT_TRUE(estimates.ok());
    EXPECT_LT(estimates->ops[0].variance, prev);
    prev = estimates->ops[0].variance;
  }
}

TEST(JoinEstimate, EmptyJoinResultGivesZeroRhoAndVariance) {
  Database db("empty-join");
  Table r("r", Schema({{"a", ValueType::kInt64}}));
  Table s("s", Schema({{"b", ValueType::kInt64}}));
  for (int i = 0; i < 100; ++i) {
    r.AppendRow({Value::Int64(i)});
    s.AppendRow({Value::Int64(i + 1000)});  // disjoint key spaces
  }
  db.AddTable(std::move(r));
  db.AddTable(std::move(s));
  db.AnalyzeAll(8);
  Plan plan(MakeHashJoin(MakeSeqScan("r", nullptr), MakeSeqScan("s", nullptr),
                         {{0, 0}}));
  ASSERT_TRUE(plan.Finalize(db).ok());
  const SampleDb samples = SampleDb::Build(db, SampleOptions{});
  SamplingEstimator estimator(&db, &samples);
  auto estimates = estimator.Estimate(plan);
  ASSERT_TRUE(estimates.ok());
  EXPECT_DOUBLE_EQ(estimates->ops[0].rho, 0.0);
  EXPECT_DOUBLE_EQ(estimates->ops[0].variance, 0.0);
}

// ---------- Pass-through and aggregates ----------

TEST(Estimator, PassThroughSharesChildVariable) {
  Database db = MakeJoinDb();
  Plan plan(MakeSort(MakeSeqScan("r", Expr::Cmp(1, CmpOp::kLe, Value::Double(0.3))),
                     {0}));
  ASSERT_TRUE(plan.Finalize(db).ok());
  const SampleDb samples = SampleDb::Build(db, SampleOptions{});
  SamplingEstimator estimator(&db, &samples);
  auto estimates = estimator.Estimate(plan);
  ASSERT_TRUE(estimates.ok());
  // Node 0 = sort, node 1 = scan; sort maps to the scan's variable.
  EXPECT_EQ(estimates->variable_of_node[0], 1);
  EXPECT_EQ(estimates->variable_of_node[1], 1);
  EXPECT_DOUBLE_EQ(estimates->ops[0].rho, estimates->ops[1].rho);
  EXPECT_DOUBLE_EQ(estimates->ops[0].variance, estimates->ops[1].variance);
}

TEST(Estimator, AggregateAndAboveUseOptimizer) {
  Database db = MakeJoinDb();
  std::vector<AggSpec> aggs;
  aggs.push_back({AggSpec::Kind::kCount, -1, "cnt"});
  // join(agg(scan r), s) — the join sits above an aggregate.
  auto agg = MakeAggregate(MakeSeqScan("r", nullptr), {0}, aggs);
  Plan plan(MakeHashJoin(std::move(agg), MakeSeqScan("s", nullptr), {{0, 0}}));
  ASSERT_TRUE(plan.Finalize(db).ok());
  const SampleDb samples = SampleDb::Build(db, SampleOptions{});
  SamplingEstimator estimator(&db, &samples);
  auto estimates = estimator.Estimate(plan);
  ASSERT_TRUE(estimates.ok());
  // Node 0 = join (above aggregate), node 1 = aggregate: both optimizer-
  // derived with zero variance. Node 2 = scan below aggregate: sampled.
  EXPECT_TRUE(estimates->ops[0].from_optimizer);
  EXPECT_TRUE(estimates->ops[1].from_optimizer);
  EXPECT_DOUBLE_EQ(estimates->ops[0].variance, 0.0);
  EXPECT_FALSE(estimates->ops[2].from_optimizer);
}

// ---------- Partial variances and covariance bounds ----------

TEST(CovBounds, PartialVarianceIsMonotoneInSubset) {
  Database db = MakeJoinDb();
  const Plan plan = JoinPlan(db);
  SampleOptions options;
  options.sampling_ratio = 0.05;
  const SampleDb samples = SampleDb::Build(db, options);
  SamplingEstimator estimator(&db, &samples);
  auto estimates = estimator.Estimate(plan);
  ASSERT_TRUE(estimates.ok());
  const SelectivityEstimate& join = estimates->ops[0];
  const double partial0 = SamplingEstimator::PartialVariance(join, 0, 1);
  const double partial1 = SamplingEstimator::PartialVariance(join, 1, 2);
  const double total = SamplingEstimator::PartialVariance(join, 0, 2);
  EXPECT_GE(partial0, 0.0);
  EXPECT_GE(partial1, 0.0);
  EXPECT_NEAR(partial0 + partial1, total, 1e-15);
  EXPECT_NEAR(total, join.variance, 1e-15);
  EXPECT_LE(partial0, total);
}

TEST(CovBounds, OrderingB1LeB2) {
  Database db = MakeJoinDb();
  const Plan plan = JoinPlan(db);
  const SampleDb samples = SampleDb::Build(db, SampleOptions{});
  SamplingEstimator estimator(&db, &samples);
  auto estimates = estimator.Estimate(plan);
  ASSERT_TRUE(estimates.ok());
  const SelectivityEstimate& scan = estimates->ops[1];  // r scan (descendant)
  const SelectivityEstimate& join = estimates->ops[0];  // ancestor
  const CovarianceBounds bounds = SamplingEstimator::CovarianceBoundsFor(
      scan, join, estimates->leaf_sample_rows);
  EXPECT_GE(bounds.b1, 0.0);
  EXPECT_GE(bounds.b3, 0.0);
  EXPECT_LE(bounds.b1, bounds.b2 + 1e-15);
  EXPECT_LE(bounds.best(), bounds.b1 + 1e-15);
  EXPECT_LE(bounds.best(), bounds.b3 + 1e-15);
}

TEST(CovBounds, ZeroForOptimizerEstimates) {
  SelectivityEstimate a, b;
  a.from_optimizer = true;
  b.rho = 0.5;
  b.variance = 0.01;
  const CovarianceBounds bounds =
      SamplingEstimator::CovarianceBoundsFor(a, b, {100.0});
  EXPECT_DOUBLE_EQ(bounds.b1, 0.0);
  EXPECT_DOUBLE_EQ(bounds.b2, 0.0);
  EXPECT_DOUBLE_EQ(bounds.b3, 0.0);
}

TEST(CovBounds, B3MatchesTheorem8Formula) {
  SelectivityEstimate desc, anc;
  desc.rho = 0.5;
  desc.variance = 0.01;
  desc.leaf_begin = 0;
  desc.leaf_end = 1;
  desc.var_components = {0.01};
  anc.rho = 0.2;
  anc.variance = 0.02;
  anc.leaf_begin = 0;
  anc.leaf_end = 2;
  anc.var_components = {0.015, 0.005};
  const std::vector<double> n = {50.0, 80.0};
  const CovarianceBounds bounds =
      SamplingEstimator::CovarianceBoundsFor(desc, anc, n);
  // f = 1 - (1 - 1/50) over the shared leaf; g(0.5) g(0.2).
  const double f = 1.0 - (1.0 - 1.0 / 50.0);
  const double expected_b3 =
      f * std::sqrt(0.5 * 0.5) * std::sqrt(0.2 * 0.8);
  EXPECT_NEAR(bounds.b3, expected_b3, 1e-12);
  // B1 = sqrt(full desc variance * anc partial over leaf 0).
  EXPECT_NEAR(bounds.b1, std::sqrt(0.01 * 0.015), 1e-12);
}

// ---------- Sampled resource counters ----------

TEST(Estimator, SampleRunCountersAreMuchSmallerThanFullRun) {
  Database db = MakeJoinDb();
  const Plan plan = JoinPlan(db);
  SampleOptions options;
  options.sampling_ratio = 0.05;
  const SampleDb samples = SampleDb::Build(db, options);
  SamplingEstimator estimator(&db, &samples);
  auto estimates = estimator.Estimate(plan);
  ASSERT_TRUE(estimates.ok());
  Executor executor(&db);
  auto full = executor.Execute(plan, ExecOptions{});
  ASSERT_TRUE(full.ok());
  double sample_nt = 0.0, full_nt = 0.0;
  for (const OpStats& st : estimates->sample_ops) sample_nt += st.actual.nt;
  for (const OpStats& st : full->ops) full_nt += st.actual.nt;
  EXPECT_LT(sample_nt, 0.2 * full_nt);
}

}  // namespace
}  // namespace uqp
