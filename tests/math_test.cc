// Unit and property tests for the math substrate: RNG, Gaussian moments,
// the paper's Lemma 4 / Lemma 8 variance formulas, rank statistics, the
// proximity metric, NNLS, and the Zipf sampler.

#include <gtest/gtest.h>

#include <cmath>

#include "math/gaussian.h"
#include "math/nnls.h"
#include "math/rng.h"
#include "math/stats.h"
#include "math/zipf.h"

namespace uqp {
namespace {

// ---------- Rng ----------

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const uint64_t va = a.NextU64();
    EXPECT_EQ(va, b.NextU64());
  }
  bool differs = false;
  Rng a2(42);
  for (int i = 0; i < 100; ++i) {
    if (a2.NextU64() != c.NextU64()) {
      differs = true;
      break;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, UniformDoublesInRange) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.NextDouble();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, NextBelowBounds) {
  Rng rng(11);
  for (uint64_t n : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBelow(n), n);
    }
  }
}

TEST(Rng, NextIntInclusiveBounds) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.NextInt(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMoments) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.Add(rng.NextGaussian(3.0, 2.0));
  EXPECT_NEAR(stats.mean(), 3.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, ForkDecorrelates) {
  Rng rng(19);
  Rng fork = rng.Fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (rng.NextU64() == fork.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, SubStreamDependsOnlyOnSeedAndIndex) {
  // The per-shard determinism primitive: SubStream(i) must be the same
  // stream no matter how many draws the parent made, how many substreams
  // exist, or in what order they are taken.
  Rng fresh(19);
  Rng drained(19);
  for (int i = 0; i < 1000; ++i) drained.NextU64();
  for (uint64_t index : {uint64_t{0}, uint64_t{1}, uint64_t{7}, uint64_t{63}}) {
    Rng a = fresh.SubStream(index);
    Rng b = drained.SubStream(index);
    for (int i = 0; i < 50; ++i) {
      ASSERT_EQ(a.NextU64(), b.NextU64()) << "index " << index;
    }
  }
  // Order of derivation is irrelevant too.
  Rng parent(19);
  Rng s3_first = parent.SubStream(3);
  Rng s0 = parent.SubStream(0);
  Rng s3_again = parent.SubStream(3);
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(s3_first.NextU64(), s3_again.NextU64());
  }
  (void)s0;
}

TEST(Rng, SubStreamsDecorrelated) {
  Rng rng(19);
  Rng a = rng.SubStream(0);
  Rng b = rng.SubStream(1);
  Rng parent_stream(19);
  int equal_ab = 0, equal_parent = 0;
  for (int i = 0; i < 100; ++i) {
    const uint64_t va = a.NextU64();
    if (va == b.NextU64()) ++equal_ab;
    if (va == parent_stream.NextU64()) ++equal_parent;
  }
  EXPECT_LT(equal_ab, 3);
  EXPECT_LT(equal_parent, 3) << "SubStream(0) must differ from the parent";
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(23);
  const auto perm = rng.Permutation(100);
  std::vector<bool> seen(100, false);
  for (uint32_t v : perm) {
    ASSERT_LT(v, 100u);
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
}

// ---------- Gaussian ----------

TEST(Gaussian, CdfBasics) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(NormalCdf(-1.96), 0.025, 1e-3);
  EXPECT_NEAR(NormalCdf(10.0, 10.0, 4.0), 0.5, 1e-12);
}

TEST(Gaussian, DegenerateCdf) {
  EXPECT_EQ(NormalCdf(1.0, 2.0, 0.0), 0.0);
  EXPECT_EQ(NormalCdf(3.0, 2.0, 0.0), 1.0);
}

class QuantileRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(QuantileRoundTrip, CdfOfQuantileIsIdentity) {
  const double p = GetParam();
  EXPECT_NEAR(NormalCdf(NormalQuantile(p)), p, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Probabilities, QuantileRoundTrip,
                         ::testing::Values(1e-6, 0.001, 0.01, 0.1, 0.3, 0.5,
                                           0.7, 0.9, 0.975, 0.999, 1.0 - 1e-6));

struct MomentCase {
  double mu;
  double var;
};

class NormalMomentTest : public ::testing::TestWithParam<MomentCase> {};

TEST_P(NormalMomentTest, MatchesMonteCarlo) {
  const auto [mu, var] = GetParam();
  Rng rng(101);
  double acc[5] = {0, 0, 0, 0, 0};
  const int n = 400000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian(mu, std::sqrt(var));
    double p = 1.0;
    for (int k = 0; k <= 4; ++k) {
      acc[k] += p;
      p *= x;
    }
  }
  for (int k = 1; k <= 4; ++k) {
    const double mc = acc[k] / n;
    const double exact = NormalMoment(mu, var, k);
    const double tol = 0.02 * std::max(1.0, std::fabs(exact));
    EXPECT_NEAR(mc, exact, tol) << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, NormalMomentTest,
                         ::testing::Values(MomentCase{0.0, 1.0},
                                           MomentCase{1.0, 0.25},
                                           MomentCase{-2.0, 4.0},
                                           MomentCase{0.3, 0.01}));

TEST(Gaussian, Lemma4QuadraticVarianceMatchesMonteCarlo) {
  // f = b0 X^2 + b1 X + b2, X ~ N(0.4, 0.09).
  const double b0 = 2.0, b1 = -1.0, mu = 0.4, var = 0.09;
  Rng rng(7);
  RunningStats stats;
  for (int i = 0; i < 400000; ++i) {
    const double x = rng.NextGaussian(mu, std::sqrt(var));
    stats.Add(b0 * x * x + b1 * x + 5.0);
  }
  EXPECT_NEAR(stats.variance(), QuadraticFormVariance(b0, b1, mu, var),
              0.02 * stats.variance());
}

TEST(Gaussian, Lemma8BilinearVarianceMatchesMonteCarlo) {
  // f = b0 Xl Xr + b1 Xl + b2 Xr + b3 with independent normals.
  const double b0 = 3.0, b1 = 0.5, b2 = -2.0;
  const double mul = 0.2, varl = 0.04, mur = 0.7, varr = 0.01;
  Rng rng(8);
  RunningStats stats;
  for (int i = 0; i < 400000; ++i) {
    const double xl = rng.NextGaussian(mul, std::sqrt(varl));
    const double xr = rng.NextGaussian(mur, std::sqrt(varr));
    stats.Add(b0 * xl * xr + b1 * xl + b2 * xr + 1.0);
  }
  EXPECT_NEAR(stats.variance(),
              BilinearFormVariance(b0, b1, b2, mul, varl, mur, varr),
              0.02 * stats.variance());
}

TEST(Gaussian, ProductMomentsOfIndependentNormals) {
  EXPECT_DOUBLE_EQ(ProductMean(2.0, 3.0), 6.0);
  // Var[XY] = mul^2 varr + mur^2 varl + varl varr.
  EXPECT_DOUBLE_EQ(ProductVariance(2.0, 0.5, 3.0, 0.25), 4.0 * 0.25 + 9.0 * 0.5 + 0.125);
  EXPECT_DOUBLE_EQ(CovProductLeft(0.5, 3.0), 1.5);
  EXPECT_DOUBLE_EQ(CovProductRight(2.0, 0.25), 0.5);
}

TEST(Gaussian, VarOfSquareAndCovSquareLinear) {
  // Known identities for X ~ N(mu, var).
  EXPECT_DOUBLE_EQ(VarOfSquare(1.0, 2.0), 2.0 * 2.0 * (2.0 + 2.0));
  EXPECT_DOUBLE_EQ(CovSquareLinear(3.0, 0.5), 3.0);
}

TEST(Gaussian, StructOps) {
  const Gaussian g(2.0, 9.0);
  EXPECT_DOUBLE_EQ(g.stddev(), 3.0);
  const Gaussian sum = g + Gaussian(1.0, 16.0);
  EXPECT_DOUBLE_EQ(sum.mean, 3.0);
  EXPECT_DOUBLE_EQ(sum.variance, 25.0);
  const Gaussian affine = g.Affine(2.0, 1.0);
  EXPECT_DOUBLE_EQ(affine.mean, 5.0);
  EXPECT_DOUBLE_EQ(affine.variance, 36.0);
}

// ---------- Stats ----------

TEST(Stats, MeanAndVariance) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Mean(xs), 3.0);
  EXPECT_DOUBLE_EQ(SampleVariance(xs), 2.5);
  EXPECT_DOUBLE_EQ(PopulationVariance(xs), 2.0);
}

TEST(Stats, PearsonPerfectAndInverse) {
  const std::vector<double> xs = {1, 2, 3, 4};
  const std::vector<double> up = {2, 4, 6, 8};
  const std::vector<double> down = {8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(xs, up), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation(xs, down), -1.0, 1e-12);
  EXPECT_EQ(PearsonCorrelation(xs, {5, 5, 5, 5}), 0.0);
}

TEST(Stats, FractionalRanksWithTies) {
  // Paper example: sigmas 4, 7, 5 -> ranks 1, 3, 2.
  EXPECT_EQ(FractionalRanks({4, 7, 5}), (std::vector<double>{1, 3, 2}));
  EXPECT_EQ(FractionalRanks({1, 1, 2}), (std::vector<double>{1.5, 1.5, 3}));
}

TEST(Stats, SpearmanMonotonicNonlinearIsOne) {
  std::vector<double> xs, ys;
  for (int i = 1; i <= 50; ++i) {
    xs.push_back(i);
    ys.push_back(std::exp(0.2 * i));  // monotone but very nonlinear
  }
  EXPECT_NEAR(SpearmanCorrelation(xs, ys), 1.0, 1e-12);
  EXPECT_LT(PearsonCorrelation(xs, ys), 0.95);
}

TEST(Stats, SpearmanRobustToOutlier) {
  std::vector<double> xs = {1, 2, 3, 4, 5, 6, 7, 8, 9, 1000};
  std::vector<double> ys = {2, 1, 4, 3, 6, 5, 8, 7, 10, 2000};
  const double rs = SpearmanCorrelation(xs, ys);
  const double rp = PearsonCorrelation(xs, ys);
  EXPECT_GT(rp, 0.999);  // dominated by the outlier
  // Rank view is not fooled: exact value 1 - 6*8/990 for this data.
  EXPECT_NEAR(rs, 0.9515, 0.001);
  EXPECT_LT(rs, rp);
}

TEST(Stats, FitLineRecoversSlope) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 20; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 * i + 7.0);
  }
  const LinearFit fit = FitLine(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 1e-9);
  EXPECT_NEAR(fit.intercept, 7.0, 1e-9);
}

TEST(Stats, ProximityOfCalibratedNormalErrorsIsSmall) {
  // If normalized errors are |N(0,1)| draws, Pr_n tracks Pr and D_n ~ 0.
  Rng rng(5);
  std::vector<double> normalized;
  for (int i = 0; i < 5000; ++i) {
    normalized.push_back(std::fabs(rng.NextGaussian()));
  }
  const ProximityResult r = ComputeProximity(normalized);
  EXPECT_LT(r.dn, 0.02);
}

TEST(Stats, ProximityOfUnderestimatedVarianceIsLarge) {
  // Errors twice as large as claimed -> clear distributional mismatch.
  Rng rng(6);
  std::vector<double> normalized;
  for (int i = 0; i < 5000; ++i) {
    normalized.push_back(std::fabs(2.5 * rng.NextGaussian()));
  }
  const ProximityResult r = ComputeProximity(normalized);
  EXPECT_GT(r.dn, 0.15);
}

TEST(Stats, Figure5GridMatchesPaper) {
  const auto grid = Figure5AlphaGrid();
  EXPECT_EQ(grid.size(), 16u);
  EXPECT_DOUBLE_EQ(grid.front(), 0.1);
  EXPECT_DOUBLE_EQ(grid.back(), 4.0);
}

// ---------- NNLS ----------

TEST(Nnls, UnconstrainedExactFit) {
  // y = 2x + 1 fits exactly; both coefficients "free".
  NnlsProblem p;
  p.rows = 4;
  p.cols = 2;
  p.nonnegative = {false, false};
  for (double x : {0.0, 1.0, 2.0, 3.0}) {
    p.a.insert(p.a.end(), {x, 1.0});
    p.y.push_back(2.0 * x + 1.0);
  }
  auto result = SolveNnls(p);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->coefficients[0], 2.0, 1e-8);
  EXPECT_NEAR(result->coefficients[1], 1.0, 1e-8);
  EXPECT_NEAR(result->residual_norm, 0.0, 1e-8);
}

TEST(Nnls, NonnegativityClampsNegativeSlope) {
  // Best unconstrained slope is negative; constrained solution must have
  // slope exactly 0 and intercept = mean(y).
  NnlsProblem p;
  p.rows = 4;
  p.cols = 2;
  p.nonnegative = {true, false};
  for (double x : {0.0, 1.0, 2.0, 3.0}) {
    p.a.insert(p.a.end(), {x, 1.0});
    p.y.push_back(10.0 - 2.0 * x);
  }
  auto result = SolveNnls(p);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->coefficients[0], 0.0, 1e-10);
  EXPECT_NEAR(result->coefficients[1], 7.0, 1e-8);
}

TEST(Nnls, FreeConstantCanGoNegative) {
  NnlsProblem p;
  p.rows = 3;
  p.cols = 2;
  p.nonnegative = {true, false};
  for (double x : {1.0, 2.0, 3.0}) {
    p.a.insert(p.a.end(), {x, 1.0});
    p.y.push_back(4.0 * x - 2.0);
  }
  auto result = SolveNnls(p);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->coefficients[0], 4.0, 1e-8);
  EXPECT_NEAR(result->coefficients[1], -2.0, 1e-8);
}

TEST(Nnls, QuadraticRecoveryWithScaling) {
  // Columns spanning orders of magnitude (selectivity-like).
  NnlsProblem p;
  p.rows = 9;
  p.cols = 3;
  p.nonnegative = {true, true, false};
  for (int i = 0; i <= 8; ++i) {
    const double x = 1e-4 + 1e-4 * i;
    p.a.insert(p.a.end(), {x * x, x, 1.0});
    p.y.push_back(5e7 * x * x + 3e4 * x + 11.0);
  }
  auto result = SolveNnls(p);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->coefficients[0], 5e7, 5e7 * 1e-4);
  EXPECT_NEAR(result->coefficients[1], 3e4, 3e4 * 1e-3);
  EXPECT_NEAR(result->coefficients[2], 11.0, 0.05);
}

TEST(Nnls, FullyConstrainedClassicCase) {
  // Classic NNLS sanity: all coefficients nonnegative.
  auto result = SolveNnls({1.0, 0.0, 0.0, 1.0, 1.0, 1.0}, 3, 2, {2.0, 3.0, 5.0});
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->coefficients[0], 0.0);
  EXPECT_GE(result->coefficients[1], 0.0);
}

TEST(Nnls, ShapeErrors) {
  NnlsProblem p;
  p.rows = 0;
  p.cols = 2;
  EXPECT_FALSE(SolveNnls(p).ok());
  p.rows = 2;
  p.cols = 2;
  p.a = {1, 2, 3};  // wrong size
  p.y = {1, 2};
  EXPECT_FALSE(SolveNnls(p).ok());
}

// ---------- Zipf ----------

TEST(Zipf, UniformWhenZIsZero) {
  ZipfDistribution z(10, 0.0);
  for (uint64_t k = 0; k < 10; ++k) {
    EXPECT_NEAR(z.Pmf(k), 0.1, 1e-12);
  }
}

TEST(Zipf, PmfSumsToOne) {
  ZipfDistribution z(100, 1.0);
  double sum = 0.0;
  for (uint64_t k = 0; k < 100; ++k) sum += z.Pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Zipf, SkewConcentratesMassOnSmallRanks) {
  ZipfDistribution z(1000, 1.0);
  EXPECT_GT(z.Pmf(0), 10.0 * z.Pmf(99));
  Rng rng(3);
  int head = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (z.Sample(&rng) < 10) ++head;
  }
  // Under uniform the head would get ~1%; under z=1 it gets far more.
  EXPECT_GT(static_cast<double>(head) / n, 0.2);
}

TEST(Zipf, SamplesMatchPmf) {
  ZipfDistribution z(5, 1.0);
  Rng rng(4);
  std::vector<int> counts(5, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[static_cast<size_t>(z.Sample(&rng))];
  for (uint64_t k = 0; k < 5; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, z.Pmf(k), 0.01);
  }
}

}  // namespace
}  // namespace uqp
