// End-to-end integration tests through the experiment harness: the whole
// pipeline (datagen -> planner -> executor -> sampling -> fitting ->
// variance engine -> simulated machine) on a small database, checking the
// paper's qualitative claims at test scale.

#include <gtest/gtest.h>

#include <cmath>

#include "core/predictor.h"
#include "cost/calibration.h"
#include "exp/harness.h"
#include "hw/machine.h"
#include "math/stats.h"
#include "sampling/sample_db.h"
#include "workload/common.h"

namespace uqp {
namespace {

class HarnessTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    HarnessOptions options;
    options.profile = "tiny";
    harness_ = new ExperimentHarness(options);
    ASSERT_TRUE(harness_->LoadWorkload("micro", 40).ok());
    ASSERT_TRUE(harness_->LoadWorkload("seljoin", 18).ok());
  }
  static void TearDownTestSuite() {
    delete harness_;
    harness_ = nullptr;
  }
  static ExperimentHarness* harness_;
};
ExperimentHarness* HarnessTest::harness_ = nullptr;

TEST_F(HarnessTest, PredictionsArePositiveAndFinite) {
  auto result = harness_->Evaluate("micro", "PC1", 0.1);
  ASSERT_TRUE(result.ok());
  for (const QueryRecord& r : result->records) {
    EXPECT_GT(r.outcome.predicted_mean, 0.0) << r.name;
    EXPECT_GT(r.outcome.predicted_stddev, 0.0) << r.name;
    EXPECT_TRUE(std::isfinite(r.outcome.predicted_stddev)) << r.name;
    EXPECT_GT(r.outcome.actual_time, 0.0) << r.name;
  }
}

TEST_F(HarnessTest, BreakdownComponentsSumToVariance) {
  auto result = harness_->Evaluate("seljoin", "PC1", 0.1);
  ASSERT_TRUE(result.ok());
  for (const QueryRecord& r : result->records) {
    EXPECT_GE(r.breakdown.var_cost_units, 0.0);
    EXPECT_GE(r.breakdown.var_selectivity, 0.0);
    EXPECT_GE(r.breakdown.var_cov_bounds, 0.0);
    EXPECT_NEAR(r.breakdown.variance,
                r.breakdown.var_cost_units + r.breakdown.var_selectivity +
                    r.breakdown.var_cov_bounds,
                1e-9 * std::max(1.0, r.breakdown.variance));
  }
}

TEST_F(HarnessTest, CorrelationIsPositive) {
  auto result = harness_->Evaluate("micro", "PC1", 0.1);
  ASSERT_TRUE(result.ok());
  // The paper's headline claim, at test scale with a loose threshold.
  EXPECT_GT(result->summary.spearman, 0.3);
  EXPECT_GT(result->summary.pearson, 0.3);
}

TEST_F(HarnessTest, PredictionsAreInTheRightBallpark) {
  auto result = harness_->Evaluate("micro", "PC2", 0.1);
  ASSERT_TRUE(result.ok());
  int close = 0;
  for (const QueryRecord& r : result->records) {
    if (r.outcome.predicted_mean < 3.0 * r.outcome.actual_time &&
        r.outcome.actual_time < 3.0 * r.outcome.predicted_mean) {
      ++close;
    }
  }
  // Most predictions within 3x of the truth.
  EXPECT_GT(close, static_cast<int>(result->records.size() * 7 / 10));
}

TEST_F(HarnessTest, SamplingOverheadIsSmallAndGrowsWithSr) {
  auto small = harness_->Evaluate("micro", "PC1", 0.02);
  auto large = harness_->Evaluate("micro", "PC1", 0.2);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_GT(small->mean_overhead, 0.0);
  EXPECT_LT(small->mean_overhead, 0.25);
  EXPECT_GT(large->mean_overhead, small->mean_overhead);
}

TEST_F(HarnessTest, VariantVariancesAreOrdered) {
  auto all = harness_->Evaluate("seljoin", "PC1", 0.05, PredictorVariant::kAll);
  auto no_c =
      harness_->Evaluate("seljoin", "PC1", 0.05, PredictorVariant::kNoVarC);
  auto no_x =
      harness_->Evaluate("seljoin", "PC1", 0.05, PredictorVariant::kNoVarX);
  auto no_cov =
      harness_->Evaluate("seljoin", "PC1", 0.05, PredictorVariant::kNoCov);
  ASSERT_TRUE(all.ok() && no_c.ok() && no_x.ok() && no_cov.ok());
  for (size_t i = 0; i < all->records.size(); ++i) {
    const double v = all->records[i].breakdown.variance;
    EXPECT_LE(no_c->records[i].breakdown.variance, v + 1e-9);
    EXPECT_LE(no_x->records[i].breakdown.variance, v + 1e-9);
    EXPECT_LE(no_cov->records[i].breakdown.variance, v + 1e-9);
    // Point predictions barely move across variants (NoVarX can shift the
    // quadratic-term means slightly).
    EXPECT_NEAR(no_c->records[i].breakdown.mean, all->records[i].breakdown.mean,
                1e-9);
  }
}

TEST_F(HarnessTest, SelectivityDiagnosticsTrackTruth) {
  auto result = harness_->Evaluate("micro", "PC1", 0.2);
  ASSERT_TRUE(result.ok());
  std::vector<double> est, truth;
  for (const QueryRecord& r : result->records) {
    ASSERT_EQ(r.op_sel_est.size(), r.op_sel_true.size());
    ASSERT_EQ(r.op_sel_est.size(), r.op_sel_sigma.size());
    for (size_t i = 0; i < r.op_sel_est.size(); ++i) {
      est.push_back(r.op_sel_est[i]);
      truth.push_back(r.op_sel_true[i]);
    }
  }
  ASSERT_GE(est.size(), 20u);
  // Table 7 claim: estimated vs actual selectivities are near-diagonal.
  EXPECT_GT(PearsonCorrelation(est, truth), 0.95);
}

TEST_F(HarnessTest, MachinesDiffer) {
  auto pc1 = harness_->Evaluate("micro", "PC1", 0.1);
  auto pc2 = harness_->Evaluate("micro", "PC2", 0.1);
  ASSERT_TRUE(pc1.ok() && pc2.ok());
  // PC2 is faster: mean actual time lower.
  double t1 = 0.0, t2 = 0.0;
  for (const auto& r : pc1->records) t1 += r.outcome.actual_time;
  for (const auto& r : pc2->records) t2 += r.outcome.actual_time;
  EXPECT_LT(t2, t1);
  // Calibrated units differ accordingly.
  EXPECT_LT(harness_->UnitsFor("PC2").Get(kCostTuple).mean,
            harness_->UnitsFor("PC1").Get(kCostTuple).mean);
}

TEST(HarnessDeterminism, SameOptionsSameResults) {
  HarnessOptions options;
  options.profile = "tiny";
  ExperimentHarness a(options), b(options);
  ASSERT_TRUE(a.LoadWorkload("micro", 12).ok());
  ASSERT_TRUE(b.LoadWorkload("micro", 12).ok());
  auto ra = a.Evaluate("micro", "PC1", 0.1);
  auto rb = b.Evaluate("micro", "PC1", 0.1);
  ASSERT_TRUE(ra.ok() && rb.ok());
  ASSERT_EQ(ra->records.size(), rb->records.size());
  for (size_t i = 0; i < ra->records.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra->records[i].outcome.predicted_mean,
                     rb->records[i].outcome.predicted_mean);
    EXPECT_DOUBLE_EQ(ra->records[i].outcome.predicted_stddev,
                     rb->records[i].outcome.predicted_stddev);
    EXPECT_DOUBLE_EQ(ra->records[i].outcome.actual_time,
                     rb->records[i].outcome.actual_time);
  }
}

TEST(HarnessSettings, PaperGridHasFourSettings) {
  const auto settings = ExperimentHarness::PaperSettings();
  ASSERT_EQ(settings.size(), 4u);
  EXPECT_EQ(settings[0].label, "uniform-1gb");
  EXPECT_EQ(settings[3].label, "skewed-10gb");
  EXPECT_DOUBLE_EQ(settings[1].zipf, 1.0);
}

// ---------- Predictor-level behaviour (paper §6.3.2) ----------

TEST(PredictorBehaviour, DifferentSamplesGiveDifferentDistributions) {
  Database db = MakeTpchDatabase(TpchConfig::Profile("tiny"));
  SimulatedMachine machine(MachineProfile::PC1(), 1);
  Calibrator calibrator(&machine);
  const CostUnits units = calibrator.Calibrate();

  Rng rng(2);
  ConstantPicker pick(&db, &rng);
  JoinChainBuilder chain(&db);
  chain.Start("lineitem", pick.LessEqAtFraction("lineitem", "l_shipdate", 0.3))
      .Join("orders", nullptr, {{"lineitem.l_orderkey", "o_orderkey"}});
  auto plan_or = OptimizePlan(chain.Finish(), db);
  ASSERT_TRUE(plan_or.ok());
  const Plan plan = std::move(plan_or).value();

  SampleOptions o1, o2;
  o1.sampling_ratio = o2.sampling_ratio = 0.05;
  o1.seed = 100;
  o2.seed = 200;
  const SampleDb s1 = SampleDb::Build(db, o1);
  const SampleDb s2 = SampleDb::Build(db, o2);
  Predictor p1(&db, &s1, units), p2(&db, &s2, units);
  auto d1 = p1.Predict(plan);
  auto d2 = p2.Predict(plan);
  ASSERT_TRUE(d1.ok() && d2.ok());
  // Each sample yields ITS OWN distribution (Figure 7's point): close but
  // not identical.
  EXPECT_NE(d1->mean(), d2->mean());
  EXPECT_NEAR(d1->mean(), d2->mean(), 0.5 * d1->mean());
}

TEST(PredictorBehaviour, LargerSamplesShrinkSelectivityUncertainty) {
  Database db = MakeTpchDatabase(TpchConfig::Profile("tiny"));
  SimulatedMachine machine(MachineProfile::PC1(), 1);
  Calibrator calibrator(&machine);
  const CostUnits units = calibrator.Calibrate();

  Rng rng(2);
  ConstantPicker pick(&db, &rng);
  JoinChainBuilder chain(&db);
  chain.Start("lineitem", pick.LessEqAtFraction("lineitem", "l_shipdate", 0.3))
      .Join("orders", nullptr, {{"lineitem.l_orderkey", "o_orderkey"}});
  auto plan_or = OptimizePlan(chain.Finish(), db);
  ASSERT_TRUE(plan_or.ok());
  const Plan plan = std::move(plan_or).value();

  double prev = 1e18;
  for (double sr : {0.02, 0.1, 0.4}) {
    SampleOptions options;
    options.sampling_ratio = sr;
    const SampleDb samples = SampleDb::Build(db, options);
    Predictor predictor(&db, &samples, units);
    auto pred = predictor.Predict(plan);
    ASSERT_TRUE(pred.ok());
    const double sel_var =
        pred->breakdown.var_selectivity + pred->breakdown.var_cov_bounds;
    EXPECT_LT(sel_var, prev * 1.5);  // allow sampling noise, expect a trend
    prev = sel_var;
  }
}

}  // namespace
}  // namespace uqp
