// Randomized property tests: random plans over the TPC-H schema must
// satisfy the library's invariants end to end, and the S²_n/n variance
// estimate must statistically match the TRUE sampling variance of ρ_n
// (paper Theorem 3 / §3.2.1, validated by brute force over many
// independent sample sets).

#include <gtest/gtest.h>

#include <cmath>

#include "core/predictor.h"
#include "cost/calibration.h"
#include "datagen/tpch.h"
#include "engine/executor.h"
#include "engine/planner.h"
#include "hw/machine.h"
#include "math/gaussian.h"
#include "math/stats.h"
#include "sampling/estimator.h"
#include "workload/common.h"

namespace uqp {
namespace {

/// Generates a random logical plan over the TPC-H schema: a join chain of
/// 1-4 relations along FK edges with random filters, optionally topped by
/// an aggregate and/or sort.
std::unique_ptr<PlanNode> RandomPlan(const Database& db, Rng* rng) {
  ConstantPicker pick(&db, rng);
  struct Edge {
    const char* from_col;
    const char* to_table;
    const char* to_col;
  };
  // FK edges walkable from lineitem.
  const Edge edges[] = {
      {"lineitem.l_orderkey", "orders", "o_orderkey"},
      {"lineitem.l_partkey", "part", "p_partkey"},
      {"lineitem.l_suppkey", "supplier", "s_suppkey"},
  };
  auto random_filter = [&pick, rng](const char* table,
                                    const char* column) -> ExprPtr {
    switch (rng->NextInt(0, 2)) {
      case 0:
        return nullptr;
      case 1:
        return pick.LessEqAtFraction(table, column, rng->NextDouble());
      default:
        return pick.RangeOfWidth(table, column,
                                 0.05 + 0.5 * rng->NextDouble());
    }
  };

  JoinChainBuilder chain(&db);
  chain.Start("lineitem", random_filter("lineitem", "l_shipdate"));
  const int joins = static_cast<int>(rng->NextInt(0, 3));
  bool used[3] = {false, false, false};
  const char* filter_col[3] = {"o_totalprice", "p_retailprice", "s_acctbal"};
  for (int j = 0; j < joins; ++j) {
    const int e = static_cast<int>(rng->NextInt(0, 2));
    if (used[e]) continue;
    used[e] = true;
    chain.Join(edges[e].to_table,
               random_filter(edges[e].to_table, filter_col[e]),
               {{edges[e].from_col, edges[e].to_col}});
  }
  std::unique_ptr<PlanNode> root = chain.Finish();
  if (rng->NextBool(0.3)) {
    std::vector<AggSpec> aggs;
    aggs.push_back({AggSpec::Kind::kCount, -1, "cnt"});
    aggs.push_back({AggSpec::Kind::kSum, 4, "sum_qty"});
    root = MakeAggregate(std::move(root), {2}, aggs);
  } else if (rng->NextBool(0.3)) {
    root = MakeSort(std::move(root), {0});
  }
  return root;
}

class RandomPlanProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomPlanProperty, EndToEndInvariantsHold) {
  static Database* db = new Database(MakeTpchDatabase(TpchConfig::Profile("tiny")));
  static SampleDb* samples = [] {
    SampleOptions so;
    so.sampling_ratio = 0.1;
    return new SampleDb(SampleDb::Build(*db, so));
  }();
  static CostUnits* units = [] {
    SimulatedMachine machine(MachineProfile::PC2(), 1);
    Calibrator calibrator(&machine);
    return new CostUnits(calibrator.Calibrate());
  }();

  Rng rng(1000 + static_cast<uint64_t>(GetParam()));
  auto plan_or = OptimizePlan(RandomPlan(*db, &rng), *db);
  ASSERT_TRUE(plan_or.ok()) << plan_or.status().ToString();
  const Plan plan = std::move(plan_or).value();

  // Executor invariants.
  Executor executor(db);
  auto full = executor.Execute(plan, ExecOptions{});
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  for (const OpStats& st : full->ops) {
    EXPECT_GE(st.actual.ns, 0.0);
    EXPECT_GE(st.actual.nr, 0.0);
    EXPECT_GE(st.out_rows, 0.0);
    EXPECT_GE(st.leaf_row_product, 1.0);
    EXPECT_LE(st.selectivity(), 1.0 + 1e-12);
  }

  // Estimator invariants.
  SamplingEstimator estimator(db, samples);
  auto est = estimator.Estimate(plan);
  ASSERT_TRUE(est.ok()) << est.status().ToString();
  for (const SelectivityEstimate& e : est->ops) {
    EXPECT_GE(e.rho, 0.0);
    EXPECT_LE(e.rho, 1.0);
    EXPECT_GE(e.variance, -1e-15);
    double comp = 0.0;
    for (double v : e.var_components) comp += v;
    EXPECT_NEAR(comp, e.variance, 1e-12 + 1e-9 * e.variance);
  }

  // Prediction invariants.
  Predictor predictor(db, samples, *units);
  auto pred = predictor.Predict(plan);
  ASSERT_TRUE(pred.ok()) << pred.status().ToString();
  EXPECT_TRUE(std::isfinite(pred->mean()));
  EXPECT_TRUE(std::isfinite(pred->stddev()));
  EXPECT_GT(pred->mean(), 0.0);
  EXPECT_GE(pred->breakdown.variance, 0.0);

  // Variant ordering.
  for (PredictorVariant v : {PredictorVariant::kNoVarC, PredictorVariant::kNoVarX,
                             PredictorVariant::kNoCov}) {
    const VarianceBreakdown b =
        predictor.Recompute(*pred, v, CovarianceBoundKind::kBest);
    EXPECT_LE(b.variance, pred->breakdown.variance + 1e-9)
        << PredictorVariantName(v);
  }

  // Bound ordering: B1-based total never exceeds B2-based total.
  const double v_b1 =
      predictor.Recompute(*pred, PredictorVariant::kAll, CovarianceBoundKind::kB1)
          .variance;
  const double v_b2 =
      predictor.Recompute(*pred, PredictorVariant::kAll, CovarianceBoundKind::kB2)
          .variance;
  const double v_best =
      predictor
          .Recompute(*pred, PredictorVariant::kAll, CovarianceBoundKind::kBest)
          .variance;
  EXPECT_LE(v_b1, v_b2 + 1e-9);
  EXPECT_LE(v_best, v_b1 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPlanProperty, ::testing::Range(0, 24));

// ---------- Statistical validation of Var̂[ρ_n] (Theorem 3 / S²_n) ----------

struct VarValidationCase {
  double sampling_ratio;
  bool join;  // scan otherwise
};

class VarianceEstimateValidation
    : public ::testing::TestWithParam<VarValidationCase> {};

TEST_P(VarianceEstimateValidation, EstimatedVarianceTracksTrueVariance) {
  const auto [ratio, join] = GetParam();
  static Database* db = new Database(MakeTpchDatabase(TpchConfig::Profile("tiny")));

  // Fixed query; only the samples vary.
  Rng qrng(5);
  ConstantPicker pick(db, &qrng);
  std::unique_ptr<PlanNode> logical;
  if (join) {
    JoinChainBuilder chain(db);
    chain.Start("lineitem", pick.LessEqAtFraction("lineitem", "l_quantity", 0.5))
        .Join("orders", nullptr, {{"lineitem.l_orderkey", "o_orderkey"}});
    logical = chain.Finish();
  } else {
    logical = MakeSeqScan("lineitem",
                          pick.LessEqAtFraction("lineitem", "l_quantity", 0.3));
  }
  Plan plan(std::move(logical));
  ASSERT_TRUE(plan.Finalize(*db).ok());

  // Across many independent sample sets: the empirical variance of ρ̂ must
  // match the average estimated variance (S²_n/n is consistent).
  RunningStats rho_hat;
  double est_var_acc = 0.0;
  const int trials = 60;
  for (int t = 0; t < trials; ++t) {
    SampleOptions so;
    so.sampling_ratio = ratio;
    so.seed = 10000 + static_cast<uint64_t>(t);
    const SampleDb samples = SampleDb::Build(*db, so);
    SamplingEstimator estimator(db, &samples);
    auto est = estimator.Estimate(plan);
    ASSERT_TRUE(est.ok());
    rho_hat.Add(est->ops[0].rho);
    est_var_acc += est->ops[0].variance;
  }
  const double empirical = rho_hat.variance();
  const double estimated = est_var_acc / trials;
  ASSERT_GT(empirical, 0.0);
  // Sampling WITHOUT replacement makes the true variance smaller than the
  // with-replacement formula by up to (1 - ratio); allow a generous band.
  const double ratio_of_vars = estimated / empirical;
  EXPECT_GT(ratio_of_vars, 0.4) << "estimator badly underestimates";
  EXPECT_LT(ratio_of_vars, 3.0) << "estimator badly overestimates";
}

INSTANTIATE_TEST_SUITE_P(
    Cases, VarianceEstimateValidation,
    ::testing::Values(VarValidationCase{0.05, false},
                      VarValidationCase{0.2, false},
                      VarValidationCase{0.05, true},
                      VarValidationCase{0.2, true}));

// ---------- Ordered-sum tail probability vs Monte-Carlo oracle ----------
//
// The scheduling policy library's P(both meet | a then b) — the exact
// quadrature ProbBothMeetSequential — must match a 1e6-draw Monte-Carlo
// estimate of P(A <= da AND A + B <= db) within 3 standard errors, for
// randomized job shapes. The same oracle quantifies the bias of the
// historical product approximation (NaiveBothMeetProb): wherever a's
// deadline binds, the product must sit BELOW the exact value.

class BothMeetOracle : public ::testing::TestWithParam<int> {};

TEST_P(BothMeetOracle, QuadratureMatchesMonteCarloWithin3SE) {
  Rng rng(900 + static_cast<uint64_t>(GetParam()));
  // Random job pair: means within a decade, cv in [0.05, 0.6], deadlines
  // spanning slack-to-binding (da around mu_a, db around mu_a + mu_b).
  const double mu_a = 50.0 + 450.0 * rng.NextDouble();
  const double mu_b = 50.0 + 450.0 * rng.NextDouble();
  const double sd_a = mu_a * (0.05 + 0.55 * rng.NextDouble());
  const double sd_b = mu_b * (0.05 + 0.55 * rng.NextDouble());
  const double da = mu_a * (0.8 + 0.8 * rng.NextDouble());
  const double db = (mu_a + mu_b) * (0.8 + 0.8 * rng.NextDouble());

  const double exact = ProbBothMeetSequential(mu_a, sd_a * sd_a, da,
                                              mu_b, sd_b * sd_b, db);

  const int kDraws = 1000000;
  int hits = 0;
  for (int i = 0; i < kDraws; ++i) {
    const double ta = rng.NextGaussian(mu_a, sd_a);
    const double tb = rng.NextGaussian(mu_b, sd_b);
    if (ta <= da && ta + tb <= db) ++hits;
  }
  const double mc = static_cast<double>(hits) / kDraws;
  const double se = std::sqrt(std::max(mc * (1.0 - mc), 1e-12) / kDraws);
  EXPECT_NEAR(exact, mc, 3.0 * se + 1e-6)
      << "mu_a=" << mu_a << " sd_a=" << sd_a << " da=" << da
      << " mu_b=" << mu_b << " sd_b=" << sd_b << " db=" << db;

  // The naive product never exceeds the exact probability (positive
  // correlation through A + truncation of A at da), and is strictly
  // below it whenever da binds.
  const double p_a = NormalCdf(da, mu_a, sd_a * sd_a);
  const double naive =
      p_a * NormalCdf(db, mu_a + mu_b, sd_a * sd_a + sd_b * sd_b);
  EXPECT_LE(naive, exact + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BothMeetOracle, ::testing::Range(0, 8));

}  // namespace
}  // namespace uqp
