// Tests for the service layer: PredictionService must serve batched,
// cached and concurrent predictions that are bit-identical to the
// sequential single-plan path, skip the sample run on fingerprint cache
// hits, and stay race-free under multi-threaded load.

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "core/predictor.h"
#include "cost/calibration.h"
#include "datagen/tpch.h"
#include "engine/plan.h"
#include "engine/planner.h"
#include "hw/machine.h"
#include "sampling/sample_db.h"
#include "service/prediction_service.h"
#include "workload/common.h"

namespace uqp {
namespace {

/// Shared fixture: a tiny TPC-H database, samples, calibrated units and a
/// pool of optimized selection-join plans.
class ServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database(MakeTpchDatabase(TpchConfig::Profile("tiny")));
    SampleOptions sample_options;
    sample_options.sampling_ratio = 0.05;
    samples_ = new SampleDb(SampleDb::Build(*db_, sample_options));
    SimulatedMachine machine(MachineProfile::PC1(), 17);
    Calibrator calibrator(&machine);
    units_ = new CostUnits(calibrator.Calibrate());

    plans_ = new std::vector<Plan>();
    SelJoinOptions wopts;
    wopts.instances_per_template = 2;
    auto queries = MakeSelJoinWorkload(*db_, wopts);
    for (auto& q : queries) {
      auto plan_or = OptimizePlan(std::move(q.logical), *db_);
      if (plan_or.ok()) plans_->push_back(std::move(plan_or).value());
    }
    ASSERT_GE(plans_->size(), 4u);
  }

  static void TearDownTestSuite() {
    delete plans_;
    delete units_;
    delete samples_;
    delete db_;
    plans_ = nullptr;
    units_ = nullptr;
    samples_ = nullptr;
    db_ = nullptr;
  }

  static Database* db_;
  static SampleDb* samples_;
  static CostUnits* units_;
  static std::vector<Plan>* plans_;
};

Database* ServiceTest::db_ = nullptr;
SampleDb* ServiceTest::samples_ = nullptr;
CostUnits* ServiceTest::units_ = nullptr;
std::vector<Plan>* ServiceTest::plans_ = nullptr;

TEST_F(ServiceTest, BatchBitIdenticalToSequential) {
  // Sequential reference through the plain Predictor (no cache, no pool).
  Predictor predictor(db_, samples_, *units_);
  std::vector<Prediction> reference;
  for (const Plan& plan : *plans_) {
    auto pred_or = predictor.Predict(plan);
    ASSERT_TRUE(pred_or.ok()) << pred_or.status().ToString();
    reference.push_back(std::move(pred_or).value());
  }

  ServiceOptions options;
  options.num_workers = 3;
  PredictionService service(db_, samples_, *units_, options);
  const auto batched = service.PredictBatch(*plans_);
  ASSERT_EQ(batched.size(), plans_->size());
  for (size_t i = 0; i < batched.size(); ++i) {
    ASSERT_TRUE(batched[i].ok()) << batched[i].status().ToString();
    // Bit-identical, not approximately equal: every stage is
    // deterministic, so batching/sharding must not change a single bit.
    EXPECT_EQ(batched[i]->mean(), reference[i].mean()) << "plan " << i;
    EXPECT_EQ(batched[i]->breakdown.variance, reference[i].breakdown.variance)
        << "plan " << i;
    EXPECT_EQ(batched[i]->breakdown.var_cost_units,
              reference[i].breakdown.var_cost_units);
    EXPECT_EQ(batched[i]->breakdown.var_selectivity,
              reference[i].breakdown.var_selectivity);
  }
}

TEST_F(ServiceTest, CachedRepredictionSkipsSampleRun) {
  PredictionService service(db_, samples_, *units_);
  const Plan& plan = (*plans_)[0];

  auto first = service.Predict(plan);
  ASSERT_TRUE(first.ok());
  const ServiceStats after_first = service.stats();
  EXPECT_EQ(after_first.sample_runs, 1u);
  EXPECT_EQ(after_first.cache_misses, 1u);
  EXPECT_EQ(after_first.cache_hits, 0u);

  auto second = service.Predict(plan);
  ASSERT_TRUE(second.ok());
  const ServiceStats after_second = service.stats();
  EXPECT_EQ(after_second.sample_runs, 1u) << "cache hit must skip stage 1";
  EXPECT_EQ(after_second.cache_hits, 1u);

  // The cached path re-runs only fit/combine: bit-identical output.
  EXPECT_EQ(second->mean(), first->mean());
  EXPECT_EQ(second->breakdown.variance, first->breakdown.variance);
}

TEST_F(ServiceTest, BatchDedupesByFingerprint) {
  ServiceOptions options;
  options.num_workers = 2;
  PredictionService service(db_, samples_, *units_, options);

  // The same two plans repeated: 6 predictions, 2 distinct fingerprints.
  std::vector<const Plan*> batch = {&(*plans_)[0], &(*plans_)[1], &(*plans_)[0],
                                    &(*plans_)[1], &(*plans_)[0], &(*plans_)[1]};
  const auto results = service.PredictBatch(batch);
  ASSERT_EQ(results.size(), batch.size());
  for (const auto& r : results) ASSERT_TRUE(r.ok());
  EXPECT_EQ(service.stats().sample_runs, 2u)
      << "repeated fingerprints must share one sample run";
  // Repeats are bit-identical to their first occurrence.
  EXPECT_EQ(results[2]->mean(), results[0]->mean());
  EXPECT_EQ(results[2]->breakdown.variance, results[0]->breakdown.variance);
  EXPECT_EQ(results[5]->mean(), results[1]->mean());
}

TEST_F(ServiceTest, FingerprintDistinguishesPlans) {
  // Sanity on the cache key: distinct plans get distinct fingerprints,
  // and a plan's fingerprint is stable.
  const uint64_t f0 = PlanFingerprint((*plans_)[0]);
  const uint64_t f1 = PlanFingerprint((*plans_)[1]);
  EXPECT_NE(f0, f1);
  EXPECT_EQ(f0, PlanFingerprint((*plans_)[0]));
}

TEST_F(ServiceTest, ConcurrentPredictIsRaceFree) {
  // N threads hammer Predict over a shared service (shared cache, shared
  // pipeline); every result must equal the sequential reference.
  Predictor predictor(db_, samples_, *units_);
  std::vector<Prediction> reference;
  for (const Plan& plan : *plans_) {
    auto pred_or = predictor.Predict(plan);
    ASSERT_TRUE(pred_or.ok());
    reference.push_back(std::move(pred_or).value());
  }

  ServiceOptions options;
  options.num_workers = 2;
  PredictionService service(db_, samples_, *units_, options);

  constexpr int kThreads = 8;
  constexpr int kRoundsPerThread = 3;
  std::vector<int> mismatches(kThreads, 0);
  std::vector<int> failures(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRoundsPerThread; ++round) {
        for (size_t i = 0; i < plans_->size(); ++i) {
          // Interleave plan order per thread to vary cache contention.
          const size_t idx = (i + static_cast<size_t>(t)) % plans_->size();
          auto pred_or = service.Predict((*plans_)[idx]);
          if (!pred_or.ok()) {
            ++failures[t];
            continue;
          }
          if (pred_or->mean() != reference[idx].mean() ||
              pred_or->breakdown.variance != reference[idx].breakdown.variance) {
            ++mismatches[t];
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[t], 0) << "thread " << t;
    EXPECT_EQ(mismatches[t], 0) << "thread " << t;
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.predictions,
            static_cast<uint64_t>(kThreads * kRoundsPerThread) * plans_->size());
  // The cache bounds stage-1 work: at most one sample run per distinct
  // plan, plus any lost races on first population (both run, one wins).
  EXPECT_LE(stats.sample_runs, static_cast<uint64_t>(kThreads) * plans_->size());
  EXPECT_GE(stats.cache_hits, 1u);
}

TEST_F(ServiceTest, CacheDisabledStillCorrect) {
  ServiceOptions options;
  options.cache_capacity = 0;
  PredictionService service(db_, samples_, *units_, options);
  const Plan& plan = (*plans_)[0];
  auto a = service.Predict(plan);
  auto b = service.Predict(plan);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(service.stats().sample_runs, 2u);
  EXPECT_EQ(a->mean(), b->mean());
  EXPECT_EQ(a->breakdown.variance, b->breakdown.variance);
}

TEST_F(ServiceTest, RecomputeMatchesPredictorRecompute) {
  PredictionService service(db_, samples_, *units_);
  Predictor predictor(db_, samples_, *units_);
  auto pred_or = service.Predict((*plans_)[2]);
  ASSERT_TRUE(pred_or.ok());
  for (const auto variant : {PredictorVariant::kNoVarC, PredictorVariant::kNoVarX,
                             PredictorVariant::kNoCov}) {
    const VarianceBreakdown s =
        service.Recompute(*pred_or, variant, CovarianceBoundKind::kBest);
    const VarianceBreakdown p =
        predictor.Recompute(*pred_or, variant, CovarianceBoundKind::kBest);
    EXPECT_EQ(s.mean, p.mean);
    EXPECT_EQ(s.variance, p.variance);
  }
}

TEST_F(ServiceTest, LruEvictionKeepsServing) {
  ServiceOptions options;
  options.cache_capacity = 2;  // smaller than the plan pool
  PredictionService service(db_, samples_, *units_, options);
  for (int round = 0; round < 2; ++round) {
    for (const Plan& plan : *plans_) {
      auto pred_or = service.Predict(plan);
      ASSERT_TRUE(pred_or.ok());
    }
  }
  // With capacity 2 and a round-robin access pattern longer than the
  // cache, every access misses: correctness is unaffected, only reuse.
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.predictions, 2u * plans_->size());
  EXPECT_EQ(stats.sample_runs, stats.cache_misses);
}

}  // namespace
}  // namespace uqp
