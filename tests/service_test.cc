// Tests for the service layer: PredictionService must serve batched,
// cached and concurrent predictions that are bit-identical to the
// sequential single-plan path, skip the sample run on fingerprint cache
// hits, and stay race-free under multi-threaded load.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/predictor.h"
#include "cost/calibration.h"
#include "datagen/tpch.h"
#include "engine/cost_model.h"
#include "engine/plan.h"
#include "engine/planner.h"
#include "hw/machine.h"
#include "sampling/sample_db.h"
#include "service/fault.h"
#include "service/prediction_service.h"
#include "workload/common.h"

namespace uqp {
namespace {

/// Shared fixture: a tiny TPC-H database, samples, calibrated units and a
/// pool of optimized selection-join plans.
class ServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database(MakeTpchDatabase(TpchConfig::Profile("tiny")));
    SampleOptions sample_options;
    sample_options.sampling_ratio = 0.05;
    samples_ = new SampleDb(SampleDb::Build(*db_, sample_options));
    SimulatedMachine machine(MachineProfile::PC1(), 17);
    Calibrator calibrator(&machine);
    units_ = new CostUnits(calibrator.Calibrate());

    plans_ = new std::vector<Plan>();
    SelJoinOptions wopts;
    wopts.instances_per_template = 2;
    auto queries = MakeSelJoinWorkload(*db_, wopts);
    for (auto& q : queries) {
      auto plan_or = OptimizePlan(std::move(q.logical), *db_);
      if (plan_or.ok()) plans_->push_back(std::move(plan_or).value());
    }
    ASSERT_GE(plans_->size(), 4u);
  }

  static void TearDownTestSuite() {
    delete plans_;
    delete units_;
    delete samples_;
    delete db_;
    plans_ = nullptr;
    units_ = nullptr;
    samples_ = nullptr;
    db_ = nullptr;
  }

  static Database* db_;
  static SampleDb* samples_;
  static CostUnits* units_;
  static std::vector<Plan>* plans_;
};

Database* ServiceTest::db_ = nullptr;
SampleDb* ServiceTest::samples_ = nullptr;
CostUnits* ServiceTest::units_ = nullptr;
std::vector<Plan>* ServiceTest::plans_ = nullptr;

TEST_F(ServiceTest, BatchBitIdenticalToSequential) {
  // Sequential reference through the plain Predictor (no cache, no pool).
  Predictor predictor(db_, samples_, *units_);
  std::vector<Prediction> reference;
  for (const Plan& plan : *plans_) {
    auto pred_or = predictor.Predict(plan);
    ASSERT_TRUE(pred_or.ok()) << pred_or.status().ToString();
    reference.push_back(std::move(pred_or).value());
  }

  ServiceOptions options;
  options.num_workers = 3;
  PredictionService service(db_, samples_, *units_, options);
  const auto batched = service.PredictBatch(*plans_);
  ASSERT_EQ(batched.size(), plans_->size());
  for (size_t i = 0; i < batched.size(); ++i) {
    ASSERT_TRUE(batched[i].ok()) << batched[i].status().ToString();
    // Bit-identical, not approximately equal: every stage is
    // deterministic, so batching/sharding must not change a single bit.
    EXPECT_EQ(batched[i]->mean(), reference[i].mean()) << "plan " << i;
    EXPECT_EQ(batched[i]->breakdown.variance, reference[i].breakdown.variance)
        << "plan " << i;
    EXPECT_EQ(batched[i]->breakdown.var_cost_units,
              reference[i].breakdown.var_cost_units);
    EXPECT_EQ(batched[i]->breakdown.var_selectivity,
              reference[i].breakdown.var_selectivity);
  }
}

TEST_F(ServiceTest, CachedRepredictionSkipsSampleRun) {
  PredictionService service(db_, samples_, *units_);
  const Plan& plan = (*plans_)[0];

  auto first = service.Predict(plan);
  ASSERT_TRUE(first.ok());
  const ServiceStats after_first = service.stats();
  EXPECT_EQ(after_first.sample_runs, 1u);
  EXPECT_EQ(after_first.cache_misses, 1u);
  EXPECT_EQ(after_first.cache_hits, 0u);

  auto second = service.Predict(plan);
  ASSERT_TRUE(second.ok());
  const ServiceStats after_second = service.stats();
  EXPECT_EQ(after_second.sample_runs, 1u) << "cache hit must skip stage 1";
  EXPECT_EQ(after_second.cache_hits, 1u);

  // The cached path re-runs only fit/combine: bit-identical output.
  EXPECT_EQ(second->mean(), first->mean());
  EXPECT_EQ(second->breakdown.variance, first->breakdown.variance);
}

TEST_F(ServiceTest, BatchDedupesByFingerprint) {
  ServiceOptions options;
  options.num_workers = 2;
  PredictionService service(db_, samples_, *units_, options);

  // The same two plans repeated: 6 predictions, 2 distinct fingerprints.
  std::vector<const Plan*> batch = {&(*plans_)[0], &(*plans_)[1], &(*plans_)[0],
                                    &(*plans_)[1], &(*plans_)[0], &(*plans_)[1]};
  const auto results = service.PredictBatch(batch);
  ASSERT_EQ(results.size(), batch.size());
  for (const auto& r : results) ASSERT_TRUE(r.ok());
  EXPECT_EQ(service.stats().sample_runs, 2u)
      << "repeated fingerprints must share one sample run";
  // Repeats are bit-identical to their first occurrence.
  EXPECT_EQ(results[2]->mean(), results[0]->mean());
  EXPECT_EQ(results[2]->breakdown.variance, results[0]->breakdown.variance);
  EXPECT_EQ(results[5]->mean(), results[1]->mean());
}

TEST_F(ServiceTest, FingerprintDistinguishesPlans) {
  // Sanity on the cache key: distinct plans get distinct fingerprints,
  // and a plan's fingerprint is stable.
  const uint64_t f0 = PlanFingerprint((*plans_)[0]);
  const uint64_t f1 = PlanFingerprint((*plans_)[1]);
  EXPECT_NE(f0, f1);
  EXPECT_EQ(f0, PlanFingerprint((*plans_)[0]));
}

TEST_F(ServiceTest, ConcurrentPredictIsRaceFree) {
  // N threads hammer Predict over a shared service (shared cache, shared
  // pipeline); every result must equal the sequential reference.
  Predictor predictor(db_, samples_, *units_);
  std::vector<Prediction> reference;
  for (const Plan& plan : *plans_) {
    auto pred_or = predictor.Predict(plan);
    ASSERT_TRUE(pred_or.ok());
    reference.push_back(std::move(pred_or).value());
  }

  ServiceOptions options;
  options.num_workers = 2;
  PredictionService service(db_, samples_, *units_, options);

  constexpr int kThreads = 8;
  constexpr int kRoundsPerThread = 3;
  std::vector<int> mismatches(kThreads, 0);
  std::vector<int> failures(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRoundsPerThread; ++round) {
        for (size_t i = 0; i < plans_->size(); ++i) {
          // Interleave plan order per thread to vary cache contention.
          const size_t idx = (i + static_cast<size_t>(t)) % plans_->size();
          auto pred_or = service.Predict((*plans_)[idx]);
          if (!pred_or.ok()) {
            ++failures[t];
            continue;
          }
          if (pred_or->mean() != reference[idx].mean() ||
              pred_or->breakdown.variance != reference[idx].breakdown.variance) {
            ++mismatches[t];
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[t], 0) << "thread " << t;
    EXPECT_EQ(mismatches[t], 0) << "thread " << t;
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.predictions,
            static_cast<uint64_t>(kThreads * kRoundsPerThread) * plans_->size());
  // The cache bounds stage-1 work: at most one sample run per distinct
  // plan, plus any lost races on first population (both run, one wins).
  EXPECT_LE(stats.sample_runs, static_cast<uint64_t>(kThreads) * plans_->size());
  EXPECT_GE(stats.cache_hits, 1u);
}

TEST_F(ServiceTest, CacheDisabledStillCorrect) {
  ServiceOptions options;
  options.cache_capacity = 0;
  PredictionService service(db_, samples_, *units_, options);
  const Plan& plan = (*plans_)[0];
  auto a = service.Predict(plan);
  auto b = service.Predict(plan);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(service.stats().sample_runs, 2u);
  EXPECT_EQ(a->mean(), b->mean());
  EXPECT_EQ(a->breakdown.variance, b->breakdown.variance);
}

TEST_F(ServiceTest, RecomputeMatchesPredictorRecompute) {
  PredictionService service(db_, samples_, *units_);
  Predictor predictor(db_, samples_, *units_);
  auto pred_or = service.Predict((*plans_)[2]);
  ASSERT_TRUE(pred_or.ok());
  for (const auto variant : {PredictorVariant::kNoVarC, PredictorVariant::kNoVarX,
                             PredictorVariant::kNoCov}) {
    const VarianceBreakdown s =
        service.Recompute(*pred_or, variant, CovarianceBoundKind::kBest);
    const VarianceBreakdown p =
        predictor.Recompute(*pred_or, variant, CovarianceBoundKind::kBest);
    EXPECT_EQ(s.mean, p.mean);
    EXPECT_EQ(s.variance, p.variance);
  }
}

TEST_F(ServiceTest, LruEvictionKeepsServing) {
  ServiceOptions options;
  options.cache_capacity = 2;  // smaller than the plan pool
  PredictionService service(db_, samples_, *units_, options);
  for (int round = 0; round < 2; ++round) {
    for (const Plan& plan : *plans_) {
      auto pred_or = service.Predict(plan);
      ASSERT_TRUE(pred_or.ok());
    }
  }
  // With capacity 2 and a round-robin access pattern longer than the
  // cache, every access misses: correctness is unaffected, only reuse.
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.predictions, 2u * plans_->size());
  EXPECT_EQ(stats.sample_runs, stats.cache_misses);
}

// ---------- Async + in-flight dedup ----------

TEST_F(ServiceTest, AsyncStormSharesOneSampleRun) {
  // A storm of concurrent PredictAsync requests on ONE fingerprint must
  // run stage 1 exactly once: the first request wins the in-flight slot,
  // every other request waits on its shared future or hits the cache.
  ServiceOptions options;
  options.num_workers = 4;
  // Gate the winner inside the stages so the storm genuinely overlaps:
  // the hook returns only after at least 3 requests joined the in-flight
  // run (the other 3 workers each pull one and wait on the future).
  PredictionService* svc = nullptr;
  options.post_stages_hook = [&svc] {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (svc->stats().inflight_joins < 3 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::yield();
    }
  };
  PredictionService service(db_, samples_, *units_, options);
  svc = &service;

  const Plan& plan = (*plans_)[0];
  constexpr int kRequests = 16;
  std::vector<std::future<StatusOr<Prediction>>> futures;
  futures.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    futures.push_back(service.PredictAsync(plan));
  }

  Predictor reference(db_, samples_, *units_);
  auto ref = reference.Predict(plan);
  ASSERT_TRUE(ref.ok());
  for (auto& f : futures) {
    auto pred_or = f.get();
    ASSERT_TRUE(pred_or.ok()) << pred_or.status().ToString();
    EXPECT_EQ(pred_or->mean(), ref->mean());
    EXPECT_EQ(pred_or->breakdown.variance, ref->breakdown.variance);
  }

  const ServiceStats st = service.stats();
  EXPECT_EQ(st.sample_runs, 1u) << "concurrent misses must share one stage-1 run";
  EXPECT_EQ(st.fit_runs, 1u);
  EXPECT_EQ(st.predictions, static_cast<uint64_t>(kRequests));
  EXPECT_EQ(st.cache_misses, 1u);
  EXPECT_EQ(st.cache_hits, static_cast<uint64_t>(kRequests - 1));
  EXPECT_GE(st.inflight_joins, 1u);
  EXPECT_EQ(st.cache_hits + st.cache_misses, st.predictions);
}

TEST_F(ServiceTest, AsyncMatchesSyncBitIdentical) {
  PredictionService service(db_, samples_, *units_);
  Predictor predictor(db_, samples_, *units_);
  std::vector<std::future<StatusOr<Prediction>>> futures;
  for (const Plan& plan : *plans_) futures.push_back(service.PredictAsync(plan));
  for (size_t i = 0; i < plans_->size(); ++i) {
    auto async_or = futures[i].get();
    auto sync_or = predictor.Predict((*plans_)[i]);
    ASSERT_TRUE(async_or.ok());
    ASSERT_TRUE(sync_or.ok());
    EXPECT_EQ(async_or->mean(), sync_or->mean()) << "plan " << i;
    EXPECT_EQ(async_or->breakdown.variance, sync_or->breakdown.variance);
  }
}

// ---------- Zero-copy cached artifacts ----------

TEST_F(ServiceTest, HotCachePredictionsShareArtifacts) {
  // Hot-cache predictions must alias the cached stage 1-2 artifacts, not
  // copy them: pointer identity across repeated predictions of one plan.
  PredictionService service(db_, samples_, *units_);
  const Plan& plan = (*plans_)[0];
  auto first = service.Predict(plan);
  auto second = service.Predict(plan);
  auto third = service.Predict(plan);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(third.ok());
  ASSERT_NE(first->sample_run, nullptr);
  ASSERT_NE(first->cost_fit, nullptr);
  EXPECT_EQ(first->sample_run.get(), second->sample_run.get())
      << "hot-cache prediction must share, not copy, the sample run";
  EXPECT_EQ(first->cost_fit.get(), second->cost_fit.get());
  EXPECT_EQ(second->sample_run.get(), third->sample_run.get());
  // The shared artifacts stay valid and readable through the prediction.
  EXPECT_FALSE(first->estimates().ops.empty());
  EXPECT_EQ(&first->estimates(), &second->estimates());
}

TEST_F(ServiceTest, BatchDuplicatesShareArtifacts) {
  PredictionService service(db_, samples_, *units_);
  std::vector<const Plan*> batch = {&(*plans_)[0], &(*plans_)[1], &(*plans_)[0]};
  const auto results = service.PredictBatch(batch);
  ASSERT_EQ(results.size(), 3u);
  for (const auto& r : results) ASSERT_TRUE(r.ok());
  EXPECT_EQ(results[0]->sample_run.get(), results[2]->sample_run.get());
  EXPECT_EQ(results[0]->cost_fit.get(), results[2]->cost_fit.get());
  EXPECT_NE(results[0]->sample_run.get(), results[1]->sample_run.get());
}

// ---------- Stats consistency ----------

TEST_F(ServiceTest, StatsInvariantHoldsMidFlight) {
  // hits + misses must equal predictions at EVERY instant, including
  // sampled from another thread in the middle of batches, async storms
  // and single predictions.
  ServiceOptions options;
  options.num_workers = 3;
  PredictionService service(db_, samples_, *units_, options);

  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  std::thread poller([&] {
    while (!stop.load()) {
      const ServiceStats st = service.stats();
      if (st.cache_hits + st.cache_misses != st.predictions) {
        violations.fetch_add(1);
      }
      std::this_thread::yield();
    }
  });

  std::vector<const Plan*> batch;
  for (int r = 0; r < 3; ++r) {
    for (const Plan& p : *plans_) batch.push_back(&p);
  }
  for (int round = 0; round < 3; ++round) {
    auto results = service.PredictBatch(batch);
    for (const auto& r : results) ASSERT_TRUE(r.ok());
    std::vector<std::future<StatusOr<Prediction>>> futures;
    for (const Plan& p : *plans_) futures.push_back(service.PredictAsync(p));
    for (auto& f : futures) ASSERT_TRUE(f.get().ok());
    ASSERT_TRUE(service.Predict((*plans_)[0]).ok());
  }
  stop.store(true);
  poller.join();

  EXPECT_EQ(violations.load(), 0)
      << "stats() exposed an inconsistent hit/miss split mid-flight";
  const ServiceStats st = service.stats();
  EXPECT_EQ(st.cache_hits + st.cache_misses, st.predictions);
  EXPECT_EQ(st.predictions,
            3u * (batch.size() + plans_->size() + 1));
}

// ---------- Cache invalidation vs in-flight predictions ----------

TEST_F(ServiceTest, InvalidateDuringInflightDropsStaleInsert) {
  // InvalidateCache while a prediction is between "stages done" and
  // "cache insert" must win: the late insert is dropped (generation
  // stamp), so no pre-flush artifact survives the flush.
  ServiceOptions options;
  std::mutex mu;
  std::condition_variable cv;
  bool in_stages = false;
  bool release = false;
  options.post_stages_hook = [&] {
    std::unique_lock<std::mutex> lock(mu);
    in_stages = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  };
  PredictionService service(db_, samples_, *units_, options);
  const Plan& plan = (*plans_)[0];

  std::thread predict_thread([&] {
    auto pred_or = service.Predict(plan);
    EXPECT_TRUE(pred_or.ok());  // the in-flight prediction still completes
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return in_stages; });
  }
  service.InvalidateCache();  // flush races the pending insert — flush wins
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
    cv.notify_all();
  }
  predict_thread.join();

  EXPECT_EQ(service.cache_size(), 0u)
      << "a stale artifact was re-inserted after InvalidateCache";
  EXPECT_EQ(service.stats().stale_drops, 1u);

  // The next prediction must re-run stage 1 (nothing stale was kept).
  auto again = service.Predict(plan);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(service.stats().sample_runs, 2u);
  EXPECT_EQ(service.cache_size(), 1u);
}

// ---------- Fingerprint collisions ----------

TEST_F(ServiceTest, FingerprintCollisionFallsBackToMiss) {
  // Force every plan onto one 64-bit fingerprint: the structural key
  // stored with each cache entry must turn would-be false hits into
  // misses, so predictions stay bit-identical to the reference.
  Predictor predictor(db_, samples_, *units_);
  ServiceOptions options;
  options.fingerprint_fn = [](const Plan&) -> uint64_t { return 42; };
  PredictionService service(db_, samples_, *units_, options);

  std::vector<Prediction> reference;
  for (const Plan& plan : *plans_) {
    auto pred_or = predictor.Predict(plan);
    ASSERT_TRUE(pred_or.ok());
    reference.push_back(std::move(pred_or).value());
  }
  for (int round = 0; round < 2; ++round) {
    for (size_t i = 0; i < plans_->size(); ++i) {
      auto pred_or = service.Predict((*plans_)[i]);
      ASSERT_TRUE(pred_or.ok());
      EXPECT_EQ(pred_or->mean(), reference[i].mean())
          << "colliding fingerprints served another plan's artifacts";
      EXPECT_EQ(pred_or->breakdown.variance, reference[i].breakdown.variance);
    }
  }
  // All plans share the single colliding slot; round-robin access evicts
  // it every time, so every request was a (correct) miss.
  EXPECT_EQ(service.cache_size(), 1u);
  const ServiceStats st = service.stats();
  EXPECT_EQ(st.cache_misses, st.predictions);
  EXPECT_EQ(st.sample_runs, st.cache_misses);

  // An immediate repeat of the same plan is still a genuine hit: the
  // structural key matches, the collision guard only rejects impostors.
  auto a = service.Predict((*plans_)[0]);
  auto b = service.Predict((*plans_)[0]);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(service.stats().cache_hits, 1u);
  EXPECT_EQ(a->sample_run.get(), b->sample_run.get());
}

TEST_F(ServiceTest, BatchDedupRespectsStructuralKey) {
  // In-batch dedup must group on the structural key, not the bare 64-bit
  // hash: colliding plans in one batch get separate groups (and separate
  // sample runs) instead of silently sharing artifacts.
  ServiceOptions options;
  options.fingerprint_fn = [](const Plan&) -> uint64_t { return 7; };
  PredictionService service(db_, samples_, *units_, options);
  Predictor predictor(db_, samples_, *units_);

  std::vector<const Plan*> batch = {&(*plans_)[0], &(*plans_)[1],
                                    &(*plans_)[0], &(*plans_)[1]};
  const auto results = service.PredictBatch(batch);
  ASSERT_EQ(results.size(), batch.size());
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok());
    auto ref = predictor.Predict(*batch[i]);
    ASSERT_TRUE(ref.ok());
    EXPECT_EQ(results[i]->mean(), ref->mean())
        << "colliding in-batch plans shared another plan's artifacts";
    EXPECT_EQ(results[i]->breakdown.variance, ref->breakdown.variance);
  }
  // One sample run per structural group — the collision did not merge
  // them, and true duplicates still share.
  EXPECT_EQ(service.stats().sample_runs, 2u);
  EXPECT_EQ(results[0]->sample_run.get(), results[2]->sample_run.get());
  EXPECT_NE(results[0]->sample_run.get(), results[1]->sample_run.get());
}

TEST_F(ServiceTest, StructuralKeyDistinguishesPlans) {
  const std::string k0 = PlanStructuralKey((*plans_)[0]);
  const std::string k1 = PlanStructuralKey((*plans_)[1]);
  EXPECT_NE(k0, k1);
  EXPECT_EQ(k0, PlanStructuralKey((*plans_)[0]));
}

// ---------- Plan lifetime: fire-and-forget PredictAsync ----------

TEST_F(ServiceTest, AsyncCallerDropsPlanImmediately) {
  // The ownership contract: the caller may destroy its Plan the moment
  // PredictAsync returns — the service predicts from its own registry
  // clone. Under AddressSanitizer this test is what proves the old
  // capture-by-raw-pointer use-after-free is gone.
  PredictionService service(db_, samples_, *units_);
  Predictor reference(db_, samples_, *units_);
  auto ref = reference.Predict((*plans_)[0]);
  ASSERT_TRUE(ref.ok());

  std::future<StatusOr<Prediction>> future;
  {
    Plan doomed = (*plans_)[0].Clone();
    future = service.PredictAsync(doomed);
  }  // doomed destroyed before the worker may even have started

  auto pred_or = future.get();
  ASSERT_TRUE(pred_or.ok()) << pred_or.status().ToString();
  EXPECT_EQ(pred_or->mean(), ref->mean());
  EXPECT_EQ(pred_or->breakdown.variance, ref->breakdown.variance);
  // The registry holds clones only while requests are outstanding.
  EXPECT_EQ(service.plan_registry_size(), 0u);
  EXPECT_EQ(service.stats().plan_clones, 1u);
}

TEST_F(ServiceTest, AsyncStormWithDroppedPlansSharesOneCloneAndOneRun) {
  // A same-plan async storm where every caller plan dies right after
  // submission: the registry must intern ONE clone for all of them, the
  // in-flight table must collapse them to one stage-1 run, and every
  // future must still be satisfied bit-identically.
  ServiceOptions options;
  options.num_workers = 2;
  std::mutex mu;
  std::condition_variable cv;
  bool winner_parked = false;
  bool release = false;
  std::atomic<int> hook_calls{0};
  options.post_stages_hook = [&] {
    if (hook_calls.fetch_add(1) == 0) {
      std::unique_lock<std::mutex> lock(mu);
      winner_parked = true;
      cv.notify_all();
      cv.wait(lock, [&] { return release; });
    }
  };
  PredictionService service(db_, samples_, *units_, options);
  Predictor reference(db_, samples_, *units_);
  auto ref = reference.Predict((*plans_)[1]);
  ASSERT_TRUE(ref.ok());

  std::vector<std::future<StatusOr<Prediction>>> futures;
  {
    Plan doomed = (*plans_)[1].Clone();
    futures.push_back(service.PredictAsync(doomed));
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return winner_parked; });
  }
  constexpr int kLosers = 6;
  for (int i = 0; i < kLosers; ++i) {
    Plan doomed = (*plans_)[1].Clone();
    futures.push_back(service.PredictAsync(doomed));
  }  // every original destroyed while the winner is still gated
  // Wait until every loser has parked its continuation (none may block a
  // worker, so this drains quickly even with the winner gated).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (service.stats().inflight_joins < kLosers &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  ASSERT_EQ(service.stats().inflight_joins, static_cast<uint64_t>(kLosers));
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
    cv.notify_all();
  }
  for (auto& f : futures) {
    auto pred_or = f.get();
    ASSERT_TRUE(pred_or.ok()) << pred_or.status().ToString();
    EXPECT_EQ(pred_or->mean(), ref->mean());
    EXPECT_EQ(pred_or->breakdown.variance, ref->breakdown.variance);
  }
  const ServiceStats st = service.stats();
  EXPECT_EQ(st.plan_clones, 1u) << "duplicate asyncs must reuse the interned clone";
  EXPECT_EQ(st.sample_runs, 1u);
  EXPECT_EQ(service.plan_registry_size(), 0u)
      << "the registry must drain once every outstanding request completed";
}

TEST_F(ServiceTest, AsyncPlanDroppedWhileBatchOwnsTheInflightRun) {
  // Cross-path dedup with dropped plans: a PredictBatch shard wins the
  // in-flight slot and is gated mid-stages; async clones of the same plan
  // arrive, park continuations, and their caller plans are destroyed. The
  // batch (sync) winner must drain the async waiters on completion.
  ServiceOptions options;
  options.num_workers = 2;
  std::mutex mu;
  std::condition_variable cv;
  std::atomic<int> in_stages{0};
  bool release = false;
  options.post_stages_hook = [&] {
    std::unique_lock<std::mutex> lock(mu);
    ++in_stages;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  };
  PredictionService service(db_, samples_, *units_, options);

  std::vector<const Plan*> batch = {&(*plans_)[0], &(*plans_)[1]};
  std::vector<StatusOr<Prediction>> batch_results;
  std::thread batch_thread(
      [&] { batch_results = service.PredictBatch(batch); });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return in_stages.load() >= 2; });
  }
  std::vector<std::future<StatusOr<Prediction>>> futures;
  constexpr int kAsync = 4;
  for (int i = 0; i < kAsync; ++i) {
    Plan doomed = (*plans_)[0].Clone();
    futures.push_back(service.PredictAsync(doomed));
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (service.stats().inflight_joins < kAsync &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  ASSERT_EQ(service.stats().inflight_joins, static_cast<uint64_t>(kAsync));
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
    cv.notify_all();
  }
  batch_thread.join();
  ASSERT_EQ(batch_results.size(), 2u);
  for (const auto& r : batch_results) ASSERT_TRUE(r.ok());
  for (auto& f : futures) {
    auto pred_or = f.get();
    ASSERT_TRUE(pred_or.ok()) << pred_or.status().ToString();
    EXPECT_EQ(pred_or->mean(), batch_results[0]->mean());
  }
  EXPECT_EQ(service.stats().sample_runs, 2u);
  EXPECT_EQ(service.plan_registry_size(), 0u);
}

// ---------- Continuation handoff: losers never pin a worker ----------

TEST_F(ServiceTest, DedupLosersLeaveWorkersAvailable) {
  // With the winner gated mid-stages on one of TWO workers, N dedup losers
  // for the same plan must pass through the remaining worker (parking
  // continuations) instead of pinning it in future::get() — proven by
  // unrelated predictions completing while the winner is still gated.
  ServiceOptions options;
  options.num_workers = 2;
  std::mutex mu;
  std::condition_variable cv;
  bool winner_parked = false;
  bool release = false;
  std::atomic<int> hook_calls{0};
  options.post_stages_hook = [&] {
    if (hook_calls.fetch_add(1) == 0) {
      std::unique_lock<std::mutex> lock(mu);
      winner_parked = true;
      cv.notify_all();
      cv.wait(lock, [&] { return release; });
    }
  };
  PredictionService service(db_, samples_, *units_, options);

  auto winner = service.PredictAsync((*plans_)[0]);
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return winner_parked; });
  }
  constexpr int kLosers = 5;
  std::vector<std::future<StatusOr<Prediction>>> losers;
  for (int i = 0; i < kLosers; ++i) {
    losers.push_back(service.PredictAsync((*plans_)[0]));
  }

  // Unrelated work must make progress on the remaining worker while the
  // winner is gated. If any loser blocked that worker, these futures
  // would never complete and the waits below would time out.
  for (size_t i = 1; i < 4 && i < plans_->size(); ++i) {
    auto f = service.PredictAsync((*plans_)[i]);
    ASSERT_EQ(f.wait_for(std::chrono::seconds(60)),
              std::future_status::ready)
        << "a dedup loser starved the pool";
    ASSERT_TRUE(f.get().ok());
  }
  // The losers themselves are parked, not finished: their artifacts only
  // exist once the winner completes.
  for (auto& f : losers) {
    EXPECT_NE(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  }

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
    cv.notify_all();
  }
  ASSERT_TRUE(winner.get().ok());
  for (auto& f : losers) ASSERT_TRUE(f.get().ok());
  const ServiceStats st = service.stats();
  EXPECT_EQ(st.inflight_joins, static_cast<uint64_t>(kLosers));
  EXPECT_EQ(st.sample_runs, 4u);  // winner + the 3 unrelated plans
}

// ---------- Worker pool fairness ----------

TEST_F(ServiceTest, PoolServesRequestsInFifoOrder) {
  // One worker, four distinct queued plans, stage work gated by a permit
  // semaphore: releasing one permit at a time must complete the OLDEST
  // outstanding request next. (The old LIFO pop served the newest first,
  // starving the oldest under sustained load.)
  ServiceOptions options;
  options.num_workers = 1;
  std::mutex mu;
  std::condition_variable cv;
  int permits = 0;
  options.post_stages_hook = [&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return permits > 0; });
    --permits;
  };
  PredictionService service(db_, samples_, *units_, options);

  const size_t n = std::min<size_t>(4, plans_->size());
  std::vector<std::future<StatusOr<Prediction>>> futures;
  for (size_t i = 0; i < n; ++i) {
    futures.push_back(service.PredictAsync((*plans_)[i]));
  }
  for (size_t expect = 0; expect < n; ++expect) {
    {
      std::lock_guard<std::mutex> lock(mu);
      ++permits;
      cv.notify_all();
    }
    ASSERT_EQ(futures[expect].wait_for(std::chrono::seconds(60)),
              std::future_status::ready)
        << "request " << expect << " was starved";
    for (size_t later = expect + 1; later < n; ++later) {
      EXPECT_NE(futures[later].wait_for(std::chrono::seconds(0)),
                std::future_status::ready)
          << "request " << later << " served before older request " << expect;
    }
    ASSERT_TRUE(futures[expect].get().ok());
  }
}

// ---------- Shutdown vs PredictAsync ----------

TEST_F(ServiceTest, ShutdownRejectsNewAsyncInsteadOfLosingIt) {
  ServiceOptions options;
  options.num_workers = 2;
  PredictionService service(db_, samples_, *units_, options);
  auto before = service.PredictAsync((*plans_)[0]);
  ASSERT_TRUE(before.get().ok());

  service.Shutdown();
  // An enqueue after shutdown must not hand back a future nobody will
  // ever satisfy: it fails fast, already ready, with Unavailable.
  auto after = service.PredictAsync((*plans_)[1]);
  ASSERT_EQ(after.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  auto result = after.get();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(service.stats().async_rejects, 1u);
  EXPECT_EQ(service.plan_registry_size(), 0u);

  // A plan whose artifacts are already cached needs no pool: it is still
  // served inline, already ready, on the submitting thread.
  auto cached_after = service.PredictAsync((*plans_)[0]);
  ASSERT_EQ(cached_after.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  ASSERT_TRUE(cached_after.get().ok());
  EXPECT_EQ(service.stats().async_rejects, 1u);

  // The synchronous paths keep working inline after shutdown.
  ASSERT_TRUE(service.Predict((*plans_)[1]).ok());
  const auto batch = service.PredictBatch(*plans_);
  for (const auto& r : batch) EXPECT_TRUE(r.ok());

  service.Shutdown();  // idempotent
}

TEST_F(ServiceTest, ShutdownRacingAsyncLeavesNoUnsatisfiedFuture) {
  // Hammer the enqueue/shutdown race: every future handed out must become
  // ready — either with a prediction (enqueued before the flag) or with
  // Unavailable (rejected after it). None may hang.
  for (int round = 0; round < 8; ++round) {
    ServiceOptions options;
    options.num_workers = 2;
    auto service =
        std::make_unique<PredictionService>(db_, samples_, *units_, options);
    std::vector<std::future<StatusOr<Prediction>>> futures;
    std::mutex futures_mu;
    std::atomic<bool> go{false};
    std::thread submitter([&] {
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < 8; ++i) {
        auto f = service->PredictAsync((*plans_)[i % plans_->size()]);
        std::lock_guard<std::mutex> lock(futures_mu);
        futures.push_back(std::move(f));
      }
    });
    go.store(true);
    if (round % 2 == 0) std::this_thread::yield();
    service->Shutdown();
    submitter.join();
    for (auto& f : futures) {
      ASSERT_EQ(f.wait_for(std::chrono::seconds(60)),
                std::future_status::ready)
          << "a future was left unsatisfied by the shutdown race";
      auto r = f.get();
      if (!r.ok()) EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
    }
    EXPECT_EQ(service->plan_registry_size(), 0u);
  }
}

// Regression pin for the one remaining blocking join path: a PredictBatch
// shard whose plan is already being sampled by ANOTHER request joins that
// run by blocking in future::get() (unlike async losers, which park
// continuations and free their worker). Pinned here — batch completion
// gated on the winner, counted as an in-flight join, results
// bit-identical — so a future continuation rework of the batch path has
// the current contract to preserve.
TEST_F(ServiceTest, BatchShardJoiningInflightRunBlocksUntilWinnerFinishes) {
  ServiceOptions options;
  options.num_workers = 2;
  std::mutex mu;
  std::condition_variable cv;
  bool winner_gated = false;
  bool release = false;
  std::atomic<int> hook_calls{0};
  options.post_stages_hook = [&] {
    // Gate only the async winner's run (the first to finish stages); the
    // batch's other shard (a distinct plan) must complete unhindered.
    if (hook_calls.fetch_add(1) == 0) {
      std::unique_lock<std::mutex> lock(mu);
      winner_gated = true;
      cv.notify_all();
      cv.wait(lock, [&] { return release; });
    }
  };
  PredictionService service(db_, samples_, *units_, options);

  auto winner = service.PredictAsync((*plans_)[0]);
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return winner_gated; });
  }

  std::atomic<bool> batch_done{false};
  std::vector<StatusOr<Prediction>> results;
  std::thread batcher([&] {
    const std::vector<const Plan*> batch = {&(*plans_)[0], &(*plans_)[1]};
    results = service.PredictBatch(batch);
    batch_done.store(true);
  });

  // The shard for plans_[0] joined the gated winner's in-flight run, so
  // the batch cannot complete while the gate is closed — this is the
  // pinned blocking behavior.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(batch_done.load())
      << "batch finished while its in-flight dependency was still gated";

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
    cv.notify_all();
  }
  batcher.join();
  auto winner_result = winner.get();
  ASSERT_TRUE(winner_result.ok());

  ASSERT_EQ(results.size(), 2u);
  ASSERT_TRUE(results[0].ok()) << results[0].status().ToString();
  ASSERT_TRUE(results[1].ok()) << results[1].status().ToString();
  // The joiner serves the winner's artifacts: bit-identical prediction
  // and pointer-identical sample run.
  EXPECT_EQ(results[0]->mean(), winner_result->mean());
  EXPECT_EQ(results[0]->breakdown.variance, winner_result->breakdown.variance);
  EXPECT_EQ(results[0]->sample_run.get(), winner_result->sample_run.get());

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.sample_runs, 2u) << "joiner must not re-run stage 1";
  EXPECT_GE(stats.inflight_joins, 1u);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.predictions);
}

// ---------------------------------------------------------------------------
// Sharded lock-free read path (PR 6): hot hits bypass every service mutex
// via the published-slot probe, shard counts are configurable, and the
// striped stats keep the hits+misses==predictions invariant un-tearable.
// ---------------------------------------------------------------------------

TEST_F(ServiceTest, LockFreeHitsServeHotCache) {
  ServiceOptions options;  // lock_free_hits defaults to true
  options.num_workers = 1;
  PredictionService service(db_, samples_, *units_, options);
  const Plan& plan = (*plans_)[0];

  auto first = service.Predict(plan);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = service.Predict(plan);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  // The repeat was served by the mutex-free published-slot probe and
  // aliases the cached artifacts (zero-copy).
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.lockfree_hits, 1u);
  EXPECT_EQ(first->sample_run.get(), second->sample_run.get());
  EXPECT_EQ(second->mean(), first->mean());
  EXPECT_EQ(second->breakdown.variance, first->breakdown.variance);

  // PredictAsync resolves a hot hit inline on the submitting thread —
  // already ready, through the same lock-free probe.
  auto async_hit = service.PredictAsync(plan);
  ASSERT_EQ(async_hit.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  ASSERT_TRUE(async_hit.get().ok());
  stats = service.stats();
  EXPECT_EQ(stats.lockfree_hits, 2u);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.predictions);
}

TEST_F(ServiceTest, SingleMutexModeDisablesLockFreeProbe) {
  // The bench baseline configuration: one shard, no published-slot reads.
  // Hits still work — through the shard mutex — and classify identically.
  ServiceOptions options;
  options.num_workers = 1;
  options.cache_shards = 1;
  options.lock_free_hits = false;
  PredictionService service(db_, samples_, *units_, options);
  EXPECT_EQ(service.num_shards(), 1);
  const Plan& plan = (*plans_)[0];
  ASSERT_TRUE(service.Predict(plan).ok());
  ASSERT_TRUE(service.Predict(plan).ok());
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.lockfree_hits, 0u);
  EXPECT_EQ(stats.cache_misses, 1u);
}

TEST_F(ServiceTest, ShardCountRoundsUpToPowerOfTwo) {
  ServiceOptions options;
  options.num_workers = 1;
  options.cache_shards = 5;
  PredictionService service(db_, samples_, *units_, options);
  EXPECT_EQ(service.num_shards(), 8);
  // Behavior is shard-count independent: every plan predicts correctly
  // and classification stays exact.
  for (const Plan& plan : *plans_) ASSERT_TRUE(service.Predict(plan).ok());
  for (const Plan& plan : *plans_) ASSERT_TRUE(service.Predict(plan).ok());
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cache_misses, plans_->size());
  EXPECT_EQ(stats.cache_hits, plans_->size());
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.predictions);
}

TEST_F(ServiceTest, DrainOnShutdownServesLatecomersInline) {
  Predictor reference(db_, samples_, *units_);
  auto ref = reference.Predict((*plans_)[1]);
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();

  ServiceOptions options;
  options.num_workers = 2;
  options.drain_on_shutdown = true;
  PredictionService service(db_, samples_, *units_, options);
  ASSERT_TRUE(service.PredictAsync((*plans_)[0]).get().ok());
  service.Shutdown();

  // A cold latecomer is predicted inline on this thread: already ready,
  // correct and bit-identical — never Unavailable.
  auto after = service.PredictAsync((*plans_)[1]);
  ASSERT_EQ(after.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  auto result = after.get();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->mean(), ref->mean());
  EXPECT_EQ(result->breakdown.variance, ref->breakdown.variance);
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.drained_inline, 1u);
  EXPECT_EQ(stats.async_rejects, 0u);
  EXPECT_EQ(service.plan_registry_size(), 0u);

  // Its artifacts were cached by the inline run, so the repeat is a plain
  // hot hit — served inline but NOT counted as drained.
  auto hot = service.PredictAsync((*plans_)[1]);
  ASSERT_EQ(hot.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  ASSERT_TRUE(hot.get().ok());
  EXPECT_EQ(service.stats().drained_inline, 1u);
}

TEST_F(ServiceTest, DrainOnShutdownRacesInflightWinner) {
  // The drain/winner race: Shutdown() is initiated while a winner is
  // mid-stages. Latecomers for the winner's plan park on its in-flight
  // run (and are drained by the winner); cold latecomers that observe the
  // shutdown flag run inline. No future is ever lost or Unavailable.
  ServiceOptions options;
  options.num_workers = 1;
  options.drain_on_shutdown = true;
  std::mutex mu;
  std::condition_variable cv;
  bool winner_gated = false;
  bool release = false;
  std::atomic<int> hook_calls{0};
  options.post_stages_hook = [&] {
    // Gate only the first run (the async winner); inline drained runs on
    // the main thread must pass through unhindered.
    if (hook_calls.fetch_add(1) == 0) {
      std::unique_lock<std::mutex> lock(mu);
      winner_gated = true;
      cv.notify_all();
      cv.wait(lock, [&] { return release; });
    }
  };
  PredictionService service(db_, samples_, *units_, options);

  auto winner = service.PredictAsync((*plans_)[0]);
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return winner_gated; });
  }

  // Shutdown sets the reject/drain flag immediately, then blocks joining
  // the worker that is parked in the gate above.
  std::thread closer([&] { service.Shutdown(); });

  // Submit cold-plan latecomers until one observes the flag and drains
  // inline. (A submission racing ahead of the flag is enqueued behind the
  // gated winner and completes after release — also fine.)
  std::vector<std::future<StatusOr<Prediction>>> latecomers;
  while (service.stats().drained_inline == 0) {
    latecomers.push_back(service.PredictAsync((*plans_)[1]));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // A latecomer for the WINNER'S plan parks on the still-gated in-flight
  // run at submit time; the winner drains it on release.
  auto parked = service.PredictAsync((*plans_)[0]);
  EXPECT_EQ(parked.wait_for(std::chrono::seconds(0)),
            std::future_status::timeout)
      << "latecomer should be parked on the gated winner, not resolved";

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
    cv.notify_all();
  }
  closer.join();

  auto winner_result = winner.get();
  ASSERT_TRUE(winner_result.ok()) << winner_result.status().ToString();
  auto parked_result = parked.get();
  ASSERT_TRUE(parked_result.ok()) << parked_result.status().ToString();
  EXPECT_EQ(parked_result->mean(), winner_result->mean());
  EXPECT_EQ(parked_result->sample_run.get(), winner_result->sample_run.get());
  for (auto& f : latecomers) {
    auto r = f.get();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  const ServiceStats stats = service.stats();
  EXPECT_GE(stats.drained_inline, 1u);
  EXPECT_EQ(stats.async_rejects, 0u);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.predictions);
  EXPECT_EQ(service.plan_registry_size(), 0u);
}

TEST_F(ServiceTest, StripedStatsInvariantNeverTearsUnderMixedStorm) {
  // A poller thread hammers stats() while a mixed hot/cold async storm —
  // with concurrent InvalidateCache flushes forcing re-misses — runs
  // against a deliberately tiny cache. The striped counters must never
  // expose a snapshot where hits + misses != predictions, and predictions
  // must be monotone across polls.
  Predictor reference(db_, samples_, *units_);
  std::vector<Prediction> expected;
  for (const Plan& plan : *plans_) {
    auto ref = reference.Predict(plan);
    ASSERT_TRUE(ref.ok()) << ref.status().ToString();
    expected.push_back(std::move(ref).value());
  }

  ServiceOptions options;
  options.num_workers = 3;
  options.cache_capacity = 2;  // smaller than the plan pool: sustained churn
  PredictionService service(db_, samples_, *units_, options);
  // Warm a hot pair so the storm mixes lock-free hits with cold misses.
  ASSERT_TRUE(service.Predict((*plans_)[0]).ok());
  ASSERT_TRUE(service.Predict((*plans_)[1]).ok());

  std::atomic<bool> stop{false};
  std::atomic<bool> torn{false};
  std::atomic<uint64_t> polls{0};
  std::thread poller([&] {
    uint64_t last = 0;
    while (!stop.load()) {
      const ServiceStats s = service.stats();
      if (s.cache_hits + s.cache_misses != s.predictions) torn.store(true);
      if (s.predictions < last) torn.store(true);
      last = s.predictions;
      polls.fetch_add(1);
    }
  });

  const int kThreads = 3;
  const int kRounds = 24;
  std::vector<std::thread> submitters;
  std::vector<std::vector<std::pair<size_t, std::future<StatusOr<Prediction>>>>>
      futures(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int r = 0; r < kRounds; ++r) {
        const size_t idx = static_cast<size_t>(t + r) % plans_->size();
        futures[t].emplace_back(idx, service.PredictAsync((*plans_)[idx]));
        if (r % 8 == 7) service.InvalidateCache();
      }
    });
  }
  for (auto& t : submitters) t.join();
  // Resolve under the poller's nose, then stop it.
  for (auto& per_thread : futures) {
    for (auto& [idx, f] : per_thread) {
      auto got = f.get();
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(got->mean(), expected[idx].mean());
      EXPECT_EQ(got->breakdown.variance, expected[idx].breakdown.variance);
    }
  }
  stop.store(true);
  poller.join();

  EXPECT_FALSE(torn.load())
      << "a stats() snapshot tore the hits+misses==predictions invariant";
  EXPECT_GT(polls.load(), 0u);
  const ServiceStats stats = service.stats();
  // Every request classified exactly once: the storm plus the two warmers.
  EXPECT_EQ(stats.predictions,
            static_cast<uint64_t>(kThreads) * kRounds + 2);
  EXPECT_GT(stats.cache_hits, 0u);
  EXPECT_GT(stats.cache_misses, 0u);
}

// ---------------------------------------------------------------------------
// Versioned calibration epochs + online feedback loop (PR 7): calibration
// swaps keep every stage-1/2 artifact and re-combine lazily; 2-way slot
// groups keep colliding hot plans lock-free; converged feedback families
// stop paying tracking overhead; drift triggers recalibration.
// ---------------------------------------------------------------------------

CostUnits ScaleUnitMeans(const CostUnits& units, double factor) {
  CostUnits scaled = units;
  for (int u = 0; u < kNumCostUnits; ++u) scaled.units[u].mean *= factor;
  return scaled;
}

TEST_F(ServiceTest, CalibrationSwapRecombinesLazilyWithoutTouchingStage12) {
  ServiceOptions options;
  options.num_workers = 1;
  PredictionService service(db_, samples_, *units_, options);
  const Plan& plan = (*plans_)[0];
  EXPECT_EQ(service.calibration_epoch(), 1u);
  EXPECT_EQ(service.calibration()->source, "offline");

  auto cold = service.Predict(plan);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  auto warm = service.Predict(plan);  // publishes the epoch memo
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->calibration_epoch(), 1u);
  const uint64_t combines_warm = service.pipeline().combine_count();
  auto memoed = service.Predict(plan);
  ASSERT_TRUE(memoed.ok());
  EXPECT_EQ(service.pipeline().combine_count(), combines_warm)
      << "an epoch-matched memo must serve with zero combination work";
  EXPECT_EQ(memoed->mean(), warm->mean());

  // Swap calibration (2x unit means). The cache must survive untouched:
  // only each entry's stage-3 memo goes stale.
  const uint64_t epoch =
      service.PublishCalibration(ScaleUnitMeans(*units_, 2.0), "test");
  EXPECT_EQ(epoch, 2u);
  EXPECT_EQ(service.calibration_epoch(), 2u);
  EXPECT_EQ(service.calibration()->source, "test");
  EXPECT_EQ(service.cache_size(), 1u)
      << "a calibration swap must not flush the cache";
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.recombines, 0u);

  auto post = service.Predict(plan);
  ASSERT_TRUE(post.ok());
  stats = service.stats();
  EXPECT_EQ(stats.sample_runs, 1u) << "stage 1 must survive the swap";
  EXPECT_EQ(stats.fit_runs, 1u) << "stage 2 must survive the swap";
  EXPECT_EQ(stats.recombines, 1u)
      << "the stale memo re-combines exactly once";
  EXPECT_EQ(post->calibration_epoch(), 2u);
  // The epoch-aware invalidation contract, in pointers: the expensive
  // artifacts served after the swap ARE the pre-swap objects.
  EXPECT_EQ(post->sample_run.get(), cold->sample_run.get());
  EXPECT_EQ(post->cost_fit.get(), cold->cost_fit.get());
  EXPECT_GT(post->mean(), warm->mean())
      << "doubled unit means must raise the predicted mean";

  // The re-combined breakdown is memoized under the new epoch.
  const uint64_t combines_post = service.pipeline().combine_count();
  auto post2 = service.Predict(plan);
  ASSERT_TRUE(post2.ok());
  EXPECT_EQ(service.pipeline().combine_count(), combines_post);
  EXPECT_EQ(service.stats().recombines, 1u);
  EXPECT_EQ(post2->mean(), post->mean());
  EXPECT_EQ(post2->breakdown.variance, post->breakdown.variance);

  // Pre-swap predictions recompute under their own pinned snapshot:
  // referentially transparent across the swap.
  const VarianceBreakdown re = service.Recompute(
      *warm, service.options().predictor.variant,
      service.options().predictor.bound);
  EXPECT_EQ(re.mean, warm->breakdown.mean);
  EXPECT_EQ(re.variance, warm->breakdown.variance);
}

uint64_t SameSlotFingerprint(const Plan& plan) {
  // Distinct per plan structure, but identical low bits: with one shard
  // every plan maps to slot index 0 — the worst-case slot collision.
  return plan.Identity()->fingerprint << 18;
}

TEST_F(ServiceTest, TwoWaySlotsKeepCollidingHotPlansLockFree) {
  ServiceOptions options;
  options.num_workers = 1;
  options.cache_shards = 1;
  options.fingerprint_fn = SameSlotFingerprint;
  PredictionService service(db_, samples_, *units_, options);
  const Plan& a = (*plans_)[0];
  const Plan& b = (*plans_)[1];
  ASSERT_TRUE(service.Predict(a).ok());
  ASSERT_TRUE(service.Predict(b).ok());
  ASSERT_EQ(service.stats().cache_misses, 2u);

  const uint64_t kRounds = 8;
  for (uint64_t r = 0; r < kRounds; ++r) {
    ASSERT_TRUE(service.Predict(a).ok());
    ASSERT_TRUE(service.Predict(b).ok());
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cache_hits, 2 * kRounds);
  // With a single way the two plans would displace each other from the
  // slot on every publish and alternate through the locked path; the
  // tagged 2-way group keeps BOTH on the lock-free path.
  EXPECT_EQ(stats.lockfree_hits, 2 * kRounds)
      << "two hot plans sharing a slot group must both stay lock-free";
  EXPECT_EQ(stats.sample_runs, 2u);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.predictions);
}

TEST_F(ServiceTest, ConvergedFamilyStopsPayingTrackingOverhead) {
  ServiceOptions options;
  options.num_workers = 1;
  options.feedback.enabled = true;
  options.feedback.window_size = 4;
  options.feedback.converge_threshold = 0.10;
  options.feedback.drift_threshold = 0.60;
  options.feedback.probe_interval = 0;  // never probe: isolate the freeze
  PredictionService service(db_, samples_, *units_, options);
  const Plan& plan = (*plans_)[0];
  auto pred = service.Predict(plan);
  ASSERT_TRUE(pred.ok());
  const double observed = pred->mean();  // perfect predictions: error 0

  for (int i = 0; i < 4; ++i) service.ReportObserved(plan, observed);
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.feedback_reports, 4u);
  EXPECT_EQ(stats.converged_families, 1u);
  auto families = service.FeedbackSnapshot();
  ASSERT_EQ(families.size(), 1u);
  EXPECT_TRUE(families[0].converged);
  EXPECT_EQ(families[0].window_updates, 4u);
  EXPECT_EQ(families[0].reports, 4u);

  // Converged: further reports stop updating the window — and stop
  // computing the error at all (the AQO-style overhead cut). Even wildly
  // wrong observations change nothing without a probe.
  const uint64_t combines = service.pipeline().combine_count();
  for (int i = 0; i < 6; ++i) service.ReportObserved(plan, observed * 100.0);
  families = service.FeedbackSnapshot();
  ASSERT_EQ(families.size(), 1u);
  EXPECT_TRUE(families[0].converged);
  EXPECT_EQ(families[0].window_updates, 4u) << "converged windows must freeze";
  EXPECT_EQ(families[0].reports, 10u);
  EXPECT_EQ(service.pipeline().combine_count(), combines)
      << "converged families must not even compute the error";
  EXPECT_EQ(service.stats().recalibrations, 0u);
  EXPECT_EQ(service.calibration_epoch(), 1u);

  // Reports for a plan that was never predicted have no cached prediction
  // to compare against: dropped, never fabricated.
  service.ReportObserved((*plans_)[2], 5.0);
  stats = service.stats();
  EXPECT_EQ(stats.feedback_dropped, 1u);
  EXPECT_EQ(stats.feedback_families, 2u);
  EXPECT_EQ(stats.converged_families, 1u);
}

TEST_F(ServiceTest, EvictedPlanReportsLandViaLastPredictionStash) {
  ServiceOptions options;
  options.num_workers = 1;
  options.feedback.enabled = true;
  options.feedback.window_size = 16;       // stay un-converged throughout
  options.feedback.converge_threshold = 0.0;
  options.feedback.drift_threshold = 1e9;  // never drift: isolate the stash
  PredictionService service(db_, samples_, *units_, options);
  const Plan& plan = (*plans_)[0];
  auto pred = service.Predict(plan);
  ASSERT_TRUE(pred.ok());
  const double observed = pred->mean() * 1.25;

  // Cache-backed report: computes the error against the cached prediction
  // and stashes that prediction as the family's fallback comparison point.
  service.ReportObserved(plan, observed);
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.feedback_reports, 1u);
  EXPECT_EQ(stats.feedback_dropped, 0u);
  EXPECT_EQ(stats.feedback_stash_hits, 0u);
  auto families = service.FeedbackSnapshot();
  ASSERT_EQ(families.size(), 1u);
  EXPECT_TRUE(families[0].stash.valid);
  EXPECT_DOUBLE_EQ(families[0].stash.mean_ms, pred->mean());
  EXPECT_EQ(families[0].stash.epoch, 1u);

  // Evict everything. Before the stash, a report on an evicted plan had no
  // prediction to compare against and bumped feedback_dropped; now the
  // stashed mean keeps the error series alive across the eviction.
  service.InvalidateCache();
  service.ReportObserved(plan, observed);
  service.ReportObserved(plan, observed);
  stats = service.stats();
  EXPECT_EQ(stats.feedback_reports, 3u);
  EXPECT_EQ(stats.feedback_dropped, 0u)
      << "evicted-but-stashed reports must not drop";
  EXPECT_EQ(stats.feedback_stash_hits, 2u);
  families = service.FeedbackSnapshot();
  ASSERT_EQ(families.size(), 1u);
  EXPECT_EQ(families[0].window_updates, 3u)
      << "the error window must keep filling from the stash";

  // Re-predicting refreshes the family through the cache path again — no
  // further stash hits once the entry is back.
  ASSERT_TRUE(service.Predict(plan).ok());
  service.ReportObserved(plan, observed);
  stats = service.stats();
  EXPECT_EQ(stats.feedback_stash_hits, 2u);
  EXPECT_EQ(stats.feedback_dropped, 0u);

  // A family that was NEVER predicted has nothing stashed: still drops —
  // the stash must not fabricate a comparison point.
  service.ReportObserved((*plans_)[2], 5.0);
  stats = service.stats();
  EXPECT_EQ(stats.feedback_dropped, 1u);
}

TEST_F(ServiceTest, DriftTriggersRecalibrationAndErrorRecovery) {
  ServiceOptions options;
  options.num_workers = 1;
  options.feedback.enabled = true;
  options.feedback.window_size = 3;
  options.feedback.converge_threshold = 0.05;
  options.feedback.drift_threshold = 0.40;
  options.feedback.cooldown_reports = 0;
  const CostUnits drifted_truth = ScaleUnitMeans(*units_, 2.0);
  int recal_calls = 0;
  options.feedback.recalibrate = [&recal_calls, &drifted_truth]() {
    ++recal_calls;
    return drifted_truth;
  };
  PredictionService service(db_, samples_, *units_, options);
  const Plan& plan = (*plans_)[0];
  auto before = service.Predict(plan);
  ASSERT_TRUE(before.ok());

  // The machine drifted 2x: observations land at twice the prediction
  // (relative error 0.5 >= drift_threshold once the window fills).
  const double observed = before->mean() * 2.0;
  for (int i = 0; i < 3; ++i) service.ReportObserved(plan, observed);

  ServiceStats stats = service.stats();
  EXPECT_EQ(recal_calls, 1);
  EXPECT_EQ(stats.recalibrations, 1u);
  EXPECT_EQ(service.calibration_epoch(), 2u);
  EXPECT_EQ(service.calibration()->source, "drift");
  EXPECT_EQ(stats.sample_runs, 1u)
      << "recalibration must not flush stage-1 artifacts";

  auto after = service.Predict(plan);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->calibration_epoch(), 2u);
  EXPECT_EQ(after->sample_run.get(), before->sample_run.get());
  EXPECT_EQ(service.stats().recombines, 1u);
  // Recalibrated predictions match the drifted world: the windowed error
  // collapses from 0.5 to ~0.
  const double err_before = std::abs(observed - before->mean()) / observed;
  const double err_after = std::abs(observed - after->mean()) / observed;
  EXPECT_LT(err_after * 2.0, err_before);

  // The drifting family's window was reset on publish: its errors were
  // measured against the old epoch's predictions.
  auto families = service.FeedbackSnapshot();
  ASSERT_EQ(families.size(), 1u);
  EXPECT_TRUE(families[0].window.empty());
  EXPECT_FALSE(families[0].converged);
  EXPECT_EQ(families[0].reports, 3u);
}

// ---------------------------------------------------------------------------
// Fault injection, deadlines, graceful degradation and the circuit breaker
// (PR 10): an injected stage failure propagates ONE status to every dedup
// joiner and is never negatively cached; every batch slot resolves
// terminally; deadlines bound work (not delivery) without poisoning the
// cache or the in-flight table; cost-only degraded fallbacks follow the
// documented formula; a poisoned family quarantines and probes.
// ---------------------------------------------------------------------------

void ExpectOutcomeConservation(const ServiceStats& st) {
  EXPECT_EQ(st.ok_served + st.failed + st.degraded_served +
                st.deadline_exceeded,
            st.predictions)
      << "the outcome split must partition predictions exactly";
  EXPECT_EQ(st.cache_hits + st.cache_misses, st.predictions);
}

TEST_F(ServiceTest, InjectedFailureDeliversOneStatusToEveryJoiner) {
  // The dedup error-propagation contract: a failed winner delivers the
  // SAME status to the blocking sync joiner, the parked batch shard and
  // the parked async loser — and the failure is not negatively cached.
  const uint64_t fp = PlanFingerprint((*plans_)[0]);
  ScheduledFaultOptions fopts;
  FaultRule rule;
  rule.fail_attempts = 1;  // attempt 0 fails, attempt 1 recovers
  fopts.rules[fp] = rule;
  ScheduledFaultInjector injector(fopts);

  ServiceOptions options;
  options.num_workers = 2;
  options.fault_injector = &injector;
  std::mutex mu;
  std::condition_variable cv;
  bool gated = false;
  bool release = false;
  std::atomic<int> hook_calls{0};
  options.post_stages_hook = [&] {
    // Gate only the first run — the failed winner — so the joiners can
    // pile onto its in-flight record while the verdict is pending.
    if (hook_calls.fetch_add(1) == 0) {
      std::unique_lock<std::mutex> lock(mu);
      gated = true;
      cv.notify_all();
      cv.wait(lock, [&] { return release; });
    }
  };
  PredictionService service(db_, samples_, *units_, options);

  auto winner = service.PredictAsync((*plans_)[0]);
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return gated; });
  }
  auto parked = service.PredictAsync((*plans_)[0]);  // parks a continuation
  std::vector<StatusOr<Prediction>> sync_results;
  std::thread sync_joiner(
      [&] { sync_results.push_back(service.Predict((*plans_)[0])); });
  std::vector<StatusOr<Prediction>> batch_results;
  std::thread batcher([&] {
    const std::vector<const Plan*> batch = {&(*plans_)[0], &(*plans_)[1]};
    batch_results = service.PredictBatch(batch);
  });
  // Parked async + blocking sync + parked batch shard, all on the gated
  // winner, counted the moment they joined.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (service.stats().inflight_joins < 3 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  ASSERT_EQ(service.stats().inflight_joins, 3u);
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
    cv.notify_all();
  }
  sync_joiner.join();
  batcher.join();

  auto winner_result = winner.get();
  ASSERT_FALSE(winner_result.ok());
  EXPECT_EQ(winner_result.status().code(), StatusCode::kUnavailable);
  // Every joiner got the winner's exact status — never a placeholder.
  auto parked_result = parked.get();
  ASSERT_FALSE(parked_result.ok());
  EXPECT_EQ(parked_result.status().ToString(),
            winner_result.status().ToString());
  ASSERT_EQ(sync_results.size(), 1u);
  ASSERT_FALSE(sync_results[0].ok());
  EXPECT_EQ(sync_results[0].status().ToString(),
            winner_result.status().ToString());
  ASSERT_EQ(batch_results.size(), 2u);
  ASSERT_FALSE(batch_results[0].ok());
  EXPECT_EQ(batch_results[0].status().ToString(),
            winner_result.status().ToString());
  ASSERT_TRUE(batch_results[1].ok()) << batch_results[1].status().ToString();

  // Not negatively cached: the fingerprint retries from scratch and the
  // recovered attempt populates the cache normally.
  ServiceStats st = service.stats();
  EXPECT_EQ(st.faults_injected, 1u);
  EXPECT_EQ(st.sample_runs, 1u) << "only the batch's healthy plan sampled";
  auto retry = service.Predict((*plans_)[0]);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_FALSE(retry->degraded);
  st = service.stats();
  EXPECT_EQ(st.sample_runs, 2u) << "the retry re-ran stage 1";
  EXPECT_EQ(injector.AttemptCount(fp), 2u);
  EXPECT_EQ(st.failed, 4u);  // winner + 3 joiners
  EXPECT_EQ(st.ok_served, 2u);
  ExpectOutcomeConservation(st);
}

TEST_F(ServiceTest, BatchMidFaultResolvesEverySlotTerminally) {
  // A mid-batch injected fault must leave every slot with its own
  // terminal status: the failing group's slots carry the injected error,
  // healthy groups succeed, and no internal placeholder ever escapes.
  const uint64_t fp1 = PlanFingerprint((*plans_)[1]);
  ScheduledFaultOptions fopts;
  FaultRule rule;
  rule.fail_attempts = 1;
  fopts.rules[fp1] = rule;
  ScheduledFaultInjector injector(fopts);
  ServiceOptions options;
  options.num_workers = 2;
  options.fault_injector = &injector;
  PredictionService service(db_, samples_, *units_, options);

  const std::vector<const Plan*> batch = {&(*plans_)[0], &(*plans_)[1],
                                          &(*plans_)[1], &(*plans_)[2]};
  const auto results = service.PredictBatch(batch);
  ASSERT_EQ(results.size(), batch.size());
  for (size_t i = 0; i < results.size(); ++i) {
    const Status s = results[i].ok() ? Status::OK() : results[i].status();
    EXPECT_EQ(s.message().find("batch slot never resolved"), std::string::npos)
        << "slot " << i << " leaked the internal sentinel";
    EXPECT_EQ(s.message().find("prediction not yet computed"),
              std::string::npos)
        << "slot " << i << " leaked the old placeholder";
  }
  ASSERT_TRUE(results[0].ok());
  ASSERT_TRUE(results[3].ok());
  ASSERT_FALSE(results[1].ok());
  ASSERT_FALSE(results[2].ok());
  EXPECT_EQ(results[1].status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(results[1].status().ToString(), results[2].status().ToString())
      << "both duplicate slots must carry their group's one status";

  // The failure is not negatively cached: the same batch retried succeeds
  // everywhere (attempt 1 recovers), re-running stage 1 only for the
  // previously failed group.
  const auto again = service.PredictBatch(batch);
  for (const auto& r : again) ASSERT_TRUE(r.ok()) << r.status().ToString();
  const ServiceStats st = service.stats();
  EXPECT_EQ(st.sample_runs, 3u);
  EXPECT_EQ(st.faults_injected, 1u);
  EXPECT_EQ(st.failed, 2u);
  ExpectOutcomeConservation(st);
}

TEST_F(ServiceTest, DeadlineExpiresWithoutPoisoningCacheOrInflight) {
  // An injected 50ms stall against a 5ms deadline: the request resolves
  // DeadlineExceeded, consumes no sample run, and leaves the in-flight
  // table and cache clean for the next (undeadlined) request.
  const uint64_t fp = PlanFingerprint((*plans_)[0]);
  ScheduledFaultOptions fopts;
  FaultRule rule;
  rule.latency_prob = 1.0;
  rule.latency_ms = 50.0;
  fopts.rules[fp] = rule;
  ScheduledFaultInjector injector(fopts);
  ServiceOptions options;
  options.num_workers = 1;
  options.fault_injector = &injector;
  PredictionService service(db_, samples_, *units_, options);

  RequestOptions tight;
  tight.deadline_ms = 5.0;
  auto expired = service.Predict((*plans_)[0], tight);
  ASSERT_FALSE(expired.ok());
  EXPECT_EQ(expired.status().code(), StatusCode::kDeadlineExceeded);
  ServiceStats st = service.stats();
  EXPECT_EQ(st.deadline_exceeded, 1u);
  EXPECT_EQ(st.sample_runs, 0u)
      << "an attempt known to be expired must not start stage 1";
  EXPECT_EQ(service.cache_size(), 0u);

  // The fingerprint is not poisoned: an undeadlined retry (same injected
  // latency, no limit) samples and caches normally.
  auto retry = service.Predict((*plans_)[0]);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ(service.cache_size(), 1u);
  EXPECT_EQ(service.stats().sample_runs, 1u);

  // Deadlines bound WORK, not delivery: a hot hit is free, so even an
  // unmeetable deadline serves it.
  RequestOptions hopeless;
  hopeless.deadline_ms = 0.001;
  auto hit = service.Predict((*plans_)[0], hopeless);
  ASSERT_TRUE(hit.ok()) << hit.status().ToString();
  EXPECT_EQ(hit->mean(), retry->mean());
  st = service.stats();
  EXPECT_EQ(st.cache_hits, 1u);
  EXPECT_EQ(st.deadline_exceeded, 1u);
  ExpectOutcomeConservation(st);
}

TEST_F(ServiceTest, DegradedFallbackFollowsTheCostOnlyFormula) {
  // allow_degraded converts a hard failure into a usable cost-only
  // prediction: mean = optimizer scalar cost x cost_scale_ms, sigma =
  // mean x max(default_rel_error, windowed error) x inflation.
  const uint64_t fp = PlanFingerprint((*plans_)[0]);
  ScheduledFaultOptions fopts;
  FaultRule rule;
  rule.fail_attempts = 1000;  // this family never recovers
  fopts.rules[fp] = rule;
  ScheduledFaultInjector injector(fopts);
  ServiceOptions options;
  options.num_workers = 1;
  options.fault_injector = &injector;
  options.degraded.cost_scale_ms = 2.0;
  options.degraded.default_rel_error = 0.5;
  options.degraded.inflation = 2.0;
  PredictionService service(db_, samples_, *units_, options);

  // Without the opt-in the failure surfaces as-is.
  auto hard = service.Predict((*plans_)[0]);
  ASSERT_FALSE(hard.ok());
  EXPECT_EQ(hard.status().code(), StatusCode::kUnavailable);

  RequestOptions opts;
  opts.allow_degraded = true;
  auto soft = service.Predict((*plans_)[0], opts);
  ASSERT_TRUE(soft.ok()) << soft.status().ToString();
  EXPECT_TRUE(soft->degraded);
  const double scalar = OptimizerScalarCost((*plans_)[0], *db_);
  ASSERT_GT(scalar, 0.0);
  EXPECT_DOUBLE_EQ(soft->mean(), scalar * 2.0);
  const double sigma = soft->mean() * 0.5 * 2.0;
  EXPECT_DOUBLE_EQ(soft->breakdown.variance, sigma * sigma);

  // The async path degrades identically — including for a caller that
  // destroyed its plan right after submitting (the cost is precomputed).
  std::future<StatusOr<Prediction>> f;
  {
    Plan doomed = (*plans_)[0].Clone();
    f = service.PredictAsync(doomed, opts);
  }
  auto async_soft = f.get();
  ASSERT_TRUE(async_soft.ok()) << async_soft.status().ToString();
  EXPECT_TRUE(async_soft->degraded);
  EXPECT_DOUBLE_EQ(async_soft->mean(), soft->mean());
  EXPECT_DOUBLE_EQ(async_soft->breakdown.variance, soft->breakdown.variance);

  const ServiceStats st = service.stats();
  EXPECT_EQ(st.degraded_served, 2u);
  EXPECT_EQ(st.failed, 1u);
  EXPECT_EQ(st.sample_runs, 0u);
  ExpectOutcomeConservation(st);
}

TEST_F(ServiceTest, BreakerQuarantinesPoisonedFamilyThenProbes) {
  // A family whose stage 1 always fails must stop consuming stage-1
  // attempts once the breaker opens; cooldown sheds resolve without
  // touching the injector, then one half-open probe re-tests the family.
  const uint64_t fp = PlanFingerprint((*plans_)[0]);
  ScheduledFaultOptions fopts;
  FaultRule rule;
  rule.fail_attempts = 1000;
  fopts.rules[fp] = rule;
  ScheduledFaultInjector injector(fopts);
  ServiceOptions options;
  options.num_workers = 1;
  options.fault_injector = &injector;
  options.breaker.failure_threshold = 2;
  options.breaker.cooldown_requests = 2;
  PredictionService service(db_, samples_, *units_, options);
  RequestOptions opts;
  opts.allow_degraded = true;

  // Two real failures open the breaker.
  for (int i = 0; i < 2; ++i) {
    auto r = service.Predict((*plans_)[0], opts);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->degraded);
  }
  EXPECT_EQ(injector.AttemptCount(fp), 2u);
  ServiceStats st = service.stats();
  EXPECT_EQ(st.breaker_opens, 1u);
  EXPECT_EQ(st.faults_injected, 2u);

  // While open: the first cooldown request sheds — degraded WITHOUT
  // consulting the injector (the quarantined family consumes no stage-1
  // attempts) — and the second becomes the half-open probe (attempt 3),
  // which fails and re-opens.
  auto shed = service.Predict((*plans_)[0], opts);
  ASSERT_TRUE(shed.ok());
  EXPECT_TRUE(shed->degraded);
  EXPECT_EQ(injector.AttemptCount(fp), 2u)
      << "a shed request must not consume a fault-schedule attempt";
  auto probe = service.Predict((*plans_)[0], opts);
  ASSERT_TRUE(probe.ok());
  EXPECT_TRUE(probe->degraded);
  EXPECT_EQ(injector.AttemptCount(fp), 3u) << "the probe re-tests stage 1";

  st = service.stats();
  EXPECT_EQ(st.breaker_opens, 2u) << "the failed probe re-opens the family";
  EXPECT_EQ(st.breaker_shed, 1u);
  EXPECT_EQ(st.breaker_probes, 1u);
  EXPECT_EQ(st.degraded_served, 4u);
  EXPECT_EQ(st.sample_runs, 0u);
  ExpectOutcomeConservation(st);

  // Breaker state is visible through FeedbackSnapshot even with the
  // feedback loop disabled: breaker-only families materialize as rows.
  const auto families = service.FeedbackSnapshot();
  ASSERT_EQ(families.size(), 1u);
  EXPECT_EQ(families[0].fingerprint, fp);
  EXPECT_STREQ(families[0].breaker_state, "open");
  EXPECT_EQ(families[0].breaker_opens, 2u);
  EXPECT_EQ(families[0].breaker_shed, 1u);
}

TEST_F(ServiceTest, BreakerClosesAfterSuccessfulProbe) {
  // The recovery arc: 2 failures open, the cooldown passes, the probe
  // succeeds, and the family serves real predictions again.
  const uint64_t fp = PlanFingerprint((*plans_)[1]);
  ScheduledFaultOptions fopts;
  FaultRule rule;
  rule.fail_attempts = 2;  // fails twice, then heals
  fopts.rules[fp] = rule;
  ScheduledFaultInjector injector(fopts);
  ServiceOptions options;
  options.num_workers = 1;
  options.fault_injector = &injector;
  options.breaker.failure_threshold = 2;
  options.breaker.cooldown_requests = 1;
  PredictionService service(db_, samples_, *units_, options);
  RequestOptions opts;
  opts.allow_degraded = true;

  ASSERT_TRUE(service.Predict((*plans_)[1], opts)->degraded);
  ASSERT_TRUE(service.Predict((*plans_)[1], opts)->degraded);  // opens
  // cooldown_requests=1: the very next request is the probe — attempt 2,
  // which the schedule lets succeed.
  auto healed = service.Predict((*plans_)[1], opts);
  ASSERT_TRUE(healed.ok()) << healed.status().ToString();
  EXPECT_FALSE(healed->degraded) << "a healed probe serves the real pipeline";
  const ServiceStats st = service.stats();
  EXPECT_EQ(st.breaker_opens, 1u);
  EXPECT_EQ(st.breaker_probes, 1u);
  EXPECT_EQ(st.sample_runs, 1u);
  // Closed again: a plain hit serves from the cache the probe populated.
  ASSERT_TRUE(service.Predict((*plans_)[1]).ok());
  EXPECT_EQ(service.stats().cache_hits, 1u);
  ExpectOutcomeConservation(service.stats());
}

}  // namespace
}  // namespace uqp
