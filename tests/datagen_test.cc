// Tests for the TPC-H-like data generator: schema, cardinalities, key
// integrity, skew behaviour and date utilities.

#include <gtest/gtest.h>

#include <unordered_set>

#include "datagen/dates.h"
#include "datagen/tpch.h"

namespace uqp {
namespace {

TEST(Dates, KnownDayNumbers) {
  EXPECT_EQ(DayNumber(1970, 1, 1), 0);
  EXPECT_EQ(DayNumber(1970, 1, 2), 1);
  EXPECT_EQ(DayNumber(1969, 12, 31), -1);
  EXPECT_EQ(DayNumber(2000, 3, 1), DayNumber(2000, 2, 29) + 1);  // leap year
}

TEST(Dates, ParseFormatRoundTrip) {
  for (const char* iso : {"1992-01-01", "1995-06-17", "1998-12-31", "1996-02-29"}) {
    EXPECT_EQ(FormatDate(ParseDate(iso)), iso);
  }
}

TEST(Dates, TpchRange) {
  EXPECT_EQ(TpchDateMin(), ParseDate("1992-01-01"));
  EXPECT_EQ(TpchDateMax(), ParseDate("1998-12-31"));
  EXPECT_GT(TpchDateMax(), TpchDateMin());
}

TEST(TpchGen, ProfileScales) {
  EXPECT_DOUBLE_EQ(TpchConfig::Profile("1gb").scale, 1.0);
  EXPECT_DOUBLE_EQ(TpchConfig::Profile("10gb").scale, 10.0);
  EXPECT_DOUBLE_EQ(TpchConfig::Profile("tiny").scale, 0.1);
}

TEST(TpchGen, Cardinalities) {
  const TpchCardinalities c = CardinalitiesFor(1.0);
  EXPECT_EQ(c.region, 5);
  EXPECT_EQ(c.nation, 25);
  EXPECT_EQ(c.supplier, 100);
  EXPECT_EQ(c.customer, 1500);
  EXPECT_EQ(c.part, 2000);
  EXPECT_EQ(c.partsupp, 8000);
  EXPECT_EQ(c.orders, 15000);
}

class TpchDbTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database(MakeTpchDatabase(TpchConfig::Profile("tiny")));
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }
  static Database* db_;
};
Database* TpchDbTest::db_ = nullptr;

TEST_F(TpchDbTest, AllEightTablesPresent) {
  for (const char* name : {"region", "nation", "supplier", "customer", "part",
                           "partsupp", "orders", "lineitem"}) {
    EXPECT_TRUE(db_->HasTable(name)) << name;
    EXPECT_TRUE(db_->catalog().Has(name)) << name;
  }
}

TEST_F(TpchDbTest, RowCountsMatchScale) {
  const TpchCardinalities c = CardinalitiesFor(0.1);
  EXPECT_EQ(db_->GetTable("orders").num_rows(), c.orders);
  EXPECT_EQ(db_->GetTable("customer").num_rows(), c.customer);
  EXPECT_EQ(db_->GetTable("partsupp").num_rows(), c.partsupp);
  // lineitem is 1..7 lines per order, expectation 4x orders.
  const int64_t li = db_->GetTable("lineitem").num_rows();
  EXPECT_GT(li, 3 * c.orders);
  EXPECT_LT(li, 5 * c.orders);
}

TEST_F(TpchDbTest, ForeignKeyIntegrity) {
  const Table& lineitem = db_->GetTable("lineitem");
  const int64_t orders = db_->GetTable("orders").num_rows();
  const int64_t parts = db_->GetTable("part").num_rows();
  const int64_t suppliers = db_->GetTable("supplier").num_rows();
  for (int64_t r = 0; r < lineitem.num_rows(); r += 97) {
    ASSERT_LT(lineitem.at(r, 0).AsInt64(), orders);
    ASSERT_LT(lineitem.at(r, 1).AsInt64(), parts);
    ASSERT_LT(lineitem.at(r, 2).AsInt64(), suppliers);
  }
  const Table& ordertab = db_->GetTable("orders");
  const int64_t customers = db_->GetTable("customer").num_rows();
  for (int64_t r = 0; r < ordertab.num_rows(); r += 53) {
    ASSERT_LT(ordertab.at(r, 1).AsInt64(), customers);
  }
}

TEST_F(TpchDbTest, DatesInTpchRange) {
  const Table& lineitem = db_->GetTable("lineitem");
  const int shipdate = lineitem.schema().IndexOf("l_shipdate");
  const int receiptdate = lineitem.schema().IndexOf("l_receiptdate");
  for (int64_t r = 0; r < lineitem.num_rows(); r += 101) {
    const int64_t ship = lineitem.at(r, shipdate).AsInt64();
    ASSERT_GE(ship, TpchDateMin());
    ASSERT_LE(ship, TpchDateMax() + 160);  // ship/receipt can trail orderdate
    ASSERT_GE(lineitem.at(r, receiptdate).AsInt64(), ship);
  }
}

TEST_F(TpchDbTest, KeyIndexesDeclared) {
  EXPECT_TRUE(db_->GetTable("lineitem").HasIndex(0));   // l_orderkey
  EXPECT_TRUE(db_->GetTable("lineitem").HasIndex(10));  // l_shipdate
  EXPECT_TRUE(db_->GetTable("orders").HasIndex(4));     // o_orderdate
  EXPECT_TRUE(db_->GetTable("customer").HasIndex(0));   // c_custkey
}

TEST_F(TpchDbTest, Determinism) {
  Database other = MakeTpchDatabase(TpchConfig::Profile("tiny"));
  const Table& a = db_->GetTable("lineitem");
  const Table& b = other.GetTable("lineitem");
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (int64_t r = 0; r < a.num_rows(); r += 211) {
    for (int c = 0; c < a.schema().num_columns(); ++c) {
      ASSERT_TRUE(a.at(r, c).Equals(b.at(r, c))) << "row " << r << " col " << c;
    }
  }
}

TEST(TpchSkew, ZipfConcentratesForeignKeys) {
  TpchConfig uniform = TpchConfig::Profile("tiny", 0.0);
  TpchConfig skewed = TpchConfig::Profile("tiny", 1.0);
  Database u = MakeTpchDatabase(uniform);
  Database s = MakeTpchDatabase(skewed);

  auto top_part_share = [](const Database& db) {
    const Table& lineitem = db.GetTable("lineitem");
    std::unordered_map<int64_t, int64_t> freq;
    for (int64_t r = 0; r < lineitem.num_rows(); ++r) {
      freq[lineitem.at(r, 1).AsInt64()]++;
    }
    int64_t max_freq = 0;
    for (const auto& [k, f] : freq) max_freq = std::max(max_freq, f);
    return static_cast<double>(max_freq) / static_cast<double>(lineitem.num_rows());
  };
  EXPECT_GT(top_part_share(s), 3.0 * top_part_share(u));
}

TEST(TpchSkew, DifferentSeedsGiveDifferentData) {
  Database a = MakeTpchDatabase(TpchConfig::Profile("tiny", 0.0, 1));
  Database b = MakeTpchDatabase(TpchConfig::Profile("tiny", 0.0, 2));
  const Table& ta = a.GetTable("lineitem");
  const Table& tb = b.GetTable("lineitem");
  bool differs = ta.num_rows() != tb.num_rows();
  for (int64_t r = 0; !differs && r < std::min(ta.num_rows(), tb.num_rows());
       ++r) {
    if (!ta.at(r, 4).Equals(tb.at(r, 4))) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(TpchNames, DomainsAreStable) {
  EXPECT_EQ(tpch::SegmentName(0), "AUTOMOBILE");
  EXPECT_EQ(tpch::BrandName(0), "Brand#11");
  EXPECT_EQ(tpch::BrandName(24), "Brand#55");
  EXPECT_EQ(tpch::RegionName(2), "ASIA");
  EXPECT_EQ(tpch::ReturnFlagName(0), "R");
  // 150 distinct type strings.
  std::unordered_set<std::string> types;
  for (int i = 0; i < tpch::kNumTypes; ++i) types.insert(tpch::TypeName(i));
  EXPECT_EQ(types.size(), static_cast<size_t>(tpch::kNumTypes));
}

}  // namespace
}  // namespace uqp
