// Tests for the §8 future-work extension: interference between concurrent
// queries modeled as a change in the cost-unit distributions — plus the
// intra-plan race suite: concurrent predictions that each fan their
// sample run out across the shared worker pool (this file runs under TSan
// and ASan in CI).

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "core/predictor.h"
#include "core/variance.h"
#include "cost/calibration.h"
#include "datagen/tpch.h"
#include "engine/planner.h"
#include "hw/machine.h"
#include "math/stats.h"
#include "sampling/sample_db.h"
#include "service/fault.h"
#include "service/prediction_service.h"
#include "workload/common.h"

namespace uqp {
namespace {

TEST(Concurrency, TimeGrowsWithMultiprogrammingLevel) {
  SimulatedMachine machine(MachineProfile::PC1(), 5);
  ResourceVector work;
  work.ns = 1000;
  work.nt = 50000;
  double prev = 0.0;
  for (int mpl : {1, 2, 4, 8}) {
    const double t = machine.ExecuteAveraged({work}, 30, mpl);
    EXPECT_GT(t, prev) << "MPL " << mpl;
    prev = t;
  }
}

TEST(Concurrency, CpuUnitsUnaffectedBelowCoreCount) {
  // PC2 has 8 cores: a pure-CPU workload at MPL 4 costs the same as idle.
  SimulatedMachine machine(MachineProfile::PC2(), 6);
  ResourceVector work;
  work.nt = 200000;
  const double idle = machine.ExecuteAveraged({work}, 50, 1);
  const double mpl4 = machine.ExecuteAveraged({work}, 50, 4);
  EXPECT_NEAR(mpl4, idle, 0.06 * idle);
  // ... but at MPL 16 the cores are oversubscribed 2x.
  const double mpl16 = machine.ExecuteAveraged({work}, 50, 16);
  EXPECT_GT(mpl16, 1.4 * idle);
}

TEST(Concurrency, IoContentionBitesImmediately) {
  SimulatedMachine machine(MachineProfile::PC2(), 7);
  ResourceVector work;
  work.ns = 5000;
  const double idle = machine.ExecuteAveraged({work}, 50, 1);
  const double mpl2 = machine.ExecuteAveraged({work}, 50, 2);
  EXPECT_GT(mpl2, 1.25 * idle);  // io_contention = 0.45 per extra query
}

TEST(Concurrency, DispersionGrowsWithMpl) {
  SimulatedMachine machine(MachineProfile::PC1(), 8);
  ResourceVector work;
  work.nr = 300;
  RunningStats idle, busy;
  for (int i = 0; i < 500; ++i) idle.Add(machine.ExecuteOnce({work}, 1));
  for (int i = 0; i < 500; ++i) busy.Add(machine.ExecuteOnce({work}, 4));
  // Relative dispersion grows under contention.
  EXPECT_GT(busy.stddev() / busy.mean(), idle.stddev() / idle.mean());
}

TEST(Concurrency, CalibrationTracksInflatedUnits) {
  SimulatedMachine machine(MachineProfile::PC1(), 9);
  Calibrator calibrator(&machine);
  const CostUnits idle = calibrator.CalibrateAt(1);
  const CostUnits mpl4 = calibrator.CalibrateAt(4);
  // I/O units inflate roughly by 1 + 0.45 * 3 = 2.35.
  EXPECT_GT(mpl4.Get(kCostSeqPage).mean, 1.8 * idle.Get(kCostSeqPage).mean);
  EXPECT_LT(mpl4.Get(kCostSeqPage).mean, 3.2 * idle.Get(kCostSeqPage).mean);
  // CPU on the 2-core PC1 oversubscribes at MPL 4 as well.
  EXPECT_GT(mpl4.Get(kCostTuple).mean, 1.3 * idle.Get(kCostTuple).mean);
  // Variances inflate too (the distribution changes, not just the mean).
  EXPECT_GT(mpl4.Get(kCostSeqPage).variance, idle.Get(kCostSeqPage).variance);
}

TEST(Concurrency, MplAwareUnitsPredictMplWorkloads) {
  // A synthetic "query" with known counters: the MPL-aware units must
  // predict its MPL-4 latency far better than the idle units do.
  SimulatedMachine machine(MachineProfile::PC1(), 10);
  Calibrator calibrator(&machine);
  const CostUnits idle = calibrator.CalibrateAt(1);
  const CostUnits busy = calibrator.CalibrateAt(4);

  ResourceVector work;
  work.ns = 2000;
  work.nt = 80000;
  work.no = 120000;
  const double actual = machine.ExecuteAveraged({work}, 60, 4);
  auto predict = [&work](const CostUnits& units) {
    return units.MeanDot(work.ns, work.nr, work.nt, work.ni, work.no);
  };
  const double err_busy = std::fabs(predict(busy) - actual) / actual;
  const double err_idle = std::fabs(predict(idle) - actual) / actual;
  EXPECT_LT(err_busy, 0.25);
  EXPECT_GT(err_idle, 2.0 * err_busy);
}

TEST(Concurrency, InvalidMplRejected) {
  SimulatedMachine machine(MachineProfile::PC1(), 11);
  EXPECT_DEATH(machine.ExecuteOnce({ResourceVector{}}, 0), "concurrency");
}

// ---------------------------------------------------------------------------
// Intra-plan races: predictions whose sample runs themselves fan out
// across the service's worker pool, racing each other and the cache
// machinery. Full-ratio samples make the big relations span several
// execution batches, so the shard paths genuinely run.
// ---------------------------------------------------------------------------

class IntraPlanRaceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database(MakeTpchDatabase(TpchConfig::Profile("tiny")));
    SampleOptions sample_options;
    sample_options.sampling_ratio = 1.0;
    samples_ = new SampleDb(SampleDb::Build(*db_, sample_options));
    SimulatedMachine machine(MachineProfile::PC1(), 17);
    Calibrator calibrator(&machine);
    units_ = new CostUnits(calibrator.Calibrate());

    plans_ = new std::vector<Plan>();
    SelJoinOptions wopts;
    wopts.instances_per_template = 2;
    auto queries = MakeSelJoinWorkload(*db_, wopts);
    for (auto& q : queries) {
      auto plan_or = OptimizePlan(std::move(q.logical), *db_);
      if (plan_or.ok()) plans_->push_back(std::move(plan_or).value());
    }
    ASSERT_GE(plans_->size(), 4u);
  }

  static void TearDownTestSuite() {
    delete plans_;
    delete units_;
    delete samples_;
    delete db_;
    plans_ = nullptr;
    units_ = nullptr;
    samples_ = nullptr;
    db_ = nullptr;
  }

  static Database* db_;
  static SampleDb* samples_;
  static CostUnits* units_;
  static std::vector<Plan>* plans_;
};

Database* IntraPlanRaceTest::db_ = nullptr;
SampleDb* IntraPlanRaceTest::samples_ = nullptr;
CostUnits* IntraPlanRaceTest::units_ = nullptr;
std::vector<Plan>* IntraPlanRaceTest::plans_ = nullptr;

// Concurrent PredictAsync on distinct plans, each sharding its sample run
// across the same pool the plan-level tasks run on: every future resolves,
// every result is bit-identical to the sequential reference, and dedup
// still collapses repeats to one stage-1 run per distinct plan.
TEST_F(IntraPlanRaceTest, ConcurrentAsyncPredictionsFanOutShards) {
  PredictorOptions seq_opts;
  Predictor reference(db_, samples_, *units_, seq_opts);
  std::vector<Prediction> expected;
  for (const Plan& plan : *plans_) {
    auto ref = reference.Predict(plan);
    ASSERT_TRUE(ref.ok()) << ref.status().ToString();
    expected.push_back(std::move(ref).value());
  }

  ServiceOptions options;
  options.num_workers = 4;
  options.predictor.num_threads = 4;
  PredictionService service(db_, samples_, *units_, options);
  const int kRepeats = 3;
  std::vector<std::future<StatusOr<Prediction>>> futures;
  for (int rep = 0; rep < kRepeats; ++rep) {
    for (const Plan& plan : *plans_) {
      futures.push_back(service.PredictAsync(plan));
    }
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    auto got = futures[i].get();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    const Prediction& ref = expected[i % plans_->size()];
    EXPECT_EQ(got->mean(), ref.mean()) << "future " << i;
    EXPECT_EQ(got->breakdown.variance, ref.breakdown.variance) << "future " << i;
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.sample_runs, plans_->size());
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.predictions);
  EXPECT_EQ(service.plan_registry_size(), 0u);
}

// InvalidateCache hammered from another thread while parallel sample runs
// are mid-flight: no run may crash, lose its waiters, or serve a result
// that differs from the deterministic reference; late cache inserts from
// flushed generations are dropped, never resurrected.
TEST_F(IntraPlanRaceTest, InvalidateCacheMidParallelRun) {
  PredictorOptions seq_opts;
  Predictor reference(db_, samples_, *units_, seq_opts);
  auto ref = reference.Predict((*plans_)[0]);
  ASSERT_TRUE(ref.ok());

  ServiceOptions options;
  options.num_workers = 3;
  options.predictor.num_threads = 3;
  PredictionService service(db_, samples_, *units_, options);

  std::atomic<bool> stop{false};
  std::thread invalidator([&] {
    while (!stop.load()) {
      service.InvalidateCache();
      std::this_thread::yield();
    }
  });

  const int kWaves = 6;
  for (int wave = 0; wave < kWaves; ++wave) {
    std::vector<std::future<StatusOr<Prediction>>> futures;
    for (const Plan& plan : *plans_) {
      futures.push_back(service.PredictAsync(plan));
    }
    for (size_t i = 0; i < futures.size(); ++i) {
      auto got = futures[i].get();
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      if (i == 0) {
        EXPECT_EQ(got->mean(), ref->mean()) << "wave " << wave;
        EXPECT_EQ(got->breakdown.variance, ref->breakdown.variance);
      }
    }
  }
  stop.store(true);
  invalidator.join();

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.predictions);
  // The invalidator raced real inserts: anything it beat was re-run, so
  // the sum of surviving inserts and dropped ones covers every stage-1
  // execution.
  EXPECT_GE(stats.sample_runs, plans_->size());
  EXPECT_EQ(service.plan_registry_size(), 0u);
}

// InvalidateCache hammered while parallel SORTS and aggregations are
// mid-flight: the fixed-shape merge sort, the per-chunk aggregation
// tables and the merge-join group emission all dispatch onto the same
// shared pool as the plan-level work, at a small batch size so one sample
// run fans out into many leaf/merge/placement tasks. No run may crash,
// lose its waiters, or serve a result differing from the sequential
// reference.
TEST_F(IntraPlanRaceTest, InvalidateCacheMidParallelSort) {
  // ORDER BY + GROUP BY + merge-join stack over the full-ratio lineitem
  // sample (~6k rows): scan -> sort -> merge join -> aggregate -> sort.
  auto join = MakeMergeJoin(MakeSort(MakeSeqScan("orders", nullptr), {0}),
                            MakeSort(MakeSeqScan("lineitem", nullptr), {0}),
                            {{0, 0}});
  auto agg = MakeAggregate(std::move(join), {1},
                           {{AggSpec::Kind::kSum, 12, "revenue"}});
  Plan plan(MakeSort(std::move(agg), {1}));
  ASSERT_TRUE(plan.Finalize(*db_).ok());

  PredictorOptions seq_opts;
  seq_opts.max_batch_size = 64;
  Predictor reference(db_, samples_, *units_, seq_opts);
  auto ref = reference.Predict(plan);
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();

  ServiceOptions options;
  options.num_workers = 3;
  options.predictor.num_threads = 3;
  options.predictor.max_batch_size = 64;  // many sort/agg tasks per run
  PredictionService service(db_, samples_, *units_, options);

  std::atomic<bool> stop{false};
  std::thread invalidator([&] {
    while (!stop.load()) {
      service.InvalidateCache();
      std::this_thread::yield();
    }
  });

  const int kWaves = 4;
  for (int wave = 0; wave < kWaves; ++wave) {
    std::vector<std::future<StatusOr<Prediction>>> futures;
    futures.push_back(service.PredictAsync(plan));
    for (size_t i = 0; i < 2 && i < plans_->size(); ++i) {
      futures.push_back(service.PredictAsync((*plans_)[i]));
    }
    for (size_t i = 0; i < futures.size(); ++i) {
      auto got = futures[i].get();
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      if (i == 0) {
        EXPECT_EQ(got->mean(), ref->mean()) << "wave " << wave;
        EXPECT_EQ(got->breakdown.variance, ref->breakdown.variance);
      }
    }
  }
  stop.store(true);
  invalidator.join();

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.predictions);
  EXPECT_EQ(service.plan_registry_size(), 0u);
}

// A deterministic mid-run flush: the post-stages hook fires between the
// stages finishing and the artifacts being published, so the insert is
// provably stale. The prediction must still complete (with the pre-flush
// result) and the stale insert must be counted and dropped.
TEST_F(IntraPlanRaceTest, DeterministicFlushBetweenStagesAndPublish) {
  ServiceOptions options;
  options.num_workers = 2;
  options.predictor.num_threads = 2;
  std::atomic<int> hook_calls{0};
  PredictionService* service_ptr = nullptr;
  options.post_stages_hook = [&] {
    if (hook_calls.fetch_add(1) == 0) service_ptr->InvalidateCache();
  };
  PredictionService service(db_, samples_, *units_, options);
  service_ptr = &service;

  auto got = service.PredictAsync((*plans_)[1]).get();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.stale_drops, 1u);
  EXPECT_EQ(service.cache_size(), 0u);

  PredictorOptions seq_opts;
  Predictor reference(db_, samples_, *units_, seq_opts);
  auto ref = reference.Predict((*plans_)[1]);
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(got->mean(), ref->mean());
  EXPECT_EQ(got->breakdown.variance, ref->breakdown.variance);
}

// The sharded lock-free read path under fire (run under TSan in CI):
// hardware_concurrency reader threads hammer hot-cache Predict across
// every shard while another thread invalidates the whole cache over and
// over. The published-slot loads, generation checks and relaxed recency
// ticks must be data-race-free, every result bit-identical to the
// sequential reference, and the striped classification exact. A quiet
// tail then proves the mutex-free probe actually serves hits (acceptance:
// hot hits take no global lock, concurrent with InvalidateCache).
TEST_F(IntraPlanRaceTest, LockFreeHitsRaceInvalidateCacheAcrossShards) {
  PredictorOptions seq_opts;
  Predictor reference(db_, samples_, *units_, seq_opts);
  std::vector<Prediction> expected;
  for (const Plan& plan : *plans_) {
    auto ref = reference.Predict(plan);
    ASSERT_TRUE(ref.ok()) << ref.status().ToString();
    expected.push_back(std::move(ref).value());
  }

  ServiceOptions options;
  options.num_workers = 2;
  PredictionService service(db_, samples_, *units_, options);
  for (const Plan& plan : *plans_) ASSERT_TRUE(service.Predict(plan).ok());

  const unsigned hw = std::max(4u, std::thread::hardware_concurrency());
  const int kReaders = static_cast<int>(std::min(hw, 8u));
  const int kRounds = 12;
  std::atomic<bool> mismatch{false};
  std::atomic<bool> stop_invalidator{false};
  std::vector<std::thread> readers;
  readers.reserve(static_cast<size_t>(kReaders));
  for (int i = 0; i < kReaders; ++i) {
    readers.emplace_back([&, i] {
      const size_t idx = static_cast<size_t>(i) % plans_->size();
      for (int r = 0; r < kRounds; ++r) {
        auto got = service.Predict((*plans_)[idx]);
        if (!got.ok() || got->mean() != expected[idx].mean() ||
            got->breakdown.variance != expected[idx].breakdown.variance) {
          mismatch.store(true);
        }
      }
    });
  }
  std::thread invalidator([&] {
    while (!stop_invalidator.load()) {
      service.InvalidateCache();
      std::this_thread::yield();
    }
  });
  for (auto& t : readers) t.join();
  stop_invalidator.store(true);
  invalidator.join();

  EXPECT_FALSE(mismatch.load())
      << "a hit raced InvalidateCache into a wrong or failed prediction";
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.predictions);

  // Quiet tail: with the invalidator gone, a re-warmed plan's repeat MUST
  // travel the mutex-free published-slot path.
  const uint64_t lockfree_before = stats.lockfree_hits;
  ASSERT_TRUE(service.Predict((*plans_)[0]).ok());  // re-warm (or hit)
  ASSERT_TRUE(service.Predict((*plans_)[0]).ok());  // published-slot hit
  stats = service.stats();
  EXPECT_GT(stats.lockfree_hits, lockfree_before);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.predictions);
}

// Calibration-epoch swaps under fire (run under TSan in CI): one thread
// publishes new snapshots as fast as it can — both directly and through
// ReportObserved-triggered drift recalibration — while reader threads
// hammer lock-free hot hits and an async storm keeps cold runs in flight.
// Correctness contract: every served prediction is internally consistent
// (recomputing stage 3 under the prediction's OWN pinned snapshot must
// reproduce the served breakdown bit-for-bit — a combination that mixed
// units from two epochs cannot survive this check), no prediction is ever
// served without a calibration stamp, and the expensive stage-1/2
// artifacts survive every swap: stage 1 runs exactly once per distinct
// plan and the served sample-run pointer never changes.
TEST_F(IntraPlanRaceTest, EpochSwapsRaceLockFreeHitsAndColdRuns) {
  ServiceOptions options;
  options.num_workers = 4;
  options.predictor.num_threads = 2;
  options.feedback.enabled = true;
  options.feedback.window_size = 4;
  options.feedback.converge_threshold = 0.02;
  options.feedback.drift_threshold = 0.25;
  options.feedback.cooldown_reports = 8;
  options.feedback.probe_interval = 4;
  CostUnits* base_units = units_;
  std::atomic<int> recal_calls{0};
  options.feedback.recalibrate = [base_units, &recal_calls]() {
    const int n = recal_calls.fetch_add(1);
    CostUnits scaled = *base_units;
    const double factor = 1.0 + 0.25 * static_cast<double>(n % 4);
    for (int u = 0; u < kNumCostUnits; ++u) scaled.units[u].mean *= factor;
    return scaled;
  };
  PredictionService service(db_, samples_, *units_, options);
  const PredictorVariant variant = options.predictor.variant;
  const CovarianceBoundKind bound = options.predictor.bound;

  // Phase 1: a cold async storm races the publisher — in-flight stage-1/2
  // runs must resolve against whatever snapshot is current when their
  // stage 3 happens, never a mix.
  std::atomic<bool> stop_publisher{false};
  std::thread publisher([&] {
    uint64_t flips = 0;
    while (!stop_publisher.load()) {
      CostUnits scaled = *base_units;
      const double factor = (flips++ % 2 == 0) ? 1.5 : 0.75;
      for (int u = 0; u < kNumCostUnits; ++u) scaled.units[u].mean *= factor;
      service.PublishCalibration(std::move(scaled), "race");
      std::this_thread::yield();
    }
  });

  std::atomic<bool> bad{false};
  auto check_consistent = [&](const StatusOr<Prediction>& got) {
    if (!got.ok() || got->calibration == nullptr || got->sample_run == nullptr) {
      bad.store(true);
      return;
    }
    const VarianceBreakdown re = service.Recompute(*got, variant, bound);
    if (re.mean != got->breakdown.mean ||
        re.variance != got->breakdown.variance) {
      bad.store(true);  // epoch-mixed combination detected
    }
  };

  {
    std::vector<std::future<StatusOr<Prediction>>> futures;
    for (int rep = 0; rep < 3; ++rep) {
      for (const Plan& plan : *plans_) {
        futures.push_back(service.PredictAsync(plan));
      }
    }
    for (auto& f : futures) check_consistent(f.get());
  }

  // Pin the first-seen stage-1 artifact per plan: epoch swaps must never
  // evict or re-run them.
  std::vector<const SampleRunOutput*> first_seen(plans_->size(), nullptr);
  for (size_t i = 0; i < plans_->size(); ++i) {
    auto got = service.Predict((*plans_)[i]);
    ASSERT_TRUE(got.ok());
    first_seen[i] = got->sample_run.get();
  }

  // Phase 2: lock-free hitters + a feedback reporter whose drifting
  // observations trigger recalibration publishes, all concurrent.
  const int kReaders = 4;
  const int kRounds = 60;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int i = 0; i < kReaders; ++i) {
    readers.emplace_back([&, i] {
      const size_t idx = static_cast<size_t>(i) % plans_->size();
      for (int r = 0; r < kRounds; ++r) {
        auto got = service.Predict((*plans_)[idx]);
        check_consistent(got);
        if (got.ok() && got->sample_run.get() != first_seen[idx]) {
          bad.store(true);  // a swap cost us a stage-1 artifact
        }
      }
    });
  }
  std::thread reporter([&] {
    for (int r = 0; r < 80; ++r) {
      // Alternate accurate and badly-drifted observations so windows both
      // fill and trip the drift detector while hits stream.
      const double scale = (r % 2 == 0) ? 1.0 : 3.0;
      auto got = service.Predict((*plans_)[0]);
      if (got.ok()) service.ReportObserved((*plans_)[0], got->mean() * scale);
    }
  });
  for (auto& t : readers) t.join();
  reporter.join();
  stop_publisher.store(true);
  publisher.join();

  EXPECT_FALSE(bad.load())
      << "a prediction mixed units from two epochs, lost its calibration "
         "stamp, or lost a stage-1 artifact across a swap";
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.sample_runs, plans_->size())
      << "epoch swaps must not re-run stage 1";
  EXPECT_EQ(stats.fit_runs, plans_->size())
      << "epoch swaps must not re-run stage 2";
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.predictions);
  EXPECT_EQ(service.plan_registry_size(), 0u);
  // Final sweep: artifacts are still the originals, served under the
  // final epoch.
  const uint64_t final_epoch = service.calibration_epoch();
  EXPECT_GT(final_epoch, 1u);
  for (size_t i = 0; i < plans_->size(); ++i) {
    auto got = service.Predict((*plans_)[i]);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->sample_run.get(), first_seen[i]) << "plan " << i;
    EXPECT_EQ(got->calibration_epoch(), final_epoch) << "plan " << i;
  }
}

// The fault-injection chaos mix (run under TSan and ASan in CI):
// probabilistically injected stage failures and stalls race lock-free hot
// hits, a full-cache invalidator, mixed sync/async/degraded traffic, and a
// stats poller asserting the outcome-matrix conservation invariants at
// every snapshot. Each request bumps exactly ONE cell of the striped
// [hit|miss] x [ok|failed|degraded|deadline] matrix at resolution, so both
// partitions must hold mid-flight, not just at quiescence — and the
// derived totals must be monotone across polls.
TEST_F(IntraPlanRaceTest, FaultChaosKeepsTheOutcomeMatrixConserved) {
  ScheduledFaultOptions fopts;
  fopts.seed = 99;
  fopts.default_rule.fail_prob = 0.25;
  fopts.default_rule.latency_prob = 0.25;
  fopts.default_rule.latency_ms = 0.2;
  fopts.spurious_every = 7;
  ScheduledFaultInjector injector(fopts);

  ServiceOptions options;
  options.num_workers = 3;
  options.predictor.num_threads = 2;
  options.fault_injector = &injector;
  PredictionService service(db_, samples_, *units_, options);

  std::atomic<bool> stop{false};
  std::atomic<bool> violation{false};
  std::thread poller([&] {
    uint64_t last_predictions = 0;
    while (!stop.load()) {
      const ServiceStats st = service.stats();
      if (st.cache_hits + st.cache_misses != st.predictions) {
        violation.store(true);
      }
      if (st.ok_served + st.failed + st.degraded_served +
              st.deadline_exceeded !=
          st.predictions) {
        violation.store(true);
      }
      if (st.predictions < last_predictions) violation.store(true);
      last_predictions = st.predictions;
      std::this_thread::yield();
    }
  });
  std::thread invalidator([&] {
    while (!stop.load()) {
      service.InvalidateCache();
      std::this_thread::yield();
    }
  });

  // The storm: async waves across every plan (alternating the degraded
  // opt-in) interleaved with blocking sync repeats that ride whatever the
  // cache or in-flight table holds at that instant. Failures are never
  // negatively cached, so a plan that faulted in wave k can hit in wave
  // k+1 — every terminal state is legal, but it must be terminal.
  RequestOptions degraded_ok;
  degraded_ok.allow_degraded = true;
  const int kWaves = 6;
  uint64_t failed_seen = 0;
  uint64_t degraded_seen = 0;
  for (int wave = 0; wave < kWaves; ++wave) {
    std::vector<std::future<StatusOr<Prediction>>> futures;
    for (size_t i = 0; i < plans_->size(); ++i) {
      const bool soft = (wave + static_cast<int>(i)) % 2 == 0;
      futures.push_back(soft
                            ? service.PredictAsync((*plans_)[i], degraded_ok)
                            : service.PredictAsync((*plans_)[i]));
    }
    std::thread sync_hitter([&] {
      for (int r = 0; r < 4; ++r) {
        auto got = service.Predict((*plans_)[0], degraded_ok);
        ASSERT_TRUE(got.ok()) << got.status().ToString();
      }
    });
    for (auto& f : futures) {
      auto got = f.get();
      if (got.ok()) {
        if (got->degraded) ++degraded_seen;
      } else {
        // The only hard failure in this storm is the injected one.
        EXPECT_EQ(got.status().code(), StatusCode::kUnavailable)
            << got.status().ToString();
        ++failed_seen;
      }
    }
    sync_hitter.join();
  }
  stop.store(true);
  poller.join();
  invalidator.join();

  EXPECT_FALSE(violation.load())
      << "a stats snapshot tore the conservation invariants mid-flight";
  const ServiceStats st = service.stats();
  EXPECT_EQ(st.cache_hits + st.cache_misses, st.predictions);
  EXPECT_EQ(st.ok_served + st.failed + st.degraded_served +
                st.deadline_exceeded,
            st.predictions);
  EXPECT_EQ(st.failed, failed_seen);
  EXPECT_GE(st.degraded_served, degraded_seen);
  // Every injected fault the service observed came from this injector,
  // and nothing else failed.
  EXPECT_EQ(st.faults_injected, injector.faults_fired());
  EXPECT_GT(st.faults_injected, 0u) << "the chaos seed must actually bite";
  EXPECT_EQ(service.plan_registry_size(), 0u);
}

}  // namespace
}  // namespace uqp
