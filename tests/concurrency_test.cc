// Tests for the §8 future-work extension: interference between concurrent
// queries modeled as a change in the cost-unit distributions.

#include <gtest/gtest.h>

#include "core/variance.h"
#include "cost/calibration.h"
#include "hw/machine.h"
#include "math/stats.h"

namespace uqp {
namespace {

TEST(Concurrency, TimeGrowsWithMultiprogrammingLevel) {
  SimulatedMachine machine(MachineProfile::PC1(), 5);
  ResourceVector work;
  work.ns = 1000;
  work.nt = 50000;
  double prev = 0.0;
  for (int mpl : {1, 2, 4, 8}) {
    const double t = machine.ExecuteAveraged({work}, 30, mpl);
    EXPECT_GT(t, prev) << "MPL " << mpl;
    prev = t;
  }
}

TEST(Concurrency, CpuUnitsUnaffectedBelowCoreCount) {
  // PC2 has 8 cores: a pure-CPU workload at MPL 4 costs the same as idle.
  SimulatedMachine machine(MachineProfile::PC2(), 6);
  ResourceVector work;
  work.nt = 200000;
  const double idle = machine.ExecuteAveraged({work}, 50, 1);
  const double mpl4 = machine.ExecuteAveraged({work}, 50, 4);
  EXPECT_NEAR(mpl4, idle, 0.06 * idle);
  // ... but at MPL 16 the cores are oversubscribed 2x.
  const double mpl16 = machine.ExecuteAveraged({work}, 50, 16);
  EXPECT_GT(mpl16, 1.4 * idle);
}

TEST(Concurrency, IoContentionBitesImmediately) {
  SimulatedMachine machine(MachineProfile::PC2(), 7);
  ResourceVector work;
  work.ns = 5000;
  const double idle = machine.ExecuteAveraged({work}, 50, 1);
  const double mpl2 = machine.ExecuteAveraged({work}, 50, 2);
  EXPECT_GT(mpl2, 1.25 * idle);  // io_contention = 0.45 per extra query
}

TEST(Concurrency, DispersionGrowsWithMpl) {
  SimulatedMachine machine(MachineProfile::PC1(), 8);
  ResourceVector work;
  work.nr = 300;
  RunningStats idle, busy;
  for (int i = 0; i < 500; ++i) idle.Add(machine.ExecuteOnce({work}, 1));
  for (int i = 0; i < 500; ++i) busy.Add(machine.ExecuteOnce({work}, 4));
  // Relative dispersion grows under contention.
  EXPECT_GT(busy.stddev() / busy.mean(), idle.stddev() / idle.mean());
}

TEST(Concurrency, CalibrationTracksInflatedUnits) {
  SimulatedMachine machine(MachineProfile::PC1(), 9);
  Calibrator calibrator(&machine);
  const CostUnits idle = calibrator.CalibrateAt(1);
  const CostUnits mpl4 = calibrator.CalibrateAt(4);
  // I/O units inflate roughly by 1 + 0.45 * 3 = 2.35.
  EXPECT_GT(mpl4.Get(kCostSeqPage).mean, 1.8 * idle.Get(kCostSeqPage).mean);
  EXPECT_LT(mpl4.Get(kCostSeqPage).mean, 3.2 * idle.Get(kCostSeqPage).mean);
  // CPU on the 2-core PC1 oversubscribes at MPL 4 as well.
  EXPECT_GT(mpl4.Get(kCostTuple).mean, 1.3 * idle.Get(kCostTuple).mean);
  // Variances inflate too (the distribution changes, not just the mean).
  EXPECT_GT(mpl4.Get(kCostSeqPage).variance, idle.Get(kCostSeqPage).variance);
}

TEST(Concurrency, MplAwareUnitsPredictMplWorkloads) {
  // A synthetic "query" with known counters: the MPL-aware units must
  // predict its MPL-4 latency far better than the idle units do.
  SimulatedMachine machine(MachineProfile::PC1(), 10);
  Calibrator calibrator(&machine);
  const CostUnits idle = calibrator.CalibrateAt(1);
  const CostUnits busy = calibrator.CalibrateAt(4);

  ResourceVector work;
  work.ns = 2000;
  work.nt = 80000;
  work.no = 120000;
  const double actual = machine.ExecuteAveraged({work}, 60, 4);
  auto predict = [&work](const CostUnits& units) {
    return units.MeanDot(work.ns, work.nr, work.nt, work.ni, work.no);
  };
  const double err_busy = std::fabs(predict(busy) - actual) / actual;
  const double err_idle = std::fabs(predict(idle) - actual) / actual;
  EXPECT_LT(err_busy, 0.25);
  EXPECT_GT(err_idle, 2.0 * err_busy);
}

TEST(Concurrency, InvalidMplRejected) {
  SimulatedMachine machine(MachineProfile::PC1(), 11);
  EXPECT_DEATH(machine.ExecuteOnce({ResourceVector{}}, 0), "concurrency");
}

}  // namespace
}  // namespace uqp
