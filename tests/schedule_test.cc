// Scheduling scenario suite: policy unit tests on hand-constructed
// Gaussians (the documented admission eps boundary, the risky-query
// ordering flip), the exact-vs-naive "both meet" tail probability, and
// the simulator determinism contract — same seed + policy must produce a
// byte-identical event log at every service thread count and on reruns
// (the scheduling analogue of parallel_parity_test; the no-real-clock /
// no-unseeded-randomness source rules are enforced on src/schedule/ by
// tools/determinism_lint.py, which runs as its own ctest entry).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "cost/calibration.h"
#include "datagen/tpch.h"
#include "hw/machine.h"
#include "math/gaussian.h"
#include "sampling/sample_db.h"
#include "schedule/policy.h"
#include "schedule/simulator.h"

namespace uqp {
namespace {

// ---------------------------------------------------------------------------
// Policy unit tests (pure, hand-constructed inputs).
// ---------------------------------------------------------------------------

ScheduledJob MakeJob(uint64_t id, double mean, double stddev, double arrival,
                     double deadline, double cost = 0.0) {
  ScheduledJob j;
  j.id = id;
  j.arrival_ms = arrival;
  j.deadline_ms = deadline;
  j.predicted_ms = Gaussian(mean, stddev * stddev);
  j.optimizer_cost = cost;
  return j;
}

TEST(AdmissionPolicy, DistributionFlipsAtEpsBoundary) {
  // Documented boundary: admit iff P(t <= budget) >= 1 - eps. With
  // t ~ N(100, 10^2) and eps = 0.1 the boundary budget is
  // 100 + z_0.9 * 10; nudging the budget one part in 10^6 of a stddev
  // across the boundary must flip the decision.
  AdmissionPolicy policy{AdmissionPolicyKind::kDistribution, 0.1, 1.0};
  const ScheduledJob job = MakeJob(0, 100.0, 10.0, 0.0, 0.0);
  const double boundary = 100.0 + NormalQuantile(0.9) * 10.0;
  EXPECT_TRUE(policy.Admits(job, boundary + 1e-6 * 10.0));
  EXPECT_FALSE(policy.Admits(job, boundary - 1e-6 * 10.0));

  // Tightening eps at a fixed budget flips the same job: the budget that
  // satisfies eps = 0.1 fails eps = 0.05.
  AdmissionPolicy tighter{AdmissionPolicyKind::kDistribution, 0.05, 1.0};
  EXPECT_FALSE(tighter.Admits(job, boundary + 1e-6 * 10.0));
}

TEST(AdmissionPolicy, MeanOnlyIgnoresVariance) {
  AdmissionPolicy policy{AdmissionPolicyKind::kMeanOnly, 0.1, 1.0};
  // A coin-flip query (mean right at the budget, huge variance) is
  // admitted by the mean-only rule no matter the risk...
  const ScheduledJob risky = MakeJob(0, 100.0, 80.0, 0.0, 0.0);
  EXPECT_TRUE(policy.Admits(risky, 100.0));
  EXPECT_FALSE(policy.Admits(risky, 99.9999));
  // ...while the distribution policy rejects it at any meaningful eps.
  AdmissionPolicy dist{AdmissionPolicyKind::kDistribution, 0.1, 1.0};
  EXPECT_FALSE(dist.Admits(risky, 100.0));
}

TEST(AdmissionPolicy, CostOnlyUsesScaledCost) {
  AdmissionPolicy policy{AdmissionPolicyKind::kCostOnly, 0.1, 2.0};
  ScheduledJob job = MakeJob(0, 1.0, 0.0, 0.0, 0.0, /*cost=*/50.0);
  // 50 cost units * 2 ms/unit = 100 ms demand; the prediction (1 ms) is
  // deliberately ignored by this baseline.
  EXPECT_TRUE(policy.Admits(job, 100.0));
  EXPECT_FALSE(policy.Admits(job, 99.9));
}

TEST(OrderingPolicy, RiskAdjustedFlipsVsExpectedSlackOnRiskyJob) {
  // The paper's risky-query case (query_scheduler example): job a has
  // LESS expected slack but is nearly deterministic; job b has more
  // expected slack but is so noisy that its risk-adjusted slack is
  // negative. Expected-slack runs a first; risk-adjusted runs b first.
  const ScheduledJob a = MakeJob(0, 80.0, 1.0, 0.0, 100.0);   // slack 20
  const ScheduledJob b = MakeJob(1, 70.0, 30.0, 1.0, 100.0);  // slack 30
  const std::vector<ScheduledJob> queue = {a, b};

  OrderingPolicy expected{OrderingPolicyKind::kExpectedSlack, 0.05};
  EXPECT_EQ(PickNext(expected, queue, 0.0), 0u);

  OrderingPolicy risk{OrderingPolicyKind::kRiskAdjustedSlack, 0.05};
  // a: 20 - 1.645 * 1 ~ 18.4;  b: 30 - 1.645 * 30 ~ -19.3  -> b first.
  EXPECT_EQ(PickNext(risk, queue, 0.0), 1u);

  OrderingPolicy fifo{OrderingPolicyKind::kFifo, 0.05};
  EXPECT_EQ(PickNext(fifo, queue, 0.0), 0u);
}

TEST(OrderingPolicy, PickNextBreaksTiesById) {
  // Identical keys: the lower id wins regardless of queue layout, so
  // dispatch order is a total order (the determinism contract's
  // tie-break rule).
  const ScheduledJob a = MakeJob(7, 50.0, 5.0, 0.0, 100.0);
  const ScheduledJob b = MakeJob(3, 50.0, 5.0, 0.0, 100.0);
  OrderingPolicy risk{OrderingPolicyKind::kRiskAdjustedSlack, 0.1};
  const std::vector<ScheduledJob> ab = {a, b};
  const std::vector<ScheduledJob> ba = {b, a};
  EXPECT_EQ(ab[PickNext(risk, ab, 0.0)].id, 3u);
  EXPECT_EQ(ba[PickNext(risk, ba, 0.0)].id, 3u);
}

// ---------------------------------------------------------------------------
// Ordered-sum tail probability: exact quadrature vs closed-form limits and
// the documented bias of the naive product approximation. (The Monte-Carlo
// oracle comparison lives in property_test.)
// ---------------------------------------------------------------------------

TEST(BothMeetProb, MatchesClosedFormWhenFirstDeadlineIsSlack) {
  // If a's deadline is far beyond its support, conditioning on {A <= da}
  // is vacuous and P(both) collapses to P(A + B <= db).
  const Gaussian a(100.0, 400.0), b(50.0, 100.0);
  const double da = 100.0 + 10.0 * 20.0;  // +10 sigma
  const double db = 160.0;
  const double exact = PairBothMeetProb(a, da, b, db);
  const double closed = NormalCdf(db, 150.0, 500.0);
  EXPECT_NEAR(exact, closed, 1e-6);
}

TEST(BothMeetProb, NaiveProductUnderestimates) {
  // With a's deadline binding, {A <= da} and {A + B <= db} are positively
  // correlated through A and the product is a strict underestimate.
  const Gaussian a(100.0, 400.0), b(50.0, 100.0);
  const double da = 110.0, db = 160.0;
  const double exact = PairBothMeetProb(a, da, b, db);
  const double naive = NaiveBothMeetProb(a, da, b, db);
  EXPECT_GT(exact, naive + 1e-3);
  EXPECT_GT(exact, 0.0);
  EXPECT_LT(exact, 1.0);
}

TEST(BothMeetProb, HandlesDegenerateVariances) {
  // Point-mass A: either fits its deadline (then P = Phi_B) or not (0).
  const Gaussian a(100.0, 0.0), b(50.0, 100.0);
  EXPECT_NEAR(PairBothMeetProb(a, 100.0, b, 160.0),
              NormalCdf(160.0, 150.0, 100.0), 1e-12);
  EXPECT_EQ(PairBothMeetProb(a, 99.0, b, 1e9), 0.0);
  // Point-mass B inside the integrand (step cdf).
  const Gaussian pb(50.0, 0.0);
  const double p = PairBothMeetProb(Gaussian(100.0, 400.0), 110.0, pb, 160.0);
  EXPECT_GT(p, 0.0);
  EXPECT_LE(p, 1.0);
}

// ---------------------------------------------------------------------------
// Simulator determinism: byte-identical event logs across service thread
// counts and reruns, on a real scenario driving the real service.
// ---------------------------------------------------------------------------

class ScheduleSimTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database(MakeTpchDatabase(TpchConfig::Profile("tiny")));
    SampleOptions sample_options;
    sample_options.sampling_ratio = 0.05;
    samples_ = new SampleDb(SampleDb::Build(*db_, sample_options));
    SimulatedMachine machine(MachineProfile::PC1(), 17);
    Calibrator calibrator(&machine);
    units_ = new CostUnits(calibrator.Calibrate());

    SimulatedMachine scenario_machine(MachineProfile::PC1(), 29);
    ScenarioOptions opts;
    opts.workload = "seljoin";
    opts.trace = "poisson";
    opts.mix = "zipf";
    opts.zipf_z = 1.0;
    opts.num_jobs = 48;
    opts.servers = 2;
    opts.load = 0.9;
    opts.seed = 5;
    scenario_ = new ScheduleScenario(
        BuildScenario(*db_, *samples_, *units_, &scenario_machine, opts));
  }

  static void TearDownTestSuite() {
    delete scenario_;
    delete units_;
    delete samples_;
    delete db_;
    scenario_ = nullptr;
    units_ = nullptr;
    samples_ = nullptr;
    db_ = nullptr;
  }

  static ServiceOptions Options(int threads) {
    ServiceOptions o;
    o.predictor.num_threads = threads;
    o.predictor.max_batch_size = 0;
    o.feedback.enabled = true;
    return o;
  }

  static SimPolicy DistPolicy() {
    SimPolicy p;
    p.admission = {AdmissionPolicyKind::kDistribution, 0.15, 1.0};
    p.ordering = {OrderingPolicyKind::kRiskAdjustedSlack, 0.15};
    return p;
  }

  static Database* db_;
  static SampleDb* samples_;
  static CostUnits* units_;
  static ScheduleScenario* scenario_;
};

Database* ScheduleSimTest::db_ = nullptr;
SampleDb* ScheduleSimTest::samples_ = nullptr;
CostUnits* ScheduleSimTest::units_ = nullptr;
ScheduleScenario* ScheduleSimTest::scenario_ = nullptr;

TEST_F(ScheduleSimTest, EventLogByteIdenticalAtEveryThreadCount) {
  // The virtual clock advances only on scenario events and the service's
  // predictions are bit-identical at any thread count, so the full
  // decision trace must be byte-equal — one worker, four workers, and a
  // rerun of the same simulator. A real-time read or an
  // iteration-order dependence anywhere in the loop would diverge here.
  const SimPolicy policy = DistPolicy();
  std::vector<std::vector<uint8_t>> logs;
  for (int threads : {1, 2, 4}) {
    Simulator sim(db_, samples_, *units_, Options(threads));
    logs.push_back(sim.Run(*scenario_, policy).event_log);
  }
  ASSERT_FALSE(logs[0].empty());
  EXPECT_EQ(logs[0], logs[1]);
  EXPECT_EQ(logs[0], logs[2]);

  Simulator again(db_, samples_, *units_, Options(1));
  const SimResult r1 = again.Run(*scenario_, policy);
  const SimResult r2 = again.Run(*scenario_, policy);
  EXPECT_EQ(r1.event_log, r2.event_log);
  EXPECT_EQ(EventLogHash(r1.event_log), EventLogHash(r2.event_log));
}

TEST_F(ScheduleSimTest, MetricsAreConsistentAndFeedbackFlows) {
  Simulator sim(db_, samples_, *units_, Options(2));
  const SimResult r = sim.Run(*scenario_, DistPolicy());
  const SimMetrics& m = r.metrics;
  EXPECT_EQ(m.arrivals, scenario_->arrival_ms.size());
  EXPECT_EQ(m.admitted + m.rejected, m.arrivals);
  EXPECT_EQ(m.completed, m.admitted);
  EXPECT_LE(m.violations, m.admitted);
  EXPECT_EQ(m.admission_checks, m.arrivals);
  EXPECT_EQ(m.dispatch_decisions, m.admitted);
  // Every admitted job's observed runtime was reported against its
  // decision-time prediction (none dropped: observations are positive
  // and the comparison point is caller-supplied).
  EXPECT_EQ(r.service_stats.feedback_reports, m.admitted);
  EXPECT_EQ(r.service_stats.feedback_dropped, 0u);
  // The recurring zipf mix must hit the cache: far fewer sample runs
  // than predictions.
  EXPECT_EQ(r.service_stats.predictions, m.arrivals);
  EXPECT_LT(r.service_stats.sample_runs, m.arrivals / 2);
}

TEST_F(ScheduleSimTest, PoliciesDivergeOnTheSameScenario) {
  // Sanity that the policy axis matters at all: on a contended scenario
  // the three admission controllers must not make identical decisions.
  Simulator sim(db_, samples_, *units_, Options(2));
  SimPolicy mean;
  mean.admission = {AdmissionPolicyKind::kMeanOnly, 0.15, 1.0};
  mean.ordering = {OrderingPolicyKind::kExpectedSlack, 0.15};
  const SimResult rd = sim.Run(*scenario_, DistPolicy());
  const SimResult rm = sim.Run(*scenario_, mean);
  // Which jobs each policy admits (and in what order it dispatches them)
  // must differ — byte-equal traces would mean the distribution changed
  // nothing. Exact counts are scenario-dependent (queue composition
  // feeds back into later budgets), so only divergence is asserted.
  EXPECT_NE(rd.event_log, rm.event_log);
  EXPECT_GT(rd.metrics.admitted, 0u);
  EXPECT_GT(rm.metrics.admitted, 0u);
}

}  // namespace
}  // namespace uqp
