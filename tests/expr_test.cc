// Tests for the predicate expression language.

#include <gtest/gtest.h>

#include <limits>

#include "engine/expr.h"

namespace uqp {
namespace {

std::vector<Value> Row(int64_t a, double b, const std::string& s) {
  return {Value::Int64(a), Value::Double(b), Value::String(s)};
}

bool Eval(const ExprPtr& e, const std::vector<Value>& row) {
  return EvalPredicate(*e, RowRef{row.data(), static_cast<int>(row.size())});
}

TEST(Expr, NumericComparisons) {
  const auto row = Row(5, 2.5, "x");
  EXPECT_TRUE(Eval(Expr::Cmp(0, CmpOp::kEq, Value::Int64(5)), row));
  EXPECT_FALSE(Eval(Expr::Cmp(0, CmpOp::kNe, Value::Int64(5)), row));
  EXPECT_TRUE(Eval(Expr::Cmp(0, CmpOp::kLt, Value::Int64(6)), row));
  EXPECT_TRUE(Eval(Expr::Cmp(0, CmpOp::kLe, Value::Int64(5)), row));
  EXPECT_TRUE(Eval(Expr::Cmp(0, CmpOp::kGt, Value::Int64(4)), row));
  EXPECT_TRUE(Eval(Expr::Cmp(0, CmpOp::kGe, Value::Int64(5)), row));
  EXPECT_TRUE(Eval(Expr::Cmp(1, CmpOp::kLt, Value::Double(3.0)), row));
}

TEST(Expr, CrossTypeNumericComparison) {
  const auto row = Row(5, 5.0, "x");
  EXPECT_TRUE(Eval(Expr::Cmp(0, CmpOp::kEq, Value::Double(5.0)), row));
  EXPECT_TRUE(Eval(Expr::Cmp(1, CmpOp::kEq, Value::Int64(5)), row));
}

TEST(Expr, StringEquality) {
  const auto row = Row(1, 1.0, "BUILDING");
  EXPECT_TRUE(Eval(Expr::StrEq(2, "BUILDING"), row));
  EXPECT_FALSE(Eval(Expr::StrEq(2, "AUTOMOBILE"), row));
  EXPECT_TRUE(Eval(Expr::Cmp(2, CmpOp::kNe, Value::String("AUTOMOBILE")), row));
}

TEST(Expr, ColumnColumnComparison) {
  const auto row = Row(3, 4.0, "x");
  EXPECT_TRUE(Eval(Expr::CmpColumns(0, CmpOp::kLt, 1), row));
  EXPECT_FALSE(Eval(Expr::CmpColumns(0, CmpOp::kGe, 1), row));
  EXPECT_TRUE(Eval(Expr::CmpColumns(1, CmpOp::kGt, 0), row));
  EXPECT_FALSE(Eval(Expr::CmpColumns(0, CmpOp::kEq, 1), row));
}

TEST(Expr, BooleanConnectives) {
  const auto row = Row(5, 2.5, "x");
  const auto t = Expr::Cmp(0, CmpOp::kEq, Value::Int64(5));
  const auto f = Expr::Cmp(0, CmpOp::kEq, Value::Int64(6));
  EXPECT_TRUE(Eval(Expr::And(t, t), row));
  EXPECT_FALSE(Eval(Expr::And(t, f), row));
  EXPECT_TRUE(Eval(Expr::Or(t, f), row));
  EXPECT_FALSE(Eval(Expr::Or(f, f), row));
  EXPECT_TRUE(Eval(Expr::Not(f), row));
  EXPECT_FALSE(Eval(Expr::Not(t), row));
}

TEST(Expr, AndWithNullBranchesCollapses) {
  const auto t = Expr::Cmp(0, CmpOp::kEq, Value::Int64(5));
  EXPECT_EQ(Expr::And(nullptr, t), t);
  EXPECT_EQ(Expr::And(t, nullptr), t);
}

TEST(Expr, Between) {
  const auto row = Row(5, 2.5, "x");
  EXPECT_TRUE(Eval(Expr::Between(0, Value::Int64(5), Value::Int64(7)), row));
  EXPECT_TRUE(Eval(Expr::Between(0, Value::Int64(3), Value::Int64(5)), row));
  EXPECT_FALSE(Eval(Expr::Between(0, Value::Int64(6), Value::Int64(7)), row));
}

TEST(Expr, PredicateOpCount) {
  EXPECT_EQ(PredicateOpCount(nullptr), 0);
  const auto c = Expr::Cmp(0, CmpOp::kEq, Value::Int64(1));
  EXPECT_EQ(PredicateOpCount(c.get()), 1);
  EXPECT_EQ(PredicateOpCount(Expr::And(c, c).get()), 2);
  EXPECT_EQ(PredicateOpCount(Expr::Not(Expr::Or(c, Expr::And(c, c))).get()), 3);
  EXPECT_EQ(PredicateOpCount(Expr::CmpColumns(0, CmpOp::kLt, 1).get()), 1);
}

TEST(Expr, ShiftColumns) {
  const auto e = Expr::And(Expr::Cmp(1, CmpOp::kEq, Value::Int64(9)),
                           Expr::CmpColumns(0, CmpOp::kLt, 2));
  const auto shifted = ShiftColumns(e, 10);
  EXPECT_EQ(shifted->lhs->column, 11);
  EXPECT_EQ(shifted->rhs->column, 10);
  EXPECT_EQ(shifted->rhs->column2, 12);
  // Original untouched.
  EXPECT_EQ(e->lhs->column, 1);
}

TEST(Expr, TryExtractRangePure) {
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  const auto e = Expr::Between(3, Value::Double(2.0), Value::Double(8.0));
  EXPECT_TRUE(TryExtractRange(e.get(), 3, &lo, &hi));
  EXPECT_DOUBLE_EQ(lo, 2.0);
  EXPECT_DOUBLE_EQ(hi, 8.0);
}

TEST(Expr, TryExtractRangeStrictBoundsUseNextafter) {
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  const auto e = Expr::And(Expr::Cmp(0, CmpOp::kGt, Value::Double(1.0)),
                           Expr::Cmp(0, CmpOp::kLt, Value::Double(2.0)));
  EXPECT_TRUE(TryExtractRange(e.get(), 0, &lo, &hi));
  EXPECT_GT(lo, 1.0);
  EXPECT_LT(hi, 2.0);
}

TEST(Expr, TryExtractRangeRejectsOtherColumns) {
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  const auto e = Expr::And(Expr::Cmp(0, CmpOp::kGe, Value::Double(1.0)),
                           Expr::Cmp(1, CmpOp::kLe, Value::Double(2.0)));
  EXPECT_FALSE(TryExtractRange(e.get(), 0, &lo, &hi));
}

TEST(Expr, CollectIndexRangeResidual) {
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  bool has_range = false, pure = true;
  // Range on col 0 plus a string-eq residual on col 2.
  const auto e = Expr::And(Expr::Between(0, Value::Double(3.0), Value::Double(9.0)),
                           Expr::StrEq(2, "FOO"));
  CollectIndexRange(e.get(), 0, &lo, &hi, &has_range, &pure);
  EXPECT_TRUE(has_range);
  EXPECT_FALSE(pure);
  EXPECT_DOUBLE_EQ(lo, 3.0);
  EXPECT_DOUBLE_EQ(hi, 9.0);
}

TEST(Expr, CollectIndexRangePureWhenOnlyRange) {
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  bool has_range = false, pure = true;
  const auto e = Expr::Between(1, Value::Double(0.0), Value::Double(1.0));
  CollectIndexRange(e.get(), 1, &lo, &hi, &has_range, &pure);
  EXPECT_TRUE(has_range);
  EXPECT_TRUE(pure);
}

TEST(Expr, CollectIndexRangeNoRange) {
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  bool has_range = false, pure = true;
  const auto e = Expr::StrEq(2, "FOO");
  CollectIndexRange(e.get(), 0, &lo, &hi, &has_range, &pure);
  EXPECT_FALSE(has_range);
  EXPECT_FALSE(pure);
}

TEST(Expr, CollectIndexRangeOrIsResidual) {
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  bool has_range = false, pure = true;
  const auto range = Expr::Cmp(0, CmpOp::kLe, Value::Double(5.0));
  const auto ored = Expr::Or(Expr::Cmp(0, CmpOp::kLe, Value::Double(1.0)),
                             Expr::Cmp(0, CmpOp::kGe, Value::Double(9.0)));
  CollectIndexRange(Expr::And(range, ored).get(), 0, &lo, &hi, &has_range, &pure);
  EXPECT_TRUE(has_range);
  EXPECT_FALSE(pure);
  EXPECT_DOUBLE_EQ(hi, 5.0);  // only the conjunct range tightened
}

TEST(Expr, ToStringRendersReadably) {
  Schema schema({{"a", ValueType::kInt64}, {"b", ValueType::kInt64}});
  const auto e = Expr::And(Expr::Cmp(0, CmpOp::kLe, Value::Int64(9)),
                           Expr::CmpColumns(0, CmpOp::kLt, 1));
  EXPECT_EQ(e->ToString(&schema), "(a <= 9 AND a < b)");
}

}  // namespace
}  // namespace uqp
