// Tests for the experiment harness plumbing and the table printer.

#include <gtest/gtest.h>

#include "exp/harness.h"
#include "exp/tableio.h"

namespace uqp {
namespace {

TEST(TableIo, FmtPrecision) {
  EXPECT_EQ(Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Fmt(3.0, 0), "3");
  EXPECT_EQ(Fmt(-0.5, 1), "-0.5");
}

TEST(TableIo, PrinterHandlesRaggedRows) {
  TablePrinter table({"a", "bb"});
  table.AddRow({"1"});
  table.AddRow({"22", "333"});
  // Just exercise rendering; must not crash on short rows.
  testing::internal::CaptureStdout();
  table.Print();
  const std::string out = testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("| a  | bb  |"), std::string::npos);
  EXPECT_NE(out.find("333"), std::string::npos);
}

TEST(Harness, DbLabelReflectsOptions) {
  HarnessOptions uniform;
  uniform.profile = "tiny";
  EXPECT_EQ(ExperimentHarness(uniform).db_label(), "uniform-tiny");
  HarnessOptions skewed;
  skewed.profile = "tiny";
  skewed.zipf = 1.0;
  EXPECT_EQ(ExperimentHarness(skewed).db_label(), "skewed-tiny");
}

TEST(Harness, WorkloadLoadIsIdempotent) {
  HarnessOptions options;
  options.profile = "tiny";
  ExperimentHarness harness(options);
  ASSERT_TRUE(harness.LoadWorkload("micro", 8).ok());
  // Second load with a different hint is a no-op (cached).
  ASSERT_TRUE(harness.LoadWorkload("micro", 100).ok());
  auto result = harness.Evaluate("micro", "PC1", 0.1);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->records.size(), 8u);
}

TEST(Harness, CachedArtifactsGiveIdenticalRepeatEvaluations) {
  HarnessOptions options;
  options.profile = "tiny";
  ExperimentHarness harness(options);
  ASSERT_TRUE(harness.LoadWorkload("micro", 8).ok());
  auto a = harness.Evaluate("micro", "PC1", 0.1);
  auto b = harness.Evaluate("micro", "PC1", 0.1);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t i = 0; i < a->records.size(); ++i) {
    EXPECT_DOUBLE_EQ(a->records[i].outcome.predicted_mean,
                     b->records[i].outcome.predicted_mean);
    EXPECT_DOUBLE_EQ(a->records[i].outcome.actual_time,
                     b->records[i].outcome.actual_time);
  }
}

TEST(Harness, VariantRecomputationSharesActualTimes) {
  HarnessOptions options;
  options.profile = "tiny";
  ExperimentHarness harness(options);
  ASSERT_TRUE(harness.LoadWorkload("micro", 8).ok());
  auto all = harness.Evaluate("micro", "PC2", 0.1, PredictorVariant::kAll);
  auto ablated = harness.Evaluate("micro", "PC2", 0.1, PredictorVariant::kNoVarC);
  ASSERT_TRUE(all.ok() && ablated.ok());
  for (size_t i = 0; i < all->records.size(); ++i) {
    EXPECT_DOUBLE_EQ(all->records[i].outcome.actual_time,
                     ablated->records[i].outcome.actual_time);
  }
}

TEST(Harness, UnknownWorkloadFails) {
  HarnessOptions options;
  options.profile = "tiny";
  ExperimentHarness harness(options);
  EXPECT_DEATH((void)harness.LoadWorkload("bogus"), "unknown workload");
}

TEST(Harness, UnknownMachineDies) {
  HarnessOptions options;
  options.profile = "tiny";
  ExperimentHarness harness(options);
  ASSERT_TRUE(harness.LoadWorkload("micro", 4).ok());
  EXPECT_DEATH((void)harness.Evaluate("micro", "PC9", 0.1), "unknown machine");
}

}  // namespace
}  // namespace uqp
