// Fixture: point lookups and size checks on unordered containers are
// order-insensitive and must NOT be flagged — only *iteration* is banned.
// Expected: clean.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

double Lookup(const std::unordered_map<uint64_t, double>& weights,
              uint64_t key) {
  auto it = weights.find(key);
  return it == weights.end() ? 0.0 : it->second;
}

bool Contains(const std::unordered_set<int>& seen, int x) {
  return seen.count(x) > 0;
}

size_t Cardinality(const std::unordered_map<uint64_t, double>& weights) {
  return weights.size();
}

}  // namespace fixture
