// Fixture: iterating an unordered container in output-producing code must
// be flagged — range-for and explicit .begin()/.cbegin() forms.
// Expected findings: unordered-iteration (x3).
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

std::vector<uint64_t> EmitKeys(
    const std::unordered_map<uint64_t, double>& weights) {
  std::unordered_map<uint64_t, double> scaled = weights;
  std::vector<uint64_t> out;
  for (const auto& [key, w] : scaled) {  // hash-seed-dependent order
    if (w > 0.0) out.push_back(key);
  }
  return out;
}

double FirstElement(const std::unordered_set<int>& seen) {
  std::unordered_set<int> pinned = seen;
  auto it = pinned.begin();  // "first" depends on the hash seed
  double front = static_cast<double>(*it);
  for (auto jt = pinned.cbegin(); jt != pinned.cend(); ++jt) {
    front += 0.5 * static_cast<double>(*jt);  // order-sensitive fp sum
  }
  return front;
}

}  // namespace fixture
