// Fixture: ordered containers keyed on pointers iterate in
// allocation-address order, which differs run to run under ASLR.
// Expected findings: pointer-key (x2).
#include <map>
#include <set>
#include <string>

namespace fixture {

struct Node {
  std::string name;
};

std::map<const Node*, double> g_costs;   // address-ordered
std::set<Node*> g_visited;               // address-ordered

}  // namespace fixture
