// Fixture: iteration over ordered/sequence containers is deterministic and
// must NOT be flagged — including value-keyed std::map/std::set.
// Expected: clean.
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace fixture {

double SumInKeyOrder(const std::map<std::string, double>& by_name) {
  double total = 0.0;
  for (const auto& [name, v] : by_name) {
    (void)name;
    total += v;
  }
  return total;
}

uint64_t FirstId(const std::set<uint64_t>& ids) { return *ids.begin(); }

int SumVector(const std::vector<int>& xs) {
  int total = 0;
  for (auto it = xs.begin(); it != xs.end(); ++it) total += *it;
  return total;
}

}  // namespace fixture
