// Fixture: seeded, substreamed randomness is the sanctioned pattern and
// must NOT be flagged — only unseeded sources (random_device, rand) are.
// Expected: clean.
#include <cstdint>
#include <random>

namespace fixture {

double SeededDraw(uint64_t seed, uint64_t substream) {
  std::mt19937_64 gen(seed * 0x9e3779b97f4a7c15ULL + substream);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(gen);
}

}  // namespace fixture
