// Fixture: std::sort without a det-lint waiver must be flagged — on equal
// keys its output permutation is implementation-defined, and a
// thread-count-dependent input order launders straight through it.
// Expected findings: unwaived-sort (x2).
#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

namespace fixture {

void OrderByScore(std::vector<std::pair<double, uint64_t>>* rows) {
  std::sort(rows->begin(), rows->end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
}

void StableButLaundering(std::vector<double>* xs) {
  std::stable_sort(xs->begin(), xs->end());
}

}  // namespace fixture
