// Fixture: a waiver whose construct was deleted (or that was misplaced)
// must be flagged so waivers stay honest.
// Expected findings: stale-waiver.
#include <vector>

namespace fixture {

int Sum(const std::vector<int>& xs) {
  int total = 0;
  // det-lint: fixed-shape
  for (int x : xs) total += x;
  return total;
}

}  // namespace fixture
