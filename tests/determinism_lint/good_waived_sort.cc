// Fixture: waived sorts pass — tag on the same line or the line above.
// Expected: clean.
#include <algorithm>
#include <cstdint>
#include <vector>

namespace fixture {

void SortLeafBlock(std::vector<uint32_t>* order) {
  // Block boundaries depend only on batch size; rid tie-break totalizes.
  // det-lint: fixed-shape
  std::sort(order->begin(), order->end());
}

void CanonicalizeSamples(std::vector<double>* samples) {
  std::sort(samples->begin(), samples->end());  // det-lint: sorted-output
}

}  // namespace fixture
