// Fixture: a waiver must name its reason — a bare tagless waiver comment
// suppresses the underlying finding but is itself flagged.
// Expected findings: untagged-waiver.
#include <algorithm>
#include <vector>

namespace fixture {

void SortSomething(std::vector<int>* xs) {
  // det-lint:
  std::sort(xs->begin(), xs->end());
}

}  // namespace fixture
