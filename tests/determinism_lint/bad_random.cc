// Fixture: unseeded randomness on a contract path must be flagged.
// Expected findings: banned-random (x3).
#include <cstdlib>
#include <random>

namespace fixture {

double DrawNoise() {
  std::random_device rd;  // nondeterministic seed source
  return static_cast<double>(rd());
}

int LegacyDraw() { return rand() % 100; }

void SeedFromNowhere() { srand(42); }

}  // namespace fixture
