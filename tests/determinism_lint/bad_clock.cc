// Fixture: wall/steady clock reads on a contract path must be flagged.
// Expected findings: banned-clock (x3).
#include <chrono>
#include <ctime>

namespace fixture {

long WallSeconds() { return time(nullptr); }

long CpuTicks() { return clock(); }

double MonotonicMs() {
  auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t.time_since_epoch())
      .count();
}

}  // namespace fixture
