// Fixture: a seed-derived fault schedule in the style of
// src/service/fault.cc. All randomness flows through a splitmix64-style
// pure mix of (seed, fingerprint, attempt) — no std::random_device, no
// clock reads — and the unordered attempt map is only serialized after a
// canonicalizing sort. Must lint clean.
#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace fixture {

// Pure function of its inputs: the same (seed, fingerprint, attempt)
// always draws the same value, regardless of thread count or wall time.
inline uint64_t Mix(uint64_t seed, uint64_t fingerprint, uint64_t attempt) {
  uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (fingerprint + 1) + attempt;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline double UnitDraw(uint64_t seed, uint64_t fingerprint, uint64_t attempt) {
  return static_cast<double>(Mix(seed, fingerprint, attempt) >> 11) *
         (1.0 / 9007199254740992.0);
}

inline bool ScheduleAt(uint64_t seed, uint64_t fingerprint, uint64_t attempt,
                       double fail_prob) {
  return UnitDraw(seed, fingerprint, attempt) < fail_prob;
}

// Point lookups into an unordered map are order-independent and fine.
inline uint64_t AttemptCount(
    const std::unordered_map<uint64_t, uint64_t>& attempts, uint64_t fp) {
  const auto it = attempts.find(fp);
  return it == attempts.end() ? 0 : it->second;
}

// Serialization canonicalizes the hash-order contents by sorting before
// any byte is emitted, so the output is independent of iteration order.
inline std::string ScheduleBytes(
    const std::unordered_map<uint64_t, uint64_t>& attempts, uint64_t seed,
    double fail_prob) {
  std::vector<std::pair<uint64_t, uint64_t>> rows(
      attempts.begin(), attempts.end());  // det-lint: sorted-output
  std::sort(rows.begin(), rows.end());    // det-lint: sorted-output
  std::string out;
  for (const auto& row : rows) {
    for (uint64_t a = 0; a < row.second; ++a) {
      out.push_back(ScheduleAt(seed, row.first, a, fail_prob) ? 'F' : '.');
    }
  }
  return out;
}

}  // namespace fixture
