// Fixture: banned constructs inside comments and string literals must NOT
// be flagged — the linter strips both before matching.
// Expected: clean.
//
// This comment mentions std::random_device, rand(), time(nullptr),
// std::chrono::steady_clock::now() and std::sort — none of which executes.
#include <string>
#include <unordered_map>

namespace fixture {

/* Block comments too: for (const auto& kv : some_unordered_map) {} */

std::string Describe() {
  return "calls rand() and time() and iterates an unordered_map.begin()";
}

const char* kHint = "std::sort(v.begin(), v.end())";

}  // namespace fixture
