// Admission control with SLA deadlines (paper §6.5.3, the ActiveSLA
// motivation) — now a thin wrapper over the scheduling scenario suite in
// src/schedule/: the deterministic SLO simulator replays a seeded poisson
// query stream with tight deadlines against two server slots, and the
// distribution-aware admission policy (admit iff P(t <= budget) >= 1-eps)
// is compared against the mean-only baseline on the same scenario.
//
// The heavy lifting — arrival traces, deadline assignment, pre-drawn true
// runtimes, the event loop, the backlog-aware budget — lives in
// schedule/simulator.cc and is CI-gated by bench_schedule_sim; this
// example just runs one scenario and prints the comparison.
//
//   build/examples/admission_control

#include <cstdio>

#include "cost/calibration.h"
#include "datagen/tpch.h"
#include "hw/machine.h"
#include "sampling/sample_db.h"
#include "schedule/simulator.h"

using namespace uqp;

int main() {
  Database db = MakeTpchDatabase(TpchConfig::Profile("tiny"));
  SimulatedMachine machine(MachineProfile::PC2(), 11);
  Calibrator calibrator(&machine);
  const CostUnits units = calibrator.Calibrate();
  SampleOptions sample_options;
  sample_options.sampling_ratio = 0.05;
  const SampleDb samples = SampleDb::Build(db, sample_options);

  ScenarioOptions opts;
  opts.workload = "seljoin";
  opts.trace = "poisson";
  opts.mix = "roundrobin";
  opts.num_jobs = 120;
  opts.servers = 2;
  opts.load = 0.9;
  opts.seed = 7;
  const ScheduleScenario scenario =
      BuildScenario(db, samples, units, &machine, opts);

  ServiceOptions service_options;
  service_options.predictor.num_threads = 0;
  service_options.predictor.max_batch_size = 0;
  service_options.feedback.enabled = true;
  Simulator sim(&db, &samples, units, service_options);

  const double kEps = 0.15;
  SimPolicy dist;
  dist.admission = {AdmissionPolicyKind::kDistribution, kEps, 1.0};
  dist.ordering = {OrderingPolicyKind::kRiskAdjustedSlack, kEps};
  SimPolicy mean;
  mean.admission = {AdmissionPolicyKind::kMeanOnly, kEps, 1.0};
  mean.ordering = {OrderingPolicyKind::kExpectedSlack, kEps};

  const SimResult rd = sim.Run(scenario, dist);
  const SimResult rm = sim.Run(scenario, mean);

  std::printf("admission control on a poisson stream (%zu queries, %d "
              "slots, load %.0f%%, eps %.2f):\n\n",
              opts.num_jobs, opts.servers, 100.0 * opts.load, kEps);
  auto show = [](const char* name, const SimMetrics& m) {
    std::printf("  %-13s admitted %3llu, SLA violations %3llu (%.1f%%), "
                "goodput %.2f met/s, wasted %.0f ms\n", name,
                (unsigned long long)m.admitted,
                (unsigned long long)m.violations, 100.0 * m.violation_rate,
                m.goodput_per_s, m.wasted_ms);
  };
  show("distribution", rd.metrics);
  show("mean-only", rm.metrics);

  std::printf("\nThe distribution-aware policy declines the queries whose "
              "deadline is a coin flip, cutting violations and wasted "
              "server time.\n");
  std::printf("\nservice: %llu predictions, %llu sample runs, %llu cache "
              "hits, %llu feedback reports\n",
              (unsigned long long)rd.service_stats.predictions,
              (unsigned long long)rd.service_stats.sample_runs,
              (unsigned long long)rd.service_stats.cache_hits,
              (unsigned long long)rd.service_stats.feedback_reports);
  return 0;
}
