// Admission control with SLA deadlines (paper §6.5.3, the ActiveSLA
// motivation): a database-as-a-service provider should only admit a query
// if it is likely to finish within its deadline.
//
// A point-estimate policy admits whenever E[t] <= deadline — it cannot
// tell a safe bet from a coin flip. The distribution-aware policy admits
// when P(t <= deadline) >= confidence, trading a few conservative
// rejections for far fewer SLA violations on the risky queries.
//
//   build/examples/admission_control

#include <cstdio>
#include <future>
#include <string>
#include <utility>
#include <vector>

#include "cost/calibration.h"
#include "datagen/tpch.h"
#include "engine/planner.h"
#include "hw/machine.h"
#include "sampling/sample_db.h"
#include "service/prediction_service.h"
#include "workload/common.h"

using namespace uqp;

int main() {
  Database db = MakeTpchDatabase(TpchConfig::Profile("1gb"));
  SimulatedMachine machine(MachineProfile::PC2(), 11);
  Calibrator calibrator(&machine);
  const CostUnits units = calibrator.Calibrate();
  SampleOptions sample_options;
  sample_options.sampling_ratio = 0.05;
  const SampleDb samples = SampleDb::Build(db, sample_options);
  // Queries arrive one at a time, but the admission decision is only due
  // when the query reaches the head of the queue: PredictAsync lets the
  // prediction run on the service's worker pool while the query waits, so
  // prediction latency overlaps with queueing instead of preceding it.
  // Concurrent arrivals of the same recurring query share one sample run
  // through the service's in-flight dedup table. Admission latency is
  // per-query, so intra-query parallelism matters here: with
  // predictor.num_threads = 0 (hardware concurrency) a cold prediction
  // arriving at an idle service shards its sample run across the pool
  // instead of being bound to one core — bit-identical results, lower
  // time-to-decision. max_batch_size = 0 sizes morsels from each plan's
  // sample cardinalities, so the small samples here run without chunk
  // dispatch overhead.
  ServiceOptions service_options;
  service_options.predictor.num_threads = 0;
  service_options.predictor.max_batch_size = 0;
  PredictionService service(&db, &samples, units, service_options);
  Executor executor(&db);

  // A mixed workload of 36 selection-join queries.
  SelJoinOptions wopts;
  wopts.instances_per_template = 4;
  auto queries = MakeSelJoinWorkload(db, wopts);

  const double kConfidence = 0.9;
  struct Tally {
    int admitted = 0;
    int violations = 0;  // admitted but missed the deadline
    int rejected_ok = 0; // rejected although it would have met the deadline
  } point, dist;

  // Arrival: optimize and enqueue every query, kicking off its prediction
  // asynchronously the moment the plan exists. PredictAsync interns its
  // own copy of the plan, so the plan can be moved into the queue (or
  // destroyed outright) right after the call — no careful build-the-
  // vector-first dance to keep references stable.
  std::vector<std::pair<std::string, Plan>> admitted_queue;
  std::vector<std::future<StatusOr<Prediction>>> pending;
  admitted_queue.reserve(queries.size());
  pending.reserve(queries.size());
  for (auto& q : queries) {
    auto plan_or = OptimizePlan(std::move(q.logical), db);
    if (!plan_or.ok()) continue;
    Plan plan = std::move(plan_or).value();
    pending.push_back(service.PredictAsync(plan));
    admitted_queue.emplace_back(q.name, std::move(plan));
  }

  std::printf("%-18s %9s %9s %9s  %-8s %-8s\n", "query", "E[t] ms", "sd ms",
              "actual", "point", "dist");
  // Dispatch: each query reaches the queue head with its prediction
  // (usually) already finished; the future hands it over.
  for (size_t qi = 0; qi < admitted_queue.size(); ++qi) {
    const std::string& name = admitted_queue[qi].first;
    const Plan& plan = admitted_queue[qi].second;
    auto pred_or = pending[qi].get();
    if (!pred_or.ok()) continue;
    const Prediction& pred = *pred_or;

    // Deadline: 1.15x the predicted mean — tight enough that outcome
    // depends on the uncertainty, as SLAs in practice are priced tightly.
    const double deadline = 1.15 * pred.mean();

    const bool point_admits = pred.mean() <= deadline;  // always true here
    const bool dist_admits = pred.ProbBelow(deadline) >= kConfidence;

    auto full = executor.Execute(plan, ExecOptions{});
    if (!full.ok()) continue;
    const double actual = machine.ExecuteOnce(*full);
    const bool met = actual <= deadline;

    auto update = [met](Tally* t, bool admits) {
      if (admits) {
        ++t->admitted;
        if (!met) ++t->violations;
      } else if (met) {
        ++t->rejected_ok;
      }
    };
    update(&point, point_admits);
    update(&dist, dist_admits);

    std::printf("%-18s %9.1f %9.1f %9.1f  %-8s %-8s%s\n", name.c_str(),
                pred.mean(), pred.stddev(), actual,
                point_admits ? "admit" : "reject",
                dist_admits ? "admit" : "reject", met ? "" : "  << missed");
  }

  std::printf("\npolicy comparison (deadline = 1.15 x E[t], confidence %.0f%%):\n",
              100.0 * kConfidence);
  std::printf("  point estimate : admitted %2d, SLA violations %2d\n",
              point.admitted, point.violations);
  std::printf("  distribution   : admitted %2d, SLA violations %2d, "
              "conservative rejections %d\n",
              dist.admitted, dist.violations, dist.rejected_ok);
  std::printf("\nThe distribution-aware policy declines the high-variance "
              "queries whose deadline is a coin flip, cutting violations.\n");

  const ServiceStats stats = service.stats();
  std::printf("\nservice: %llu predictions (async), %llu sample runs, "
              "%llu cache hits (%llu joined in-flight)\n",
              static_cast<unsigned long long>(stats.predictions),
              static_cast<unsigned long long>(stats.sample_runs),
              static_cast<unsigned long long>(stats.cache_hits),
              static_cast<unsigned long long>(stats.inflight_joins));
  return 0;
}
