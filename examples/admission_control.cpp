// Admission control with SLA deadlines (paper §6.5.3, the ActiveSLA
// motivation): a database-as-a-service provider should only admit a query
// if it is likely to finish within its deadline.
//
// A point-estimate policy admits whenever E[t] <= deadline — it cannot
// tell a safe bet from a coin flip. The distribution-aware policy admits
// when P(t <= deadline) >= confidence, trading a few conservative
// rejections for far fewer SLA violations on the risky queries.
//
//   build/examples/admission_control

#include <cstdio>
#include <vector>

#include "cost/calibration.h"
#include "datagen/tpch.h"
#include "engine/planner.h"
#include "hw/machine.h"
#include "sampling/sample_db.h"
#include "service/prediction_service.h"
#include "workload/common.h"

using namespace uqp;

int main() {
  Database db = MakeTpchDatabase(TpchConfig::Profile("1gb"));
  SimulatedMachine machine(MachineProfile::PC2(), 11);
  Calibrator calibrator(&machine);
  const CostUnits units = calibrator.Calibrate();
  SampleOptions sample_options;
  sample_options.sampling_ratio = 0.05;
  const SampleDb samples = SampleDb::Build(db, sample_options);
  // Admission decisions arrive one query at a time, so this example uses
  // the service's single-plan path; the fingerprint cache still makes
  // recurring queries nearly free to re-evaluate.
  PredictionService service(&db, &samples, units);
  Executor executor(&db);

  // A mixed workload of 36 selection-join queries.
  SelJoinOptions wopts;
  wopts.instances_per_template = 4;
  auto queries = MakeSelJoinWorkload(db, wopts);

  const double kConfidence = 0.9;
  struct Tally {
    int admitted = 0;
    int violations = 0;  // admitted but missed the deadline
    int rejected_ok = 0; // rejected although it would have met the deadline
  } point, dist;

  std::printf("%-18s %9s %9s %9s  %-8s %-8s\n", "query", "E[t] ms", "sd ms",
              "actual", "point", "dist");
  for (auto& q : queries) {
    auto plan_or = OptimizePlan(std::move(q.logical), db);
    if (!plan_or.ok()) continue;
    const Plan plan = std::move(plan_or).value();
    auto pred_or = service.Predict(plan);
    if (!pred_or.ok()) continue;
    const Prediction& pred = *pred_or;

    // Deadline: 1.15x the predicted mean — tight enough that outcome
    // depends on the uncertainty, as SLAs in practice are priced tightly.
    const double deadline = 1.15 * pred.mean();

    const bool point_admits = pred.mean() <= deadline;  // always true here
    const bool dist_admits = pred.ProbBelow(deadline) >= kConfidence;

    auto full = executor.Execute(plan, ExecOptions{});
    if (!full.ok()) continue;
    const double actual = machine.ExecuteOnce(*full);
    const bool met = actual <= deadline;

    auto update = [met](Tally* t, bool admits) {
      if (admits) {
        ++t->admitted;
        if (!met) ++t->violations;
      } else if (met) {
        ++t->rejected_ok;
      }
    };
    update(&point, point_admits);
    update(&dist, dist_admits);

    std::printf("%-18s %9.1f %9.1f %9.1f  %-8s %-8s%s\n", q.name.c_str(),
                pred.mean(), pred.stddev(), actual,
                point_admits ? "admit" : "reject",
                dist_admits ? "admit" : "reject", met ? "" : "  << missed");
  }

  std::printf("\npolicy comparison (deadline = 1.15 x E[t], confidence %.0f%%):\n",
              100.0 * kConfidence);
  std::printf("  point estimate : admitted %2d, SLA violations %2d\n",
              point.admitted, point.violations);
  std::printf("  distribution   : admitted %2d, SLA violations %2d, "
              "conservative rejections %d\n",
              dist.admitted, dist.violations, dist.rejected_ok);
  std::printf("\nThe distribution-aware policy declines the high-variance "
              "queries whose deadline is a coin flip, cutting violations.\n");

  const ServiceStats stats = service.stats();
  std::printf("\nservice: %llu predictions, %llu sample runs, %llu cache hits\n",
              static_cast<unsigned long long>(stats.predictions),
              static_cast<unsigned long long>(stats.sample_runs),
              static_cast<unsigned long long>(stats.cache_hits));
  return 0;
}
