// Least-expected-cost (LEC) plan selection (paper §6.5.1, after Chu,
// Halpern, Seshadri: "Least expected cost query optimization: an exercise
// in utility", PODS 1999): choose plans by EXPECTED UTILITY under the
// predicted running-time distribution instead of by the utility of the
// point estimate.
//
// Utility model: an SLA that charges the running time plus a penalty if
// the query misses its deadline,
//     cost(t) = t + P * 1[t > D].
// A point-estimate optimizer scores a plan as  mu + P * 1[mu > D]  — it
// sees no risk as long as the mean sneaks under the deadline. The LEC
// optimizer scores  mu + P * Pr(T > D)  using the predicted distribution,
// and walks away from high-variance plans whose mean looks fine.
//
//   build/examples/lec_optimizer

#include <cstdio>
#include <string>
#include <vector>

#include "core/predictor.h"
#include "cost/calibration.h"
#include "datagen/tpch.h"
#include "engine/planner.h"
#include "hw/machine.h"
#include "sampling/sample_db.h"
#include "workload/common.h"

using namespace uqp;

int main() {
  Database db = MakeTpchDatabase(TpchConfig::Profile("1gb"));
  SimulatedMachine machine(MachineProfile::PC1(), 17);
  Calibrator calibrator(&machine);
  const CostUnits units = calibrator.Calibrate();
  // A small sample: wide selectivity distributions make risky plans risky.
  SampleOptions so;
  so.sampling_ratio = 0.05;
  const SampleDb samples = SampleDb::Build(db, so);
  Predictor predictor(&db, &samples, units);
  Executor executor(&db);

  Rng rng(29);
  ConstantPicker pick(&db, &rng);

  double point_utility = 0.0, lec_utility = 0.0, oracle_utility = 0.0;
  int decisions = 0, flips = 0;
  std::printf("%-9s %22s %22s %10s %6s   (flipped rows only)\n", "sel",
              "seq mu/sd (ms)", "index mu/sd (ms)", "choice p/l", "flip");
  for (int i = 0; i < 60; ++i) {
    // Random targets concentrated around the seq/index crossover, where
    // the choice is genuinely uncertain.
    const double frac = pick.LogUniform(0.001, 0.02);
    ExprPtr pred = pick.LessEqAtFraction("lineitem", "l_shipdate", frac);

    struct Candidate {
      std::string name;
      Plan plan;
      Gaussian time;
      std::vector<double> runs;  // repeated actual executions
    };
    std::vector<Candidate> candidates;
    {
      Candidate seq;
      seq.name = "seq";
      seq.plan = Plan(MakeSeqScan("lineitem", pred));
      Candidate idx;
      idx.name = "index";
      idx.plan = Plan(MakeIndexScan("lineitem", 10 /* l_shipdate */, pred));
      candidates.push_back(std::move(seq));
      candidates.push_back(std::move(idx));
    }
    bool ok = true;
    for (Candidate& c : candidates) {
      if (!c.plan.Finalize(db).ok()) {
        ok = false;
        break;
      }
      auto prediction = predictor.Predict(c.plan);
      auto full = executor.Execute(c.plan, ExecOptions{});
      if (!prediction.ok() || !full.ok()) {
        ok = false;
        break;
      }
      c.time = prediction->distribution();
      for (int run = 0; run < 25; ++run) {
        c.runs.push_back(machine.ExecuteOnce(*full));
      }
    }
    if (!ok) continue;

    // SLA: deadline anchored on the predictable sequential plan (a tenant
    // SLA negotiated against known full-scan behaviour); miss penalty 10x.
    const double deadline = 1.2 * candidates[0].time.mean;
    const double penalty = 10.0 * deadline;

    auto point_score = [&](const Candidate& c) {
      return c.time.mean + (c.time.mean > deadline ? penalty : 0.0);
    };
    auto lec_score = [&](const Candidate& c) {
      const double p_miss =
          1.0 - NormalCdf(deadline, c.time.mean, c.time.variance);
      return c.time.mean + penalty * p_miss;
    };
    // Realized SLA cost averaged over repeated executions, so the penalty
    // probability materializes instead of being a single coin flip.
    auto realized = [&](const Candidate& c) {
      double acc = 0.0;
      for (double t : c.runs) acc += t + (t > deadline ? penalty : 0.0);
      return acc / static_cast<double>(c.runs.size());
    };

    const Candidate& point_pick =
        point_score(candidates[0]) <= point_score(candidates[1]) ? candidates[0]
                                                                 : candidates[1];
    const Candidate& lec_pick =
        lec_score(candidates[0]) <= lec_score(candidates[1]) ? candidates[0]
                                                             : candidates[1];
    const Candidate& oracle_pick =
        realized(candidates[0]) <= realized(candidates[1]) ? candidates[0]
                                                           : candidates[1];
    point_utility += realized(point_pick);
    lec_utility += realized(lec_pick);
    oracle_utility += realized(oracle_pick);
    ++decisions;
    const bool flip = point_pick.name != lec_pick.name;
    if (flip) ++flips;
    char seq_buf[32], idx_buf[32];
    std::snprintf(seq_buf, sizeof(seq_buf), "%.0f/%.0f", candidates[0].time.mean,
                  candidates[0].time.stddev());
    std::snprintf(idx_buf, sizeof(idx_buf), "%.0f/%.0f", candidates[1].time.mean,
                  candidates[1].time.stddev());
    if (flip) {
      std::printf("%-9.4f %22s %22s %5s/%-5s %6s\n", frac, seq_buf, idx_buf,
                  point_pick.name.c_str(), lec_pick.name.c_str(), "FLIP");
    }
  }

  std::printf("\n%d plan choices, %d flipped by pricing in the distribution\n",
              decisions, flips);
  std::printf("realized SLA cost: point-estimate %.0f, LEC %.0f, oracle %.0f\n",
              point_utility, lec_utility, oracle_utility);
  std::printf(
      "\nLEC scores a plan by mu + penalty * Pr(T > deadline) — the utility-"
      "based optimization the paper's distributions enable (S6.5.1). The "
      "flipped rows are risk-averse choices: LEC pays a small premium (the "
      "safe plan's extra mean cost) to buy out of the penalty tail. Whether "
      "that insurance is worth it depends on how heavy the tail really is "
      "relative to the predictor's calibration; compare the three totals "
      "above, and try a larger penalty or a smaller sampling ratio to make "
      "the insurance pay.\n");
  return 0;
}
