// Quickstart: predict a query's running-time *distribution*.
//
// The paper's pitch in 60 lines: instead of a single point estimate, the
// predictor returns N(E[t], Var[t]) — "with probability 70%, the running
// time should be between lo and hi".
//
//   build/examples/quickstart

#include <cstdio>

#include "core/explain.h"
#include "core/predictor.h"
#include "cost/calibration.h"
#include "datagen/tpch.h"
#include "engine/planner.h"
#include "hw/machine.h"
#include "sampling/sample_db.h"
#include "workload/common.h"

using namespace uqp;

int main() {
  // 1. A database. Here: the TPC-H-like generator at a small scale.
  Database db = MakeTpchDatabase(TpchConfig::Profile("1gb"));
  std::printf("database: lineitem has %lld rows\n",
              static_cast<long long>(db.GetTable("lineitem").num_rows()));

  // 2. A machine. The simulated hardware stands in for the paper's PC1;
  //    calibration queries estimate the five cost units as DISTRIBUTIONS.
  SimulatedMachine machine(MachineProfile::PC1(), /*seed=*/42);
  Calibrator calibrator(&machine);
  const CostUnits units = calibrator.Calibrate();
  std::printf("\ncalibrated cost units:\n%s", units.ToString().c_str());

  // 3. Offline sample tables (5%% of each relation).
  SampleOptions sample_options;
  sample_options.sampling_ratio = 0.05;
  const SampleDb samples = SampleDb::Build(db, sample_options);

  // 4. A query: lineitem join orders with two filters, planned physically.
  Rng rng(7);
  ConstantPicker pick(&db, &rng);
  JoinChainBuilder chain(&db);
  chain
      .Start("lineitem", pick.LessEqAtFraction("lineitem", "l_shipdate", 0.35))
      .Join("orders", pick.LessEqAtFraction("orders", "o_totalprice", 0.6),
            {{"lineitem.l_orderkey", "o_orderkey"}});
  auto plan_or = OptimizePlan(chain.Finish(), db);
  if (!plan_or.ok()) {
    std::fprintf(stderr, "planning failed: %s\n", plan_or.status().ToString().c_str());
    return 1;
  }
  const Plan plan = std::move(plan_or).value();
  std::printf("\nphysical plan:\n%s", plan.ToString().c_str());

  // 5. Predict the distribution of likely running times.
  Predictor predictor(&db, &samples, units);
  auto pred_or = predictor.Predict(plan);
  if (!pred_or.ok()) {
    std::fprintf(stderr, "prediction failed: %s\n", pred_or.status().ToString().c_str());
    return 1;
  }
  const Prediction& pred = *pred_or;
  std::printf("\npredicted running time: %.1f ms (sd %.1f ms)\n", pred.mean(),
              pred.stddev());
  for (double level : {0.5, 0.7, 0.95}) {
    double lo = 0.0, hi = 0.0;
    pred.ConfidenceInterval(level, &lo, &hi);
    std::printf("  with probability %2.0f%%: between %8.1f and %8.1f ms\n",
                100.0 * level, lo, hi);
  }
  std::printf("  variance decomposition: cost units %.0f%%, selectivities "
              "%.0f%%, covariance bounds %.0f%%\n",
              100.0 * pred.breakdown.var_cost_units / pred.breakdown.variance,
              100.0 * pred.breakdown.var_selectivity / pred.breakdown.variance,
              100.0 * pred.breakdown.var_cov_bounds / pred.breakdown.variance);

  // 6. EXPLAIN-style decomposition: where the time and uncertainty live.
  std::printf("\n%s", RenderExplain(plan, pred, units).c_str());

  // 7. Compare against actually "running" the query (paper protocol:
  //    average of 5 runs).
  Executor executor(&db);
  auto full = executor.Execute(plan, ExecOptions{});
  if (!full.ok()) {
    std::fprintf(stderr, "execution failed\n");
    return 1;
  }
  const double actual = machine.ExecuteAveraged(*full, 5);
  std::printf("\nactual running time:    %.1f ms  (%.2f predicted sd from the "
              "mean)\n",
              actual, std::fabs(actual - pred.mean()) / pred.stddev());
  return 0;
}
