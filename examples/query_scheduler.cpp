// Distribution-based query scheduling (paper §6.5.3, the motivation from
// Chi et al., "Distribution-based query scheduling", PVLDB 2013) — now a
// thin wrapper over the policy library in src/schedule/.
//
// Two queries compete for one server and each has a deadline. With only
// point estimates the scheduler orders by expected slack; with
// distributions it can order by the probability of meeting both deadlines
// under either order — which flips the decision when one query is risky.
//
// The joint probability comes from PairBothMeetProb (exact 1-d quadrature
// of the ordered-sum tail). This example's previous local helper
// multiplied P(A <= da) * P(A+B <= db), silently assuming the two events
// are independent and ignoring that conditioning on {A <= da} truncates
// A's contribution to the sum — a systematic underestimate that can flip
// close calls. That approximation now lives, documented and tested
// against a Monte-Carlo oracle, as NaiveBothMeetProb in the policy
// library; the difference is printed here.
//
//   build/examples/query_scheduler

#include <algorithm>
#include <cstdio>
#include <future>
#include <vector>

#include "cost/calibration.h"
#include "datagen/tpch.h"
#include "engine/planner.h"
#include "hw/machine.h"
#include "sampling/sample_db.h"
#include "schedule/policy.h"
#include "service/prediction_service.h"
#include "workload/common.h"

using namespace uqp;

namespace {

struct Job {
  std::string name;
  Gaussian time;     // predicted distribution (ms)
  double deadline;   // ms from now
  double actual;     // ms, one simulated run
};

}  // namespace

int main() {
  Database db = MakeTpchDatabase(TpchConfig::Profile("1gb"));
  SimulatedMachine machine(MachineProfile::PC1(), 23);
  Calibrator calibrator(&machine);
  const CostUnits units = calibrator.Calibrate();
  SampleOptions sample_options;
  sample_options.sampling_ratio = 0.05;
  const SampleDb samples = SampleDb::Build(db, sample_options);
  // PredictAsync owns a registry copy of each plan, so the plans vector
  // may reallocate while the worker pool predicts; repeated plans share
  // one sample run through the in-flight dedup table, and predictions are
  // bit-identical to a sequential run at any thread count.
  ServiceOptions service_options;
  service_options.predictor.num_threads = 0;
  service_options.predictor.max_batch_size = 0;
  PredictionService service(&db, &samples, units, service_options);
  Executor executor(&db);

  // Build a pool of candidate jobs from the SELJOIN workload.
  SelJoinOptions wopts;
  wopts.instances_per_template = 3;
  auto queries = MakeSelJoinWorkload(db, wopts);
  std::vector<Plan> plans;
  std::vector<std::string> names;
  std::vector<std::future<StatusOr<Prediction>>> pending;
  for (auto& q : queries) {
    auto plan_or = OptimizePlan(std::move(q.logical), db);
    if (!plan_or.ok()) continue;
    pending.push_back(service.PredictAsync(plan_or.value()));
    plans.push_back(std::move(plan_or).value());
    names.push_back(q.name);
  }

  std::vector<Job> jobs;
  Rng rng(5);
  for (size_t i = 0; i < plans.size(); ++i) {
    auto pred_or = pending[i].get();
    if (!pred_or.ok()) continue;
    auto full = executor.Execute(plans[i], ExecOptions{});
    if (!full.ok()) continue;
    Job job;
    job.name = names[i];
    job.time = pred_or->distribution();
    job.actual = machine.ExecuteOnce(*full);
    jobs.push_back(job);
  }

  // Pair the riskiest job with the safest, second riskiest with second
  // safest, and so on — the mix where distributional information matters.
  std::sort(jobs.begin(), jobs.end(), [](const Job& x, const Job& y) {
    return x.time.stddev() / x.time.mean > y.time.stddev() / y.time.mean;
  });
  std::vector<Job> paired;
  for (size_t i = 0, j = jobs.size(); i + 1 < j--; ++i) {
    paired.push_back(jobs[i]);
    paired.push_back(jobs[j]);
  }
  jobs = std::move(paired);

  // Deadlines are "time from now", so whichever job runs second must also
  // absorb its partner's running time — that is where order matters.
  for (size_t i = 0; i + 1 < jobs.size(); i += 2) {
    Job& a = jobs[i];
    Job& b = jobs[i + 1];
    a.deadline = a.time.mean * 1.3 + b.time.mean * (0.9 * rng.NextDouble());
    b.deadline = b.time.mean * 1.3 + a.time.mean * (0.9 * rng.NextDouble());
  }

  // Compare scheduling policies pair by pair.
  int decisions = 0, flips = 0, naive_flips = 0;
  int mean_meets = 0, dist_meets = 0;
  std::printf("%-34s %10s %10s  %s\n", "pair", "P(mean order)",
              "P(best order)", "decision");
  for (size_t i = 0; i + 1 < jobs.size(); i += 2) {
    Job a = jobs[i];
    Job b = jobs[i + 1];
    ++decisions;

    // Point-estimate policy: earliest-expected-slack first.
    const bool mean_a_first =
        (a.deadline - a.time.mean) <= (b.deadline - b.time.mean);
    const Job& m1 = mean_a_first ? a : b;
    const Job& m2 = mean_a_first ? b : a;

    // Distribution policy: maximize the exact P(both meet).
    const double p_ab =
        PairBothMeetProb(a.time, a.deadline, b.time, b.deadline);
    const double p_ba =
        PairBothMeetProb(b.time, b.deadline, a.time, a.deadline);
    const bool dist_a_first = p_ab >= p_ba;
    const Job& d1 = dist_a_first ? a : b;
    const Job& d2 = dist_a_first ? b : a;

    // The historical product approximation, for contrast: does its bias
    // flip this pair's decision?
    const bool naive_a_first =
        NaiveBothMeetProb(a.time, a.deadline, b.time, b.deadline) >=
        NaiveBothMeetProb(b.time, b.deadline, a.time, a.deadline);
    if (naive_a_first != dist_a_first) ++naive_flips;

    if (mean_a_first != dist_a_first) ++flips;

    // Outcome under each order (actual times).
    auto meets = [](const Job& x, const Job& y) {
      return (x.actual <= x.deadline ? 1 : 0) +
             (x.actual + y.actual <= y.deadline ? 1 : 0);
    };
    mean_meets += meets(m1, m2);
    dist_meets += meets(d1, d2);

    std::printf("%-34s %10.3f %10.3f  %s\n",
                (a.name + "+" + b.name).c_str(),
                mean_a_first ? p_ab : p_ba, std::max(p_ab, p_ba),
                mean_a_first == dist_a_first ? "same order" : "ORDER FLIPPED");
  }

  std::printf("\n%d scheduling decisions, %d flipped by distributional "
              "information\n", decisions, flips);
  std::printf("deadlines met: point-estimate order %d, distribution order %d "
              "(of %d)\n", mean_meets, dist_meets, 2 * decisions);
  std::printf("naive product approximation would have flipped %d of %d "
              "decisions vs the exact tail probability\n",
              naive_flips, decisions);
  return 0;
}
