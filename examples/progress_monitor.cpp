// Uncertainty-aware query progress indication (paper §6.5.2): a progress
// indicator that calls the predictor for the REMAINING work of a running
// query and reports error bars, not just a percentage.
//
// We simulate a pipeline of operators executing one at a time; at each
// checkpoint the remaining-time distribution comes from re-assembling the
// prediction over the not-yet-finished operators.
//
//   build/examples/progress_monitor

#include <cstdio>
#include <vector>

#include "core/predictor.h"
#include "cost/calibration.h"
#include "datagen/tpch.h"
#include "engine/planner.h"
#include "hw/machine.h"
#include "sampling/sample_db.h"
#include "workload/common.h"

using namespace uqp;

int main() {
  Database db = MakeTpchDatabase(TpchConfig::Profile("1gb"));
  SimulatedMachine machine(MachineProfile::PC1(), 31);
  Calibrator calibrator(&machine);
  const CostUnits units = calibrator.Calibrate();
  SampleOptions sample_options;
  sample_options.sampling_ratio = 0.05;
  const SampleDb samples = SampleDb::Build(db, sample_options);

  // A 4-table join: lineitem x orders x customer x nation.
  Rng rng(3);
  ConstantPicker pick(&db, &rng);
  JoinChainBuilder chain(&db);
  chain.Start("lineitem", pick.LessEqAtFraction("lineitem", "l_shipdate", 0.4))
      .Join("orders", nullptr, {{"lineitem.l_orderkey", "o_orderkey"}})
      .Join("customer", nullptr, {{"orders.o_custkey", "c_custkey"}})
      .Join("nation", nullptr, {{"customer.c_nationkey", "n_nationkey"}});
  auto plan_or = OptimizePlan(chain.Finish(), db);
  if (!plan_or.ok()) return 1;
  const Plan plan = std::move(plan_or).value();

  Predictor predictor(&db, &samples, units);
  auto pred_or = predictor.Predict(plan);
  Executor executor(&db);
  auto full_or = executor.Execute(plan, ExecOptions{});
  if (!pred_or.ok() || !full_or.ok()) return 1;
  const Prediction& pred = *pred_or;
  const ExecResult& full = *full_or;

  // Per-operator predicted time shares from the fitted cost functions.
  const int nops = plan.num_operators();
  std::vector<double> op_pred(nops, 0.0);
  for (const OperatorCostFunctions& ocf : pred.cost_functions()) {
    const auto& est = pred.estimates();
    const auto g = [&est](int var) {
      return var >= 0 ? est.ops[static_cast<size_t>(var)].AsGaussian()
                      : Gaussian(1.0, 0.0);
    };
    double t = 0.0;
    for (int u = 0; u < kNumCostUnits; ++u) {
      t += ocf.funcs[u]
               .Distribution(g(ocf.var_own), g(ocf.var_left), g(ocf.var_right))
               .mean *
           units.Get(u).mean;
    }
    op_pred[static_cast<size_t>(ocf.node_id)] = t;
  }
  double total_pred = 0.0;
  for (double t : op_pred) total_pred += t;

  // Simulate execution operator by operator (leaf-to-root order = reverse
  // id order in our preorder numbering) and report progress + remaining
  // time with error bars at each checkpoint.
  std::printf("query plan:\n%s\n", plan.ToString().c_str());
  std::printf("predicted total: %.1f ms (sd %.1f)\n\n", pred.mean(), pred.stddev());
  std::printf("%-28s %9s %14s %22s\n", "checkpoint", "progress",
              "elapsed (ms)", "remaining (ms, 90% CI)");

  const auto nodes = plan.NodesPreorder();
  double elapsed = 0.0;
  double done_pred = 0.0;
  for (int id = nops - 1; id >= 0; --id) {
    // "Run" operator id on the machine.
    elapsed += machine.ExecuteOnce({full.ops[static_cast<size_t>(id)].actual});
    done_pred += op_pred[static_cast<size_t>(id)];

    // Remaining distribution: scale the full prediction to the share of
    // predicted work left (a simple but honest remaining-work model).
    const double share_left =
        total_pred > 0.0 ? 1.0 - done_pred / total_pred : 0.0;
    const Gaussian remaining(pred.mean() * share_left,
                             pred.breakdown.variance * share_left * share_left);
    const double z = NormalQuantile(0.95);
    const double lo = std::max(0.0, remaining.mean - z * remaining.stddev());
    const double hi = remaining.mean + z * remaining.stddev();

    const PlanNode* node = nodes[static_cast<size_t>(id)];
    char label[64];
    std::snprintf(label, sizeof(label), "%s done",
                  OpTypeName(node->type));
    std::printf("%-28s %8.0f%% %14.1f %10.1f [%7.1f, %8.1f]\n", label,
                100.0 * (1.0 - share_left), elapsed, remaining.mean, lo, hi);
  }
  std::printf("\nactual total: %.1f ms — a naive indicator would only ever "
              "say 'between 0%% and 100%%' (paper §6.5.2); the predictor "
              "narrows the remaining-time band as work completes.\n", elapsed);
  return 0;
}
