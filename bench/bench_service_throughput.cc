// Service-layer throughput: single sequential predictions (the seed's
// monolithic Predictor path, one sample run per call) versus the staged
// PredictionService with batched execution, fingerprint dedup and
// sample-run caching.
//
// The workload models a multi-user admission path: a stream of queries in
// which each distinct plan recurs a few times (recurring dashboards /
// templated queries), which is exactly where the service's fingerprint
// cache converts repeated sample runs into cheap fit/combine stages.
//
//   build/bench/bench_service_throughput

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "core/predictor.h"
#include "cost/calibration.h"
#include "datagen/tpch.h"
#include "engine/planner.h"
#include "hw/machine.h"
#include "sampling/sample_db.h"
#include "service/prediction_service.h"
#include "workload/common.h"

using namespace uqp;

namespace {

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  Database db = MakeTpchDatabase(TpchConfig::Profile("tiny"));
  SimulatedMachine machine(MachineProfile::PC1(), 23);
  Calibrator calibrator(&machine);
  const CostUnits units = calibrator.Calibrate();
  SampleOptions sample_options;
  sample_options.sampling_ratio = 0.05;
  const SampleDb samples = SampleDb::Build(db, sample_options);

  // Distinct plans from the SELJOIN templates...
  SelJoinOptions wopts;
  wopts.instances_per_template = 2;
  auto queries = MakeSelJoinWorkload(db, wopts);
  std::vector<Plan> distinct;
  for (auto& q : queries) {
    auto plan_or = OptimizePlan(std::move(q.logical), db);
    if (plan_or.ok()) distinct.push_back(std::move(plan_or).value());
  }
  // ... each recurring kRepeats times, interleaved round-robin.
  const int kRepeats = 4;
  std::vector<const Plan*> stream;
  for (int r = 0; r < kRepeats; ++r) {
    for (const Plan& p : distinct) stream.push_back(&p);
  }
  std::printf("workload: %zu predictions (%zu distinct plans x %d repeats)\n\n",
              stream.size(), distinct.size(), kRepeats);

  const int kReps = 3;

  // --- baseline: sequential single-plan Predict, no service layer -------
  // One full pipeline run (sample + fit + combine) per prediction.
  double seq_ms = 0.0;
  {
    Predictor predictor(&db, &samples, units);
    for (int rep = 0; rep < kReps; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      for (const Plan* p : stream) {
        auto pred = predictor.Predict(*p);
        if (!pred.ok()) {
          std::fprintf(stderr, "predict failed: %s\n",
                       pred.status().ToString().c_str());
          return 1;
        }
      }
      seq_ms += MsSince(t0);
    }
    seq_ms /= kReps;
  }

  // --- service: PredictBatch, cold cache each rep -----------------------
  // Fingerprint dedup means each distinct plan samples once per rep.
  double batch_ms = 0.0;
  {
    for (int rep = 0; rep < kReps; ++rep) {
      PredictionService service(&db, &samples, units);
      const auto t0 = std::chrono::steady_clock::now();
      const auto results = service.PredictBatch(stream);
      batch_ms += MsSince(t0);
      for (const auto& r : results) {
        if (!r.ok()) {
          std::fprintf(stderr, "batch predict failed: %s\n",
                       r.status().ToString().c_str());
          return 1;
        }
      }
    }
    batch_ms /= kReps;
  }

  // --- service: hot cache (recurring plans already sampled) -------------
  double hot_ms = 0.0;
  {
    PredictionService service(&db, &samples, units);
    auto warm = service.PredictBatch(stream);  // populate the cache
    for (int rep = 0; rep < kReps; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      const auto results = service.PredictBatch(stream);
      hot_ms += MsSince(t0);
      for (const auto& r : results) {
        if (!r.ok()) return 1;
      }
    }
    hot_ms /= kReps;
  }

  // --- service: contended recurring-query storm via PredictAsync --------
  // Every request in the stream is submitted at once against a cold
  // service, the way concurrent arrivals of recurring dashboard queries
  // hit an admission path. The in-flight dedup table must collapse the
  // storm to ONE stage-1 execution per distinct fingerprint — every other
  // request rides the winner's shared future or the cache.
  double storm_ms = 0.0;
  uint64_t storm_runs = 0, storm_joins = 0, storm_hits = 0;
  bool dedup_ok = true;
  {
    for (int rep = 0; rep < kReps; ++rep) {
      PredictionService service(&db, &samples, units);
      const auto t0 = std::chrono::steady_clock::now();
      std::vector<std::future<StatusOr<Prediction>>> futures;
      futures.reserve(stream.size());
      for (const Plan* p : stream) futures.push_back(service.PredictAsync(*p));
      for (auto& f : futures) {
        auto r = f.get();
        if (!r.ok()) {
          std::fprintf(stderr, "async predict failed: %s\n",
                       r.status().ToString().c_str());
          return 1;
        }
      }
      storm_ms += MsSince(t0);
      const ServiceStats st = service.stats();
      storm_runs += st.sample_runs;
      storm_joins += st.inflight_joins;
      storm_hits += st.cache_hits;
      dedup_ok = dedup_ok && st.sample_runs == distinct.size();
    }
    storm_ms /= kReps;
  }

  // --- lifetime gate: drop-plan-early PredictAsync storm ----------------
  // Every submission's Plan is a clone destroyed the moment PredictAsync
  // returns — the fire-and-forget contract. The service must predict from
  // its registry clones (one per distinct plan, interned across the
  // storm), satisfy every future, and drain the registry afterwards.
  double drop_ms = 0.0;
  uint64_t drop_runs = 0, drop_clones = 0;
  bool drop_ok = true;
  {
    for (int rep = 0; rep < kReps; ++rep) {
      PredictionService service(&db, &samples, units);
      const auto t0 = std::chrono::steady_clock::now();
      std::vector<std::future<StatusOr<Prediction>>> futures;
      futures.reserve(stream.size());
      for (const Plan* p : stream) {
        Plan doomed = p->Clone();
        futures.push_back(service.PredictAsync(doomed));
      }  // doomed destroyed here, long before most workers run
      for (auto& f : futures) {
        auto r = f.get();
        if (!r.ok()) {
          std::fprintf(stderr, "drop-plan predict failed: %s\n",
                       r.status().ToString().c_str());
          drop_ok = false;
        }
      }
      drop_ms += MsSince(t0);
      const ServiceStats st = service.stats();
      drop_runs += st.sample_runs;
      drop_clones += st.plan_clones;
      // The registry drains per-request, so a repeat submitted after its
      // predecessor already completed legitimately re-clones: clones land
      // between one per distinct plan (fully overlapped storm) and one
      // per request (fully sequential), never more.
      drop_ok = drop_ok && st.sample_runs == distinct.size() &&
                st.plan_clones >= distinct.size() &&
                st.plan_clones <= stream.size() &&
                service.plan_registry_size() == 0;
    }
    drop_ms /= kReps;
  }

  // --- pool-progress gate: dedup losers must not block workers ----------
  // The winner of a same-fingerprint storm is gated mid-stages on one of
  // TWO workers. The losers must park continuations and return the second
  // worker to the pool, so unrelated predictions keep flowing while the
  // winner is gated; if any loser sat in future::get(), the pool would be
  // dead and the unrelated futures below would time out.
  bool progress_ok = true;
  {
    ServiceOptions o;
    o.num_workers = 2;
    std::mutex mu;
    std::condition_variable cv;
    bool winner_parked = false;
    bool release = false;
    std::atomic<int> hook_calls{0};
    o.post_stages_hook = [&] {
      if (hook_calls.fetch_add(1) == 0) {
        std::unique_lock<std::mutex> lock(mu);
        winner_parked = true;
        cv.notify_all();
        cv.wait(lock, [&] { return release; });
      }
    };
    PredictionService service(&db, &samples, units, o);
    auto winner = service.PredictAsync(distinct[0]);
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return winner_parked; });
    }
    std::vector<std::future<StatusOr<Prediction>>> losers;
    for (int i = 0; i < 16; ++i) {
      losers.push_back(service.PredictAsync(distinct[0]));
    }
    for (size_t i = 1; i < distinct.size(); ++i) {
      auto f = service.PredictAsync(distinct[i]);
      if (f.wait_for(std::chrono::seconds(60)) != std::future_status::ready) {
        std::fprintf(stderr,
                     "pool starved: unrelated prediction stuck behind "
                     "dedup losers\n");
        progress_ok = false;
        break;
      }
      progress_ok = progress_ok && f.get().ok();
    }
    for (auto& f : losers) {
      // Parked, not finished: their artifacts exist only once the winner
      // completes.
      progress_ok = progress_ok &&
                    f.wait_for(std::chrono::seconds(0)) !=
                        std::future_status::ready;
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      release = true;
      cv.notify_all();
    }
    progress_ok = progress_ok && winner.get().ok();
    for (auto& f : losers) progress_ok = progress_ok && f.get().ok();
    progress_ok =
        progress_ok && service.stats().inflight_joins == losers.size();
  }

  // --- single-plan cold latency: intra-query parallel sample run --------
  // Admission control is gated by per-query COLD latency, not batch
  // throughput: the service's plan-level sharding cannot help the first
  // prediction of one plan. Intra-query parallelism can. Heavier samples
  // (full ratio) make stage 1 dominate; take the slowest plan and compare
  // cold Predict at num_threads = 1 vs 4. Bit-identical results are a
  // hard gate everywhere; the speedup gate applies only where the runner
  // actually has cores (hardware_concurrency >= 2).
  // A dedicated 1gb-profile database with full-ratio samples, shared by
  // both cold-latency scenarios below: stage 1 is tens of milliseconds of
  // real operator work, so shard dispatch overhead is noise and the
  // speedups measure actual parallelism.
  Database heavy_db = MakeTpchDatabase(TpchConfig::Profile("1gb"));
  SampleOptions heavy;
  heavy.sampling_ratio = 1.0;
  const SampleDb heavy_samples = SampleDb::Build(heavy_db, heavy);

  double lat1_ms = 0.0, lat4_ms = 0.0;
  bool parallel_parity_ok = true;
  {
    SelJoinOptions heavy_wopts;
    heavy_wopts.instances_per_template = 1;
    auto heavy_queries = MakeSelJoinWorkload(heavy_db, heavy_wopts);
    std::vector<Plan> heavy_plans;
    for (auto& q : heavy_queries) {
      auto plan_or = OptimizePlan(std::move(q.logical), heavy_db);
      if (plan_or.ok()) heavy_plans.push_back(std::move(plan_or).value());
    }
    Predictor sequential(&heavy_db, &heavy_samples, units);
    size_t heaviest = 0;
    double worst_ms = -1.0;
    for (size_t i = 0; i < heavy_plans.size(); ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      auto pred = sequential.Predict(heavy_plans[i]);
      const double ms = MsSince(t0);
      if (pred.ok() && ms > worst_ms) {
        worst_ms = ms;
        heaviest = i;
      }
    }
    // Long-lived pool, as the service would hold: per-prediction cost is
    // shard dispatch, not thread spawning.
    MorselPool pool(4);
    PredictorOptions par_opts;
    par_opts.num_threads = 4;
    PredictionPipeline parallel(&heavy_db, &heavy_samples, units, par_opts,
                                &pool);
    const Plan& plan = heavy_plans[heaviest];
    const int kLatReps = 5;
    for (int rep = 0; rep < kLatReps; ++rep) {
      const auto t1 = std::chrono::steady_clock::now();
      auto seq_pred = sequential.Predict(plan);
      lat1_ms += MsSince(t1);
      const auto t4 = std::chrono::steady_clock::now();
      auto par_pred = parallel.Predict(plan);
      lat4_ms += MsSince(t4);
      parallel_parity_ok =
          parallel_parity_ok && seq_pred.ok() && par_pred.ok() &&
          seq_pred->mean() == par_pred->mean() &&
          seq_pred->breakdown.variance == par_pred->breakdown.variance;
    }
    lat1_ms /= kLatReps;
    lat4_ms /= kLatReps;
  }
  const double single_plan_speedup = lat1_ms > 0.0 ? lat1_ms / lat4_ms : 0.0;
  const unsigned hw = std::thread::hardware_concurrency();

  // --- sort/agg cold latency: the parallel operator tail ----------------
  // The seljoin plans above are scan/join-shaped; TPC-H-style reporting
  // queries hang an ORDER BY + GROUP BY tail over the joins, and until
  // this scenario's operators went parallel (fixed-shape merge sort,
  // per-chunk aggregation tables, sharded merge-join emission) a cold
  // prediction of such a plan stayed pinned near single-core latency no
  // matter how many workers the service had. Scan -> sort -> aggregate
  // over the full-ratio 1gb lineitem sample (~60k rows), num_threads 1 vs
  // 4. Bit-identical N(mu, sigma^2) is a hard gate everywhere; the
  // speedup gate scales with the cores the runner actually has.
  double sa1_ms = 0.0, sa4_ms = 0.0;
  bool sort_agg_parity_ok = true;
  {
    // ORDER BY (l_shipdate, l_orderkey) under GROUP BY l_suppkey: the
    // always-true filter keeps the scan on the sharded path, the sort
    // carries the full ~60k rows, and the aggregation's ~100 groups keep
    // its sequential chunk-table merge negligible next to the parallel
    // accumulation phase.
    auto scan = MakeSeqScan(
        "lineitem", Expr::Cmp(4, CmpOp::kGe, Value::Double(0.0)));
    auto sort = MakeSort(std::move(scan), {10, 0});
    auto agg = MakeAggregate(std::move(sort), {2},
                             {{AggSpec::Kind::kCount, -1, "cnt"},
                              {AggSpec::Kind::kSum, 5, "sum_price"},
                              {AggSpec::Kind::kMin, 4, "min_qty"},
                              {AggSpec::Kind::kMax, 6, "max_disc"},
                              {AggSpec::Kind::kAvg, 7, "avg_tax"}});
    Plan sort_agg_plan(std::move(agg));
    if (!sort_agg_plan.Finalize(heavy_db).ok()) {
      std::fprintf(stderr, "sort/agg plan failed to finalize\n");
      return 1;
    }
    Predictor sequential(&heavy_db, &heavy_samples, units);
    MorselPool pool(4);
    PredictorOptions par_opts;
    par_opts.num_threads = 4;
    PredictionPipeline parallel(&heavy_db, &heavy_samples, units, par_opts,
                                &pool);
    // One untimed warmup per predictor so rep 0's sequential measurement
    // doesn't absorb first-touch/allocator costs the parallel measurement
    // right after it never pays (which would inflate the speedup).
    (void)sequential.Predict(sort_agg_plan);
    (void)parallel.Predict(sort_agg_plan);
    const int kLatReps = 5;
    for (int rep = 0; rep < kLatReps; ++rep) {
      const auto t1 = std::chrono::steady_clock::now();
      auto seq_pred = sequential.Predict(sort_agg_plan);
      sa1_ms += MsSince(t1);
      const auto t4 = std::chrono::steady_clock::now();
      auto par_pred = parallel.Predict(sort_agg_plan);
      sa4_ms += MsSince(t4);
      sort_agg_parity_ok =
          sort_agg_parity_ok && seq_pred.ok() && par_pred.ok() &&
          seq_pred->mean() == par_pred->mean() &&
          seq_pred->breakdown.variance == par_pred->breakdown.variance;
    }
    sa1_ms /= kLatReps;
    sa4_ms /= kLatReps;
  }
  const double sort_agg_speedup = sa4_ms > 0.0 ? sa1_ms / sa4_ms : 0.0;

  const double n = static_cast<double>(stream.size());
  const double seq_qps = 1000.0 * n / seq_ms;
  const double batch_qps = 1000.0 * n / batch_ms;
  const double hot_qps = 1000.0 * n / hot_ms;
  const double storm_qps = 1000.0 * n / storm_ms;
  const double drop_qps = 1000.0 * n / drop_ms;
  std::printf("%-38s %10s %14s %8s\n", "mode", "ms/stream", "predictions/s",
              "speedup");
  std::printf("%-38s %10.1f %14.1f %8s\n", "sequential Predict (no service)",
              seq_ms, seq_qps, "1.00x");
  std::printf("%-38s %10.1f %14.1f %7.2fx\n",
              "PredictBatch (cold cache, dedup)", batch_ms, batch_qps,
              batch_qps / seq_qps);
  std::printf("%-38s %10.1f %14.1f %7.2fx\n", "PredictBatch (hot cache)",
              hot_ms, hot_qps, hot_qps / seq_qps);
  std::printf("%-38s %10.1f %14.1f %7.2fx\n",
              "PredictAsync storm (cold, in-flight)", storm_ms, storm_qps,
              storm_qps / seq_qps);
  std::printf("%-38s %10.1f %14.1f %7.2fx\n",
              "PredictAsync storm (plans dropped)", drop_ms, drop_qps,
              drop_qps / seq_qps);
  std::printf("\nasync storm: %.1f stage-1 runs/rep for %zu requests over %zu "
              "distinct plans (%.1f in-flight joins + %.1f cache hits per rep)\n",
              static_cast<double>(storm_runs) / kReps, stream.size(),
              distinct.size(), static_cast<double>(storm_joins) / kReps,
              static_cast<double>(storm_hits) / kReps);
  std::printf("drop-plan storm: %.1f stage-1 runs and %.1f registry clones/rep "
              "(callers destroyed every plan at submit)\n",
              static_cast<double>(drop_runs) / kReps,
              static_cast<double>(drop_clones) / kReps);
  std::printf("single-plan cold latency (full-ratio samples): %.2f ms at "
              "num_threads=1, %.2f ms at num_threads=4 (%.2fx, %u hw threads)\n",
              lat1_ms, lat4_ms, single_plan_speedup, hw);
  std::printf("sort/agg cold latency (ORDER BY + GROUP BY tail): %.2f ms at "
              "num_threads=1, %.2f ms at num_threads=4 (%.2fx)\n",
              sa1_ms, sa4_ms, sort_agg_speedup);

  const bool batch_pass = batch_qps >= 2.0 * seq_qps;
  std::printf("\nbatched/sequential = %.2fx (target >= 2x): %s\n",
              batch_qps / seq_qps, batch_pass ? "PASS" : "FAIL");
  std::printf("async dedup: one stage-1 run per distinct fingerprint: %s\n",
              dedup_ok ? "PASS" : "FAIL");
  std::printf("plan lifetime: futures outlive dropped caller plans: %s\n",
              drop_ok ? "PASS" : "FAIL");
  std::printf("continuation handoff: losers block zero workers: %s\n",
              progress_ok ? "PASS" : "FAIL");
  // Parity is a hard gate; speedup only gates multi-core runners (a
  // single-core box can't speed up, but must stay bit-identical).
  const bool single_plan_pass =
      parallel_parity_ok && (hw < 2 || single_plan_speedup > 1.0);
  std::printf("single-plan cold latency: parallel bit-identical%s: %s\n",
              hw >= 2 ? " and faster at num_threads=4" : "",
              single_plan_pass ? "PASS" : "FAIL");
  // The operator-tail gate: parity unconditionally; the speedup bar
  // scales with the runner — >= 1.5x where 4 threads have 4 cores to run
  // on, merely faster where there are 2-3, parity-only on single-core.
  const bool sort_agg_pass =
      sort_agg_parity_ok &&
      (hw < 2 || (hw >= 4 ? sort_agg_speedup >= 1.5 : sort_agg_speedup > 1.0));
  std::printf("sort/agg cold latency: parallel bit-identical%s: %s\n",
              hw >= 4 ? " and >= 1.5x at num_threads=4"
                      : (hw >= 2 ? " and faster at num_threads=4" : ""),
              sort_agg_pass ? "PASS" : "FAIL");
  const bool pass = batch_pass && dedup_ok && drop_ok && progress_ok &&
                    single_plan_pass && sort_agg_pass;

  // Machine-readable summary (one JSON object on its own line) so future
  // PRs can track the perf trajectory: grep '^{' and parse.
  std::printf(
      "{\"bench\":\"service_throughput\",\"predictions\":%zu,"
      "\"distinct_plans\":%zu,\"repeats\":%d,\"reps\":%d,"
      "\"sequential_ms\":%.3f,\"batch_cold_ms\":%.3f,\"batch_hot_ms\":%.3f,"
      "\"async_storm_ms\":%.3f,\"drop_plan_storm_ms\":%.3f,"
      "\"sequential_qps\":%.1f,\"batch_cold_qps\":%.1f,\"batch_hot_qps\":%.1f,"
      "\"async_storm_qps\":%.1f,\"drop_plan_storm_qps\":%.1f,"
      "\"speedup_batch_cold\":%.3f,\"speedup_batch_hot\":%.3f,"
      "\"speedup_async_storm\":%.3f,\"storm_stage1_runs_per_rep\":%.2f,"
      "\"drop_storm_registry_clones_per_rep\":%.2f,"
      "\"single_plan_cold_ms_t1\":%.3f,\"single_plan_cold_ms_t4\":%.3f,"
      "\"single_plan_cold_speedup\":%.3f,"
      "\"sort_agg_cold_ms_t1\":%.3f,\"sort_agg_cold_ms_t4\":%.3f,"
      "\"sort_agg_cold_speedup\":%.3f,\"hardware_concurrency\":%u,"
      "\"single_plan_parallel_parity\":%s,\"single_plan_pass\":%s,"
      "\"sort_agg_parallel_parity\":%s,\"sort_agg_pass\":%s,"
      "\"batch_pass\":%s,\"dedup_ok\":%s,\"drop_plan_ok\":%s,"
      "\"pool_progress_ok\":%s,\"pass\":%s}\n",
      stream.size(), distinct.size(), kRepeats, kReps, seq_ms, batch_ms,
      hot_ms, storm_ms, drop_ms, seq_qps, batch_qps, hot_qps, storm_qps,
      drop_qps, batch_qps / seq_qps, hot_qps / seq_qps, storm_qps / seq_qps,
      static_cast<double>(storm_runs) / kReps,
      static_cast<double>(drop_clones) / kReps, lat1_ms, lat4_ms,
      single_plan_speedup, sa1_ms, sa4_ms, sort_agg_speedup, hw,
      parallel_parity_ok ? "true" : "false",
      single_plan_pass ? "true" : "false",
      sort_agg_parity_ok ? "true" : "false", sort_agg_pass ? "true" : "false",
      batch_pass ? "true" : "false", dedup_ok ? "true" : "false",
      drop_ok ? "true" : "false", progress_ok ? "true" : "false",
      pass ? "true" : "false");
  return pass ? 0 : 1;
}
