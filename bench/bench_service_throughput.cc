// Service-layer throughput: single sequential predictions (the seed's
// monolithic Predictor path, one sample run per call) versus the staged
// PredictionService with batched execution, fingerprint dedup and
// sample-run caching.
//
// The workload models a multi-user admission path: a stream of queries in
// which each distinct plan recurs a few times (recurring dashboards /
// templated queries), which is exactly where the service's fingerprint
// cache converts repeated sample runs into cheap fit/combine stages.
//
//   build/bench/bench_service_throughput

#include <chrono>
#include <cstdio>
#include <vector>

#include "core/predictor.h"
#include "cost/calibration.h"
#include "datagen/tpch.h"
#include "engine/planner.h"
#include "hw/machine.h"
#include "sampling/sample_db.h"
#include "service/prediction_service.h"
#include "workload/common.h"

using namespace uqp;

namespace {

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  Database db = MakeTpchDatabase(TpchConfig::Profile("tiny"));
  SimulatedMachine machine(MachineProfile::PC1(), 23);
  Calibrator calibrator(&machine);
  const CostUnits units = calibrator.Calibrate();
  SampleOptions sample_options;
  sample_options.sampling_ratio = 0.05;
  const SampleDb samples = SampleDb::Build(db, sample_options);

  // Distinct plans from the SELJOIN templates...
  SelJoinOptions wopts;
  wopts.instances_per_template = 2;
  auto queries = MakeSelJoinWorkload(db, wopts);
  std::vector<Plan> distinct;
  for (auto& q : queries) {
    auto plan_or = OptimizePlan(std::move(q.logical), db);
    if (plan_or.ok()) distinct.push_back(std::move(plan_or).value());
  }
  // ... each recurring kRepeats times, interleaved round-robin.
  const int kRepeats = 4;
  std::vector<const Plan*> stream;
  for (int r = 0; r < kRepeats; ++r) {
    for (const Plan& p : distinct) stream.push_back(&p);
  }
  std::printf("workload: %zu predictions (%zu distinct plans x %d repeats)\n\n",
              stream.size(), distinct.size(), kRepeats);

  const int kReps = 3;

  // --- baseline: sequential single-plan Predict, no service layer -------
  // One full pipeline run (sample + fit + combine) per prediction.
  double seq_ms = 0.0;
  {
    Predictor predictor(&db, &samples, units);
    for (int rep = 0; rep < kReps; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      for (const Plan* p : stream) {
        auto pred = predictor.Predict(*p);
        if (!pred.ok()) {
          std::fprintf(stderr, "predict failed: %s\n",
                       pred.status().ToString().c_str());
          return 1;
        }
      }
      seq_ms += MsSince(t0);
    }
    seq_ms /= kReps;
  }

  // --- service: PredictBatch, cold cache each rep -----------------------
  // Fingerprint dedup means each distinct plan samples once per rep.
  double batch_ms = 0.0;
  {
    for (int rep = 0; rep < kReps; ++rep) {
      PredictionService service(&db, &samples, units);
      const auto t0 = std::chrono::steady_clock::now();
      const auto results = service.PredictBatch(stream);
      batch_ms += MsSince(t0);
      for (const auto& r : results) {
        if (!r.ok()) {
          std::fprintf(stderr, "batch predict failed: %s\n",
                       r.status().ToString().c_str());
          return 1;
        }
      }
    }
    batch_ms /= kReps;
  }

  // --- service: hot cache (recurring plans already sampled) -------------
  double hot_ms = 0.0;
  {
    PredictionService service(&db, &samples, units);
    auto warm = service.PredictBatch(stream);  // populate the cache
    for (int rep = 0; rep < kReps; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      const auto results = service.PredictBatch(stream);
      hot_ms += MsSince(t0);
      for (const auto& r : results) {
        if (!r.ok()) return 1;
      }
    }
    hot_ms /= kReps;
  }

  const double n = static_cast<double>(stream.size());
  const double seq_qps = 1000.0 * n / seq_ms;
  const double batch_qps = 1000.0 * n / batch_ms;
  const double hot_qps = 1000.0 * n / hot_ms;
  std::printf("%-38s %10s %14s %8s\n", "mode", "ms/stream", "predictions/s",
              "speedup");
  std::printf("%-38s %10.1f %14.1f %8s\n", "sequential Predict (no service)",
              seq_ms, seq_qps, "1.00x");
  std::printf("%-38s %10.1f %14.1f %7.2fx\n",
              "PredictBatch (cold cache, dedup)", batch_ms, batch_qps,
              batch_qps / seq_qps);
  std::printf("%-38s %10.1f %14.1f %7.2fx\n", "PredictBatch (hot cache)",
              hot_ms, hot_qps, hot_qps / seq_qps);

  const bool pass = batch_qps >= 2.0 * seq_qps;
  std::printf("\nbatched/sequential = %.2fx (target >= 2x): %s\n",
              batch_qps / seq_qps, pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
