// Service-layer throughput: single sequential predictions (the seed's
// monolithic Predictor path, one sample run per call) versus the staged
// PredictionService with batched execution, fingerprint dedup and
// sample-run caching.
//
// The workload models a multi-user admission path: a stream of queries in
// which each distinct plan recurs a few times (recurring dashboards /
// templated queries), which is exactly where the service's fingerprint
// cache converts repeated sample runs into cheap fit/combine stages.
//
//   build/bench/bench_service_throughput

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/predictor.h"
#include "cost/calibration.h"
#include "datagen/tpch.h"
#include "engine/planner.h"
#include "hw/machine.h"
#include "common/status.h"
#include "math/rng.h"
#include "sampling/sample_db.h"
#include "service/fault.h"
#include "service/prediction_service.h"
#include "workload/arrivals.h"
#include "workload/common.h"

using namespace uqp;

namespace {

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

// ---------------------------------------------------------------------------
// open_loop_storm machinery: scheduled (open-loop) arrival traces replayed
// against the service, the way an admission controller actually sees
// traffic — requests arrive on the trace's clock whether or not earlier
// ones finished. Latency is measured from the SCHEDULED arrival, so a
// service that falls behind is charged for its backlog instead of the
// trace silently re-anchoring (no coordinated omission).
// ---------------------------------------------------------------------------

// Arrival traces come from workload/arrivals.h (MakeArrivalSeconds was
// promoted there so the scheduling simulator replays the same seeded
// schedules); "uniform" is constant gaps, "poisson" memoryless arrivals,
// "randwalk" bursty load following a clamped geometric walk.

struct OpenLoopResult {
  double offered_qps = 0.0;
  double achieved_qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  bool parity = true;  ///< every prediction bit-identical to the reference
};

/// Replays `arrivals` against the service from `clients` threads (thread c
/// owns arrivals c, c+clients, ...). Each request is checked bit-exact
/// against the sequential reference for its plan.
OpenLoopResult RunOpenLoop(PredictionService& service,
                           const std::vector<const Plan*>& pool,
                           const std::vector<size_t>& req_plan,
                           const std::vector<Prediction>& expected,
                           const std::vector<double>& arrivals, int clients) {
  const size_t n = arrivals.size();
  std::vector<double> latency(n, 0.0);
  std::atomic<bool> parity{true};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  const auto t0 = std::chrono::steady_clock::now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (size_t i = static_cast<size_t>(c); i < n;
           i += static_cast<size_t>(clients)) {
        const auto scheduled =
            t0 + std::chrono::duration_cast<
                     std::chrono::steady_clock::duration>(
                     std::chrono::duration<double>(arrivals[i]));
        std::this_thread::sleep_until(scheduled);
        const size_t p = req_plan[i];
        auto got = service.PredictAsync(*pool[p]).get();
        if (!got.ok() || got->mean() != expected[p].mean() ||
            got->breakdown.variance != expected[p].breakdown.variance) {
          parity.store(false);
        }
        latency[i] = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - scheduled)
                         .count();
      }
    });
  }
  for (auto& t : threads) t.join();
  const double elapsed_ms = MsSince(t0);
  OpenLoopResult out;
  out.parity = parity.load();
  out.achieved_qps = 1000.0 * static_cast<double>(n) / elapsed_ms;
  out.offered_qps =
      arrivals.back() > 0.0 ? static_cast<double>(n) / arrivals.back() : 0.0;
  std::sort(latency.begin(), latency.end());
  out.p50_ms = latency[n / 2];
  out.p99_ms = latency[std::min(n - 1, (n * 99) / 100)];
  return out;
}

/// Closed-loop peak: `clients` threads submit as fast as completions
/// allow. Calibrates the arrival rates the open-loop traces are scaled to.
double MeasureClosedLoopQps(PredictionService& service,
                            const std::vector<const Plan*>& pool,
                            const std::vector<size_t>& req_plan, int clients) {
  const size_t n = req_plan.size();
  std::atomic<size_t> next{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  const auto t0 = std::chrono::steady_clock::now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      for (;;) {
        const size_t i = next.fetch_add(1);
        if (i >= n) return;
        (void)service.PredictAsync(*pool[req_plan[i]]).get();
      }
    });
  }
  for (auto& t : threads) t.join();
  return 1000.0 * static_cast<double>(n) / MsSince(t0);
}

}  // namespace

int main() {
  Database db = MakeTpchDatabase(TpchConfig::Profile("tiny"));
  SimulatedMachine machine(MachineProfile::PC1(), 23);
  Calibrator calibrator(&machine);
  const CostUnits units = calibrator.Calibrate();
  SampleOptions sample_options;
  sample_options.sampling_ratio = 0.05;
  const SampleDb samples = SampleDb::Build(db, sample_options);

  // Distinct plans from the SELJOIN templates...
  SelJoinOptions wopts;
  wopts.instances_per_template = 2;
  auto queries = MakeSelJoinWorkload(db, wopts);
  std::vector<Plan> distinct;
  for (auto& q : queries) {
    auto plan_or = OptimizePlan(std::move(q.logical), db);
    if (plan_or.ok()) distinct.push_back(std::move(plan_or).value());
  }
  // ... each recurring kRepeats times, interleaved round-robin.
  const int kRepeats = 4;
  std::vector<const Plan*> stream;
  for (int r = 0; r < kRepeats; ++r) {
    for (const Plan& p : distinct) stream.push_back(&p);
  }
  std::printf("workload: %zu predictions (%zu distinct plans x %d repeats)\n\n",
              stream.size(), distinct.size(), kRepeats);

  const int kReps = 3;

  // --- baseline: sequential single-plan Predict, no service layer -------
  // One full pipeline run (sample + fit + combine) per prediction.
  double seq_ms = 0.0;
  {
    Predictor predictor(&db, &samples, units);
    for (int rep = 0; rep < kReps; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      for (const Plan* p : stream) {
        auto pred = predictor.Predict(*p);
        if (!pred.ok()) {
          std::fprintf(stderr, "predict failed: %s\n",
                       pred.status().ToString().c_str());
          return 1;
        }
      }
      seq_ms += MsSince(t0);
    }
    seq_ms /= kReps;
  }

  // --- service: PredictBatch, cold cache each rep -----------------------
  // Fingerprint dedup means each distinct plan samples once per rep.
  double batch_ms = 0.0;
  {
    for (int rep = 0; rep < kReps; ++rep) {
      PredictionService service(&db, &samples, units);
      const auto t0 = std::chrono::steady_clock::now();
      const auto results = service.PredictBatch(stream);
      batch_ms += MsSince(t0);
      for (const auto& r : results) {
        if (!r.ok()) {
          std::fprintf(stderr, "batch predict failed: %s\n",
                       r.status().ToString().c_str());
          return 1;
        }
      }
    }
    batch_ms /= kReps;
  }

  // --- service: hot cache (recurring plans already sampled) -------------
  double hot_ms = 0.0;
  {
    PredictionService service(&db, &samples, units);
    auto warm = service.PredictBatch(stream);  // populate the cache
    for (int rep = 0; rep < kReps; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      const auto results = service.PredictBatch(stream);
      hot_ms += MsSince(t0);
      for (const auto& r : results) {
        if (!r.ok()) return 1;
      }
    }
    hot_ms /= kReps;
  }

  // --- service: contended recurring-query storm via PredictAsync --------
  // Every request in the stream is submitted at once against a cold
  // service, the way concurrent arrivals of recurring dashboard queries
  // hit an admission path. The in-flight dedup table must collapse the
  // storm to ONE stage-1 execution per distinct fingerprint — every other
  // request rides the winner's shared future or the cache.
  double storm_ms = 0.0;
  uint64_t storm_runs = 0, storm_joins = 0, storm_hits = 0;
  bool dedup_ok = true;
  {
    for (int rep = 0; rep < kReps; ++rep) {
      PredictionService service(&db, &samples, units);
      const auto t0 = std::chrono::steady_clock::now();
      std::vector<std::future<StatusOr<Prediction>>> futures;
      futures.reserve(stream.size());
      for (const Plan* p : stream) futures.push_back(service.PredictAsync(*p));
      for (auto& f : futures) {
        auto r = f.get();
        if (!r.ok()) {
          std::fprintf(stderr, "async predict failed: %s\n",
                       r.status().ToString().c_str());
          return 1;
        }
      }
      storm_ms += MsSince(t0);
      const ServiceStats st = service.stats();
      storm_runs += st.sample_runs;
      storm_joins += st.inflight_joins;
      storm_hits += st.cache_hits;
      dedup_ok = dedup_ok && st.sample_runs == distinct.size();
    }
    storm_ms /= kReps;
  }

  // --- lifetime gate: drop-plan-early PredictAsync storm ----------------
  // Every submission's Plan is a clone destroyed the moment PredictAsync
  // returns — the fire-and-forget contract. The service must predict from
  // its registry clones (one per distinct plan, interned across the
  // storm), satisfy every future, and drain the registry afterwards.
  double drop_ms = 0.0;
  uint64_t drop_runs = 0, drop_clones = 0;
  bool drop_ok = true;
  {
    for (int rep = 0; rep < kReps; ++rep) {
      PredictionService service(&db, &samples, units);
      const auto t0 = std::chrono::steady_clock::now();
      std::vector<std::future<StatusOr<Prediction>>> futures;
      futures.reserve(stream.size());
      for (const Plan* p : stream) {
        Plan doomed = p->Clone();
        futures.push_back(service.PredictAsync(doomed));
      }  // doomed destroyed here, long before most workers run
      for (auto& f : futures) {
        auto r = f.get();
        if (!r.ok()) {
          std::fprintf(stderr, "drop-plan predict failed: %s\n",
                       r.status().ToString().c_str());
          drop_ok = false;
        }
      }
      drop_ms += MsSince(t0);
      const ServiceStats st = service.stats();
      drop_runs += st.sample_runs;
      drop_clones += st.plan_clones;
      // The registry drains per-request, so a repeat submitted after its
      // predecessor already completed legitimately re-clones: clones land
      // between one per distinct plan (fully overlapped storm) and one
      // per request (fully sequential), never more.
      drop_ok = drop_ok && st.sample_runs == distinct.size() &&
                st.plan_clones >= distinct.size() &&
                st.plan_clones <= stream.size() &&
                service.plan_registry_size() == 0;
    }
    drop_ms /= kReps;
  }

  // --- pool-progress gate: dedup losers must not block workers ----------
  // The winner of a same-fingerprint storm is gated mid-stages on one of
  // TWO workers. The losers must park continuations and return the second
  // worker to the pool, so unrelated predictions keep flowing while the
  // winner is gated; if any loser sat in future::get(), the pool would be
  // dead and the unrelated futures below would time out.
  bool progress_ok = true;
  {
    ServiceOptions o;
    o.num_workers = 2;
    std::mutex mu;
    std::condition_variable cv;
    bool winner_parked = false;
    bool release = false;
    std::atomic<int> hook_calls{0};
    o.post_stages_hook = [&] {
      if (hook_calls.fetch_add(1) == 0) {
        std::unique_lock<std::mutex> lock(mu);
        winner_parked = true;
        cv.notify_all();
        cv.wait(lock, [&] { return release; });
      }
    };
    PredictionService service(&db, &samples, units, o);
    auto winner = service.PredictAsync(distinct[0]);
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return winner_parked; });
    }
    std::vector<std::future<StatusOr<Prediction>>> losers;
    for (int i = 0; i < 16; ++i) {
      losers.push_back(service.PredictAsync(distinct[0]));
    }
    for (size_t i = 1; i < distinct.size(); ++i) {
      auto f = service.PredictAsync(distinct[i]);
      if (f.wait_for(std::chrono::seconds(60)) != std::future_status::ready) {
        std::fprintf(stderr,
                     "pool starved: unrelated prediction stuck behind "
                     "dedup losers\n");
        progress_ok = false;
        break;
      }
      progress_ok = progress_ok && f.get().ok();
    }
    for (auto& f : losers) {
      // Parked, not finished: their artifacts exist only once the winner
      // completes.
      progress_ok = progress_ok &&
                    f.wait_for(std::chrono::seconds(0)) !=
                        std::future_status::ready;
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      release = true;
      cv.notify_all();
    }
    progress_ok = progress_ok && winner.get().ok();
    for (auto& f : losers) progress_ok = progress_ok && f.get().ok();
    progress_ok =
        progress_ok && service.stats().inflight_joins == losers.size();
  }

  // --- single-plan cold latency: intra-query parallel sample run --------
  // Admission control is gated by per-query COLD latency, not batch
  // throughput: the service's plan-level sharding cannot help the first
  // prediction of one plan. Intra-query parallelism can. Heavier samples
  // (full ratio) make stage 1 dominate; take the slowest plan and compare
  // cold Predict at num_threads = 1 vs 4. Bit-identical results are a
  // hard gate everywhere; the speedup gate applies only where the runner
  // actually has cores (hardware_concurrency >= 2).
  // A dedicated 1gb-profile database with full-ratio samples, shared by
  // both cold-latency scenarios below: stage 1 is tens of milliseconds of
  // real operator work, so shard dispatch overhead is noise and the
  // speedups measure actual parallelism.
  Database heavy_db = MakeTpchDatabase(TpchConfig::Profile("1gb"));
  SampleOptions heavy;
  heavy.sampling_ratio = 1.0;
  const SampleDb heavy_samples = SampleDb::Build(heavy_db, heavy);

  double lat1_ms = 0.0, lat4_ms = 0.0;
  bool parallel_parity_ok = true;
  {
    SelJoinOptions heavy_wopts;
    heavy_wopts.instances_per_template = 1;
    auto heavy_queries = MakeSelJoinWorkload(heavy_db, heavy_wopts);
    std::vector<Plan> heavy_plans;
    for (auto& q : heavy_queries) {
      auto plan_or = OptimizePlan(std::move(q.logical), heavy_db);
      if (plan_or.ok()) heavy_plans.push_back(std::move(plan_or).value());
    }
    Predictor sequential(&heavy_db, &heavy_samples, units);
    size_t heaviest = 0;
    double worst_ms = -1.0;
    for (size_t i = 0; i < heavy_plans.size(); ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      auto pred = sequential.Predict(heavy_plans[i]);
      const double ms = MsSince(t0);
      if (pred.ok() && ms > worst_ms) {
        worst_ms = ms;
        heaviest = i;
      }
    }
    // Long-lived pool, as the service would hold: per-prediction cost is
    // shard dispatch, not thread spawning.
    MorselPool pool(4);
    PredictorOptions par_opts;
    par_opts.num_threads = 4;
    PredictionPipeline parallel(&heavy_db, &heavy_samples, units, par_opts,
                                &pool);
    const Plan& plan = heavy_plans[heaviest];
    const int kLatReps = 5;
    for (int rep = 0; rep < kLatReps; ++rep) {
      const auto t1 = std::chrono::steady_clock::now();
      auto seq_pred = sequential.Predict(plan);
      lat1_ms += MsSince(t1);
      const auto t4 = std::chrono::steady_clock::now();
      auto par_pred = parallel.Predict(plan);
      lat4_ms += MsSince(t4);
      parallel_parity_ok =
          parallel_parity_ok && seq_pred.ok() && par_pred.ok() &&
          seq_pred->mean() == par_pred->mean() &&
          seq_pred->breakdown.variance == par_pred->breakdown.variance;
    }
    lat1_ms /= kLatReps;
    lat4_ms /= kLatReps;
  }
  const double single_plan_speedup = lat1_ms > 0.0 ? lat1_ms / lat4_ms : 0.0;
  const unsigned hw = std::thread::hardware_concurrency();

  // --- sort/agg cold latency: the parallel operator tail ----------------
  // The seljoin plans above are scan/join-shaped; TPC-H-style reporting
  // queries hang an ORDER BY + GROUP BY tail over the joins, and until
  // this scenario's operators went parallel (fixed-shape merge sort,
  // per-chunk aggregation tables, sharded merge-join emission) a cold
  // prediction of such a plan stayed pinned near single-core latency no
  // matter how many workers the service had. Scan -> sort -> aggregate
  // over the full-ratio 1gb lineitem sample (~60k rows), num_threads 1 vs
  // 4. Bit-identical N(mu, sigma^2) is a hard gate everywhere; the
  // speedup gate scales with the cores the runner actually has.
  double sa1_ms = 0.0, sa4_ms = 0.0;
  bool sort_agg_parity_ok = true;
  {
    // ORDER BY (l_shipdate, l_orderkey) under GROUP BY l_suppkey: the
    // always-true filter keeps the scan on the sharded path, the sort
    // carries the full ~60k rows, and the aggregation's ~100 groups keep
    // its sequential chunk-table merge negligible next to the parallel
    // accumulation phase.
    auto scan = MakeSeqScan(
        "lineitem", Expr::Cmp(4, CmpOp::kGe, Value::Double(0.0)));
    auto sort = MakeSort(std::move(scan), {10, 0});
    auto agg = MakeAggregate(std::move(sort), {2},
                             {{AggSpec::Kind::kCount, -1, "cnt"},
                              {AggSpec::Kind::kSum, 5, "sum_price"},
                              {AggSpec::Kind::kMin, 4, "min_qty"},
                              {AggSpec::Kind::kMax, 6, "max_disc"},
                              {AggSpec::Kind::kAvg, 7, "avg_tax"}});
    Plan sort_agg_plan(std::move(agg));
    if (!sort_agg_plan.Finalize(heavy_db).ok()) {
      std::fprintf(stderr, "sort/agg plan failed to finalize\n");
      return 1;
    }
    Predictor sequential(&heavy_db, &heavy_samples, units);
    MorselPool pool(4);
    PredictorOptions par_opts;
    par_opts.num_threads = 4;
    PredictionPipeline parallel(&heavy_db, &heavy_samples, units, par_opts,
                                &pool);
    // One untimed warmup per predictor so rep 0's sequential measurement
    // doesn't absorb first-touch/allocator costs the parallel measurement
    // right after it never pays (which would inflate the speedup).
    (void)sequential.Predict(sort_agg_plan);
    (void)parallel.Predict(sort_agg_plan);
    const int kLatReps = 5;
    for (int rep = 0; rep < kLatReps; ++rep) {
      const auto t1 = std::chrono::steady_clock::now();
      auto seq_pred = sequential.Predict(sort_agg_plan);
      sa1_ms += MsSince(t1);
      const auto t4 = std::chrono::steady_clock::now();
      auto par_pred = parallel.Predict(sort_agg_plan);
      sa4_ms += MsSince(t4);
      sort_agg_parity_ok =
          sort_agg_parity_ok && seq_pred.ok() && par_pred.ok() &&
          seq_pred->mean() == par_pred->mean() &&
          seq_pred->breakdown.variance == par_pred->breakdown.variance;
    }
    sa1_ms /= kLatReps;
    sa4_ms /= kLatReps;
  }
  const double sort_agg_speedup = sa4_ms > 0.0 ? sa1_ms / sa4_ms : 0.0;

  // --- open_loop_storm: arrival traces against the sharded read path ----
  // Uniform / Poisson / bursty random-walk traces at 0.25x/0.5x/1.0x the
  // calibrated closed-loop peak, replayed against (a) a fully hot cache
  // and (b) a mixed hot/cold workload whose plan pool exceeds the cache
  // capacity (70% of requests hit a 2-plan hot set, 30% churn through the
  // rest). A 2x-peak uniform probe measures saturation throughput, run on
  // both the sharded lock-free configuration and the pre-PR single-mutex
  // baseline (cache_shards=1, lock_free_hits=false) — the hard gate is
  // sharded >= single at hw >= 4, with bit-exact prediction parity gated
  // everywhere.
  struct StormRow {
    const char* workload;
    const char* trace;
    double rate_frac;
    OpenLoopResult r;
  };
  std::vector<StormRow> storm_rows;
  double hot_peak_qps = 0.0, mixed_peak_qps = 0.0;
  double sat_hot_sharded_qps = 0.0, sat_hot_single_qps = 0.0;
  double sat_mixed_sharded_qps = 0.0;
  bool open_loop_parity = true;
  int sharded_shards = 0;
  {
    std::vector<const Plan*> pool;
    pool.reserve(distinct.size());
    for (const Plan& p : distinct) pool.push_back(&p);
    Predictor reference(&db, &samples, units);
    std::vector<Prediction> expected;
    expected.reserve(pool.size());
    for (const Plan* p : pool) {
      auto r = reference.Predict(*p);
      if (!r.ok()) {
        std::fprintf(stderr, "open-loop reference failed: %s\n",
                     r.status().ToString().c_str());
        return 1;
      }
      expected.push_back(std::move(r).value());
    }
    const int clients = static_cast<int>(std::min(16u, std::max(4u, hw)));

    const size_t kHotN = 1024;
    const size_t kMixedN = 384;
    std::vector<size_t> hot_req(kHotN);
    for (size_t i = 0; i < kHotN; ++i) hot_req[i] = i % pool.size();
    // Mixed: 7 of 10 requests on a 2-plan hot set, the rest round-robin
    // over the cold tail — against a cache half the pool size, so the
    // tail churns through evictions while the hot set stays resident.
    std::vector<size_t> mixed_req(kMixedN);
    const size_t hot_set = std::min<size_t>(2, pool.size());
    const size_t cold_tail = std::max<size_t>(1, pool.size() - hot_set);
    for (size_t i = 0; i < kMixedN; ++i) {
      mixed_req[i] = (i % 10) < 7 ? i % hot_set
                                  : (hot_set + i % cold_tail) % pool.size();
    }
    const size_t mixed_capacity = std::max<size_t>(1, pool.size() / 2);

    ServiceOptions sharded_opts;  // defaults: auto shards, lock-free hits
    ServiceOptions single_opts;
    single_opts.cache_shards = 1;
    single_opts.lock_free_hits = false;

    // Long-lived services, the deployment shape: hot ones pre-warmed once.
    PredictionService hot_sharded(&db, &samples, units, sharded_opts);
    PredictionService hot_single(&db, &samples, units, single_opts);
    sharded_shards = hot_sharded.num_shards();
    for (const Plan* p : pool) {
      if (!hot_sharded.Predict(*p).ok() || !hot_single.Predict(*p).ok()) {
        std::fprintf(stderr, "open-loop warmup failed\n");
        return 1;
      }
    }
    ServiceOptions mixed_opts = sharded_opts;
    mixed_opts.cache_capacity = mixed_capacity;
    PredictionService mixed_sharded(&db, &samples, units, mixed_opts);

    hot_peak_qps = MeasureClosedLoopQps(hot_sharded, pool, hot_req, clients);
    mixed_peak_qps =
        MeasureClosedLoopQps(mixed_sharded, pool, mixed_req, clients);

    const double kRateFracs[] = {0.25, 0.5, 1.0};
    const char* kTraces[] = {"uniform", "poisson", "randwalk"};
    uint64_t trace_seed = 71;
    for (const char* trace : kTraces) {
      for (const double frac : kRateFracs) {
        const auto hot_at = MakeArrivalSeconds(trace, frac * hot_peak_qps,
                                               kHotN, trace_seed++);
        auto r = RunOpenLoop(hot_sharded, pool, hot_req, expected, hot_at,
                             clients);
        open_loop_parity = open_loop_parity && r.parity;
        storm_rows.push_back({"hot", trace, frac, r});

        const auto mixed_at = MakeArrivalSeconds(trace, frac * mixed_peak_qps,
                                                 kMixedN, trace_seed++);
        r = RunOpenLoop(mixed_sharded, pool, mixed_req, expected, mixed_at,
                        clients);
        open_loop_parity = open_loop_parity && r.parity;
        storm_rows.push_back({"mixed", trace, frac, r});
      }
    }

    // Saturation probes: uniform arrivals offered at 2x the calibrated
    // peak, so achieved throughput measures the service's ceiling. Best
    // of two probes per configuration to damp scheduler noise.
    const auto sat_hot_at =
        MakeArrivalSeconds("uniform", 2.0 * hot_peak_qps, kHotN, 977);
    const auto sat_mixed_at =
        MakeArrivalSeconds("uniform", 2.0 * mixed_peak_qps, kMixedN, 978);
    for (int probe = 0; probe < 2; ++probe) {
      auto rs = RunOpenLoop(hot_sharded, pool, hot_req, expected, sat_hot_at,
                            clients);
      auto r1 = RunOpenLoop(hot_single, pool, hot_req, expected, sat_hot_at,
                            clients);
      auto rm = RunOpenLoop(mixed_sharded, pool, mixed_req, expected,
                            sat_mixed_at, clients);
      open_loop_parity =
          open_loop_parity && rs.parity && r1.parity && rm.parity;
      sat_hot_sharded_qps = std::max(sat_hot_sharded_qps, rs.achieved_qps);
      sat_hot_single_qps = std::max(sat_hot_single_qps, r1.achieved_qps);
      sat_mixed_sharded_qps = std::max(sat_mixed_sharded_qps, rm.achieved_qps);
    }
  }

  // --- drift_storm: the online feedback loop under hardware drift -------
  // A recurring-plan storm is humming along on a warmed service when the
  // machine drifts (every latent cost-unit mean scales 3.5x: thermal
  // throttling, a failing disk, a noisy neighbour). A frozen service keeps
  // serving stale predictions; the feedback-enabled service watches
  // observed runtimes, detects the drift from windowed relative error,
  // re-derives the cost units through the standard calibration machinery
  // and publishes a new epoch — WITHOUT flushing stage-1/2 artifacts:
  // every cached plan re-combines lazily under the new snapshot. Both
  // services replay the SAME observation trace, so the comparison is
  // exact.
  const double kDriftFactor = 3.5;
  const int kPreRounds = 6;    // accurate phase: families converge
  const int kDriftRounds = 8;  // probes fail, windows refill, drift fires
  double ds_err_pre = 0.0, ds_err_frozen = 0.0;
  double ds_err_adaptive_pre = 0.0, ds_err_adaptive_post = 0.0;
  double ds_recombine_ms = 0.0, ds_full_miss_ms = 0.0;
  uint64_t ds_recalibrations = 0, ds_recombines = 0, ds_sample_runs = 0;
  uint64_t ds_reports = 0, ds_converged = 0, ds_epoch = 0;
  size_t ds_plan_count = 0;
  int ds_post_n = 0;
  bool ds_freeze_ok = true, ds_identity_ok = true;
  {
    // Ground truth: execute each distinct plan once, then replay its
    // operator resource profile on a dedicated truth machine (the paper's
    // averaged-runs protocol).
    Executor executor(&db);
    std::vector<ExecResult> all_execs;
    all_execs.reserve(distinct.size());
    for (const Plan& p : distinct) {
      auto r = executor.Execute(p, ExecOptions{});
      if (!r.ok()) {
        std::fprintf(stderr, "drift_storm execute failed: %s\n",
                     r.status().ToString().c_str());
        return 1;
      }
      all_execs.push_back(std::move(r).value());
    }
    SimulatedMachine truth(MachineProfile::PC1(), 131);

    // Screen the storm to plans the offline calibration predicts well
    // (baseline model bias <= 0.25, at least 6 plans). The drift detector
    // keys on good-predictions-turned-bad; a plan whose cost model is
    // structurally biased past drift_threshold would trip it with no
    // drift at all — real deployments tune drift_threshold above their
    // known model bias, the bench selects its families instead.
    std::vector<const Plan*> ds_plans;
    std::vector<const ExecResult*> execs;
    {
      Predictor screen(&db, &samples, units);
      std::vector<std::pair<double, size_t>> by_bias;
      for (size_t i = 0; i < distinct.size(); ++i) {
        auto p = screen.Predict(distinct[i]);
        if (!p.ok()) continue;
        const double obs = truth.ExecuteAveraged(all_execs[i], 5);
        by_bias.emplace_back(std::fabs(obs - p->mean()) / obs, i);
      }
      std::sort(by_bias.begin(), by_bias.end());
      const size_t kMinPlans = std::min<size_t>(6, by_bias.size());
      for (size_t k = 0; k < by_bias.size(); ++k) {
        if (k >= kMinPlans && by_bias[k].first > 0.25) break;
        ds_plans.push_back(&distinct[by_bias[k].second]);
        execs.push_back(&all_execs[by_bias[k].second]);
      }
    }
    ds_plan_count = ds_plans.size();
    if (ds_plan_count == 0) {
      std::fprintf(stderr, "drift_storm: no predictable plans\n");
      return 1;
    }

    std::vector<std::vector<double>> obs_pre(kPreRounds),
        obs_drift(kDriftRounds);
    for (int r = 0; r < kPreRounds; ++r) {
      for (const ExecResult* e : execs) {
        obs_pre[r].push_back(truth.ExecuteAveraged(*e, 3));
      }
    }
    truth.ApplyDrift(kDriftFactor);  // mid-storm hardware drift
    for (int r = 0; r < kDriftRounds; ++r) {
      for (const ExecResult* e : execs) {
        obs_drift[r].push_back(truth.ExecuteAveraged(*e, 3));
      }
    }

    ServiceOptions frozen_opts;  // feedback disabled: the pre-PR world
    PredictionService frozen(&db, &samples, units, frozen_opts);
    ServiceOptions adaptive_opts;
    adaptive_opts.feedback.enabled = true;
    adaptive_opts.feedback.window_size = 4;
    adaptive_opts.feedback.converge_threshold = 0.35;
    adaptive_opts.feedback.drift_threshold = 0.55;
    // Probe on every 4th report: report 4 is the converge decision itself
    // and report 8 is mid-drift, so no probe can resume a family on one
    // noisy observation during the accurate phase.
    adaptive_opts.feedback.probe_interval = 4;
    adaptive_opts.feedback.cooldown_reports = 8 * ds_plan_count;
    adaptive_opts.feedback.recalibrate = [kDriftFactor]() {
      // Re-run the calibration suite on the now-drifted hardware.
      SimulatedMachine drifted(
          MachineProfile::PC1().WithUnitMeansScaled(kDriftFactor), 211);
      Calibrator recal(&drifted);
      return recal.Calibrate();
    };
    PredictionService adaptive(&db, &samples, units, adaptive_opts);
    std::vector<const SampleRunOutput*> first_runs;
    first_runs.reserve(ds_plan_count);
    for (const Plan* p : ds_plans) {
      auto f = frozen.Predict(*p);
      auto a = adaptive.Predict(*p);
      if (!f.ok() || !a.ok()) {
        std::fprintf(stderr, "drift_storm warmup failed\n");
        return 1;
      }
      first_runs.push_back(a->sample_run.get());
    }

    const auto rel_err = [](double predicted, double observed) {
      return std::fabs(observed - predicted) / observed;
    };
    int pre_n = 0, frozen_n = 0, apre_n = 0;
    std::vector<FamilyFeedback> at_freeze;
    for (int r = 0; r < kPreRounds; ++r) {
      for (size_t i = 0; i < ds_plan_count; ++i) {
        const double obs = obs_pre[r][i];
        auto f = frozen.Predict(*ds_plans[i]);
        if (f.ok()) {
          ds_err_pre += rel_err(f->mean(), obs);
          ++pre_n;
        }
        adaptive.ReportObserved(*ds_plans[i], obs);
      }
      if (r == kPreRounds - 2) at_freeze = adaptive.FeedbackSnapshot();
    }
    // Converged families must have stopped updating their error windows:
    // the last accurate round changed no converged window.
    {
      const auto now = adaptive.FeedbackSnapshot();
      for (const auto& then_f : at_freeze) {
        if (!then_f.converged) continue;
        for (const auto& now_f : now) {
          if (now_f.fingerprint != then_f.fingerprint) continue;
          ds_freeze_ok = ds_freeze_ok && now_f.converged &&
                         now_f.window_updates == then_f.window_updates;
        }
      }
      for (const auto& f : now) ds_converged += f.converged ? 1 : 0;
      ds_freeze_ok = ds_freeze_ok && ds_converged >= 1;
    }

    for (int r = 0; r < kDriftRounds; ++r) {
      for (size_t i = 0; i < ds_plan_count; ++i) {
        const double obs = obs_drift[r][i];
        auto f = frozen.Predict(*ds_plans[i]);
        if (f.ok()) {
          ds_err_frozen += rel_err(f->mean(), obs);
          ++frozen_n;
        }
        const bool recalibrated = adaptive.stats().recalibrations > 0;
        auto a = adaptive.Predict(*ds_plans[i]);
        if (a.ok()) {
          const double err = rel_err(a->mean(), obs);
          if (recalibrated) {
            ds_err_adaptive_post += err;
            ++ds_post_n;
          } else {
            ds_err_adaptive_pre += err;
            ++apre_n;
          }
        }
        adaptive.ReportObserved(*ds_plans[i], obs);
      }
    }
    ds_err_pre = pre_n > 0 ? ds_err_pre / pre_n : 0.0;
    ds_err_frozen = frozen_n > 0 ? ds_err_frozen / frozen_n : 0.0;
    ds_err_adaptive_pre = apre_n > 0 ? ds_err_adaptive_pre / apre_n : 0.0;
    ds_err_adaptive_post =
        ds_post_n > 0 ? ds_err_adaptive_post / ds_post_n : 0.0;

    const ServiceStats ast = adaptive.stats();
    ds_recalibrations = ast.recalibrations;
    ds_recombines = ast.recombines;
    ds_sample_runs = ast.sample_runs;
    ds_reports = ast.feedback_reports;
    ds_epoch = adaptive.calibration_epoch();
    // Epoch swaps must not have cost a single stage-1/2 artifact: one
    // sample run per distinct plan, and every post-recalibration hit still
    // serves the first-seen artifact object.
    ds_identity_ok = ast.sample_runs == ds_plan_count;
    for (size_t i = 0; i < ds_plan_count; ++i) {
      auto a = adaptive.Predict(*ds_plans[i]);
      ds_identity_ok =
          ds_identity_ok && a.ok() && a->sample_run.get() == first_runs[i];
    }

    // Recombine vs full miss: a calibration swap costs each cached entry
    // one stage-3 re-combination; a cache flush re-runs all three stages.
    const int kSwapReps = 3;
    for (int rep = 0; rep < kSwapReps; ++rep) {
      adaptive.PublishCalibration(adaptive.calibration()->units, "bench");
      const auto t0 = std::chrono::steady_clock::now();
      for (const Plan* p : ds_plans) (void)adaptive.Predict(*p);
      ds_recombine_ms += MsSince(t0);
      adaptive.InvalidateCache();
      const auto t1 = std::chrono::steady_clock::now();
      for (const Plan* p : ds_plans) (void)adaptive.Predict(*p);
      ds_full_miss_ms += MsSince(t1);
    }
    const double per = static_cast<double>(kSwapReps) *
                       static_cast<double>(ds_plan_count);
    ds_recombine_ms /= per;
    ds_full_miss_ms /= per;
  }
  const double ds_error_cut =
      ds_err_adaptive_post > 0.0 ? ds_err_frozen / ds_err_adaptive_post : 0.0;

  // --- chaos_storm: fault injection against the full service stack ------
  // Two identically-seeded fault schedules drive two services through the
  // same request stream: A opts into cost-only degradation and runs the
  // per-family circuit breaker, B is the no-fallback baseline. A poisoned
  // plan family never heals, a flaky family heals after two attempts, a
  // slow family stalls 20ms per stage-1 run. Gates: (a) the striped
  // outcome matrix stays conserved at every concurrent stats snapshot,
  // (b) degraded availability >= the baseline with strictly more
  // successful responses, (c) the quarantined family stops consuming
  // fault-schedule attempts while the breaker is open, and (d) the fault
  // schedule and fired log replay bit-identically across worker counts.
  const int kChaosWaves = 6;
  const int kBreakerThreshold = 3;
  size_t cs_requests = 0;
  uint64_t cs_a_ok = 0, cs_a_degraded = 0, cs_a_failed = 0;
  uint64_t cs_b_ok = 0, cs_b_failed = 0;
  uint64_t cs_poison_requests = 0, cs_poison_attempts = 0;
  uint64_t cs_opens = 0, cs_shed = 0, cs_probes = 0;
  uint64_t cs_faults = 0, cs_deadline = 0, cs_spurious = 0;
  bool cs_conservation_ok = true;
  bool cs_poison_never_cached = false;
  bool cs_flaky_healed = false;
  bool cs_deadline_ok = true;
  bool cs_schedule_ok = false, cs_replay_ok = false;
  {
    if (distinct.size() < 4) {
      std::fprintf(stderr, "chaos_storm needs >= 4 distinct plans\n");
      return 1;
    }
    const uint64_t poison_fp = PlanFingerprint(distinct[0]);
    const uint64_t flaky_fp = PlanFingerprint(distinct[1]);
    const uint64_t slow_fp = PlanFingerprint(distinct[2]);
    const auto chaos_rules = [&] {
      ScheduledFaultOptions fo;
      fo.seed = 4242;
      fo.spurious_every = 5;
      FaultRule poison;
      poison.fail_attempts = 1000;  // never heals
      fo.rules[poison_fp] = poison;
      FaultRule flaky;
      flaky.fail_attempts = 2;  // heals on the third attempt
      fo.rules[flaky_fp] = flaky;
      FaultRule slow;
      slow.latency_prob = 1.0;
      slow.latency_ms = 20.0;
      fo.rules[slow_fp] = slow;
      return fo;
    };

    ScheduledFaultInjector inj_a(chaos_rules());
    ScheduledFaultInjector inj_b(chaos_rules());
    ServiceOptions a_opts;
    a_opts.num_workers = 2;
    a_opts.fault_injector = &inj_a;
    a_opts.breaker.failure_threshold = kBreakerThreshold;
    a_opts.breaker.cooldown_requests = 4;
    PredictionService a(&db, &samples, units, a_opts);
    ServiceOptions b_opts;
    b_opts.num_workers = 2;
    b_opts.fault_injector = &inj_b;
    PredictionService b(&db, &samples, units, b_opts);

    // (a) the conservation poller: both partitions of the striped outcome
    // matrix must hold at EVERY concurrent snapshot, not just quiescence.
    std::atomic<bool> stop_poller{false};
    std::thread poller([&] {
      while (!stop_poller.load()) {
        for (PredictionService* s : {&a, &b}) {
          const ServiceStats st = s->stats();
          if (st.cache_hits + st.cache_misses != st.predictions ||
              st.ok_served + st.failed + st.degraded_served +
                      st.deadline_exceeded !=
                  st.predictions) {
            cs_conservation_ok = false;
          }
        }
        std::this_thread::yield();
      }
    });

    RequestOptions degraded_ok;
    degraded_ok.allow_degraded = true;
    for (int wave = 0; wave < kChaosWaves; ++wave) {
      std::vector<std::future<StatusOr<Prediction>>> fa, fb;
      for (const Plan& p : distinct) {
        fa.push_back(a.PredictAsync(p, degraded_ok));
        fb.push_back(b.PredictAsync(p));
      }
      // Extra pressure on the poisoned family: the breaker's cooldown
      // counts requests, so the storm must keep asking to reach probes.
      for (int extra = 0; extra < 2; ++extra) {
        fa.push_back(a.PredictAsync(distinct[0], degraded_ok));
        fb.push_back(b.PredictAsync(distinct[0]));
      }
      cs_poison_requests += 3;
      for (auto& f : fa) {
        auto r = f.get();
        ++cs_requests;
        if (r.ok()) {
          if (r->degraded) {
            ++cs_a_degraded;
          } else {
            ++cs_a_ok;
          }
        } else {
          ++cs_a_failed;
        }
      }
      for (auto& f : fb) {
        auto r = f.get();
        if (r.ok()) {
          ++cs_b_ok;
        } else {
          ++cs_b_failed;
        }
      }
    }

    // The poisoned family must never be served from the cache without the
    // degraded opt-in — a plain request still fails (injected fault or
    // quarantine shed, depending on the breaker's phase) — while the
    // healed flaky family serves a real, non-degraded prediction.
    cs_poison_never_cached = !a.Predict(distinct[0]).ok();
    ++cs_poison_requests;
    auto healed = a.Predict(distinct[1]);
    cs_flaky_healed = healed.ok() && !healed->degraded;

    // The deadline channel: flush the cache so the slow family's 20ms
    // stall is real again, then two 2ms-deadline requests (kept below the
    // breaker threshold — deadline cancellations count as family
    // failures) must resolve DeadlineExceeded without poisoning anything,
    // and the follow-up unbounded request succeeds and resets the streak.
    a.InvalidateCache();
    const uint64_t deadline_before = a.stats().deadline_exceeded;
    RequestOptions tight;
    tight.deadline_ms = 2.0;
    for (int i = 0; i < 2; ++i) {
      auto r = a.Predict(distinct[2], tight);
      cs_deadline_ok = cs_deadline_ok && !r.ok() &&
                       r.status().code() == StatusCode::kDeadlineExceeded;
    }
    cs_deadline_ok = cs_deadline_ok && a.Predict(distinct[2]).ok();
    stop_poller.store(true);
    poller.join();
    cs_deadline = a.stats().deadline_exceeded - deadline_before;
    cs_deadline_ok = cs_deadline_ok && cs_deadline == 2;

    const ServiceStats sta = a.stats();
    cs_opens = sta.breaker_opens;
    cs_shed = sta.breaker_shed;
    cs_probes = sta.breaker_probes;
    cs_faults = sta.faults_injected;
    cs_spurious = sta.spurious_wakeups;
    cs_poison_attempts = inj_a.AttemptCount(poison_fp);

    // (d) replay determinism: the same seeded schedule driven by the same
    // per-family attempt sequence produces byte-identical schedules AND
    // fired logs at num_workers = 1 and hardware_concurrency. Synchronous
    // round-robin traffic pins the attempt sequence; the cache is flushed
    // between rounds so the healed family keeps consuming schedule draws.
    const auto replay = [&](int workers) {
      ScheduledFaultInjector inj(chaos_rules());
      ServiceOptions o;
      o.num_workers = workers;
      o.fault_injector = &inj;
      PredictionService s(&db, &samples, units, o);
      RequestOptions deg;
      deg.allow_degraded = true;
      for (int round = 0; round < 4; ++round) {
        (void)s.Predict(distinct[0], deg);
        (void)s.Predict(distinct[1], deg);
        s.InvalidateCache();
      }
      const std::vector<uint64_t> fps = {poison_fp, flaky_fp};
      return std::make_pair(inj.ScheduleBytes(fps, 16), inj.FiredLogBytes());
    };
    const auto serial = replay(1);
    const auto wide = replay(static_cast<int>(std::max(2u, hw)));
    cs_schedule_ok = serial.first == wide.first;
    cs_replay_ok = serial.second == wide.second;
  }
  const double cs_avail_a =
      cs_requests > 0
          ? static_cast<double>(cs_a_ok + cs_a_degraded) /
                static_cast<double>(cs_requests)
          : 0.0;
  const double cs_avail_b =
      cs_requests > 0
          ? static_cast<double>(cs_b_ok) / static_cast<double>(cs_requests)
          : 0.0;

  const double n = static_cast<double>(stream.size());
  const double seq_qps = 1000.0 * n / seq_ms;
  const double batch_qps = 1000.0 * n / batch_ms;
  const double hot_qps = 1000.0 * n / hot_ms;
  const double storm_qps = 1000.0 * n / storm_ms;
  const double drop_qps = 1000.0 * n / drop_ms;
  std::printf("%-38s %10s %14s %8s\n", "mode", "ms/stream", "predictions/s",
              "speedup");
  std::printf("%-38s %10.1f %14.1f %8s\n", "sequential Predict (no service)",
              seq_ms, seq_qps, "1.00x");
  std::printf("%-38s %10.1f %14.1f %7.2fx\n",
              "PredictBatch (cold cache, dedup)", batch_ms, batch_qps,
              batch_qps / seq_qps);
  std::printf("%-38s %10.1f %14.1f %7.2fx\n", "PredictBatch (hot cache)",
              hot_ms, hot_qps, hot_qps / seq_qps);
  std::printf("%-38s %10.1f %14.1f %7.2fx\n",
              "PredictAsync storm (cold, in-flight)", storm_ms, storm_qps,
              storm_qps / seq_qps);
  std::printf("%-38s %10.1f %14.1f %7.2fx\n",
              "PredictAsync storm (plans dropped)", drop_ms, drop_qps,
              drop_qps / seq_qps);
  std::printf("\nasync storm: %.1f stage-1 runs/rep for %zu requests over %zu "
              "distinct plans (%.1f in-flight joins + %.1f cache hits per rep)\n",
              static_cast<double>(storm_runs) / kReps, stream.size(),
              distinct.size(), static_cast<double>(storm_joins) / kReps,
              static_cast<double>(storm_hits) / kReps);
  std::printf("drop-plan storm: %.1f stage-1 runs and %.1f registry clones/rep "
              "(callers destroyed every plan at submit)\n",
              static_cast<double>(drop_runs) / kReps,
              static_cast<double>(drop_clones) / kReps);
  std::printf("single-plan cold latency (full-ratio samples): %.2f ms at "
              "num_threads=1, %.2f ms at num_threads=4 (%.2fx, %u hw threads)\n",
              lat1_ms, lat4_ms, single_plan_speedup, hw);
  std::printf("sort/agg cold latency (ORDER BY + GROUP BY tail): %.2f ms at "
              "num_threads=1, %.2f ms at num_threads=4 (%.2fx)\n",
              sa1_ms, sa4_ms, sort_agg_speedup);

  std::printf("\nopen-loop storm (%d shards, peaks: hot %.0f q/s, mixed %.0f "
              "q/s):\n",
              sharded_shards, hot_peak_qps, mixed_peak_qps);
  std::printf("%-8s %-9s %6s %12s %13s %9s %9s\n", "workload", "trace", "rate",
              "offered q/s", "achieved q/s", "p50 ms", "p99 ms");
  for (const auto& row : storm_rows) {
    std::printf("%-8s %-9s %5.2fx %12.1f %13.1f %9.3f %9.3f\n", row.workload,
                row.trace, row.rate_frac, row.r.offered_qps,
                row.r.achieved_qps, row.r.p50_ms, row.r.p99_ms);
  }
  std::printf("saturation (2x peak, uniform): hot sharded %.1f q/s, hot "
              "single-mutex %.1f q/s (%.2fx), mixed sharded %.1f q/s\n",
              sat_hot_sharded_qps, sat_hot_single_qps,
              sat_hot_single_qps > 0.0
                  ? sat_hot_sharded_qps / sat_hot_single_qps
                  : 0.0,
              sat_mixed_sharded_qps);

  std::printf("\ndrift_storm (%zu plans, %.1fx mid-storm drift, %d+%d rounds, "
              "epoch %llu after %llu recalibration(s) from %llu reports):\n",
              ds_plan_count, kDriftFactor, kPreRounds, kDriftRounds,
              static_cast<unsigned long long>(ds_epoch),
              static_cast<unsigned long long>(ds_recalibrations),
              static_cast<unsigned long long>(ds_reports));
  std::printf("  windowed mean relative error: pre-drift %.3f | drifted "
              "frozen %.3f | adaptive pre-recal %.3f | adaptive post-recal "
              "%.3f (%.1fx cut)\n",
              ds_err_pre, ds_err_frozen, ds_err_adaptive_pre,
              ds_err_adaptive_post, ds_error_cut);
  std::printf("  swap cost: %.3f ms/plan lazy re-combine vs %.3f ms/plan "
              "full miss (%.1fx cheaper); %llu recombines, %llu sample runs, "
              "%llu converged families\n",
              ds_recombine_ms, ds_full_miss_ms,
              ds_recombine_ms > 0.0 ? ds_full_miss_ms / ds_recombine_ms : 0.0,
              static_cast<unsigned long long>(ds_recombines),
              static_cast<unsigned long long>(ds_sample_runs),
              static_cast<unsigned long long>(ds_converged));

  std::printf("\nchaos_storm (%d waves, %zu requests/service: poisoned + "
              "flaky + slow families):\n",
              kChaosWaves, cs_requests);
  std::printf("  degraded+breaker service: %llu ok, %llu degraded, %llu "
              "failed (availability %.3f) | no-fallback baseline: %llu ok, "
              "%llu failed (availability %.3f)\n",
              static_cast<unsigned long long>(cs_a_ok),
              static_cast<unsigned long long>(cs_a_degraded),
              static_cast<unsigned long long>(cs_a_failed), cs_avail_a,
              static_cast<unsigned long long>(cs_b_ok),
              static_cast<unsigned long long>(cs_b_failed), cs_avail_b);
  std::printf("  breaker: %llu open(s), %llu shed, %llu probe(s); poisoned "
              "family consumed %llu schedule attempts for %llu requests; "
              "%llu faults injected, %llu deadline expirations, %llu "
              "spurious wakeups\n",
              static_cast<unsigned long long>(cs_opens),
              static_cast<unsigned long long>(cs_shed),
              static_cast<unsigned long long>(cs_probes),
              static_cast<unsigned long long>(cs_poison_attempts),
              static_cast<unsigned long long>(cs_poison_requests),
              static_cast<unsigned long long>(cs_faults),
              static_cast<unsigned long long>(cs_deadline),
              static_cast<unsigned long long>(cs_spurious));

  const bool batch_pass = batch_qps >= 2.0 * seq_qps;
  std::printf("\nbatched/sequential = %.2fx (target >= 2x): %s\n",
              batch_qps / seq_qps, batch_pass ? "PASS" : "FAIL");
  std::printf("async dedup: one stage-1 run per distinct fingerprint: %s\n",
              dedup_ok ? "PASS" : "FAIL");
  std::printf("plan lifetime: futures outlive dropped caller plans: %s\n",
              drop_ok ? "PASS" : "FAIL");
  std::printf("continuation handoff: losers block zero workers: %s\n",
              progress_ok ? "PASS" : "FAIL");
  // Parity is a hard gate; speedup only gates multi-core runners (a
  // single-core box can't speed up, but must stay bit-identical).
  const bool single_plan_pass =
      parallel_parity_ok && (hw < 2 || single_plan_speedup > 1.0);
  std::printf("single-plan cold latency: parallel bit-identical%s: %s\n",
              hw >= 2 ? " and faster at num_threads=4" : "",
              single_plan_pass ? "PASS" : "FAIL");
  // The operator-tail gate: parity unconditionally; the speedup bar
  // scales with the runner — >= 1.5x where 4 threads have 4 cores to run
  // on, merely faster where there are 2-3, parity-only on single-core.
  const bool sort_agg_pass =
      sort_agg_parity_ok &&
      (hw < 2 || (hw >= 4 ? sort_agg_speedup >= 1.5 : sort_agg_speedup > 1.0));
  std::printf("sort/agg cold latency: parallel bit-identical%s: %s\n",
              hw >= 4 ? " and >= 1.5x at num_threads=4"
                      : (hw >= 2 ? " and faster at num_threads=4" : ""),
              sort_agg_pass ? "PASS" : "FAIL");
  // Open-loop gates: parity is hard everywhere; the throughput gate —
  // sharded must at least match the single-mutex baseline at saturation —
  // applies where there are >= 4 hardware threads to contend (on fewer
  // cores the mutex never becomes the bottleneck, so the comparison is
  // noise).
  const bool open_loop_throughput_pass =
      hw < 4 || sat_hot_sharded_qps >= sat_hot_single_qps;
  const bool open_loop_pass = open_loop_parity && open_loop_throughput_pass;
  std::printf("open-loop parity: every storm prediction bit-identical: %s\n",
              open_loop_parity ? "PASS" : "FAIL");
  std::printf("open-loop saturation: sharded >= single-mutex%s: %s\n",
              hw >= 4 ? " (gated, hw >= 4)" : " (parity-only, hw < 4)",
              open_loop_throughput_pass ? "PASS" : "FAIL");
  // drift_storm gates: the recalibration must cut the windowed error at
  // least 2x vs the frozen baseline; the swap must preserve every stage-1/2
  // artifact (pointer identity, one sample run per plan, >= one lazy
  // re-combination per cached plan); converged families must have frozen
  // their error windows.
  const bool drift_error_pass = ds_recalibrations >= 1 && ds_post_n > 0 &&
                                ds_err_adaptive_post * 2.0 <= ds_err_frozen;
  const bool drift_artifact_pass =
      ds_identity_ok && ds_recombines >= ds_plan_count;
  std::printf("drift_storm error: recalibration cuts error >= 2x vs frozen "
              "(%.1fx): %s\n",
              ds_error_cut, drift_error_pass ? "PASS" : "FAIL");
  std::printf("drift_storm artifacts: swap re-serves cached plans without "
              "re-running stage 1/2: %s\n",
              drift_artifact_pass ? "PASS" : "FAIL");
  std::printf("drift_storm convergence: converged families froze their "
              "windows: %s\n",
              ds_freeze_ok ? "PASS" : "FAIL");
  const bool drift_storm_pass =
      drift_error_pass && drift_artifact_pass && ds_freeze_ok;
  // chaos_storm gates: conservation at every snapshot; degraded
  // availability dominates the no-fallback baseline with strictly more
  // successes; the open breaker bounds the poisoned family's stage-1
  // consumption at threshold + probes (sheds are invisible to the fault
  // schedule); the schedule and fired log replay bit-identically across
  // worker counts; and the failure semantics hold (failures never cached,
  // heals served for real, deadline accounting exact, zero hard failures
  // once degradation is on).
  const bool chaos_conservation_pass = cs_conservation_ok;
  const bool chaos_availability_pass =
      cs_avail_a >= cs_avail_b && (cs_a_ok + cs_a_degraded) > cs_b_ok;
  const bool chaos_quarantine_pass =
      cs_opens >= 1 && cs_shed >= 1 &&
      cs_poison_attempts <=
          static_cast<uint64_t>(kBreakerThreshold) + cs_probes &&
      cs_poison_attempts < cs_poison_requests;
  const bool chaos_replay_pass = cs_schedule_ok && cs_replay_ok;
  const bool chaos_semantics_pass = cs_poison_never_cached &&
                                    cs_flaky_healed && cs_deadline_ok &&
                                    cs_a_failed == 0;
  std::printf("chaos_storm conservation: outcome matrix exact at every "
              "concurrent snapshot: %s\n",
              chaos_conservation_pass ? "PASS" : "FAIL");
  std::printf("chaos_storm availability: degraded >= baseline with strictly "
              "more successes: %s\n",
              chaos_availability_pass ? "PASS" : "FAIL");
  std::printf("chaos_storm quarantine: open breaker stops stage-1 "
              "consumption (%llu attempts <= %d + %llu probes): %s\n",
              static_cast<unsigned long long>(cs_poison_attempts),
              kBreakerThreshold, static_cast<unsigned long long>(cs_probes),
              chaos_quarantine_pass ? "PASS" : "FAIL");
  std::printf("chaos_storm replay: fault schedule and fired log "
              "bit-identical at 1 vs %u workers: %s\n",
              std::max(2u, hw), chaos_replay_pass ? "PASS" : "FAIL");
  std::printf("chaos_storm semantics: failures uncached, heals real, "
              "deadlines exact, no hard failures under degradation: %s\n",
              chaos_semantics_pass ? "PASS" : "FAIL");
  const bool chaos_storm_pass = chaos_conservation_pass &&
                                chaos_availability_pass &&
                                chaos_quarantine_pass && chaos_replay_pass &&
                                chaos_semantics_pass;
  const bool pass = batch_pass && dedup_ok && drop_ok && progress_ok &&
                    single_plan_pass && sort_agg_pass && open_loop_pass &&
                    drift_storm_pass && chaos_storm_pass;

  // Machine-readable summary (one JSON object on its own line) so future
  // PRs can track the perf trajectory: grep '^{' and parse. The
  // open_loop_storm series rides in a nested array; the line stays one
  // line.
  char chaos_json[1024];
  std::snprintf(
      chaos_json, sizeof chaos_json,
      "{\"waves\":%d,\"requests_per_service\":%zu,"
      "\"degraded_ok\":%llu,\"degraded_served\":%llu,\"degraded_failed\":%llu,"
      "\"baseline_ok\":%llu,\"baseline_failed\":%llu,"
      "\"availability_degraded\":%.4f,\"availability_baseline\":%.4f,"
      "\"breaker_opens\":%llu,\"breaker_shed\":%llu,\"breaker_probes\":%llu,"
      "\"poison_attempts\":%llu,\"poison_requests\":%llu,"
      "\"faults_injected\":%llu,\"deadline_exceeded\":%llu,"
      "\"spurious_wakeups\":%llu,"
      "\"conservation_pass\":%s,\"availability_pass\":%s,"
      "\"quarantine_pass\":%s,\"replay_schedule_ok\":%s,"
      "\"replay_fired_ok\":%s,\"replay_pass\":%s,\"semantics_pass\":%s,"
      "\"pass\":%s}",
      kChaosWaves, cs_requests, static_cast<unsigned long long>(cs_a_ok),
      static_cast<unsigned long long>(cs_a_degraded),
      static_cast<unsigned long long>(cs_a_failed),
      static_cast<unsigned long long>(cs_b_ok),
      static_cast<unsigned long long>(cs_b_failed), cs_avail_a, cs_avail_b,
      static_cast<unsigned long long>(cs_opens),
      static_cast<unsigned long long>(cs_shed),
      static_cast<unsigned long long>(cs_probes),
      static_cast<unsigned long long>(cs_poison_attempts),
      static_cast<unsigned long long>(cs_poison_requests),
      static_cast<unsigned long long>(cs_faults),
      static_cast<unsigned long long>(cs_deadline),
      static_cast<unsigned long long>(cs_spurious),
      chaos_conservation_pass ? "true" : "false",
      chaos_availability_pass ? "true" : "false",
      chaos_quarantine_pass ? "true" : "false",
      cs_schedule_ok ? "true" : "false", cs_replay_ok ? "true" : "false",
      chaos_replay_pass ? "true" : "false",
      chaos_semantics_pass ? "true" : "false",
      chaos_storm_pass ? "true" : "false");
  std::string storm_json = "[";
  for (size_t i = 0; i < storm_rows.size(); ++i) {
    const auto& row = storm_rows[i];
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "%s{\"workload\":\"%s\",\"trace\":\"%s\","
                  "\"rate_frac\":%.2f,\"offered_qps\":%.1f,"
                  "\"achieved_qps\":%.1f,\"p50_ms\":%.3f,\"p99_ms\":%.3f}",
                  i == 0 ? "" : ",", row.workload, row.trace, row.rate_frac,
                  row.r.offered_qps, row.r.achieved_qps, row.r.p50_ms,
                  row.r.p99_ms);
    storm_json += buf;
  }
  storm_json += "]";
  std::printf(
      "{\"bench\":\"service_throughput\",\"predictions\":%zu,"
      "\"distinct_plans\":%zu,\"repeats\":%d,\"reps\":%d,"
      "\"sequential_ms\":%.3f,\"batch_cold_ms\":%.3f,\"batch_hot_ms\":%.3f,"
      "\"async_storm_ms\":%.3f,\"drop_plan_storm_ms\":%.3f,"
      "\"sequential_qps\":%.1f,\"batch_cold_qps\":%.1f,\"batch_hot_qps\":%.1f,"
      "\"async_storm_qps\":%.1f,\"drop_plan_storm_qps\":%.1f,"
      "\"speedup_batch_cold\":%.3f,\"speedup_batch_hot\":%.3f,"
      "\"speedup_async_storm\":%.3f,\"storm_stage1_runs_per_rep\":%.2f,"
      "\"drop_storm_registry_clones_per_rep\":%.2f,"
      "\"single_plan_cold_ms_t1\":%.3f,\"single_plan_cold_ms_t4\":%.3f,"
      "\"single_plan_cold_speedup\":%.3f,"
      "\"sort_agg_cold_ms_t1\":%.3f,\"sort_agg_cold_ms_t4\":%.3f,"
      "\"sort_agg_cold_speedup\":%.3f,\"hardware_concurrency\":%u,"
      "\"single_plan_parallel_parity\":%s,\"single_plan_pass\":%s,"
      "\"sort_agg_parallel_parity\":%s,\"sort_agg_pass\":%s,"
      "\"batch_pass\":%s,\"dedup_ok\":%s,\"drop_plan_ok\":%s,"
      "\"pool_progress_ok\":%s,\"cache_shards\":%d,"
      "\"open_loop_storm\":%s,"
      "\"open_loop_hot_peak_qps\":%.1f,\"open_loop_mixed_peak_qps\":%.1f,"
      "\"open_loop_saturation_hot_sharded_qps\":%.1f,"
      "\"open_loop_saturation_hot_single_qps\":%.1f,"
      "\"open_loop_saturation_mixed_sharded_qps\":%.1f,"
      "\"open_loop_parity\":%s,\"open_loop_pass\":%s,"
      "\"drift_storm\":{\"plans\":%zu,\"drift_factor\":%.2f,\"pre_rounds\":%d,"
      "\"drift_rounds\":%d,\"err_pre\":%.4f,\"err_drift_frozen\":%.4f,"
      "\"err_adaptive_pre_recal\":%.4f,\"err_adaptive_post_recal\":%.4f,"
      "\"error_cut_x\":%.2f,\"recalibrations\":%llu,\"feedback_reports\":%llu,"
      "\"converged_families\":%llu,\"final_epoch\":%llu,"
      "\"sample_runs\":%llu,\"recombines\":%llu,"
      "\"recombine_ms_per_plan\":%.4f,\"full_miss_ms_per_plan\":%.4f,"
      "\"artifact_identity_ok\":%s,\"converged_freeze_ok\":%s,"
      "\"error_pass\":%s,\"artifact_pass\":%s,\"pass\":%s},"
      "\"chaos_storm\":%s,"
      "\"pass\":%s}\n",
      stream.size(), distinct.size(), kRepeats, kReps, seq_ms, batch_ms,
      hot_ms, storm_ms, drop_ms, seq_qps, batch_qps, hot_qps, storm_qps,
      drop_qps, batch_qps / seq_qps, hot_qps / seq_qps, storm_qps / seq_qps,
      static_cast<double>(storm_runs) / kReps,
      static_cast<double>(drop_clones) / kReps, lat1_ms, lat4_ms,
      single_plan_speedup, sa1_ms, sa4_ms, sort_agg_speedup, hw,
      parallel_parity_ok ? "true" : "false",
      single_plan_pass ? "true" : "false",
      sort_agg_parity_ok ? "true" : "false", sort_agg_pass ? "true" : "false",
      batch_pass ? "true" : "false", dedup_ok ? "true" : "false",
      drop_ok ? "true" : "false", progress_ok ? "true" : "false",
      sharded_shards, storm_json.c_str(), hot_peak_qps, mixed_peak_qps,
      sat_hot_sharded_qps, sat_hot_single_qps, sat_mixed_sharded_qps,
      open_loop_parity ? "true" : "false", open_loop_pass ? "true" : "false",
      ds_plan_count, kDriftFactor, kPreRounds, kDriftRounds, ds_err_pre,
      ds_err_frozen,
      ds_err_adaptive_pre, ds_err_adaptive_post, ds_error_cut,
      static_cast<unsigned long long>(ds_recalibrations),
      static_cast<unsigned long long>(ds_reports),
      static_cast<unsigned long long>(ds_converged),
      static_cast<unsigned long long>(ds_epoch),
      static_cast<unsigned long long>(ds_sample_runs),
      static_cast<unsigned long long>(ds_recombines), ds_recombine_ms,
      ds_full_miss_ms, ds_identity_ok ? "true" : "false",
      ds_freeze_ok ? "true" : "false", drift_error_pass ? "true" : "false",
      drift_artifact_pass ? "true" : "false",
      drift_storm_pass ? "true" : "false", chaos_json,
      pass ? "true" : "false");
  return pass ? 0 : 1;
}
