// Reproduces Table 1 (the five cost units of PostgreSQL's cost model),
// extended per §3.1: the calibration framework now reports a full
// distribution N(mu, sigma^2) per unit instead of a point estimate.
//
// Shape to reproduce: the calibrated means recover the machines' true
// latent means (within a few percent; the CPU/I-O overlap the additive
// model ignores biases the I/O units slightly low), and the calibrated
// standard deviations track the true dispersions.

#include <cstdio>

#include "bench_common.h"
#include "cost/calibration.h"
#include "hw/machine.h"

using namespace uqp;

int main() {
  PrintBanner("Table 1: calibrated cost units (ms) vs machine ground truth");
  for (const char* name : {"PC1", "PC2"}) {
    MachineProfile profile =
        std::string(name) == "PC1" ? MachineProfile::PC1() : MachineProfile::PC2();
    SimulatedMachine machine(profile, 12345);
    Calibrator calibrator(&machine);
    const CalibrationReport report = calibrator.CalibrateWithReport();

    std::printf("\n-- %s --\n", name);
    TablePrinter table({"unit", "description", "calibrated mean", "calibrated sd",
                        "true mean", "true sd", "samples"});
    for (int u = 0; u < kNumCostUnits; ++u) {
      const Gaussian& g = report.units.Get(u);
      const CostUnitTruth& truth = profile.unit(u);
      table.AddRow({CostUnitSymbol(u), CostUnitName(u), Fmt(g.mean, 6),
                    Fmt(g.stddev(), 6), Fmt(truth.mean, 6), Fmt(truth.stddev(), 6),
                    std::to_string(report.samples[u].size())});
    }
    table.Print();
  }
  std::printf(
      "\nExpected shape: c_r >> c_s >> c_t > c_i > c_o; calibrated values "
      "close to (but not exactly) the truth — the residual gap is the cost "
      "model's 'error in g'. Note c_r calibrates below its uncached truth "
      "because the buffer cache absorbs part of the random reads.\n");
  return 0;
}
