// Uncertainty-driven scheduling scenario suite (paper §6.5.3, ROADMAP
// item 3): the deterministic SLO simulator replays seeded query streams
// with tight deadlines against K server slots, comparing the
// distribution-aware policy pair (admission by P[t > deadline] < eps,
// dispatch by risk-adjusted slack) against the two baselines the
// Kleerekoper et al. question names — mean-only and optimizer-cost-only.
//
// Acceptance gates (the CI JSON's "pass"):
//   - on the poisson and zipf-skew mixes the distribution policy has
//     STRICTLY fewer SLO violations than both baselines, at
//     equal-or-better goodput (SLO-met admitted completions per second
//     of makespan — so reject-everything scores zero and
//     admit-everything pays for its violations);
//   - the simulator event log is byte-identical across service thread
//     counts and across reruns at a fixed seed (the scheduling analogue
//     of parallel_parity_test).
//
//   build/bench/bench_schedule_sim

#include <cstdio>
#include <string>
#include <vector>

#include "cost/calibration.h"
#include "datagen/tpch.h"
#include "hw/machine.h"
#include "sampling/sample_db.h"
#include "schedule/simulator.h"

using namespace uqp;

namespace {

struct PolicyRow {
  const char* name;
  SimPolicy policy;
  SimMetrics metrics;
  uint64_t log_hash = 0;
};

ServiceOptions MakeServiceOptions(int num_threads) {
  ServiceOptions o;
  o.predictor.num_threads = num_threads;
  o.predictor.max_batch_size = 0;
  o.feedback.enabled = true;  // observations flow back; detect-only drift
  return o;
}

std::vector<PolicyRow> MakePolicies(double eps) {
  std::vector<PolicyRow> rows(3);
  rows[0].name = "distribution";
  rows[0].policy.admission = {AdmissionPolicyKind::kDistribution, eps, 1.0};
  rows[0].policy.ordering = {OrderingPolicyKind::kRiskAdjustedSlack, eps};
  rows[1].name = "mean_only";
  rows[1].policy.admission = {AdmissionPolicyKind::kMeanOnly, eps, 1.0};
  rows[1].policy.ordering = {OrderingPolicyKind::kExpectedSlack, eps};
  rows[2].name = "cost_only";
  rows[2].policy.admission = {AdmissionPolicyKind::kCostOnly, eps, 1.0};
  rows[2].policy.ordering = {OrderingPolicyKind::kFifo, eps};
  return rows;
}

}  // namespace

int main() {
  Database db = MakeTpchDatabase(TpchConfig::Profile("tiny"));
  SimulatedMachine machine(MachineProfile::PC1(), 23);
  Calibrator calibrator(&machine);
  const CostUnits units = calibrator.Calibrate();
  SampleOptions sample_options;
  sample_options.sampling_ratio = 0.05;
  const SampleDb samples = SampleDb::Build(db, sample_options);

  const double kEps = 0.15;

  // Three traffic shapes. The first two carry the policy-dominance gate;
  // the bursty randwalk row is reported for the trajectory.
  struct ScenarioRow {
    const char* name;
    ScenarioOptions options;
    bool gated;
  };
  std::vector<ScenarioRow> scenarios;
  {
    ScenarioRow poisson{"poisson_seljoin", {}, true};
    poisson.options.workload = "seljoin";
    poisson.options.trace = "poisson";
    poisson.options.mix = "roundrobin";
    poisson.options.num_jobs = 240;
    poisson.options.servers = 2;
    poisson.options.load = 0.9;
    poisson.options.seed = 1;
    scenarios.push_back(poisson);

    ScenarioRow zipf{"zipf_mixed", {}, true};
    zipf.options.workload = "mixed";
    zipf.options.workload_size = 1;
    zipf.options.trace = "poisson";
    zipf.options.mix = "zipf";
    zipf.options.zipf_z = 1.0;
    zipf.options.num_jobs = 240;
    zipf.options.servers = 2;
    zipf.options.load = 0.9;
    zipf.options.seed = 2;
    scenarios.push_back(zipf);

    ScenarioRow burst{"randwalk_seljoin", {}, false};
    burst.options.workload = "seljoin";
    burst.options.trace = "randwalk";
    burst.options.mix = "roundrobin";
    burst.options.num_jobs = 240;
    burst.options.servers = 2;
    burst.options.load = 0.9;
    burst.options.seed = 3;
    scenarios.push_back(burst);
  }

  Simulator sim(&db, &samples, units, MakeServiceOptions(0));

  bool policy_pass = true;
  std::string scen_json = "[";
  bool first_scen = true;
  // Kept for the determinism probe below.
  ScheduleScenario det_scenario;
  SimPolicy det_policy;

  for (auto& row : scenarios) {
    ScheduleScenario scenario =
        BuildScenario(db, samples, units, &machine, row.options);
    auto policies = MakePolicies(kEps);
    for (auto& p : policies) {
      SimResult r = sim.Run(scenario, p.policy);
      p.metrics = r.metrics;
      p.log_hash = EventLogHash(r.event_log);
    }
    const SimMetrics& dist = policies[0].metrics;
    const SimMetrics& mean = policies[1].metrics;
    const SimMetrics& cost = policies[2].metrics;
    bool scen_pass = true;
    if (row.gated) {
      scen_pass = dist.violations < mean.violations &&
                  dist.violations < cost.violations &&
                  dist.goodput_per_s >= mean.goodput_per_s &&
                  dist.goodput_per_s >= cost.goodput_per_s;
      policy_pass = policy_pass && scen_pass;
    }

    std::printf("--- scenario %s (trace=%s mix=%s load=%.2f servers=%d "
                "jobs=%zu rate=%.1f qps) ---\n",
                row.name, row.options.trace.c_str(), row.options.mix.c_str(),
                row.options.load, row.options.servers, row.options.num_jobs,
                scenario.rate_qps);
    std::string pol_json = "[";
    for (size_t i = 0; i < policies.size(); ++i) {
      const auto& p = policies[i];
      std::printf(
          "  %-13s admitted %3llu/%3llu  violations %3llu (%.1f%%)  "
          "goodput %.2f/s  wasted %.0f ms\n",
          p.name, (unsigned long long)p.metrics.admitted,
          (unsigned long long)p.metrics.arrivals,
          (unsigned long long)p.metrics.violations,
          100.0 * p.metrics.violation_rate, p.metrics.goodput_per_s,
          p.metrics.wasted_ms);
      char buf[512];
      std::snprintf(
          buf, sizeof buf,
          "%s{\"policy\":\"%s\",\"admitted\":%llu,\"rejected\":%llu,"
          "\"violations\":%llu,\"violation_rate\":%.4f,"
          "\"goodput_per_s\":%.3f,\"makespan_ms\":%.1f,\"wasted_ms\":%.1f,"
          "\"admission_checks\":%llu,\"dispatch_decisions\":%llu,"
          "\"event_log_hash\":\"%016llx\"}",
          i == 0 ? "" : ",", p.name, (unsigned long long)p.metrics.admitted,
          (unsigned long long)p.metrics.rejected,
          (unsigned long long)p.metrics.violations, p.metrics.violation_rate,
          p.metrics.goodput_per_s, p.metrics.makespan_ms, p.metrics.wasted_ms,
          (unsigned long long)p.metrics.admission_checks,
          (unsigned long long)p.metrics.dispatch_decisions,
          (unsigned long long)p.log_hash);
      pol_json += buf;
    }
    pol_json += "]";
    char buf[384];
    std::snprintf(buf, sizeof buf,
                  "%s{\"scenario\":\"%s\",\"trace\":\"%s\",\"mix\":\"%s\","
                  "\"load\":%.2f,\"servers\":%d,\"jobs\":%zu,"
                  "\"rate_qps\":%.2f,\"gated\":%s,\"pass\":%s,\"policies\":",
                  first_scen ? "" : ",", row.name, row.options.trace.c_str(),
                  row.options.mix.c_str(), row.options.load,
                  row.options.servers, row.options.num_jobs, scenario.rate_qps,
                  row.gated ? "true" : "false", scen_pass ? "true" : "false");
    scen_json += buf;
    scen_json += pol_json;
    scen_json += "}";
    first_scen = false;

    if (row.gated && det_scenario.pool.empty()) {
      det_scenario = std::move(scenario);
      det_policy = policies[0].policy;
    }
  }

  // Determinism gate: the same (scenario, policy) must produce a
  // byte-identical event log at one worker thread, at four, and on a
  // rerun. Predictions are bit-identical across thread counts (the
  // parallel-parity contract), and the simulator itself draws nothing —
  // so the whole decision trace must match byte for byte.
  Simulator sim_t1(&db, &samples, units, MakeServiceOptions(1));
  Simulator sim_t4(&db, &samples, units, MakeServiceOptions(4));
  const SimResult d1 = sim_t1.Run(det_scenario, det_policy);
  const SimResult d4 = sim_t4.Run(det_scenario, det_policy);
  const SimResult d1b = sim_t1.Run(det_scenario, det_policy);
  const bool det_threads = d1.event_log == d4.event_log;
  const bool det_rerun = d1.event_log == d1b.event_log;
  const bool det_pass = det_threads && det_rerun && !d1.event_log.empty();

  std::printf("\ndeterminism: log %zu bytes, hash %016llx — threads %s, "
              "rerun %s\n",
              d1.event_log.size(), (unsigned long long)EventLogHash(d1.event_log),
              det_threads ? "identical" : "DIVERGED",
              det_rerun ? "identical" : "DIVERGED");

  const bool pass = policy_pass && det_pass;
  std::printf("\n%s\n", pass ? "PASS" : "FAIL");

  scen_json += "]";
  std::printf(
      "{\"bench\":\"schedule_sim\",\"eps\":%.3f,\"scenarios\":%s,"
      "\"determinism\":{\"log_bytes\":%zu,\"log_hash\":\"%016llx\","
      "\"threads_identical\":%s,\"rerun_identical\":%s,\"pass\":%s},"
      "\"feedback_reports\":%llu,\"policy_pass\":%s,\"pass\":%s}\n",
      kEps, scen_json.c_str(), d1.event_log.size(),
      (unsigned long long)EventLogHash(d1.event_log),
      det_threads ? "true" : "false", det_rerun ? "true" : "false",
      det_pass ? "true" : "false",
      (unsigned long long)d1.service_stats.feedback_reports,
      policy_pass ? "true" : "false", pass ? "true" : "false");
  return pass ? 0 : 1;
}
