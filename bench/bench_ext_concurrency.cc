// Extension bench (paper §8 conclusion): multi-query prediction by
// "viewing the interference between queries as changing the distribution
// of the c's". The calibration queries are re-run at each multiprogramming
// level (MPL); the per-level cost-unit distributions feed the unchanged
// predictor (operator selectivities are independent of concurrency, as the
// paper observes).
//
// Shape to reproduce: calibrated unit means inflate with MPL (I/O first,
// CPU once cores oversubscribe); predictions at MPL k made with MPL-k
// units stay accurate and strongly rank-correlated, while predictions made
// with the idle-machine units underestimate badly at high MPL.

#include <cstdio>

#include "bench_common.h"
#include "core/variance.h"
#include "cost/calibration.h"
#include "costfunc/fitter.h"
#include "engine/executor.h"
#include "engine/planner.h"
#include "hw/machine.h"
#include "math/stats.h"
#include "sampling/estimator.h"

using namespace uqp;
using namespace uqp::bench;

int main() {
  PrintBanner("Extension: prediction under concurrency (MPL-aware cost units)");

  HarnessOptions hopts;
  hopts.profile = "1gb";
  ExperimentHarness harness(hopts);
  const Database& db = harness.db();

  SimulatedMachine machine(MachineProfile::PC1(), 333);
  Calibrator calibrator(&machine);

  auto queries = MakeWorkload(db, "seljoin", 77, 27);
  std::vector<Plan> plans;
  std::vector<ExecResult> fulls;
  Executor executor(&db);
  for (auto& q : queries) {
    auto plan = OptimizePlan(std::move(q.logical), db);
    if (!plan.ok()) continue;
    auto full = executor.Execute(*plan, ExecOptions{});
    if (!full.ok()) continue;
    plans.push_back(std::move(plan).value());
    fulls.push_back(std::move(full).value());
  }

  SampleOptions so;
  so.sampling_ratio = 0.05;
  const SampleDb samples = SampleDb::Build(db, so);
  SamplingEstimator estimator(&db, &samples);
  CostFunctionFitter fitter(&db);

  // Machine-independent per-query artifacts, computed once.
  std::vector<PlanEstimates> estimates;
  std::vector<std::vector<OperatorCostFunctions>> funcs;
  for (const Plan& plan : plans) {
    auto est = estimator.Estimate(plan);
    auto f = fitter.FitPlan(plan, *est);
    estimates.push_back(std::move(est).value());
    funcs.push_back(std::move(f).value());
  }

  const CostUnits idle_units = calibrator.CalibrateAt(1);

  TablePrinter table({"MPL", "c_s (ms)", "c_r (ms)", "c_t (us)",
                      "r_s (MPL units)", "mean rel err (MPL units)",
                      "mean rel err (idle units)"});
  for (int mpl : {1, 2, 4, 8}) {
    const CostUnits units = calibrator.CalibrateAt(mpl);

    std::vector<QueryOutcome> outcomes;
    double rel_mpl = 0.0, rel_idle = 0.0;
    for (size_t i = 0; i < plans.size(); ++i) {
      const double actual = machine.ExecuteAveraged(fulls[i], 5, mpl);
      const VarianceEngine engine(&estimates[i], &funcs[i], &units);
      const VarianceBreakdown mpl_pred = engine.Compute();
      const VarianceEngine idle_engine(&estimates[i], &funcs[i], &idle_units);
      const double idle_mean = idle_engine.Compute().mean;

      QueryOutcome outcome;
      outcome.predicted_mean = mpl_pred.mean;
      outcome.predicted_stddev = std::sqrt(std::max(0.0, mpl_pred.variance));
      outcome.actual_time = actual;
      outcomes.push_back(outcome);
      rel_mpl += std::fabs(mpl_pred.mean - actual) / actual;
      rel_idle += std::fabs(idle_mean - actual) / actual;
    }
    const EvaluationSummary summary = Evaluate(outcomes);
    const double inv = plans.empty() ? 0.0 : 1.0 / static_cast<double>(plans.size());
    table.AddRow({std::to_string(mpl), Fmt(units.Get(kCostSeqPage).mean, 4),
                  Fmt(units.Get(kCostRandPage).mean, 3),
                  Fmt(units.Get(kCostTuple).mean * 1000.0, 3),
                  Fmt(summary.spearman, 4), Fmt(rel_mpl * inv, 4),
                  Fmt(rel_idle * inv, 4)});
  }
  table.Print();
  std::printf(
      "\nExpected shape: unit means inflate with MPL (I/O immediately, CPU "
      "once the %d cores oversubscribe); relative error with MPL-aware "
      "units stays near the MPL=1 level while idle-unit predictions "
      "degrade monotonically; r_s stays strong at every MPL.\n",
      MachineProfile::PC1().cores);
  return 0;
}
