// Reproduces Figure 12 and Tables 6-9: quality of the sampling-based
// selectivity estimates and of their estimated uncertainties, measured per
// selective operator (selections and joins) across the benchmark queries.
//
//   Table 6: r_s (r_p) between estimated errors (sigma of rho) and actual
//            errors |rho_est - rho_true|.
//   Table 7: r_s (r_p) between estimated and actual selectivities.
//   Table 8: mean relative error of the selectivity estimates.
//   Table 9: r_s (r_p) restricted to operators with relative error > 0.2.
//   Fig 12:  scatter of estimated vs actual selectivity.
//
// Shape to reproduce: Table 7 correlations ~1 (estimates essentially on
// the diagonal); Table 8 relative errors shrink as SR grows; Table 6
// correlations moderate (weaker than the t_q-level correlations, since
// most errors are tiny); Table 9 correlations recover once attention is
// restricted to the operators with substantial errors.

#include <cstdio>

#include "bench_common.h"
#include "math/stats.h"

using namespace uqp;
using namespace uqp::bench;

namespace {

struct SelData {
  std::vector<double> est, truth, sigma, abs_err, rel_err;
};

SelData Collect(const EvaluationResult& result) {
  SelData d;
  for (const QueryRecord& r : result.records) {
    for (size_t i = 0; i < r.op_sel_est.size(); ++i) {
      d.est.push_back(r.op_sel_est[i]);
      d.truth.push_back(r.op_sel_true[i]);
      d.sigma.push_back(r.op_sel_sigma[i]);
      d.abs_err.push_back(std::fabs(r.op_sel_est[i] - r.op_sel_true[i]));
      d.rel_err.push_back(r.op_sel_true[i] > 0.0
                              ? d.abs_err.back() / r.op_sel_true[i]
                              : 0.0);
    }
  }
  return d;
}

std::string Corr(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() < 3) return "N/A";
  return Fmt(SpearmanCorrelation(a, b), 4) + " (" +
         Fmt(PearsonCorrelation(a, b), 4) + ")";
}

}  // namespace

int main() {
  const BenchConfig cfg = BenchConfig::FromEnv();
  PrintBanner("Figure 12 + Tables 6-9: selectivity estimate quality");

  const std::vector<double> ratios =
      cfg.full ? std::vector<double>{0.01, 0.05, 0.1, 0.2, 0.4}
               : std::vector<double>{0.01, 0.05, 0.1, 0.2};

  for (const auto& setting : ExperimentHarness::PaperSettings()) {
    HarnessOptions options;
    options.profile = setting.profile;
    options.zipf = setting.zipf;
    ExperimentHarness harness(options);
    for (const std::string& wl : kWorkloads) {
      auto st = harness.LoadWorkload(wl, cfg.SizeFor(wl, setting.profile));
      if (!st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
    }
    std::printf("\n-- %s --\n", setting.label.c_str());
    TablePrinter table({"SR", "workload", "T6: sd vs err", "T7: est vs true",
                        "T8: mean rel err", "T9: corr (rel err > 0.2)", "ops"});
    for (double sr : ratios) {
      for (const std::string& wl : kWorkloads) {
        auto result = harness.Evaluate(wl, "PC1", sr);
        if (!result.ok()) {
          std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
          return 1;
        }
        const SelData d = Collect(*result);
        // Table 9 subset.
        SelData big;
        for (size_t i = 0; i < d.rel_err.size(); ++i) {
          if (d.rel_err[i] > 0.2) {
            big.sigma.push_back(d.sigma[i]);
            big.abs_err.push_back(d.abs_err[i]);
          }
        }
        table.AddRow({Fmt(sr, 2), wl, Corr(d.sigma, d.abs_err),
                      Corr(d.est, d.truth), Fmt(Mean(d.rel_err), 4),
                      Corr(big.sigma, big.abs_err),
                      std::to_string(d.est.size())});
      }
    }
    table.Print();

    // Figure 12 scatter (one representative slice per setting).
    if (setting.label == "skewed-1gb") {
      for (const std::string& wl : kWorkloads) {
        auto result = harness.Evaluate(wl, "PC1", 0.05);
        if (!result.ok()) continue;
        const SelData d = Collect(*result);
        std::printf("\n# Figure 12 scatter (%s, skewed 1GB, SR=0.05):"
                    " est_sel true_sel\n", wl.c_str());
        const size_t step = std::max<size_t>(1, d.est.size() / 60);
        for (size_t i = 0; i < d.est.size(); i += step) {
          std::printf("  %.6f %.6f\n", d.est[i], d.truth[i]);
        }
      }
    }
  }
  std::printf(
      "\nExpected shape (paper Fig. 12 / Tables 6-9): estimated vs actual "
      "selectivities on the diagonal (T7 ~ 1); relative errors mostly < 0.2 "
      "and shrinking with SR (T8); sd-vs-error correlation moderate overall "
      "(T6) but strong on the subset with substantial errors (T9).\n");
  return 0;
}
