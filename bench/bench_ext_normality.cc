// Extension bench: validates the asymptotic-normality analysis of §5.2
// (Theorems 1/2) by comparing the analytic N(E[t_q], Var[t_q]) against a
// Monte-Carlo simulation of t_q = g(c, X) through the same fitted cost
// functions (the §5.2.4 fallback path).
//
// Shape to reproduce: analytic and Monte-Carlo means agree to within a few
// percent; the Kolmogorov-Smirnov distance of the simulated t_q to its own
// moment-matched normal SHRINKS as the sampling ratio grows (convergence
// in distribution); the analytic variance upper-brackets the Monte-Carlo
// variance (covariance bounds are conservative, independent draws are not).

#include <cstdio>

#include "bench_common.h"
#include "core/montecarlo.h"
#include "core/variance.h"
#include "costfunc/fitter.h"
#include "engine/planner.h"
#include "math/stats.h"
#include "sampling/estimator.h"

using namespace uqp;
using namespace uqp::bench;

int main() {
  PrintBanner("Extension: asymptotic normality of t_q (analytic vs Monte-Carlo)");

  HarnessOptions hopts;
  hopts.profile = "1gb";
  ExperimentHarness harness(hopts);
  const Database& db = harness.db();
  const CostUnits units = harness.UnitsFor("PC1");

  auto queries = MakeWorkload(db, "seljoin", 1234, 18);
  std::vector<Plan> plans;
  for (auto& q : queries) {
    auto plan = OptimizePlan(std::move(q.logical), db);
    if (plan.ok()) plans.push_back(std::move(plan).value());
  }

  TablePrinter table({"SR", "mean |dE|/E", "mean sd ratio (MC/analytic)",
                      "mean KS to normal", "max KS"});
  for (double sr : {0.01, 0.05, 0.2}) {
    SampleOptions so;
    so.sampling_ratio = sr;
    const SampleDb samples = SampleDb::Build(db, so);
    SamplingEstimator estimator(&db, &samples);
    CostFunctionFitter fitter(&db);

    double dmean = 0.0, sd_ratio = 0.0, ks_acc = 0.0, ks_max = 0.0;
    int n = 0;
    for (const Plan& plan : plans) {
      auto est = estimator.Estimate(plan);
      if (!est.ok()) continue;
      auto funcs = fitter.FitPlan(plan, *est);
      if (!funcs.ok()) continue;
      const VarianceEngine engine(&*est, &*funcs, &units);
      const VarianceBreakdown analytic = engine.Compute();
      const MonteCarloResult mc = SimulatePrediction(*est, *funcs, units);
      if (analytic.mean <= 0.0 || analytic.variance <= 0.0) continue;
      dmean += std::fabs(mc.mean - analytic.mean) / analytic.mean;
      sd_ratio += std::sqrt(mc.variance / analytic.variance);
      const double ks = mc.KsDistanceToNormal(mc.mean, mc.variance);
      ks_acc += ks;
      ks_max = std::max(ks_max, ks);
      ++n;
    }
    const double inv = n > 0 ? 1.0 / n : 0.0;
    table.AddRow({Fmt(sr, 2), Fmt(dmean * inv, 4), Fmt(sd_ratio * inv, 4),
                  Fmt(ks_acc * inv, 4), Fmt(ks_max, 4)});
  }
  table.Print();
  std::printf(
      "\nExpected shape: |dE|/E at the percent level; sd ratio <= 1 "
      "(analytic variance conservatively includes covariance bounds); KS "
      "distance small and shrinking with SR (Theorems 1/2: the fitted cost "
      "functions converge to normal as samples grow).\n");
  return 0;
}
