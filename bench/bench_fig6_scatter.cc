// Reproduces Figure 6: scatter case studies where (3) both r_s and r_p are
// good — near-linear positive correlation — and (4) both are weaker.

#include <cstdio>

#include "bench_common.h"

using namespace uqp;
using namespace uqp::bench;

namespace {

void RunCase(const char* title, const char* profile, double zipf,
             const char* machine, double sr, int size) {
  HarnessOptions options;
  options.profile = profile;
  options.zipf = zipf;
  ExperimentHarness harness(options);
  auto st = harness.LoadWorkload("tpch", size);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return;
  }
  auto result = harness.Evaluate("tpch", machine, sr);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return;
  }
  std::printf("\n-- %s --\n", title);
  std::printf("# scatter: sigma_i (ms)  error_i (ms)\n");
  for (const QueryRecord& r : result->records) {
    std::printf("  %12.3f %12.3f\n", r.outcome.predicted_stddev,
                r.outcome.error());
  }
  const LinearFit fit = FitLine(result->summary.sigmas, result->summary.errors);
  std::printf("best-fit: error = %.4f * sigma + %.4f\n", fit.slope, fit.intercept);
  std::printf("r_s = %.4f   r_p = %.4f\n", result->summary.spearman,
              result->summary.pearson);
}

}  // namespace

int main() {
  const BenchConfig cfg = BenchConfig::FromEnv();
  PrintBanner("Figure 6: correlation case studies (TPCH)");
  RunCase("Case (3): TPCH, skewed 10GB, PC1, SR = 0.05 (both good)", "10gb",
          1.0, "PC1", 0.05, cfg.SizeFor("tpch", "10gb"));
  RunCase("Case (4): TPCH, uniform 1GB, PC1, SR = 0.01 (both weaker)", "1gb",
          0.0, "PC1", 0.01, cfg.SizeFor("tpch", "1gb"));
  std::printf(
      "\nExpected shape (paper Fig. 6): case (3) close to positive linear; "
      "case (4) visibly noisier with lower correlations.\n");
  return 0;
}
