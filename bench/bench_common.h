#pragma once

#include <cstdlib>
#include <string>
#include <vector>

#include "exp/harness.h"
#include "exp/tableio.h"

namespace uqp::bench {

/// Shared knobs for the experiment drivers. UQP_FULL=1 runs the paper-size
/// grids; the default is a reduced grid sized so the whole bench suite
/// completes in a few minutes on one core.
struct BenchConfig {
  bool full = false;
  int micro_queries = 45;    ///< selections + joins
  int seljoin_queries = 27;
  int tpch_queries = 28;
  int queries_10gb_cap = 24; ///< per workload at the 10gb profile

  static BenchConfig FromEnv() {
    BenchConfig cfg;
    const char* full = std::getenv("UQP_FULL");
    if (full != nullptr && full[0] == '1') {
      cfg.full = true;
      cfg.micro_queries = 109;
      cfg.seljoin_queries = 54;
      cfg.tpch_queries = 42;
      cfg.queries_10gb_cap = 56;
    }
    return cfg;
  }

  int SizeFor(const std::string& workload, const std::string& profile) const {
    int n = workload == "micro"     ? micro_queries
            : workload == "seljoin" ? seljoin_queries
                                    : tpch_queries;
    if (profile == "10gb" && n > queries_10gb_cap) n = queries_10gb_cap;
    return n;
  }
};

inline const std::vector<double> kSamplingRatios = {0.01, 0.05, 0.1};
inline const std::vector<std::string> kMachines = {"PC1", "PC2"};
inline const std::vector<std::string> kWorkloads = {"micro", "seljoin", "tpch"};

}  // namespace uqp::bench
