// Performance microbenchmarks (google-benchmark): the paper's claim (§1,
// §6.4) is that producing the *distribution* costs almost the same as the
// point estimate of [48] — the added work (S²_n counters, variance
// assembly) is small next to the sample run itself.

#include <benchmark/benchmark.h>

#include "core/predictor.h"
#include "cost/calibration.h"
#include "datagen/tpch.h"
#include "engine/planner.h"
#include "hw/machine.h"
#include "math/nnls.h"
#include "sampling/sample_db.h"
#include "workload/common.h"

namespace uqp {
namespace {

struct Fixture {
  Database db;
  SampleDb samples;
  CostUnits units;
  std::vector<Plan> plans;

  static Fixture& Get() {
    static Fixture* f = [] {
      auto* fx = new Fixture();
      fx->db = MakeTpchDatabase(TpchConfig::Profile("tiny"));
      SampleOptions so;
      so.sampling_ratio = 0.05;
      fx->samples = SampleDb::Build(fx->db, so);
      SimulatedMachine machine(MachineProfile::PC1(), 7);
      Calibrator calibrator(&machine);
      fx->units = calibrator.Calibrate();
      SelJoinOptions wo;
      wo.instances_per_template = 1;
      for (auto& q : MakeSelJoinWorkload(fx->db, wo)) {
        auto plan = OptimizePlan(std::move(q.logical), fx->db);
        if (plan.ok()) fx->plans.push_back(std::move(plan).value());
      }
      return fx;
    }();
    return *f;
  }
};

void BM_FullPrediction(benchmark::State& state) {
  Fixture& fx = Fixture::Get();
  Predictor predictor(&fx.db, &fx.samples, fx.units);
  size_t i = 0;
  for (auto _ : state) {
    auto p = predictor.Predict(fx.plans[i % fx.plans.size()]);
    benchmark::DoNotOptimize(p);
    ++i;
  }
}
BENCHMARK(BM_FullPrediction);

void BM_SelectivityEstimation(benchmark::State& state) {
  Fixture& fx = Fixture::Get();
  SamplingEstimator estimator(&fx.db, &fx.samples);
  size_t i = 0;
  for (auto _ : state) {
    auto e = estimator.Estimate(fx.plans[i % fx.plans.size()]);
    benchmark::DoNotOptimize(e);
    ++i;
  }
}
BENCHMARK(BM_SelectivityEstimation);

void BM_VarianceAssembly(benchmark::State& state) {
  Fixture& fx = Fixture::Get();
  Predictor predictor(&fx.db, &fx.samples, fx.units);
  auto pred = predictor.Predict(fx.plans[0]);
  for (auto _ : state) {
    auto b = predictor.Recompute(*pred, PredictorVariant::kAll,
                                 CovarianceBoundKind::kBest);
    benchmark::DoNotOptimize(b);
  }
}
BENCHMARK(BM_VarianceAssembly);

void BM_FullQueryExecution(benchmark::State& state) {
  Fixture& fx = Fixture::Get();
  Executor executor(&fx.db);
  size_t i = 0;
  for (auto _ : state) {
    auto r = executor.Execute(fx.plans[i % fx.plans.size()], ExecOptions{});
    benchmark::DoNotOptimize(r);
    ++i;
  }
}
BENCHMARK(BM_FullQueryExecution);

void BM_Nnls(benchmark::State& state) {
  // Representative C4' fit: 7 points, 3 coefficients.
  NnlsProblem p;
  p.rows = 7;
  p.cols = 3;
  p.nonnegative = {true, true, false};
  for (int i = 0; i < 7; ++i) {
    const double x = 0.1 + 0.1 * i;
    p.a.insert(p.a.end(), {x * x, x, 1.0});
    p.y.push_back(3.0 * x * x + 2.0 * x + 0.5);
  }
  for (auto _ : state) {
    auto r = SolveNnls(p);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Nnls);

}  // namespace
}  // namespace uqp

BENCHMARK_MAIN();
