// Reproduces Figures 8 and 10: comparison of the complete framework (All)
// against the simplified variants (paper §6.3.3):
//   V2 NoVar[c] — ignore cost-unit uncertainty,
//   V3 NoVar[X] — ignore selectivity uncertainty,
//   V4 NoCov    — ignore covariances between selectivity estimates,
// in terms of r_s for the TPCH queries at small sampling ratios.
//
// Shape to reproduce: dropping Var[c] hurts everywhere (large r_s drop);
// dropping Var[X] hurts at sub-1% sampling ratios and stops mattering by
// SR = 1%; dropping covariances usually matters little but occasionally
// costs noticeably; All is the most robust variant.

#include <cstdio>

#include "bench_common.h"

using namespace uqp;
using namespace uqp::bench;

namespace {

void RunSetting(const char* title, const char* profile, double zipf,
                const char* machine, const std::vector<double>& ratios,
                int size) {
  HarnessOptions options;
  options.profile = profile;
  options.zipf = zipf;
  ExperimentHarness harness(options);
  auto st = harness.LoadWorkload("tpch", size);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return;
  }
  std::printf("\n-- %s --\n", title);
  TablePrinter table({"SR", "All", "NoVar[c]", "NoVar[X]", "NoCov"});
  const PredictorVariant variants[] = {
      PredictorVariant::kAll, PredictorVariant::kNoVarC,
      PredictorVariant::kNoVarX, PredictorVariant::kNoCov};
  for (double sr : ratios) {
    std::vector<std::string> row = {Fmt(sr, 4)};
    for (PredictorVariant v : variants) {
      auto result = harness.Evaluate("tpch", machine, sr, v);
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return;
      }
      row.push_back(Fmt(result->summary.spearman, 4));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
}

}  // namespace

int main() {
  const BenchConfig cfg = BenchConfig::FromEnv();
  PrintBanner("Figures 8 + 10: All vs NoVar[c] vs NoVar[X] vs NoCov (r_s, TPCH)");
  RunSetting("Uniform 1GB, PC2 (Fig 8a)", "1gb", 0.0, "PC2",
             {0.0005, 0.001, 0.005, 0.01}, cfg.SizeFor("tpch", "1gb"));
  RunSetting("Uniform 10GB, PC1 (Fig 8b)", "10gb", 0.0, "PC1",
             {0.0005, 0.001, 0.005, 0.01}, cfg.SizeFor("tpch", "10gb"));
  RunSetting("Skewed 1GB, PC1 (Fig 10a)", "1gb", 1.0, "PC1",
             {0.0005, 0.001, 0.005, 0.01}, cfg.SizeFor("tpch", "1gb"));
  RunSetting("Skewed 10GB, PC2 (Fig 10b)", "10gb", 1.0, "PC2",
             {0.0005, 0.001, 0.005, 0.01}, cfg.SizeFor("tpch", "10gb"));
  std::printf(
      "\nExpected shape (paper Figs. 8/10): NoVar[c] drops r_s by ~0.25-0.5 "
      "everywhere; NoVar[X] drops it at SR < 1%% and converges to All by SR "
      "= 1%%; NoCov is usually close to All with occasional drops; All is "
      "the most robust.\n");
  return 0;
}
