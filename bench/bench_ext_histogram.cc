// Extension bench (§3.2): the histogram-based scan-selectivity alternative
// the paper names as future work, compared against the sampling estimator.
//
// Shape to reproduce: the two variants are comparable on these workloads
// — full-data equi-depth histograms with range pairing are accurate for
// single-column ranges, which dominate MICRO/SELJOIN scan predicates. The
// sampling estimator's structural advantages (unbiased under arbitrary
// predicate correlation, variance that adapts to the data instead of a
// fixed resolution heuristic, and a consistent treatment of joins) are
// exactly the cases histograms cannot cover; see
// GeeEstimator.BeatsOptimizerOnCorrelatedGroupColumns for the correlated
// counterexample in test form.

#include <cstdio>

#include "bench_common.h"
#include "core/variance.h"
#include "costfunc/fitter.h"
#include "engine/executor.h"
#include "engine/planner.h"
#include "sampling/estimator.h"

using namespace uqp;
using namespace uqp::bench;

int main() {
  PrintBanner("Extension: sampling vs histogram scan-selectivity estimation");

  for (double zipf : {0.0, 1.0}) {
    HarnessOptions hopts;
    hopts.profile = "1gb";
    hopts.zipf = zipf;
    ExperimentHarness harness(hopts);
    const Database& db = harness.db();
    const CostUnits units = harness.UnitsFor("PC1");
    SimulatedMachine machine(MachineProfile::PC1(), 555);

    SampleOptions so;
    so.sampling_ratio = 0.05;
    const SampleDb samples = SampleDb::Build(db, so);
    CostFunctionFitter fitter(&db);
    Executor executor(&db);

    std::printf("\n-- %s 1gb, SR = 0.05 --\n", zipf > 0.0 ? "skewed" : "uniform");
    TablePrinter table({"workload", "r_s sampling", "r_s histogram",
                        "rel err sampling", "rel err histogram"});
    for (const char* wl : {"micro", "seljoin"}) {
      auto queries = MakeWorkload(db, wl, 4242, 36);
      std::vector<Plan> plans;
      std::vector<double> actuals;
      for (auto& q : queries) {
        auto plan = OptimizePlan(std::move(q.logical), db);
        if (!plan.ok()) continue;
        auto full = executor.Execute(*plan, ExecOptions{});
        if (!full.ok()) continue;
        actuals.push_back(machine.ExecuteAveraged(*full, 5));
        plans.push_back(std::move(plan).value());
      }

      std::vector<std::string> row = {wl};
      double rel[2] = {0.0, 0.0};
      double rs[2] = {0.0, 0.0};
      int mode_idx = 0;
      for (ScanEstimateMode mode :
           {ScanEstimateMode::kSampling, ScanEstimateMode::kHistogram}) {
        SamplingEstimator estimator(&db, &samples,
                                    AggregateEstimateMode::kOptimizer, mode);
        std::vector<QueryOutcome> outcomes;
        for (size_t i = 0; i < plans.size(); ++i) {
          auto est = estimator.Estimate(plans[i]);
          if (!est.ok()) continue;
          auto funcs = fitter.FitPlan(plans[i], *est);
          if (!funcs.ok()) continue;
          const VarianceEngine engine(&*est, &*funcs, &units);
          const VarianceBreakdown b = engine.Compute();
          QueryOutcome o;
          o.predicted_mean = b.mean;
          o.predicted_stddev = std::sqrt(std::max(0.0, b.variance));
          o.actual_time = actuals[i];
          outcomes.push_back(o);
          rel[mode_idx] += std::fabs(b.mean - actuals[i]) / actuals[i];
        }
        rs[mode_idx] = Evaluate(outcomes).spearman;
        rel[mode_idx] /= std::max<size_t>(1, outcomes.size());
        ++mode_idx;
      }
      row.push_back(Fmt(rs[0], 4));
      row.push_back(Fmt(rs[1], 4));
      row.push_back(Fmt(rel[0], 4));
      row.push_back(Fmt(rel[1], 4));
      table.AddRow(std::move(row));
    }
    table.Print();
  }
  std::printf(
      "\nExpected shape: comparable r_s and relative error across the grid. "
      "Histograms earn their keep on single-column ranges over full-data "
      "statistics; the sampling estimator's edge is structural — unbiased "
      "under predicate correlation and joins, with calibrated rather than "
      "heuristic variances (paper S3.2).\n");
  return 0;
}
