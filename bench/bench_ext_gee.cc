// Extension bench (§3.2.2 future work): the GEE distinct-value estimator
// for aggregate output cardinalities, compared against the paper's
// optimizer fallback (Algorithm 1 lines 2-5).
//
// Shape to reproduce: GEE's aggregate-cardinality ratio error is no worse
// than the optimizer's on uniform data and clearly better on skewed data
// (where the optimizer's independence/ndistinct heuristics mislead), and
// the tq-level correlation with GEE enabled does not regress.

#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "core/variance.h"
#include "costfunc/fitter.h"
#include "engine/executor.h"
#include "engine/planner.h"
#include "math/stats.h"
#include "sampling/estimator.h"

using namespace uqp;
using namespace uqp::bench;

namespace {

double RatioError(double est, double truth) {
  est = std::max(est, 1.0);
  truth = std::max(truth, 1.0);
  return std::max(est / truth, truth / est);
}

}  // namespace

int main() {
  PrintBanner("Extension: GEE aggregate-cardinality estimation vs optimizer");

  for (double zipf : {0.0, 1.0}) {
    HarnessOptions hopts;
    hopts.profile = "1gb";
    hopts.zipf = zipf;
    ExperimentHarness harness(hopts);
    const Database& db = harness.db();

    auto queries = MakeWorkload(db, "tpch", 999, 28);
    std::vector<Plan> plans;
    Executor executor(&db);
    std::vector<ExecResult> fulls;
    for (auto& q : queries) {
      auto plan = OptimizePlan(std::move(q.logical), db);
      if (!plan.ok()) continue;
      auto full = executor.Execute(*plan, ExecOptions{});
      if (!full.ok()) continue;
      plans.push_back(std::move(plan).value());
      fulls.push_back(std::move(full).value());
    }

    SampleOptions so;
    so.sampling_ratio = 0.05;
    const SampleDb samples = SampleDb::Build(db, so);

    std::printf("\n-- %s 1gb, TPCH, SR = 0.05 --\n",
                zipf > 0.0 ? "skewed" : "uniform");
    TablePrinter table({"mode", "mean ratio error of M_agg", "worst ratio",
                        "aggregates"});
    for (AggregateEstimateMode mode :
         {AggregateEstimateMode::kOptimizer, AggregateEstimateMode::kGee}) {
      SamplingEstimator estimator(&db, &samples, mode);
      double err_acc = 0.0, err_max = 0.0;
      int count = 0;
      for (size_t i = 0; i < plans.size(); ++i) {
        auto est = estimator.Estimate(plans[i]);
        if (!est.ok()) continue;
        for (const PlanNode* node : plans[i].NodesPreorder()) {
          if (node->type != OpType::kAggregate || node->has_aggregate_below) {
            continue;
          }
          const double truth =
              fulls[i].ops[static_cast<size_t>(node->id)].out_rows;
          const double estimate =
              est->ops[static_cast<size_t>(node->id)].rho *
              node->leaf_row_product;
          const double err = RatioError(estimate, truth);
          err_acc += err;
          err_max = std::max(err_max, err);
          ++count;
        }
      }
      table.AddRow(
          {mode == AggregateEstimateMode::kGee ? "GEE (extension)" : "optimizer",
           Fmt(count > 0 ? err_acc / count : 0.0, 3), Fmt(err_max, 2),
           std::to_string(count)});
    }
    table.Print();
  }
  std::printf(
      "\nExpected shape: GEE's mean ratio error at or below the optimizer's, "
      "with the gap widening on the skewed database.\n");
  return 0;
}
