// Extra ablation (paper §5.3.2 / Appendix A.8): how the choice of
// covariance upper bound — B1 = sqrt(S²_rho(m,n) S²_rho'(m,n)),
// B2 = sqrt(Var Var'), B3 = f(n,m) g(rho) g(rho'), or min(B1,B3) — affects
// the predicted variance and the resulting correlation.
//
// Shape to reproduce: B1 <= B2 always (Theorem 7); the bounded share of
// Var[t_q] shrinks with tighter bounds; r_s is fairly insensitive to the
// choice (the bounds only cover the cross-operator covariance part).

#include <cstdio>

#include "bench_common.h"

using namespace uqp;
using namespace uqp::bench;

int main() {
  const BenchConfig cfg = BenchConfig::FromEnv();
  PrintBanner("Bound ablation: B1 / B2 / B3 / min(B1,B3) on SELJOIN");

  HarnessOptions options;
  options.profile = "1gb";
  ExperimentHarness harness(options);
  auto st = harness.LoadWorkload("seljoin", cfg.SizeFor("seljoin", "1gb"));
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  const struct {
    const char* name;
    CovarianceBoundKind kind;
  } kinds[] = {{"best=min(B1,B3)", CovarianceBoundKind::kBest},
               {"B1", CovarianceBoundKind::kB1},
               {"B2", CovarianceBoundKind::kB2},
               {"B3", CovarianceBoundKind::kB3}};

  for (double sr : {0.01, 0.05}) {
    std::printf("\n-- SR = %.2f --\n", sr);
    TablePrinter table({"bound", "r_s", "r_p", "mean bounded var share",
                        "mean sigma (ms)"});
    for (const auto& k : kinds) {
      auto result =
          harness.Evaluate("seljoin", "PC1", sr, PredictorVariant::kAll, k.kind);
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return 1;
      }
      double share = 0.0, sigma = 0.0;
      for (const QueryRecord& r : result->records) {
        if (r.breakdown.variance > 0.0) {
          share += r.breakdown.var_cov_bounds / r.breakdown.variance;
        }
        sigma += r.outcome.predicted_stddev;
      }
      const double n = static_cast<double>(result->records.size());
      table.AddRow({k.name, Fmt(result->summary.spearman, 4),
                    Fmt(result->summary.pearson, 4), Fmt(share / n, 4),
                    Fmt(sigma / n, 2)});
    }
    table.Print();
  }
  std::printf(
      "\nExpected shape: bounded-variance share ordered B1 <= B2 and "
      "best <= B1, best <= B3; r_s stable across bounds.\n");
  return 0;
}
