// Reproduces Figure 4 and Table 5: the distributional proximity metric
// D_n — the average |Pr(alpha) - Pr_n(alpha)| between the model-implied
// and empirical distributions of normalized prediction errors.
//
// Shape to reproduce: D_n below 0.3 in most settings, the majority below
// 0.2; MICRO tends to the largest D_n (the predictor is over-confident on
// trivially simple queries).

#include <cstdio>

#include "bench_common.h"

using namespace uqp;
using namespace uqp::bench;

int main() {
  const BenchConfig cfg = BenchConfig::FromEnv();
  PrintBanner("Figure 4 + Table 5: D_n across settings");

  for (const auto& setting : ExperimentHarness::PaperSettings()) {
    HarnessOptions options;
    options.profile = setting.profile;
    options.zipf = setting.zipf;
    ExperimentHarness harness(options);
    std::printf("\n-- %s --\n", setting.label.c_str());
    TablePrinter table({"SR", "MICRO/PC1", "MICRO/PC2", "SELJOIN/PC1",
                        "SELJOIN/PC2", "TPCH/PC1", "TPCH/PC2"});
    for (const std::string& wl : kWorkloads) {
      auto st = harness.LoadWorkload(wl, cfg.SizeFor(wl, setting.profile));
      if (!st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
    }
    for (double sr : kSamplingRatios) {
      std::vector<std::string> row = {Fmt(sr, 2)};
      for (const std::string& wl : kWorkloads) {
        for (const std::string& machine : kMachines) {
          auto result = harness.Evaluate(wl, machine, sr);
          if (!result.ok()) {
            std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
            return 1;
          }
          row.push_back(Fmt(result->summary.dn, 4));
        }
      }
      table.AddRow(std::move(row));
    }
    table.Print();
  }
  std::printf(
      "\nExpected shape (paper Table 5): D_n mostly <= 0.3, majority <= "
      "0.2.\n");
  return 0;
}
