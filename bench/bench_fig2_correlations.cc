// Reproduces Figure 2 and Table 4: Spearman r_s and Pearson r_p between
// the standard deviations of the predicted running-time distributions and
// the actual prediction errors, across benchmarks x databases x machines x
// sampling ratios.
//
// Paper shape to reproduce: strong positive correlations, with r_s above
// 0.7 (mostly above 0.9) for the large majority of settings, and r_s / r_p
// occasionally disagreeing (which motivates reporting both).

#include <cstdio>

#include "bench_common.h"

using namespace uqp;
using namespace uqp::bench;

int main() {
  const BenchConfig cfg = BenchConfig::FromEnv();
  PrintBanner("Figure 2 + Table 4: r_s (r_p) of sigma vs actual error");

  for (const auto& setting : ExperimentHarness::PaperSettings()) {
    if (!cfg.full && setting.profile == "10gb" && setting.zipf == 0.0) {
      // Reduced grid: keep one 10gb setting (skewed, used by Fig 2c).
    }
    HarnessOptions options;
    options.profile = setting.profile;
    options.zipf = setting.zipf;
    ExperimentHarness harness(options);

    std::printf("\n-- %s --\n", setting.label.c_str());
    TablePrinter table({"SR", "MICRO/PC1", "MICRO/PC2", "SELJOIN/PC1",
                        "SELJOIN/PC2", "TPCH/PC1", "TPCH/PC2"});
    for (const std::string& wl : kWorkloads) {
      auto st = harness.LoadWorkload(wl, cfg.SizeFor(wl, setting.profile));
      if (!st.ok()) {
        std::fprintf(stderr, "load %s failed: %s\n", wl.c_str(),
                     st.ToString().c_str());
        return 1;
      }
    }
    for (double sr : kSamplingRatios) {
      std::vector<std::string> row = {Fmt(sr, 2)};
      for (const std::string& wl : kWorkloads) {
        for (const std::string& machine : kMachines) {
          auto result = harness.Evaluate(wl, machine, sr);
          if (!result.ok()) {
            std::fprintf(stderr, "evaluate failed: %s\n",
                         result.status().ToString().c_str());
            return 1;
          }
          row.push_back(Fmt(result->summary.spearman, 4) + " (" +
                        Fmt(result->summary.pearson, 4) + ")");
        }
      }
      table.AddRow(std::move(row));
    }
    table.Print();
  }

  std::printf(
      "\nExpected shape (paper Table 4): strong positive correlation, r_s >= "
      "0.7 in the large majority of cells.\n");
  return 0;
}
