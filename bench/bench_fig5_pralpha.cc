// Reproduces Figure 5: the proximity of the empirical Pr_n(alpha) and the
// model-implied Pr(alpha) = 2 Phi(alpha) - 1 over the paper's alpha grid,
// for the three benchmarks on the uniform 10GB database (PC2, SR = 0.05).
//
// Shape to reproduce: Pr(alpha) overestimates at small alpha (the
// predictor understates its variance), most visibly for MICRO, less for
// SELJOIN/TPCH.

#include <cstdio>

#include "bench_common.h"
#include "math/gaussian.h"
#include "math/stats.h"

using namespace uqp;
using namespace uqp::bench;

int main() {
  const BenchConfig cfg = BenchConfig::FromEnv();
  PrintBanner("Figure 5: Pr_n(alpha) vs Pr(alpha), uniform 10GB, PC2, SR=0.05");

  HarnessOptions options;
  options.profile = "10gb";
  ExperimentHarness harness(options);

  const std::vector<double> alphas = Figure5AlphaGrid();
  for (const std::string& wl : kWorkloads) {
    auto st = harness.LoadWorkload(wl, cfg.SizeFor(wl, "10gb"));
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    auto result = harness.Evaluate(wl, "PC2", 0.05);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    std::vector<double> normalized;
    for (const QueryOutcome& o : result->outcomes()) {
      normalized.push_back(o.normalized_error());
    }
    std::printf("\n-- %s (n = %zu, D_n = %.4f) --\n", wl.c_str(),
                normalized.size(), result->summary.dn);
    TablePrinter table({"alpha", "Pr_n(alpha)", "Pr(alpha)"});
    for (double a : alphas) {
      double count = 0.0;
      for (double e : normalized) {
        if (e <= a) count += 1.0;
      }
      const double prn = normalized.empty()
                             ? 0.0
                             : count / static_cast<double>(normalized.size());
      const double pr = 2.0 * NormalCdf(a) - 1.0;
      table.AddRow({Fmt(a, 1), Fmt(prn, 4), Fmt(pr, 4)});
    }
    table.Print();
  }
  std::printf(
      "\nExpected shape (paper Fig. 5): the two curves track each other, "
      "with Pr(alpha) above Pr_n(alpha) at small alpha.\n");
  return 0;
}
