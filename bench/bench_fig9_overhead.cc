// Reproduces Figures 9 and 11: the relative overhead of running the
// queries over the sample tables (the prediction-time cost) compared to
// running them over the base tables, as a function of the sampling ratio.
//
// Shape to reproduce: overhead grows with SR and stays small — around
// 0.01-0.15 over the SR in {0.01, 0.05, 0.1} range, smaller for the
// larger databases.

#include <cstdio>

#include "bench_common.h"

using namespace uqp;
using namespace uqp::bench;

int main() {
  const BenchConfig cfg = BenchConfig::FromEnv();
  PrintBanner("Figures 9 + 11: relative overhead of sampling");

  for (const std::string& machine : kMachines) {
    for (const std::string& wl : kWorkloads) {
      std::printf("\n-- %s, %s --\n", wl.c_str(), machine.c_str());
      TablePrinter table({"SR", "TPCH-1G", "TPCH-1G-Skew", "TPCH-10G",
                          "TPCH-10G-Skew"});
      // Harnesses are cached per setting across SR rows.
      std::vector<std::unique_ptr<ExperimentHarness>> harnesses;
      for (const auto& setting : ExperimentHarness::PaperSettings()) {
        HarnessOptions options;
        options.profile = setting.profile;
        options.zipf = setting.zipf;
        harnesses.push_back(std::make_unique<ExperimentHarness>(options));
        auto st = harnesses.back()->LoadWorkload(
            wl, cfg.SizeFor(wl, setting.profile));
        if (!st.ok()) {
          std::fprintf(stderr, "%s\n", st.ToString().c_str());
          return 1;
        }
      }
      for (double sr : kSamplingRatios) {
        std::vector<std::string> row = {Fmt(sr, 2)};
        for (auto& harness : harnesses) {
          auto result = harness->Evaluate(wl, machine, sr);
          if (!result.ok()) {
            std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
            return 1;
          }
          row.push_back(Fmt(result->mean_overhead, 4));
        }
        table.AddRow(std::move(row));
      }
      table.Print();
    }
    if (!cfg.full) break;  // reduced grid: PC1 only (paper Fig 9)
  }
  std::printf(
      "\nExpected shape (paper Figs. 9/11): overhead roughly proportional "
      "to SR, ~0.04-0.06 at SR = 0.05 on the 10GB databases, always well "
      "below the cost of running the query itself.\n");
  return 0;
}
