// Reproduces Figure 3: robustness of r_s vs r_p with respect to outliers.
// Prints the (sigma, error) scatter for two cases and the correlations
// before/after removing the rightmost (largest-sigma) point.
//
// Shape to reproduce: removing a single extreme point changes r_p much
// more than r_s — r_p is outlier-sensitive, r_s is the trustworthy one.

#include <cstdio>

#include "bench_common.h"
#include "core/metrics.h"

using namespace uqp;
using namespace uqp::bench;

namespace {

void RunCase(const char* title, const char* profile, double zipf,
             const char* workload, const char* machine, double sr, int size) {
  HarnessOptions options;
  options.profile = profile;
  options.zipf = zipf;
  ExperimentHarness harness(options);
  auto load = harness.LoadWorkload(workload, size);
  if (!load.ok()) {
    std::fprintf(stderr, "%s\n", load.ToString().c_str());
    return;
  }
  auto result = harness.Evaluate(workload, machine, sr);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return;
  }
  std::printf("\n-- %s --\n", title);
  std::printf("# scatter: sigma_i (ms)  error_i (ms)\n");
  for (const QueryRecord& r : result->records) {
    std::printf("  %12.3f %12.3f\n", r.outcome.predicted_stddev,
                r.outcome.error());
  }
  const OutlierProbe probe = ProbeOutlierRobustness(result->outcomes());
  const LinearFit fit = FitLine(result->summary.sigmas, result->summary.errors);
  std::printf("best-fit: error = %.4f * sigma + %.4f\n", fit.slope, fit.intercept);
  std::printf("all points:     r_s = %.4f   r_p = %.4f\n", probe.spearman_all,
              probe.pearson_all);
  std::printf("outlier removed: r_s = %.4f   r_p = %.4f\n",
              probe.spearman_trimmed, probe.pearson_trimmed);
  std::printf("delta:          |dr_s| = %.4f  |dr_p| = %.4f\n",
              std::abs(probe.spearman_all - probe.spearman_trimmed),
              std::abs(probe.pearson_all - probe.pearson_trimmed));
}

}  // namespace

int main() {
  const BenchConfig cfg = BenchConfig::FromEnv();
  PrintBanner("Figure 3: robustness of r_s and r_p with respect to outliers");
  RunCase("Case (1): MICRO, uniform 1GB, PC2, SR = 0.01", "1gb", 0.0, "micro",
          "PC2", 0.01, cfg.SizeFor("micro", "1gb"));
  RunCase("Case (2): SELJOIN, uniform 1GB, PC1, SR = 0.05", "1gb", 0.0,
          "seljoin", "PC1", 0.05, cfg.SizeFor("seljoin", "1gb"));
  std::printf(
      "\nExpected shape (paper Fig. 3): r_s moves little when the extreme "
      "point is dropped while r_p can swing substantially.\n");
  return 0;
}
