#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace uqp {

// ---------------------------------------------------------------------------
// Deterministic fault injection.
//
// The injector is a test/bench seam (ServiceOptions::fault_injector): when
// null — the production default — no call site pays anything beyond one
// pointer test. When set, every stage-1 attempt consults it for a
// FaultDecision drawn from a pre-drawn, seed-derived schedule, so a chaos
// run replays bit-identically at any thread count: the decision for
// (fingerprint, attempt) is a pure function of (seed, fingerprint,
// attempt), and the per-family attempt numbering is defined by arrival
// order at the injector, which the chaos harness pins with wave barriers.
// ---------------------------------------------------------------------------

/// What the injector decided for one stage-1 attempt.
struct FaultDecision {
  /// Non-OK: the stage fails with exactly this status instead of running.
  Status status;
  /// Artificial latency to impose before the outcome (0 = none). Applied
  /// whether the attempt then fails or runs for real — a degraded machine
  /// is slow first, broken second.
  double latency_ms = 0.0;
};

/// Fault seam threaded through RunStages / the worker pool. Implementations
/// must be internally synchronized: OnSampleRun is called concurrently from
/// every worker.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  /// Consulted once per stage-1 attempt for `fingerprint`, BEFORE the real
  /// stage runs. Attempt numbering (per fingerprint) is the injector's own
  /// bookkeeping.
  virtual FaultDecision OnSampleRun(uint64_t fingerprint) = 0;

  /// Pool seam: should the service fire a spurious wakeup (an extra
  /// NotifyAll with nothing new to do) after this enqueue? Exercises the
  /// explicit predicate loops around every CondVar wait.
  virtual bool InjectSpuriousWakeup() { return false; }
};

/// Per-family fault behavior in a ScheduledFaultInjector.
struct FaultRule {
  /// Attempts with index < fail_attempts fail deterministically — the
  /// count-exact knob for breaker and retry tests ("first 3 attempts
  /// fail, then recover").
  uint64_t fail_attempts = 0;
  /// Additionally, each attempt fails with this probability, drawn from
  /// the seeded schedule (deterministic per (seed, fingerprint, attempt)).
  double fail_prob = 0.0;
  /// Each attempt is delayed by latency_ms with this probability (1.0 =
  /// always), drawn from the same schedule.
  double latency_prob = 0.0;
  double latency_ms = 0.0;
};

struct ScheduledFaultOptions {
  uint64_t seed = 1;
  /// Rule for fingerprints without a dedicated entry in `rules`.
  FaultRule default_rule;
  /// Per-fingerprint overrides (lookup only — never iterated).
  std::unordered_map<uint64_t, FaultRule> rules;
  /// Fire a spurious wakeup on every Nth InjectSpuriousWakeup probe
  /// (0 = never).
  uint64_t spurious_every = 0;
};

/// Seeded, fully deterministic injector. The decision for (fingerprint,
/// attempt) is a pure function of the seed (a splitmix64-style mix — no
/// std::random_device, no global RNG state), published up front by
/// ScheduleAt/ScheduleBytes so a harness can pre-draw and compare the
/// whole schedule across runs and thread counts.
class ScheduledFaultInjector : public FaultInjector {
 public:
  explicit ScheduledFaultInjector(ScheduledFaultOptions options);

  FaultDecision OnSampleRun(uint64_t fingerprint) override;
  bool InjectSpuriousWakeup() override;

  /// The pre-drawn decision for one (fingerprint, attempt) — pure, never
  /// advances any counter. OnSampleRun returns exactly
  /// ScheduleAt(fingerprint, n) on the (n+1)-th call for `fingerprint`.
  FaultDecision ScheduleAt(uint64_t fingerprint, uint64_t attempt) const;

  /// Canonical bytes of the pre-drawn schedule over `fingerprints` ×
  /// [0, attempts): status codes and latency bit patterns. Two injectors
  /// produce equal bytes iff their schedules are identical — the replay
  /// gate's equality.
  std::string ScheduleBytes(const std::vector<uint64_t>& fingerprints,
                            uint64_t attempts) const;

  /// Canonical bytes of everything actually fired so far: fingerprints in
  /// sorted order, each with its attempt count and the fired decisions.
  /// Byte-identical across two runs iff every family saw the same number
  /// of attempts (the decisions themselves are schedule-determined).
  std::string FiredLogBytes() const;

  /// Stage-1 attempts consulted so far for `fingerprint`.
  uint64_t AttemptCount(uint64_t fingerprint) const;

  uint64_t faults_fired() const {
    return faults_fired_.load(std::memory_order_relaxed);
  }
  uint64_t delays_fired() const {
    return delays_fired_.load(std::memory_order_relaxed);
  }
  uint64_t spurious_fired() const {
    return spurious_fired_.load(std::memory_order_relaxed);
  }

 private:
  const FaultRule& RuleFor(uint64_t fingerprint) const;

  const ScheduledFaultOptions options_;
  mutable Mutex mu_;
  /// Per-fingerprint attempt counters; the only mutable schedule state.
  std::unordered_map<uint64_t, uint64_t> attempts_ UQP_GUARDED_BY(mu_);
  /// Monotonic telemetry, deliberately outside the mutex capability model:
  /// relaxed counters carrying no data dependency.
  std::atomic<uint64_t> faults_fired_{0};
  std::atomic<uint64_t> delays_fired_{0};
  std::atomic<uint64_t> spurious_fired_{0};
  std::atomic<uint64_t> spurious_probes_{0};
};

// ---------------------------------------------------------------------------
// Per-family circuit breaker.
//
// A plan family whose stage 1 keeps failing (a poisoned plan, a broken
// sample binding) must shed load instead of burning workers on doomed
// runs. Count-based — no clocks — so quarantine behavior is deterministic:
// after `failure_threshold` consecutive stage failures the family opens;
// while open, requests shed (resolve degraded/unavailable without touching
// stage 1); after `cooldown_requests` sheds one probe runs half-open; a
// probe success closes the breaker, a probe failure re-opens it.
// ---------------------------------------------------------------------------

struct BreakerOptions {
  /// Consecutive stage-1 failures before a family opens. 0 disables the
  /// breaker entirely (every Admit admits).
  int failure_threshold = 0;
  /// Shed requests while open before the next half-open probe is allowed.
  int cooldown_requests = 8;
};

enum class BreakerState { kClosed, kOpen, kHalfOpen };

const char* ToString(BreakerState state);

/// What the breaker decided for one incoming request.
struct BreakerDecision {
  /// Quarantined: do not run stage 1; resolve degraded or unavailable.
  bool shed = false;
  /// This request is the half-open probe: run stage 1; its result closes
  /// or re-opens the family.
  bool probe = false;
};

struct BreakerSnapshot {
  uint64_t fingerprint = 0;
  BreakerState state = BreakerState::kClosed;
  int consecutive_failures = 0;
  uint64_t opens = 0;  ///< times this family transitioned to open
  uint64_t shed = 0;   ///< requests this family shed while open
};

class CircuitBreakerRegistry {
 public:
  explicit CircuitBreakerRegistry(BreakerOptions options)
      : options_(options) {}

  bool enabled() const { return options_.failure_threshold > 0; }
  const BreakerOptions& options() const { return options_; }

  /// Routes one incoming request for `fingerprint`. Never blocks; at most
  /// one probe is in flight per family.
  BreakerDecision Admit(uint64_t fingerprint);

  /// Reports a stage-1 outcome (including injected faults and deadline
  /// cancellations — a run that could not complete is a failure). Returns
  /// true iff this result OPENED the breaker (closed/half-open -> open).
  bool OnStageResult(uint64_t fingerprint, bool ok);

  /// All families ever touched, sorted by fingerprint.
  std::vector<BreakerSnapshot> Snapshot() const;

  /// The snapshot row for one family (zero-value row if never touched).
  BreakerSnapshot Family(uint64_t fingerprint) const;

  uint64_t total_opens() const {
    return total_opens_.load(std::memory_order_relaxed);
  }
  uint64_t total_shed() const {
    return total_shed_.load(std::memory_order_relaxed);
  }
  uint64_t total_probes() const {
    return total_probes_.load(std::memory_order_relaxed);
  }

 private:
  struct FamilyState {
    BreakerState state = BreakerState::kClosed;
    int consecutive_failures = 0;
    int sheds_since_open = 0;
    bool probe_inflight = false;
    uint64_t opens = 0;
    uint64_t shed = 0;
  };
  struct alignas(64) Shard {
    mutable Mutex mu;
    std::unordered_map<uint64_t, FamilyState> families UQP_GUARDED_BY(mu);
  };
  static constexpr size_t kNumShards = 8;

  Shard& ShardFor(uint64_t fingerprint) {
    return shards_[fingerprint % kNumShards];
  }
  const Shard& ShardFor(uint64_t fingerprint) const {
    return shards_[fingerprint % kNumShards];
  }

  const BreakerOptions options_;
  Shard shards_[kNumShards];
  /// Registry-wide telemetry; relaxed atomics outside the capability
  /// model (monotonic counters, no data dependency).
  std::atomic<uint64_t> total_opens_{0};
  std::atomic<uint64_t> total_shed_{0};
  std::atomic<uint64_t> total_probes_{0};
};

}  // namespace uqp
