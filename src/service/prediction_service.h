#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/pipeline.h"
#include "engine/plan.h"

namespace uqp {

/// Configuration of the prediction service.
struct ServiceOptions {
  /// Worker threads for PredictAsync and PredictBatch sharding. 0 sizes
  /// the pool to the hardware concurrency, capped at 4 — prediction sits
  /// on the admission path and must not monopolize the machine it gates.
  ///
  /// The same pool also backs intra-plan parallelism when
  /// predictor.num_threads != 1: a lone cold request fans its sample run
  /// out across idle workers — every operator shards, including sort
  /// (fixed-shape blocked merge tree), aggregation (per-chunk tables
  /// merged in chunk order) and merge-join group emission — while a
  /// saturated service degrades gracefully: shard tasks queue behind
  /// plan-level work and the thread running the prediction executes its
  /// own shards, i.e. one-thread-per-plan behavior. Results are
  /// bit-identical either way.
  int num_workers = 0;
  /// Capacity of the sample-run cache (distinct plan fingerprints held);
  /// 0 disables caching entirely.
  size_t cache_capacity = 256;
  /// Test seam: replaces PlanFingerprint as the cache/dedup hash when
  /// non-null. The structural-key confirmation still applies, so tests can
  /// force every plan onto one fingerprint to exercise collision handling.
  uint64_t (*fingerprint_fn)(const Plan&) = nullptr;
  /// Test seam: called after stages 1-2 of a cache miss run, before the
  /// artifacts are published to the cache. Lets tests interleave
  /// InvalidateCache deterministically with an in-flight prediction, and
  /// gate an in-flight winner while async losers park continuations.
  std::function<void()> post_stages_hook;
  PredictorOptions predictor;
};

/// Monotonic counters exposed for tests and monitoring. Every prediction
/// request is classified exactly once as a cache hit or miss at a single
/// point, atomically with the `predictions` bump, so
/// `cache_hits + cache_misses == predictions` holds at every instant — even
/// sampled mid-batch from another thread. A request that runs stages 1-2
/// itself (including with caching disabled) is a miss; a request served
/// from the cache or from another request's in-flight execution is a hit.
struct ServiceStats {
  uint64_t predictions = 0;     ///< predictions served (single + batched + async)
  uint64_t batch_calls = 0;     ///< PredictBatch invocations
  uint64_t sample_runs = 0;     ///< SampleRunStage executions (stage 1)
  uint64_t fit_runs = 0;        ///< CostFitStage executions (stage 2)
  uint64_t cache_hits = 0;      ///< predictions that ran no stage-1/2 work
  uint64_t cache_misses = 0;    ///< predictions that ran stages themselves
  uint64_t inflight_joins = 0;  ///< hits served by an in-flight miss (parked
                                ///< async continuations + blocking sync joins)
  uint64_t stale_drops = 0;     ///< cache inserts dropped by InvalidateCache generation
  uint64_t plan_clones = 0;     ///< deep copies made by the async plan registry
                                ///< (interned duplicates don't re-clone)
  uint64_t async_rejects = 0;   ///< PredictAsync calls refused after Shutdown
};

/// Thread-safe, concurrent front end to the prediction pipeline — the
/// piece that lets the predictor sit on the admission path of a
/// multi-user system instead of being re-instantiated per query.
///
///   - Predict(plan): one prediction on the calling thread.
///   - PredictAsync(plan): one prediction on the worker pool, returned as
///     a future. Fire-and-forget safe: the service deep-copies (interns)
///     the plan into its own registry, so the caller may destroy the plan
///     the moment the call returns.
///   - PredictBatch(plans): shards stage work across the worker pool.
///
/// All paths cache per-plan stage artifacts in an LRU keyed by plan
/// fingerprint: the SampleRunStage output (the expensive artifact — one
/// execution of the plan over the sample tables) together with the
/// CostFitStage output derived from it (both are deterministic functions
/// of the plan). Each entry also stores the plan's canonical structural
/// key, confirmed on every hit, so a 64-bit fingerprint collision degrades
/// to a miss instead of serving another plan's artifacts.
///
/// Concurrent misses on the same fingerprint are deduplicated through an
/// in-flight table: the first request runs stages 1-2. A concurrent async
/// duplicate parks a continuation {owned plan, promise} on the winner's
/// in-flight record and returns its worker to the pool; when the winner
/// finishes, it drains the continuation list by running the cheap stage-3
/// combination per waiter. (Synchronous duplicates — Predict/PredictBatch,
/// which must return a value to their caller — still block their own
/// calling thread on the winner's shared future.) So a same-fingerprint
/// storm of async misses occupies exactly one worker, never the pool.
/// Served predictions alias the immutable cached artifacts via shared_ptr
/// (zero-copy), so a hot-cache prediction costs one variance combination.
/// Every stage is deterministic: cached, batched, async and sequential
/// predictions are bit-identical.
class PredictionService {
 public:
  PredictionService(const Database* db, const SampleDb* samples,
                    CostUnits units, ServiceOptions options = ServiceOptions());
  ~PredictionService();

  PredictionService(const PredictionService&) = delete;
  PredictionService& operator=(const PredictionService&) = delete;

  const PredictionPipeline& pipeline() const { return pipeline_; }
  const ServiceOptions& options() const { return options_; }
  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Full prediction of one plan, on the calling thread. Safe to call
  /// concurrently from any number of threads. The plan is only read for
  /// the duration of the call.
  StatusOr<Prediction> Predict(const Plan& plan);

  /// Full prediction of one plan on the worker pool; returns immediately.
  /// The caller can overlap queueing/scheduling work with the prediction
  /// and collect the result when the admission decision is due.
  ///
  /// Ownership contract: the service owns everything it needs before
  /// returning — for a cold plan it interns a deep copy in its registry —
  /// so the caller may destroy (or move) the plan immediately after this
  /// call; the future stays valid and will be satisfied. Concurrent async
  /// misses on one fingerprint share a single stage-1/2 execution AND a
  /// single registry clone.
  ///
  /// Fast paths on the submitting thread (no clone, no queue trip): a
  /// cache hit returns an already-ready future after one cheap stage-3
  /// combination; a plan already being sampled parks a plan-free
  /// continuation on the in-flight run. Only a genuine cold miss pays
  /// the clone and the pool round-trip.
  ///
  /// After Shutdown() the returned future is never left unsatisfied:
  /// cache hits are still served inline, anything needing the pool is
  /// immediately ready with Status::Unavailable.
  std::future<StatusOr<Prediction>> PredictAsync(const Plan& plan);

  /// Predicts every plan in the span, sharding across the worker pool
  /// (the calling thread participates). Results are positional; each plan
  /// gets its own Status. Bit-identical to calling Predict sequentially.
  std::vector<StatusOr<Prediction>> PredictBatch(const Plan* const* plans,
                                                 size_t count);
  std::vector<StatusOr<Prediction>> PredictBatch(
      const std::vector<const Plan*>& plans);
  std::vector<StatusOr<Prediction>> PredictBatch(const std::vector<Plan>& plans);

  /// Re-derives the distribution of an existing prediction under a
  /// different variant/bound without re-running any stage (the ablation /
  /// variant re-derivation path).
  VarianceBreakdown Recompute(const Prediction& prediction,
                              PredictorVariant variant,
                              CovarianceBoundKind bound) const;

  /// Stops the worker pool: drains every task already enqueued (so every
  /// previously returned future is satisfied), joins the workers, and
  /// makes later PredictAsync calls fail fast with Status::Unavailable
  /// instead of leaving their futures unsatisfied forever. Synchronous
  /// Predict/PredictBatch keep working (inline on the calling thread).
  /// Idempotent; called by the destructor.
  void Shutdown();

  /// Snapshot of the service counters (internally consistent: the hit/miss
  /// split always sums to `predictions`).
  ServiceStats stats() const;

  /// Number of distinct fingerprints currently cached.
  size_t cache_size() const;

  /// Number of plans currently interned for outstanding async requests.
  /// Returns to 0 once every outstanding PredictAsync completed — the
  /// registry holds clones only as long as some request needs them.
  size_t plan_registry_size() const;

  /// Drops every cached sample run (e.g. after samples are rebuilt) and
  /// advances the cache generation: in-flight predictions that started
  /// before the flush still complete, but their artifacts are not
  /// re-inserted into the cache.
  void InvalidateCache();

 private:
  /// The cached (shared, immutable) stage 1-2 artifacts of one plan.
  using Artifacts = StageArtifacts;

  /// One PredictAsync invocation: the service-owned (registry-interned)
  /// plan, its identity, and the caller's promise. Also the continuation
  /// record a dedup loser parks on the winner's in-flight entry — holding
  /// the owned plan keeps the registry entry alive until the request is
  /// actually served.
  struct AsyncRequest {
    std::shared_ptr<const Plan> plan;  ///< owned by the registry, not the caller
    uint64_t fingerprint = 0;
    std::string key;  ///< canonical structural key (registry + cache identity)
    std::promise<StatusOr<Prediction>> promise;
  };

  /// One in-flight stage-1/2 execution: the winner fulfills the promise,
  /// concurrent sync requests for the same plan wait on the shared future,
  /// concurrent async requests park on `waiters` and are finished by the
  /// winner (continuation handoff) without pinning a worker.
  struct Inflight {
    explicit Inflight(std::string key_in) : key(std::move(key_in)) {
      future = promise.get_future().share();
    }
    std::string key;  ///< structural key of the plan being computed
    std::promise<StatusOr<Artifacts>> promise;
    std::shared_future<StatusOr<Artifacts>> future;
    /// Parked async losers, guarded by cache_mu_. Only mutated while this
    /// entry is reachable from inflight_; the completing thread detaches
    /// the list under the same lock, so no continuation is ever lost.
    std::vector<std::shared_ptr<AsyncRequest>> waiters;
  };

  /// An interned plan: one deep copy shared by every outstanding async
  /// request with the same structural key.
  struct RegisteredPlan {
    std::shared_ptr<const Plan> plan;
    size_t refs = 0;
  };

  uint64_t Fingerprint(const Plan& plan) const;

  /// Result of one locked pass over the cache and the in-flight table.
  struct Lookup {
    bool cached = false;  ///< `artifacts` valid; request recorded as a hit
    bool parked = false;  ///< continuation parked; request recorded as a join
    Artifacts artifacts;
    std::shared_ptr<Inflight> join;   ///< in-flight run to block on (sync)
    std::shared_ptr<Inflight> owned;  ///< in-flight entry this request owns
    uint64_t generation = 0;
  };

  /// The single shared lookup of every request path (sync, async worker,
  /// async submit), so the collision, classification and generation rules
  /// live in exactly one place: probes the cache (structural key
  /// confirmed, LRU bumped, hit recorded under the lock), then the
  /// in-flight table. A joinable run is parked on when `park` is non-null
  /// (async — atomic with the lookup, so the winner cannot complete in
  /// between and lose the continuation) or returned as `join` for
  /// blocking (sync). On a full miss, registers this request as the new
  /// in-flight owner when `register_owned` (worker/sync paths); the
  /// submit-time fast path passes false and enqueues instead.
  Lookup LookupArtifacts(uint64_t fingerprint, const std::string& key,
                         const std::shared_ptr<AsyncRequest>& park,
                         bool register_owned);

  /// Deep-copies (or reuses the already-interned copy of) `plan` into the
  /// registry and takes a reference; every Intern must be paired with one
  /// ReleasePlan(key).
  std::shared_ptr<const Plan> InternPlan(const Plan& plan,
                                         const std::string& key);
  void ReleasePlan(const std::string& key);

  /// Stages 1-2 through the cache and the in-flight table: returns the
  /// shared artifacts for the plan, running the missing stages on a miss.
  /// Classifies the request (hit/miss) exactly once. Blocks the calling
  /// thread when joining another request's in-flight run (sync paths only
  /// — async requests go through RunAsyncRequest instead).
  StatusOr<Artifacts> GetArtifacts(const Plan& plan, uint64_t fingerprint,
                                   const std::string& key);

  /// Single-plan prediction through GetArtifacts (shared by the sync and
  /// batch-representative paths).
  StatusOr<Prediction> PredictImpl(const Plan& plan);

  /// Body of one pool-executed PredictAsync: cache hit → finish inline;
  /// in-flight duplicate → park the continuation and return the worker;
  /// miss → run the stages and drain every parked continuation.
  void RunAsyncRequest(const std::shared_ptr<AsyncRequest>& req);

  /// Finishes one async request from shared artifacts (stage 3), releasing
  /// its registry reference before the promise fires so a caller that saw
  /// the future complete also sees the registry drained.
  void FulfillAsync(AsyncRequest& req, const StatusOr<Artifacts>& artifacts);

  /// Publishes a finished stage-1/2 run: removes the in-flight entry,
  /// inserts into the cache (unless the generation moved), completes the
  /// in-flight promise for blocking sync joiners, and drains the parked
  /// async continuations. `owned` may be null (collision solo run).
  void CompleteRun(const std::shared_ptr<Inflight>& owned, uint64_t fingerprint,
                   const std::string& key, uint64_t generation,
                   const StatusOr<Artifacts>& result);

  /// Runs stages 1-2 for the plan, outside any lock.
  StatusOr<Artifacts> RunStages(const Plan& plan);

  /// The single classification point of a request: bumps `predictions` and
  /// exactly one of `cache_hits`/`cache_misses` atomically.
  void RecordRequest(bool hit, bool inflight_join = false);

  /// Inserts into the LRU (cache_mu_ held). On a lost race the incumbent
  /// wins; on a fingerprint collision the newcomer replaces it.
  void CachePutLocked(uint64_t fingerprint, const std::string& key,
                      Artifacts artifacts);

  /// Runs `fn(i)` for i in [0, n) across the worker pool, the calling
  /// thread included; returns when all indexes are done.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  void WorkerLoop();

  /// Adapter handing the worker pool to the executor as a TaskRunner, so
  /// intra-plan shard tasks and plan-level prediction tasks share one set
  /// of threads (see ServiceOptions::num_workers).
  class PoolRunner : public TaskRunner {
   public:
    explicit PoolRunner(PredictionService* service) : service_(service) {}
    void RunTasks(int64_t n, const std::function<void(int64_t)>& fn) override {
      service_->ParallelFor(static_cast<size_t>(n), [&fn](size_t i) {
        fn(static_cast<int64_t>(i));
      });
    }

   private:
    PredictionService* service_;
  };

  PoolRunner pool_runner_{this};  ///< must outlive (so precede) pipeline_
  PredictionPipeline pipeline_;
  ServiceOptions options_;

  // ----- stage-artifact LRU cache + in-flight dedup table -----
  mutable std::mutex cache_mu_;
  struct CacheEntry {
    uint64_t fingerprint = 0;
    std::string key;  ///< canonical structure, confirmed on every hit
    Artifacts artifacts;
  };
  std::list<CacheEntry> lru_;  ///< front = most recently used
  std::unordered_map<uint64_t, std::list<CacheEntry>::iterator> cache_index_;
  std::unordered_map<uint64_t, std::shared_ptr<Inflight>> inflight_;
  uint64_t generation_ = 0;  ///< bumped by InvalidateCache

  // ----- plan registry (owned clones for outstanding async requests) -----
  mutable std::mutex registry_mu_;
  std::unordered_map<std::string, RegisteredPlan> plan_registry_;

  // ----- worker pool -----
  std::mutex pool_mu_;
  std::condition_variable pool_cv_;
  std::vector<std::thread> workers_;
  /// FIFO: workers pop the front, enqueuers push the back, so the oldest
  /// PredictAsync request is always served next (no starvation under
  /// sustained load).
  std::deque<std::function<void()>> pool_queue_;
  bool shutdown_ = false;

  // ----- counters (one mutex so the hit/miss split is always consistent
  // with `predictions`, even when stats() samples mid-batch) -----
  mutable std::mutex stats_mu_;
  ServiceStats stats_;
};

}  // namespace uqp
