#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/pipeline.h"
#include "cost/snapshot.h"
#include "engine/plan.h"
#include "service/fault.h"
#include "service/feedback.h"

namespace uqp {

/// Cost-only degradation knobs: when stage 1 fails (or is quarantined by
/// the circuit breaker) and the request opted in with
/// RequestOptions::allow_degraded, the service serves a fallback built
/// from the optimizer's scalar cost alone — no sampling, no fitted cost
/// functions — flagged Prediction::degraded.
struct DegradedOptions {
  /// Milliseconds per optimizer cost unit (OptimizerScalarCost — the same
  /// PostgreSQL-weight scalar the cost-only scheduling baseline ranks by).
  /// Fit it like the simulator does (least squares through the origin
  /// against observed runtimes); the default 1.0 keeps the fallback
  /// monotone in cost even uncalibrated.
  double cost_scale_ms = 1.0;
  /// Relative error assumed for a family with no feedback history. The
  /// family's windowed mean |relative error| (FeedbackRegistry) replaces
  /// it when larger — a family we already know we mispredict gets a wider
  /// degraded interval.
  double default_rel_error = 0.5;
  /// Variance inflation: sigma = mean * rel_error * inflation. >1 because
  /// a cost-only guess is strictly less informed than the sampling
  /// pipeline it stands in for.
  double inflation = 2.0;
};

/// Per-request resilience knobs. The zero value (no deadline, no
/// degradation) reproduces the historical behavior exactly.
struct RequestOptions {
  /// Wall-clock budget for this request, in milliseconds; <= 0 = none.
  /// A request past its deadline stops consuming pool time at the next
  /// operator/morsel boundary (cooperative cancellation through
  /// ExecOptions::cancelled) and resolves with Status::DeadlineExceeded —
  /// or a degraded prediction, see below. Deadlines bound WORK, not
  /// delivery: a result that is already free (cache hit, or a joined
  /// winner that finished anyway) is still served.
  double deadline_ms = 0.0;
  /// When true, a stage failure / deadline expiry / breaker shed resolves
  /// with a cost-only degraded prediction (Prediction::degraded == true)
  /// instead of the error status. See DegradedOptions.
  bool allow_degraded = false;
};

/// Configuration of the prediction service.
struct ServiceOptions {
  /// Worker threads for PredictAsync and PredictBatch sharding. 0 sizes
  /// the pool to the hardware concurrency, capped at 4 — prediction sits
  /// on the admission path and must not monopolize the machine it gates.
  ///
  /// The same pool also backs intra-plan parallelism when
  /// predictor.num_threads != 1: a lone cold request fans its sample run
  /// out across idle workers — every operator shards, including sort
  /// (fixed-shape blocked merge tree), aggregation (per-chunk tables
  /// merged in chunk order) and merge-join group emission — while a
  /// saturated service degrades gracefully: shard tasks queue behind
  /// plan-level work and the thread running the prediction executes its
  /// own shards, i.e. one-thread-per-plan behavior. Results are
  /// bit-identical either way.
  int num_workers = 0;
  /// Capacity of the sample-run cache (distinct plan fingerprints held);
  /// 0 disables caching entirely. The capacity is enforced per shard
  /// (ceil(capacity / shards) entries each), so a shard under churn
  /// evicts locally instead of taking a global lock.
  size_t cache_capacity = 256;
  /// Number of independent cache/in-flight shards (rounded up to a power
  /// of two). 0 sizes to the hardware concurrency, clamped to [1, 64].
  /// 1 degenerates to the historical single-mutex layout — the bench's
  /// contention baseline.
  int cache_shards = 0;
  /// When true (default), cache entries are additionally published into a
  /// per-shard, 2-way tagged slot array read with
  /// std::atomic_load(acquire): a hot-cache hit costs a couple of atomic
  /// loads, a key memcmp and a relaxed recency-tick store — no shard
  /// mutex, no global mutex. Two hot plans whose fingerprints collide on
  /// one slot index each keep a way, so both stay lock-free instead of
  /// perpetually displacing each other. When false, every hit goes
  /// through the shard mutex (the pre-sharding behavior, kept as the
  /// bench baseline and a differential-testing seam).
  bool lock_free_hits = true;
  /// When true, PredictAsync calls that arrive after Shutdown() run the
  /// prediction inline on the calling thread (degraded latency, still
  /// correct and bit-identical) instead of failing fast with
  /// Status::Unavailable. Latecomers that find another request's run
  /// still in flight park on it as usual and are drained by that winner.
  bool drain_on_shutdown = false;
  /// Test seam: replaces PlanFingerprint as the cache/dedup hash when
  /// non-null. The structural-key confirmation still applies, so tests can
  /// force every plan onto one fingerprint to exercise collision handling.
  uint64_t (*fingerprint_fn)(const Plan&) = nullptr;
  /// Test seam: called after stages 1-2 of a cache miss run, before the
  /// artifacts are published to the cache. Lets tests interleave
  /// InvalidateCache deterministically with an in-flight prediction, and
  /// gate an in-flight winner while async losers park continuations.
  std::function<void()> post_stages_hook;
  /// Online feedback loop (ReportObserved): per-plan-family error
  /// tracking, convergence detection, and drift-triggered recalibration.
  /// Disabled by default — the service then keeps zero feedback state.
  FeedbackOptions feedback;
  /// Test/bench seam: deterministic fault injection (see service/fault.h).
  /// Consulted once per stage-1 attempt (injected latency, injected
  /// failure) and once per pool enqueue (spurious wakeups). Null — the
  /// production default — costs exactly one pointer test per site. Not
  /// owned; must outlive the service.
  FaultInjector* fault_injector = nullptr;
  /// Per-family circuit breaker: failure_threshold consecutive stage-1
  /// failures quarantine the family (requests shed without touching
  /// stage 1) until a half-open probe succeeds. failure_threshold == 0
  /// (default) disables the breaker entirely.
  BreakerOptions breaker;
  /// Cost-only fallback served when a request sets
  /// RequestOptions::allow_degraded and its stage work failed.
  DegradedOptions degraded;
  PredictorOptions predictor;
};

/// Monotonic counters exposed for tests and monitoring. Every prediction
/// request bumps exactly ONE cell of a per-stripe 2x4 resolution matrix
/// (hit/miss x ok/failed/degraded/deadline_exceeded) at the moment its
/// caller-visible result is decided — no global stats lock on the hot
/// path. `cache_hits`/`cache_misses` are the matrix row sums, the outcome
/// counters its column sums, and `predictions` the total, so BOTH
/// conservation invariants
///   cache_hits + cache_misses == predictions
///   ok_served + failed + degraded_served + deadline_exceeded == predictions
/// hold at every observable instant by construction — even sampled
/// mid-storm from another thread. A request that ran (or would have run —
/// breaker sheds included) stages 1-2 itself is a miss; a request served
/// from the cache or another request's in-flight execution is a hit.
struct ServiceStats {
  uint64_t predictions = 0;     ///< predictions served (single + batched + async)
  uint64_t batch_calls = 0;     ///< PredictBatch invocations
  uint64_t sample_runs = 0;     ///< SampleRunStage executions (stage 1)
  uint64_t fit_runs = 0;        ///< CostFitStage executions (stage 2)
  uint64_t cache_hits = 0;      ///< predictions that ran no stage-1/2 work
  uint64_t cache_misses = 0;    ///< predictions that ran stages themselves
  // --- per-request resolution outcomes (matrix column sums) ---
  uint64_t ok_served = 0;          ///< full-pipeline predictions delivered
  uint64_t failed = 0;             ///< requests resolved with a non-deadline
                                   ///< error status (stage failure, shed
                                   ///< without degradation)
  uint64_t degraded_served = 0;    ///< cost-only fallbacks delivered
                                   ///< (Prediction::degraded == true)
  uint64_t deadline_exceeded = 0;  ///< requests resolved DeadlineExceeded
  uint64_t lockfree_hits = 0;   ///< hits served by the mutex-free published
                                ///< slot path (subset of cache_hits)
  uint64_t inflight_joins = 0;  ///< requests that joined an in-flight miss
                                ///< (parked async continuations + blocking
                                ///< sync/batch joins), counted when they
                                ///< park — observable mid-run
  uint64_t stale_drops = 0;     ///< cache inserts dropped by InvalidateCache generation
  uint64_t plan_clones = 0;     ///< deep copies made by the async plan registry
                                ///< (interned duplicates don't re-clone)
  uint64_t async_rejects = 0;   ///< PredictAsync calls refused after Shutdown
  uint64_t drained_inline = 0;  ///< post-Shutdown PredictAsync calls served
                                ///< inline by drain_on_shutdown
  // --- calibration-epoch lifecycle + feedback loop ---
  uint64_t recombines = 0;        ///< cached entries lazily re-combined after a
                                  ///< calibration swap invalidated their
                                  ///< stage-3 memo (stage-1/2 untouched)
  uint64_t recalibrations = 0;    ///< drift-triggered snapshot publishes
  uint64_t feedback_reports = 0;  ///< ReportObserved calls accepted
  uint64_t feedback_dropped = 0;  ///< reports with no usable error (plan never
                                  ///< predicted, non-positive observation)
  uint64_t feedback_stash_hits = 0;  ///< reports for evicted/flushed plans
                                     ///< served from the family's
                                     ///< last-prediction stash instead of
                                     ///< being dropped
  uint64_t converged_families = 0;  ///< gauge: plan families currently
                                    ///< converged (no longer tracked)
  uint64_t feedback_families = 0;   ///< gauge: plan families ever reported
  // --- fault injection + circuit breaker ---
  uint64_t faults_injected = 0;    ///< stage-1 attempts replaced by an
                                   ///< injected failure (test seam)
  uint64_t spurious_wakeups = 0;   ///< injected no-op pool NotifyAll calls
  uint64_t breaker_opens = 0;      ///< family transitions to open
  uint64_t breaker_shed = 0;       ///< requests shed while a family was open
  uint64_t breaker_probes = 0;     ///< half-open probe runs admitted
};

/// Thread-safe, concurrent front end to the prediction pipeline — the
/// piece that lets the predictor sit on the admission path of a
/// multi-user system instead of being re-instantiated per query.
///
///   - Predict(plan): one prediction on the calling thread.
///   - PredictAsync(plan): one prediction on the worker pool, returned as
///     a future. Fire-and-forget safe: the service deep-copies (interns)
///     the plan into its own registry, so the caller may destroy the plan
///     the moment the call returns.
///   - PredictBatch(plans): shards stage work across the worker pool.
///
/// All paths cache per-plan stage artifacts keyed by plan fingerprint.
/// The cache and the in-flight dedup table are sharded by fingerprint: N
/// independent shards, each with its own mutex, entry map and recency
/// ticks, so requests for different plans never serialize on a global
/// lock. Within a shard, hot hits do not take the shard mutex either:
/// resident entries are published as immutable shared_ptr bundles into a
/// per-shard, 2-way tagged slot array read via std::atomic_load(acquire);
/// recency is a relaxed per-entry tick (approximate LRU — eviction order
/// is not part of the determinism contract). Each entry stores the plan's
/// interned canonical structural key (PlanIdentity, serialized once per
/// distinct plan object and shared by reference), confirmed on every hit,
/// so a 64-bit fingerprint collision degrades to a miss instead of
/// serving another plan's artifacts.
///
/// Calibration is a versioned runtime artifact, not construction-time
/// state: the service owns an epoch-stamped, atomically swappable
/// CalibrationSnapshot (the construction units become epoch 1).
/// PublishCalibration installs a new epoch WITHOUT touching the cache —
/// stage-1/2 artifacts are unit-independent, so a swap invalidates only
/// each entry's memoized stage-3 combination: entries re-combine lazily
/// against the new epoch on their next hit (counted in
/// stats().recombines) instead of paying a full InvalidateCache.
/// ReportObserved feeds actual runtimes back in; per-plan-family error
/// windows converge (and stop paying tracking overhead) or drift (and
/// trigger a recalibration through FeedbackOptions::recalibrate).
///
/// Concurrent misses on the same fingerprint are deduplicated through the
/// shard's in-flight table: the first request runs stages 1-2. A
/// concurrent async duplicate parks a continuation {owned plan, promise}
/// on the winner's in-flight record and returns its worker to the pool;
/// when the winner finishes, it drains the continuation list by running
/// the cheap stage-3 combination per waiter. Synchronous Predict calls
/// block their own calling thread on the winner's shared future; a
/// PredictBatch shard that finds another request's run in flight parks
/// the shared future and moves on — the batch's calling thread resolves
/// all parked futures after the fan-out, so no pool worker ever blocks in
/// future::get(). So a same-fingerprint storm occupies exactly one
/// worker, never the pool. Served predictions alias the immutable cached
/// artifacts via shared_ptr (zero-copy), so a hot-cache prediction costs
/// at most one variance combination — and exactly zero when the entry's
/// memoized combination matches the current calibration epoch. Every
/// stage is deterministic: cached, batched, async and sequential
/// predictions are bit-identical.
class PredictionService {
 public:
  PredictionService(const Database* db, const SampleDb* samples,
                    CostUnits units, ServiceOptions options = ServiceOptions());
  ~PredictionService();

  PredictionService(const PredictionService&) = delete;
  PredictionService& operator=(const PredictionService&) = delete;

  const PredictionPipeline& pipeline() const { return pipeline_; }
  const ServiceOptions& options() const { return options_; }
  int num_workers() const { return static_cast<int>(workers_.size()); }
  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Full prediction of one plan, on the calling thread. Safe to call
  /// concurrently from any number of threads. The plan is only read for
  /// the duration of the call. The RequestOptions overload adds a
  /// deadline (cooperatively cancelled at the next operator/morsel
  /// boundary; a sync join past its deadline detaches from the winner and
  /// resolves immediately) and/or opts into cost-only degradation.
  StatusOr<Prediction> Predict(const Plan& plan);
  StatusOr<Prediction> Predict(const Plan& plan, const RequestOptions& opts);

  /// Full prediction of one plan on the worker pool; returns immediately.
  /// The caller can overlap queueing/scheduling work with the prediction
  /// and collect the result when the admission decision is due.
  ///
  /// Ownership contract: the service owns everything it needs before
  /// returning — for a cold plan it interns a deep copy in its registry —
  /// so the caller may destroy (or move) the plan immediately after this
  /// call; the future stays valid and will be satisfied. Concurrent async
  /// misses on one fingerprint share a single stage-1/2 execution AND a
  /// single registry clone.
  ///
  /// Fast paths on the submitting thread (no clone, no queue trip): a
  /// cache hit returns an already-ready future after at most one cheap
  /// stage-3 combination — on a hot cache without touching any service
  /// mutex — and a plan already being sampled parks a plan-free
  /// continuation on the in-flight run. Only a genuine cold miss pays the
  /// clone and the pool round-trip.
  ///
  /// After Shutdown() the returned future is never left unsatisfied:
  /// cache hits are still served inline; anything needing the pool is
  /// either immediately ready with Status::Unavailable (default) or, with
  /// drain_on_shutdown, predicted inline on the calling thread.
  std::future<StatusOr<Prediction>> PredictAsync(const Plan& plan);
  /// RequestOptions variant: an async request whose deadline has already
  /// expired when a worker dequeues it never runs the stages (the pool
  /// stops spending time on it); its future resolves DeadlineExceeded or
  /// degraded. A parked dedup loser is resolved by its winner even past
  /// the deadline — the work was paid by someone else, delivery is free.
  std::future<StatusOr<Prediction>> PredictAsync(const Plan& plan,
                                                 const RequestOptions& opts);

  /// Predicts every plan in the span, sharding across the worker pool
  /// (the calling thread participates). Results are positional; each plan
  /// gets its own Status. Bit-identical to calling Predict sequentially.
  ///
  /// Per-shard status contract: EVERY slot resolves to its own terminal
  /// status — a group whose stage run failed propagates that same failure
  /// (or a degraded fallback) to each of its slots; no placeholder status
  /// ever escapes, including on mid-batch faults. The RequestOptions
  /// apply to every plan in the batch.
  std::vector<StatusOr<Prediction>> PredictBatch(const Plan* const* plans,
                                                 size_t count);
  std::vector<StatusOr<Prediction>> PredictBatch(const Plan* const* plans,
                                                 size_t count,
                                                 const RequestOptions& opts);
  std::vector<StatusOr<Prediction>> PredictBatch(
      const std::vector<const Plan*>& plans);
  std::vector<StatusOr<Prediction>> PredictBatch(
      const std::vector<const Plan*>& plans, const RequestOptions& opts);
  std::vector<StatusOr<Prediction>> PredictBatch(const std::vector<Plan>& plans);

  /// Re-derives the distribution of an existing prediction under a
  /// different variant/bound without re-running any stage (the ablation /
  /// variant re-derivation path). Combines under the prediction's own
  /// calibration snapshot, so the result is stable across epoch swaps.
  VarianceBreakdown Recompute(const Prediction& prediction,
                              PredictorVariant variant,
                              CovarianceBoundKind bound) const;

  // ----- calibration-epoch lifecycle -----

  /// The current calibration snapshot (atomic load; never null). Every
  /// prediction records the snapshot it combined under in
  /// Prediction::calibration.
  CalibrationPtr calibration() const { return pipeline_.calibration(); }
  uint64_t calibration_epoch() const { return calibration()->epoch; }

  /// Atomically installs new cost units as the next calibration epoch and
  /// returns that epoch. Deliberately does NOT flush the artifact cache:
  /// stage-1/2 artifacts are unit-independent, so each cached entry only
  /// re-runs its (cheap) stage-3 combination lazily, on its next hit —
  /// see stats().recombines. In-flight predictions that already resolved
  /// the old snapshot finish under it, bit-identical to a pre-swap
  /// prediction. Tracked (non-converged) feedback windows reset: their
  /// errors were measured against the old epoch's predictions.
  uint64_t PublishCalibration(CostUnits units, std::string source = "manual");

  // ----- online feedback loop -----

  /// Reports the observed runtime of one executed plan, closing the loop
  /// between prediction and execution. Maintains a windowed relative-error
  /// series per plan family (keyed by fingerprint): a family whose window
  /// converges stops paying tracking overhead (no error computation, no
  /// window update — only a periodic probe); a family whose window drifts
  /// past FeedbackOptions::drift_threshold triggers one recalibration
  /// (FeedbackOptions::recalibrate → PublishCalibration) per cooldown.
  /// The error is computed against the family's cached prediction under
  /// the CURRENT epoch; a report for a plan that fell out of the cache
  /// (evicted or flushed) falls back to the family's last-prediction
  /// stash (counted in stats().feedback_stash_hits), so an
  /// evicted-but-reported family still tracks instead of dropping.
  /// Only a family that was never predicted at all drops its reports
  /// (stats().feedback_dropped). No-op unless
  /// ServiceOptions::feedback.enabled.
  void ReportObserved(const Plan& plan, double observed_ms);
  void ReportObserved(uint64_t fingerprint, double observed_ms);

  /// Same feedback path, but the error is computed against a
  /// caller-supplied decision-time prediction instead of the family's
  /// current cached one. This is the injection hook for simulated
  /// execution (the scheduling scenario suite): the simulator admits a
  /// query under prediction P, runs it, and reports the observed runtime
  /// against P even if the service has since recalibrated — the feedback
  /// series then measures the error of the predictions the *decisions*
  /// were actually made with. Refreshes the family's last-prediction
  /// stash like the cache-backed path.
  void ReportObservedAgainst(uint64_t fingerprint, const Prediction& as_decided,
                             double observed_ms);

  /// Per-family feedback state (tests, benches, monitoring): window
  /// contents, update counters, convergence flags — with the family's
  /// circuit-breaker state merged in when a breaker is configured
  /// (breaker-only families appear as rows with empty windows). Sorted by
  /// fingerprint. Empty when both feedback and the breaker are disabled.
  std::vector<FamilyFeedback> FeedbackSnapshot() const;

  /// Stops the worker pool: drains every task already enqueued (so every
  /// previously returned future is satisfied), joins the workers, and
  /// makes later PredictAsync calls fail fast with Status::Unavailable
  /// (or, with drain_on_shutdown, run inline on the caller) instead of
  /// leaving their futures unsatisfied forever. Synchronous
  /// Predict/PredictBatch keep working (inline on the calling thread).
  /// Idempotent; called by the destructor.
  void Shutdown();

  /// Snapshot of the service counters, summed over the per-shard stripes.
  /// Internally consistent: the hit/miss split always sums to
  /// `predictions` (each stripe keeps its local split exact, and
  /// `predictions` is their sum by definition).
  ServiceStats stats() const;

  /// Number of distinct fingerprints currently cached (summed over shards).
  size_t cache_size() const;

  /// Number of plans currently interned for outstanding async requests.
  /// Returns to 0 once every outstanding PredictAsync completed — the
  /// registry holds clones only as long as some request needs them.
  size_t plan_registry_size() const;

  /// Drops every cached sample run (e.g. after samples are rebuilt) and
  /// advances the cache generation: in-flight predictions that started
  /// before the flush still complete, but their artifacts are not
  /// re-inserted into the cache. One global (atomic) generation counter;
  /// the flush itself sweeps shard by shard. Lock-free hits validate the
  /// entry's insert generation against the global counter, so a hit that
  /// begins after the bump never serves a pre-flush artifact.
  ///
  /// This is the heavyweight invalidation — for a calibration change use
  /// PublishCalibration, which keeps every stage-1/2 artifact and costs
  /// one lazy stage-3 re-combination per cached entry instead.
  void InvalidateCache();

 private:
  /// The cached (shared, immutable) stage 1-2 artifacts of one plan.
  using Artifacts = StageArtifacts;
  using IdentityPtr = std::shared_ptr<const PlanIdentity>;

  /// Ways per published-slot index. Two, so a pair of hot plans whose
  /// fingerprints map to the same slot index coexist on the lock-free
  /// path instead of evicting each other on every publish.
  static constexpr size_t kSlotWays = 2;

  /// Resolved deadline/degradation state of one request, derived from its
  /// RequestOptions at submit time (so the budget is measured from
  /// submission, not from whenever a worker dequeues the request).
  struct RequestContext {
    std::chrono::steady_clock::time_point deadline{};
    bool has_deadline = false;
    bool allow_degraded = false;
    bool Expired() const {
      return has_deadline && std::chrono::steady_clock::now() >= deadline;
    }
  };
  static RequestContext MakeContext(const RequestOptions& opts);

  /// How one request resolved — the second axis of the stats stripe's
  /// resolution matrix (see ServiceStats).
  enum class Outcome { kOk = 0, kFailed = 1, kDegraded = 2, kDeadline = 3 };
  static constexpr size_t kNumOutcomes = 4;

  /// One PredictAsync invocation: the service-owned (registry-interned)
  /// plan, its identity, and the caller's promise. Also the continuation
  /// record a dedup loser parks on the winner's in-flight entry — holding
  /// the owned plan keeps the registry entry alive until the request is
  /// actually served.
  struct AsyncRequest {
    std::shared_ptr<const Plan> plan;  ///< owned by the registry, not the caller
    uint64_t fingerprint = 0;
    IdentityPtr identity;  ///< interned canonical structure (shared, not copied)
    std::promise<StatusOr<Prediction>> promise;
    RequestContext ctx;
    /// OptimizerScalarCost precomputed at submit time when
    /// ctx.allow_degraded: a parked continuation holds no plan (parking
    /// happens before interning), so its degraded fallback must not need
    /// one. < 0 = not computed.
    double degraded_cost = -1.0;
  };

  /// One in-flight stage-1/2 execution: the winner fulfills the promise,
  /// concurrent sync requests for the same plan wait on the shared future,
  /// concurrent async requests park on `waiters` and are finished by the
  /// winner (continuation handoff) without pinning a worker.
  struct Inflight {
    explicit Inflight(IdentityPtr identity_in)
        : identity(std::move(identity_in)) {
      future = promise.get_future().share();
    }
    IdentityPtr identity;  ///< structure of the plan being computed
    std::promise<StatusOr<Artifacts>> promise;
    std::shared_future<StatusOr<Artifacts>> future;
    /// Parked async losers, guarded by the owning shard's mutex — a
    /// capability that is not a member of this struct, so the invariant
    /// is not expressible as a GUARDED_BY annotation (thread-safety
    /// analysis can only name capabilities reachable from the declaration).
    /// The discipline is structural instead: `waiters` is only mutated
    /// while this entry is reachable from the shard's in-flight map
    /// (LookupArtifacts parks under shard.mu), and the completing thread
    /// detaches the whole list under the same lock (CompleteRun), so no
    /// continuation is ever lost.
    std::vector<std::shared_ptr<AsyncRequest>> waiters;
  };

  /// Memoized stage-3 combination of one cache entry, stamped with the
  /// calibration epoch it was combined under. Epochs are unique
  /// (PublishCalibration serializes them), so an epoch match proves the
  /// breakdown is valid under the current units — serving it runs zero
  /// combination work. Immutable once published.
  struct CombineMemo {
    uint64_t epoch = 0;
    VarianceBreakdown breakdown;
  };
  using MemoPtr = std::shared_ptr<const CombineMemo>;

  /// One resident cache entry. Immutable after construction except for
  /// the recency tick and the stage-3 memo, so concurrent lock-free
  /// readers may copy the artifact bundle without synchronization beyond
  /// the acquire load that reached the entry.
  struct CacheEntry {
    uint64_t fingerprint = 0;
    IdentityPtr identity;  ///< interned key, confirmed on every hit
    Artifacts artifacts;
    uint64_t generation = 0;  ///< global generation at insert time
    /// Last-use tick from the shard's ticket counter; relaxed stores from
    /// hit paths, read under the shard mutex for (approximate-LRU)
    /// eviction. Approximation is fine: eviction order is not part of the
    /// determinism contract.
    mutable std::atomic<uint64_t> last_used{0};
    /// Epoch-stamped stage-3 memo; accessed only via std::atomic_load /
    /// atomic_store free functions (see CombineCached). A calibration
    /// swap makes it stale — never wrong — and the next hit lazily
    /// re-combines.
    mutable MemoPtr combined;
  };
  using EntryPtr = std::shared_ptr<const CacheEntry>;

  /// Per-shard stats stripe: monotone relaxed atomics, padded to a cache
  /// line so neighbouring stripes don't false-share. Neither
  /// `predictions` nor the hit/miss/outcome splits are stored separately —
  /// all are sums over the resolution matrix by definition, which is what
  /// makes BOTH snapshot invariants un-tearable.
  struct alignas(64) StatsStripe {
    /// The resolution matrix: [miss=0 / hit=1][Outcome]. Every request
    /// bumps exactly one cell, exactly once, at the moment its
    /// caller-visible result is decided.
    std::atomic<uint64_t> outcome[2][kNumOutcomes] = {};
    std::atomic<uint64_t> batch_calls{0};
    std::atomic<uint64_t> sample_runs{0};
    std::atomic<uint64_t> fit_runs{0};
    std::atomic<uint64_t> lockfree_hits{0};
    std::atomic<uint64_t> inflight_joins{0};
    std::atomic<uint64_t> stale_drops{0};
    std::atomic<uint64_t> plan_clones{0};
    std::atomic<uint64_t> async_rejects{0};
    std::atomic<uint64_t> drained_inline{0};
    std::atomic<uint64_t> recombines{0};
    std::atomic<uint64_t> recalibrations{0};
    std::atomic<uint64_t> feedback_reports{0};
    std::atomic<uint64_t> feedback_dropped{0};
    std::atomic<uint64_t> feedback_stash_hits{0};
    std::atomic<uint64_t> faults_injected{0};
    std::atomic<uint64_t> spurious_wakeups{0};
  };

  /// One cache + in-flight shard. `slots` is the lock-free publication
  /// layer: a fixed direct-mapped array of kSlotWays-way shared_ptr slot
  /// groups accessed only through std::atomic_load/atomic_store — outside
  /// the mutex capability model by design (the published-slot read path is
  /// the one that must never take `mu`), so the slot protocol is covered
  /// by TSan and the generation check rather than GUARDED_BY; `entries`
  /// (under `mu`) is the authority for residency and capacity.
  struct alignas(64) Shard {
    mutable Mutex mu;
    std::unordered_map<uint64_t, EntryPtr> entries UQP_GUARDED_BY(mu);
    std::unordered_map<uint64_t, std::shared_ptr<Inflight>> inflight
        UQP_GUARDED_BY(mu);
    /// Published entries; size is (power of two) * kSlotWays, fixed at
    /// construction. Never resized, so concurrent element access is safe.
    std::vector<EntryPtr> slots;
    /// Monotone recency ticket; fetch_add(relaxed) per hit.
    std::atomic<uint64_t> ticket{0};
  };

  Shard& ShardFor(uint64_t fingerprint) const {
    return shards_[static_cast<size_t>(fingerprint) & shard_mask_];
  }
  StatsStripe& StripeFor(uint64_t fingerprint) const {
    return stripes_[static_cast<size_t>(fingerprint) & shard_mask_];
  }
  size_t SlotBase(uint64_t fingerprint) const {
    // The low bits picked the shard; the next bits pick the slot index;
    // each index owns kSlotWays consecutive ways.
    return (static_cast<size_t>(fingerprint >> shard_bits_) & slot_mask_) *
           kSlotWays;
  }

  uint64_t Fingerprint(const Plan& plan, const PlanIdentity& identity) const;

  /// Result of one pass over the shard's cache and in-flight table.
  struct Lookup {
    EntryPtr entry;       ///< cache hit (request recorded as a hit)
    bool parked = false;  ///< continuation parked; request recorded as a join
    std::shared_ptr<Inflight> join;   ///< in-flight run to wait on
    std::shared_ptr<Inflight> owned;  ///< in-flight entry this request owns
    uint64_t generation = 0;
  };

  /// One non-blocking artifact fetch for a PredictBatch group: exactly one
  /// of {entry, pending, artifacts-or-status} is the outcome. `pending`
  /// (an in-flight join) is resolved later by the batch's CALLING thread,
  /// so no pool worker blocks in future::get(). Classification is
  /// deferred: the stage-3 fan-out records each SLOT's resolution from
  /// the flags below (the representative inherits the group's hit/miss;
  /// in-batch duplicates are always hits).
  struct GroupFetch {
    EntryPtr entry;  ///< cache hit: stage 3 serves through the epoch memo
    std::shared_future<StatusOr<Artifacts>> pending;  ///< joined in-flight run
    Artifacts artifacts;  ///< ran stages itself (or resolved from pending)
    Status status;        ///< stage failure (from self-run or pending)
    bool failed = false;
    bool hit = false;        ///< representative was served without stage work
    bool join = false;       ///< representative joined an in-flight run
    bool lock_free = false;  ///< the hit came off the published-slot path
  };

  /// The mutex-free fast path: probes the shard's published slot ways for
  /// a current-generation entry with this fingerprint and a confirmed
  /// structural key. On a hit, returns the entry (artifacts + epoch memo)
  /// and bumps its recency tick (relaxed) — no mutex anywhere. Does NOT
  /// classify the request: the caller records the resolution (hit, ok,
  /// lock_free) when it actually serves. Returns false on any mismatch
  /// (empty ways, displaced entry, stale generation, collision).
  bool TryLockFreeHit(uint64_t fingerprint, const PlanIdentity& identity,
                      EntryPtr* out);

  /// The single shared locked lookup of every request path (sync, async
  /// worker, async submit, batch shard), so the collision and generation
  /// rules live in exactly one place: probes the shard's cache
  /// (structural key confirmed, recency bumped, slot republished), then
  /// the shard's in-flight table. A joinable run is parked on when `park`
  /// is non-null (async — atomic with the lookup, so the winner cannot
  /// complete in between and lose the continuation) or returned as `join`
  /// for the caller to wait on (sync blocks; batch parks the future). On
  /// a full miss, registers this request as the new in-flight owner when
  /// `register_owned` (worker/sync/batch paths); the submit-time fast
  /// path passes false and enqueues instead. Does NOT classify the
  /// request — each path records its resolution-matrix cell when the
  /// caller-visible result is decided.
  Lookup LookupArtifacts(uint64_t fingerprint, const IdentityPtr& identity,
                         const std::shared_ptr<AsyncRequest>& park,
                         bool register_owned);

  /// Serves a prediction from a resident entry through its epoch memo:
  /// if the memoized stage-3 result matches the current calibration
  /// epoch, zero combination work runs; otherwise the entry re-combines
  /// under the current snapshot and republishes the memo (counted in
  /// stats().recombines when a stale memo existed — i.e. on the first hit
  /// after a calibration swap). Does NOT classify the request — callers
  /// already did.
  Prediction CombineCached(const EntryPtr& entry);

  /// Locked cache probe by fingerprint only (no identity confirmation) —
  /// the feedback path's "what do we currently predict for this family"
  /// lookup. Returns null when absent or stale.
  EntryPtr FindEntry(uint64_t fingerprint) const;

  /// Publishes `entry` into its slot group (shard mutex held): reuses the
  /// way already holding this fingerprint, else an empty way, else
  /// displaces the way with the older recency tick.
  void PublishSlotLocked(Shard& shard, const EntryPtr& entry)
      UQP_REQUIRES(shard.mu);
  /// Clears any way still pointing at `entry` (shard mutex held).
  void UnpublishSlotLocked(Shard& shard, const EntryPtr& entry)
      UQP_REQUIRES(shard.mu);

  /// Deep-copies (or reuses the already-interned copy of) `plan` into the
  /// fingerprint's registry shard and takes a reference; every Intern must
  /// be paired with one ReleasePlan(key, fingerprint).
  std::shared_ptr<const Plan> InternPlan(const Plan& plan,
                                         const std::string& key,
                                         uint64_t fingerprint);
  void ReleasePlan(const std::string& key, uint64_t fingerprint);

  /// Single-plan prediction on the calling thread: lock-free hit → memoed
  /// combine; locked hit → memoed combine; in-flight duplicate → wait on
  /// the winner's future, bounded by the deadline (a timed-out joiner
  /// detaches: the shared_future is simply abandoned, the winner
  /// completes and caches normally); miss → breaker admission, then run
  /// the stages. Records the request's resolution cell exactly once.
  StatusOr<Prediction> PredictImpl(const Plan& plan, const RequestContext& ctx);

  /// Non-blocking stage-1/2 fetch for one batch group (see GroupFetch).
  /// Classification is deferred to the batch's stage-3 fan-out.
  GroupFetch FetchForBatch(const Plan& plan, uint64_t fingerprint,
                           const IdentityPtr& identity,
                           const RequestContext& ctx);

  /// Body of one pool-executed PredictAsync: cache hit → finish inline;
  /// in-flight duplicate → park the continuation and return the worker;
  /// miss → run the stages and drain every parked continuation.
  void RunAsyncRequest(const std::shared_ptr<AsyncRequest>& req);

  /// Finishes one async request from shared artifacts (stage 3), releasing
  /// its registry reference before the promise fires so a caller that saw
  /// the future complete also sees the registry drained. A failed result
  /// converts to a degraded fallback when the request opted in; records
  /// the request's resolution cell ([hit][outcome]) exactly once.
  void FulfillAsync(AsyncRequest& req, const StatusOr<Artifacts>& artifacts,
                    bool hit);
  /// Same, but served from a resident entry (goes through the epoch memo).
  void FulfillAsyncFromEntry(AsyncRequest& req, const EntryPtr& entry,
                             bool lock_free);

  /// Publishes a finished stage-1/2 run: removes the in-flight entry,
  /// inserts into the cache (unless the generation moved), completes the
  /// in-flight promise for blocking sync joiners, and drains the parked
  /// async continuations. `owned` may be null (collision solo run).
  void CompleteRun(const std::shared_ptr<Inflight>& owned, uint64_t fingerprint,
                   const IdentityPtr& identity, uint64_t generation,
                   const StatusOr<Artifacts>& result);

  /// Runs stages 1-2 for the plan, outside any lock. Consults the fault
  /// injector first (injected latency is slept here; an injected failure
  /// returns without running stage 1), then pre-checks the deadline, then
  /// runs the real stages with a cooperative cancellation probe derived
  /// from the deadline (checked at operator and morsel-shard boundaries).
  StatusOr<Artifacts> RunStages(const Plan& plan, uint64_t fingerprint,
                                const RequestContext& ctx);

  /// The single resolution point of a request: bumps exactly one cell of
  /// the stripe's [hit][outcome] matrix (every stats invariant is a sum
  /// over those cells).
  void RecordOutcome(uint64_t fingerprint, bool hit, Outcome outcome,
                     bool lock_free = false);

  /// The Outcome a non-OK terminal status maps to.
  static Outcome OutcomeFor(const Status& status) {
    return status.code() == StatusCode::kDeadlineExceeded ? Outcome::kDeadline
                                                          : Outcome::kFailed;
  }

  /// Cost-only degraded fallback (Prediction::degraded == true): mean =
  /// OptimizerScalarCost * DegradedOptions::cost_scale_ms; sigma inflated
  /// from the family's windowed feedback error (or the configured default
  /// when the family has no history). Carries NO stage-1/2 artifacts.
  Prediction MakeDegradedFromCost(uint64_t fingerprint, double scalar_cost);
  Prediction MakeDegraded(uint64_t fingerprint, const Plan& plan);

  /// Shared tail of every owner (miss) path: breaker admission, stage
  /// run, breaker verdict, CompleteRun. On a shed, the in-flight entry is
  /// completed with the quarantine status so joiners/waiters resolve too.
  StatusOr<Artifacts> RunOwnedStages(const Plan& plan, uint64_t fingerprint,
                                     const IdentityPtr& identity,
                                     const Lookup& lk,
                                     const RequestContext& ctx);

  /// Injected spurious wakeup after a pool enqueue (test seam): an extra
  /// NotifyAll with nothing new to do, exercising the explicit predicate
  /// loops around every CondVar wait.
  void MaybeSpuriousWakeup();

  /// Inserts into the shard (shard mutex held) and publishes the slot. On
  /// a lost race the incumbent wins; on a fingerprint collision the
  /// newcomer replaces it. Evicts the least-recently-ticked entry when
  /// the shard exceeds its capacity share.
  void CachePutLocked(Shard& shard, uint64_t fingerprint,
                      const IdentityPtr& identity, Artifacts artifacts,
                      uint64_t generation) UQP_REQUIRES(shard.mu);

  /// Drift handler: at most one caller per cooldown re-derives the cost
  /// units (FeedbackOptions::recalibrate, run outside every lock) and
  /// publishes them as the next epoch. No-op in detect-only mode.
  void HandleDrift(uint64_t fingerprint);

  /// Runs `fn(i)` for i in [0, n) across the worker pool, the calling
  /// thread included; returns when all indexes are done.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  void WorkerLoop();

  /// Adapter handing the worker pool to the executor as a TaskRunner, so
  /// intra-plan shard tasks and plan-level prediction tasks share one set
  /// of threads (see ServiceOptions::num_workers).
  class PoolRunner : public TaskRunner {
   public:
    explicit PoolRunner(PredictionService* service) : service_(service) {}
    void RunTasks(int64_t n, const std::function<void(int64_t)>& fn) override {
      service_->ParallelFor(static_cast<size_t>(n), [&fn](size_t i) {
        fn(static_cast<int64_t>(i));
      });
    }

   private:
    PredictionService* service_;
  };

  PoolRunner pool_runner_{this};  ///< must outlive (so precede) pipeline_
  PredictionPipeline pipeline_;
  ServiceOptions options_;
  /// The database the pipeline predicts against, kept for the degraded
  /// fallback's optimizer scalar cost (the pipeline owns its own copy of
  /// this pointer but does not expose it).
  const Database* db_ = nullptr;
  /// Per-family quarantine; null when BreakerOptions::failure_threshold
  /// is 0 (zero overhead).
  std::unique_ptr<CircuitBreakerRegistry> breaker_;

  // ----- sharded stage-artifact cache + in-flight dedup tables -----
  mutable std::unique_ptr<Shard[]> shard_storage_;
  /// Span view of shard_storage_ (mutable access from const snapshots).
  struct ShardSpan {
    Shard* data = nullptr;
    size_t count = 0;
    Shard& operator[](size_t i) const { return data[i]; }
    size_t size() const { return count; }
    Shard* begin() const { return data; }
    Shard* end() const { return data + count; }
  } shards_;
  size_t shard_mask_ = 0;   ///< shards - 1 (shard count is a power of two)
  unsigned shard_bits_ = 0; ///< log2(shard count)
  size_t slot_mask_ = 0;    ///< per-shard published slot indexes - 1
  size_t shard_capacity_ = 0;  ///< resident entries allowed per shard
  /// Global cache generation, bumped by InvalidateCache before the
  /// per-shard sweep. Lock-free hits and publish paths validate against
  /// it, so the counter — not any one shard's state — is the authority.
  std::atomic<uint64_t> generation_{0};

  // ----- versioned calibration + feedback loop -----
  /// Serializes epoch assignment (PublishCalibration): the snapshot
  /// pointer itself is lock-free (an atomic shared_ptr swap inside the
  /// pipeline, deliberately outside the mutex capability model — see
  /// PredictionPipeline::calibration_); this mutex only guarantees epochs
  /// are unique and monotone, so it guards no fields, just the
  /// read-increment-publish sequence.
  Mutex calibration_mu_;
  /// Per-plan-family windowed error tracking; null when feedback is
  /// disabled (zero overhead).
  std::unique_ptr<FeedbackRegistry> feedback_;

  // ----- striped counters (one stripe per shard + classification rules
  // that make hits + misses == predictions hold by construction) -----
  mutable std::unique_ptr<StatsStripe[]> stripes_storage_;
  StatsStripe* stripes_ = nullptr;

  // ----- plan registry (owned clones for outstanding async requests),
  // sharded by fingerprint exactly like the cache: a cold-plan async storm
  // across distinct plans interns and releases without a global lock -----
  struct RegisteredPlan {
    std::shared_ptr<const Plan> plan;
    size_t refs = 0;
  };
  struct alignas(64) RegistryShard {
    mutable Mutex mu;
    /// Keyed by canonical structural key: two plans colliding on a forced
    /// fingerprint (test seam) still intern separately.
    std::unordered_map<std::string, RegisteredPlan> plans UQP_GUARDED_BY(mu);
  };
  RegistryShard& RegistryShardFor(uint64_t fingerprint) const {
    return registry_shards_[static_cast<size_t>(fingerprint) & shard_mask_];
  }
  mutable std::unique_ptr<RegistryShard[]> registry_shards_;

  // ----- worker pool -----
  Mutex pool_mu_;
  CondVar pool_cv_;
  /// Written only by the constructor, joined by Shutdown; never otherwise
  /// mutated, so concurrent readers (ParallelFor, num_workers) race with
  /// nothing and no capability is needed.
  std::vector<std::thread> workers_;
  /// FIFO: workers pop the front, enqueuers push the back, so the oldest
  /// PredictAsync request is always served next (no starvation under
  /// sustained load).
  std::deque<std::function<void()>> pool_queue_ UQP_GUARDED_BY(pool_mu_);
  bool shutdown_ UQP_GUARDED_BY(pool_mu_) = false;
};

}  // namespace uqp
