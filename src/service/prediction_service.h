#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/pipeline.h"
#include "engine/plan.h"

namespace uqp {

/// Configuration of the prediction service.
struct ServiceOptions {
  /// Worker threads for PredictAsync and PredictBatch sharding. 0 sizes
  /// the pool to the hardware concurrency, capped at 4 — prediction sits
  /// on the admission path and must not monopolize the machine it gates.
  int num_workers = 0;
  /// Capacity of the sample-run cache (distinct plan fingerprints held);
  /// 0 disables caching entirely.
  size_t cache_capacity = 256;
  /// Test seam: replaces PlanFingerprint as the cache/dedup hash when
  /// non-null. The structural-key confirmation still applies, so tests can
  /// force every plan onto one fingerprint to exercise collision handling.
  uint64_t (*fingerprint_fn)(const Plan&) = nullptr;
  /// Test seam: called after stages 1-2 of a cache miss run, before the
  /// artifacts are published to the cache. Lets tests interleave
  /// InvalidateCache deterministically with an in-flight prediction.
  std::function<void()> post_stages_hook;
  PredictorOptions predictor;
};

/// Monotonic counters exposed for tests and monitoring. Every prediction
/// request is classified exactly once as a cache hit or miss at a single
/// point, atomically with the `predictions` bump, so
/// `cache_hits + cache_misses == predictions` holds at every instant — even
/// sampled mid-batch from another thread. A request that runs stages 1-2
/// itself (including with caching disabled) is a miss; a request served
/// from the cache or from another request's in-flight execution is a hit.
struct ServiceStats {
  uint64_t predictions = 0;     ///< predictions served (single + batched + async)
  uint64_t batch_calls = 0;     ///< PredictBatch invocations
  uint64_t sample_runs = 0;     ///< SampleRunStage executions (stage 1)
  uint64_t fit_runs = 0;        ///< CostFitStage executions (stage 2)
  uint64_t cache_hits = 0;      ///< predictions that ran no stage-1/2 work
  uint64_t cache_misses = 0;    ///< predictions that ran stages themselves
  uint64_t inflight_joins = 0;  ///< hits served by waiting on an in-flight miss
  uint64_t stale_drops = 0;     ///< cache inserts dropped by InvalidateCache generation
};

/// Thread-safe, concurrent front end to the prediction pipeline — the
/// piece that lets the predictor sit on the admission path of a
/// multi-user system instead of being re-instantiated per query.
///
///   - Predict(plan): one prediction on the calling thread.
///   - PredictAsync(plan): one prediction on the worker pool, returned as
///     a future so admission paths overlap prediction with queueing.
///   - PredictBatch(plans): shards stage work across the worker pool.
///
/// All paths cache per-plan stage artifacts in an LRU keyed by plan
/// fingerprint: the SampleRunStage output (the expensive artifact — one
/// execution of the plan over the sample tables) together with the
/// CostFitStage output derived from it (both are deterministic functions
/// of the plan). Each entry also stores the plan's canonical structural
/// key, confirmed on every hit, so a 64-bit fingerprint collision degrades
/// to a miss instead of serving another plan's artifacts.
///
/// Concurrent misses on the same fingerprint are deduplicated through an
/// in-flight table: the first request runs stages 1-2, every concurrent
/// duplicate waits on the winner's shared future instead of re-sampling.
/// Served predictions alias the immutable cached artifacts via shared_ptr
/// (zero-copy), so a hot-cache prediction costs one variance combination.
/// Every stage is deterministic: cached, batched, async and sequential
/// predictions are bit-identical.
class PredictionService {
 public:
  PredictionService(const Database* db, const SampleDb* samples,
                    CostUnits units, ServiceOptions options = ServiceOptions());
  ~PredictionService();

  PredictionService(const PredictionService&) = delete;
  PredictionService& operator=(const PredictionService&) = delete;

  const PredictionPipeline& pipeline() const { return pipeline_; }
  const ServiceOptions& options() const { return options_; }
  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Full prediction of one plan, on the calling thread. Safe to call
  /// concurrently from any number of threads.
  StatusOr<Prediction> Predict(const Plan& plan);

  /// Full prediction of one plan on the worker pool; returns immediately.
  /// The caller can overlap queueing/scheduling work with the prediction
  /// and collect the result when the admission decision is due. The plan
  /// must outlive the future's completion. Concurrent async misses on one
  /// fingerprint share a single stage-1/2 execution.
  std::future<StatusOr<Prediction>> PredictAsync(const Plan& plan);

  /// Predicts every plan in the span, sharding across the worker pool
  /// (the calling thread participates). Results are positional; each plan
  /// gets its own Status. Bit-identical to calling Predict sequentially.
  std::vector<StatusOr<Prediction>> PredictBatch(const Plan* const* plans,
                                                 size_t count);
  std::vector<StatusOr<Prediction>> PredictBatch(
      const std::vector<const Plan*>& plans);
  std::vector<StatusOr<Prediction>> PredictBatch(const std::vector<Plan>& plans);

  /// Re-derives the distribution of an existing prediction under a
  /// different variant/bound without re-running any stage (the ablation /
  /// variant re-derivation path).
  VarianceBreakdown Recompute(const Prediction& prediction,
                              PredictorVariant variant,
                              CovarianceBoundKind bound) const;

  /// Snapshot of the service counters (internally consistent: the hit/miss
  /// split always sums to `predictions`).
  ServiceStats stats() const;

  /// Number of distinct fingerprints currently cached.
  size_t cache_size() const;

  /// Drops every cached sample run (e.g. after samples are rebuilt) and
  /// advances the cache generation: in-flight predictions that started
  /// before the flush still complete, but their artifacts are not
  /// re-inserted into the cache.
  void InvalidateCache();

 private:
  /// The cached (shared, immutable) stage 1-2 artifacts of one plan.
  struct Artifacts {
    SampleRunPtr run;
    CostFitPtr fit;
  };

  /// One in-flight stage-1/2 execution: the winner fulfills the promise,
  /// concurrent requests for the same plan wait on the shared future.
  struct Inflight {
    explicit Inflight(std::string key_in) : key(std::move(key_in)) {
      future = promise.get_future().share();
    }
    std::string key;  ///< structural key of the plan being computed
    std::promise<StatusOr<Artifacts>> promise;
    std::shared_future<StatusOr<Artifacts>> future;
  };

  uint64_t Fingerprint(const Plan& plan) const;

  /// Stages 1-2 through the cache and the in-flight table: returns the
  /// shared artifacts for the plan, running the missing stages on a miss.
  /// Classifies the request (hit/miss) exactly once.
  StatusOr<Artifacts> GetArtifacts(const Plan& plan, uint64_t fingerprint);

  /// Single-plan prediction through GetArtifacts (shared by the sync,
  /// async and batch-representative paths).
  StatusOr<Prediction> PredictImpl(const Plan& plan);

  /// Runs stages 1-2 for the plan, outside any lock.
  StatusOr<Artifacts> RunStages(const Plan& plan);

  /// The single classification point of a request: bumps `predictions` and
  /// exactly one of `cache_hits`/`cache_misses` atomically.
  void RecordRequest(bool hit, bool inflight_join = false);

  /// Inserts into the LRU (cache_mu_ held). On a lost race the incumbent
  /// wins; on a fingerprint collision the newcomer replaces it.
  void CachePutLocked(uint64_t fingerprint, const std::string& key,
                      Artifacts artifacts);

  /// Runs `fn(i)` for i in [0, n) across the worker pool, the calling
  /// thread included; returns when all indexes are done.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  void WorkerLoop();

  PredictionPipeline pipeline_;
  ServiceOptions options_;

  // ----- stage-artifact LRU cache + in-flight dedup table -----
  mutable std::mutex cache_mu_;
  struct CacheEntry {
    uint64_t fingerprint = 0;
    std::string key;  ///< canonical structure, confirmed on every hit
    Artifacts artifacts;
  };
  std::list<CacheEntry> lru_;  ///< front = most recently used
  std::unordered_map<uint64_t, std::list<CacheEntry>::iterator> cache_index_;
  std::unordered_map<uint64_t, std::shared_ptr<Inflight>> inflight_;
  uint64_t generation_ = 0;  ///< bumped by InvalidateCache

  // ----- worker pool -----
  std::mutex pool_mu_;
  std::condition_variable pool_cv_;
  std::vector<std::thread> workers_;
  std::vector<std::function<void()>> pool_queue_;
  bool shutdown_ = false;

  // ----- counters (one mutex so the hit/miss split is always consistent
  // with `predictions`, even when stats() samples mid-batch) -----
  mutable std::mutex stats_mu_;
  ServiceStats stats_;
};

}  // namespace uqp
