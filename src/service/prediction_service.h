#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/pipeline.h"
#include "engine/plan.h"

namespace uqp {

/// Configuration of the prediction service.
struct ServiceOptions {
  /// Worker threads for PredictBatch sharding. 0 sizes the pool to the
  /// hardware concurrency, capped at 4 — prediction sits on the admission
  /// path and must not monopolize the machine it gates.
  int num_workers = 0;
  /// Capacity of the sample-run cache (distinct plan fingerprints held);
  /// 0 disables caching entirely.
  size_t cache_capacity = 256;
  PredictorOptions predictor;
};

/// Monotonic counters exposed for tests and monitoring.
struct ServiceStats {
  uint64_t predictions = 0;   ///< predictions served (single + batched)
  uint64_t batch_calls = 0;   ///< PredictBatch invocations
  uint64_t sample_runs = 0;   ///< SampleRunStage executions (stage 1)
  uint64_t fit_runs = 0;      ///< CostFitStage executions (stage 2)
  uint64_t cache_hits = 0;    ///< predictions served entirely from cache
  uint64_t cache_misses = 0;  ///< cache lookups that had to run stages
};

/// Thread-safe, concurrent front end to the prediction pipeline — the
/// piece that lets the predictor sit on the admission path of a
/// multi-user system instead of being re-instantiated per query.
///
///   - Predict(plan): one prediction on the calling thread.
///   - PredictBatch(plans): shards stage work across a small worker pool.
///
/// Both paths cache per-plan stage artifacts in an LRU keyed by plan
/// fingerprint: the SampleRunStage output (the expensive artifact — one
/// execution of the plan over the sample tables) together with the
/// CostFitStage output derived from it (both are deterministic functions
/// of the plan). A batch first dedupes its plans by fingerprint so each
/// distinct plan runs stages 1-2 at most once; repeated predictions of a
/// recurring query re-run only the cheap variance combination, and
/// ablation-style re-derivations go through Recompute without any
/// re-sampling. Every stage is deterministic, so cached, batched and
/// sequential predictions are bit-identical.
class PredictionService {
 public:
  PredictionService(const Database* db, const SampleDb* samples,
                    CostUnits units, ServiceOptions options = ServiceOptions());
  ~PredictionService();

  PredictionService(const PredictionService&) = delete;
  PredictionService& operator=(const PredictionService&) = delete;

  const PredictionPipeline& pipeline() const { return pipeline_; }
  const ServiceOptions& options() const { return options_; }
  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Full prediction of one plan, on the calling thread. Safe to call
  /// concurrently from any number of threads.
  StatusOr<Prediction> Predict(const Plan& plan);

  /// Predicts every plan in the span, sharding across the worker pool
  /// (the calling thread participates). Results are positional; each plan
  /// gets its own Status. Bit-identical to calling Predict sequentially.
  std::vector<StatusOr<Prediction>> PredictBatch(const Plan* const* plans,
                                                 size_t count);
  std::vector<StatusOr<Prediction>> PredictBatch(
      const std::vector<const Plan*>& plans);
  std::vector<StatusOr<Prediction>> PredictBatch(const std::vector<Plan>& plans);

  /// Re-derives the distribution of an existing prediction under a
  /// different variant/bound without re-running any stage (the ablation /
  /// variant re-derivation path).
  VarianceBreakdown Recompute(const Prediction& prediction,
                              PredictorVariant variant,
                              CovarianceBoundKind bound) const;

  /// Snapshot of the service counters.
  ServiceStats stats() const;

  /// Drops every cached sample run (e.g. after samples are rebuilt).
  void InvalidateCache();

 private:
  using SampleRunPtr = std::shared_ptr<const SampleRunOutput>;
  using CostFitPtr = std::shared_ptr<const CostFitOutput>;

  /// The cached (shared, immutable) stage 1-2 artifacts of one plan.
  struct Artifacts {
    SampleRunPtr run;
    CostFitPtr fit;
  };

  /// Cache lookup; empty pointers on miss.
  Artifacts CacheGet(uint64_t fingerprint);
  /// Inserts; on a lost race the incumbent wins (identical artifacts).
  void CachePut(uint64_t fingerprint, Artifacts artifacts);

  /// Stages 1-2 through the cache: returns the shared artifacts for the
  /// plan, running the missing stages on a miss.
  StatusOr<Artifacts> GetArtifacts(const Plan& plan, uint64_t fingerprint);

  /// Runs `fn(i)` for i in [0, n) across the worker pool, the calling
  /// thread included; returns when all indexes are done.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  void WorkerLoop();

  PredictionPipeline pipeline_;
  ServiceOptions options_;

  // ----- stage-artifact LRU cache -----
  mutable std::mutex cache_mu_;
  struct CacheEntry {
    uint64_t fingerprint = 0;
    Artifacts artifacts;
  };
  std::list<CacheEntry> lru_;  ///< front = most recently used
  std::unordered_map<uint64_t, std::list<CacheEntry>::iterator> cache_index_;

  // ----- worker pool -----
  std::mutex pool_mu_;
  std::condition_variable pool_cv_;
  std::vector<std::thread> workers_;
  std::vector<std::function<void()>> pool_queue_;
  bool shutdown_ = false;

  // ----- counters -----
  std::atomic<uint64_t> predictions_{0};
  std::atomic<uint64_t> batch_calls_{0};
  std::atomic<uint64_t> sample_runs_{0};
  std::atomic<uint64_t> fit_runs_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> cache_misses_{0};
};

}  // namespace uqp
