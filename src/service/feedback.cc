#include "service/feedback.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace uqp {

namespace {

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

FeedbackRegistry::FeedbackRegistry(FeedbackOptions options, size_t shard_count)
    : options_(std::move(options)) {
  shard_count_ = RoundUpPow2(std::max<size_t>(1, shard_count));
  mask_ = shard_count_ - 1;
  shards_.reset(new Shard[shard_count_]);
}

void FeedbackRegistry::Push(Family* family, double error) const {
  if (family->window.size() != options_.window_size) {
    family->window.assign(options_.window_size, 0.0);
    family->next = 0;
    family->filled = 0;
  }
  family->window[family->next] = error;
  family->next = (family->next + 1) % options_.window_size;
  family->filled = std::min(family->filled + 1, options_.window_size);
  ++family->window_updates;
}

double FeedbackRegistry::WindowMeanAbs(const Family& family) const {
  if (family.filled == 0) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < family.filled; ++i) {
    sum += std::abs(family.window[i]);
  }
  return sum / static_cast<double>(family.filled);
}

FeedbackRegistry::Action FeedbackRegistry::Observe(uint64_t fingerprint,
                                                   const ErrorFn& error_fn) {
  if (!enabled()) return Action::kDisabled;
  total_reports_.fetch_add(1, std::memory_order_relaxed);

  Shard& shard = ShardFor(fingerprint);
  MutexLock lock(&shard.mu);
  Family& family = shard.families[fingerprint];
  ++family.reports;

  if (family.converged) {
    // Converged families skip the combine and the window update entirely;
    // only every probe_interval-th report pays for one error computation.
    if (options_.probe_interval == 0 ||
        family.reports % options_.probe_interval != 0) {
      return Action::kSkippedConverged;
    }
    double error = 0.0;
    if (!error_fn(&family.stash, &error)) return Action::kDropped;
    if (std::abs(error) < options_.drift_threshold) return Action::kProbed;
    // The probe blew past the drift threshold: the world moved while we
    // weren't watching. Resume tracking with a fresh window.
    family.converged = false;
    family.window.clear();
    Push(&family, error);
    return Action::kResumed;
  }

  double error = 0.0;
  if (!error_fn(&family.stash, &error)) return Action::kDropped;
  Push(&family, error);
  if (family.filled < options_.window_size) return Action::kTracked;

  const double mean_abs = WindowMeanAbs(family);
  if (mean_abs <= options_.converge_threshold) {
    family.converged = true;
    return Action::kConverged;
  }
  if (mean_abs >= options_.drift_threshold) return Action::kDrift;
  return Action::kTracked;
}

bool FeedbackRegistry::ClaimDrift() {
  MutexLock lock(&drift_mu_);
  const uint64_t total = total_reports_.load(std::memory_order_relaxed);
  if (any_claim_ &&
      total - reports_at_last_claim_ < options_.cooldown_reports) {
    return false;
  }
  any_claim_ = true;
  reports_at_last_claim_ = total;
  return true;
}

void FeedbackRegistry::OnPublish() {
  for (size_t s = 0; s < shard_count_; ++s) {
    Shard& shard = shards_[s];
    MutexLock lock(&shard.mu);
    for (auto& kv : shard.families) {
      Family& family = kv.second;
      if (family.converged) continue;
      // Tracked windows mixed old-epoch errors; restart them against the
      // new snapshot's predictions.
      family.window.clear();
      family.next = 0;
      family.filled = 0;
    }
  }
}

size_t FeedbackRegistry::family_count() const {
  size_t count = 0;
  for (size_t s = 0; s < shard_count_; ++s) {
    const Shard& shard = shards_[s];
    MutexLock lock(&shard.mu);
    count += shard.families.size();
  }
  return count;
}

size_t FeedbackRegistry::converged_count() const {
  size_t count = 0;
  for (size_t s = 0; s < shard_count_; ++s) {
    const Shard& shard = shards_[s];
    MutexLock lock(&shard.mu);
    for (const auto& kv : shard.families) {
      if (kv.second.converged) ++count;
    }
  }
  return count;
}

bool FeedbackRegistry::WindowedError(uint64_t fingerprint,
                                     double* error) const {
  if (!enabled()) return false;
  Shard& shard = ShardFor(fingerprint);
  MutexLock lock(&shard.mu);
  const auto it = shard.families.find(fingerprint);
  if (it == shard.families.end() || it->second.filled == 0) return false;
  *error = WindowMeanAbs(it->second);
  return true;
}

std::vector<FamilyFeedback> FeedbackRegistry::Snapshot() const {
  std::vector<FamilyFeedback> out;
  for (size_t s = 0; s < shard_count_; ++s) {
    const Shard& shard = shards_[s];
    MutexLock lock(&shard.mu);
    for (const auto& kv : shard.families) {
      const Family& family = kv.second;
      FamilyFeedback ff;
      ff.fingerprint = kv.first;
      ff.reports = family.reports;
      ff.window_updates = family.window_updates;
      ff.converged = family.converged;
      ff.window.reserve(family.filled);
      // Unroll the ring oldest-first.
      const size_t start =
          family.filled < options_.window_size ? 0 : family.next;
      for (size_t i = 0; i < family.filled; ++i) {
        ff.window.push_back(
            family.window[(start + i) % options_.window_size]);
      }
      ff.windowed_mean_abs_error = WindowMeanAbs(family);
      ff.stash = family.stash;
      out.push_back(std::move(ff));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FamilyFeedback& a, const FamilyFeedback& b) {
              return a.fingerprint < b.fingerprint;
            });
  return out;
}

}  // namespace uqp
