#include "service/prediction_service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <utility>

#include "engine/cost_model.h"
#include "engine/expr.h"

namespace uqp {

namespace {

/// Shared state of one ParallelFor: workers and the calling thread pull
/// indexes from `next` until exhausted; the last finisher wakes the caller.
struct ParallelState {
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  size_t total = 0;
  const std::function<void(size_t)>* fn = nullptr;
  /// Guards nothing directly (the counters are atomics): taken only so the
  /// completion notify and the caller's wait agree on one lock and the
  /// final wakeup cannot be lost.
  Mutex mu;
  CondVar cv;

  void Pull() {
    for (;;) {
      const size_t i = next.fetch_add(1);
      if (i >= total) return;
      (*fn)(i);
      if (done.fetch_add(1) + 1 == total) {
        MutexLock lock(&mu);
        cv.NotifyAll();
      }
    }
  }
};

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

PredictionService::PredictionService(const Database* db, const SampleDb* samples,
                                     CostUnits units, ServiceOptions options)
    : pipeline_(db, samples, units, options.predictor, &pool_runner_),
      options_(std::move(options)),
      db_(db) {
  if (options_.breaker.failure_threshold > 0) {
    breaker_.reset(new CircuitBreakerRegistry(options_.breaker));
  }
  int n = options_.num_workers;
  if (n <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    n = static_cast<int>(std::min(4u, std::max(1u, hw)));
  }

  int s = options_.cache_shards;
  if (s <= 0) {
    // One shard per hardware thread is enough to make same-shard mutex
    // collisions rare under a uniform fingerprint mix; cap at 64 so a
    // huge machine doesn't fragment a small cache_capacity into nothing.
    const unsigned hw = std::thread::hardware_concurrency();
    s = static_cast<int>(std::min(64u, std::max(1u, hw)));
  }
  const size_t shard_count = RoundUpPow2(static_cast<size_t>(s));
  shard_storage_.reset(new Shard[shard_count]);
  shards_ = ShardSpan{shard_storage_.get(), shard_count};
  shard_mask_ = shard_count - 1;
  shard_bits_ = 0;
  while ((size_t{1} << shard_bits_) < shard_count) ++shard_bits_;
  // Global capacity enforced per shard: each shard owns an equal share
  // (rounded up, so capacity 1 still caches one entry per shard rather
  // than zero). Transient overshoot of the global count under skew is the
  // price of never taking a global lock to evict.
  shard_capacity_ =
      options_.cache_capacity == 0
          ? 0
          : (options_.cache_capacity + shard_count - 1) / shard_count;
  // Published-slot array: direct-mapped by the fingerprint bits above the
  // shard index, 2x the resident capacity so two live entries rarely fight
  // over one slot group (a displaced entry just costs its readers the
  // locked path — never correctness), and kSlotWays ways per index so the
  // entries that DO share a group coexist instead of thrashing.
  const size_t slot_count = RoundUpPow2(
      std::min<size_t>(4096, std::max<size_t>(16, 2 * shard_capacity_)));
  slot_mask_ = slot_count - 1;
  for (Shard& shard : shards_) shard.slots.resize(slot_count * kSlotWays);
  stripes_storage_.reset(new StatsStripe[shard_count]);
  stripes_ = stripes_storage_.get();
  // The plan registry shards by the same fingerprint mask as the cache, so
  // a cold async storm across distinct plans never serializes on one
  // registry lock (ROADMAP direction-2 follow-up).
  registry_shards_.reset(new RegistryShard[shard_count]);

  if (options_.feedback.enabled && options_.feedback.window_size > 0) {
    feedback_.reset(new FeedbackRegistry(options_.feedback, shard_count));
  }

  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back(&PredictionService::WorkerLoop, this);
  }
}

PredictionService::~PredictionService() { Shutdown(); }

void PredictionService::Shutdown() {
  {
    MutexLock lock(&pool_mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  pool_cv_.NotifyAll();
  // Workers drain the queue before exiting, so every future handed out by
  // PredictAsync before the shutdown flag was set is satisfied. Requests
  // that lose the race (PredictAsync observing shutdown_ == true) are
  // rejected with Status::Unavailable — or, with drain_on_shutdown, run
  // inline on their calling thread — instead of being enqueued into a
  // pool nobody drains. The joined threads stay in workers_ — the vector
  // is never mutated after construction, so concurrent readers
  // (ParallelFor, num_workers) race with nothing.
  for (std::thread& t : workers_) t.join();
}

void PredictionService::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&pool_mu_);
      // Explicit predicate loop (not the wait-with-lambda overload): the
      // guarded reads of shutdown_/pool_queue_ stay in this function,
      // where the thread-safety analysis can prove pool_mu_ is held.
      while (!shutdown_ && pool_queue_.empty()) pool_cv_.Wait(pool_mu_);
      if (pool_queue_.empty()) return;  // shutdown_ set and queue drained
      // FIFO: the oldest request is served next. (A LIFO pop would starve
      // the oldest PredictAsync under sustained load.)
      task = std::move(pool_queue_.front());
      pool_queue_.pop_front();
    }
    task();
  }
}

void PredictionService::ParallelFor(size_t n,
                                    const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || workers_.empty()) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto state = std::make_shared<ParallelState>();
  state->total = n;
  state->fn = &fn;  // outlives the call: we wait for completion below
  const size_t helpers = std::min(workers_.size(), n - 1);
  bool enqueued = false;
  {
    MutexLock lock(&pool_mu_);
    // After Shutdown nobody pops the queue: don't park helper closures
    // there forever — the calling thread just runs every index itself.
    if (!shutdown_) {
      for (size_t i = 0; i < helpers; ++i) {
        pool_queue_.push_back([state] { state->Pull(); });
      }
      enqueued = true;
    }
  }
  if (enqueued) {
    pool_cv_.NotifyAll();
    MaybeSpuriousWakeup();
  }
  state->Pull();  // the calling thread shards too
  MutexLock lock(&state->mu);
  while (state->done.load() != n) state->cv.Wait(state->mu);
}

uint64_t PredictionService::Fingerprint(const Plan& plan,
                                        const PlanIdentity& identity) const {
  return options_.fingerprint_fn != nullptr ? options_.fingerprint_fn(plan)
                                            : identity.fingerprint;
}

std::shared_ptr<const Plan> PredictionService::InternPlan(
    const Plan& plan, const std::string& key, uint64_t fingerprint) {
  RegistryShard& shard = RegistryShardFor(fingerprint);
  {
    MutexLock lock(&shard.mu);
    auto it = shard.plans.find(key);
    if (it != shard.plans.end()) {
      ++it->second.refs;
      return it->second.plan;
    }
  }
  // Deep-copy outside the lock: the clone walks every node, schema and
  // expression of the plan, and must not serialize unrelated submitters.
  auto clone = std::make_shared<const Plan>(plan.Clone());
  MutexLock lock(&shard.mu);
  auto [it, inserted] = shard.plans.try_emplace(key);
  if (inserted) {
    it->second.plan = std::move(clone);
    StripeFor(fingerprint).plan_clones.fetch_add(1, std::memory_order_relaxed);
  }
  // else: a concurrent submitter interned first — use its copy, drop ours.
  ++it->second.refs;
  return it->second.plan;
}

void PredictionService::ReleasePlan(const std::string& key,
                                    uint64_t fingerprint) {
  RegistryShard& shard = RegistryShardFor(fingerprint);
  MutexLock lock(&shard.mu);
  auto it = shard.plans.find(key);
  if (it != shard.plans.end() && --it->second.refs == 0) {
    shard.plans.erase(it);
  }
}

size_t PredictionService::plan_registry_size() const {
  size_t total = 0;
  const size_t n = shards_.size();  // registry shard count == cache shard count
  for (size_t i = 0; i < n; ++i) {
    RegistryShard& shard = registry_shards_[i];
    MutexLock lock(&shard.mu);
    total += shard.plans.size();
  }
  return total;
}

void PredictionService::RecordOutcome(uint64_t fingerprint, bool hit,
                                      Outcome outcome, bool lock_free) {
  StatsStripe& stripe = StripeFor(fingerprint);
  // Exactly one matrix cell moves per request, and every reported
  // aggregate (predictions, the hit/miss split, the outcome split) is a
  // sum over cells — neither invariant can tear. (inflight_joins is NOT
  // bumped here: joiners are counted when they park/join in
  // LookupArtifacts, so tests can observe the join while the winner is
  // still mid-stages.)
  stripe.outcome[hit ? 1 : 0][static_cast<size_t>(outcome)].fetch_add(
      1, std::memory_order_relaxed);
  if (lock_free) {
    stripe.lockfree_hits.fetch_add(1, std::memory_order_relaxed);
  }
}

PredictionService::RequestContext PredictionService::MakeContext(
    const RequestOptions& opts) {
  RequestContext ctx;
  ctx.allow_degraded = opts.allow_degraded;
  if (opts.deadline_ms > 0.0) {
    ctx.has_deadline = true;
    ctx.deadline = std::chrono::steady_clock::now() +
                   std::chrono::microseconds(
                       static_cast<int64_t>(std::llround(opts.deadline_ms * 1000.0)));
  }
  return ctx;
}

Prediction PredictionService::MakeDegradedFromCost(uint64_t fingerprint,
                                                   double scalar_cost) {
  const DegradedOptions& dg = options_.degraded;
  const double mean = std::max(0.0, scalar_cost) * dg.cost_scale_ms;
  // The degraded interval is widest where we already know we mispredict:
  // the family's windowed feedback error replaces the configured default
  // when larger, then the whole sigma is inflated — a cost-only guess is
  // strictly less informed than the sampling pipeline it stands in for.
  double rel = dg.default_rel_error;
  if (feedback_ != nullptr) {
    double windowed = 0.0;
    if (feedback_->WindowedError(fingerprint, &windowed)) {
      rel = std::max(rel, windowed);
    }
  }
  const double sigma = mean * rel * dg.inflation;
  Prediction out;
  out.breakdown.mean = mean;
  out.breakdown.variance = sigma * sigma;
  out.degraded = true;
  out.calibration = pipeline_.calibration();
  return out;
}

Prediction PredictionService::MakeDegraded(uint64_t fingerprint,
                                           const Plan& plan) {
  return MakeDegradedFromCost(fingerprint, OptimizerScalarCost(plan, *db_));
}

void PredictionService::MaybeSpuriousWakeup() {
  if (options_.fault_injector == nullptr) return;
  if (!options_.fault_injector->InjectSpuriousWakeup()) return;
  // Nothing new to run: every worker that wakes must fall back asleep
  // through its predicate loop. Fires outside pool_mu_ deliberately — a
  // naked notify is exactly the hostile shape the loops must absorb.
  pool_cv_.NotifyAll();
  stripes_[0].spurious_wakeups.fetch_add(1, std::memory_order_relaxed);
}

bool PredictionService::TryLockFreeHit(uint64_t fingerprint,
                                       const PlanIdentity& identity,
                                       EntryPtr* out) {
  if (!options_.lock_free_hits || options_.cache_capacity == 0) return false;
  Shard& shard = ShardFor(fingerprint);
  const size_t base = SlotBase(fingerprint);
  for (size_t way = 0; way < kSlotWays; ++way) {
    EntryPtr entry = std::atomic_load_explicit(&shard.slots[base + way],
                                               std::memory_order_acquire);
    if (entry == nullptr || entry->fingerprint != fingerprint) continue;
    // An entry inserted before the last InvalidateCache must not be
    // served: validate its insert generation against the global counter,
    // so a stale published slot fails here even before the flush sweep
    // reaches it.
    if (entry->generation != generation_.load(std::memory_order_acquire)) {
      continue;
    }
    // Confirm the canonical structure (64-bit collisions degrade to the
    // locked path, which treats them as misses). The interned identity
    // makes the common case a pointer compare.
    if (entry->identity.get() != &identity &&
        entry->identity->key != identity.key) {
      continue;
    }
    entry->last_used.store(
        shard.ticket.fetch_add(1, std::memory_order_relaxed),
        std::memory_order_relaxed);
    *out = std::move(entry);
    return true;
  }
  return false;
}

void PredictionService::PublishSlotLocked(Shard& shard, const EntryPtr& entry) {
  const size_t base = SlotBase(entry->fingerprint);
  // Way choice: reuse the way already holding this fingerprint, else an
  // empty way, else displace the colder (older recency tick) way. Two hot
  // plans sharing one slot index thus each keep a way and both stay on
  // the lock-free path — a single-way design would let them displace each
  // other on every publish.
  size_t victim = base;
  uint64_t oldest = std::numeric_limits<uint64_t>::max();
  bool chosen = false;
  bool victim_empty = false;
  for (size_t way = 0; way < kSlotWays; ++way) {
    const EntryPtr cur = std::atomic_load_explicit(&shard.slots[base + way],
                                                   std::memory_order_relaxed);
    if (cur != nullptr && cur->fingerprint == entry->fingerprint) {
      victim = base + way;
      break;
    }
    if (cur == nullptr) {
      if (!victim_empty) {  // an empty way beats any occupied one
        victim = base + way;
        victim_empty = true;
        chosen = true;
      }
      continue;
    }
    const uint64_t tick = cur->last_used.load(std::memory_order_relaxed);
    if (!chosen || (!victim_empty && tick < oldest)) {
      victim = base + way;
      oldest = tick;
      chosen = true;
    }
  }
  std::atomic_store_explicit(&shard.slots[victim], EntryPtr(entry),
                             std::memory_order_release);
}

void PredictionService::UnpublishSlotLocked(Shard& shard,
                                            const EntryPtr& entry) {
  const size_t base = SlotBase(entry->fingerprint);
  for (size_t way = 0; way < kSlotWays; ++way) {
    auto& slot = shard.slots[base + way];
    // Clear only the way still pointing at this entry; concurrent
    // lock-free readers that already loaded the pointer keep the entry
    // alive through their shared_ptr.
    if (std::atomic_load_explicit(&slot, std::memory_order_relaxed) == entry) {
      std::atomic_store_explicit(&slot, EntryPtr(), std::memory_order_release);
    }
  }
}

void PredictionService::CachePutLocked(Shard& shard, uint64_t fingerprint,
                                       const IdentityPtr& identity,
                                       Artifacts artifacts,
                                       uint64_t generation) {
  const uint64_t tick = shard.ticket.fetch_add(1, std::memory_order_relaxed);
  auto it = shard.entries.find(fingerprint);
  if (it != shard.entries.end()) {
    if (it->second->identity->key == identity->key) {
      // A concurrent miss on the same plan got here first; both artifacts
      // are identical (deterministic stages), keep the incumbent.
      it->second->last_used.store(tick, std::memory_order_relaxed);
      PublishSlotLocked(shard, it->second);
      return;
    }
    // Fingerprint collision with a structurally different plan: the entry
    // goes to the newcomer (the most recent user), like any LRU update.
    UnpublishSlotLocked(shard, it->second);
    shard.entries.erase(it);
  }
  auto entry = std::make_shared<CacheEntry>();
  entry->fingerprint = fingerprint;
  entry->identity = identity;
  entry->artifacts = std::move(artifacts);
  entry->generation = generation;
  entry->last_used.store(tick, std::memory_order_relaxed);
  EntryPtr resident = std::move(entry);
  shard.entries[fingerprint] = resident;
  PublishSlotLocked(shard, resident);
  // Approximate LRU: evict the smallest recency tick. The O(shard
  // capacity) scan runs only on insert-past-capacity, under the shard
  // lock only — eviction order is explicitly not part of the determinism
  // contract.
  while (shard_capacity_ > 0 && shard.entries.size() > shard_capacity_) {
    auto victim = shard.entries.begin();
    uint64_t oldest = victim->second->last_used.load(std::memory_order_relaxed);
    for (auto cand = std::next(shard.entries.begin());
         cand != shard.entries.end(); ++cand) {
      const uint64_t t = cand->second->last_used.load(std::memory_order_relaxed);
      if (t < oldest) {
        oldest = t;
        victim = cand;
      }
    }
    UnpublishSlotLocked(shard, victim->second);
    shard.entries.erase(victim);
  }
}

void PredictionService::InvalidateCache() {
  // Bump the global generation FIRST: from this instant no lock-free hit
  // validates against a pre-flush entry and no in-flight run re-inserts
  // one, even in shards the sweep below hasn't reached yet.
  generation_.fetch_add(1, std::memory_order_acq_rel);
  for (Shard& shard : shards_) {
    MutexLock lock(&shard.mu);
    shard.entries.clear();
    for (auto& slot : shard.slots) {
      std::atomic_store_explicit(&slot, EntryPtr(), std::memory_order_release);
    }
    // Detach in-flight runs: their waiters still get a (pre-flush) result —
    // parked continuations live on the Inflight object, not in this map, so
    // the completing thread still drains them — but new requests must not
    // join the detached run, and the generation bump above keeps its late
    // CachePut out of the flushed cache.
    shard.inflight.clear();
  }
}

size_t PredictionService::cache_size() const {
  size_t total = 0;
  for (Shard& shard : shards_) {
    MutexLock lock(&shard.mu);
    total += shard.entries.size();
  }
  return total;
}

StatusOr<PredictionService::Artifacts> PredictionService::RunStages(
    const Plan& plan, uint64_t fingerprint, const RequestContext& ctx) {
  StatsStripe& stripe = StripeFor(fingerprint);
  if (options_.fault_injector != nullptr) {
    const FaultDecision decision =
        options_.fault_injector->OnSampleRun(fingerprint);
    if (decision.latency_ms > 0.0) {
      // A degraded machine is slow first, broken second: the injected
      // latency lands before the verdict either way, so a delayed attempt
      // can also blow its deadline below.
      std::this_thread::sleep_for(std::chrono::microseconds(
          static_cast<int64_t>(std::llround(decision.latency_ms * 1000.0))));
    }
    if (!decision.status.ok()) {
      // The injected failure replaces the stage run entirely: sample_runs
      // deliberately does not move, so a quarantined family's "stopped
      // consuming stage-1 work" is visible in BOTH counters.
      stripe.faults_injected.fetch_add(1, std::memory_order_relaxed);
      return decision.status;
    }
  }
  if (ctx.Expired()) {
    // Don't start a sample run we already know we won't deliver from —
    // the pool stops spending time on this request here.
    return Status::DeadlineExceeded("deadline expired before stage 1");
  }
  stripe.sample_runs.fetch_add(1, std::memory_order_relaxed);
  SampleRunInput run_in;
  run_in.plan = &plan;
  std::function<bool()> cancel;
  if (ctx.has_deadline) {
    // Cooperative cancellation: the executor polls this at operator and
    // morsel-shard boundaries, so an expired run returns its workers at
    // the next boundary instead of completing a doomed sample run.
    const auto deadline = ctx.deadline;
    cancel = [deadline] {
      return std::chrono::steady_clock::now() >= deadline;
    };
    run_in.cancelled = &cancel;
  }
  UQP_ASSIGN_OR_RETURN(SampleRunOutput run_out,
                       pipeline_.sample_run_stage().Run(run_in));
  Artifacts artifacts;
  artifacts.run = std::make_shared<const SampleRunOutput>(std::move(run_out));
  stripe.fit_runs.fetch_add(1, std::memory_order_relaxed);
  CostFitInput fit_in;
  fit_in.plan = &plan;
  fit_in.sample_run = artifacts.run.get();
  UQP_ASSIGN_OR_RETURN(CostFitOutput fit_out,
                       pipeline_.cost_fit_stage().Run(fit_in));
  artifacts.fit = std::make_shared<const CostFitOutput>(std::move(fit_out));
  return artifacts;
}

StatusOr<PredictionService::Artifacts> PredictionService::RunOwnedStages(
    const Plan& plan, uint64_t fingerprint, const IdentityPtr& identity,
    const Lookup& lk, const RequestContext& ctx) {
  if (breaker_ != nullptr) {
    const BreakerDecision admit = breaker_->Admit(fingerprint);
    if (admit.shed) {
      // Quarantined: stage 1 is not consulted at all (the fault injector
      // included — a shed is invisible to the schedule's attempt count).
      // The in-flight entry this request registered still completes, so
      // every joiner/waiter resolves with the same quarantine status
      // instead of deadlocking on an abandoned promise.
      const StatusOr<Artifacts> result(
          Status::Unavailable("plan family quarantined by circuit breaker"));
      CompleteRun(lk.owned, fingerprint, identity, lk.generation, result);
      return result;
    }
    // admit.probe runs the stages normally; its verdict below closes or
    // re-opens the family.
  }
  StatusOr<Artifacts> result = RunStages(plan, fingerprint, ctx);
  if (options_.post_stages_hook) options_.post_stages_hook();
  if (breaker_ != nullptr) {
    // Injected faults and deadline cancellations count as failures: a run
    // that could not complete is a failure from the family's viewpoint.
    breaker_->OnStageResult(fingerprint, result.ok());
  }
  CompleteRun(lk.owned, fingerprint, identity, lk.generation, result);
  return result;
}

Prediction PredictionService::CombineCached(const EntryPtr& entry) {
  const CalibrationPtr snapshot = pipeline_.calibration();
  MemoPtr memo =
      std::atomic_load_explicit(&entry->combined, std::memory_order_acquire);
  if (memo != nullptr && memo->epoch == snapshot->epoch) {
    // Epochs are unique (PublishCalibration serializes them), so an epoch
    // match proves this breakdown was combined under exactly `snapshot` —
    // serve it with zero combination work.
    Prediction out;
    out.breakdown = memo->breakdown;
    out.sample_run = entry->artifacts.run;
    out.cost_fit = entry->artifacts.fit;
    out.calibration = snapshot;
    return out;
  }
  Prediction out = pipeline_.PredictFromArtifacts(entry->artifacts, snapshot);
  if (memo != nullptr) {
    // A stale memo means a calibration swap landed since this entry last
    // served: this lazy per-entry re-combination is the entire
    // invalidation cost of a swap — the stage-1/2 artifacts above were
    // reused untouched.
    StripeFor(entry->fingerprint)
        .recombines.fetch_add(1, std::memory_order_relaxed);
  }
  auto fresh = std::make_shared<CombineMemo>();
  fresh->epoch = snapshot->epoch;
  fresh->breakdown = out.breakdown;
  // Benign race: a concurrent combiner under a newer epoch may be
  // overwritten by this older store; the next hit just re-combines. The
  // memo is a cache of deterministic work — staleness costs time, never
  // correctness (served predictions always use their own `snapshot`).
  std::atomic_store_explicit(&entry->combined, MemoPtr(std::move(fresh)),
                             std::memory_order_release);
  return out;
}

PredictionService::EntryPtr PredictionService::FindEntry(
    uint64_t fingerprint) const {
  if (options_.cache_capacity == 0) return nullptr;
  Shard& shard = ShardFor(fingerprint);
  MutexLock lock(&shard.mu);
  auto it = shard.entries.find(fingerprint);
  if (it == shard.entries.end()) return nullptr;
  if (it->second->generation != generation_.load(std::memory_order_acquire)) {
    return nullptr;
  }
  return it->second;
}

void PredictionService::FulfillAsync(AsyncRequest& req,
                                     const StatusOr<Artifacts>& artifacts,
                                     bool hit) {
  // Build the result while the owned plan is still alive (the degraded
  // fallback may need it), then release the registry reference before the
  // promise fires: a caller that saw the future complete also sees the
  // registry drained. Requests that never interned (submit-time fast
  // paths) hold no reference to release — and must not decrement one
  // taken by a different request for the same key; their degraded cost
  // was precomputed at submit time instead.
  StatusOr<Prediction> result(Status::OK());
  Outcome outcome = Outcome::kOk;
  if (artifacts.ok()) {
    result = pipeline_.PredictFromArtifacts(artifacts.value());
  } else if (req.ctx.allow_degraded) {
    outcome = Outcome::kDegraded;
    result = req.plan != nullptr
                 ? MakeDegraded(req.fingerprint, *req.plan)
                 : MakeDegradedFromCost(req.fingerprint,
                                        std::max(0.0, req.degraded_cost));
  } else {
    outcome = OutcomeFor(artifacts.status());
    result = artifacts.status();
  }
  if (req.plan != nullptr) {
    ReleasePlan(req.identity->key, req.fingerprint);
    req.plan.reset();
  }
  RecordOutcome(req.fingerprint, hit, outcome);
  req.promise.set_value(std::move(result));
}

void PredictionService::FulfillAsyncFromEntry(AsyncRequest& req,
                                              const EntryPtr& entry,
                                              bool lock_free) {
  if (req.plan != nullptr) {
    ReleasePlan(req.identity->key, req.fingerprint);
    req.plan.reset();
  }
  Prediction out = CombineCached(entry);
  RecordOutcome(req.fingerprint, /*hit=*/true, Outcome::kOk, lock_free);
  req.promise.set_value(std::move(out));
}

void PredictionService::CompleteRun(const std::shared_ptr<Inflight>& owned,
                                    uint64_t fingerprint,
                                    const IdentityPtr& identity,
                                    uint64_t generation,
                                    const StatusOr<Artifacts>& result) {
  std::vector<std::shared_ptr<AsyncRequest>> waiters;
  Shard& shard = ShardFor(fingerprint);
  {
    MutexLock lock(&shard.mu);
    if (owned != nullptr) {
      auto it = shard.inflight.find(fingerprint);
      if (it != shard.inflight.end() && it->second == owned) {
        shard.inflight.erase(it);
      }
      // Detach the continuation list under the same lock that guards
      // registration: once the entry is unreachable no new waiter can be
      // parked, so none is ever lost. (If InvalidateCache already detached
      // the entry, the waiters parked before the flush are still here.)
      waiters = std::move(owned->waiters);
    }
    if (options_.cache_capacity > 0 && result.ok()) {
      if (generation_.load(std::memory_order_acquire) == generation) {
        CachePutLocked(shard, fingerprint, identity, result.value(),
                       generation);
      } else {
        // InvalidateCache ran while this prediction was in flight: its
        // artifacts may predate the flush, drop the insert.
        StripeFor(fingerprint)
            .stale_drops.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  // Wake the blocking sync joiners, then finish every parked async loser
  // with the cheap stage-3 combination (continuation handoff): the losers
  // returned their workers long ago, so a same-fingerprint storm never
  // starves the pool. On a failed run every joiner receives this same
  // status (or its own degraded fallback) — the winner's error is the
  // group's error, never a placeholder.
  if (owned != nullptr) owned->promise.set_value(result);
  for (const auto& w : waiters) {
    FulfillAsync(*w, result, /*hit=*/true);
  }
}

PredictionService::Lookup PredictionService::LookupArtifacts(
    uint64_t fingerprint, const IdentityPtr& identity,
    const std::shared_ptr<AsyncRequest>& park, bool register_owned) {
  Lookup lk;
  Shard& shard = ShardFor(fingerprint);
  MutexLock lock(&shard.mu);
  lk.generation = generation_.load(std::memory_order_acquire);
  if (options_.cache_capacity > 0) {
    auto it = shard.entries.find(fingerprint);
    // Confirm the canonical structure: a fingerprint collision must be
    // a miss, never another plan's artifacts.
    if (it != shard.entries.end() && it->second->identity->key == identity->key) {
      const EntryPtr& entry = it->second;
      entry->last_used.store(shard.ticket.fetch_add(1, std::memory_order_relaxed),
                             std::memory_order_relaxed);
      // Republish: the entry may have been displaced from its slot ways by
      // slot-index neighbours; the most recent user wins a way back.
      PublishSlotLocked(shard, entry);
      lk.entry = entry;
      return lk;
    }
  }
  auto it = shard.inflight.find(fingerprint);
  if (it != shard.inflight.end() && it->second->identity->key == identity->key) {
    if (park != nullptr) {
      // Continuation handoff: park {request, promise} on the in-flight
      // record — the winner finishes us with one cheap stage-3 run. No
      // thread ever blocks in future::get() on this path. The winner
      // records the parked request's resolution cell when it fulfills it;
      // the join itself is counted NOW, so a gated winner's joiners are
      // observable while it is still mid-stages.
      it->second->waiters.push_back(park);
      lk.parked = true;
      StripeFor(fingerprint).inflight_joins.fetch_add(
          1, std::memory_order_relaxed);
    } else {
      lk.join = it->second;
      StripeFor(fingerprint).inflight_joins.fetch_add(
          1, std::memory_order_relaxed);
    }
  } else if (it == shard.inflight.end() && register_owned) {
    lk.owned = std::make_shared<Inflight>(identity);
    shard.inflight.emplace(fingerprint, lk.owned);
  }
  // else: the fingerprint is in flight for a structurally different plan
  // (hash collision) — run solo, without registering.
  return lk;
}

StatusOr<Prediction> PredictionService::PredictImpl(const Plan& plan,
                                                    const RequestContext& ctx) {
  const IdentityPtr identity = plan.Identity();
  const uint64_t fingerprint = Fingerprint(plan, *identity);

  // Hits are served even past the deadline: the result is already free,
  // and deadlines bound work consumption, not delivery.
  EntryPtr hit;
  if (TryLockFreeHit(fingerprint, *identity, &hit)) {
    Prediction out = CombineCached(hit);
    RecordOutcome(fingerprint, /*hit=*/true, Outcome::kOk,
                  /*lock_free=*/true);
    return out;
  }

  Lookup lk = LookupArtifacts(fingerprint, identity, /*park=*/nullptr,
                              /*register_owned=*/true);
  if (lk.entry != nullptr) {
    Prediction out = CombineCached(lk.entry);
    RecordOutcome(fingerprint, /*hit=*/true, Outcome::kOk);
    return out;
  }

  if (lk.join != nullptr) {
    // Another request is already sampling this plan. Sync paths must hand
    // a value back to their caller, so waiting here is inherent — and it
    // blocks only the caller's own thread. (Batch shards park the future
    // instead; async requests park a continuation.) With a deadline the
    // wait is bounded: a timed-out joiner DETACHES — it abandons the
    // shared future (the winner completes, caches and drains everyone
    // else normally) and resolves on its own.
    if (ctx.has_deadline) {
      if (lk.join->future.wait_until(ctx.deadline) ==
          std::future_status::timeout) {
        if (ctx.allow_degraded) {
          Prediction out = MakeDegraded(fingerprint, plan);
          RecordOutcome(fingerprint, /*hit=*/true, Outcome::kDegraded);
          return out;
        }
        RecordOutcome(fingerprint, /*hit=*/true, Outcome::kDeadline);
        return Status::DeadlineExceeded(
            "deadline expired waiting on the in-flight winner");
      }
    }
    StatusOr<Artifacts> joined = lk.join->future.get();
    if (joined.ok()) {
      Prediction out = pipeline_.PredictFromArtifacts(joined.value());
      RecordOutcome(fingerprint, /*hit=*/true, Outcome::kOk);
      return out;
    }
    if (ctx.allow_degraded) {
      Prediction out = MakeDegraded(fingerprint, plan);
      RecordOutcome(fingerprint, /*hit=*/true, Outcome::kDegraded);
      return out;
    }
    RecordOutcome(fingerprint, /*hit=*/true, OutcomeFor(joined.status()));
    return joined.status();
  }

  // This request runs (or is shed from) the stages itself: a miss.
  StatusOr<Artifacts> result =
      RunOwnedStages(plan, fingerprint, identity, lk, ctx);
  if (result.ok()) {
    Prediction out = pipeline_.PredictFromArtifacts(result.value());
    RecordOutcome(fingerprint, /*hit=*/false, Outcome::kOk);
    return out;
  }
  if (ctx.allow_degraded) {
    Prediction out = MakeDegraded(fingerprint, plan);
    RecordOutcome(fingerprint, /*hit=*/false, Outcome::kDegraded);
    return out;
  }
  RecordOutcome(fingerprint, /*hit=*/false, OutcomeFor(result.status()));
  return result.status();
}

StatusOr<Prediction> PredictionService::Predict(const Plan& plan) {
  return PredictImpl(plan, RequestContext());
}

StatusOr<Prediction> PredictionService::Predict(const Plan& plan,
                                                const RequestOptions& opts) {
  return PredictImpl(plan, MakeContext(opts));
}

PredictionService::GroupFetch PredictionService::FetchForBatch(
    const Plan& plan, uint64_t fingerprint, const IdentityPtr& identity,
    const RequestContext& ctx) {
  GroupFetch out;
  EntryPtr hit;
  if (TryLockFreeHit(fingerprint, *identity, &hit)) {
    out.entry = std::move(hit);
    out.hit = true;
    out.lock_free = true;
    return out;
  }

  Lookup lk = LookupArtifacts(fingerprint, identity, /*park=*/nullptr,
                              /*register_owned=*/true);
  if (lk.entry != nullptr) {
    out.entry = lk.entry;
    out.hit = true;
    return out;
  }

  if (lk.join != nullptr) {
    // Another request's run is in flight. Don't block this pool worker in
    // future::get(): hand the shared future back as a continuation — the
    // batch's calling thread resolves it after the fan-out, so the worker
    // moves on to the next group immediately.
    out.pending = lk.join->future;
    out.hit = true;
    out.join = true;
    return out;
  }

  StatusOr<Artifacts> result =
      RunOwnedStages(plan, fingerprint, identity, lk, ctx);
  if (result.ok()) {
    out.artifacts = std::move(result).value();
  } else {
    out.failed = true;
    out.status = result.status();
  }
  return out;
}

void PredictionService::RunAsyncRequest(
    const std::shared_ptr<AsyncRequest>& req) {
  // By the time a queued request reaches a worker the cache may have
  // warmed up; the lock-free probe costs nothing if not.
  EntryPtr hit;
  if (TryLockFreeHit(req->fingerprint, *req->identity, &hit)) {
    FulfillAsyncFromEntry(*req, hit, /*lock_free=*/true);
    return;
  }

  if (req->ctx.Expired()) {
    // Expired while queued: the pool stops spending time on this request
    // right here — no lookup registration, no stage run. The future still
    // resolves (DeadlineExceeded or degraded), the in-flight table and
    // the cache are untouched.
    FulfillAsync(*req,
                 Status::DeadlineExceeded("deadline expired in the pool queue"),
                 /*hit=*/false);
    return;
  }

  Lookup lk = LookupArtifacts(req->fingerprint, req->identity, /*park=*/req,
                              /*register_owned=*/true);
  if (lk.parked) return;  // the winner will finish us; worker freed
  if (lk.entry != nullptr) {
    FulfillAsyncFromEntry(*req, lk.entry, /*lock_free=*/false);
    return;
  }

  const StatusOr<Artifacts> result =
      RunOwnedStages(*req->plan, req->fingerprint, req->identity, lk, req->ctx);
  FulfillAsync(*req, result, /*hit=*/false);
}

std::future<StatusOr<Prediction>> PredictionService::PredictAsync(
    const Plan& plan) {
  return PredictAsync(plan, RequestOptions());
}

std::future<StatusOr<Prediction>> PredictionService::PredictAsync(
    const Plan& plan, const RequestOptions& opts) {
  auto req = std::make_shared<AsyncRequest>();
  req->ctx = MakeContext(opts);
  req->identity = plan.Identity();
  req->fingerprint = Fingerprint(plan, *req->identity);
  std::future<StatusOr<Prediction>> future = req->promise.get_future();

  // Submit-time fast paths on the caller's thread, before paying for a
  // registry clone or a pool round-trip. A hot-cache hit resolves here
  // through the lock-free probe — a few atomic loads and a key confirm,
  // no service mutex at all; a warm hit displaced from its published
  // slot resolves through the shard (not global) lock; and a plan already
  // being sampled parks a plan-free continuation (stage 3 needs only the
  // artifacts). None of these touch the caller's plan after this call
  // returns.
  EntryPtr hit;
  if (TryLockFreeHit(req->fingerprint, *req->identity, &hit)) {
    FulfillAsyncFromEntry(*req, hit, /*lock_free=*/true);
    return future;
  }
  // A request that may degrade must not need the caller's plan at
  // resolution time (a parked continuation holds no plan; the caller's
  // may be destroyed the moment we return): precompute the optimizer
  // scalar its fallback would be built from, before the park below.
  if (req->ctx.allow_degraded) {
    req->degraded_cost = OptimizerScalarCost(plan, *db_);
  }
  Lookup lk = LookupArtifacts(req->fingerprint, req->identity, /*park=*/req,
                              /*register_owned=*/false);
  if (lk.parked) return future;
  if (lk.entry != nullptr) {
    FulfillAsyncFromEntry(*req, lk.entry, /*lock_free=*/false);
    return future;
  }

  // Cold miss: own the plan before returning. From here on the caller's
  // Plan is never touched again, so it may be destroyed as soon as this
  // call returns.
  req->plan = InternPlan(plan, req->identity->key, req->fingerprint);

  bool rejected = false;
  {
    MutexLock lock(&pool_mu_);
    if (shutdown_) {
      rejected = true;
    } else {
      pool_queue_.push_back([this, req] { RunAsyncRequest(req); });
    }
  }
  if (rejected) {
    if (options_.drain_on_shutdown) {
      // Graceful drain: run the prediction inline on the calling thread.
      // Degraded latency, identical result — and still fully raced
      // correctly: an inline latecomer that finds another request's run
      // in flight parks on it (atomically with the lookup), and that
      // winner drains it like any other continuation.
      StripeFor(req->fingerprint)
          .drained_inline.fetch_add(1, std::memory_order_relaxed);
      RunAsyncRequest(req);
      return future;
    }
    // The pool is gone; enqueueing would leave the future unsatisfied
    // forever. Fail fast instead.
    StripeFor(req->fingerprint)
        .async_rejects.fetch_add(1, std::memory_order_relaxed);
    ReleasePlan(req->identity->key, req->fingerprint);
    req->plan.reset();
    req->promise.set_value(
        Status::Unavailable("PredictionService is shut down"));
    return future;
  }
  pool_cv_.NotifyOne();
  MaybeSpuriousWakeup();
  return future;
}

std::vector<StatusOr<Prediction>> PredictionService::PredictBatch(
    const Plan* const* plans, size_t count) {
  return PredictBatch(plans, count, RequestOptions());
}

std::vector<StatusOr<Prediction>> PredictionService::PredictBatch(
    const Plan* const* plans, size_t count, const RequestOptions& opts) {
  const RequestContext ctx = MakeContext(opts);
  stripes_[0].batch_calls.fetch_add(1, std::memory_order_relaxed);
  std::vector<StatusOr<Prediction>> results;
  results.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    // Unreachable sentinel: the stage-3 fan-out below writes EVERY slot a
    // terminal status on every path (group failure, degraded conversion,
    // pending timeout included) — service_test pins that no slot ever
    // leaks this value.
    results.emplace_back(Status::Internal("batch slot never resolved"));
  }
  if (count == 0) return results;

  // Dedup: plans sharing a fingerprint AND the canonical structure share
  // one sample run. Grouping on the structural key too keeps the cache's
  // collision guarantee inside a batch: colliding plans form separate
  // groups instead of silently sharing artifacts.
  std::vector<uint64_t> fingerprints(count);
  std::vector<IdentityPtr> identities(count);
  std::vector<size_t> group_ids(count);
  std::unordered_map<std::string, size_t> group_of;  // fp ‖ key -> group id
  std::vector<size_t> representative;                // group id -> plan index
  for (size_t i = 0; i < count; ++i) {
    identities[i] = plans[i]->Identity();
    fingerprints[i] = Fingerprint(*plans[i], *identities[i]);
    std::string group_key;
    AppendKeyU64(&group_key, fingerprints[i]);
    group_key += identities[i]->key;
    const auto [it, inserted] =
        group_of.emplace(std::move(group_key), representative.size());
    group_ids[i] = it->second;
    if (inserted) representative.push_back(i);
  }

  // Stages 1-2 (through the cache) once per distinct plan, sharded.
  // Shards that find another request's run in flight park its shared
  // future instead of blocking the worker. Classification is deferred to
  // the per-slot stage-3 fan-out below.
  std::vector<GroupFetch> fetched(representative.size());
  const std::function<void(size_t)> stages12 = [&](size_t g) {
    const size_t rep = representative[g];
    fetched[g] =
        FetchForBatch(*plans[rep], fingerprints[rep], identities[rep], ctx);
  };
  ParallelFor(representative.size(), stages12);

  // Resolve parked in-flight joins on the CALLING thread: the batch must
  // still block until each winner finishes (its results are part of this
  // batch's return value), but no pool worker spends that wait in
  // future::get() — they went back to real work the moment they parked.
  // With a deadline the wait is bounded: a timed-out group detaches from
  // its winner (who completes and caches normally) and resolves
  // DeadlineExceeded — convertible per slot to a degraded fallback below.
  for (GroupFetch& f : fetched) {
    if (!f.pending.valid()) continue;
    if (ctx.has_deadline &&
        f.pending.wait_until(ctx.deadline) == std::future_status::timeout) {
      f.failed = true;
      f.status = Status::DeadlineExceeded(
          "deadline expired waiting on the in-flight winner");
      f.pending = std::shared_future<StatusOr<Artifacts>>();
      continue;
    }
    StatusOr<Artifacts> joined = f.pending.get();
    if (joined.ok()) {
      f.artifacts = std::move(joined).value();
    } else {
      f.failed = true;
      f.status = joined.status();
    }
    f.pending = std::shared_future<StatusOr<Artifacts>>();
  }

  // Stage 3 per plan, sharded. In-batch duplicates are served from their
  // group's shared artifacts without any stage-1/2 work: cache hits.
  // Groups served from a resident entry go through the epoch memo
  // (CombineCached), so a hot batch under an unchanged epoch runs zero
  // combination work. EVERY slot resolves to its own terminal status
  // here, and each slot's resolution-matrix cell is recorded exactly
  // once: the representative inherits its group's hit/miss, duplicates
  // are hits.
  const std::function<void(size_t)> stage3 = [&](size_t i) {
    const size_t g = group_ids[i];
    const GroupFetch& f = fetched[g];
    const bool is_rep = representative[g] == i;
    const bool hit = is_rep ? (f.hit || f.join) : true;
    const bool lock_free = is_rep && f.lock_free;
    if (f.failed) {
      if (ctx.allow_degraded) {
        results[i] = MakeDegraded(fingerprints[i], *plans[i]);
        RecordOutcome(fingerprints[i], hit, Outcome::kDegraded);
      } else {
        results[i] = f.status;
        RecordOutcome(fingerprints[i], hit, OutcomeFor(f.status));
      }
      return;
    }
    if (f.entry != nullptr) {
      results[i] = CombineCached(f.entry);
    } else {
      results[i] = pipeline_.PredictFromArtifacts(f.artifacts);
    }
    RecordOutcome(fingerprints[i], hit, Outcome::kOk, lock_free);
  };
  ParallelFor(count, stage3);
  return results;
}

std::vector<StatusOr<Prediction>> PredictionService::PredictBatch(
    const std::vector<const Plan*>& plans) {
  return PredictBatch(plans.data(), plans.size());
}

std::vector<StatusOr<Prediction>> PredictionService::PredictBatch(
    const std::vector<const Plan*>& plans, const RequestOptions& opts) {
  return PredictBatch(plans.data(), plans.size(), opts);
}

std::vector<StatusOr<Prediction>> PredictionService::PredictBatch(
    const std::vector<Plan>& plans) {
  std::vector<const Plan*> ptrs;
  ptrs.reserve(plans.size());
  for (const Plan& p : plans) ptrs.push_back(&p);
  return PredictBatch(ptrs.data(), ptrs.size());
}

VarianceBreakdown PredictionService::Recompute(const Prediction& prediction,
                                               PredictorVariant variant,
                                               CovarianceBoundKind bound) const {
  return pipeline_.Recompute(prediction, variant, bound);
}

uint64_t PredictionService::PublishCalibration(CostUnits units,
                                               std::string source) {
  MutexLock lock(&calibration_mu_);
  const uint64_t epoch = pipeline_.calibration()->epoch + 1;
  const uint64_t reports =
      feedback_ != nullptr ? feedback_->total_reports() : 0;
  pipeline_.SetCalibration(MakeCalibrationSnapshot(std::move(units), epoch,
                                                   std::move(source), reports));
  // Deliberately NOT InvalidateCache: stage-1/2 artifacts are
  // unit-independent, so every cached entry survives the swap and only
  // its stage-3 memo went stale — the next hit re-combines lazily
  // (stats().recombines) instead of re-running the expensive stages.
  if (feedback_ != nullptr) feedback_->OnPublish();
  return epoch;
}

void PredictionService::ReportObserved(const Plan& plan, double observed_ms) {
  const IdentityPtr identity = plan.Identity();
  ReportObserved(Fingerprint(plan, *identity), observed_ms);
}

void PredictionService::ReportObserved(uint64_t fingerprint,
                                       double observed_ms) {
  if (feedback_ == nullptr) return;
  StatsStripe& stripe = StripeFor(fingerprint);
  stripe.feedback_reports.fetch_add(1, std::memory_order_relaxed);
  if (!(observed_ms > 0.0)) {
    stripe.feedback_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // The error is computed lazily — converged families skip it entirely —
  // against the family's cached prediction under the CURRENT snapshot
  // (through the epoch memo, so a hot family pays zero combination work).
  // Every cache-backed computation refreshes the family's stash; when the
  // plan was evicted (or flushed) the stashed mean is the fallback
  // comparison point, so late reports still land instead of dropping.
  const auto error_fn = [this, fingerprint, observed_ms](
                            PredictionStash* stash, double* out) {
    const EntryPtr entry = FindEntry(fingerprint);
    if (entry != nullptr) {
      const Prediction prediction = CombineCached(entry);
      stash->mean_ms = prediction.mean();
      stash->epoch = prediction.calibration->epoch;
      stash->valid = true;
      *out = (observed_ms - prediction.mean()) / observed_ms;
      return true;
    }
    if (!stash->valid) return false;  // never predicted: nothing to compare to
    // The stash may predate the current calibration epoch; that slack is
    // bounded by one eviction-to-report gap and beats dropping the report.
    StripeFor(fingerprint)
        .feedback_stash_hits.fetch_add(1, std::memory_order_relaxed);
    *out = (observed_ms - stash->mean_ms) / observed_ms;
    return true;
  };
  const FeedbackRegistry::Action action =
      feedback_->Observe(fingerprint, error_fn);
  switch (action) {
    case FeedbackRegistry::Action::kDropped:
      stripe.feedback_dropped.fetch_add(1, std::memory_order_relaxed);
      break;
    case FeedbackRegistry::Action::kDrift:
      HandleDrift(fingerprint);
      break;
    default:
      break;
  }
}

void PredictionService::ReportObservedAgainst(uint64_t fingerprint,
                                              const Prediction& as_decided,
                                              double observed_ms) {
  if (feedback_ == nullptr) return;
  StatsStripe& stripe = StripeFor(fingerprint);
  stripe.feedback_reports.fetch_add(1, std::memory_order_relaxed);
  if (!(observed_ms > 0.0)) {
    stripe.feedback_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // The comparison point is pinned by the caller (the prediction its
  // admission/ordering decision used), so no cache lookup: the report
  // lands even for plans that were never cached here, and a calibration
  // swap between decision and completion cannot silently shift the error.
  const auto error_fn = [&as_decided, observed_ms](PredictionStash* stash,
                                                   double* out) {
    stash->mean_ms = as_decided.mean();
    stash->epoch = as_decided.calibration_epoch();
    stash->valid = true;
    *out = (observed_ms - as_decided.mean()) / observed_ms;
    return true;
  };
  const FeedbackRegistry::Action action =
      feedback_->Observe(fingerprint, error_fn);
  switch (action) {
    case FeedbackRegistry::Action::kDropped:
      stripe.feedback_dropped.fetch_add(1, std::memory_order_relaxed);
      break;
    case FeedbackRegistry::Action::kDrift:
      HandleDrift(fingerprint);
      break;
    default:
      break;
  }
}

void PredictionService::HandleDrift(uint64_t fingerprint) {
  if (!options_.feedback.recalibrate) return;  // detect-only mode
  // At most one recalibration per cooldown window across all families:
  // one machine-wide drift makes many families scream at once.
  if (!feedback_->ClaimDrift()) return;
  // Re-derive the units outside every service lock — calibration runs
  // real (harness) queries and must not stall the prediction hot path.
  CostUnits units = options_.feedback.recalibrate();
  PublishCalibration(std::move(units), "drift");
  StripeFor(fingerprint).recalibrations.fetch_add(1, std::memory_order_relaxed);
}

std::vector<FamilyFeedback> PredictionService::FeedbackSnapshot() const {
  std::vector<FamilyFeedback> rows =
      feedback_ != nullptr ? feedback_->Snapshot() : std::vector<FamilyFeedback>();
  if (breaker_ == nullptr) return rows;
  // Merge breaker state into the feedback rows (both sorted by
  // fingerprint); families the breaker touched but feedback never saw
  // become rows of their own with empty windows.
  const std::vector<BreakerSnapshot> breakers = breaker_->Snapshot();
  size_t r = 0;
  std::vector<FamilyFeedback> extra;
  for (const BreakerSnapshot& b : breakers) {
    while (r < rows.size() && rows[r].fingerprint < b.fingerprint) ++r;
    FamilyFeedback* row;
    if (r < rows.size() && rows[r].fingerprint == b.fingerprint) {
      row = &rows[r];
    } else {
      extra.emplace_back();
      extra.back().fingerprint = b.fingerprint;
      row = &extra.back();
    }
    row->breaker_state = ToString(b.state);
    row->breaker_consecutive_failures = b.consecutive_failures;
    row->breaker_opens = b.opens;
    row->breaker_shed = b.shed;
  }
  if (!extra.empty()) {
    rows.insert(rows.end(), extra.begin(), extra.end());
    std::sort(rows.begin(), rows.end(),
              [](const FamilyFeedback& a, const FamilyFeedback& b) {
                return a.fingerprint < b.fingerprint;
              });
  }
  return rows;
}

ServiceStats PredictionService::stats() const {
  // Sum the per-shard stripes. Each stripe's relaxed counters are
  // monotone and each request touched exactly one resolution-matrix cell
  // in exactly one stripe, so every reported aggregate — the hit/miss
  // split, the outcome split, and `predictions` itself — is a sum over
  // cells BY DEFINITION, which is what makes both conservation
  // invariants hold at every observable instant instead of only at
  // quiescence.
  ServiceStats out;
  const size_t n = shards_.size();
  for (size_t i = 0; i < n; ++i) {
    const StatsStripe& s = stripes_[i];
    for (size_t row = 0; row < 2; ++row) {
      for (size_t col = 0; col < kNumOutcomes; ++col) {
        const uint64_t v = s.outcome[row][col].load(std::memory_order_relaxed);
        (row == 1 ? out.cache_hits : out.cache_misses) += v;
        switch (static_cast<Outcome>(col)) {
          case Outcome::kOk: out.ok_served += v; break;
          case Outcome::kFailed: out.failed += v; break;
          case Outcome::kDegraded: out.degraded_served += v; break;
          case Outcome::kDeadline: out.deadline_exceeded += v; break;
        }
      }
    }
    out.batch_calls += s.batch_calls.load(std::memory_order_relaxed);
    out.sample_runs += s.sample_runs.load(std::memory_order_relaxed);
    out.fit_runs += s.fit_runs.load(std::memory_order_relaxed);
    out.lockfree_hits += s.lockfree_hits.load(std::memory_order_relaxed);
    out.inflight_joins += s.inflight_joins.load(std::memory_order_relaxed);
    out.stale_drops += s.stale_drops.load(std::memory_order_relaxed);
    out.plan_clones += s.plan_clones.load(std::memory_order_relaxed);
    out.async_rejects += s.async_rejects.load(std::memory_order_relaxed);
    out.drained_inline += s.drained_inline.load(std::memory_order_relaxed);
    out.recombines += s.recombines.load(std::memory_order_relaxed);
    out.recalibrations += s.recalibrations.load(std::memory_order_relaxed);
    out.feedback_reports += s.feedback_reports.load(std::memory_order_relaxed);
    out.feedback_dropped += s.feedback_dropped.load(std::memory_order_relaxed);
    out.feedback_stash_hits +=
        s.feedback_stash_hits.load(std::memory_order_relaxed);
    out.faults_injected += s.faults_injected.load(std::memory_order_relaxed);
    out.spurious_wakeups +=
        s.spurious_wakeups.load(std::memory_order_relaxed);
  }
  out.predictions = out.cache_hits + out.cache_misses;
  if (feedback_ != nullptr) {
    out.converged_families = feedback_->converged_count();
    out.feedback_families = feedback_->family_count();
  }
  if (breaker_ != nullptr) {
    out.breaker_opens = breaker_->total_opens();
    out.breaker_shed = breaker_->total_shed();
    out.breaker_probes = breaker_->total_probes();
  }
  return out;
}

}  // namespace uqp
