#include "service/prediction_service.h"

#include <algorithm>
#include <utility>

namespace uqp {

namespace {

/// Shared state of one ParallelFor: workers and the calling thread pull
/// indexes from `next` until exhausted; the last finisher wakes the caller.
struct ParallelState {
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  size_t total = 0;
  const std::function<void(size_t)>* fn = nullptr;
  std::mutex mu;
  std::condition_variable cv;

  void Pull() {
    for (;;) {
      const size_t i = next.fetch_add(1);
      if (i >= total) return;
      (*fn)(i);
      if (done.fetch_add(1) + 1 == total) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      }
    }
  }
};

}  // namespace

PredictionService::PredictionService(const Database* db, const SampleDb* samples,
                                     CostUnits units, ServiceOptions options)
    : pipeline_(db, samples, units, options.predictor, &pool_runner_),
      options_(std::move(options)) {
  int n = options_.num_workers;
  if (n <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    n = static_cast<int>(std::min(4u, std::max(1u, hw)));
  }
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back(&PredictionService::WorkerLoop, this);
  }
}

PredictionService::~PredictionService() { Shutdown(); }

void PredictionService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  pool_cv_.notify_all();
  // Workers drain the queue before exiting, so every future handed out by
  // PredictAsync before the shutdown flag was set is satisfied. Requests
  // that lose the race (PredictAsync observing shutdown_ == true) are
  // rejected with Status::Unavailable instead of being enqueued into a
  // pool nobody drains. The joined threads stay in workers_ — the vector
  // is never mutated after construction, so concurrent readers
  // (ParallelFor, num_workers) race with nothing.
  for (std::thread& t : workers_) t.join();
}

void PredictionService::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(pool_mu_);
      pool_cv_.wait(lock, [&] { return shutdown_ || !pool_queue_.empty(); });
      if (pool_queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      // FIFO: the oldest request is served next. (A LIFO pop would starve
      // the oldest PredictAsync under sustained load.)
      task = std::move(pool_queue_.front());
      pool_queue_.pop_front();
    }
    task();
  }
}

void PredictionService::ParallelFor(size_t n,
                                    const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || workers_.empty()) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto state = std::make_shared<ParallelState>();
  state->total = n;
  state->fn = &fn;  // outlives the call: we wait for completion below
  const size_t helpers = std::min(workers_.size(), n - 1);
  bool enqueued = false;
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    // After Shutdown nobody pops the queue: don't park helper closures
    // there forever — the calling thread just runs every index itself.
    if (!shutdown_) {
      for (size_t i = 0; i < helpers; ++i) {
        pool_queue_.push_back([state] { state->Pull(); });
      }
      enqueued = true;
    }
  }
  if (enqueued) pool_cv_.notify_all();
  state->Pull();  // the calling thread shards too
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] { return state->done.load() == n; });
}

uint64_t PredictionService::Fingerprint(const Plan& plan) const {
  return options_.fingerprint_fn != nullptr ? options_.fingerprint_fn(plan)
                                            : PlanFingerprint(plan);
}

std::shared_ptr<const Plan> PredictionService::InternPlan(
    const Plan& plan, const std::string& key) {
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    auto it = plan_registry_.find(key);
    if (it != plan_registry_.end()) {
      ++it->second.refs;
      return it->second.plan;
    }
  }
  // Deep-copy outside the lock: the clone walks every node, schema and
  // expression of the plan, and must not serialize unrelated submitters.
  auto clone = std::make_shared<const Plan>(plan.Clone());
  std::lock_guard<std::mutex> lock(registry_mu_);
  auto [it, inserted] = plan_registry_.try_emplace(key);
  if (inserted) {
    it->second.plan = std::move(clone);
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++stats_.plan_clones;
  }
  // else: a concurrent submitter interned first — use its copy, drop ours.
  ++it->second.refs;
  return it->second.plan;
}

void PredictionService::ReleasePlan(const std::string& key) {
  std::lock_guard<std::mutex> lock(registry_mu_);
  auto it = plan_registry_.find(key);
  if (it != plan_registry_.end() && --it->second.refs == 0) {
    plan_registry_.erase(it);
  }
}

size_t PredictionService::plan_registry_size() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  return plan_registry_.size();
}

void PredictionService::RecordRequest(bool hit, bool inflight_join) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.predictions;
  if (hit) {
    ++stats_.cache_hits;
    if (inflight_join) ++stats_.inflight_joins;
  } else {
    ++stats_.cache_misses;
  }
}

void PredictionService::CachePutLocked(uint64_t fingerprint,
                                       const std::string& key,
                                       Artifacts artifacts) {
  auto it = cache_index_.find(fingerprint);
  if (it != cache_index_.end()) {
    if (it->second->key == key) {
      // A concurrent miss on the same plan got here first; both artifacts
      // are identical (deterministic stages), keep the incumbent.
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    // Fingerprint collision with a structurally different plan: the slot
    // goes to the newcomer (the most recent user), like any LRU update.
    lru_.erase(it->second);
    cache_index_.erase(it);
  }
  lru_.push_front(CacheEntry{fingerprint, key, std::move(artifacts)});
  cache_index_[fingerprint] = lru_.begin();
  while (lru_.size() > options_.cache_capacity) {
    cache_index_.erase(lru_.back().fingerprint);
    lru_.pop_back();
  }
}

void PredictionService::InvalidateCache() {
  std::lock_guard<std::mutex> lock(cache_mu_);
  lru_.clear();
  cache_index_.clear();
  // Detach in-flight runs: their waiters still get a (pre-flush) result —
  // parked continuations live on the Inflight object, not in this map, so
  // the completing thread still drains them — but new requests must not
  // join the detached run, and the generation bump below keeps its late
  // CachePut out of the flushed cache.
  inflight_.clear();
  ++generation_;
}

size_t PredictionService::cache_size() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return lru_.size();
}

StatusOr<PredictionService::Artifacts> PredictionService::RunStages(
    const Plan& plan) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.sample_runs;
  }
  SampleRunInput run_in;
  run_in.plan = &plan;
  UQP_ASSIGN_OR_RETURN(SampleRunOutput run_out,
                       pipeline_.sample_run_stage().Run(run_in));
  Artifacts artifacts;
  artifacts.run = std::make_shared<const SampleRunOutput>(std::move(run_out));
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.fit_runs;
  }
  CostFitInput fit_in;
  fit_in.plan = &plan;
  fit_in.sample_run = artifacts.run.get();
  UQP_ASSIGN_OR_RETURN(CostFitOutput fit_out,
                       pipeline_.cost_fit_stage().Run(fit_in));
  artifacts.fit = std::make_shared<const CostFitOutput>(std::move(fit_out));
  return artifacts;
}

void PredictionService::FulfillAsync(AsyncRequest& req,
                                     const StatusOr<Artifacts>& artifacts) {
  // Release the registry reference (and this request's hold on the clone)
  // before the promise fires: a caller that saw the future complete also
  // sees the registry drained of this request. Requests that never
  // interned (submit-time fast paths) hold no reference to release — and
  // must not decrement one taken by a different request for the same key.
  if (req.plan != nullptr) {
    ReleasePlan(req.key);
    req.plan.reset();
  }
  if (artifacts.ok()) {
    req.promise.set_value(pipeline_.PredictFromArtifacts(artifacts.value()));
  } else {
    req.promise.set_value(artifacts.status());
  }
}

void PredictionService::CompleteRun(const std::shared_ptr<Inflight>& owned,
                                    uint64_t fingerprint,
                                    const std::string& key, uint64_t generation,
                                    const StatusOr<Artifacts>& result) {
  std::vector<std::shared_ptr<AsyncRequest>> waiters;
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    if (owned != nullptr) {
      auto it = inflight_.find(fingerprint);
      if (it != inflight_.end() && it->second == owned) inflight_.erase(it);
      // Detach the continuation list under the same lock that guards
      // registration: once the entry is unreachable no new waiter can be
      // parked, so none is ever lost. (If InvalidateCache already detached
      // the entry, the waiters parked before the flush are still here.)
      waiters = std::move(owned->waiters);
    }
    if (options_.cache_capacity > 0 && result.ok()) {
      if (generation_ == generation) {
        CachePutLocked(fingerprint, key, result.value());
      } else {
        // InvalidateCache ran while this prediction was in flight: its
        // artifacts may predate the flush, drop the insert.
        std::lock_guard<std::mutex> stats_lock(stats_mu_);
        ++stats_.stale_drops;
      }
    }
  }
  // Wake the blocking sync joiners, then finish every parked async loser
  // with the cheap stage-3 combination (continuation handoff): the losers
  // returned their workers long ago, so a same-fingerprint storm never
  // starves the pool.
  if (owned != nullptr) owned->promise.set_value(result);
  for (const auto& w : waiters) FulfillAsync(*w, result);
}

PredictionService::Lookup PredictionService::LookupArtifacts(
    uint64_t fingerprint, const std::string& key,
    const std::shared_ptr<AsyncRequest>& park, bool register_owned) {
  Lookup lk;
  std::lock_guard<std::mutex> lock(cache_mu_);
  lk.generation = generation_;
  if (options_.cache_capacity > 0) {
    auto it = cache_index_.find(fingerprint);
    // Confirm the canonical structure: a fingerprint collision must be
    // a miss, never another plan's artifacts.
    if (it != cache_index_.end() && it->second->key == key) {
      lru_.splice(lru_.begin(), lru_, it->second);  // move to front
      lk.artifacts = it->second->artifacts;
      lk.cached = true;
      RecordRequest(/*hit=*/true);
      return lk;
    }
  }
  auto it = inflight_.find(fingerprint);
  if (it != inflight_.end() && it->second->key == key) {
    if (park != nullptr) {
      // Continuation handoff: park {request, promise} on the in-flight
      // record — the winner finishes us with one cheap stage-3 run. No
      // thread ever blocks in future::get() on this path.
      RecordRequest(/*hit=*/true, /*inflight_join=*/true);
      it->second->waiters.push_back(park);
      lk.parked = true;
    } else {
      lk.join = it->second;
    }
  } else if (it == inflight_.end() && register_owned) {
    lk.owned = std::make_shared<Inflight>(key);
    inflight_.emplace(fingerprint, lk.owned);
  }
  // else: the fingerprint is in flight for a structurally different plan
  // (hash collision) — run solo, without registering.
  return lk;
}

StatusOr<PredictionService::Artifacts> PredictionService::GetArtifacts(
    const Plan& plan, uint64_t fingerprint, const std::string& key) {
  Lookup lk = LookupArtifacts(fingerprint, key, /*park=*/nullptr,
                              /*register_owned=*/true);
  if (lk.cached) return std::move(lk.artifacts);

  if (lk.join != nullptr) {
    // Another request is already sampling this plan. Sync paths must hand
    // a value back to their caller, so waiting here is inherent — and it
    // blocks only the caller's own thread (Predict) or one batch shard.
    // Async requests never reach this: they park a continuation instead.
    RecordRequest(/*hit=*/true, /*inflight_join=*/true);
    return lk.join->future.get();
  }

  // This request runs the stages itself — the one classification point
  // for misses, so hits + misses == predictions at every instant.
  RecordRequest(/*hit=*/false);
  StatusOr<Artifacts> result = RunStages(plan);
  if (options_.post_stages_hook) options_.post_stages_hook();
  CompleteRun(lk.owned, fingerprint, key, lk.generation, result);
  return result;
}

StatusOr<Prediction> PredictionService::PredictImpl(const Plan& plan) {
  UQP_ASSIGN_OR_RETURN(
      Artifacts artifacts,
      GetArtifacts(plan, Fingerprint(plan), PlanStructuralKey(plan)));
  return pipeline_.PredictFromArtifacts(std::move(artifacts.run),
                                        std::move(artifacts.fit));
}

StatusOr<Prediction> PredictionService::Predict(const Plan& plan) {
  return PredictImpl(plan);
}

void PredictionService::RunAsyncRequest(
    const std::shared_ptr<AsyncRequest>& req) {
  Lookup lk = LookupArtifacts(req->fingerprint, req->key, /*park=*/req,
                              /*register_owned=*/true);
  if (lk.parked) return;  // the winner will finish us; worker freed
  if (lk.cached) {
    FulfillAsync(*req, StatusOr<Artifacts>(std::move(lk.artifacts)));
    return;
  }

  RecordRequest(/*hit=*/false);
  StatusOr<Artifacts> result = RunStages(*req->plan);
  if (options_.post_stages_hook) options_.post_stages_hook();
  CompleteRun(lk.owned, req->fingerprint, req->key, lk.generation, result);
  FulfillAsync(*req, result);
}

std::future<StatusOr<Prediction>> PredictionService::PredictAsync(
    const Plan& plan) {
  auto req = std::make_shared<AsyncRequest>();
  req->fingerprint = Fingerprint(plan);
  req->key = PlanStructuralKey(plan);
  std::future<StatusOr<Prediction>> future = req->promise.get_future();

  // Submit-time fast paths on the caller's thread, before paying for a
  // registry clone or a pool round-trip: a cache hit is one cheap stage-3
  // combination away, and a plan already being sampled can park a
  // plan-free continuation (stage 3 needs only the artifacts). Neither
  // touches the caller's plan after this call returns.
  Lookup lk = LookupArtifacts(req->fingerprint, req->key, /*park=*/req,
                              /*register_owned=*/false);
  if (lk.parked) return future;
  if (lk.cached) {
    FulfillAsync(*req, StatusOr<Artifacts>(std::move(lk.artifacts)));
    return future;
  }

  // Cold miss: own the plan before returning. From here on the caller's
  // Plan is never touched again, so it may be destroyed as soon as this
  // call returns.
  req->plan = InternPlan(plan, req->key);

  bool rejected = false;
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    if (shutdown_) {
      rejected = true;
    } else {
      pool_queue_.push_back([this, req] { RunAsyncRequest(req); });
    }
  }
  if (rejected) {
    // The pool is gone; enqueueing would leave the future unsatisfied
    // forever. Fail fast instead.
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.async_rejects;
    }
    ReleasePlan(req->key);
    req->plan.reset();
    req->promise.set_value(
        Status::Unavailable("PredictionService is shut down"));
    return future;
  }
  pool_cv_.notify_one();
  return future;
}

std::vector<StatusOr<Prediction>> PredictionService::PredictBatch(
    const Plan* const* plans, size_t count) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.batch_calls;
  }
  std::vector<StatusOr<Prediction>> results;
  results.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    results.emplace_back(Status::Internal("prediction not yet computed"));
  }
  if (count == 0) return results;

  // Dedup: plans sharing a fingerprint AND the canonical structure share
  // one sample run. Grouping on the structural key too keeps the cache's
  // collision guarantee inside a batch: colliding plans form separate
  // groups instead of silently sharing artifacts.
  std::vector<uint64_t> fingerprints(count);
  std::vector<std::string> keys(count);
  std::vector<size_t> group_ids(count);
  std::unordered_map<std::string, size_t> group_of;  // fp ‖ key -> group id
  std::vector<size_t> representative;                // group id -> plan index
  for (size_t i = 0; i < count; ++i) {
    fingerprints[i] = Fingerprint(*plans[i]);
    keys[i] = PlanStructuralKey(*plans[i]);
    std::string group_key;
    AppendKeyU64(&group_key, fingerprints[i]);
    group_key += keys[i];
    const auto [it, inserted] =
        group_of.emplace(std::move(group_key), representative.size());
    group_ids[i] = it->second;
    if (inserted) representative.push_back(i);
  }

  // Stages 1-2 (through the cache) once per distinct plan, sharded. The
  // representative is classified (hit/miss) inside GetArtifacts.
  std::vector<Artifacts> artifacts(representative.size());
  std::vector<Status> group_status(representative.size());
  const std::function<void(size_t)> stages12 = [&](size_t g) {
    const size_t rep = representative[g];
    auto artifacts_or =
        GetArtifacts(*plans[rep], fingerprints[rep], keys[rep]);
    if (artifacts_or.ok()) {
      artifacts[g] = std::move(artifacts_or).value();
    } else {
      group_status[g] = artifacts_or.status();
    }
  };
  ParallelFor(representative.size(), stages12);

  // Stage 3 per plan, sharded. In-batch duplicates are served from their
  // group's shared artifacts without any stage-1/2 work: cache hits.
  const std::function<void(size_t)> stage3 = [&](size_t i) {
    const size_t g = group_ids[i];
    if (representative[g] != i) RecordRequest(/*hit=*/true);
    if (!group_status[g].ok()) {
      results[i] = group_status[g];
      return;
    }
    results[i] = pipeline_.PredictFromArtifacts(artifacts[g]);
  };
  ParallelFor(count, stage3);
  return results;
}

std::vector<StatusOr<Prediction>> PredictionService::PredictBatch(
    const std::vector<const Plan*>& plans) {
  return PredictBatch(plans.data(), plans.size());
}

std::vector<StatusOr<Prediction>> PredictionService::PredictBatch(
    const std::vector<Plan>& plans) {
  std::vector<const Plan*> ptrs;
  ptrs.reserve(plans.size());
  for (const Plan& p : plans) ptrs.push_back(&p);
  return PredictBatch(ptrs.data(), ptrs.size());
}

VarianceBreakdown PredictionService::Recompute(const Prediction& prediction,
                                               PredictorVariant variant,
                                               CovarianceBoundKind bound) const {
  return pipeline_.Recompute(prediction, variant, bound);
}

ServiceStats PredictionService::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace uqp
