#include "service/prediction_service.h"

#include <algorithm>
#include <utility>

namespace uqp {

namespace {

/// Shared state of one ParallelFor: workers and the calling thread pull
/// indexes from `next` until exhausted; the last finisher wakes the caller.
struct ParallelState {
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  size_t total = 0;
  const std::function<void(size_t)>* fn = nullptr;
  std::mutex mu;
  std::condition_variable cv;

  void Pull() {
    for (;;) {
      const size_t i = next.fetch_add(1);
      if (i >= total) return;
      (*fn)(i);
      if (done.fetch_add(1) + 1 == total) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      }
    }
  }
};

}  // namespace

PredictionService::PredictionService(const Database* db, const SampleDb* samples,
                                     CostUnits units, ServiceOptions options)
    : pipeline_(db, samples, units, options.predictor), options_(options) {
  int n = options_.num_workers;
  if (n <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    n = static_cast<int>(std::min(4u, std::max(1u, hw)));
  }
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back(&PredictionService::WorkerLoop, this);
  }
}

PredictionService::~PredictionService() {
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    shutdown_ = true;
  }
  pool_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void PredictionService::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(pool_mu_);
      pool_cv_.wait(lock, [&] { return shutdown_ || !pool_queue_.empty(); });
      if (pool_queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(pool_queue_.back());
      pool_queue_.pop_back();
    }
    task();
  }
}

void PredictionService::ParallelFor(size_t n,
                                    const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || workers_.empty()) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto state = std::make_shared<ParallelState>();
  state->total = n;
  state->fn = &fn;  // outlives the call: we wait for completion below
  const size_t helpers = std::min(workers_.size(), n - 1);
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    for (size_t i = 0; i < helpers; ++i) {
      pool_queue_.push_back([state] { state->Pull(); });
    }
  }
  pool_cv_.notify_all();
  state->Pull();  // the calling thread shards too
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] { return state->done.load() == n; });
}

PredictionService::Artifacts PredictionService::CacheGet(uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = cache_index_.find(fingerprint);
  if (it == cache_index_.end()) return Artifacts{};
  lru_.splice(lru_.begin(), lru_, it->second);  // move to front
  return it->second->artifacts;
}

void PredictionService::CachePut(uint64_t fingerprint, Artifacts artifacts) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = cache_index_.find(fingerprint);
  if (it != cache_index_.end()) {
    // A concurrent miss on the same plan got here first; both artifacts
    // are identical (deterministic stages), keep the incumbent.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(CacheEntry{fingerprint, std::move(artifacts)});
  cache_index_[fingerprint] = lru_.begin();
  while (lru_.size() > options_.cache_capacity) {
    cache_index_.erase(lru_.back().fingerprint);
    lru_.pop_back();
  }
}

void PredictionService::InvalidateCache() {
  std::lock_guard<std::mutex> lock(cache_mu_);
  lru_.clear();
  cache_index_.clear();
}

StatusOr<PredictionService::Artifacts> PredictionService::GetArtifacts(
    const Plan& plan, uint64_t fingerprint) {
  const bool use_cache = options_.cache_capacity > 0;
  Artifacts artifacts;
  if (use_cache) {
    artifacts = CacheGet(fingerprint);
    if (artifacts.run != nullptr && artifacts.fit != nullptr) {
      cache_hits_.fetch_add(1);
      return artifacts;
    }
    cache_misses_.fetch_add(1);
  }
  if (artifacts.run == nullptr) {
    sample_runs_.fetch_add(1);
    SampleRunInput input;
    input.plan = &plan;
    UQP_ASSIGN_OR_RETURN(SampleRunOutput out,
                         pipeline_.sample_run_stage().Run(input));
    artifacts.run = std::make_shared<const SampleRunOutput>(std::move(out));
  }
  if (artifacts.fit == nullptr) {
    fit_runs_.fetch_add(1);
    CostFitInput input;
    input.plan = &plan;
    input.sample_run = artifacts.run.get();
    UQP_ASSIGN_OR_RETURN(CostFitOutput fit, pipeline_.cost_fit_stage().Run(input));
    artifacts.fit = std::make_shared<const CostFitOutput>(std::move(fit));
  }
  if (use_cache) CachePut(fingerprint, artifacts);
  return artifacts;
}

StatusOr<Prediction> PredictionService::Predict(const Plan& plan) {
  predictions_.fetch_add(1);
  UQP_ASSIGN_OR_RETURN(Artifacts artifacts,
                       GetArtifacts(plan, PlanFingerprint(plan)));
  return pipeline_.PredictFromArtifacts(*artifacts.run, *artifacts.fit);
}

std::vector<StatusOr<Prediction>> PredictionService::PredictBatch(
    const Plan* const* plans, size_t count) {
  batch_calls_.fetch_add(1);
  std::vector<StatusOr<Prediction>> results;
  results.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    results.emplace_back(Status::Internal("prediction not yet computed"));
  }
  if (count == 0) return results;
  predictions_.fetch_add(count);

  // Dedup: plans sharing a fingerprint share one sample run.
  std::vector<uint64_t> fingerprints(count);
  std::unordered_map<uint64_t, size_t> group_of;  // fingerprint -> group id
  std::vector<size_t> representative;             // group id -> plan index
  for (size_t i = 0; i < count; ++i) {
    fingerprints[i] = PlanFingerprint(*plans[i]);
    if (group_of.emplace(fingerprints[i], representative.size()).second) {
      representative.push_back(i);
    }
  }

  // Stages 1-2 (through the cache) once per distinct plan, sharded.
  std::vector<Artifacts> artifacts(representative.size());
  std::vector<Status> group_status(representative.size());
  const std::function<void(size_t)> stages12 = [&](size_t g) {
    const size_t rep = representative[g];
    auto artifacts_or = GetArtifacts(*plans[rep], fingerprints[rep]);
    if (artifacts_or.ok()) {
      artifacts[g] = std::move(artifacts_or).value();
    } else {
      group_status[g] = artifacts_or.status();
    }
  };
  ParallelFor(representative.size(), stages12);

  // Stage 3 per plan, sharded.
  const std::function<void(size_t)> stage3 = [&](size_t i) {
    const size_t g = group_of.at(fingerprints[i]);
    if (!group_status[g].ok()) {
      results[i] = group_status[g];
      return;
    }
    results[i] =
        pipeline_.PredictFromArtifacts(*artifacts[g].run, *artifacts[g].fit);
  };
  ParallelFor(count, stage3);
  return results;
}

std::vector<StatusOr<Prediction>> PredictionService::PredictBatch(
    const std::vector<const Plan*>& plans) {
  return PredictBatch(plans.data(), plans.size());
}

std::vector<StatusOr<Prediction>> PredictionService::PredictBatch(
    const std::vector<Plan>& plans) {
  std::vector<const Plan*> ptrs;
  ptrs.reserve(plans.size());
  for (const Plan& p : plans) ptrs.push_back(&p);
  return PredictBatch(ptrs.data(), ptrs.size());
}

VarianceBreakdown PredictionService::Recompute(const Prediction& prediction,
                                               PredictorVariant variant,
                                               CovarianceBoundKind bound) const {
  return pipeline_.Recompute(prediction, variant, bound);
}

ServiceStats PredictionService::stats() const {
  ServiceStats out;
  out.predictions = predictions_.load();
  out.batch_calls = batch_calls_.load();
  out.sample_runs = sample_runs_.load();
  out.fit_runs = fit_runs_.load();
  out.cache_hits = cache_hits_.load();
  out.cache_misses = cache_misses_.load();
  return out;
}

}  // namespace uqp
