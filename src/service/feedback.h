#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "cost/units.h"

namespace uqp {

/// Configuration of the online feedback loop (AQO-style
/// learn-until-converged: maintain per-plan-family relative-error windows,
/// stop tracking families whose predictions converged, recalibrate the
/// cost units when a family's windowed error diverges).
struct FeedbackOptions {
  /// Master switch. When false, ReportObserved is a no-op and the service
  /// keeps zero per-family state.
  bool enabled = false;
  /// Relative-error window per plan family (ring buffer). The convergence
  /// and drift tests both require a full window, so decisions are made on
  /// `window_size` observations, never one noisy report.
  size_t window_size = 8;
  /// A full window whose mean |relative error| is <= this converges the
  /// family: it stops paying the tracking overhead (no predicted-mean
  /// combination, no window update) except for the periodic probe below.
  double converge_threshold = 0.15;
  /// A full window whose mean |relative error| is >= this declares drift:
  /// the service re-derives the cost units (FeedbackOptions::recalibrate)
  /// and publishes a new calibration snapshot. Must exceed
  /// converge_threshold.
  double drift_threshold = 0.5;
  /// A converged family re-checks one observation every Nth report (0 =
  /// never). A probe whose |relative error| exceeds drift_threshold
  /// un-converges the family: the window restarts and the family is
  /// tracked again — this is how a converged family still notices a
  /// hardware change without paying per-report overhead.
  uint64_t probe_interval = 16;
  /// Minimum feedback reports between two drift-triggered
  /// recalibrations (counted across all families), so one machine-wide
  /// drift produces one recalibration, not one per drifting family.
  uint64_t cooldown_reports = 16;
  /// Re-derives the cost units when drift is detected — typically wired
  /// to Calibrator::Calibrate against the deployment's harness/machine.
  /// Null = detect-only (drift never publishes).
  std::function<CostUnits()> recalibrate;
};

/// The family's last successfully computed prediction, kept so a report
/// arriving after the plan was evicted from the artifact cache (or flushed
/// by InvalidateCache) still yields an error instead of being dropped.
/// Written by the service's error callback on every cache-backed error
/// computation; read as the fallback when the cache lookup misses.
struct PredictionStash {
  double mean_ms = 0.0;  ///< predicted mean of the family's last prediction
  uint64_t epoch = 0;    ///< calibration epoch that prediction combined under
  bool valid = false;
};

/// Introspection snapshot of one plan family's feedback state (tests, the
/// drift_storm bench, monitoring).
struct FamilyFeedback {
  uint64_t fingerprint = 0;
  uint64_t reports = 0;         ///< observations reported for this family
  uint64_t window_updates = 0;  ///< times the error window actually changed
  bool converged = false;
  /// Window contents, oldest first (shorter than window_size while
  /// filling; frozen while converged).
  std::vector<double> window;
  /// Mean |relative error| over the current window (0 when empty).
  double windowed_mean_abs_error = 0.0;
  /// Last-prediction stash (see PredictionStash).
  PredictionStash stash;
  /// Circuit-breaker state for this family, merged in by the service's
  /// FeedbackSnapshot() when a breaker registry is configured (the
  /// FeedbackRegistry itself never touches breakers). "closed" with zero
  /// counters when no breaker exists or the family never failed.
  const char* breaker_state = "closed";
  int breaker_consecutive_failures = 0;
  uint64_t breaker_opens = 0;
  uint64_t breaker_shed = 0;
};

/// Sharded, thread-safe per-plan-family error tracking with deterministic
/// convergence/drift decisions. Pure bookkeeping: the registry never
/// computes predictions or publishes snapshots itself — the service wires
/// those through Observe's lazy error callback and the Action it returns.
///
/// Determinism contract: for a fixed sequence of (fingerprint, error)
/// observations, the full state trajectory — window contents, convergence
/// flips, drift decisions — is bit-identical regardless of how many
/// threads the *predictions* used (extended parallel_parity_test).
class FeedbackRegistry {
 public:
  enum class Action {
    kDisabled,         ///< feedback off; nothing recorded
    kDropped,          ///< error not computable (plan not cached AND no
                       ///< last-prediction stash to fall back on); no update
    kTracked,          ///< error recorded, no decision yet
    kConverged,        ///< this report completed a converging window
    kSkippedConverged, ///< family converged: no combine, no window update
    kProbed,           ///< converged-family probe passed; still converged
    kResumed,          ///< probe failed: family un-converged, tracking again
    kDrift,            ///< windowed error diverged; caller should recalibrate
  };

  FeedbackRegistry(FeedbackOptions options, size_t shard_count);

  /// Computes the signed relative error of one observation, lazily. The
  /// callback receives the family's last-prediction stash: on a cache hit
  /// it should refresh the stash with the prediction it compared against;
  /// on a cache miss (evicted/flushed plan) it may fall back to the
  /// stashed mean so the report still lands instead of dropping. Returns
  /// false only when no prediction exists anywhere to compare against.
  using ErrorFn = std::function<bool(PredictionStash* stash, double* error)>;

  /// Records one observation for the family. `error_fn` is invoked only
  /// when the family is actually tracked (or probed), which is exactly the
  /// overhead a converged family stops paying; it runs under the family
  /// shard's mutex, so stash reads/updates are serialized per family.
  /// Returns what happened.
  Action Observe(uint64_t fingerprint, const ErrorFn& error_fn);

  /// Serializes drift handling: returns true for exactly one caller per
  /// cooldown window (checked against total reports). The winner should
  /// recalibrate and publish; losers skip.
  bool ClaimDrift();

  /// Called after a calibration snapshot is published: tracked families'
  /// windows reset (their errors were measured against the old epoch's
  /// predictions), converged families stay converged — their predictions
  /// follow the new units automatically through lazy re-combination.
  void OnPublish();

  const FeedbackOptions& options() const { return options_; }
  bool enabled() const {
    return options_.enabled && options_.window_size > 0;
  }

  uint64_t total_reports() const {
    return total_reports_.load(std::memory_order_relaxed);
  }
  size_t family_count() const;
  size_t converged_count() const;

  /// Full per-family state, sorted by fingerprint (deterministic order).
  std::vector<FamilyFeedback> Snapshot() const;

  /// The family's current windowed mean |relative error|, if it has one.
  /// Returns false (leaving *error untouched) when the registry is
  /// disabled or the family has an empty window. The degraded-mode
  /// predictor uses this to inflate its variance from the family's
  /// observed error history.
  bool WindowedError(uint64_t fingerprint, double* error) const;

 private:
  struct Family {
    std::vector<double> window;  ///< ring buffer of signed relative errors
    size_t next = 0;
    size_t filled = 0;
    uint64_t reports = 0;
    uint64_t window_updates = 0;
    bool converged = false;
    /// Last successfully computed prediction (see PredictionStash): the
    /// fallback comparison point for evicted-but-reported plans.
    PredictionStash stash;
  };
  struct alignas(64) Shard {
    mutable Mutex mu;
    std::unordered_map<uint64_t, Family> families UQP_GUARDED_BY(mu);
  };

  Shard& ShardFor(uint64_t fingerprint) const {
    return shards_[static_cast<size_t>(fingerprint) & mask_];
  }
  void Push(Family* family, double error) const;
  double WindowMeanAbs(const Family& family) const;

  FeedbackOptions options_;
  std::unique_ptr<Shard[]> shards_;
  size_t shard_count_ = 0;
  size_t mask_ = 0;

  std::atomic<uint64_t> total_reports_{0};
  /// Guards the drift cooldown bookkeeping (claims + publish watermark).
  mutable Mutex drift_mu_;
  bool any_claim_ UQP_GUARDED_BY(drift_mu_) = false;
  uint64_t reports_at_last_claim_ UQP_GUARDED_BY(drift_mu_) = 0;
};

}  // namespace uqp
