#include "service/fault.h"

#include <algorithm>
#include <cstring>

#include "engine/expr.h"  // AppendKeyU64: canonical fixed-width serialization

namespace uqp {

namespace {

/// splitmix64 finalizer: a strong 64-bit mix with no global state. Every
/// schedule draw below is Mix over (seed, fingerprint, attempt, salt) — a
/// pure function, so the whole fault schedule is pre-drawn by construction.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Uniform draw in [0, 1) for one (seed, fingerprint, attempt, salt) cell.
double UnitDraw(uint64_t seed, uint64_t fingerprint, uint64_t attempt,
                uint64_t salt) {
  const uint64_t h = Mix(seed ^ Mix(fingerprint ^ Mix(attempt ^ Mix(salt))));
  // Top 53 bits -> [0, 1) with full double resolution.
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

void AppendBitsDouble(std::string* out, double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  AppendKeyU64(out, bits);
}

void AppendDecision(std::string* out, const FaultDecision& d) {
  AppendKeyU64(out, static_cast<uint64_t>(d.status.code()));
  AppendBitsDouble(out, d.latency_ms);
}

}  // namespace

ScheduledFaultInjector::ScheduledFaultInjector(ScheduledFaultOptions options)
    : options_(std::move(options)) {}

const FaultRule& ScheduledFaultInjector::RuleFor(uint64_t fingerprint) const {
  const auto it = options_.rules.find(fingerprint);
  return it != options_.rules.end() ? it->second : options_.default_rule;
}

FaultDecision ScheduledFaultInjector::ScheduleAt(uint64_t fingerprint,
                                                 uint64_t attempt) const {
  const FaultRule& rule = RuleFor(fingerprint);
  FaultDecision d;
  const bool fail =
      attempt < rule.fail_attempts ||
      (rule.fail_prob > 0.0 &&
       UnitDraw(options_.seed, fingerprint, attempt, /*salt=*/1) <
           rule.fail_prob);
  if (fail) {
    d.status = Status::Unavailable("injected stage fault");
  }
  if (rule.latency_ms > 0.0 &&
      (rule.latency_prob >= 1.0 ||
       (rule.latency_prob > 0.0 &&
        UnitDraw(options_.seed, fingerprint, attempt, /*salt=*/2) <
            rule.latency_prob))) {
    d.latency_ms = rule.latency_ms;
  }
  return d;
}

FaultDecision ScheduledFaultInjector::OnSampleRun(uint64_t fingerprint) {
  uint64_t attempt = 0;
  {
    MutexLock lock(&mu_);
    attempt = attempts_[fingerprint]++;
  }
  const FaultDecision d = ScheduleAt(fingerprint, attempt);
  if (!d.status.ok()) faults_fired_.fetch_add(1, std::memory_order_relaxed);
  if (d.latency_ms > 0.0) {
    delays_fired_.fetch_add(1, std::memory_order_relaxed);
  }
  return d;
}

bool ScheduledFaultInjector::InjectSpuriousWakeup() {
  if (options_.spurious_every == 0) return false;
  const uint64_t n =
      spurious_probes_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (n % options_.spurious_every != 0) return false;
  spurious_fired_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

uint64_t ScheduledFaultInjector::AttemptCount(uint64_t fingerprint) const {
  MutexLock lock(&mu_);
  const auto it = attempts_.find(fingerprint);
  return it != attempts_.end() ? it->second : 0;
}

std::string ScheduledFaultInjector::ScheduleBytes(
    const std::vector<uint64_t>& fingerprints, uint64_t attempts) const {
  std::string bytes;
  AppendKeyU64(&bytes, fingerprints.size());
  AppendKeyU64(&bytes, attempts);
  for (uint64_t fp : fingerprints) {
    AppendKeyU64(&bytes, fp);
    for (uint64_t a = 0; a < attempts; ++a) {
      AppendDecision(&bytes, ScheduleAt(fp, a));
    }
  }
  return bytes;
}

std::string ScheduledFaultInjector::FiredLogBytes() const {
  // Canonicalize: the attempt table is unordered, so collect and sort the
  // keys before serializing.
  std::vector<std::pair<uint64_t, uint64_t>> fired;
  {
    MutexLock lock(&mu_);
    fired.reserve(attempts_.size());
    for (auto it = attempts_.begin();  // det-lint: sorted-output
         it != attempts_.end(); ++it) {
      fired.emplace_back(it->first, it->second);
    }
  }
  std::sort(fired.begin(), fired.end());  // det-lint: sorted-output
  std::string bytes;
  AppendKeyU64(&bytes, fired.size());
  for (const auto& [fp, n] : fired) {
    AppendKeyU64(&bytes, fp);
    AppendKeyU64(&bytes, n);
    for (uint64_t a = 0; a < n; ++a) {
      AppendDecision(&bytes, ScheduleAt(fp, a));
    }
  }
  return bytes;
}

const char* ToString(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half_open";
  }
  return "?";
}

BreakerDecision CircuitBreakerRegistry::Admit(uint64_t fingerprint) {
  BreakerDecision decision;
  if (!enabled()) return decision;
  Shard& shard = ShardFor(fingerprint);
  MutexLock lock(&shard.mu);
  const auto it = shard.families.find(fingerprint);
  if (it == shard.families.end()) return decision;  // never failed: admit
  FamilyState& f = it->second;
  switch (f.state) {
    case BreakerState::kClosed:
      return decision;
    case BreakerState::kOpen:
      ++f.sheds_since_open;
      if (f.sheds_since_open >= options_.cooldown_requests &&
          !f.probe_inflight) {
        f.state = BreakerState::kHalfOpen;
        f.probe_inflight = true;
        total_probes_.fetch_add(1, std::memory_order_relaxed);
        decision.probe = true;
        return decision;
      }
      ++f.shed;
      total_shed_.fetch_add(1, std::memory_order_relaxed);
      decision.shed = true;
      return decision;
    case BreakerState::kHalfOpen:
      // A probe is in flight (half-open always has one); everyone else
      // keeps shedding until its verdict lands.
      ++f.shed;
      total_shed_.fetch_add(1, std::memory_order_relaxed);
      decision.shed = true;
      return decision;
  }
  return decision;
}

bool CircuitBreakerRegistry::OnStageResult(uint64_t fingerprint, bool ok) {
  if (!enabled()) return false;
  Shard& shard = ShardFor(fingerprint);
  MutexLock lock(&shard.mu);
  FamilyState& f = shard.families[fingerprint];
  if (ok) {
    f.state = BreakerState::kClosed;
    f.consecutive_failures = 0;
    f.sheds_since_open = 0;
    f.probe_inflight = false;
    return false;
  }
  ++f.consecutive_failures;
  const bool was_half_open = f.state == BreakerState::kHalfOpen;
  f.probe_inflight = false;
  if (was_half_open ||
      (f.state == BreakerState::kClosed &&
       f.consecutive_failures >= options_.failure_threshold)) {
    f.state = BreakerState::kOpen;
    f.sheds_since_open = 0;
    ++f.opens;
    total_opens_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

std::vector<BreakerSnapshot> CircuitBreakerRegistry::Snapshot() const {
  std::vector<BreakerSnapshot> rows;
  for (const Shard& shard : shards_) {
    MutexLock lock(&shard.mu);
    for (auto it = shard.families.begin();  // det-lint: sorted-output
         it != shard.families.end(); ++it) {
      BreakerSnapshot row;
      row.fingerprint = it->first;
      row.state = it->second.state;
      row.consecutive_failures = it->second.consecutive_failures;
      row.opens = it->second.opens;
      row.shed = it->second.shed;
      rows.push_back(row);
    }
  }
  std::sort(rows.begin(), rows.end(),  // det-lint: sorted-output
            [](const BreakerSnapshot& a, const BreakerSnapshot& b) {
              return a.fingerprint < b.fingerprint;
            });
  return rows;
}

BreakerSnapshot CircuitBreakerRegistry::Family(uint64_t fingerprint) const {
  BreakerSnapshot row;
  row.fingerprint = fingerprint;
  const Shard& shard = ShardFor(fingerprint);
  MutexLock lock(&shard.mu);
  const auto it = shard.families.find(fingerprint);
  if (it == shard.families.end()) return row;
  row.state = it->second.state;
  row.consecutive_failures = it->second.consecutive_failures;
  row.opens = it->second.opens;
  row.shed = it->second.shed;
  return row;
}

}  // namespace uqp
