#include "core/pipeline.h"

#include <cmath>
#include <cstring>
#include <utility>

#include "engine/expr.h"
#include "math/gaussian.h"

namespace uqp {

namespace {

void AppendBytesDouble(std::string* out, double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  AppendKeyU64(out, bits);
}

void AppendBytesCounters(std::string* out, const OpStats& st) {
  AppendKeyU64(out, static_cast<uint64_t>(st.id));
  AppendKeyU64(out, static_cast<uint64_t>(st.type));
  AppendBytesDouble(out, st.actual.ns);
  AppendBytesDouble(out, st.actual.nr);
  AppendBytesDouble(out, st.actual.nt);
  AppendBytesDouble(out, st.actual.ni);
  AppendBytesDouble(out, st.actual.no);
  AppendBytesDouble(out, st.left_rows);
  AppendBytesDouble(out, st.right_rows);
  AppendBytesDouble(out, st.out_rows);
  AppendBytesDouble(out, st.leaf_row_product);
}

}  // namespace

std::string SampleRunOutputBytes(const SampleRunOutput& out) {
  const PlanEstimates& e = out.estimates;
  std::string bytes;
  AppendKeyU64(&bytes, e.ops.size());
  for (const SelectivityEstimate& est : e.ops) {
    AppendBytesDouble(&bytes, est.rho);
    AppendBytesDouble(&bytes, est.variance);
    AppendKeyU64(&bytes, est.var_components.size());
    for (double v : est.var_components) AppendBytesDouble(&bytes, v);
    AppendKeyU64(&bytes, static_cast<uint64_t>(est.leaf_begin));
    AppendKeyU64(&bytes, static_cast<uint64_t>(est.leaf_end));
    AppendKeyU64(&bytes, est.from_optimizer ? 1 : 0);
  }
  AppendKeyU64(&bytes, e.variable_of_node.size());
  for (int v : e.variable_of_node) {
    AppendKeyU64(&bytes, static_cast<uint64_t>(v));
  }
  AppendKeyU64(&bytes, e.leaf_sample_rows.size());
  for (double v : e.leaf_sample_rows) AppendBytesDouble(&bytes, v);
  AppendKeyU64(&bytes, e.sample_ops.size());
  for (const OpStats& st : e.sample_ops) AppendBytesCounters(&bytes, st);
  return bytes;
}

const PlanEstimates& Prediction::estimates() const {
  return sample_run->estimates;
}

const std::vector<OperatorCostFunctions>& Prediction::cost_functions() const {
  return cost_fit->cost_functions;
}

double Prediction::ProbBelow(double t) const {
  return NormalCdf(t, breakdown.mean, breakdown.variance);
}

void Prediction::ConfidenceInterval(double level, double* lo, double* hi) const {
  const double alpha = NormalQuantile(0.5 + 0.5 * level);
  const double sd = stddev();
  *lo = breakdown.mean - alpha * sd;
  *hi = breakdown.mean + alpha * sd;
}

StatusOr<SampleRunOutput> SampleRunStage::Run(const SampleRunInput& input) const {
  if (input.plan == nullptr) return Status::InvalidArgument("null plan");
  SampleRunOutput out;
  UQP_ASSIGN_OR_RETURN(out.estimates,
                       estimator_.Estimate(*input.plan, input.cancelled));
  return out;
}

StatusOr<CostFitOutput> CostFitStage::Run(const CostFitInput& input) const {
  if (input.plan == nullptr || input.sample_run == nullptr) {
    return Status::InvalidArgument("cost-fit stage needs a plan and a sample run");
  }
  CostFitOutput out;
  UQP_ASSIGN_OR_RETURN(
      out.cost_functions,
      fitter_.FitPlan(*input.plan, input.sample_run->estimates));
  return out;
}

VarianceCombineOutput VarianceCombineStage::Run(
    const VarianceCombineInput& input) const {
  const VarianceEngine engine(&input.sample_run->estimates,
                              &input.cost_fit->cost_functions, input.units,
                              input.variant, input.bound);
  VarianceCombineOutput out;
  out.breakdown = engine.Compute();
  return out;
}

StatusOr<Prediction> PredictionPipeline::Predict(const Plan& plan) const {
  SampleRunInput in;
  in.plan = &plan;
  UQP_ASSIGN_OR_RETURN(SampleRunOutput sample_run, sample_run_.Run(in));
  return PredictFromSampleRun(
      plan, std::make_shared<const SampleRunOutput>(std::move(sample_run)));
}

StatusOr<Prediction> PredictionPipeline::PredictFromSampleRun(
    const Plan& plan, SampleRunPtr sample_run) const {
  CostFitInput fit_in;
  fit_in.plan = &plan;
  fit_in.sample_run = sample_run.get();
  UQP_ASSIGN_OR_RETURN(CostFitOutput cost_fit, cost_fit_.Run(fit_in));
  return PredictFromArtifacts(
      std::move(sample_run),
      std::make_shared<const CostFitOutput>(std::move(cost_fit)));
}

Prediction PredictionPipeline::PredictFromArtifacts(SampleRunPtr sample_run,
                                                    CostFitPtr cost_fit) const {
  // Resolve the current calibration snapshot exactly once: the whole
  // combination — and the epoch the prediction records — comes from this
  // one immutable object, so a concurrent SetCalibration can never mix
  // units from two epochs into one prediction.
  const CalibrationPtr snapshot = calibration();
  VarianceCombineInput var_in;
  var_in.sample_run = sample_run.get();
  var_in.cost_fit = cost_fit.get();
  var_in.units = &snapshot->units;
  var_in.variant = options_.variant;
  var_in.bound = options_.bound;
  const VarianceCombineOutput combined = variance_combine_.Run(var_in);
  combine_count_.fetch_add(1, std::memory_order_relaxed);

  Prediction out;
  out.breakdown = combined.breakdown;
  out.sample_run = std::move(sample_run);
  out.cost_fit = std::move(cost_fit);
  out.calibration = snapshot;
  return out;
}

Prediction PredictionPipeline::PredictFromArtifacts(
    const StageArtifacts& artifacts) const {
  return PredictFromArtifacts(artifacts.run, artifacts.fit);
}

Prediction PredictionPipeline::PredictFromArtifacts(
    const StageArtifacts& artifacts, const CalibrationPtr& snapshot) const {
  VarianceCombineInput var_in;
  var_in.sample_run = artifacts.run.get();
  var_in.cost_fit = artifacts.fit.get();
  var_in.units = &snapshot->units;
  var_in.variant = options_.variant;
  var_in.bound = options_.bound;
  const VarianceCombineOutput combined = variance_combine_.Run(var_in);
  combine_count_.fetch_add(1, std::memory_order_relaxed);

  Prediction out;
  out.breakdown = combined.breakdown;
  out.sample_run = artifacts.run;
  out.cost_fit = artifacts.fit;
  out.calibration = snapshot;
  return out;
}

VarianceBreakdown PredictionPipeline::Recompute(const Prediction& prediction,
                                                PredictorVariant variant,
                                                CovarianceBoundKind bound) const {
  // Recompute under the snapshot the prediction was made with: the
  // ablation/variant re-derivation of an existing prediction must not
  // silently change epoch because someone published in between.
  const CalibrationPtr snapshot =
      prediction.calibration != nullptr ? prediction.calibration
                                        : calibration();
  const VarianceEngine engine(&prediction.estimates(),
                              &prediction.cost_functions(), &snapshot->units,
                              variant, bound);
  return engine.Compute();
}

}  // namespace uqp
