#include "core/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace uqp {

double QueryOutcome::error() const {
  return std::fabs(predicted_mean - actual_time);
}

double QueryOutcome::normalized_error() const {
  if (predicted_stddev <= 0.0) {
    return error() == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  }
  return error() / predicted_stddev;
}

EvaluationSummary Evaluate(const std::vector<QueryOutcome>& outcomes) {
  EvaluationSummary out;
  out.num_queries = static_cast<int>(outcomes.size());
  std::vector<double> normalized;
  out.sigmas.reserve(outcomes.size());
  out.errors.reserve(outcomes.size());
  normalized.reserve(outcomes.size());
  for (const QueryOutcome& q : outcomes) {
    out.sigmas.push_back(q.predicted_stddev);
    out.errors.push_back(q.error());
    normalized.push_back(q.normalized_error());
  }
  out.spearman = SpearmanCorrelation(out.sigmas, out.errors);
  out.pearson = PearsonCorrelation(out.sigmas, out.errors);
  out.proximity = ComputeProximity(normalized);
  out.dn = out.proximity.dn;
  return out;
}

OutlierProbe ProbeOutlierRobustness(const std::vector<QueryOutcome>& outcomes) {
  OutlierProbe probe;
  const EvaluationSummary all = Evaluate(outcomes);
  probe.spearman_all = all.spearman;
  probe.pearson_all = all.pearson;
  if (outcomes.size() < 3) {
    probe.spearman_trimmed = all.spearman;
    probe.pearson_trimmed = all.pearson;
    return probe;
  }
  // Remove the rightmost scatter point (largest predicted σ).
  size_t worst = 0;
  for (size_t i = 1; i < outcomes.size(); ++i) {
    if (outcomes[i].predicted_stddev > outcomes[worst].predicted_stddev) {
      worst = i;
    }
  }
  std::vector<QueryOutcome> trimmed;
  trimmed.reserve(outcomes.size() - 1);
  for (size_t i = 0; i < outcomes.size(); ++i) {
    if (i != worst) trimmed.push_back(outcomes[i]);
  }
  const EvaluationSummary rest = Evaluate(trimmed);
  probe.spearman_trimmed = rest.spearman;
  probe.pearson_trimmed = rest.pearson;
  return probe;
}

}  // namespace uqp
