#include "core/explain.h"

#include <cmath>
#include <cstdio>

#include "common/logging.h"
#include "math/gaussian.h"

namespace uqp {

std::vector<OperatorExplain> ExplainOperators(const Plan& plan,
                                              const Prediction& prediction,
                                              const CostUnits& units) {
  std::vector<OperatorExplain> out;
  const PlanEstimates& est = prediction.estimates();
  auto gauss = [&est](int var) {
    return var >= 0 ? est.ops[static_cast<size_t>(var)].AsGaussian()
                    : Gaussian(1.0, 0.0);
  };

  double total = 0.0;
  for (const PlanNode* node : plan.NodesPreorder()) {
    const OperatorCostFunctions& ocf =
        prediction.cost_functions()[static_cast<size_t>(node->id)];
    OperatorExplain op;
    op.node_id = node->id;
    op.op_type = node->type;
    op.label = OpTypeName(node->type);
    if (IsScan(node->type)) op.label += "(" + node->table_name + ")";
    const SelectivityEstimate& sel = est.ops[static_cast<size_t>(node->id)];
    op.selectivity = sel.rho;
    op.selectivity_sd = std::sqrt(std::max(0.0, sel.variance));
    op.from_optimizer = sel.from_optimizer;

    // t_k = Σ_u f_u(X) * c_u with independent c's: mean and a marginal
    // variance (within-operator selectivity terms treated jointly via the
    // fitted distribution; cross-unit correlation through shared X's is
    // captured at the query level, not re-attributed here).
    double mean = 0.0, var = 0.0;
    for (int u = 0; u < kNumCostUnits; ++u) {
      const Gaussian f = ocf.funcs[u].Distribution(
          gauss(ocf.var_own), gauss(ocf.var_left), gauss(ocf.var_right));
      const Gaussian c = units.Get(u);
      mean += f.mean * c.mean;
      var += f.mean * f.mean * c.variance + c.mean * c.mean * f.variance +
             c.variance * f.variance;
    }
    op.expected_ms = mean;
    op.stddev_ms = std::sqrt(std::max(0.0, var));
    total += mean;
    out.push_back(std::move(op));
  }
  if (total > 0.0) {
    for (OperatorExplain& op : out) op.share = op.expected_ms / total;
  }
  return out;
}

std::string RenderExplain(const Plan& plan, const Prediction& prediction,
                          const CostUnits& units) {
  const std::vector<OperatorExplain> ops =
      ExplainOperators(plan, prediction, units);
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "predicted: %.1f ms, sd %.1f ms  (cost units %.0f%%, "
                "selectivities %.0f%%, covariance bounds %.0f%%)\n",
                prediction.mean(), prediction.stddev(),
                100.0 * prediction.breakdown.var_cost_units /
                    std::max(1e-12, prediction.breakdown.variance),
                100.0 * prediction.breakdown.var_selectivity /
                    std::max(1e-12, prediction.breakdown.variance),
                100.0 * prediction.breakdown.var_cov_bounds /
                    std::max(1e-12, prediction.breakdown.variance));
  out += buf;
  std::snprintf(buf, sizeof(buf), "%-26s %10s %8s %10s %14s\n", "operator",
                "E[t] ms", "share", "sd ms", "selectivity");
  out += buf;
  for (const OperatorExplain& op : ops) {
    std::snprintf(buf, sizeof(buf), "%-26s %10.2f %7.1f%% %10.2f %9.5f±%.5f%s\n",
                  op.label.c_str(), op.expected_ms, 100.0 * op.share,
                  op.stddev_ms, op.selectivity, op.selectivity_sd,
                  op.from_optimizer ? " (optimizer)" : "");
    out += buf;
  }
  return out;
}

}  // namespace uqp
