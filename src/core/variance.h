#pragma once

#include <vector>

#include "cost/units.h"
#include "costfunc/fitter.h"
#include "sampling/estimator.h"

namespace uqp {

/// Which predictor variant to run (paper §6.3.3).
enum class PredictorVariant {
  kAll,     ///< V1: the complete framework
  kNoVarC,  ///< V2: ignore cost-unit uncertainty (Var[c] = 0)
  kNoVarX,  ///< V3: ignore selectivity uncertainty (Var[X] = 0)
  kNoCov,   ///< V4: ignore covariances between selectivity estimates
};

const char* PredictorVariantName(PredictorVariant v);

/// Which covariance upper bound Algorithm 3 adds for the pairs it cannot
/// compute directly (§5.3.2 / A.8 ablation).
enum class CovarianceBoundKind {
  kBest,  ///< min of all applicable bounds (default)
  kB1,    ///< sqrt(S²_ρ(m,n) S²_ρ'(m,n))
  kB2,    ///< sqrt(Var[ρ] Var[ρ'])
  kB3,    ///< f(n,m) g(ρ) g(ρ')
};

/// The predicted running-time distribution and its decomposition.
struct VarianceBreakdown {
  double mean = 0.0;      ///< E[t_q] (ms) — the point prediction
  double variance = 0.0;  ///< Var[t_q] (ms²)

  /// Contribution Σ_c E[G_c]² Var[c] (uncertainty in the cost units).
  double var_cost_units = 0.0;
  /// Contribution of selectivity uncertainty through exactly computed
  /// (co)variances: Σ_c (μ_c² + σ_c²) Var[G_c] + cross-unit terms.
  double var_selectivity = 0.0;
  /// Portion added through covariance *upper bounds* (Algorithm 3's
  /// CovOpsUb) rather than direct computation.
  double var_cov_bounds = 0.0;

  /// E[G_c]: expected total work per cost unit (counter units).
  double expected_work[kNumCostUnits] = {0, 0, 0, 0, 0};

  Gaussian AsGaussian() const { return Gaussian(mean, variance); }
};

/// Computes N(E[t_q], Var[t_q]) from the fitted cost functions, the
/// selectivity distributions and the calibrated cost units (paper §5).
///
/// Internally each G_c = Σ_op f_{op,c} is expanded into a polynomial over
/// the selectivity variables with monomials {1, X, X², X_u X_v}. Monomial
/// covariances are computed exactly from normal moments whenever every
/// cross pair of distinct variables is independent (disjoint leaf spans or
/// optimizer-derived estimates — Lemmas 1-3), and upper-bounded otherwise
/// (nested subtrees sharing sample relations — Theorems 7-10).
class VarianceEngine {
 public:
  VarianceEngine(const PlanEstimates* estimates,
                 const std::vector<OperatorCostFunctions>* cost_functions,
                 const CostUnits* units,
                 PredictorVariant variant = PredictorVariant::kAll,
                 CovarianceBoundKind bound = CovarianceBoundKind::kBest);

  VarianceBreakdown Compute() const;

 private:
  struct Monomial {
    // X_u^pu * X_v^pv with u < v; u = -1 means the constant monomial,
    // v = -1 means a single-variable monomial.
    int u = -1;
    int pu = 0;
    int v = -1;
    int pv = 0;
  };
  struct Term {
    double coef = 0.0;
    Monomial m;
  };

  enum class VarRelation { kSame, kIndependent, kCorrelated };

  VarRelation Relation(int var_a, int var_b) const;
  const SelectivityEstimate& Est(int var) const;
  Gaussian VarGaussian(int var) const;

  void AddTerm(std::vector<Term>* terms, double coef, int u, int pu, int v,
               int pv) const;
  std::vector<Term> ExpandUnit(int cost_unit) const;

  double MonoMean(const Monomial& m) const;
  double MonoVar(const Monomial& m) const;
  /// Covariance of two monomials; *bounded set true when an upper bound
  /// (not an exact value) was used.
  double MonoCov(const Monomial& a, const Monomial& b, bool* bounded) const;

  double PairCovarianceBound(int var_desc, int var_anc, int pow_desc,
                             int pow_anc) const;

  const PlanEstimates* estimates_;
  const std::vector<OperatorCostFunctions>* cost_functions_;
  const CostUnits* units_;
  PredictorVariant variant_;
  CovarianceBoundKind bound_;
};

}  // namespace uqp
