#pragma once

#include <string>
#include <vector>

#include "core/predictor.h"
#include "engine/plan.h"

namespace uqp {

/// Per-operator view of a prediction.
struct OperatorExplain {
  int node_id = -1;
  OpType op_type = OpType::kSeqScan;
  std::string label;          ///< e.g. "IndexScan(lineitem)"
  double expected_ms = 0.0;   ///< E[t_k] under the fitted cost functions
  double stddev_ms = 0.0;     ///< marginal sd of t_k (cross-operator
                              ///< covariances not attributed)
  double share = 0.0;         ///< expected_ms / Σ expected_ms
  double selectivity = 0.0;   ///< estimated ρ of the operator
  double selectivity_sd = 0.0;
  bool from_optimizer = false;
};

/// EXPLAIN-style decomposition of a prediction: where the expected time
/// and the uncertainty come from, operator by operator. The marginal
/// per-operator variances do not sum to Var[t_q] — shared cost units and
/// shared selectivity estimates correlate the operators (that is the whole
/// point of §5.3) — so the report also prints the exact total and its
/// three-way split.
std::vector<OperatorExplain> ExplainOperators(const Plan& plan,
                                              const Prediction& prediction,
                                              const CostUnits& units);

/// Rendered report (fixed-width text), e.g. for CLI tools and logging.
std::string RenderExplain(const Plan& plan, const Prediction& prediction,
                          const CostUnits& units);

}  // namespace uqp
