#include "core/variance.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "math/gaussian.h"

namespace uqp {

const char* PredictorVariantName(PredictorVariant v) {
  switch (v) {
    case PredictorVariant::kAll:
      return "All";
    case PredictorVariant::kNoVarC:
      return "NoVar[c]";
    case PredictorVariant::kNoVarX:
      return "NoVar[X]";
    case PredictorVariant::kNoCov:
      return "NoCov";
  }
  return "?";
}

VarianceEngine::VarianceEngine(
    const PlanEstimates* estimates,
    const std::vector<OperatorCostFunctions>* cost_functions,
    const CostUnits* units, PredictorVariant variant, CovarianceBoundKind bound)
    : estimates_(estimates),
      cost_functions_(cost_functions),
      units_(units),
      variant_(variant),
      bound_(bound) {}

const SelectivityEstimate& VarianceEngine::Est(int var) const {
  return estimates_->ops[static_cast<size_t>(var)];
}

Gaussian VarianceEngine::VarGaussian(int var) const {
  Gaussian g = Est(var).AsGaussian();
  if (variant_ == PredictorVariant::kNoVarX) g.variance = 0.0;
  return g;
}

VarianceEngine::VarRelation VarianceEngine::Relation(int var_a, int var_b) const {
  if (var_a == var_b) return VarRelation::kSame;
  const SelectivityEstimate& a = Est(var_a);
  const SelectivityEstimate& b = Est(var_b);
  // Optimizer-derived estimates carry no sampling randomness: independent.
  if (a.from_optimizer || b.from_optimizer) return VarRelation::kIndependent;
  const bool a_in_b = a.leaf_begin >= b.leaf_begin && a.leaf_end <= b.leaf_end;
  const bool b_in_a = b.leaf_begin >= a.leaf_begin && b.leaf_end <= a.leaf_end;
  if (a_in_b || b_in_a) return VarRelation::kCorrelated;  // shared samples
  // Distinct sample copies are bound per leaf occurrence, so estimates
  // over disjoint leaf spans are independent (Lemma 1 / §5.1.2).
  return VarRelation::kIndependent;
}

void VarianceEngine::AddTerm(std::vector<Term>* terms, double coef, int u,
                             int pu, int v, int pv) const {
  if (coef == 0.0) return;
  Term t;
  t.coef = coef;
  if (u >= 0 && v >= 0 && u == v) {
    // Same variable on both sides (possible when a pass-through child
    // collapses Xl onto X): merge powers.
    t.m = Monomial{u, pu + pv, -1, 0};
  } else if (u >= 0 && v >= 0) {
    if (u < v) {
      t.m = Monomial{u, pu, v, pv};
    } else {
      t.m = Monomial{v, pv, u, pu};
    }
  } else if (u >= 0) {
    t.m = Monomial{u, pu, -1, 0};
  } else if (v >= 0) {
    t.m = Monomial{v, pv, -1, 0};
  } else {
    t.m = Monomial{};
  }
  terms->push_back(t);
}

std::vector<VarianceEngine::Term> VarianceEngine::ExpandUnit(int cost_unit) const {
  std::vector<Term> terms;
  for (const OperatorCostFunctions& ocf : *cost_functions_) {
    const FittedCostFunction& f = ocf.funcs[cost_unit];
    const int x = ocf.var_own;
    const int l = ocf.var_left;
    const int r = ocf.var_right;
    switch (f.type) {
      case CostFuncType::kConstant:
        AddTerm(&terms, f.b[0], -1, 0, -1, 0);
        break;
      case CostFuncType::kLinearOutput:
        AddTerm(&terms, f.b[0], x, 1, -1, 0);
        AddTerm(&terms, f.b[1], -1, 0, -1, 0);
        break;
      case CostFuncType::kLinearLeft:
        AddTerm(&terms, f.b[0], l, 1, -1, 0);
        AddTerm(&terms, f.b[1], -1, 0, -1, 0);
        break;
      case CostFuncType::kQuadraticLeft:
        AddTerm(&terms, f.b[0], l, 2, -1, 0);
        AddTerm(&terms, f.b[1], l, 1, -1, 0);
        AddTerm(&terms, f.b[2], -1, 0, -1, 0);
        break;
      case CostFuncType::kLinearBoth:
        AddTerm(&terms, f.b[0], l, 1, -1, 0);
        AddTerm(&terms, f.b[1], r, 1, -1, 0);
        AddTerm(&terms, f.b[2], -1, 0, -1, 0);
        break;
      case CostFuncType::kBilinear:
        AddTerm(&terms, f.b[0], l, 1, r, 1);
        AddTerm(&terms, f.b[1], l, 1, -1, 0);
        AddTerm(&terms, f.b[2], r, 1, -1, 0);
        AddTerm(&terms, f.b[3], -1, 0, -1, 0);
        break;
    }
  }
  return terms;
}

double VarianceEngine::MonoMean(const Monomial& m) const {
  double acc = 1.0;
  if (m.u >= 0) {
    const Gaussian g = VarGaussian(m.u);
    acc *= NormalMoment(g.mean, g.variance, m.pu);
  }
  if (m.v >= 0) {
    const Gaussian g = VarGaussian(m.v);
    acc *= NormalMoment(g.mean, g.variance, m.pv);
  }
  return acc;
}

double VarianceEngine::MonoVar(const Monomial& m) const {
  // Variables within a monomial are independent (children of a join use
  // distinct sample copies): Var[Π Xi^pi] = Π E[Xi^2pi] - Π E[Xi^pi]².
  double e2 = 1.0, e1sq = 1.0;
  if (m.u >= 0) {
    const Gaussian g = VarGaussian(m.u);
    e2 *= NormalMoment(g.mean, g.variance, 2 * m.pu);
    const double e = NormalMoment(g.mean, g.variance, m.pu);
    e1sq *= e * e;
  }
  if (m.v >= 0) {
    const Gaussian g = VarGaussian(m.v);
    e2 *= NormalMoment(g.mean, g.variance, 2 * m.pv);
    const double e = NormalMoment(g.mean, g.variance, m.pv);
    e1sq *= e * e;
  }
  return std::max(0.0, e2 - e1sq);
}

double VarianceEngine::PairCovarianceBound(int var_desc, int var_anc,
                                           int pow_desc, int pow_anc) const {
  const SelectivityEstimate& d = Est(var_desc);
  const SelectivityEstimate& a = Est(var_anc);
  const CovarianceBounds bounds = SamplingEstimator::CovarianceBoundsFor(
      d, a, estimates_->leaf_sample_rows);
  double base = 0.0;
  switch (bound_) {
    case CovarianceBoundKind::kBest:
      base = bounds.best();
      break;
    case CovarianceBoundKind::kB1:
      base = bounds.b1;
      break;
    case CovarianceBoundKind::kB2:
      base = bounds.b2;
      break;
    case CovarianceBoundKind::kB3:
      base = bounds.b3;
      break;
  }
  if (pow_desc == 1 && pow_anc == 1) return base;

  // Squared terms: Theorem 9 / Theorem 10-style bounds
  //   |Cov(ρ², ρ')|  <= f10(n,m) h(ρ) g(ρ')
  //   |Cov(ρ², ρ'²)| <= f9(n,m)  h(ρ) h(ρ')
  // using the large-n approximations f10 ≈ (K + 2m)√(KK')/n²,
  // f9 ≈ (K + K' + 4m)√(KK')/n².
  auto g = [](double rho) { return std::sqrt(std::max(0.0, rho * (1.0 - rho))); };
  auto h = [&g](double rho) {
    return g(rho) * std::sqrt(std::max(0.0, rho - rho * rho + 1.0));
  };
  double n_min = 1e30;
  for (int k = d.leaf_begin; k < d.leaf_end; ++k) {
    n_min = std::min(n_min,
                     estimates_->leaf_sample_rows[static_cast<size_t>(k)]);
  }
  if (n_min < 2.0) n_min = 2.0;
  const double kd = static_cast<double>(d.leaf_end - d.leaf_begin);
  const double ka = static_cast<double>(a.leaf_end - a.leaf_begin);
  const double m = kd;  // shared relations = descendant's leaves
  double f = 0.0;
  double magnitude = 0.0;
  if (pow_desc == 2 && pow_anc == 2) {
    f = (kd + ka + 4.0 * m) * std::sqrt(kd * ka) / (n_min * n_min);
    magnitude = h(d.rho) * h(a.rho);
  } else {
    // One squared side, one linear side.
    const double sq_k = pow_desc == 2 ? kd : ka;
    f = (sq_k + 2.0 * m) * std::sqrt(kd * ka) / (n_min * n_min);
    magnitude = pow_desc == 2 ? h(d.rho) * g(a.rho) : g(d.rho) * h(a.rho);
  }
  const double theorem_bound = f * magnitude;

  // Generic fallback: correlation-scaled Cauchy–Schwarz using the linear
  // correlation bound.
  const Gaussian gd = VarGaussian(var_desc);
  const Gaussian ga = VarGaussian(var_anc);
  double r = 0.0;
  if (gd.variance > 0.0 && ga.variance > 0.0) {
    r = std::min(1.0, base / std::sqrt(gd.variance * ga.variance));
  }
  const double var_d = std::max(
      0.0, NormalMoment(gd.mean, gd.variance, 2 * pow_desc) -
               NormalMoment(gd.mean, gd.variance, pow_desc) *
                   NormalMoment(gd.mean, gd.variance, pow_desc));
  const double var_a = std::max(
      0.0, NormalMoment(ga.mean, ga.variance, 2 * pow_anc) -
               NormalMoment(ga.mean, ga.variance, pow_anc) *
                   NormalMoment(ga.mean, ga.variance, pow_anc));
  const double generic_bound = r * std::sqrt(var_d * var_a);
  return std::min(theorem_bound, generic_bound);
}

double VarianceEngine::MonoCov(const Monomial& a, const Monomial& b,
                               bool* bounded) const {
  *bounded = false;
  // Constant monomials have zero covariance with anything.
  if (a.u < 0 || b.u < 0) return 0.0;

  // Gather (var, power) lists.
  struct VP {
    int var;
    int pow;
  };
  VP av[2];
  int an = 0;
  if (a.u >= 0) av[an++] = {a.u, a.pu};
  if (a.v >= 0) av[an++] = {a.v, a.pv};
  VP bv[2];
  int bn = 0;
  if (b.u >= 0) bv[bn++] = {b.u, b.pu};
  if (b.v >= 0) bv[bn++] = {b.v, b.pv};

  // Check every cross pair of *distinct* variables for correlation.
  bool any_correlated = false;
  for (int i = 0; i < an && !any_correlated; ++i) {
    for (int j = 0; j < bn; ++j) {
      if (av[i].var == bv[j].var) continue;
      const VarRelation rel = Relation(av[i].var, bv[j].var);
      if (rel == VarRelation::kCorrelated) {
        any_correlated = true;
        break;
      }
    }
  }

  if (!any_correlated) {
    // Exact: merge powers per variable; E factorizes over distinct vars.
    // Cov = E[AB] - E[A] E[B].
    double eab = 1.0;
    // Collect union of variables.
    int vars[4];
    int nv = 0;
    auto add_var = [&vars, &nv](int v) {
      for (int i = 0; i < nv; ++i) {
        if (vars[i] == v) return;
      }
      vars[nv++] = v;
    };
    for (int i = 0; i < an; ++i) add_var(av[i].var);
    for (int j = 0; j < bn; ++j) add_var(bv[j].var);
    bool shares_variable = false;
    for (int i = 0; i < nv; ++i) {
      int p = 0;
      for (int k = 0; k < an; ++k) {
        if (av[k].var == vars[i]) p += av[k].pow;
      }
      bool in_b = false;
      for (int k = 0; k < bn; ++k) {
        if (bv[k].var == vars[i]) {
          p += bv[k].pow;
          in_b = true;
        }
      }
      bool in_a = false;
      for (int k = 0; k < an; ++k) {
        if (av[k].var == vars[i]) in_a = true;
      }
      if (in_a && in_b) shares_variable = true;
      const Gaussian g = VarGaussian(vars[i]);
      eab *= NormalMoment(g.mean, g.variance, p);
    }
    if (!shares_variable) return 0.0;  // fully independent monomials
    return eab - MonoMean(a) * MonoMean(b);
  }

  if (variant_ == PredictorVariant::kNoCov ||
      variant_ == PredictorVariant::kNoVarX) {
    return 0.0;  // V4 drops cross-estimate covariances entirely
  }
  *bounded = true;

  // Upper bound. Identify the dominant correlated pair and scale by the
  // remaining (independent) factors' means.
  double best = 0.0;
  for (int i = 0; i < an; ++i) {
    for (int j = 0; j < bn; ++j) {
      if (av[i].var == bv[j].var) continue;
      if (Relation(av[i].var, bv[j].var) != VarRelation::kCorrelated) continue;
      // Determine descendant vs ancestor by span containment.
      const SelectivityEstimate& ea = Est(av[i].var);
      const SelectivityEstimate& eb = Est(bv[j].var);
      const bool a_desc = ea.leaf_begin >= eb.leaf_begin && ea.leaf_end <= eb.leaf_end;
      const double pair_bound =
          a_desc ? PairCovarianceBound(av[i].var, bv[j].var, av[i].pow, bv[j].pow)
                 : PairCovarianceBound(bv[j].var, av[i].var, bv[j].pow, av[i].pow);
      // Scale by the expected value of the remaining factors.
      double scale = 1.0;
      for (int k = 0; k < an; ++k) {
        if (k == i) continue;
        const Gaussian g = VarGaussian(av[k].var);
        scale *= NormalMoment(g.mean, g.variance, av[k].pow);
      }
      for (int k = 0; k < bn; ++k) {
        if (k == j) continue;
        const Gaussian g = VarGaussian(bv[k].var);
        scale *= NormalMoment(g.mean, g.variance, bv[k].pow);
      }
      best = std::max(best, pair_bound * scale);
    }
  }
  // Never exceed the unconditional Cauchy–Schwarz bound.
  const double cs = std::sqrt(MonoVar(a) * MonoVar(b));
  return std::min(best, cs);
}

VarianceBreakdown VarianceEngine::Compute() const {
  VarianceBreakdown out;

  std::vector<Term> unit_terms[kNumCostUnits];
  double e_g[kNumCostUnits];
  for (int c = 0; c < kNumCostUnits; ++c) {
    unit_terms[c] = ExpandUnit(c);
    double acc = 0.0;
    for (const Term& t : unit_terms[c]) acc += t.coef * MonoMean(t.m);
    e_g[c] = std::max(0.0, acc);
    out.expected_work[c] = e_g[c];
  }

  double mu_c[kNumCostUnits], var_c[kNumCostUnits];
  for (int c = 0; c < kNumCostUnits; ++c) {
    mu_c[c] = units_->Get(c).mean;
    var_c[c] = variant_ == PredictorVariant::kNoVarC ? 0.0 : units_->Get(c).variance;
  }

  // E[t_q] = Σ_c E[G_c] μ_c.
  for (int c = 0; c < kNumCostUnits; ++c) out.mean += e_g[c] * mu_c[c];

  // Var[G_c] and Cov(G_c, G_c'), splitting exact vs bounded parts.
  double cov_g_exact[kNumCostUnits][kNumCostUnits];
  double cov_g_bound[kNumCostUnits][kNumCostUnits];
  for (int c = 0; c < kNumCostUnits; ++c) {
    for (int d = c; d < kNumCostUnits; ++d) {
      double exact = 0.0, bound_part = 0.0;
      for (const Term& ta : unit_terms[c]) {
        for (const Term& tb : unit_terms[d]) {
          bool bounded = false;
          const double cov = MonoCov(ta.m, tb.m, &bounded);
          if (cov == 0.0) continue;
          if (bounded) {
            // Bounds are on |Cov|; adding the positive bound is the
            // conservative choice of Algorithm 3.
            bound_part += std::fabs(ta.coef * tb.coef) * cov;
          } else {
            exact += ta.coef * tb.coef * cov;
          }
        }
      }
      cov_g_exact[c][d] = cov_g_exact[d][c] = exact;
      cov_g_bound[c][d] = cov_g_bound[d][c] = bound_part;
    }
  }

  for (int c = 0; c < kNumCostUnits; ++c) {
    // Var[G_c c] = E[G_c]² Var[c] + (μ_c² + Var[c]) Var[G_c].
    out.var_cost_units += e_g[c] * e_g[c] * var_c[c];
    const double scale = mu_c[c] * mu_c[c] + var_c[c];
    out.var_selectivity += scale * std::max(0.0, cov_g_exact[c][c]);
    out.var_cov_bounds += scale * cov_g_bound[c][c];
    for (int d = 0; d < kNumCostUnits; ++d) {
      if (d == c) continue;
      // Cov(G_c c, G_d c') = μ_c μ_d Cov(G_c, G_d).
      out.var_selectivity += mu_c[c] * mu_c[d] * cov_g_exact[c][d];
      out.var_cov_bounds += mu_c[c] * mu_c[d] * cov_g_bound[c][d];
    }
  }
  // Exact cross-unit covariances can be negative in principle; clamp the
  // aggregate at zero.
  out.var_selectivity = std::max(0.0, out.var_selectivity);
  out.variance = out.var_cost_units + out.var_selectivity + out.var_cov_bounds;
  return out;
}

}  // namespace uqp
