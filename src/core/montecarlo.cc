#include "core/montecarlo.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/logging.h"
#include "math/gaussian.h"
#include "math/stats.h"

namespace uqp {

double MonteCarloResult::Quantile(double q) const {
  UQP_CHECK(!samples.empty());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

double MonteCarloResult::KsDistanceToNormal(double normal_mean,
                                            double normal_variance) const {
  if (samples.empty()) return 1.0;
  double ks = 0.0;
  const double n = static_cast<double>(samples.size());
  for (size_t i = 0; i < samples.size(); ++i) {
    const double cdf = NormalCdf(samples[i], normal_mean, normal_variance);
    const double emp_hi = static_cast<double>(i + 1) / n;
    const double emp_lo = static_cast<double>(i) / n;
    ks = std::max(ks, std::max(std::fabs(cdf - emp_hi), std::fabs(cdf - emp_lo)));
  }
  return ks;
}

MonteCarloResult SimulatePrediction(
    const PlanEstimates& estimates,
    const std::vector<OperatorCostFunctions>& cost_functions,
    const CostUnits& units, const MonteCarloOptions& options) {
  // Collect the distinct selectivity variables referenced by any cost
  // function, so each is drawn once per iteration.
  std::unordered_map<int, double> draw;  // variable (node id) -> value
  std::vector<int> variables;
  auto note_var = [&draw, &variables](int v) {
    if (v >= 0 && draw.emplace(v, 0.0).second) variables.push_back(v);
  };
  for (const OperatorCostFunctions& ocf : cost_functions) {
    note_var(ocf.var_own);
    note_var(ocf.var_left);
    note_var(ocf.var_right);
  }

  Rng rng(options.seed);
  MonteCarloResult result;
  result.samples.reserve(static_cast<size_t>(options.draws));
  RunningStats stats;
  for (int it = 0; it < options.draws; ++it) {
    // Draw selectivities, truncated to [0, 1].
    for (int v : variables) {
      const Gaussian g = estimates.ops[static_cast<size_t>(v)].AsGaussian();
      draw[v] = std::clamp(rng.NextGaussian(g.mean, g.stddev()), 0.0, 1.0);
    }
    // Draw cost units, truncated positive.
    double c[kNumCostUnits];
    for (int u = 0; u < kNumCostUnits; ++u) {
      const Gaussian g = units.Get(u);
      c[u] = std::max(0.0, rng.NextGaussian(g.mean, g.stddev()));
    }
    // Evaluate t_q through the fitted cost functions.
    double t = 0.0;
    for (const OperatorCostFunctions& ocf : cost_functions) {
      const double x = ocf.var_own >= 0 ? draw[ocf.var_own] : 1.0;
      const double xl = ocf.var_left >= 0 ? draw[ocf.var_left] : 1.0;
      const double xr = ocf.var_right >= 0 ? draw[ocf.var_right] : 1.0;
      for (int u = 0; u < kNumCostUnits; ++u) {
        t += std::max(0.0, ocf.funcs[u].Eval(x, xl, xr)) * c[u];
      }
    }
    result.samples.push_back(t);
    stats.Add(t);
  }
  // Canonicalizes the sample vector: doubles sort by value and equal keys
  // are bitwise-identical, so any permutation sorts to the same bytes.
  // det-lint: sorted-output
  std::sort(result.samples.begin(), result.samples.end());
  result.mean = stats.mean();
  result.variance = stats.variance();
  return result;
}

}  // namespace uqp
