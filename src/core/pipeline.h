#pragma once

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/variance.h"
#include "cost/snapshot.h"
#include "cost/units.h"
#include "costfunc/fitter.h"
#include "engine/plan.h"
#include "sampling/estimator.h"
#include "sampling/sample_db.h"
#include "storage/database.h"

namespace uqp {

/// Predictor configuration (shared by the facade and the pipeline).
struct PredictorOptions {
  PredictorVariant variant = PredictorVariant::kAll;
  CovarianceBoundKind bound = CovarianceBoundKind::kBest;
  /// How aggregate cardinalities are estimated (kGee enables the §3.2.2
  /// future-work extension).
  AggregateEstimateMode aggregate_mode = AggregateEstimateMode::kOptimizer;
  /// How scan selectivities are estimated (kHistogram enables the §3.2
  /// histogram alternative).
  ScanEstimateMode scan_mode = ScanEstimateMode::kSampling;
  /// Intra-query parallelism for the stage-1 sample run: the executor
  /// shards every operator — scans, hash-join builds/probes, join
  /// subtrees, sort leaf blocks + merge levels, aggregation chunk tables,
  /// merge-join group emission — across a task pool, and the estimator
  /// merges per-shard selectivity counts in shard order. 1 = sequential
  /// (the historical path), <= 0 = hardware concurrency. The determinism
  /// contract, enforced by tests/parallel_parity_test.cc: the
  /// SampleRunOutput — and hence every prediction — is bit-identical at
  /// every value.
  int num_threads = 1;
  /// Rows per executor chunk for the stage-1 sample run (the morsel and
  /// sort-leaf granularity — see ExecOptions::max_batch_size). Part of the
  /// determinism contract's *shape*: results are bit-identical across
  /// num_threads at any fixed batch size, and the parity tests sweep both.
  /// <= 0 = auto: derived per plan from the bound sample-table
  /// cardinalities (AutoSampleBatchSize), so tiny samples run as one
  /// morsel per operator instead of paying full dispatch overhead. The
  /// derivation depends only on sample cardinality — never thread count —
  /// so auto mode keeps the bit-identical guarantee across num_threads.
  int64_t max_batch_size = 1024;
  FitOptions fit;
};

struct SampleRunOutput;
struct CostFitOutput;

/// Shared ownership of the immutable stage 1-2 artifacts. Predictions,
/// the service cache and in-flight dedup all alias the same objects, so a
/// fully-cached prediction costs one variance combination, not an
/// artifact deep copy.
using SampleRunPtr = std::shared_ptr<const SampleRunOutput>;
using CostFitPtr = std::shared_ptr<const CostFitOutput>;

/// The shared, immutable stage 1-2 artifacts of one plan, bundled. This is
/// the unit the service layer caches, dedups and hands between requests:
/// stage 3 (PredictFromArtifacts) needs nothing but this bundle — not the
/// plan — which is what makes continuation-style handoff possible: any
/// thread holding the artifacts can finish any waiter's prediction.
struct StageArtifacts {
  SampleRunPtr run;
  CostFitPtr fit;
};

/// A prediction: the distribution of likely running times plus shared
/// views of the intermediate artifacts, for diagnostics, Recompute and
/// the experiment harness.
struct Prediction {
  VarianceBreakdown breakdown;

  double mean() const { return breakdown.mean; }
  double stddev() const { return std::sqrt(std::max(0.0, breakdown.variance)); }
  Gaussian distribution() const { return breakdown.AsGaussian(); }

  /// P(T <= t) under the predicted normal.
  double ProbBelow(double t) const;
  /// Central confidence interval [lo, hi] at the given level (e.g. 0.7
  /// gives the paper's "with probability 70%, between lo and hi").
  void ConfidenceInterval(double level, double* lo, double* hi) const;

  /// Stage 1-2 artifacts, aliased rather than copied: predictions of a
  /// recurring plan share one immutable SampleRunOutput/CostFitOutput with
  /// the service cache (pointer-identical, see service tests). Non-null
  /// for every prediction produced by the pipeline or service.
  SampleRunPtr sample_run;
  CostFitPtr cost_fit;

  /// The calibration snapshot this prediction combined under — resolved
  /// exactly once at stage-3 time, so the breakdown can never mix cost
  /// units from two epochs even while a new snapshot is being published
  /// concurrently. Non-null for every pipeline-produced prediction.
  CalibrationPtr calibration;
  uint64_t calibration_epoch() const {
    return calibration != nullptr ? calibration->epoch : 0;
  }

  const PlanEstimates& estimates() const;
  const std::vector<OperatorCostFunctions>& cost_functions() const;

  /// True for a degraded (cost-only fallback) prediction: stage 1 failed
  /// or timed out and the service served `optimizer scalar cost ×
  /// cost_scale_ms` with inflated variance instead. Degraded predictions
  /// carry NO stage 1-2 artifacts — sample_run and cost_fit are null, so
  /// estimates() / cost_functions() must not be called when this is set.
  bool degraded = false;
};

// ---------------------------------------------------------------------------
// The prediction pipeline, staged. Each stage has explicit input/output
// structs so stages can be cached (the service layer caches SampleRunStage
// outputs by plan fingerprint), swapped (ablations re-run only
// VarianceCombineStage), and tested in isolation.
//
//   Plan ──> SampleRunStage ──> CostFitStage ──> VarianceCombineStage ──> N(μ,σ²)
//            (Algorithms 1-2)    (§4 fitting)     (§5 / Algorithm 3)
// ---------------------------------------------------------------------------

/// Input to stage 1: a finalized physical plan, plus an optional
/// cooperative cancellation probe (see ExecOptions::cancelled) that lets
/// the owner stop the sample run at the next morsel boundary once a
/// request's deadline expires. Null = never cancelled, zero overhead.
struct SampleRunInput {
  const Plan* plan = nullptr;
  const std::function<bool()>* cancelled = nullptr;
};

/// Output of stage 1: the selectivity distributions extracted from one run
/// of the plan over the offline sample tables. This is by far the most
/// expensive artifact of a prediction and the unit of caching.
struct SampleRunOutput {
  PlanEstimates estimates;
};

/// Canonical byte serialization of a stage-1 output: every selectivity,
/// variance component, leaf span, resource counter and cardinality,
/// doubles serialized by bit pattern. Two outputs serialize equal iff they
/// are bit-identical — the equality the intra-query parallel executor's
/// determinism contract is tested against (tests/parallel_parity_test.cc).
std::string SampleRunOutputBytes(const SampleRunOutput& out);

/// Stage 1: run the plan over the sample tables once, extracting every
/// operator's selectivity distribution (paper Algorithms 1-2). With
/// num_threads != 1 the run fans out intra-query (bit-identical results;
/// see PredictorOptions::num_threads); `task_runner` optionally shares a
/// caller-owned pool across runs.
class SampleRunStage {
 public:
  SampleRunStage(const Database* db, const SampleDb* samples,
                 AggregateEstimateMode aggregate_mode,
                 ScanEstimateMode scan_mode, int num_threads = 1,
                 TaskRunner* task_runner = nullptr,
                 int64_t max_batch_size = 1024)
      : estimator_(db, samples, aggregate_mode, scan_mode, num_threads,
                   task_runner, max_batch_size) {}

  StatusOr<SampleRunOutput> Run(const SampleRunInput& input) const;

 private:
  SamplingEstimator estimator_;
};

/// Input to stage 2: the plan plus stage 1's output.
struct CostFitInput {
  const Plan* plan = nullptr;
  const SampleRunOutput* sample_run = nullptr;
};

/// Output of stage 2: per-operator fitted logical cost functions.
struct CostFitOutput {
  std::vector<OperatorCostFunctions> cost_functions;
};

/// Stage 2: fit the logical cost functions around the likely selectivity
/// ranges (paper §4).
class CostFitStage {
 public:
  CostFitStage(const Database* db, FitOptions options)
      : fitter_(db, options) {}

  StatusOr<CostFitOutput> Run(const CostFitInput& input) const;

 private:
  CostFunctionFitter fitter_;
};

/// Input to stage 3: stages 1-2 outputs, the calibrated cost units, and
/// the variant/bound knobs. The knobs AND the units live in the input (not
/// the stage) so ablations can re-run this stage alone under different
/// settings against cached artifacts — and so a running service can swap
/// calibration epochs without rebuilding any stage.
struct VarianceCombineInput {
  const SampleRunOutput* sample_run = nullptr;
  const CostFitOutput* cost_fit = nullptr;
  const CostUnits* units = nullptr;
  PredictorVariant variant = PredictorVariant::kAll;
  CovarianceBoundKind bound = CovarianceBoundKind::kBest;
};

/// Output of stage 3: the predicted running-time distribution.
struct VarianceCombineOutput {
  VarianceBreakdown breakdown;
};

/// Stage 3: combine the fitted cost functions, selectivity distributions
/// and calibrated cost-unit distributions into N(E[t_q], Var[t_q])
/// (paper §5, Algorithm 3). Infallible and cheap. Stateless: the units
/// arrive in the input (resolved from the owner's current
/// CalibrationSnapshot), so the stage stays freely copyable while
/// calibration became swappable at runtime.
class VarianceCombineStage {
 public:
  VarianceCombineOutput Run(const VarianceCombineInput& input) const;
};

/// The composed three-stage pipeline. `Predictor` is a thin facade over
/// this; `PredictionService` drives the stages individually so it can cache
/// stage 1 and shard stages 2-3 across workers.
class PredictionPipeline {
 public:
  /// `task_runner` (optional) backs stage 1's intra-query fan-out when
  /// options.num_threads != 1 — the service layer passes its worker pool
  /// so plan-level and intra-plan tasks share one set of threads. The
  /// construction-time units become calibration epoch 1 ("offline").
  PredictionPipeline(const Database* db, const SampleDb* samples,
                     CostUnits units, PredictorOptions options,
                     TaskRunner* task_runner = nullptr)
      : PredictionPipeline(db, samples,
                           MakeCalibrationSnapshot(units, 1, "offline"),
                           options, task_runner) {}

  PredictionPipeline(const Database* db, const SampleDb* samples,
                     CalibrationPtr calibration, PredictorOptions options,
                     TaskRunner* task_runner = nullptr)
      : calibration_(std::move(calibration)),
        options_(options),
        sample_run_(db, samples, options.aggregate_mode, options.scan_mode,
                    options.num_threads, task_runner, options.max_batch_size),
        cost_fit_(db, options.fit) {}

  /// The current calibration snapshot (atomic load; safe to call while a
  /// concurrent SetCalibration publishes a new epoch). Every prediction
  /// resolves this exactly once, at stage-3 time.
  CalibrationPtr calibration() const {
    return std::atomic_load_explicit(&calibration_,
                                     std::memory_order_acquire);
  }
  /// Copy of the current snapshot's units (the snapshot may be swapped at
  /// any time, so no reference is handed out).
  CostUnits units() const { return calibration()->units; }

  /// Publishes a new calibration snapshot (atomic pointer swap).
  /// In-flight predictions that already resolved the old snapshot finish
  /// under it — bit-identical to a pre-swap prediction — and later ones
  /// see the new epoch. Stage 1-2 artifacts are unit-independent, so
  /// nothing else invalidates. Epoch monotonicity is the caller's
  /// contract (PredictionService::PublishCalibration serializes it).
  void SetCalibration(CalibrationPtr snapshot) {
    std::atomic_store_explicit(&calibration_, std::move(snapshot),
                               std::memory_order_release);
  }

  const PredictorOptions& options() const { return options_; }

  const SampleRunStage& sample_run_stage() const { return sample_run_; }
  const CostFitStage& cost_fit_stage() const { return cost_fit_; }
  const VarianceCombineStage& variance_combine_stage() const {
    return variance_combine_;
  }

  /// The number of times the stage-3 combination ran (any overload).
  /// Monotone, relaxed; a test/bench seam for asserting that memoized
  /// epoch-stamped combines actually skip the combination work.
  uint64_t combine_count() const {
    return combine_count_.load(std::memory_order_relaxed);
  }

  /// All three stages in sequence.
  StatusOr<Prediction> Predict(const Plan& plan) const;

  /// Stages 2-3 only, from a pre-computed (possibly cached) stage 1
  /// output. Bit-identical to Predict when `sample_run` came from the same
  /// plan: every stage is deterministic. The prediction shares ownership
  /// of `sample_run` (no copy).
  StatusOr<Prediction> PredictFromSampleRun(const Plan& plan,
                                            SampleRunPtr sample_run) const;

  /// Stage 3 only, from pre-computed stage 1-2 outputs (the fully cached
  /// path: a recurring plan re-runs just the variance combination). The
  /// prediction aliases both artifacts — zero-copy, O(variance breakdown).
  /// Resolves the current calibration snapshot once.
  Prediction PredictFromArtifacts(SampleRunPtr sample_run,
                                  CostFitPtr cost_fit) const;
  /// Bundle overload: the form the service's cache, in-flight dedup and
  /// continuation handoff trade in.
  Prediction PredictFromArtifacts(const StageArtifacts& artifacts) const;
  /// Pinned-snapshot overload: combines under exactly `snapshot` instead
  /// of re-resolving the current one — the service's epoch-memoization
  /// path uses it so the epoch it stamps is the epoch it combined under,
  /// even while a publish races.
  Prediction PredictFromArtifacts(const StageArtifacts& artifacts,
                                  const CalibrationPtr& snapshot) const;

  /// Stage 3 only, under a different variant/bound (ablation reuse).
  /// Combines under the prediction's own calibration snapshot (falling
  /// back to the current one for foreign predictions), so recomputation
  /// is referentially transparent across concurrent epoch swaps.
  VarianceBreakdown Recompute(const Prediction& prediction,
                              PredictorVariant variant,
                              CovarianceBoundKind bound) const;

 private:
  /// Atomically swappable current snapshot; access only through
  /// std::atomic_load/store (calibration()/SetCalibration). Deliberately
  /// outside the mutex capability model (no GUARDED_BY): the swap IS the
  /// synchronization — readers resolve one coherent snapshot via the
  /// acquire load and never see a half-published epoch. Thread-safety
  /// analysis cannot model atomic shared_ptr protocols; TSan covers this
  /// path instead.
  CalibrationPtr calibration_;
  PredictorOptions options_;
  SampleRunStage sample_run_;
  CostFitStage cost_fit_;
  VarianceCombineStage variance_combine_;
  mutable std::atomic<uint64_t> combine_count_{0};
};

}  // namespace uqp
