#include "core/predictor.h"

#include <cmath>

#include "math/gaussian.h"

namespace uqp {

double Prediction::ProbBelow(double t) const {
  return NormalCdf(t, breakdown.mean, breakdown.variance);
}

void Prediction::ConfidenceInterval(double level, double* lo, double* hi) const {
  const double alpha = NormalQuantile(0.5 + 0.5 * level);
  const double sd = stddev();
  *lo = breakdown.mean - alpha * sd;
  *hi = breakdown.mean + alpha * sd;
}

StatusOr<Prediction> Predictor::Predict(const Plan& plan) const {
  Prediction out;
  UQP_ASSIGN_OR_RETURN(out.estimates, estimator_.Estimate(plan));
  UQP_ASSIGN_OR_RETURN(out.cost_functions, fitter_.FitPlan(plan, out.estimates));
  const VarianceEngine engine(&out.estimates, &out.cost_functions, &units_,
                              options_.variant, options_.bound);
  out.breakdown = engine.Compute();
  return out;
}

VarianceBreakdown Predictor::Recompute(const Prediction& prediction,
                                       PredictorVariant variant,
                                       CovarianceBoundKind bound) const {
  const VarianceEngine engine(&prediction.estimates, &prediction.cost_functions,
                              &units_, variant, bound);
  return engine.Compute();
}

}  // namespace uqp
