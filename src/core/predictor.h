#pragma once

#include <vector>

#include "common/status.h"
#include "core/variance.h"
#include "cost/units.h"
#include "costfunc/fitter.h"
#include "engine/plan.h"
#include "sampling/estimator.h"
#include "sampling/sample_db.h"
#include "storage/database.h"

namespace uqp {

/// Predictor configuration.
struct PredictorOptions {
  PredictorVariant variant = PredictorVariant::kAll;
  CovarianceBoundKind bound = CovarianceBoundKind::kBest;
  /// How aggregate cardinalities are estimated (kGee enables the §3.2.2
  /// future-work extension).
  AggregateEstimateMode aggregate_mode = AggregateEstimateMode::kOptimizer;
  /// How scan selectivities are estimated (kHistogram enables the §3.2
  /// histogram alternative).
  ScanEstimateMode scan_mode = ScanEstimateMode::kSampling;
  FitOptions fit;
};

/// A prediction: the distribution of likely running times plus the
/// intermediate artifacts, for diagnostics and the experiment harness.
struct Prediction {
  VarianceBreakdown breakdown;

  double mean() const { return breakdown.mean; }
  double stddev() const { return std::sqrt(std::max(0.0, breakdown.variance)); }
  Gaussian distribution() const { return breakdown.AsGaussian(); }

  /// P(T <= t) under the predicted normal.
  double ProbBelow(double t) const;
  /// Central confidence interval [lo, hi] at the given level (e.g. 0.7
  /// gives the paper's "with probability 70%, between lo and hi").
  void ConfidenceInterval(double level, double* lo, double* hi) const;

  PlanEstimates estimates;
  std::vector<OperatorCostFunctions> cost_functions;
};

/// The uncertainty-aware query execution time predictor (the paper's core
/// contribution). Pipeline per query:
///   1. run the plan over the offline sample tables once, extracting every
///      operator's selectivity distribution (Algorithms 1-2),
///   2. fit the logical cost functions around the likely selectivity
///      ranges (§4),
///   3. combine with the calibrated cost-unit distributions into
///      N(E[t_q], Var[t_q]) (§5, Algorithm 3).
class Predictor {
 public:
  Predictor(const Database* db, const SampleDb* samples, CostUnits units,
            PredictorOptions options = PredictorOptions())
      : db_(db),
        samples_(samples),
        units_(units),
        options_(options),
        estimator_(db, samples, options.aggregate_mode, options.scan_mode),
        fitter_(db, options.fit) {}

  const CostUnits& units() const { return units_; }
  const PredictorOptions& options() const { return options_; }

  /// Full prediction.
  StatusOr<Prediction> Predict(const Plan& plan) const;

  /// Re-derives the distribution from existing artifacts under a different
  /// variant/bound (used by the ablation benches to avoid re-sampling).
  VarianceBreakdown Recompute(const Prediction& prediction,
                              PredictorVariant variant,
                              CovarianceBoundKind bound) const;

 private:
  const Database* db_;
  const SampleDb* samples_;
  CostUnits units_;
  PredictorOptions options_;
  SamplingEstimator estimator_;
  CostFunctionFitter fitter_;
};

}  // namespace uqp
