#pragma once

#include "common/status.h"
#include "core/pipeline.h"
#include "engine/plan.h"

namespace uqp {

/// The uncertainty-aware query execution time predictor (the paper's core
/// contribution). A thin facade over the staged PredictionPipeline:
///   1. SampleRunStage — run the plan over the offline sample tables once,
///      extracting every operator's selectivity distribution (Algs. 1-2),
///   2. CostFitStage — fit the logical cost functions around the likely
///      selectivity ranges (§4),
///   3. VarianceCombineStage — combine with the calibrated cost-unit
///      distributions into N(E[t_q], Var[t_q]) (§5, Algorithm 3).
///
/// `PredictorOptions` and `Prediction` live in core/pipeline.h; callers
/// that want stage-level control (caching, sharding) should use
/// PredictionPipeline or the service layer's PredictionService directly.
class Predictor {
 public:
  Predictor(const Database* db, const SampleDb* samples, CostUnits units,
            PredictorOptions options = PredictorOptions())
      : pipeline_(db, samples, units, options) {}

  /// Copy of the current calibration snapshot's units (the snapshot is a
  /// swappable runtime artifact now, so no long-lived reference exists).
  CostUnits units() const { return pipeline_.units(); }
  CalibrationPtr calibration() const { return pipeline_.calibration(); }
  const PredictorOptions& options() const { return pipeline_.options(); }
  const PredictionPipeline& pipeline() const { return pipeline_; }

  /// Full prediction (all three stages).
  StatusOr<Prediction> Predict(const Plan& plan) const {
    return pipeline_.Predict(plan);
  }

  /// Re-derives the distribution from existing artifacts under a different
  /// variant/bound (used by the ablation benches to avoid re-sampling).
  /// Reads the prediction's shared artifact views in place — no copy.
  VarianceBreakdown Recompute(const Prediction& prediction,
                              PredictorVariant variant,
                              CovarianceBoundKind bound) const {
    return pipeline_.Recompute(prediction, variant, bound);
  }

 private:
  PredictionPipeline pipeline_;
};

}  // namespace uqp
