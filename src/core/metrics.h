#pragma once

#include <vector>

#include "math/stats.h"

namespace uqp {

/// One evaluated query: predicted distribution vs measured running time.
struct QueryOutcome {
  double predicted_mean = 0.0;    ///< μ_i (ms)
  double predicted_stddev = 0.0;  ///< σ_i (ms)
  double actual_time = 0.0;       ///< t_i (ms), averaged over runs

  double error() const;            ///< e_i = |μ_i - t_i|
  double normalized_error() const; ///< e'_i = e_i / σ_i (inf if σ_i = 0)
};

/// The paper's evaluation metrics over a set of queries (§6.3):
///   r_s, r_p — Spearman / Pearson correlation between the predicted
///              standard deviations σ_i and the actual errors e_i;
///   D_n      — average distance between the model-implied Pr(α) and the
///              empirical Pr_n(α) of normalized errors.
struct EvaluationSummary {
  int num_queries = 0;
  double spearman = 0.0;
  double pearson = 0.0;
  double dn = 0.0;
  ProximityResult proximity;

  std::vector<double> sigmas;
  std::vector<double> errors;
};

EvaluationSummary Evaluate(const std::vector<QueryOutcome>& outcomes);

/// r_s / r_p after removing the single point with the largest σ (the
/// outlier-robustness probe of Figure 3).
struct OutlierProbe {
  double spearman_all = 0.0;
  double pearson_all = 0.0;
  double spearman_trimmed = 0.0;
  double pearson_trimmed = 0.0;
};
OutlierProbe ProbeOutlierRobustness(const std::vector<QueryOutcome>& outcomes);

}  // namespace uqp
