#pragma once

#include <cstdint>
#include <vector>

#include "cost/units.h"
#include "costfunc/fitter.h"
#include "math/rng.h"
#include "sampling/estimator.h"

namespace uqp {

/// Options for the Monte-Carlo reference predictor.
struct MonteCarloOptions {
  int draws = 4000;
  uint64_t seed = 424242;
};

/// Empirical distribution of t_q from Monte-Carlo simulation.
struct MonteCarloResult {
  double mean = 0.0;
  double variance = 0.0;
  /// Sorted draws of t_q (ms).
  std::vector<double> samples;

  /// Empirical quantile, q in (0, 1).
  double Quantile(double q) const;

  /// Kolmogorov–Smirnov distance between the empirical distribution and
  /// N(mean, variance) — the paper's asymptotic-normality claims
  /// (Theorems 1/2, §5.2) predict this shrinks as sample sizes grow.
  double KsDistanceToNormal(double normal_mean, double normal_variance) const;
};

/// Monte-Carlo reference for the analytic N(E[t_q], Var[t_q]) predictor.
///
/// Implements the fallback the paper sketches in §5.2.4 for cost models
/// whose units are not normal (here the units *are* normal, so it doubles
/// as a validation of the analytic machinery): repeatedly draw the cost
/// units c and the selectivity variables X from their estimated
/// distributions, evaluate t_q = Σ_c c · Σ_op f_{op,c}(X) through the
/// fitted logical cost functions, and report the empirical distribution.
///
/// Selectivity variables shared between operators (a parent's Xl that IS
/// its child's X) are drawn once per iteration, so those correlations are
/// captured exactly; ancestor/descendant estimate pairs whose joint
/// distribution is unknown (the upper-bounded pairs of §5.3.2) are drawn
/// independently — the Monte-Carlo result therefore brackets the analytic
/// variance from below while the bound-augmented analytic value brackets
/// it from above.
MonteCarloResult SimulatePrediction(
    const PlanEstimates& estimates,
    const std::vector<OperatorCostFunctions>& cost_functions,
    const CostUnits& units, const MonteCarloOptions& options = MonteCarloOptions());

}  // namespace uqp
