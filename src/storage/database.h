#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "storage/catalog.h"
#include "storage/table.h"

namespace uqp {

/// A named collection of tables plus the analyzed catalog.
class Database {
 public:
  Database() = default;
  explicit Database(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Adds a table; replaces any table with the same name.
  Table* AddTable(Table table);

  bool HasTable(const std::string& name) const { return tables_.count(name) > 0; }
  const Table& GetTable(const std::string& name) const;
  Table* GetMutableTable(const std::string& name);

  std::vector<std::string> TableNames() const;

  /// Runs ANALYZE over every table.
  void AnalyzeAll(int histogram_buckets = 64);

  const Catalog& catalog() const { return catalog_; }
  Catalog* mutable_catalog() { return &catalog_; }

  /// Sum of pages across tables (used by the buffer-cache effect in the
  /// simulated machine).
  int64_t TotalPages() const;

 private:
  std::string name_;
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
  Catalog catalog_;
};

}  // namespace uqp
