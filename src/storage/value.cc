#include "storage/value.h"

#include <functional>

#include "common/logging.h"

namespace uqp {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "?";
}

StringPool& StringPool::Global() {
  static StringPool* pool = new StringPool();
  return *pool;
}

int32_t StringPool::Intern(const std::string& s) {
  auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  const int32_t id = static_cast<int32_t>(strings_.size());
  strings_.push_back(s);
  index_.emplace(s, id);
  return id;
}

const std::string& StringPool::Lookup(int32_t id) const {
  UQP_CHECK(id >= 0 && static_cast<size_t>(id) < strings_.size())
      << "bad string pool id " << id;
  return strings_[id];
}

int64_t Value::AsInt64() const {
  UQP_DCHECK(type == ValueType::kInt64);
  return i;
}

double Value::AsDouble() const {
  switch (type) {
    case ValueType::kInt64:
      return static_cast<double>(i);
    case ValueType::kDouble:
      return d;
    case ValueType::kString:
      UQP_CHECK(false) << "string value is not numeric";
  }
  return 0.0;
}

const std::string& Value::AsString() const {
  UQP_DCHECK(type == ValueType::kString);
  return StringPool::Global().Lookup(s);
}

bool Value::Equals(const Value& o) const {
  if (type == ValueType::kString || o.type == ValueType::kString) {
    return type == o.type && s == o.s;
  }
  return AsDouble() == o.AsDouble();
}

int Value::Compare(const Value& o) const {
  const double a = AsDouble();
  const double b = o.AsDouble();
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

uint64_t Value::Hash() const {
  switch (type) {
    case ValueType::kInt64:
      return std::hash<int64_t>{}(i) * 0x9e3779b97f4a7c15ULL;
    case ValueType::kDouble:
      // Hash int-valued doubles identically to their int64 counterparts so
      // cross-type equi-joins behave.
      if (d == static_cast<double>(static_cast<int64_t>(d))) {
        return std::hash<int64_t>{}(static_cast<int64_t>(d)) * 0x9e3779b97f4a7c15ULL;
      }
      return std::hash<double>{}(d) * 0x9e3779b97f4a7c15ULL;
    case ValueType::kString:
      return std::hash<int32_t>{}(s) * 0xbf58476d1ce4e5b9ULL;
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type) {
    case ValueType::kInt64:
      return std::to_string(i);
    case ValueType::kDouble:
      return std::to_string(d);
    case ValueType::kString:
      return AsString();
  }
  return "?";
}

}  // namespace uqp
