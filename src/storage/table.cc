#include "storage/table.h"

#include <algorithm>

#include "common/logging.h"

namespace uqp {

int64_t Table::rows_per_page() const {
  const int width = schema_.TupleWidthBytes();
  return std::max<int64_t>(1, kPageSizeBytes / std::max(1, width));
}

int64_t Table::num_pages() const {
  const int64_t rows = num_rows();
  if (rows == 0) return 1;
  const int64_t rpp = rows_per_page();
  return (rows + rpp - 1) / rpp;
}

void Table::AppendRow(const std::vector<Value>& row) {
  UQP_DCHECK(static_cast<int>(row.size()) == schema_.num_columns());
  values_.insert(values_.end(), row.begin(), row.end());
}

void Table::AppendRow(const Value* row) {
  values_.insert(values_.end(), row, row + schema_.num_columns());
}

Table& Table::operator=(const Table& other) {
  if (this == &other) return *this;
  // Stage the guarded state under the source's lock, then install it under
  // our own: the two critical sections never nest, so two threads
  // cross-assigning a pair of tables cannot deadlock — and each guarded
  // access happens under exactly its own table's mutex.
  std::map<int, std::vector<uint32_t>> indexes;
  {
    MutexLock lock(&other.index_mu_);
    indexes = other.ordered_indexes_;
  }
  name_ = other.name_;
  schema_ = other.schema_;
  values_ = other.values_;
  declared_indexes_ = other.declared_indexes_;
  MutexLock lock(&index_mu_);
  ordered_indexes_ = std::move(indexes);
  return *this;
}

Table& Table::operator=(Table&& other) {
  if (this == &other) return *this;
  std::map<int, std::vector<uint32_t>> indexes;
  {
    MutexLock lock(&other.index_mu_);
    indexes = std::move(other.ordered_indexes_);
    other.ordered_indexes_.clear();
  }
  name_ = std::move(other.name_);
  schema_ = std::move(other.schema_);
  values_ = std::move(other.values_);
  declared_indexes_ = std::move(other.declared_indexes_);
  MutexLock lock(&index_mu_);
  ordered_indexes_ = std::move(indexes);
  return *this;
}

const std::vector<uint32_t>& Table::OrderedIndex(int column) const {
  MutexLock lock(&index_mu_);
  auto it = ordered_indexes_.find(column);
  if (it != ordered_indexes_.end()) return it->second;
  const int64_t rows = num_rows();
  std::vector<uint32_t> idx(static_cast<size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) idx[static_cast<size_t>(r)] = static_cast<uint32_t>(r);
  std::sort(idx.begin(), idx.end(), [this, column](uint32_t a, uint32_t b) {
    return at(a, column).AsDouble() < at(b, column).AsDouble();
  });
  auto [pos, _] = ordered_indexes_.emplace(column, std::move(idx));
  return pos->second;
}

}  // namespace uqp
