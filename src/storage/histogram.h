#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace uqp {

/// Equi-depth histogram over a numeric column, the statistics object behind
/// (a) the optimizer's selectivity estimates and (b) the MICRO workload
/// generator, which inverts it to find predicate constants hitting target
/// selectivities (paper §6.2, Picasso-style selectivity-space grids).
class EquiDepthHistogram {
 public:
  EquiDepthHistogram() = default;

  /// Builds from raw values (copied and sorted internally).
  static EquiDepthHistogram Build(std::vector<double> values, int num_buckets);

  bool empty() const { return count_ == 0; }
  int64_t count() const { return count_; }
  double min() const { return min_; }
  double max() const { return max_; }

  /// Estimated fraction of rows with value <= v (linear interpolation
  /// inside buckets).
  double FractionLessEq(double v) const;

  /// Estimated fraction of rows in [lo, hi].
  double FractionRange(double lo, double hi) const;

  /// Approximate inverse CDF: a value v such that FractionLessEq(v) ~ q,
  /// q in [0, 1]. Used to generate predicates with target selectivity.
  double ValueAtFraction(double q) const;

  /// Estimated number of distinct values (from build sample).
  int64_t num_distinct() const { return num_distinct_; }

  /// Number of equi-depth buckets (0 when empty).
  int num_buckets() const {
    return bounds_.empty() ? 0 : static_cast<int>(bounds_.size()) - 1;
  }

 private:
  std::vector<double> bounds_;  ///< num_buckets + 1 boundaries
  int64_t count_ = 0;
  int64_t num_distinct_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace uqp
