#include "storage/schema.h"

namespace uqp {

int Schema::IndexOf(const std::string& name) const {
  for (int i = 0; i < num_columns(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return -1;
}

int Schema::TupleWidthBytes() const {
  int width = 24;  // fixed per-tuple header, PostgreSQL-ish
  for (const auto& c : columns_) width += c.width_bytes;
  return width;
}

Schema Schema::Concat(const Schema& left, const Schema& right) {
  std::vector<Column> cols = left.columns();
  cols.insert(cols.end(), right.columns().begin(), right.columns().end());
  return Schema(std::move(cols));
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (int i = 0; i < num_columns(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += ":";
    out += ValueTypeName(columns_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace uqp
