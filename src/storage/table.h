#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace uqp {

/// Size of one storage page in bytes (PostgreSQL default).
inline constexpr int kPageSizeBytes = 8192;

/// Lightweight non-owning view of one row inside a flat value array.
struct RowRef {
  const Value* data = nullptr;
  int num_columns = 0;

  const Value& operator[](int i) const { return data[i]; }
};

/// A row-major in-memory relation: schema + flat value array.
///
/// The page model (rows per page derived from tuple width) is what the cost
/// model and the simulated machine use to translate scans into I/O counts,
/// mirroring how PostgreSQL charges seq_page_cost / random_page_cost.
class Table {
 public:
  Table() = default;
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  // Copy/move are explicit because of the index-build mutex: the data and
  // any already-built indexes transfer, the new table gets a fresh mutex.
  Table(const Table& other) { *this = other; }
  Table& operator=(const Table& other);
  Table(Table&& other) { *this = std::move(other); }
  Table& operator=(Table&& other);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  int64_t num_rows() const {
    const int n = schema_.num_columns();
    return n == 0 ? 0 : static_cast<int64_t>(values_.size()) / n;
  }

  /// Number of pages the relation occupies under the page model.
  int64_t num_pages() const;

  /// Rows that fit on one page (>= 1).
  int64_t rows_per_page() const;

  RowRef row(int64_t r) const {
    const int n = schema_.num_columns();
    return RowRef{values_.data() + r * n, n};
  }

  const Value& at(int64_t r, int c) const {
    return values_[r * schema_.num_columns() + c];
  }

  /// Appends one row; `row` must match the schema arity.
  void AppendRow(const std::vector<Value>& row);

  /// Appends from a raw pointer of schema arity.
  void AppendRow(const Value* row);

  void Reserve(int64_t rows) {
    values_.reserve(static_cast<size_t>(rows) * schema_.num_columns());
  }

  /// Returns (building lazily) a B-tree-like ordered index on a numeric
  /// column: row ids sorted ascending by the column value. Used by the
  /// index-scan operator. Thread-safe: concurrent sample runs in the
  /// service layer may race to first use of an index; the build is
  /// serialized and the returned reference stays valid (map nodes are
  /// stable and entries are never erased).
  const std::vector<uint32_t>& OrderedIndex(int column) const;

  /// True if an ordered index has been declared for the column. Indexes are
  /// declared by the data generator on key/date columns; the planner only
  /// considers index scans on declared columns.
  bool HasIndex(int column) const { return declared_indexes_.count(column) > 0; }
  void DeclareIndex(int column) { declared_indexes_.emplace(column, true); }

  const std::vector<Value>& raw_values() const { return values_; }

 private:
  std::string name_;
  Schema schema_;
  std::vector<Value> values_;
  std::map<int, bool> declared_indexes_;
  /// Guards the lazy build of ordered_indexes_ (see OrderedIndex). The
  /// references OrderedIndex hands out outlive the lock by design: map
  /// nodes are stable and entries are never erased, so only the build and
  /// the first lookup need serialization.
  mutable Mutex index_mu_;
  mutable std::map<int, std::vector<uint32_t>> ordered_indexes_
      UQP_GUARDED_BY(index_mu_);
};

}  // namespace uqp
