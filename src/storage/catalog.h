#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "storage/histogram.h"
#include "storage/table.h"

namespace uqp {

/// Per-column statistics kept in the catalog.
struct ColumnStats {
  bool numeric = false;
  double min = 0.0;
  double max = 0.0;
  int64_t num_distinct = 0;
  EquiDepthHistogram histogram;  ///< numeric columns only
  /// For string columns: frequency of each interned id (used for equality
  /// selectivity estimation and for generating equality constants).
  std::unordered_map<int32_t, int64_t> string_freq;
};

/// Per-table statistics.
struct TableStats {
  int64_t row_count = 0;
  int64_t page_count = 0;
  std::vector<ColumnStats> columns;
};

/// ANALYZE-style statistics store for a database. The optimizer's
/// cardinality estimator and the workload generators consume these.
class Catalog {
 public:
  /// Builds full statistics for one table.
  static TableStats Analyze(const Table& table, int histogram_buckets = 64);

  void Put(const std::string& table_name, TableStats stats) {
    stats_[table_name] = std::move(stats);
  }
  bool Has(const std::string& table_name) const {
    return stats_.count(table_name) > 0;
  }
  const TableStats& Get(const std::string& table_name) const;

 private:
  std::unordered_map<std::string, TableStats> stats_;
};

}  // namespace uqp
