#include "storage/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace uqp {

EquiDepthHistogram EquiDepthHistogram::Build(std::vector<double> values,
                                             int num_buckets) {
  EquiDepthHistogram h;
  if (values.empty()) return h;
  std::sort(values.begin(), values.end());
  h.count_ = static_cast<int64_t>(values.size());
  h.min_ = values.front();
  h.max_ = values.back();
  int64_t distinct = 1;
  for (size_t i = 1; i < values.size(); ++i) {
    if (values[i] != values[i - 1]) ++distinct;
  }
  h.num_distinct_ = distinct;
  num_buckets = std::max(1, num_buckets);
  h.bounds_.resize(static_cast<size_t>(num_buckets) + 1);
  for (int b = 0; b <= num_buckets; ++b) {
    const double q = static_cast<double>(b) / num_buckets;
    const size_t idx = std::min(
        values.size() - 1,
        static_cast<size_t>(q * static_cast<double>(values.size() - 1) + 0.5));
    h.bounds_[static_cast<size_t>(b)] = values[idx];
  }
  h.bounds_.front() = h.min_;
  h.bounds_.back() = h.max_;
  return h;
}

double EquiDepthHistogram::FractionLessEq(double v) const {
  if (empty()) return 0.0;
  if (v < min_) return 0.0;
  if (v >= max_) return 1.0;
  const int num_buckets = static_cast<int>(bounds_.size()) - 1;
  // Find bucket containing v.
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), v);
  int b = static_cast<int>(it - bounds_.begin()) - 1;
  b = std::clamp(b, 0, num_buckets - 1);
  const double lo = bounds_[static_cast<size_t>(b)];
  const double hi = bounds_[static_cast<size_t>(b) + 1];
  double within = 1.0;
  if (hi > lo) within = (v - lo) / (hi - lo);
  within = std::clamp(within, 0.0, 1.0);
  return (static_cast<double>(b) + within) / num_buckets;
}

double EquiDepthHistogram::FractionRange(double lo, double hi) const {
  if (empty() || hi < lo) return 0.0;
  // Inclusive range [lo, hi]: F(hi) - F(lo-) ~ F(hi) - F(lo) + point mass.
  const double f = FractionLessEq(hi) - FractionLessEq(lo);
  const double point = num_distinct_ > 0 ? 1.0 / static_cast<double>(num_distinct_) : 0.0;
  return std::clamp(f + point * 0.5, 0.0, 1.0);
}

double EquiDepthHistogram::ValueAtFraction(double q) const {
  UQP_CHECK(!empty());
  q = std::clamp(q, 0.0, 1.0);
  const int num_buckets = static_cast<int>(bounds_.size()) - 1;
  const double pos = q * num_buckets;
  int b = std::clamp(static_cast<int>(pos), 0, num_buckets - 1);
  const double within = pos - b;
  const double lo = bounds_[static_cast<size_t>(b)];
  const double hi = bounds_[static_cast<size_t>(b) + 1];
  return lo + within * (hi - lo);
}

}  // namespace uqp
