#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace uqp {

/// Column data types. Strings are dictionary-interned (see StringPool) so a
/// Value is a fixed-size 16-byte cell and tables can be stored as flat
/// row-major arrays.
enum class ValueType : uint8_t { kInt64, kDouble, kString };

const char* ValueTypeName(ValueType t);

/// Process-wide string interning pool. Ids are dense and stable for the
/// lifetime of the process; all randomized flows in the library are
/// deterministic, so id assignment is reproducible run to run.
class StringPool {
 public:
  static StringPool& Global();

  /// Returns the id for `s`, interning it if necessary.
  int32_t Intern(const std::string& s);

  /// Returns the string for an id; the id must be valid.
  const std::string& Lookup(int32_t id) const;

  size_t size() const { return strings_.size(); }

 private:
  std::vector<std::string> strings_;
  std::unordered_map<std::string, int32_t> index_;
};

/// A fixed-size tagged scalar cell.
struct Value {
  ValueType type = ValueType::kInt64;
  union {
    int64_t i;
    double d;
    int32_t s;  ///< StringPool id
  };

  Value() : i(0) {}

  static Value Int64(int64_t v) {
    Value out;
    out.type = ValueType::kInt64;
    out.i = v;
    return out;
  }
  static Value Double(double v) {
    Value out;
    out.type = ValueType::kDouble;
    out.d = v;
    return out;
  }
  static Value String(const std::string& v) {
    Value out;
    out.type = ValueType::kString;
    out.s = StringPool::Global().Intern(v);
    return out;
  }
  static Value InternedString(int32_t id) {
    Value out;
    out.type = ValueType::kString;
    out.s = id;
    return out;
  }

  int64_t AsInt64() const;
  /// Numeric coercion: int64 promotes to double.
  double AsDouble() const;
  const std::string& AsString() const;

  /// Total order within a type: numeric order for numbers, pool-id equality
  /// semantics for strings (string ordering is only used for equality and
  /// hashing; range predicates are restricted to numeric columns).
  bool Equals(const Value& o) const;
  /// Numeric-only three-way comparison; both values must be numeric.
  int Compare(const Value& o) const;

  uint64_t Hash() const;

  std::string ToString() const;
};

static_assert(sizeof(Value) == 16, "Value must stay a compact 16-byte cell");

/// Mixes one 64-bit value into a running hash (golden-ratio combine).
/// The single mixing function behind multi-column row hashing (joins,
/// grouping) and the structural expr/plan fingerprints.
inline uint64_t HashMix64(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

}  // namespace uqp
