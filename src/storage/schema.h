#pragma once

#include <string>
#include <utility>
#include <vector>

#include "storage/value.h"

namespace uqp {

/// One column: name, type, and an on-disk width estimate used by the page
/// model (int64/double: 8 bytes; strings: a configurable nominal width).
struct Column {
  std::string name;
  ValueType type = ValueType::kInt64;
  int width_bytes = 8;

  Column() = default;
  Column(std::string n, ValueType t, int w = 0)
      : name(std::move(n)), type(t), width_bytes(w > 0 ? w : DefaultWidth(t)) {}

  static int DefaultWidth(ValueType t) {
    return t == ValueType::kString ? 16 : 8;
  }
};

/// Ordered list of columns. Column lookup by (qualified) name.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  int num_columns() const { return static_cast<int>(columns_.size()); }
  const Column& column(int i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the column named `name`, or -1.
  int IndexOf(const std::string& name) const;

  /// Tuple width in bytes (sum of column widths + a fixed header).
  int TupleWidthBytes() const;

  /// Concatenation (for join outputs).
  static Schema Concat(const Schema& left, const Schema& right);

  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

}  // namespace uqp
