#include "storage/database.h"

#include <algorithm>

#include "common/logging.h"

namespace uqp {

Table* Database::AddTable(Table table) {
  const std::string name = table.name();
  auto owned = std::make_unique<Table>(std::move(table));
  Table* ptr = owned.get();
  tables_[name] = std::move(owned);
  return ptr;
}

const Table& Database::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  UQP_CHECK(it != tables_.end()) << "no table named " << name;
  return *it->second;
}

Table* Database::GetMutableTable(const std::string& name) {
  auto it = tables_.find(name);
  UQP_CHECK(it != tables_.end()) << "no table named " << name;
  return it->second.get();
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

void Database::AnalyzeAll(int histogram_buckets) {
  for (const auto& [name, table] : tables_) {
    catalog_.Put(name, Catalog::Analyze(*table, histogram_buckets));
  }
}

int64_t Database::TotalPages() const {
  int64_t pages = 0;
  for (const auto& [_, table] : tables_) pages += table->num_pages();
  return pages;
}

}  // namespace uqp
