#include "storage/catalog.h"

#include "common/logging.h"

namespace uqp {

TableStats Catalog::Analyze(const Table& table, int histogram_buckets) {
  TableStats stats;
  stats.row_count = table.num_rows();
  stats.page_count = table.num_pages();
  const int ncols = table.schema().num_columns();
  stats.columns.resize(static_cast<size_t>(ncols));
  for (int c = 0; c < ncols; ++c) {
    ColumnStats& cs = stats.columns[static_cast<size_t>(c)];
    const ValueType type = table.schema().column(c).type;
    if (type == ValueType::kString) {
      cs.numeric = false;
      for (int64_t r = 0; r < table.num_rows(); ++r) {
        cs.string_freq[table.at(r, c).s] += 1;
      }
      cs.num_distinct = static_cast<int64_t>(cs.string_freq.size());
    } else {
      cs.numeric = true;
      std::vector<double> values;
      values.reserve(static_cast<size_t>(table.num_rows()));
      for (int64_t r = 0; r < table.num_rows(); ++r) {
        values.push_back(table.at(r, c).AsDouble());
      }
      cs.histogram = EquiDepthHistogram::Build(std::move(values), histogram_buckets);
      cs.min = cs.histogram.min();
      cs.max = cs.histogram.max();
      cs.num_distinct = cs.histogram.num_distinct();
    }
  }
  return stats;
}

const TableStats& Catalog::Get(const std::string& table_name) const {
  auto it = stats_.find(table_name);
  UQP_CHECK(it != stats_.end()) << "no stats for table " << table_name;
  return it->second;
}

}  // namespace uqp
