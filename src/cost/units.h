#pragma once

#include <string>

#include "math/gaussian.h"

namespace uqp {

/// Indexes of the five PostgreSQL cost units (paper Table 1).
enum CostUnit : int {
  kCostSeqPage = 0,   ///< c_s — I/O cost to sequentially access a page
  kCostRandPage = 1,  ///< c_r — I/O cost to randomly access a page
  kCostTuple = 2,     ///< c_t — CPU cost to process a tuple
  kCostIndexTuple = 3,///< c_i — CPU cost to process a tuple via index access
  kCostOperator = 4,  ///< c_o — CPU cost to perform an operation (e.g. hash)
};
inline constexpr int kNumCostUnits = 5;

const char* CostUnitName(int unit);
const char* CostUnitSymbol(int unit);

/// Calibrated cost units as random variables (paper §3.1): each unit is
/// modeled N(mu, sigma^2), estimated from repeated calibration-query runs.
struct CostUnits {
  Gaussian units[kNumCostUnits];

  const Gaussian& Get(int unit) const { return units[unit]; }
  Gaussian& Get(int unit) { return units[unit]; }

  /// Point-estimate view (means only), for the planner.
  double MeanDot(double ns, double nr, double nt, double ni, double no) const {
    return ns * units[0].mean + nr * units[1].mean + nt * units[2].mean +
           ni * units[3].mean + no * units[4].mean;
  }

  /// Returns a copy with all variances zeroed (the NoVar[c] ablation,
  /// paper §6.3.3 V2).
  CostUnits WithoutVariance() const;

  std::string ToString() const;
};

}  // namespace uqp
