#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "cost/units.h"

namespace uqp {

/// One immutable, epoch-stamped calibration artifact: the five cost-unit
/// distributions plus the metadata of the fit that produced them.
///
/// Calibration used to be construction-time state baked into every
/// pipeline stage; it is now a first-class versioned value. Exactly one
/// snapshot is "current" per pipeline at any instant, resolved once per
/// prediction via an atomic shared_ptr load, so
///   - a prediction never mixes units from two epochs (it sees one
///     snapshot object for its whole stage-3 combination, and records it
///     in Prediction::calibration),
///   - publishing a new snapshot is a pointer swap — no pipeline rebuild,
///     no service restart, and no invalidation of the unit-independent
///     stage-1/2 artifacts (see PredictionService::PublishCalibration),
///   - epochs are strictly monotone per owner, so an epoch number alone
///     identifies a snapshot (equal epoch implies same units).
struct CalibrationSnapshot {
  /// Strictly increasing per publishing owner; the initial offline
  /// calibration is epoch 1 (0 is reserved for "no calibration").
  uint64_t epoch = 0;
  CostUnits units;

  // ----- fit metadata -----
  /// Where the units came from: "offline" for the construction-time fit,
  /// "drift" for a feedback-triggered recalibration, or caller-supplied.
  std::string source;
  /// Feedback reports observed when this snapshot was published (0 for
  /// the offline fit) — ties a drift recalibration back to the point in
  /// the observed-runtime stream that triggered it.
  uint64_t reports_at_publish = 0;

  std::string ToString() const;
};

/// Snapshots are shared, immutable and swapped atomically.
using CalibrationPtr = std::shared_ptr<const CalibrationSnapshot>;

/// Builds an immutable snapshot. Epoch numbering is the publisher's job
/// (PredictionService::PublishCalibration increments under its own lock).
CalibrationPtr MakeCalibrationSnapshot(CostUnits units, uint64_t epoch,
                                       std::string source,
                                       uint64_t reports_at_publish = 0);

/// Canonical byte serialization (doubles by bit pattern): two snapshots
/// serialize equal iff their units are bit-identical. The feedback
/// determinism tests compare recalibrated snapshots across thread counts
/// with this.
std::string CalibrationSnapshotBytes(const CalibrationSnapshot& snapshot);

}  // namespace uqp
