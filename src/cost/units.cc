#include "cost/units.h"

#include <cstdio>

namespace uqp {

const char* CostUnitName(int unit) {
  switch (unit) {
    case kCostSeqPage:
      return "sequential page I/O";
    case kCostRandPage:
      return "random page I/O";
    case kCostTuple:
      return "CPU per tuple";
    case kCostIndexTuple:
      return "CPU per index tuple";
    case kCostOperator:
      return "CPU per operation";
  }
  return "?";
}

const char* CostUnitSymbol(int unit) {
  switch (unit) {
    case kCostSeqPage:
      return "c_s";
    case kCostRandPage:
      return "c_r";
    case kCostTuple:
      return "c_t";
    case kCostIndexTuple:
      return "c_i";
    case kCostOperator:
      return "c_o";
  }
  return "?";
}

CostUnits CostUnits::WithoutVariance() const {
  CostUnits out = *this;
  for (auto& g : out.units) g.variance = 0.0;
  return out;
}

std::string CostUnits::ToString() const {
  std::string out;
  char buf[128];
  for (int u = 0; u < kNumCostUnits; ++u) {
    std::snprintf(buf, sizeof(buf), "%s = %.6g ms (sd %.3g)\n",
                  CostUnitSymbol(u), units[u].mean, units[u].stddev());
    out += buf;
  }
  return out;
}

}  // namespace uqp
