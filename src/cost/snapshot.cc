#include "cost/snapshot.h"

#include <cstdio>
#include <cstring>
#include <utility>

namespace uqp {

namespace {

void AppendSnapshotDouble(std::string* out, double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((bits >> (8 * i)) & 0xff));
  }
}

}  // namespace

std::string CalibrationSnapshot::ToString() const {
  char head[128];
  std::snprintf(head, sizeof head,
                "calibration epoch %llu (%s, %llu reports):\n",
                static_cast<unsigned long long>(epoch),
                source.empty() ? "?" : source.c_str(),
                static_cast<unsigned long long>(reports_at_publish));
  return std::string(head) + units.ToString();
}

CalibrationPtr MakeCalibrationSnapshot(CostUnits units, uint64_t epoch,
                                       std::string source,
                                       uint64_t reports_at_publish) {
  auto snapshot = std::make_shared<CalibrationSnapshot>();
  snapshot->epoch = epoch;
  snapshot->units = units;
  snapshot->source = std::move(source);
  snapshot->reports_at_publish = reports_at_publish;
  return snapshot;
}

std::string CalibrationSnapshotBytes(const CalibrationSnapshot& snapshot) {
  std::string bytes;
  bytes.reserve(8 + 16 * kNumCostUnits);
  for (int i = 0; i < 8; ++i) {
    bytes.push_back(static_cast<char>((snapshot.epoch >> (8 * i)) & 0xff));
  }
  for (int u = 0; u < kNumCostUnits; ++u) {
    AppendSnapshotDouble(&bytes, snapshot.units.Get(u).mean);
    AppendSnapshotDouble(&bytes, snapshot.units.Get(u).variance);
  }
  return bytes;
}

}  // namespace uqp
