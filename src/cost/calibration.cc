#include "cost/calibration.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "math/stats.h"

namespace uqp {

namespace {

Gaussian FitFromSamples(const std::vector<double>& samples) {
  Gaussian g;
  g.mean = Mean(samples);
  g.variance = SampleVariance(samples);
  return g;
}

}  // namespace

CalibrationReport Calibrator::CalibrateWithReportAt(
    int concurrency, const CalibrationOptions& options) {
  UQP_CHECK(!options.tuple_counts.empty());
  UQP_CHECK(options.repetitions_per_size >= 2);
  UQP_CHECK(concurrency >= 1);
  CalibrationReport report;

  auto run = [this, concurrency](const ResourceVector& counters) {
    return machine_->ExecuteOnce({counters}, concurrency);
  };

  // --- c_t: in-memory SELECT * ---
  for (double n : options.tuple_counts) {
    for (int rep = 0; rep < options.repetitions_per_size; ++rep) {
      ResourceVector rv;
      rv.nt = n;
      const double tau = run(rv);
      report.samples[kCostTuple].push_back(tau / n);
    }
  }
  const Gaussian ct = FitFromSamples(report.samples[kCostTuple]);

  // --- c_o: in-memory aggregation (nt = N, no = 2N) ---
  for (double n : options.tuple_counts) {
    for (int rep = 0; rep < options.repetitions_per_size; ++rep) {
      ResourceVector rv;
      rv.nt = n;
      rv.no = 2.0 * n;
      const double tau = run(rv);
      report.samples[kCostOperator].push_back(
          std::max(0.0, tau - n * ct.mean) / (2.0 * n));
    }
  }
  const Gaussian co = FitFromSamples(report.samples[kCostOperator]);

  // --- c_i: in-memory index traversal (nt = N, ni = N) ---
  for (double n : options.tuple_counts) {
    for (int rep = 0; rep < options.repetitions_per_size; ++rep) {
      ResourceVector rv;
      rv.nt = n;
      rv.ni = n;
      const double tau = run(rv);
      report.samples[kCostIndexTuple].push_back(
          std::max(0.0, tau - n * ct.mean) / n);
    }
  }
  const Gaussian ci = FitFromSamples(report.samples[kCostIndexTuple]);

  // --- c_s: cold sequential scan (ns = P, nt = N, no = N) ---
  for (double n : options.tuple_counts) {
    const double pages = std::max(1.0, n / options.rows_per_page);
    for (int rep = 0; rep < options.repetitions_per_size; ++rep) {
      ResourceVector rv;
      rv.ns = pages;
      rv.nt = n;
      rv.no = n;
      const double tau = run(rv);
      report.samples[kCostSeqPage].push_back(
          std::max(0.0, tau - n * (ct.mean + co.mean)) / pages);
    }
  }
  const Gaussian cs = FitFromSamples(report.samples[kCostSeqPage]);

  // --- c_r: cold unclustered index scan (nr = N, nt = N, ni = N) ---
  for (double n : options.tuple_counts) {
    for (int rep = 0; rep < options.repetitions_per_size; ++rep) {
      ResourceVector rv;
      rv.nr = n;
      rv.nt = n;
      rv.ni = n;
      const double tau = run(rv);
      report.samples[kCostRandPage].push_back(
          std::max(0.0, tau - n * (ct.mean + ci.mean)) / n);
    }
  }
  const Gaussian cr = FitFromSamples(report.samples[kCostRandPage]);

  report.units.Get(kCostSeqPage) = cs;
  report.units.Get(kCostRandPage) = cr;
  report.units.Get(kCostTuple) = ct;
  report.units.Get(kCostIndexTuple) = ci;
  report.units.Get(kCostOperator) = co;
  return report;
}

}  // namespace uqp
