#pragma once

#include <vector>

#include "cost/units.h"
#include "hw/machine.h"

namespace uqp {

/// Options for the calibration procedure.
struct CalibrationOptions {
  /// Sizes of the calibration relations (tuples). Several sizes, each
  /// repeated, provide the i.i.d. samples of each cost unit (paper §3.1,
  /// Example 3: "we can use different R's here").
  std::vector<double> tuple_counts = {20000, 50000, 100000, 200000};
  int repetitions_per_size = 8;
  /// Page density assumed by the disk-resident calibration queries.
  double rows_per_page = 40.0;
};

/// Calibration result: the fitted Gaussians plus the raw per-unit samples.
struct CalibrationReport {
  CostUnits units;
  std::vector<double> samples[kNumCostUnits];
};

/// The paper's calibration framework, extended from point estimates to
/// full distributions (§3.1). Five dedicated calibration query profiles
/// isolate the cost units one at a time:
///
///   1. in-memory SELECT *           -> c_t   (nt = N)
///   2. in-memory aggregation        -> c_o   (nt = N, no = 2N)
///   3. in-memory index traversal    -> c_i   (nt = N, ni = N)
///   4. cold sequential scan         -> c_s   (ns = P, nt = N, no = N)
///   5. cold unclustered index scan  -> c_r   (nr = N, nt = N, ni = N)
///
/// Each profile is executed repeatedly on the machine; the unit value is
/// solved per run by subtracting the already-calibrated units, and the
/// observed values are treated as i.i.d. samples of the unit's
/// distribution: mean and sample variance give N(mu, sigma^2).
class Calibrator {
 public:
  explicit Calibrator(SimulatedMachine* machine) : machine_(machine) {}

  CalibrationReport CalibrateWithReport(
      const CalibrationOptions& options = CalibrationOptions()) {
    return CalibrateWithReportAt(1, options);
  }

  /// Concurrency-aware calibration (paper §8 future work): runs the same
  /// calibration queries while `concurrency` queries share the machine,
  /// so the fitted N(mu, sigma^2) per unit absorbs the interference —
  /// "viewing the interference between queries as changing the
  /// distribution of the c's". Feed the result to a Predictor to predict
  /// running times at that multiprogramming level.
  CalibrationReport CalibrateWithReportAt(
      int concurrency, const CalibrationOptions& options = CalibrationOptions());

  CostUnits Calibrate(const CalibrationOptions& options = CalibrationOptions()) {
    return CalibrateWithReport(options).units;
  }

  CostUnits CalibrateAt(int concurrency,
                        const CalibrationOptions& options = CalibrationOptions()) {
    return CalibrateWithReportAt(concurrency, options).units;
  }

 private:
  SimulatedMachine* machine_;
};

}  // namespace uqp
