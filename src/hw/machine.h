#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "engine/cost_model.h"
#include "engine/executor.h"
#include "math/rng.h"

namespace uqp {

/// True latent distribution of one cost unit on a machine: mean (ms per
/// unit of work) and coefficient of variation.
struct CostUnitTruth {
  double mean = 0.0;
  double cv = 0.0;

  double stddev() const { return mean * cv; }
};

/// A machine profile: the ground-truth cost-unit distributions plus the
/// structured effects that the additive cost model does not capture.
///
/// This is the substitution for the paper's physical PC1/PC2 (§6.1): query
/// execution time is produced by drawing cost units from their latent
/// distributions and applying CPU/I-O overlap, buffer-cache hits on random
/// reads, and multiplicative noise. The predictor never sees these
/// parameters — it calibrates the cost units through calibration queries,
/// exactly as on real hardware. The three error sources of the paper are
/// therefore all present: random c's, selectivity estimation error, and
/// cost-model (g) error.
struct MachineProfile {
  std::string name;
  CostUnitTruth cs;  ///< sequential page I/O
  CostUnitTruth cr;  ///< random page I/O (uncached)
  CostUnitTruth ct;  ///< CPU per tuple
  CostUnitTruth ci;  ///< CPU per index entry
  CostUnitTruth co;  ///< CPU per operator op

  /// Fraction of min(cpu, io) hidden by CPU/I-O interleaving; the additive
  /// cost model (Eq. 1) ignores this — paper §1 names it explicitly as a
  /// modeling error.
  double overlap_discount = 0.2;
  /// Probability that a random page access hits the buffer cache.
  double buffer_hit_rate = 0.3;
  /// Cached random access costs this fraction of an uncached one.
  double cached_cost_factor = 0.02;
  /// Per-operator jitter of cost units around the per-run draw.
  double per_op_jitter_cv = 0.05;
  /// Multiplicative noise CV on total query time.
  double noise_cv = 0.03;

  // ----- concurrency (multiprogramming) behaviour -----
  /// Physical cores; CPU cost units inflate once concurrent queries
  /// exceed this.
  int cores = 2;
  /// Per-extra-query inflation of the I/O units (disk arm contention).
  double io_contention = 0.45;
  /// Per-oversubscribed-query inflation of the CPU units.
  double cpu_contention = 0.85;
  /// Buffer-cache pollution: hit rate divides by 1 + this * (k - 1).
  double cache_pollution = 0.25;

  /// Dual-core 1.86 GHz, 4 GB RAM, slow disk (paper PC1).
  static MachineProfile PC1();
  /// 8-core 2.40 GHz, 16 GB RAM, faster disk (paper PC2).
  static MachineProfile PC2();

  /// Copy of this profile with every cost-unit mean scaled by `factor`
  /// (CVs and structured effects unchanged) — hardware drift as "the same
  /// machine, uniformly slower/faster" (throttling, contention, a disk
  /// replacement). The drift-aware recalibration tests and the
  /// drift_storm bench inject mid-run drift with this.
  MachineProfile WithUnitMeansScaled(double factor) const;

  const CostUnitTruth& unit(int idx) const;  ///< 0..4 = cs,cr,ct,ci,co
};

/// Executes resource-counter workloads against a machine profile,
/// producing wall-clock-style latencies (in milliseconds).
class SimulatedMachine {
 public:
  SimulatedMachine(MachineProfile profile, uint64_t seed);

  const MachineProfile& profile() const { return profile_; }

  /// Overrides the buffer hit rate (the harness lowers it when the
  /// database outgrows the machine's memory).
  void set_buffer_hit_rate(double rate) { profile_.buffer_hit_rate = rate; }

  /// Injects hardware drift in place: every latent cost-unit mean scales
  /// by `factor` from now on (see MachineProfile::WithUnitMeansScaled).
  /// Executions already returned are unaffected; the RNG stream is not
  /// perturbed, so a fixed execution schedule stays reproducible.
  void ApplyDrift(double factor) {
    profile_ = profile_.WithUnitMeansScaled(factor);
  }

  /// One execution of a query given its per-operator resource counters.
  /// Cost units are drawn once per run (system state) with small
  /// per-operator jitter; CPU/I-O overlap and cache effects applied.
  ///
  /// `concurrency` is the multiprogramming level: with k queries sharing
  /// the machine, the latent cost units inflate (I/O contention, CPU
  /// oversubscription beyond `cores`, buffer-cache pollution) and become
  /// more variable — the paper's §8 view of interference as "changing the
  /// distribution of the c's". The extension is exercised by
  /// ConcurrentCalibrator and bench_ext_concurrency.
  double ExecuteOnce(const std::vector<ResourceVector>& ops, int concurrency = 1);

  /// Convenience: executes the operators of an ExecResult.
  double ExecuteOnce(const ExecResult& result, int concurrency = 1);

  /// Paper protocol: average of `runs` independent executions.
  double ExecuteAveraged(const std::vector<ResourceVector>& ops, int runs = 5,
                         int concurrency = 1);
  double ExecuteAveraged(const ExecResult& result, int runs = 5,
                         int concurrency = 1);

 private:
  MachineProfile profile_;
  Rng rng_;
};

}  // namespace uqp
