#include "hw/machine.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace uqp {

MachineProfile MachineProfile::PC1() {
  MachineProfile p;
  p.name = "PC1";
  // Milliseconds per unit. Slow 2007-era machine: ~160 MB/s sequential,
  // ~5 ms seek, modest CPU.
  p.cs = {0.050, 0.15};
  p.cr = {5.000, 0.35};
  p.ct = {0.00050, 0.08};
  p.ci = {0.00025, 0.08};
  p.co = {0.00010, 0.08};
  p.overlap_discount = 0.18;
  p.buffer_hit_rate = 0.35;
  p.cores = 2;
  return p;
}

MachineProfile MachineProfile::PC2() {
  MachineProfile p;
  p.name = "PC2";
  p.cs = {0.028, 0.12};
  p.cr = {3.200, 0.30};
  p.ct = {0.00030, 0.06};
  p.ci = {0.00015, 0.06};
  p.co = {0.00006, 0.06};
  p.overlap_discount = 0.22;
  p.buffer_hit_rate = 0.60;
  p.cores = 8;
  return p;
}

MachineProfile MachineProfile::WithUnitMeansScaled(double factor) const {
  UQP_CHECK(factor > 0.0);
  MachineProfile p = *this;
  p.cs.mean *= factor;
  p.cr.mean *= factor;
  p.ct.mean *= factor;
  p.ci.mean *= factor;
  p.co.mean *= factor;
  return p;
}

const CostUnitTruth& MachineProfile::unit(int idx) const {
  switch (idx) {
    case 0:
      return cs;
    case 1:
      return cr;
    case 2:
      return ct;
    case 3:
      return ci;
    case 4:
      return co;
  }
  UQP_CHECK(false) << "bad cost unit index " << idx;
  return cs;
}

SimulatedMachine::SimulatedMachine(MachineProfile profile, uint64_t seed)
    : profile_(std::move(profile)), rng_(seed) {}

double SimulatedMachine::ExecuteOnce(const std::vector<ResourceVector>& ops,
                                     int concurrency) {
  UQP_CHECK(concurrency >= 1);
  // Multiprogramming inflates the latent unit means and their dispersion
  // (paper §8: interference changes the distribution of the c's).
  const double extra = static_cast<double>(concurrency - 1);
  const double oversub =
      std::max(0.0, static_cast<double>(concurrency - profile_.cores)) /
      std::max(1, profile_.cores);
  const double io_scale = 1.0 + profile_.io_contention * extra;
  const double cpu_scale = 1.0 + profile_.cpu_contention * oversub;
  const double sd_scale = std::sqrt(static_cast<double>(concurrency));
  const double scale_for[5] = {io_scale, io_scale, cpu_scale, cpu_scale,
                               cpu_scale};

  // Per-run system state: one draw of each cost unit (truncated positive).
  double run_units[5];
  for (int u = 0; u < 5; ++u) {
    const CostUnitTruth& truth = profile_.unit(u);
    double v = rng_.NextGaussian(truth.mean * scale_for[u],
                                 truth.stddev() * scale_for[u] * sd_scale);
    v = std::max(v, 0.05 * truth.mean);
    run_units[u] = v;
  }

  const double effective_hit_rate =
      profile_.buffer_hit_rate / (1.0 + profile_.cache_pollution * extra);

  double total = 0.0;
  for (const ResourceVector& op : ops) {
    // Per-operator jitter around the run draw.
    double units[5];
    for (int u = 0; u < 5; ++u) {
      double v = run_units[u] *
                 (1.0 + rng_.NextGaussian(0.0, profile_.per_op_jitter_cv));
      units[u] = std::max(v, 0.01 * profile_.unit(u).mean);
    }
    // Buffer-cache effect on random page reads: per-operator cache luck.
    double hit = effective_hit_rate + rng_.NextGaussian(0.0, 0.10);
    hit = std::clamp(hit, 0.0, 0.98);
    const double effective_cr =
        units[1] * (hit * profile_.cached_cost_factor + (1.0 - hit));

    const double io_time = op.ns * units[0] + op.nr * effective_cr;
    const double cpu_time = op.nt * units[2] + op.ni * units[3] + op.no * units[4];
    // CPU/I-O interleaving hides part of the smaller component.
    const double overlapped = std::max(io_time, cpu_time) +
                              (1.0 - profile_.overlap_discount) *
                                  std::min(io_time, cpu_time);
    total += overlapped;
  }
  // Multiplicative noise on the whole query (scheduler, checkpoints, ...).
  total *= std::max(0.2, 1.0 + rng_.NextGaussian(0.0, profile_.noise_cv));
  return total;
}

double SimulatedMachine::ExecuteOnce(const ExecResult& result, int concurrency) {
  std::vector<ResourceVector> ops;
  ops.reserve(result.ops.size());
  for (const OpStats& st : result.ops) ops.push_back(st.actual);
  return ExecuteOnce(ops, concurrency);
}

double SimulatedMachine::ExecuteAveraged(const std::vector<ResourceVector>& ops,
                                         int runs, int concurrency) {
  UQP_CHECK(runs >= 1);
  double acc = 0.0;
  for (int i = 0; i < runs; ++i) acc += ExecuteOnce(ops, concurrency);
  return acc / runs;
}

double SimulatedMachine::ExecuteAveraged(const ExecResult& result, int runs,
                                         int concurrency) {
  std::vector<ResourceVector> ops;
  ops.reserve(result.ops.size());
  for (const OpStats& st : result.ops) ops.push_back(st.actual);
  return ExecuteAveraged(ops, runs, concurrency);
}

}  // namespace uqp
