#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "math/rng.h"
#include "storage/database.h"

namespace uqp {

class TaskRunner;  // engine/executor.h

/// Options for building the offline sample tables.
struct SampleOptions {
  /// Fraction of each relation taken as sample (paper §6.3's SR knob).
  double sampling_ratio = 0.05;
  /// Independent sample tables kept per relation. The estimator binds a
  /// different copy to each occurrence of a relation in a plan, which is
  /// what makes Xl ⊥ Xr when the two sides share relations (paper §5.1.2).
  int copies_per_relation = 2;
  uint64_t seed = 20140827;  // arXiv date of the paper, why not
  /// Floor on sample rows per relation so S²_n (which divides by n-1)
  /// stays defined.
  int64_t min_sample_rows = 4;
  /// Threads for building the sample tables (1 = sequential, <= 0 =
  /// hardware concurrency). Each (relation, copy) draws its permutation
  /// from an Rng substream keyed by its position in the sorted relation
  /// order, so the built samples are identical at every thread count.
  int num_threads = 1;
};

/// Offline tuple-level samples, materialized one Table per (relation,
/// copy). Row i of a sample table is the sample tuple with index i —
/// provenance ids from the executor index directly into it (the tuple
/// annotations of paper §3.2.2).
class SampleDb {
 public:
  /// Builds the samples, fanning (relation, copy) table builds across
  /// `task_runner` (or an ephemeral pool) when options.num_threads != 1.
  /// The sample contents depend only on options.seed — not on the thread
  /// count, the runner, or the database's relation enumeration order.
  static SampleDb Build(const Database& db, const SampleOptions& options,
                        TaskRunner* task_runner = nullptr);

  const SampleOptions& options() const { return options_; }

  int copies(const std::string& relation) const;
  const Table& Get(const std::string& relation, int copy) const;

  int64_t SampleRows(const std::string& relation) const;
  int64_t BaseRows(const std::string& relation) const;

  /// Total pages across sample tables (one copy each) — used for the
  /// sampling-overhead experiments.
  int64_t TotalSamplePages() const;

 private:
  SampleOptions options_;
  struct Entry {
    std::vector<std::unique_ptr<Table>> copies;
    int64_t base_rows = 0;
  };
  std::unordered_map<std::string, Entry> entries_;
};

}  // namespace uqp
