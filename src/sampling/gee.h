#pragma once

#include <cstdint>
#include <unordered_map>

namespace uqp {

/// Result of a distinct-value estimation.
struct GeeResult {
  double distinct = 0.0;
  /// Heuristic variance from a half-sample split (see EstimateDistinct).
  double variance = 0.0;
};

/// Accumulates (hashed) group keys from a sample and estimates the number
/// of distinct keys in the full population with the GEE estimator of
/// Charikar, Chaudhuri, Motwani, Narasayya (PODS 2000):
///
///     D̂_GEE = sqrt(N / n) * f_1 + Σ_{j >= 2} f_j
///
/// where f_j is the number of values appearing exactly j times in a sample
/// of n rows out of N. GEE has the ratio-error guarantee
/// max(D̂/D, D/D̂) <= O(sqrt(N/n)).
///
/// The paper names exactly this estimator as the planned replacement for
/// the optimizer fallback on aggregates (§3.2.2): "we are working to
/// incorporate sampling-based estimators for aggregates (e.g., the GEE
/// estimator [11]) into our current framework."
///
/// Uncertainty: GEE has no closed-form variance, so EstimateDistinct also
/// reports a half-sample probe — the keys are split into two halves by a
/// hash bit, GEE is run on each half, and Var ≈ (D̂_1 - D̂_2)² / 4. This is
/// a deliberately simple plug-in in the spirit of S²_n, not a rigorous
/// estimator; it vanishes as the halves agree.
class GeeDistinctCounter {
 public:
  /// Adds one sample row's group-key hash.
  void Add(uint64_t key_hash);

  int64_t sample_rows() const { return n_; }
  int64_t sample_distinct() const { return static_cast<int64_t>(counts_.size()); }

  /// Estimates the distinct count in a population of `full_rows` rows.
  GeeResult Estimate(double full_rows) const;

 private:
  static double GeeFormula(const std::unordered_map<uint64_t, int64_t>& counts,
                           double n, double full_rows);

  std::unordered_map<uint64_t, int64_t> counts_;
  int64_t n_ = 0;
};

}  // namespace uqp
