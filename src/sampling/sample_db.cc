#include "sampling/sample_db.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace uqp {

SampleDb SampleDb::Build(const Database& db, const SampleOptions& options) {
  UQP_CHECK(options.sampling_ratio > 0.0 && options.sampling_ratio <= 1.0)
      << "sampling ratio must be in (0, 1]";
  UQP_CHECK(options.copies_per_relation >= 1);
  SampleDb out;
  out.options_ = options;
  Rng rng(options.seed);

  for (const std::string& name : db.TableNames()) {
    const Table& base = db.GetTable(name);
    const int64_t rows = base.num_rows();
    int64_t sample_rows = static_cast<int64_t>(
        std::ceil(options.sampling_ratio * static_cast<double>(rows)));
    sample_rows = std::clamp<int64_t>(sample_rows,
                                      std::min(rows, options.min_sample_rows), rows);
    Entry entry;
    entry.base_rows = rows;
    for (int c = 0; c < options.copies_per_relation; ++c) {
      auto sample = std::make_unique<Table>(name + "#s" + std::to_string(c),
                                            base.schema());
      sample->Reserve(sample_rows);
      // Simple random sample without replacement: take the first
      // sample_rows entries of a random permutation.
      std::vector<uint32_t> perm = rng.Permutation(static_cast<uint32_t>(rows));
      for (int64_t i = 0; i < sample_rows; ++i) {
        sample->AppendRow(base.row(perm[static_cast<size_t>(i)]).data);
      }
      entry.copies.push_back(std::move(sample));
    }
    out.entries_.emplace(name, std::move(entry));
  }
  return out;
}

int SampleDb::copies(const std::string& relation) const {
  auto it = entries_.find(relation);
  UQP_CHECK(it != entries_.end()) << "no samples for relation " << relation;
  return static_cast<int>(it->second.copies.size());
}

const Table& SampleDb::Get(const std::string& relation, int copy) const {
  auto it = entries_.find(relation);
  UQP_CHECK(it != entries_.end()) << "no samples for relation " << relation;
  const auto& copies = it->second.copies;
  return *copies[static_cast<size_t>(copy % static_cast<int>(copies.size()))];
}

int64_t SampleDb::SampleRows(const std::string& relation) const {
  return Get(relation, 0).num_rows();
}

int64_t SampleDb::BaseRows(const std::string& relation) const {
  auto it = entries_.find(relation);
  UQP_CHECK(it != entries_.end());
  return it->second.base_rows;
}

int64_t SampleDb::TotalSamplePages() const {
  int64_t pages = 0;
  for (const auto& [_, entry] : entries_) {
    if (!entry.copies.empty()) pages += entry.copies[0]->num_pages();
  }
  return pages;
}

}  // namespace uqp
