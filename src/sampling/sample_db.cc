#include "sampling/sample_db.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/logging.h"
#include "engine/executor.h"

namespace uqp {

SampleDb SampleDb::Build(const Database& db, const SampleOptions& options,
                         TaskRunner* task_runner) {
  UQP_CHECK(options.sampling_ratio > 0.0 && options.sampling_ratio <= 1.0)
      << "sampling ratio must be in (0, 1]";
  UQP_CHECK(options.copies_per_relation >= 1);
  SampleDb out;
  out.options_ = options;
  const Rng base_rng(options.seed);

  // Stable substream indexing: relations in sorted name order, one
  // substream per (relation, copy). Each build unit's randomness depends
  // only on (seed, index) — not on which thread draws first or on the
  // database's enumeration order — so the samples are identical at any
  // thread count.
  std::vector<std::string> names = db.TableNames();
  // Canonicalizes the relation order (distinct names, total order) that
  // the substream indexing above depends on.
  // det-lint: sorted-output
  std::sort(names.begin(), names.end());
  const int copies = options.copies_per_relation;

  struct BuildUnit {
    const std::string* name = nullptr;
    Entry* entry = nullptr;
    int copy = 0;
    uint64_t substream = 0;
  };
  std::vector<BuildUnit> units;
  units.reserve(names.size() * static_cast<size_t>(copies));
  for (size_t t = 0; t < names.size(); ++t) {
    const Table& base = db.GetTable(names[t]);
    Entry& entry = out.entries_[names[t]];
    entry.base_rows = base.num_rows();
    entry.copies.resize(static_cast<size_t>(copies));
    for (int c = 0; c < copies; ++c) {
      units.push_back(BuildUnit{&names[t], &entry, c,
                                t * static_cast<uint64_t>(copies) +
                                    static_cast<uint64_t>(c)});
    }
  }

  const auto build_unit = [&](const BuildUnit& u) {
    const Table& base = db.GetTable(*u.name);
    const int64_t rows = base.num_rows();
    int64_t sample_rows = static_cast<int64_t>(
        std::ceil(options.sampling_ratio * static_cast<double>(rows)));
    sample_rows = std::clamp<int64_t>(
        sample_rows, std::min(rows, options.min_sample_rows), rows);
    auto sample = std::make_unique<Table>(
        *u.name + "#s" + std::to_string(u.copy), base.schema());
    sample->Reserve(sample_rows);
    // Simple random sample without replacement: take the first
    // sample_rows entries of a random permutation.
    Rng rng = base_rng.SubStream(u.substream);
    std::vector<uint32_t> perm = rng.Permutation(static_cast<uint32_t>(rows));
    for (int64_t i = 0; i < sample_rows; ++i) {
      sample->AppendRow(base.row(perm[static_cast<size_t>(i)]).data);
    }
    u.entry->copies[static_cast<size_t>(u.copy)] = std::move(sample);
  };

  const int threads = ResolveNumThreads(options.num_threads);
  if (threads > 1 && units.size() > 1) {
    TaskRunner* runner = task_runner;
    std::unique_ptr<MorselPool> owned;
    if (runner == nullptr) {
      owned = std::make_unique<MorselPool>(threads);
      runner = owned.get();
    }
    runner->RunTasks(static_cast<int64_t>(units.size()), [&](int64_t i) {
      build_unit(units[static_cast<size_t>(i)]);
    });
  } else {
    for (const BuildUnit& u : units) build_unit(u);
  }
  return out;
}

int SampleDb::copies(const std::string& relation) const {
  auto it = entries_.find(relation);
  UQP_CHECK(it != entries_.end()) << "no samples for relation " << relation;
  return static_cast<int>(it->second.copies.size());
}

const Table& SampleDb::Get(const std::string& relation, int copy) const {
  auto it = entries_.find(relation);
  UQP_CHECK(it != entries_.end()) << "no samples for relation " << relation;
  const auto& copies = it->second.copies;
  return *copies[static_cast<size_t>(copy % static_cast<int>(copies.size()))];
}

int64_t SampleDb::SampleRows(const std::string& relation) const {
  return Get(relation, 0).num_rows();
}

int64_t SampleDb::BaseRows(const std::string& relation) const {
  auto it = entries_.find(relation);
  UQP_CHECK(it != entries_.end());
  return it->second.base_rows;
}

int64_t SampleDb::TotalSamplePages() const {
  int64_t pages = 0;
  // Integer sum over the entries; addition order cannot change it.
  // det-lint: order-independent
  for (const auto& [_, entry] : entries_) {
    if (!entry.copies.empty()) pages += entry.copies[0]->num_pages();
  }
  return pages;
}

}  // namespace uqp
