#include "sampling/estimator.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <unordered_map>

#include "common/logging.h"
#include "sampling/gee.h"

namespace uqp {

namespace {

double SafeSel(double rho) { return std::clamp(rho, 0.0, 1.0); }

/// Rows per Q-counting shard: the provenance scan of one join output is
/// sharded into ranges of this many rows.
constexpr int64_t kCountMorselRows = 8192;

}  // namespace

int64_t AutoSampleBatchSize(int64_t max_leaf_sample_rows) {
  // Samples small enough to be one cache-friendly block run as a single
  // morsel per operator: dispatch/merge overhead would dominate any
  // sharding gain at this size.
  if (max_leaf_sample_rows <= 4096) return std::max<int64_t>(1, max_leaf_sample_rows);
  // Larger samples target ~64 morsels over the widest scan so a pool has
  // work to steal, clamped to keep chunks in a vectorization-friendly
  // range. Depends only on sample cardinality, never on thread count.
  return std::clamp<int64_t>(max_leaf_sample_rows / 64, 1024, 16384);
}

StatusOr<PlanEstimates> SamplingEstimator::Estimate(
    const Plan& plan, const std::function<bool()>* cancelled) const {
  if (plan.root() == nullptr || plan.root()->id != 0) {
    return Status::FailedPrecondition("plan must be finalized");
  }

  // Bind one sample table per leaf occurrence; repeated appearances of the
  // same relation get distinct copies so their estimates stay independent
  // (paper §5.1.2).
  const std::vector<const PlanNode*> leaves = plan.Leaves();
  std::vector<const Table*> overrides(leaves.size(), nullptr);
  std::unordered_map<std::string, int> occurrence;
  for (size_t i = 0; i < leaves.size(); ++i) {
    const int occ = occurrence[leaves[i]->table_name]++;
    overrides[i] = &samples_->Get(leaves[i]->table_name, occ);
  }

  // One pool covers the whole estimate: the executor's intra-query shards
  // and the Q-counting shards below. When the caller supplied a runner
  // (the service layer sharing its worker pool), use it; otherwise an
  // ephemeral pool lives for this call.
  const int threads = ResolveNumThreads(num_threads_);
  TaskRunner* runner = threads > 1 ? task_runner_ : nullptr;
  std::unique_ptr<MorselPool> owned_pool;
  if (threads > 1 && runner == nullptr) {
    owned_pool = std::make_unique<MorselPool>(threads);
    runner = owned_pool.get();
  }

  ExecOptions options;
  options.collect_provenance = true;
  options.retain_intermediates = true;
  options.leaf_overrides = &overrides;
  options.num_threads = threads;
  options.task_runner = runner;
  int64_t batch = max_batch_size_;
  if (batch <= 0) {
    int64_t max_rows = 0;
    for (const Table* t : overrides) {
      max_rows = std::max(max_rows, t->num_rows());
    }
    batch = AutoSampleBatchSize(max_rows);
  }
  options.max_batch_size = batch;
  if (cancelled != nullptr && *cancelled) {
    options.cancelled = *cancelled;
  }
  Executor executor(db_);
  UQP_ASSIGN_OR_RETURN(ExecResult run, executor.Execute(plan, options));

  PlanEstimates out;
  out.ops.resize(static_cast<size_t>(plan.num_operators()));
  out.variable_of_node.assign(static_cast<size_t>(plan.num_operators()), -1);
  out.leaf_sample_rows.resize(leaves.size());
  for (size_t i = 0; i < leaves.size(); ++i) {
    out.leaf_sample_rows[i] = static_cast<double>(overrides[i]->num_rows());
  }
  out.sample_ops = run.ops;

  // Optimizer cardinalities for aggregate fallbacks.
  CardinalityEstimator cards(db_);
  const std::vector<double> opt_rows = cards.EstimatePlan(plan);

  // Process children before parents: in preorder ids, every child id is
  // greater than its parent's, so reverse id order works.
  const std::vector<const PlanNode*> nodes = plan.NodesPreorder();
  std::vector<const PlanNode*> by_id(nodes.size());
  for (const PlanNode* n : nodes) by_id[static_cast<size_t>(n->id)] = n;

  for (int id = plan.num_operators() - 1; id >= 0; --id) {
    const PlanNode* node = by_id[static_cast<size_t>(id)];
    SelectivityEstimate& est = out.ops[static_cast<size_t>(id)];
    est.leaf_begin = node->leaf_begin;
    est.leaf_end = node->leaf_end;
    const int span = node->leaf_end - node->leaf_begin;
    est.var_components.assign(static_cast<size_t>(span), 0.0);

    if (IsPassThrough(node->type)) {
      // Sort / materialize emit exactly their input: same variable.
      const int child_id = node->left->id;
      out.variable_of_node[static_cast<size_t>(id)] =
          out.variable_of_node[static_cast<size_t>(child_id)];
      est = out.ops[static_cast<size_t>(child_id)];
      continue;
    }
    out.variable_of_node[static_cast<size_t>(id)] = id;

    if (node->type == OpType::kAggregate || node->has_aggregate_below) {
      // GEE extension (§3.2.2 future work): an aggregate whose input
      // subtree is itself sampled can estimate its group count from the
      // sampled input via the GEE distinct-value estimator.
      const bool gee_applicable =
          aggregate_mode_ == AggregateEstimateMode::kGee &&
          node->type == OpType::kAggregate && !node->has_aggregate_below;
      if (gee_applicable) {
        const RowBlock& input = run.blocks[static_cast<size_t>(node->left->id)];
        const SelectivityEstimate& child =
            out.ops[static_cast<size_t>(node->left->id)];
        const double full_input_rows =
            std::max(1.0, child.rho * node->left->leaf_row_product);
        double distinct = 1.0, distinct_var = 0.0;
        if (!node->group_columns.empty() && input.num_rows() > 0) {
          GeeDistinctCounter counter;
          for (int64_t r = 0; r < input.num_rows(); ++r) {
            uint64_t h = 0x9e3779b97f4a7c15ULL;
            for (int c : node->group_columns) {
              h = HashMix64(h, input.row(r)[c].Hash());
            }
            counter.Add(h);
          }
          const GeeResult gee = counter.Estimate(full_input_rows);
          distinct = std::max(1.0, gee.distinct);
          distinct_var = gee.variance;
        }
        const double denom = std::max(1.0, node->leaf_row_product);
        est.rho = SafeSel(distinct / denom);
        est.variance = distinct_var / (denom * denom);
        // Spread the variance across the leaf span so the partial-variance
        // machinery (covariance bounds vs descendants) sees it.
        if (span > 0) {
          const double per_leaf = est.variance / span;
          for (int k = 0; k < span; ++k) {
            est.var_components[static_cast<size_t>(k)] = per_leaf;
          }
        }
        continue;
      }
      // Algorithm 1 lines 2-5: optimizer estimate, zero variance.
      est.from_optimizer = true;
      est.rho = SafeSel(opt_rows[static_cast<size_t>(id)] /
                        std::max(1.0, node->leaf_row_product));
      est.variance = 0.0;
      continue;
    }

    const OpStats& sample_stats = run.ops[static_cast<size_t>(id)];
    est.rho = SafeSel(sample_stats.selectivity());

    if (IsScan(node->type)) {
      if (scan_mode_ == ScanEstimateMode::kHistogram &&
          node->predicate != nullptr) {
        // §3.2 alternative: histogram estimate + resolution-based variance.
        est.rho = SafeSel(cards.PredicateSelectivity(node->predicate.get(),
                                                     node->table_name));
        int buckets = 64;
        const TableStats& stats = db_->catalog().Get(node->table_name);
        for (const ColumnStats& cs : stats.columns) {
          if (cs.numeric && !cs.histogram.empty()) {
            buckets = std::max(1, cs.histogram.num_buckets());
            break;
          }
        }
        const double w = 1.0 / static_cast<double>(buckets);
        const double conjuncts =
            std::max(1, PredicateOpCount(node->predicate.get()));
        const double vk = conjuncts * w * w / 12.0;
        est.var_components[0] = vk;
        est.variance = vk;
        continue;
      }
      // Algorithm 1 lines 6-8: S²_n = ρ_n (1 - ρ_n); Var ≈ S²_n / n.
      const double n = out.leaf_sample_rows[static_cast<size_t>(node->leaf_begin)];
      const double vk = n > 0.0 ? est.rho * (1.0 - est.rho) / n : 0.0;
      est.var_components[0] = vk;
      est.variance = vk;
      continue;
    }

    UQP_CHECK(IsJoin(node->type)) << "unexpected operator in estimation";
    // Algorithm 1 lines 9-14: scan the join result once, incrementing the
    // Q_{k, i_k, n} counters via the provenance annotations.
    const RowBlock& block = run.blocks[static_cast<size_t>(id)];
    UQP_CHECK(block.prov_width == span)
        << "provenance width mismatch: " << block.prov_width << " vs " << span;

    // Q counters: for each relative leaf k, a dense count vector indexed
    // by sample tuple id (provenance ids index the leaf's sample table
    // directly, so tuple ids are < n_k). Dense counts make the
    // accumulation shard-mergeable — per-shard counts add exactly (they
    // are integers) — and give the variance pass below a fixed, thread-
    // count-independent tuple order.
    std::vector<std::vector<double>> q(static_cast<size_t>(span));
    for (int k = 0; k < span; ++k) {
      const double nk =
          out.leaf_sample_rows[static_cast<size_t>(node->leaf_begin + k)];
      q[static_cast<size_t>(k)].assign(static_cast<size_t>(nk), 0.0);
    }
    const int64_t block_rows = block.num_rows();
    const int64_t count_shards =
        runner != nullptr
            ? std::min<int64_t>(threads, (block_rows + kCountMorselRows - 1) /
                                             kCountMorselRows)
            : 1;
    if (count_shards > 1) {
      // Shard the provenance scan into contiguous row ranges, each with
      // its own count vectors, merged in shard order.
      std::vector<std::vector<std::vector<double>>> parts(
          static_cast<size_t>(count_shards));
      const int64_t per_shard = (block_rows + count_shards - 1) / count_shards;
      runner->RunTasks(count_shards, [&](int64_t s) {
        auto& part = parts[static_cast<size_t>(s)];
        part.resize(static_cast<size_t>(span));
        for (int k = 0; k < span; ++k) {
          part[static_cast<size_t>(k)].assign(
              q[static_cast<size_t>(k)].size(), 0.0);
        }
        const int64_t begin = s * per_shard;
        const int64_t end = std::min(block_rows, begin + per_shard);
        for (int64_t r = begin; r < end; ++r) {
          const uint32_t* prov = block.prov_row(r);
          for (int k = 0; k < span; ++k) {
            part[static_cast<size_t>(k)][prov[k]] += 1.0;
          }
        }
      });
      for (const auto& part : parts) {
        for (int k = 0; k < span; ++k) {
          auto& qk = q[static_cast<size_t>(k)];
          const auto& pk = part[static_cast<size_t>(k)];
          for (size_t j = 0; j < qk.size(); ++j) qk[j] += pk[j];
        }
      }
    } else {
      for (int64_t r = 0; r < block_rows; ++r) {
        const uint32_t* prov = block.prov_row(r);
        for (int k = 0; k < span; ++k) {
          q[static_cast<size_t>(k)][prov[k]] += 1.0;
        }
      }
    }

    // Product of sample sizes over the span.
    double sample_product = 1.0;
    for (int k = 0; k < span; ++k) {
      sample_product *=
          out.leaf_sample_rows[static_cast<size_t>(node->leaf_begin + k)];
    }

    double total_var = 0.0;
    for (int k = 0; k < span; ++k) {
      const double nk =
          out.leaf_sample_rows[static_cast<size_t>(node->leaf_begin + k)];
      if (nk < 2.0) continue;  // S²_1 = 0 by convention
      const double dk = sample_product / nk;  // Π_{k' != k} n_k'
      double acc = 0.0;
      int64_t present = 0;
      const auto& qk = q[static_cast<size_t>(k)];
      for (const double count : qk) {
        if (count == 0.0) continue;
        ++present;
        const double diff = count / dk - est.rho;
        acc += diff * diff;
      }
      // Sample tuples never seen in the join output contribute (0 - ρ)².
      const double absent = nk - static_cast<double>(present);
      acc += absent * est.rho * est.rho;
      const double vk = acc / (nk - 1.0);  // per-relation S² component
      est.var_components[static_cast<size_t>(k)] = vk / nk;
      total_var += vk / nk;
    }
    est.variance = total_var;
  }

  return out;
}

double SamplingEstimator::PartialVariance(const SelectivityEstimate& e,
                                          int begin, int end) {
  double acc = 0.0;
  const int lo = std::max(begin, e.leaf_begin);
  const int hi = std::min(end, e.leaf_end);
  for (int k = lo; k < hi; ++k) {
    acc += e.var_components[static_cast<size_t>(k - e.leaf_begin)];
  }
  return acc;
}

CovarianceBounds SamplingEstimator::CovarianceBoundsFor(
    const SelectivityEstimate& desc, const SelectivityEstimate& anc,
    const std::vector<double>& leaf_sample_rows) {
  CovarianceBounds bounds;
  if (desc.from_optimizer || anc.from_optimizer) return bounds;

  const int begin = desc.leaf_begin;
  const int end = desc.leaf_end;
  // B2: Cauchy–Schwarz on the full variances.
  bounds.b2 = std::sqrt(desc.variance * anc.variance);
  // B1: partial variances restricted to the shared relations (Theorem 7).
  bounds.b1 = std::sqrt(PartialVariance(desc, begin, end) *
                        PartialVariance(anc, begin, end));
  // B3: f(n, m) g(ρ) g(ρ') (Theorem 8), with f generalized to per-relation
  // sample sizes: f = 1 - Π_{k shared} (1 - 1/n_k).
  double keep = 1.0;
  for (int k = begin; k < end; ++k) {
    const double nk = leaf_sample_rows[static_cast<size_t>(k)];
    if (nk > 0.0) keep *= 1.0 - 1.0 / nk;
  }
  const double f = 1.0 - keep;
  auto g = [](double rho) { return std::sqrt(std::max(0.0, rho * (1.0 - rho))); };
  bounds.b3 = f * g(desc.rho) * g(anc.rho);
  return bounds;
}

}  // namespace uqp
