#pragma once

#include <functional>
#include <vector>

#include "common/status.h"
#include "engine/cardinality.h"
#include "engine/executor.h"
#include "engine/plan.h"
#include "math/gaussian.h"
#include "sampling/sample_db.h"

namespace uqp {

/// Estimated selectivity distribution of one operator (paper §3.2):
/// rho ~ N(rho_n, Var̂[rho_n]), with the per-relation variance
/// decomposition kept so covariances between estimates that share sample
/// relations can be bounded (paper §5.3.2 / Appendix A.7).
struct SelectivityEstimate {
  double rho = 0.0;       ///< ρ_n
  double variance = 0.0;  ///< Var̂[ρ_n] = Σ_k V_k / n_k  (≈ S²_n / n)
  /// Per-leaf variance contributions V_k/n_k, aligned to absolute leaf
  /// positions [leaf_begin, leaf_end) of the operator's subtree. Partial
  /// sums over a leaf subset realize the S²_ρ(m, n) estimator used in the
  /// refined covariance bound (B1).
  std::vector<double> var_components;
  int leaf_begin = 0;
  int leaf_end = 0;
  /// True for aggregates and operators above them: ρ comes from the
  /// optimizer's cardinality estimate and the variance is 0 (Algorithm 1,
  /// lines 2-5).
  bool from_optimizer = false;

  Gaussian AsGaussian() const { return Gaussian(rho, variance); }
};

/// All selectivity information extracted from one run of the plan over the
/// sample tables.
struct PlanEstimates {
  /// Per node id.
  std::vector<SelectivityEstimate> ops;
  /// Node id -> node id owning that node's selectivity variable.
  /// Pass-through operators (sort, materialize) share their child's
  /// variable; every other operator owns its own.
  std::vector<int> variable_of_node;
  /// Sample-table row count n_k per absolute leaf position.
  std::vector<double> leaf_sample_rows;
  /// Resource counters observed while running the plan over the samples
  /// (the prediction-time overhead of paper §6.4).
  std::vector<OpStats> sample_ops;
};

/// Covariance upper bounds of paper §5.3.2 between two correlated
/// selectivity estimates (descendant/ancestor pair sharing the
/// descendant's sample relations):
///   B1 = sqrt(S²_ρ(m,n) S²_ρ'(m,n))        (Theorem 7, tighter)
///   B2 = sqrt(Var[ρ] Var[ρ'])              (Cauchy–Schwarz)
///   B3 = f(n,m) g(ρ) g(ρ')                 (Theorem 8)
struct CovarianceBounds {
  double b1 = 0.0;
  double b2 = 0.0;
  double b3 = 0.0;
  /// The bound Algorithm 3 adds: min(B1, B3) (both are valid upper
  /// bounds; B1 ≤ B2 always holds).
  double best() const { return b1 < b3 ? b1 : b3; }
};

/// How scan (selection) selectivities are estimated.
enum class ScanEstimateMode {
  /// The paper's sampling estimator: ρ_n over the sample table with the
  /// binomial S²_n = ρ(1-ρ) variance (Algorithm 1 lines 6-8).
  kSampling,
  /// The §3.2 alternative the paper leaves as future work: the optimizer's
  /// histogram estimate. Its variance is a resolution heuristic — the
  /// equi-depth histogram quantizes the CDF into B buckets, so a single
  /// range predicate's selectivity carries ~U(-w/2, w/2) quantization
  /// error with w = 1/B (variance w²/12), inflated by the number of
  /// conjuncts whose independence the optimizer assumes. Joins always use
  /// sampling (histogram join estimation would need join synopses, which
  /// the paper points out are restricted to foreign-key joins).
  kHistogram,
};

/// How aggregate output cardinalities are estimated.
enum class AggregateEstimateMode {
  /// Algorithm 1 lines 2-5: the optimizer's estimate, variance 0.
  kOptimizer,
  /// The extension the paper names as future work (§3.2.2): the GEE
  /// distinct-value estimator over the aggregate's sampled input, with a
  /// half-sample variance probe. Only applies to aggregates whose input
  /// subtree is itself sampled (no aggregate below); operators above an
  /// aggregate still fall back to the optimizer.
  kGee,
};

/// The auto-derived executor chunk size for a sample run whose largest
/// bound sample table has `max_leaf_sample_rows` rows (the 0 = auto mode
/// of max_batch_size). Deterministic in the sample cardinalities alone —
/// never thread count — so it is part of the determinism contract's
/// *shape*, like any explicitly chosen batch size: a tiny sample runs as
/// one morsel per operator instead of paying full dispatch overhead, and
/// a large one gets enough morsels (~64 per scan) to shard across a pool.
int64_t AutoSampleBatchSize(int64_t max_leaf_sample_rows);

/// Runs a finalized plan over the sample tables and produces the
/// selectivity distributions (Algorithm 1 embedded in the bottom-up
/// refinement of Algorithm 2).
///
/// With num_threads > 1 the sample run fans out: the executor shards its
/// chunked loops and join subtrees across a task pool, and the Q_{k,j,n}
/// provenance counting below shards the output scan into per-shard count
/// vectors merged in shard order. Counts are integers, so the merged
/// counters — and hence every ρ_n and S²_n — are bit-identical to the
/// sequential (num_threads == 1) run at any thread count.
class SamplingEstimator {
 public:
  SamplingEstimator(const Database* db, const SampleDb* samples,
                    AggregateEstimateMode aggregate_mode =
                        AggregateEstimateMode::kOptimizer,
                    ScanEstimateMode scan_mode = ScanEstimateMode::kSampling,
                    int num_threads = 1, TaskRunner* task_runner = nullptr,
                    int64_t max_batch_size = 1024)
      : db_(db),
        samples_(samples),
        aggregate_mode_(aggregate_mode),
        scan_mode_(scan_mode),
        num_threads_(num_threads),
        task_runner_(task_runner),
        max_batch_size_(max_batch_size) {}

  /// `cancelled` (optional) is a cooperative cancellation probe forwarded
  /// to ExecOptions::cancelled: the sample run stops consuming pool time
  /// at the next morsel boundary once it returns true, and Estimate
  /// resolves with Status::DeadlineExceeded. Null = never cancelled.
  StatusOr<PlanEstimates> Estimate(
      const Plan& plan,
      const std::function<bool()>* cancelled = nullptr) const;

  /// Partial variance of `e` restricted to absolute leaf positions
  /// [begin, end): the S²_ρ(m, n)/n estimator.
  static double PartialVariance(const SelectivityEstimate& e, int begin, int end);

  /// Bounds for |Cov(ρ_desc, ρ_anc)| where desc's subtree is contained in
  /// anc's. Both zero if either estimate is optimizer-derived.
  static CovarianceBounds CovarianceBoundsFor(
      const SelectivityEstimate& desc, const SelectivityEstimate& anc,
      const std::vector<double>& leaf_sample_rows);

 private:
  const Database* db_;
  const SampleDb* samples_;
  AggregateEstimateMode aggregate_mode_;
  ScanEstimateMode scan_mode_;
  /// Intra-query parallelism for the sample run (1 = sequential, <= 0 =
  /// hardware concurrency). Results are bit-identical at every value.
  int num_threads_ = 1;
  /// Shared pool for the fan-out; when null and num_threads > 1 an
  /// ephemeral MorselPool covers one Estimate call.
  TaskRunner* task_runner_ = nullptr;
  /// Executor chunk granularity for the sample run (see
  /// ExecOptions::max_batch_size). <= 0 = auto: derived per plan from the
  /// bound sample-table cardinalities via AutoSampleBatchSize.
  int64_t max_batch_size_ = 1024;
};

}  // namespace uqp
