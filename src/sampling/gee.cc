#include "sampling/gee.h"

#include <algorithm>
#include <cmath>

namespace uqp {

void GeeDistinctCounter::Add(uint64_t key_hash) {
  ++counts_[key_hash];
  ++n_;
}

double GeeDistinctCounter::GeeFormula(
    const std::unordered_map<uint64_t, int64_t>& counts, double n,
    double full_rows) {
  if (counts.empty() || n <= 0.0) return 0.0;
  double f1 = 0.0, rest = 0.0;
  // Counts each entry into f1 or rest by adding exactly 1.0; integer-valued
  // sums commute exactly in double, so iteration order cannot change the
  // result.
  // det-lint: order-independent
  for (const auto& [key, count] : counts) {
    (void)key;
    if (count == 1) {
      f1 += 1.0;
    } else {
      rest += 1.0;
    }
  }
  const double ratio = std::sqrt(std::max(1.0, full_rows / n));
  return std::min(full_rows, ratio * f1 + rest);
}

GeeResult GeeDistinctCounter::Estimate(double full_rows) const {
  GeeResult result;
  result.distinct = GeeFormula(counts_, static_cast<double>(n_), full_rows);
  if (n_ < 4) return result;

  // Half-sample probe: split keys by one hash bit into two sub-samples and
  // compare their GEE estimates.
  std::unordered_map<uint64_t, int64_t> half[2];
  double half_rows[2] = {0.0, 0.0};
  // Each key lands in a side determined by its own hash bit, the per-side
  // maps are consumed only through GeeFormula's order-independent counting,
  // and half_rows sums integer counts (exact in double at any order).
  // det-lint: order-independent
  for (const auto& [key, count] : counts_) {
    const int side = static_cast<int>((key >> 17) & 1u);
    half[side][key] += count;
    half_rows[side] += static_cast<double>(count);
  }
  if (half_rows[0] < 2.0 || half_rows[1] < 2.0) return result;
  // Each half still estimates distinct-in-full of its key stratum; the two
  // strata partition the keys, so the full estimate is their sum and its
  // dispersion reflects sampling noise.
  const double d0 = GeeFormula(half[0], half_rows[0], 0.5 * full_rows);
  const double d1 = GeeFormula(half[1], half_rows[1], 0.5 * full_rows);
  const double diff = d0 - d1;
  result.variance = 0.25 * diff * diff;
  return result;
}

}  // namespace uqp
