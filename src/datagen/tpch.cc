#include "datagen/tpch.h"

#include <cmath>

#include "common/logging.h"
#include "datagen/dates.h"
#include "math/rng.h"
#include "math/zipf.h"

namespace uqp {

TpchConfig TpchConfig::Profile(const std::string& name, double zipf_z,
                               uint64_t seed) {
  TpchConfig cfg;
  cfg.zipf_z = zipf_z;
  cfg.seed = seed;
  if (name == "1gb") {
    cfg.scale = 1.0;
  } else if (name == "10gb") {
    cfg.scale = 10.0;
  } else if (name == "tiny") {
    cfg.scale = 0.1;
  } else {
    UQP_CHECK(false) << "unknown TPC-H profile: " << name;
  }
  return cfg;
}

TpchCardinalities CardinalitiesFor(double scale) {
  TpchCardinalities c;
  c.supplier = std::max<int64_t>(10, static_cast<int64_t>(100 * scale));
  c.customer = std::max<int64_t>(30, static_cast<int64_t>(1500 * scale));
  c.part = std::max<int64_t>(40, static_cast<int64_t>(2000 * scale));
  c.partsupp = 4 * c.part;
  c.orders = std::max<int64_t>(100, static_cast<int64_t>(15000 * scale));
  c.lineitem_approx = 4 * c.orders;
  return c;
}

namespace tpch {

namespace {
const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY",
                           "HOUSEHOLD"};
const char* kShipModes[] = {"REG AIR", "AIR", "RAIL", "SHIP",
                            "TRUCK",   "MAIL", "FOB"};
const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED",
                             "5-LOW"};
const char* kReturnFlags[] = {"R", "A", "N"};
const char* kNations[] = {
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE",
    "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA",
    "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA",
    "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"};
const char* kRegions[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"};
const char* kTypeSyllable1[] = {"STANDARD", "SMALL", "MEDIUM", "LARGE",
                                "ECONOMY", "PROMO"};
const char* kTypeSyllable2[] = {"ANODIZED", "BURNISHED", "PLATED", "POLISHED",
                                "BRUSHED"};
const char* kTypeSyllable3[] = {"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"};
const char* kContainerSyllable1[] = {"SM", "MED", "LG", "JUMBO", "WRAP",
                                     "SMALL", "STANDARD", "PROMO"};
const char* kContainerSyllable2[] = {"CASE", "BOX", "BAG", "JAR", "PKG"};
}  // namespace

std::string SegmentName(int i) { return kSegments[i % kNumSegments]; }

std::string BrandName(int i) {
  // Brand#MN with M,N in 1..5 (25 brands).
  const int m = (i / 5) % 5 + 1;
  const int n = i % 5 + 1;
  return "Brand#" + std::to_string(m) + std::to_string(n);
}

std::string TypeName(int i) {
  const int a = i % 6;
  const int b = (i / 6) % 5;
  const int c = (i / 30) % 5;
  return std::string(kTypeSyllable1[a]) + " " + kTypeSyllable2[b] + " " +
         kTypeSyllable3[c];
}

std::string ContainerName(int i) {
  const int a = i % 8;
  const int b = (i / 8) % 5;
  return std::string(kContainerSyllable1[a]) + " " + kContainerSyllable2[b];
}

std::string ShipModeName(int i) { return kShipModes[i % kNumShipModes]; }
std::string PriorityName(int i) { return kPriorities[i % kNumPriorities]; }
std::string ReturnFlagName(int i) { return kReturnFlags[i % kNumReturnFlags]; }
std::string NationName(int i) { return kNations[i % 25]; }
std::string RegionName(int i) { return kRegions[i % 5]; }

}  // namespace tpch

namespace {

/// Draws either uniformly or Zipf-skewed from [0, n). For skewed draws the
/// rank order is scrambled by a fixed multiplicative permutation so skew
/// doesn't trivially align with key order.
class SkewedDomain {
 public:
  SkewedDomain(int64_t n, double z)
      : n_(n), zipf_(z > 0.0 ? std::make_unique<ZipfDistribution>(
                                   static_cast<uint64_t>(n), z)
                            : nullptr) {}

  int64_t Draw(Rng* rng) const {
    if (zipf_ == nullptr) return rng->NextInt(0, n_ - 1);
    const int64_t rank = static_cast<int64_t>(zipf_->Sample(rng));
    // Scramble with a multiplier coprime to n.
    return (rank * 2654435761LL + 12345) % n_;
  }

 private:
  int64_t n_;
  std::unique_ptr<ZipfDistribution> zipf_;
};

}  // namespace

Database MakeTpchDatabase(const TpchConfig& config) {
  const TpchCardinalities card = CardinalitiesFor(config.scale);
  Rng rng(config.seed);
  Database db("tpch");

  const int64_t date_min = TpchDateMin();
  const int64_t date_span = TpchDateMax() - date_min;

  // ----- region -----
  {
    Table t("region", Schema({{"r_regionkey", ValueType::kInt64},
                              {"r_name", ValueType::kString, 12}}));
    for (int64_t k = 0; k < card.region; ++k) {
      t.AppendRow({Value::Int64(k), Value::String(tpch::RegionName(static_cast<int>(k)))});
    }
    t.DeclareIndex(0);
    db.AddTable(std::move(t));
  }

  // ----- nation -----
  {
    Table t("nation", Schema({{"n_nationkey", ValueType::kInt64},
                              {"n_name", ValueType::kString, 16},
                              {"n_regionkey", ValueType::kInt64}}));
    for (int64_t k = 0; k < card.nation; ++k) {
      t.AppendRow({Value::Int64(k),
                   Value::String(tpch::NationName(static_cast<int>(k))),
                   Value::Int64(k % card.region)});
    }
    t.DeclareIndex(0);
    db.AddTable(std::move(t));
  }

  // ----- supplier -----
  {
    Table t("supplier", Schema({{"s_suppkey", ValueType::kInt64},
                                {"s_name", ValueType::kString, 18},
                                {"s_nationkey", ValueType::kInt64},
                                {"s_acctbal", ValueType::kDouble}}));
    t.Reserve(card.supplier);
    SkewedDomain nations(card.nation, config.zipf_z);
    for (int64_t k = 0; k < card.supplier; ++k) {
      t.AppendRow({Value::Int64(k),
                   Value::String("Supplier#" + std::to_string(k)),
                   Value::Int64(nations.Draw(&rng)),
                   Value::Double(-999.99 + rng.NextDouble() * 10998.98)});
    }
    t.DeclareIndex(0);
    t.DeclareIndex(2);
    t.DeclareIndex(3);
    db.AddTable(std::move(t));
  }

  // ----- customer -----
  {
    Table t("customer", Schema({{"c_custkey", ValueType::kInt64},
                                {"c_name", ValueType::kString, 18},
                                {"c_nationkey", ValueType::kInt64},
                                {"c_mktsegment", ValueType::kString, 10},
                                {"c_acctbal", ValueType::kDouble}}));
    t.Reserve(card.customer);
    SkewedDomain nations(card.nation, config.zipf_z);
    SkewedDomain segments(tpch::kNumSegments, config.zipf_z);
    for (int64_t k = 0; k < card.customer; ++k) {
      t.AppendRow({Value::Int64(k),
                   Value::String("Customer#" + std::to_string(k)),
                   Value::Int64(nations.Draw(&rng)),
                   Value::String(tpch::SegmentName(
                       static_cast<int>(segments.Draw(&rng)))),
                   Value::Double(-999.99 + rng.NextDouble() * 10998.98)});
    }
    t.DeclareIndex(0);
    t.DeclareIndex(2);
    t.DeclareIndex(4);
    db.AddTable(std::move(t));
  }

  // ----- part -----
  {
    Table t("part", Schema({{"p_partkey", ValueType::kInt64},
                            {"p_name", ValueType::kString, 24},
                            {"p_brand", ValueType::kString, 10},
                            {"p_type", ValueType::kString, 24},
                            {"p_size", ValueType::kInt64},
                            {"p_container", ValueType::kString, 10},
                            {"p_retailprice", ValueType::kDouble}}));
    t.Reserve(card.part);
    SkewedDomain brands(tpch::kNumBrands, config.zipf_z);
    SkewedDomain types(tpch::kNumTypes, config.zipf_z);
    SkewedDomain containers(tpch::kNumContainers, config.zipf_z);
    SkewedDomain sizes(50, config.zipf_z);
    for (int64_t k = 0; k < card.part; ++k) {
      const double price = 900.0 + (static_cast<double>(k % 1000) / 10.0) +
                           100.0 * rng.NextDouble();
      t.AppendRow(
          {Value::Int64(k), Value::String("Part#" + std::to_string(k)),
           Value::String(tpch::BrandName(static_cast<int>(brands.Draw(&rng)))),
           Value::String(tpch::TypeName(static_cast<int>(types.Draw(&rng)))),
           Value::Int64(1 + sizes.Draw(&rng)),
           Value::String(
               tpch::ContainerName(static_cast<int>(containers.Draw(&rng)))),
           Value::Double(price)});
    }
    t.DeclareIndex(0);
    t.DeclareIndex(4);
    t.DeclareIndex(6);
    db.AddTable(std::move(t));
  }

  // ----- partsupp -----
  {
    Table t("partsupp", Schema({{"ps_partkey", ValueType::kInt64},
                                {"ps_suppkey", ValueType::kInt64},
                                {"ps_availqty", ValueType::kInt64},
                                {"ps_supplycost", ValueType::kDouble}}));
    t.Reserve(card.partsupp);
    for (int64_t p = 0; p < card.part; ++p) {
      for (int j = 0; j < 4; ++j) {
        const int64_t s =
            (p + (j * (card.supplier / 4 + 1))) % card.supplier;
        t.AppendRow({Value::Int64(p), Value::Int64(s),
                     Value::Int64(1 + rng.NextInt(0, 9998)),
                     Value::Double(1.0 + rng.NextDouble() * 999.0)});
      }
    }
    t.DeclareIndex(0);
    t.DeclareIndex(1);
    t.DeclareIndex(3);
    db.AddTable(std::move(t));
  }

  // ----- orders -----
  std::vector<int64_t> order_dates(static_cast<size_t>(card.orders));
  {
    Table t("orders", Schema({{"o_orderkey", ValueType::kInt64},
                              {"o_custkey", ValueType::kInt64},
                              {"o_orderstatus", ValueType::kString, 4},
                              {"o_totalprice", ValueType::kDouble},
                              {"o_orderdate", ValueType::kInt64},
                              {"o_orderpriority", ValueType::kString, 16},
                              {"o_shippriority", ValueType::kInt64}}));
    t.Reserve(card.orders);
    SkewedDomain customers(card.customer, config.zipf_z);
    SkewedDomain priorities(tpch::kNumPriorities, config.zipf_z);
    SkewedDomain dates(date_span - 120, config.zipf_z);
    for (int64_t k = 0; k < card.orders; ++k) {
      const int64_t odate = date_min + dates.Draw(&rng);
      order_dates[static_cast<size_t>(k)] = odate;
      const char* status = odate + 120 < TpchDateMax() ? "F" : "O";
      t.AppendRow({Value::Int64(k), Value::Int64(customers.Draw(&rng)),
                   Value::String(status),
                   Value::Double(1000.0 + rng.NextDouble() * 450000.0),
                   Value::Int64(odate),
                   Value::String(tpch::PriorityName(
                       static_cast<int>(priorities.Draw(&rng)))),
                   Value::Int64(0)});
    }
    t.DeclareIndex(0);
    t.DeclareIndex(1);
    t.DeclareIndex(3);
    t.DeclareIndex(4);
    db.AddTable(std::move(t));
  }

  // ----- lineitem -----
  {
    Table t("lineitem", Schema({{"l_orderkey", ValueType::kInt64},
                                {"l_partkey", ValueType::kInt64},
                                {"l_suppkey", ValueType::kInt64},
                                {"l_linenumber", ValueType::kInt64},
                                {"l_quantity", ValueType::kDouble},
                                {"l_extendedprice", ValueType::kDouble},
                                {"l_discount", ValueType::kDouble},
                                {"l_tax", ValueType::kDouble},
                                {"l_returnflag", ValueType::kString, 2},
                                {"l_linestatus", ValueType::kString, 2},
                                {"l_shipdate", ValueType::kInt64},
                                {"l_commitdate", ValueType::kInt64},
                                {"l_receiptdate", ValueType::kInt64},
                                {"l_shipmode", ValueType::kString, 10},
                                {"l_shipinstruct", ValueType::kString, 24}}));
    t.Reserve(card.lineitem_approx);
    SkewedDomain parts(card.part, config.zipf_z);
    SkewedDomain suppliers(card.supplier, config.zipf_z);
    SkewedDomain quantities(50, config.zipf_z);
    SkewedDomain modes(tpch::kNumShipModes, config.zipf_z);
    const char* instructs[] = {"DELIVER IN PERSON", "COLLECT COD", "NONE",
                               "TAKE BACK RETURN"};
    for (int64_t o = 0; o < card.orders; ++o) {
      const int lines = static_cast<int>(1 + rng.NextInt(0, 6));
      for (int ln = 0; ln < lines; ++ln) {
        const int64_t odate = order_dates[static_cast<size_t>(o)];
        const int64_t shipdate = odate + 1 + rng.NextInt(0, 120);
        const int64_t commitdate = odate + 30 + rng.NextInt(0, 60);
        const int64_t receiptdate = shipdate + 1 + rng.NextInt(0, 30);
        const double quantity = static_cast<double>(1 + quantities.Draw(&rng));
        const double price = quantity * (900.0 + rng.NextDouble() * 200.0);
        const char* rflag;
        if (receiptdate <= DayNumber(1995, 6, 17)) {
          rflag = rng.NextBool(0.5) ? "R" : "A";
        } else {
          rflag = "N";
        }
        const char* lstatus = shipdate > DayNumber(1995, 6, 17) ? "O" : "F";
        t.AppendRow(
            {Value::Int64(o), Value::Int64(parts.Draw(&rng)),
             Value::Int64(suppliers.Draw(&rng)), Value::Int64(ln + 1),
             Value::Double(quantity), Value::Double(price),
             Value::Double(static_cast<double>(rng.NextInt(0, 10)) / 100.0),
             Value::Double(static_cast<double>(rng.NextInt(0, 8)) / 100.0),
             Value::String(rflag), Value::String(lstatus),
             Value::Int64(shipdate), Value::Int64(commitdate),
             Value::Int64(receiptdate),
             Value::String(tpch::ShipModeName(static_cast<int>(modes.Draw(&rng)))),
             Value::String(instructs[rng.NextInt(0, 3)])});
      }
    }
    t.DeclareIndex(0);
    t.DeclareIndex(1);
    t.DeclareIndex(2);
    t.DeclareIndex(4);
    t.DeclareIndex(10);
    t.DeclareIndex(12);
    db.AddTable(std::move(t));
  }

  db.AnalyzeAll(config.histogram_buckets);
  return db;
}

}  // namespace uqp
