#pragma once

#include <cstdint>
#include <string>

namespace uqp {

/// Dates are stored as int64 day numbers (days since 1970-01-01) so date
/// columns support range predicates through the ordinary numeric path.
/// TPC-H dates span 1992-01-01 .. 1998-12-31.

/// Day number for a civil date (proleptic Gregorian).
int64_t DayNumber(int year, int month, int day);

/// Parses "YYYY-MM-DD" into a day number; aborts on malformed input
/// (only used with literal constants in templates/tests).
int64_t ParseDate(const std::string& iso);

/// Renders a day number back to "YYYY-MM-DD".
std::string FormatDate(int64_t day_number);

/// TPC-H date range endpoints.
int64_t TpchDateMin();
int64_t TpchDateMax();

}  // namespace uqp
