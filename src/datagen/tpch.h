#pragma once

#include <cstdint>
#include <string>

#include "storage/database.h"

namespace uqp {

/// Configuration for the TPC-H-like generator.
///
/// The paper evaluates on TPC-H 1 GB and 10 GB databases, both uniform
/// (standard dbgen) and skewed (Microsoft's Zipf generator with z = 1).
/// We reproduce the schema, join graph, value domains and the skew knob at
/// reduced row scale: `scale = 1` ("1gb" profile) yields ~60k lineitem rows
/// — a 1:100 row-scale stand-in for the 6M-row 1 GB database — so the full
/// experiment grid runs on one core in minutes.
struct TpchConfig {
  double scale = 1.0;
  /// Zipf exponent for value/key skew. 0 = uniform, 1 = the paper's skewed
  /// databases.
  double zipf_z = 0.0;
  uint64_t seed = 42;
  int histogram_buckets = 64;

  /// Named profiles used throughout the benches.
  static TpchConfig Profile(const std::string& name, double zipf_z = 0.0,
                            uint64_t seed = 42);
};

/// Row counts for a given scale.
struct TpchCardinalities {
  int64_t region = 5;
  int64_t nation = 25;
  int64_t supplier = 0;
  int64_t customer = 0;
  int64_t part = 0;
  int64_t partsupp = 0;
  int64_t orders = 0;
  int64_t lineitem_approx = 0;  ///< expected; actual varies by lines/order
};
TpchCardinalities CardinalitiesFor(double scale);

/// Generates the eight-table database, runs ANALYZE, declares indexes on
/// keys and date columns.
Database MakeTpchDatabase(const TpchConfig& config);

namespace tpch {
/// Value-domain helpers shared with the workload generators.
inline constexpr int kNumSegments = 5;
inline constexpr int kNumBrands = 25;
inline constexpr int kNumTypes = 150;
inline constexpr int kNumContainers = 40;
inline constexpr int kNumShipModes = 7;
inline constexpr int kNumPriorities = 5;
inline constexpr int kNumReturnFlags = 3;

std::string SegmentName(int i);
std::string BrandName(int i);
std::string TypeName(int i);
std::string ContainerName(int i);
std::string ShipModeName(int i);
std::string PriorityName(int i);
std::string ReturnFlagName(int i);
std::string NationName(int i);
std::string RegionName(int i);
}  // namespace tpch

}  // namespace uqp
