#include "datagen/dates.h"

#include <cstdio>

#include "common/logging.h"

namespace uqp {

// Howard Hinnant's days_from_civil algorithm.
int64_t DayNumber(int year, int month, int day) {
  const int y = year - (month <= 2 ? 1 : 0);
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy =
      (153u * static_cast<unsigned>(month + (month > 2 ? -3 : 9)) + 2u) / 5u +
      static_cast<unsigned>(day) - 1u;
  const unsigned doe = yoe * 365u + yoe / 4u - yoe / 100u + doy;
  return static_cast<int64_t>(era) * 146097 + static_cast<int64_t>(doe) - 719468;
}

int64_t ParseDate(const std::string& iso) {
  int y = 0, m = 0, d = 0;
  const int parsed = std::sscanf(iso.c_str(), "%d-%d-%d", &y, &m, &d);
  UQP_CHECK(parsed == 3 && m >= 1 && m <= 12 && d >= 1 && d <= 31)
      << "bad date literal: " << iso;
  return DayNumber(y, m, d);
}

std::string FormatDate(int64_t day_number) {
  // civil_from_days.
  int64_t z = day_number + 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : -9);
  const int64_t year = y + (m <= 2 ? 1 : 0);
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%04lld-%02u-%02u", static_cast<long long>(year), m, d);
  return buf;
}

int64_t TpchDateMin() { return DayNumber(1992, 1, 1); }
int64_t TpchDateMax() { return DayNumber(1998, 12, 31); }

}  // namespace uqp
