#include "schedule/policy.h"

#include "common/logging.h"
#include "engine/cost_model.h"

namespace uqp {

const char* ToString(AdmissionPolicyKind kind) {
  switch (kind) {
    case AdmissionPolicyKind::kDistribution: return "distribution";
    case AdmissionPolicyKind::kMeanOnly: return "mean_only";
    case AdmissionPolicyKind::kCostOnly: return "cost_only";
  }
  return "?";
}

const char* ToString(OrderingPolicyKind kind) {
  switch (kind) {
    case OrderingPolicyKind::kRiskAdjustedSlack: return "risk_adjusted_slack";
    case OrderingPolicyKind::kExpectedSlack: return "expected_slack";
    case OrderingPolicyKind::kFifo: return "fifo";
  }
  return "?";
}

bool AdmissionPolicy::Admits(const ScheduledJob& job, double budget_ms) const {
  switch (kind) {
    case AdmissionPolicyKind::kDistribution: {
      // P(t <= budget) >= 1 - eps. NormalCdf handles a degenerate
      // variance as a step function, so a point-mass prediction reduces
      // to the mean-only rule.
      const double p = NormalCdf(budget_ms, job.predicted_ms.mean,
                                 job.predicted_ms.variance);
      return p >= 1.0 - eps;
    }
    case AdmissionPolicyKind::kMeanOnly:
      return job.predicted_ms.mean <= budget_ms;
    case AdmissionPolicyKind::kCostOnly:
      return job.optimizer_cost * cost_scale_ms <= budget_ms;
  }
  return false;
}

double OrderingPolicy::Key(const ScheduledJob& job, double now_ms) const {
  switch (kind) {
    case OrderingPolicyKind::kRiskAdjustedSlack: {
      const double z = NormalQuantile(1.0 - eps);
      return job.deadline_ms - now_ms -
             (job.predicted_ms.mean + z * job.predicted_ms.stddev());
    }
    case OrderingPolicyKind::kExpectedSlack:
      return job.deadline_ms - now_ms - job.predicted_ms.mean;
    case OrderingPolicyKind::kFifo:
      return job.arrival_ms;
  }
  return 0.0;
}

size_t PickNext(const OrderingPolicy& policy,
                const std::vector<ScheduledJob>& queue, double now_ms) {
  UQP_CHECK(!queue.empty());
  size_t best = 0;
  double best_key = policy.Key(queue[0], now_ms);
  for (size_t i = 1; i < queue.size(); ++i) {
    const double key = policy.Key(queue[i], now_ms);
    // Strict (key, id) lexicographic order: ids are unique, so the
    // minimum is unique and independent of the queue's layout history.
    if (key < best_key ||
        (key == best_key && queue[i].id < queue[best].id)) {
      best = i;
      best_key = key;
    }
  }
  return best;
}

double PairBothMeetProb(const Gaussian& a_ms, double deadline_a_ms,
                        const Gaussian& b_ms, double deadline_b_ms) {
  return ProbBothMeetSequential(a_ms.mean, a_ms.variance, deadline_a_ms,
                                b_ms.mean, b_ms.variance, deadline_b_ms);
}

double NaiveBothMeetProb(const Gaussian& a_ms, double deadline_a_ms,
                         const Gaussian& b_ms, double deadline_b_ms) {
  const double p_a = NormalCdf(deadline_a_ms, a_ms.mean, a_ms.variance);
  const Gaussian sum = a_ms + b_ms;
  const double p_b = NormalCdf(deadline_b_ms, sum.mean, sum.variance);
  return p_a * p_b;
}

double OptimizerCostEstimate(const Plan& plan, const Database& db) {
  // Shared with the service's degraded-mode fallback predictor: both must
  // price a plan identically so "cost-only scheduling" and "cost-only
  // degradation" agree on the same scalar.
  return OptimizerScalarCost(plan, db);
}

}  // namespace uqp
