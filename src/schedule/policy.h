#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "engine/plan.h"
#include "math/gaussian.h"
#include "storage/database.h"

namespace uqp {

/// Pluggable decision policies for the SLO scheduling scenario suite
/// (paper §6.5.3 and ROADMAP item 3, the Kleerekoper et al. question: does
/// the predicted *distribution* buy anything over a mean-only or
/// optimizer-cost-only signal?).
///
/// Everything here is pure decision logic over decision-time predictions —
/// no clocks, no randomness, no shared state — so the simulator can replay
/// the same scenario under every policy and the determinism linter can
/// hold the directory to the contract rules with zero waivers.

/// How the admission controller decides whether a query may enter the
/// system at all.
enum class AdmissionPolicyKind {
  kDistribution,  ///< admit iff P(t <= budget) >= 1 - eps (paper policy)
  kMeanOnly,      ///< admit iff E[t] <= budget (point-estimate baseline)
  kCostOnly,      ///< admit iff cost * cost_scale_ms <= budget (optimizer
                  ///< scalar cost, no sampling at all)
};

/// How the dispatcher orders the admitted queue when a slot frees up.
enum class OrderingPolicyKind {
  kRiskAdjustedSlack,  ///< min slack after charging z_eps standard
                       ///< deviations of headroom (distribution-aware)
  kExpectedSlack,      ///< min slack under the mean (point-estimate)
  kFifo,               ///< arrival order
};

const char* ToString(AdmissionPolicyKind kind);
const char* ToString(OrderingPolicyKind kind);

/// One query as the scheduler sees it. Times are virtual milliseconds on
/// the simulator clock; the prediction is pinned at decision time (the
/// service may recalibrate later — the decision was made under this one).
struct ScheduledJob {
  uint64_t id = 0;            ///< arrival sequence number; total tie-break
  double arrival_ms = 0.0;    ///< absolute virtual arrival time
  double deadline_ms = 0.0;   ///< absolute virtual SLO deadline
  Gaussian predicted_ms;      ///< decision-time predicted running time
  double optimizer_cost = 0;  ///< scalar plan cost in abstract cost units
};

/// Admission decision. `budget_ms` is the running-time budget the query
/// would have if started now (deadline - now).
///
/// Boundary semantics, pinned and tested: the distribution policy admits
/// iff P(t <= budget) >= 1 - eps — a query sitting exactly at the
/// tolerated risk is admitted, one epsilon beyond is rejected. The
/// baselines use the analogous closed conditions (mean <= budget,
/// scaled cost <= budget).
struct AdmissionPolicy {
  AdmissionPolicyKind kind = AdmissionPolicyKind::kDistribution;
  double eps = 0.1;            ///< tolerated violation probability
  double cost_scale_ms = 1.0;  ///< cost units -> ms (cost-only baseline)

  bool Admits(const ScheduledJob& job, double budget_ms) const;
};

/// Queue ordering. Key(job, now) is the policy's priority key — smaller
/// runs first:
///   kRiskAdjustedSlack: deadline - now - (mean + z_eps * stddev), with
///     z_eps = NormalQuantile(1 - eps). A high-variance query loses its
///     apparent slack and is pulled forward before its deadline becomes a
///     coin flip.
///   kExpectedSlack:     deadline - now - mean.
///   kFifo:              arrival time.
struct OrderingPolicy {
  OrderingPolicyKind kind = OrderingPolicyKind::kFifo;
  double eps = 0.1;  ///< risk level for kRiskAdjustedSlack

  double Key(const ScheduledJob& job, double now_ms) const;
};

/// The queue position to dispatch next under `policy`: the job with the
/// minimal (Key, id) pair. The id tie-break makes the choice a total
/// order, so dispatch is deterministic for any queue permutation.
/// Precondition: queue is non-empty.
size_t PickNext(const OrderingPolicy& policy,
                const std::vector<ScheduledJob>& queue, double now_ms);

/// Exact P(both meet their deadlines | run a then b) for independent
/// normal predicted times and *relative* deadlines (ms from now):
/// a must finish by deadline_a_ms, and a + b by deadline_b_ms. Thin
/// wrapper over ProbBothMeetSequential (1-d quadrature; see gaussian.h).
double PairBothMeetProb(const Gaussian& a_ms, double deadline_a_ms,
                        const Gaussian& b_ms, double deadline_b_ms);

/// The historical approximation from examples/query_scheduler.cpp:
/// P(A <= da) * P(A + B <= db). It assumes the two events are independent
/// when they are positively correlated through A, and it ignores that
/// conditioning on {A <= da} truncates A's contribution to the sum — so
/// it systematically UNDERESTIMATES the joint probability (proved against
/// the Monte-Carlo oracle in property_test; the gap can flip close
/// ordering decisions). Kept only as a documented, tested approximation;
/// new code should call PairBothMeetProb.
double NaiveBothMeetProb(const Gaussian& a_ms, double deadline_a_ms,
                         const Gaussian& b_ms, double deadline_b_ms);

/// Scalar optimizer cost of a finalized plan: per-node resource vectors
/// from the engine cost model dotted with PostgreSQL-ish default weights
/// (seq_page_cost 1, random_page_cost 4, cpu_tuple_cost 0.01,
/// cpu_index_tuple_cost 0.005, cpu_operator_cost 0.0025). This is the
/// "what if we never sampled" baseline signal: cardinalities come from
/// catalog statistics only.
double OptimizerCostEstimate(const Plan& plan, const Database& db);

}  // namespace uqp
