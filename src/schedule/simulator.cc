#include "schedule/simulator.h"

#include <cstring>
#include <utility>

#include "common/logging.h"
#include "engine/executor.h"
#include "engine/planner.h"
#include "math/rng.h"
#include "workload/arrivals.h"
#include "workload/common.h"

namespace uqp {

namespace {

// Event-log encoding: fixed-width little-endian records, doubles as raw
// IEEE-754 bit patterns. Any nondeterminism — a reordered dispatch, a
// prediction that differs in the last ulp — changes the bytes.
enum EventTag : uint8_t {
  kEvArrival = 1,  // [tag][id][t][admitted][pred mean][pred var][deadline]
  kEvStart = 2,    // [tag][id][t]
  kEvFinish = 3,   // [tag][id][t][met]
};

void AppendU64(std::vector<uint8_t>* log, uint64_t v) {
  for (int i = 0; i < 8; ++i) log->push_back(uint8_t(v >> (8 * i)));
}

void AppendF64(std::vector<uint8_t>* log, double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU64(log, bits);
}

/// A job occupying a server slot.
struct RunningJob {
  ScheduledJob job;
  double start_ms = 0.0;
  double finish_ms = 0.0;  // start + true runtime (unknown to policies)
};

/// Index of the next slot to free: minimal (finish, id) — the total order
/// that keeps completion processing deterministic.
size_t NextCompletion(const std::vector<RunningJob>& running) {
  size_t best = 0;
  for (size_t i = 1; i < running.size(); ++i) {
    if (running[i].finish_ms < running[best].finish_ms ||
        (running[i].finish_ms == running[best].finish_ms &&
         running[i].job.id < running[best].job.id)) {
      best = i;
    }
  }
  return best;
}

/// The policy's own view of one job's service demand in ms: the predicted
/// mean, except the cost-only controller — which never sampled — sees
/// only its scaled optimizer cost.
double SignalMs(const AdmissionPolicy& admission, const ScheduledJob& job) {
  if (admission.kind == AdmissionPolicyKind::kCostOnly) {
    return job.optimizer_cost * admission.cost_scale_ms;
  }
  return job.predicted_ms.mean;
}

/// Backlog estimate at admission time: predicted work still in front of a
/// new arrival (remaining running work plus the whole queue), spread over
/// the K slots. Every policy pays the same charge, measured in its own
/// signal — the comparison stays apples-to-apples.
double BacklogMs(const AdmissionPolicy& admission,
                 const std::vector<RunningJob>& running,
                 const std::vector<ScheduledJob>& queue, double now_ms,
                 int servers) {
  double total = 0.0;
  for (const RunningJob& r : running) {
    const double remaining = r.start_ms + SignalMs(admission, r.job) - now_ms;
    if (remaining > 0.0) total += remaining;
  }
  for (const ScheduledJob& j : queue) total += SignalMs(admission, j);
  return total / servers;
}

}  // namespace

ScheduleScenario BuildScenario(const Database& db, const SampleDb& samples,
                               const CostUnits& units,
                               SimulatedMachine* machine,
                               const ScenarioOptions& options) {
  ScheduleScenario s;
  s.servers = options.servers;

  // 1. Plan pool.
  std::vector<WorkloadQuery> queries;
  if (options.workload == "mixed") {
    for (const char* kind : {"micro", "seljoin", "tpch"}) {
      auto part =
          MakeWorkload(db, kind, options.seed, options.workload_size);
      for (auto& q : part) queries.push_back(std::move(q));
    }
  } else {
    queries =
        MakeWorkload(db, options.workload, options.seed, options.workload_size);
  }
  for (auto& q : queries) {
    auto plan_or = OptimizePlan(std::move(q.logical), db);
    if (!plan_or.ok()) continue;
    s.pool.push_back(std::move(plan_or).value());
  }
  UQP_CHECK(!s.pool.empty()) << "scenario needs a non-empty plan pool";

  // 2. Reference predictions (single-threaded private service; these pin
  // deadlines and the offered load, independent of the service options the
  // policies later run under).
  ServiceOptions ref_options;
  ref_options.predictor.num_threads = 1;
  PredictionService ref(&db, &samples, units, ref_options);
  for (const Plan& plan : s.pool) {
    auto pred_or = ref.Predict(plan);
    UQP_CHECK(pred_or.ok()) << "reference prediction failed";
    s.pool_ref_mean_ms.push_back(pred_or->mean());
    s.pool_fingerprint.push_back(PlanFingerprint(plan));
    s.pool_cost.push_back(OptimizerCostEstimate(plan, db));
  }

  // 3. Cost-only baseline calibration: least squares through the origin,
  // ms-per-cost-unit over the pool. (The baseline gets a fair shot: the
  // best single linear map from scalar cost to running time.)
  double num = 0.0, den = 0.0;
  for (size_t i = 0; i < s.pool.size(); ++i) {
    num += s.pool_cost[i] * s.pool_ref_mean_ms[i];
    den += s.pool_cost[i] * s.pool_cost[i];
  }
  s.cost_scale_ms = den > 0.0 ? num / den : 1.0;

  // 4. Plan mix, arrivals, deadlines, true runtimes — all pre-drawn from
  // disjoint seeded streams so every policy replays identical inputs.
  s.job_plan = MakePlanIndices(options.mix, s.pool.size(), options.num_jobs,
                               options.zipf_z, options.seed + 101);

  double avg_ref_ms = 0.0;
  for (size_t p : s.job_plan) avg_ref_ms += s.pool_ref_mean_ms[p];
  avg_ref_ms /= double(options.num_jobs);
  s.rate_qps = options.load * options.servers / (avg_ref_ms / 1000.0);
  const auto arrival_s = MakeArrivalSeconds(options.trace, s.rate_qps,
                                            options.num_jobs,
                                            options.seed + 202);
  s.arrival_ms.reserve(options.num_jobs);
  for (double t : arrival_s) s.arrival_ms.push_back(t * 1000.0);

  Rng deadline_rng(options.seed + 303);
  for (size_t i = 0; i < options.num_jobs; ++i) {
    const double factor =
        options.deadline_lo +
        (options.deadline_hi - options.deadline_lo) * deadline_rng.NextDouble();
    s.deadline_ms.push_back(s.arrival_ms[i] +
                            factor * s.pool_ref_mean_ms[s.job_plan[i]]);
  }

  Executor executor(&db);
  std::vector<ExecResult> executed;
  executed.reserve(s.pool.size());
  for (const Plan& plan : s.pool) {
    auto full = executor.Execute(plan, ExecOptions{});
    UQP_CHECK(full.ok()) << "scenario plan failed to execute";
    executed.push_back(std::move(full).value());
  }
  // True runtimes drawn in arrival order from the machine's sequential
  // stream: per-job noise is independent of which policy later runs it.
  // Executions run at the scenario's multiprogramming level — K slots
  // share one machine, so latent cost units inflate and spread (the
  // paper's §8 interference view). Predictions are calibrated at
  // concurrency 1, so every policy faces the same optimistic bias; only
  // margins absorb it.
  for (size_t i = 0; i < options.num_jobs; ++i) {
    s.true_ms.push_back(
        machine->ExecuteOnce(executed[s.job_plan[i]], options.servers));
  }
  return s;
}

uint64_t EventLogHash(const std::vector<uint8_t>& log) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (uint8_t b : log) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

Simulator::Simulator(const Database* db, const SampleDb* samples,
                     CostUnits units, ServiceOptions service_options)
    : db_(db),
      samples_(samples),
      units_(units),
      service_options_(std::move(service_options)) {}

SimResult Simulator::Run(const ScheduleScenario& scenario,
                         const SimPolicy& policy) {
  // Fresh service per run: every policy starts from the same cold cache
  // and empty feedback state, then lives with the consequences of its own
  // decisions (what it admits is what it later reports observations for).
  PredictionService service(db_, samples_, units_, service_options_);

  AdmissionPolicy admission = policy.admission;
  admission.cost_scale_ms = scenario.cost_scale_ms;

  SimResult result;
  SimMetrics& m = result.metrics;
  std::vector<uint8_t>& log = result.event_log;

  const size_t n = scenario.arrival_ms.size();
  m.arrivals = n;

  std::vector<ScheduledJob> queue;        // admitted, waiting for a slot
  std::vector<RunningJob> running;        // occupying the K slots
  std::vector<Prediction> decision_pred(n);  // as-decided, for feedback

  size_t next_arrival = 0;
  double now = 0.0;

  while (next_arrival < n || !running.empty()) {
    // Next event: earliest of (next arrival, next completion); ties go to
    // the completion so freed slots are visible to the arriving query's
    // backlog estimate.
    bool take_arrival = false;
    size_t completion = 0;
    if (!running.empty()) completion = NextCompletion(running);
    if (next_arrival < n &&
        (running.empty() ||
         scenario.arrival_ms[next_arrival] < running[completion].finish_ms)) {
      take_arrival = true;
    }

    if (take_arrival) {
      const size_t id = next_arrival++;
      now = scenario.arrival_ms[id];
      ScheduledJob job;
      job.id = id;
      job.arrival_ms = now;
      job.deadline_ms = scenario.deadline_ms[id];
      job.optimizer_cost = scenario.pool_cost[scenario.job_plan[id]];
      auto pred_or = service.Predict(scenario.pool[scenario.job_plan[id]]);
      UQP_CHECK(pred_or.ok()) << "simulated prediction failed";
      job.predicted_ms = pred_or->distribution();

      ++m.admission_checks;
      const double backlog =
          BacklogMs(admission, running, queue, now, scenario.servers);
      const double budget = job.deadline_ms - now - backlog;
      const bool admits = admission.Admits(job, budget);

      log.push_back(kEvArrival);
      AppendU64(&log, id);
      AppendF64(&log, now);
      log.push_back(admits ? 1 : 0);
      AppendF64(&log, job.predicted_ms.mean);
      AppendF64(&log, job.predicted_ms.variance);
      AppendF64(&log, job.deadline_ms);

      if (admits) {
        ++m.admitted;
        decision_pred[id] = *pred_or;
        queue.push_back(job);
      } else {
        ++m.rejected;
      }
    } else {
      // Completion.
      const RunningJob done = running[completion];
      running.erase(running.begin() + ptrdiff_t(completion));
      now = done.finish_ms;
      const size_t id = done.job.id;
      const double true_ms = scenario.true_ms[id];
      const bool met = now <= done.job.deadline_ms;
      ++m.completed;
      m.busy_ms += true_ms;
      if (!met) {
        ++m.violations;
        m.wasted_ms += true_ms;
      }
      if (now > m.makespan_ms) m.makespan_ms = now;
      // Close the loop: the observation lands against the prediction the
      // admission decision was made with.
      service.ReportObservedAgainst(
          scenario.pool_fingerprint[scenario.job_plan[id]], decision_pred[id],
          true_ms);

      log.push_back(kEvFinish);
      AppendU64(&log, id);
      AppendF64(&log, now);
      log.push_back(met ? 1 : 0);
    }

    // Fill freed slots from the queue by the ordering policy.
    while (int(running.size()) < scenario.servers && !queue.empty()) {
      ++m.dispatch_decisions;
      const size_t pick = PickNext(policy.ordering, queue, now);
      RunningJob r;
      r.job = queue[pick];
      r.start_ms = now;
      r.finish_ms = now + scenario.true_ms[r.job.id];
      queue.erase(queue.begin() + ptrdiff_t(pick));

      log.push_back(kEvStart);
      AppendU64(&log, r.job.id);
      AppendF64(&log, now);
      running.push_back(r);
    }
  }

  if (m.admitted > 0) {
    m.violation_rate = double(m.violations) / double(m.admitted);
  }
  if (m.makespan_ms > 0.0) {
    m.goodput_per_s =
        double(m.admitted - m.violations) / (m.makespan_ms / 1000.0);
  }
  result.service_stats = service.stats();
  return result;
}

}  // namespace uqp
