#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "cost/units.h"
#include "core/pipeline.h"
#include "engine/plan.h"
#include "hw/machine.h"
#include "sampling/sample_db.h"
#include "schedule/policy.h"
#include "service/prediction_service.h"
#include "storage/database.h"

namespace uqp {

/// Deterministic discrete-event SLO simulator (ROADMAP item 3): a seeded
/// query stream with deadlines is replayed against K server slots, with a
/// pluggable admission controller and queue-ordering policy driving the
/// real PredictionService — caching, in-flight artifacts, calibration
/// epochs and the feedback loop all shape the decisions, and every
/// completed job's observed runtime flows back through
/// ReportObservedAgainst.
///
/// Determinism contract (enforced by schedule_test and the determinism
/// linter): the simulator reads no real clock and draws no randomness of
/// its own — all stochastic inputs are pre-drawn into the scenario at
/// build time — and service predictions are bit-identical at every thread
/// count, so the same (scenario, policy) pair produces a byte-identical
/// event log no matter how many threads the service runs.

/// Knobs for building one scenario. Everything downstream is a pure
/// function of these (plus the database/sample/units inputs).
struct ScenarioOptions {
  /// Plan pool source: "micro", "seljoin", "tpch", or "mixed" (all three).
  std::string workload = "seljoin";
  int workload_size = 2;  ///< size hint per workload family

  /// Arrival process (workload/arrivals.h): "uniform" | "poisson" |
  /// "randwalk". The rate is derived, not given: offered load is
  /// `load` * servers, measured in reference predicted work.
  std::string trace = "poisson";
  double load = 0.85;  ///< target utilization of the K servers

  /// Plan choice per arrival: "roundrobin" or "zipf" (skewed recurring
  /// mix; a few plans carry most traffic).
  std::string mix = "roundrobin";
  double zipf_z = 1.0;

  size_t num_jobs = 200;
  int servers = 2;

  /// Deadline = arrival + factor * reference predicted mean, factor drawn
  /// uniformly per job from [deadline_lo, deadline_hi]. Tight factors make
  /// the outcome hinge on prediction uncertainty (SLAs are priced tight).
  double deadline_lo = 1.05;
  double deadline_hi = 2.0;

  uint64_t seed = 1;
};

/// A fully materialized scenario. Every policy run replays exactly this —
/// same arrivals, same deadlines, same pre-drawn true runtimes — so policy
/// comparisons differ only in their decisions.
struct ScheduleScenario {
  std::vector<Plan> pool;                 ///< optimized distinct plans
  std::vector<double> pool_cost;          ///< optimizer cost per pool plan
  std::vector<uint64_t> pool_fingerprint; ///< service feedback family key
  std::vector<double> pool_ref_mean_ms;   ///< reference predicted mean

  std::vector<size_t> job_plan;    ///< arrival i runs pool[job_plan[i]]
  std::vector<double> arrival_ms;  ///< absolute virtual arrival times
  std::vector<double> deadline_ms; ///< absolute virtual SLO deadlines
  std::vector<double> true_ms;     ///< pre-drawn actual runtimes

  double cost_scale_ms = 1.0;  ///< least-squares cost-units -> ms map
  double rate_qps = 0.0;       ///< derived arrival rate (diagnostic)
  int servers = 1;
};

/// Builds a scenario: optimizes the plan pool, derives reference
/// predictions (a private single-threaded service), calibrates the
/// cost-only baseline's cost_scale_ms by least squares through the origin
/// over the pool, draws the arrival/mix/deadline/true-runtime streams.
/// Deterministic in (db, samples, units, machine seed, options).
ScheduleScenario BuildScenario(const Database& db, const SampleDb& samples,
                               const CostUnits& units,
                               SimulatedMachine* machine,
                               const ScenarioOptions& options);

/// One policy pair under test.
struct SimPolicy {
  AdmissionPolicy admission;
  OrderingPolicy ordering;
};

struct SimMetrics {
  uint64_t arrivals = 0;
  uint64_t admitted = 0;
  uint64_t rejected = 0;
  uint64_t completed = 0;   ///< == admitted (every admitted job runs)
  uint64_t violations = 0;  ///< admitted jobs that missed their deadline
  uint64_t admission_checks = 0;
  uint64_t dispatch_decisions = 0;

  double makespan_ms = 0.0;  ///< last completion time (0 if none admitted)
  double busy_ms = 0.0;      ///< total server time consumed
  double wasted_ms = 0.0;    ///< server time burnt on SLO-violating jobs
  double violation_rate = 0.0;  ///< violations / admitted (0 if none)
  /// SLO-met admitted completions per second of makespan. This is the
  /// "admitted throughput" the acceptance gate compares: a policy that
  /// rejects everything scores 0, one that admits everything pays for its
  /// violations — useful work is what counts.
  double goodput_per_s = 0.0;
};

struct SimResult {
  SimMetrics metrics;
  /// Byte-exact trace of every arrival/start/finish event (ids, raw
  /// IEEE-754 bit patterns of times and predictions). Two runs of the
  /// same (scenario, policy) must produce identical bytes at any service
  /// thread count — the scheduling analogue of parallel_parity_test.
  std::vector<uint8_t> event_log;
  ServiceStats service_stats;
};

/// FNV-1a 64 over the event log (compact identity for gates and JSON).
uint64_t EventLogHash(const std::vector<uint8_t>& log);

/// The simulator. Each Run constructs a fresh PredictionService from the
/// stored options (cold cache: policies are compared from the same start),
/// then replays the scenario: admission is decided at arrival against the
/// remaining deadline budget minus a backlog estimate (queued + running
/// predicted work over K slots, measured in the policy's own signal), and
/// a freed slot dispatches by the ordering policy's (key, id) minimum.
class Simulator {
 public:
  Simulator(const Database* db, const SampleDb* samples, CostUnits units,
            ServiceOptions service_options);

  SimResult Run(const ScheduleScenario& scenario, const SimPolicy& policy);

 private:
  const Database* db_;
  const SampleDb* samples_;
  CostUnits units_;
  ServiceOptions service_options_;
};

}  // namespace uqp
