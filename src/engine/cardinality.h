#pragma once

#include <string>
#include <vector>

#include "engine/plan.h"
#include "storage/database.h"

namespace uqp {

/// The optimizer's histogram-based cardinality estimator.
///
/// This is the classic System-R-style estimator: per-predicate
/// selectivities from catalog histograms assuming attribute independence,
/// equi-join selectivity 1/max(d_left, d_right). The paper uses it two
/// ways: (a) the planner costs candidate plans with it, and (b) Algorithm 1
/// falls back to it (with variance 0) for operators above aggregates, where
/// the sampling estimator does not apply.
class CardinalityEstimator {
 public:
  explicit CardinalityEstimator(const Database* db) : db_(db) {}

  /// Estimated output rows per operator, indexed by node id. The plan must
  /// be finalized.
  std::vector<double> EstimatePlan(const Plan& plan) const;

  /// Selectivity of a predicate over a base table (1.0 for null predicate).
  double PredicateSelectivity(const Expr* e, const std::string& table) const;

 private:
  struct ColumnOrigin {
    std::string table;  ///< empty if synthesized (e.g. aggregate output)
    int column = -1;
  };

  double EstimateNode(const PlanNode* node, std::vector<double>* rows_by_id,
                      std::vector<ColumnOrigin>* origins) const;

  double ColumnDistinct(const ColumnOrigin& origin, double available_rows) const;

  double PredicateSelectivityOnStats(const Expr* e, const TableStats& stats) const;

  const Database* db_;
};

}  // namespace uqp
