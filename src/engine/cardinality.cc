#include "engine/cardinality.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <vector>

#include "common/logging.h"

namespace uqp {

namespace {

void FlattenConjunction(const Expr* e, std::vector<const Expr*>* conjuncts) {
  if (e == nullptr) return;
  if (e->kind == Expr::Kind::kAnd) {
    FlattenConjunction(e->lhs.get(), conjuncts);
    FlattenConjunction(e->rhs.get(), conjuncts);
    return;
  }
  conjuncts->push_back(e);
}

bool IsNumericRangeCmp(const Expr* e, const TableStats& stats) {
  if (e->kind != Expr::Kind::kCmp) return false;
  if (e->op == CmpOp::kEq || e->op == CmpOp::kNe) return false;
  if (e->constant.type == ValueType::kString) return false;
  if (e->column < 0 || e->column >= static_cast<int>(stats.columns.size())) {
    return false;
  }
  const ColumnStats& cs = stats.columns[static_cast<size_t>(e->column)];
  return cs.numeric && !cs.histogram.empty();
}

}  // namespace

double CardinalityEstimator::PredicateSelectivityOnStats(
    const Expr* e, const TableStats& stats) const {
  if (e == nullptr) return 1.0;
  switch (e->kind) {
    case Expr::Kind::kCmpCol:
      // Column-to-column comparison: PostgreSQL-style default guess.
      return e->op == CmpOp::kEq ? 0.005 : 0.333;
    case Expr::Kind::kAnd: {
      // PostgreSQL-style clauselist estimation: pair up range conjuncts on
      // the same column into interval selectivities instead of blindly
      // multiplying endpoint selectivities (which badly overestimates
      // narrow BETWEENs), then apply independence across columns.
      std::vector<const Expr*> conjuncts;
      FlattenConjunction(e, &conjuncts);
      struct Interval {
        double lo = -std::numeric_limits<double>::infinity();
        double hi = std::numeric_limits<double>::infinity();
      };
      std::map<int, Interval> ranges;
      double sel = 1.0;
      for (const Expr* c : conjuncts) {
        if (IsNumericRangeCmp(c, stats)) {
          Interval& iv = ranges[c->column];
          const double v = c->constant.AsDouble();
          switch (c->op) {
            case CmpOp::kLe:
            case CmpOp::kLt:
              iv.hi = std::min(iv.hi, v);
              break;
            case CmpOp::kGe:
            case CmpOp::kGt:
              iv.lo = std::max(iv.lo, v);
              break;
            default:
              break;
          }
        } else {
          sel *= PredicateSelectivityOnStats(c, stats);
        }
      }
      const double min_sel =
          stats.row_count > 0 ? 1.0 / static_cast<double>(stats.row_count) : 1e-9;
      for (const auto& [col, iv] : ranges) {
        const ColumnStats& cs = stats.columns[static_cast<size_t>(col)];
        double rsel;
        if (iv.lo > iv.hi) {
          rsel = min_sel;
        } else {
          rsel = cs.histogram.FractionRange(std::max(iv.lo, cs.histogram.min()),
                                            std::min(iv.hi, cs.histogram.max()));
        }
        sel *= std::max(min_sel, rsel);
      }
      return std::clamp(sel, 0.0, 1.0);
    }
    case Expr::Kind::kOr: {
      const double a = PredicateSelectivityOnStats(e->lhs.get(), stats);
      const double b = PredicateSelectivityOnStats(e->rhs.get(), stats);
      return std::clamp(a + b - a * b, 0.0, 1.0);
    }
    case Expr::Kind::kNot:
      return 1.0 - PredicateSelectivityOnStats(e->lhs.get(), stats);
    case Expr::Kind::kCmp: {
      if (e->column < 0 || e->column >= static_cast<int>(stats.columns.size())) {
        return 0.333;  // default guess, PostgreSQL-style
      }
      const ColumnStats& cs = stats.columns[static_cast<size_t>(e->column)];
      if (!cs.numeric) {
        // String equality via frequency map.
        if (e->op == CmpOp::kEq || e->op == CmpOp::kNe) {
          double freq = 0.0;
          auto it = cs.string_freq.find(e->constant.s);
          if (it != cs.string_freq.end() && stats.row_count > 0) {
            freq = static_cast<double>(it->second) /
                   static_cast<double>(stats.row_count);
          }
          return e->op == CmpOp::kEq ? freq : 1.0 - freq;
        }
        return 0.333;
      }
      const double v = e->constant.AsDouble();
      const auto& h = cs.histogram;
      if (h.empty()) return 0.333;
      const double eq =
          cs.num_distinct > 0 ? 1.0 / static_cast<double>(cs.num_distinct) : 0.0;
      switch (e->op) {
        case CmpOp::kEq:
          return eq;
        case CmpOp::kNe:
          return 1.0 - eq;
        case CmpOp::kLe:
          return h.FractionLessEq(v);
        case CmpOp::kLt:
          return std::max(0.0, h.FractionLessEq(v) - eq);
        case CmpOp::kGe:
          return std::max(0.0, 1.0 - h.FractionLessEq(v) + eq);
        case CmpOp::kGt:
          return std::max(0.0, 1.0 - h.FractionLessEq(v));
      }
      return 0.333;
    }
  }
  return 0.333;
}

double CardinalityEstimator::PredicateSelectivity(const Expr* e,
                                                  const std::string& table) const {
  if (e == nullptr) return 1.0;
  return PredicateSelectivityOnStats(e, db_->catalog().Get(table));
}

double CardinalityEstimator::ColumnDistinct(const ColumnOrigin& origin,
                                            double available_rows) const {
  if (origin.table.empty() || origin.column < 0) {
    return std::max(1.0, available_rows);
  }
  const TableStats& stats = db_->catalog().Get(origin.table);
  if (origin.column >= static_cast<int>(stats.columns.size())) {
    return std::max(1.0, available_rows);
  }
  const double d = static_cast<double>(
      stats.columns[static_cast<size_t>(origin.column)].num_distinct);
  return std::max(1.0, std::min(d, std::max(1.0, available_rows)));
}

double CardinalityEstimator::EstimateNode(
    const PlanNode* node, std::vector<double>* rows_by_id,
    std::vector<ColumnOrigin>* origins) const {
  double rows = 0.0;
  if (IsScan(node->type)) {
    const TableStats& stats = db_->catalog().Get(node->table_name);
    const double sel = PredicateSelectivityOnStats(node->predicate.get(), stats);
    rows = std::max(1.0, sel * static_cast<double>(stats.row_count));
    origins->clear();
    for (int c = 0; c < node->output_schema.num_columns(); ++c) {
      origins->push_back(ColumnOrigin{node->table_name, c});
    }
  } else if (IsJoin(node->type)) {
    std::vector<ColumnOrigin> left_origins, right_origins;
    const double nl = EstimateNode(node->left.get(), rows_by_id, &left_origins);
    const double nr = EstimateNode(node->right.get(), rows_by_id, &right_origins);
    double sel = 1.0;
    for (const auto& [lc, rc] : node->join_keys) {
      const double dl = ColumnDistinct(left_origins[static_cast<size_t>(lc)], nl);
      const double dr = ColumnDistinct(right_origins[static_cast<size_t>(rc)], nr);
      sel *= 1.0 / std::max(dl, dr);
    }
    if (node->join_keys.empty()) sel = 1.0;  // cross product
    if (node->predicate != nullptr) {
      sel *= 0.333;  // residual predicate default
    }
    rows = std::max(1.0, nl * nr * sel);
    *origins = left_origins;
    origins->insert(origins->end(), right_origins.begin(), right_origins.end());
  } else if (node->type == OpType::kAggregate) {
    std::vector<ColumnOrigin> child_origins;
    const double nl = EstimateNode(node->left.get(), rows_by_id, &child_origins);
    double groups = 1.0;
    for (int c : node->group_columns) {
      groups *= ColumnDistinct(child_origins[static_cast<size_t>(c)], nl);
    }
    rows = node->group_columns.empty() ? 1.0 : std::max(1.0, std::min(groups, nl));
    origins->clear();
    for (int c : node->group_columns) {
      origins->push_back(child_origins[static_cast<size_t>(c)]);
    }
    for (size_t i = 0; i < node->aggregates.size(); ++i) {
      origins->push_back(ColumnOrigin{});
    }
  } else {
    // Pass-through: sort / materialize.
    rows = EstimateNode(node->left.get(), rows_by_id, origins);
  }
  (*rows_by_id)[static_cast<size_t>(node->id)] = rows;
  return rows;
}

std::vector<double> CardinalityEstimator::EstimatePlan(const Plan& plan) const {
  UQP_CHECK(plan.root() != nullptr && plan.root()->id == 0)
      << "plan must be finalized before estimation";
  std::vector<double> rows(static_cast<size_t>(plan.num_operators()), 0.0);
  std::vector<ColumnOrigin> origins;
  EstimateNode(plan.root(), &rows, &origins);
  return rows;
}

}  // namespace uqp
