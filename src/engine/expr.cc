#include "engine/expr.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "common/logging.h"

namespace uqp {

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "<>";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

ExprPtr Expr::Cmp(int column, CmpOp op, Value constant) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kCmp;
  e->column = column;
  e->op = op;
  e->constant = constant;
  return e;
}

ExprPtr Expr::CmpColumns(int column, CmpOp op, int column2) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kCmpCol;
  e->column = column;
  e->op = op;
  e->column2 = column2;
  return e;
}

ExprPtr Expr::And(ExprPtr a, ExprPtr b) {
  if (a == nullptr) return b;
  if (b == nullptr) return a;
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kAnd;
  e->lhs = std::move(a);
  e->rhs = std::move(b);
  return e;
}

ExprPtr Expr::Or(ExprPtr a, ExprPtr b) {
  UQP_CHECK(a != nullptr && b != nullptr);
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kOr;
  e->lhs = std::move(a);
  e->rhs = std::move(b);
  return e;
}

ExprPtr Expr::Not(ExprPtr a) {
  UQP_CHECK(a != nullptr);
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kNot;
  e->lhs = std::move(a);
  return e;
}

ExprPtr Expr::Between(int column, Value lo, Value hi) {
  return And(Cmp(column, CmpOp::kGe, lo), Cmp(column, CmpOp::kLe, hi));
}

ExprPtr Expr::StrEq(int column, const std::string& s) {
  return Cmp(column, CmpOp::kEq, Value::String(s));
}

std::string Expr::ToString(const Schema* schema) const {
  switch (kind) {
    case Kind::kCmp: {
      std::string col = schema != nullptr && column < schema->num_columns()
                            ? schema->column(column).name
                            : "$" + std::to_string(column);
      return col + " " + CmpOpName(op) + " " + constant.ToString();
    }
    case Kind::kCmpCol: {
      auto name = [schema](int c) {
        return schema != nullptr && c < schema->num_columns()
                   ? schema->column(c).name
                   : "$" + std::to_string(c);
      };
      return name(column) + " " + CmpOpName(op) + " " + name(column2);
    }
    case Kind::kAnd:
      return "(" + lhs->ToString(schema) + " AND " + rhs->ToString(schema) + ")";
    case Kind::kOr:
      return "(" + lhs->ToString(schema) + " OR " + rhs->ToString(schema) + ")";
    case Kind::kNot:
      return "NOT (" + lhs->ToString(schema) + ")";
  }
  return "?";
}

bool EvalPredicate(const Expr& e, RowRef row) {
  switch (e.kind) {
    case Expr::Kind::kCmp: {
      const Value& v = row[e.column];
      switch (e.op) {
        case CmpOp::kEq:
          return v.Equals(e.constant);
        case CmpOp::kNe:
          return !v.Equals(e.constant);
        case CmpOp::kLt:
          return v.Compare(e.constant) < 0;
        case CmpOp::kLe:
          return v.Compare(e.constant) <= 0;
        case CmpOp::kGt:
          return v.Compare(e.constant) > 0;
        case CmpOp::kGe:
          return v.Compare(e.constant) >= 0;
      }
      return false;
    }
    case Expr::Kind::kCmpCol: {
      const int cmp = row[e.column].Compare(row[e.column2]);
      switch (e.op) {
        case CmpOp::kEq:
          return cmp == 0;
        case CmpOp::kNe:
          return cmp != 0;
        case CmpOp::kLt:
          return cmp < 0;
        case CmpOp::kLe:
          return cmp <= 0;
        case CmpOp::kGt:
          return cmp > 0;
        case CmpOp::kGe:
          return cmp >= 0;
      }
      return false;
    }
    case Expr::Kind::kAnd:
      return EvalPredicate(*e.lhs, row) && EvalPredicate(*e.rhs, row);
    case Expr::Kind::kOr:
      return EvalPredicate(*e.lhs, row) || EvalPredicate(*e.rhs, row);
    case Expr::Kind::kNot:
      return !EvalPredicate(*e.lhs, row);
  }
  return false;
}

namespace {

/// How a comparison node combines into the chunk mask.
enum class MaskMode {
  kFill,    ///< mask[i] = p(i)
  kNarrow,  ///< mask[i] &= p(i), lanes already clear are skipped (AND)
  kWiden,   ///< mask[i] |= p(i), lanes already set are skipped (OR)
};

template <typename RowPred>
void ApplyMask(MaskMode mode, int64_t n, uint8_t* mask, RowPred pred) {
  switch (mode) {
    case MaskMode::kFill:
      for (int64_t i = 0; i < n; ++i) mask[i] = pred(i) ? 1 : 0;
      break;
    case MaskMode::kNarrow:
      for (int64_t i = 0; i < n; ++i) {
        if (mask[i] != 0 && !pred(i)) mask[i] = 0;
      }
      break;
    case MaskMode::kWiden:
      for (int64_t i = 0; i < n; ++i) {
        if (mask[i] == 0 && pred(i)) mask[i] = 1;
      }
      break;
  }
}

void EvalBatchImpl(const Expr& e, const Value* rows, int stride, int64_t n,
                   uint8_t* mask, MaskMode mode) {
  switch (e.kind) {
    case Expr::Kind::kCmp: {
      const Value& c = e.constant;
      const Value* col = rows + e.column;
      auto cell = [col, stride](int64_t i) -> const Value& {
        return col[i * stride];
      };
      switch (e.op) {
        case CmpOp::kEq:
          ApplyMask(mode, n, mask, [&](int64_t i) { return cell(i).Equals(c); });
          break;
        case CmpOp::kNe:
          ApplyMask(mode, n, mask, [&](int64_t i) { return !cell(i).Equals(c); });
          break;
        case CmpOp::kLt:
          ApplyMask(mode, n, mask,
                    [&](int64_t i) { return cell(i).Compare(c) < 0; });
          break;
        case CmpOp::kLe:
          ApplyMask(mode, n, mask,
                    [&](int64_t i) { return cell(i).Compare(c) <= 0; });
          break;
        case CmpOp::kGt:
          ApplyMask(mode, n, mask,
                    [&](int64_t i) { return cell(i).Compare(c) > 0; });
          break;
        case CmpOp::kGe:
          ApplyMask(mode, n, mask,
                    [&](int64_t i) { return cell(i).Compare(c) >= 0; });
          break;
      }
      return;
    }
    case Expr::Kind::kCmpCol: {
      const Value* a = rows + e.column;
      const Value* b = rows + e.column2;
      auto cmp3 = [a, b, stride](int64_t i) {
        return a[i * stride].Compare(b[i * stride]);
      };
      switch (e.op) {
        case CmpOp::kEq:
          ApplyMask(mode, n, mask, [&](int64_t i) { return cmp3(i) == 0; });
          break;
        case CmpOp::kNe:
          ApplyMask(mode, n, mask, [&](int64_t i) { return cmp3(i) != 0; });
          break;
        case CmpOp::kLt:
          ApplyMask(mode, n, mask, [&](int64_t i) { return cmp3(i) < 0; });
          break;
        case CmpOp::kLe:
          ApplyMask(mode, n, mask, [&](int64_t i) { return cmp3(i) <= 0; });
          break;
        case CmpOp::kGt:
          ApplyMask(mode, n, mask, [&](int64_t i) { return cmp3(i) > 0; });
          break;
        case CmpOp::kGe:
          ApplyMask(mode, n, mask, [&](int64_t i) { return cmp3(i) >= 0; });
          break;
      }
      return;
    }
    case Expr::Kind::kAnd:
      if (mode == MaskMode::kWiden) {
        // mask |= (a AND b): materialize the conjunction in a scratch mask.
        std::vector<uint8_t> tmp(static_cast<size_t>(n));
        EvalBatchImpl(*e.lhs, rows, stride, n, tmp.data(), MaskMode::kFill);
        EvalBatchImpl(*e.rhs, rows, stride, n, tmp.data(), MaskMode::kNarrow);
        for (int64_t i = 0; i < n; ++i) mask[i] |= tmp[static_cast<size_t>(i)];
        return;
      }
      EvalBatchImpl(*e.lhs, rows, stride, n, mask, mode);
      EvalBatchImpl(*e.rhs, rows, stride, n, mask, MaskMode::kNarrow);
      return;
    case Expr::Kind::kOr:
      if (mode == MaskMode::kNarrow) {
        // mask &= (a OR b): materialize the disjunction in a scratch mask.
        std::vector<uint8_t> tmp(static_cast<size_t>(n));
        EvalBatchImpl(*e.lhs, rows, stride, n, tmp.data(), MaskMode::kFill);
        EvalBatchImpl(*e.rhs, rows, stride, n, tmp.data(), MaskMode::kWiden);
        for (int64_t i = 0; i < n; ++i) mask[i] &= tmp[static_cast<size_t>(i)];
        return;
      }
      EvalBatchImpl(*e.lhs, rows, stride, n, mask, mode);
      EvalBatchImpl(*e.rhs, rows, stride, n, mask, MaskMode::kWiden);
      return;
    case Expr::Kind::kNot: {
      std::vector<uint8_t> tmp(static_cast<size_t>(n));
      EvalBatchImpl(*e.lhs, rows, stride, n, tmp.data(), MaskMode::kFill);
      ApplyMask(mode, n, mask,
                [&](int64_t i) { return tmp[static_cast<size_t>(i)] == 0; });
      return;
    }
  }
}

}  // namespace

void EvalPredicateBatch(const Expr& e, const Value* rows, int stride,
                        int64_t n, uint8_t* mask) {
  EvalBatchImpl(e, rows, stride, n, mask, MaskMode::kFill);
}

int PredicateOpCount(const Expr* e) {
  if (e == nullptr) return 0;
  switch (e->kind) {
    case Expr::Kind::kCmp:
    case Expr::Kind::kCmpCol:
      return 1;
    case Expr::Kind::kAnd:
    case Expr::Kind::kOr:
      return PredicateOpCount(e->lhs.get()) + PredicateOpCount(e->rhs.get());
    case Expr::Kind::kNot:
      return PredicateOpCount(e->lhs.get());
  }
  return 0;
}

uint64_t ExprFingerprint(const Expr* e) {
  if (e == nullptr) return 0x9ae16a3b2f90404fULL;  // null-predicate tag
  uint64_t h = 0xc3a5c85c97cb3127ULL;
  h = HashMix64(h, static_cast<uint64_t>(e->kind));
  switch (e->kind) {
    case Expr::Kind::kCmp:
      h = HashMix64(h, static_cast<uint64_t>(e->op));
      h = HashMix64(h, static_cast<uint64_t>(e->column));
      h = HashMix64(h, e->constant.Hash());
      break;
    case Expr::Kind::kCmpCol:
      h = HashMix64(h, static_cast<uint64_t>(e->op));
      h = HashMix64(h, static_cast<uint64_t>(e->column));
      h = HashMix64(h, static_cast<uint64_t>(e->column2));
      break;
    case Expr::Kind::kAnd:
    case Expr::Kind::kOr:
      h = HashMix64(h, ExprFingerprint(e->lhs.get()));
      h = HashMix64(h, ExprFingerprint(e->rhs.get()));
      break;
    case Expr::Kind::kNot:
      h = HashMix64(h, ExprFingerprint(e->lhs.get()));
      break;
  }
  return h;
}

void AppendKeyU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

namespace {

void AppendKeyValue(std::string* out, const Value& v) {
  out->push_back(static_cast<char>(v.type));
  // The union is 8 bytes for every type (string constants are interned
  // pool ids, stable within a process); serialize the widest member.
  uint64_t bits = 0;
  static_assert(sizeof(v.i) == sizeof(bits), "value payload must be 8 bytes");
  std::memcpy(&bits, &v.i, sizeof(bits));
  AppendKeyU64(out, bits);
}

}  // namespace

void AppendExprKey(const Expr* e, std::string* out) {
  if (e == nullptr) {
    out->push_back('\0');  // null-predicate tag
    return;
  }
  out->push_back(static_cast<char>(static_cast<int>(e->kind) + 1));
  switch (e->kind) {
    case Expr::Kind::kCmp:
      out->push_back(static_cast<char>(e->op));
      AppendKeyU64(out, static_cast<uint64_t>(e->column));
      AppendKeyValue(out, e->constant);
      break;
    case Expr::Kind::kCmpCol:
      out->push_back(static_cast<char>(e->op));
      AppendKeyU64(out, static_cast<uint64_t>(e->column));
      AppendKeyU64(out, static_cast<uint64_t>(e->column2));
      break;
    case Expr::Kind::kAnd:
    case Expr::Kind::kOr:
      AppendExprKey(e->lhs.get(), out);
      AppendExprKey(e->rhs.get(), out);
      break;
    case Expr::Kind::kNot:
      AppendExprKey(e->lhs.get(), out);
      break;
  }
}

bool TryExtractRange(const Expr* e, int column, double* lo, double* hi) {
  if (e == nullptr) return true;
  switch (e->kind) {
    case Expr::Kind::kAnd:
      return TryExtractRange(e->lhs.get(), column, lo, hi) &&
             TryExtractRange(e->rhs.get(), column, lo, hi);
    case Expr::Kind::kCmp: {
      if (e->column != column || e->constant.type == ValueType::kString) {
        return false;
      }
      const double v = e->constant.AsDouble();
      switch (e->op) {
        case CmpOp::kEq:
          *lo = std::max(*lo, v);
          *hi = std::min(*hi, v);
          return true;
        case CmpOp::kLe:
          *hi = std::min(*hi, v);
          return true;
        case CmpOp::kLt:
          *hi = std::min(*hi, std::nextafter(v, -1e300));
          return true;
        case CmpOp::kGe:
          *lo = std::max(*lo, v);
          return true;
        case CmpOp::kGt:
          *lo = std::max(*lo, std::nextafter(v, 1e300));
          return true;
        default:
          return false;
      }
    }
    default:
      return false;
  }
}

void CollectIndexRange(const Expr* e, int column, double* lo, double* hi,
                       bool* has_range, bool* pure) {
  if (e == nullptr) return;
  switch (e->kind) {
    case Expr::Kind::kAnd:
      CollectIndexRange(e->lhs.get(), column, lo, hi, has_range, pure);
      CollectIndexRange(e->rhs.get(), column, lo, hi, has_range, pure);
      return;
    case Expr::Kind::kCmp: {
      double clo = -std::numeric_limits<double>::infinity();
      double chi = std::numeric_limits<double>::infinity();
      if (e->column == column && TryExtractRange(e, column, &clo, &chi)) {
        *lo = std::max(*lo, clo);
        *hi = std::min(*hi, chi);
        *has_range = true;
        return;
      }
      *pure = false;
      return;
    }
    default:
      // OR / NOT / column-column conjuncts stay in the residual filter.
      *pure = false;
      return;
  }
}

ExprPtr CloneExprTree(const ExprPtr& e) {
  if (e == nullptr) return nullptr;
  auto out = std::make_shared<Expr>(*e);
  out->lhs = CloneExprTree(e->lhs);
  out->rhs = CloneExprTree(e->rhs);
  return out;
}

ExprPtr ShiftColumns(const ExprPtr& e, int offset) {
  if (e == nullptr) return nullptr;
  auto out = std::make_shared<Expr>(*e);
  if (e->kind == Expr::Kind::kCmp) {
    out->column += offset;
  } else if (e->kind == Expr::Kind::kCmpCol) {
    out->column += offset;
    out->column2 += offset;
  } else {
    out->lhs = ShiftColumns(e->lhs, offset);
    out->rhs = ShiftColumns(e->rhs, offset);
  }
  return out;
}

}  // namespace uqp
