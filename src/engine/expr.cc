#include "engine/expr.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace uqp {

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "<>";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

ExprPtr Expr::Cmp(int column, CmpOp op, Value constant) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kCmp;
  e->column = column;
  e->op = op;
  e->constant = constant;
  return e;
}

ExprPtr Expr::CmpColumns(int column, CmpOp op, int column2) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kCmpCol;
  e->column = column;
  e->op = op;
  e->column2 = column2;
  return e;
}

ExprPtr Expr::And(ExprPtr a, ExprPtr b) {
  if (a == nullptr) return b;
  if (b == nullptr) return a;
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kAnd;
  e->lhs = std::move(a);
  e->rhs = std::move(b);
  return e;
}

ExprPtr Expr::Or(ExprPtr a, ExprPtr b) {
  UQP_CHECK(a != nullptr && b != nullptr);
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kOr;
  e->lhs = std::move(a);
  e->rhs = std::move(b);
  return e;
}

ExprPtr Expr::Not(ExprPtr a) {
  UQP_CHECK(a != nullptr);
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kNot;
  e->lhs = std::move(a);
  return e;
}

ExprPtr Expr::Between(int column, Value lo, Value hi) {
  return And(Cmp(column, CmpOp::kGe, lo), Cmp(column, CmpOp::kLe, hi));
}

ExprPtr Expr::StrEq(int column, const std::string& s) {
  return Cmp(column, CmpOp::kEq, Value::String(s));
}

std::string Expr::ToString(const Schema* schema) const {
  switch (kind) {
    case Kind::kCmp: {
      std::string col = schema != nullptr && column < schema->num_columns()
                            ? schema->column(column).name
                            : "$" + std::to_string(column);
      return col + " " + CmpOpName(op) + " " + constant.ToString();
    }
    case Kind::kCmpCol: {
      auto name = [schema](int c) {
        return schema != nullptr && c < schema->num_columns()
                   ? schema->column(c).name
                   : "$" + std::to_string(c);
      };
      return name(column) + " " + CmpOpName(op) + " " + name(column2);
    }
    case Kind::kAnd:
      return "(" + lhs->ToString(schema) + " AND " + rhs->ToString(schema) + ")";
    case Kind::kOr:
      return "(" + lhs->ToString(schema) + " OR " + rhs->ToString(schema) + ")";
    case Kind::kNot:
      return "NOT (" + lhs->ToString(schema) + ")";
  }
  return "?";
}

bool EvalPredicate(const Expr& e, RowRef row) {
  switch (e.kind) {
    case Expr::Kind::kCmp: {
      const Value& v = row[e.column];
      switch (e.op) {
        case CmpOp::kEq:
          return v.Equals(e.constant);
        case CmpOp::kNe:
          return !v.Equals(e.constant);
        case CmpOp::kLt:
          return v.Compare(e.constant) < 0;
        case CmpOp::kLe:
          return v.Compare(e.constant) <= 0;
        case CmpOp::kGt:
          return v.Compare(e.constant) > 0;
        case CmpOp::kGe:
          return v.Compare(e.constant) >= 0;
      }
      return false;
    }
    case Expr::Kind::kCmpCol: {
      const int cmp = row[e.column].Compare(row[e.column2]);
      switch (e.op) {
        case CmpOp::kEq:
          return cmp == 0;
        case CmpOp::kNe:
          return cmp != 0;
        case CmpOp::kLt:
          return cmp < 0;
        case CmpOp::kLe:
          return cmp <= 0;
        case CmpOp::kGt:
          return cmp > 0;
        case CmpOp::kGe:
          return cmp >= 0;
      }
      return false;
    }
    case Expr::Kind::kAnd:
      return EvalPredicate(*e.lhs, row) && EvalPredicate(*e.rhs, row);
    case Expr::Kind::kOr:
      return EvalPredicate(*e.lhs, row) || EvalPredicate(*e.rhs, row);
    case Expr::Kind::kNot:
      return !EvalPredicate(*e.lhs, row);
  }
  return false;
}

int PredicateOpCount(const Expr* e) {
  if (e == nullptr) return 0;
  switch (e->kind) {
    case Expr::Kind::kCmp:
    case Expr::Kind::kCmpCol:
      return 1;
    case Expr::Kind::kAnd:
    case Expr::Kind::kOr:
      return PredicateOpCount(e->lhs.get()) + PredicateOpCount(e->rhs.get());
    case Expr::Kind::kNot:
      return PredicateOpCount(e->lhs.get());
  }
  return 0;
}

bool TryExtractRange(const Expr* e, int column, double* lo, double* hi) {
  if (e == nullptr) return true;
  switch (e->kind) {
    case Expr::Kind::kAnd:
      return TryExtractRange(e->lhs.get(), column, lo, hi) &&
             TryExtractRange(e->rhs.get(), column, lo, hi);
    case Expr::Kind::kCmp: {
      if (e->column != column || e->constant.type == ValueType::kString) {
        return false;
      }
      const double v = e->constant.AsDouble();
      switch (e->op) {
        case CmpOp::kEq:
          *lo = std::max(*lo, v);
          *hi = std::min(*hi, v);
          return true;
        case CmpOp::kLe:
          *hi = std::min(*hi, v);
          return true;
        case CmpOp::kLt:
          *hi = std::min(*hi, std::nextafter(v, -1e300));
          return true;
        case CmpOp::kGe:
          *lo = std::max(*lo, v);
          return true;
        case CmpOp::kGt:
          *lo = std::max(*lo, std::nextafter(v, 1e300));
          return true;
        default:
          return false;
      }
    }
    default:
      return false;
  }
}

void CollectIndexRange(const Expr* e, int column, double* lo, double* hi,
                       bool* has_range, bool* pure) {
  if (e == nullptr) return;
  switch (e->kind) {
    case Expr::Kind::kAnd:
      CollectIndexRange(e->lhs.get(), column, lo, hi, has_range, pure);
      CollectIndexRange(e->rhs.get(), column, lo, hi, has_range, pure);
      return;
    case Expr::Kind::kCmp: {
      double clo = -std::numeric_limits<double>::infinity();
      double chi = std::numeric_limits<double>::infinity();
      if (e->column == column && TryExtractRange(e, column, &clo, &chi)) {
        *lo = std::max(*lo, clo);
        *hi = std::min(*hi, chi);
        *has_range = true;
        return;
      }
      *pure = false;
      return;
    }
    default:
      // OR / NOT / column-column conjuncts stay in the residual filter.
      *pure = false;
      return;
  }
}

ExprPtr ShiftColumns(const ExprPtr& e, int offset) {
  if (e == nullptr) return nullptr;
  auto out = std::make_shared<Expr>(*e);
  if (e->kind == Expr::Kind::kCmp) {
    out->column += offset;
  } else if (e->kind == Expr::Kind::kCmpCol) {
    out->column += offset;
    out->column2 += offset;
  } else {
    out->lhs = ShiftColumns(e->lhs, offset);
    out->rhs = ShiftColumns(e->rhs, offset);
  }
  return out;
}

}  // namespace uqp
