#pragma once

#include <memory>

#include "common/status.h"
#include "engine/cardinality.h"
#include "engine/plan.h"

namespace uqp {

/// Heuristic physical-planning knobs.
struct PlannerConfig {
  /// Estimated scan selectivity below which an index scan is preferred
  /// over a sequential scan (when the predicate is an indexable range).
  double index_selectivity_threshold = 0.12;
  /// Estimated inner cardinality at or below which an equi-join runs as a
  /// nested-loop join instead of a hash join.
  double nestloop_inner_rows = 64.0;
};

/// Rewrites a logical tree (scans as SeqScan, joins as HashJoin) into a
/// physical plan: access-path selection (seq vs index scan) and join
/// algorithm choice (hash vs nested loop; joins without keys become
/// nested-loop cross joins with residual predicates).
///
/// Column references are preserved: children are never reordered, so key
/// and aggregate column indexes written against the logical tree remain
/// valid in the physical plan.
StatusOr<Plan> OptimizePlan(std::unique_ptr<PlanNode> root, const Database& db,
                            const PlannerConfig& config = PlannerConfig());

}  // namespace uqp
