#include "engine/plan.h"

#include <functional>

#include "common/logging.h"

namespace uqp {

const char* OpTypeName(OpType t) {
  switch (t) {
    case OpType::kSeqScan:
      return "SeqScan";
    case OpType::kIndexScan:
      return "IndexScan";
    case OpType::kHashJoin:
      return "HashJoin";
    case OpType::kMergeJoin:
      return "MergeJoin";
    case OpType::kNestLoopJoin:
      return "NestLoopJoin";
    case OpType::kSort:
      return "Sort";
    case OpType::kAggregate:
      return "Aggregate";
    case OpType::kMaterialize:
      return "Materialize";
  }
  return "?";
}

bool IsScan(OpType t) {
  return t == OpType::kSeqScan || t == OpType::kIndexScan;
}

bool IsJoin(OpType t) {
  return t == OpType::kHashJoin || t == OpType::kMergeJoin ||
         t == OpType::kNestLoopJoin;
}

bool IsPassThrough(OpType t) {
  return t == OpType::kSort || t == OpType::kMaterialize;
}

namespace {

Status FinalizeNode(PlanNode* node, const Database& db, int* next_id,
                    int* next_leaf) {
  node->id = (*next_id)++;
  node->leaf_begin = *next_leaf;

  if (IsScan(node->type)) {
    if (!db.HasTable(node->table_name)) {
      return Status::NotFound("plan references unknown table " + node->table_name);
    }
    const Table& table = db.GetTable(node->table_name);
    node->output_schema = table.schema();
    node->leaf_row_product = static_cast<double>(table.num_rows());
    node->has_aggregate_below = false;
    if (node->type == OpType::kIndexScan) {
      if (node->index_column < 0 ||
          node->index_column >= node->output_schema.num_columns()) {
        return Status::InvalidArgument("index scan column out of range");
      }
    }
    ++(*next_leaf);
    node->leaf_end = *next_leaf;
    return Status::OK();
  }

  if (node->left == nullptr) {
    return Status::InvalidArgument("non-scan operator missing child");
  }
  UQP_RETURN_IF_ERROR(FinalizeNode(node->left.get(), db, next_id, next_leaf));
  if (node->right != nullptr) {
    UQP_RETURN_IF_ERROR(FinalizeNode(node->right.get(), db, next_id, next_leaf));
  }
  node->leaf_end = *next_leaf;
  node->has_aggregate_below =
      node->left->has_aggregate_below ||
      node->left->type == OpType::kAggregate ||
      (node->right != nullptr && (node->right->has_aggregate_below ||
                                  node->right->type == OpType::kAggregate));
  node->leaf_row_product =
      node->left->leaf_row_product *
      (node->right != nullptr ? node->right->leaf_row_product : 1.0);

  switch (node->type) {
    case OpType::kHashJoin:
    case OpType::kMergeJoin:
    case OpType::kNestLoopJoin: {
      if (node->right == nullptr) {
        return Status::InvalidArgument("join requires two children");
      }
      for (const auto& [l, r] : node->join_keys) {
        if (l < 0 || l >= node->left->output_schema.num_columns() ||
            r < 0 || r >= node->right->output_schema.num_columns()) {
          return Status::InvalidArgument("join key column out of range");
        }
      }
      node->output_schema = Schema::Concat(node->left->output_schema,
                                           node->right->output_schema);
      break;
    }
    case OpType::kSort: {
      node->output_schema = node->left->output_schema;
      for (int c : node->sort_columns) {
        if (c < 0 || c >= node->output_schema.num_columns()) {
          return Status::InvalidArgument("sort column out of range");
        }
      }
      break;
    }
    case OpType::kMaterialize:
      node->output_schema = node->left->output_schema;
      break;
    case OpType::kAggregate: {
      std::vector<Column> cols;
      for (int c : node->group_columns) {
        if (c < 0 || c >= node->left->output_schema.num_columns()) {
          return Status::InvalidArgument("group column out of range");
        }
        cols.push_back(node->left->output_schema.column(c));
      }
      for (const auto& agg : node->aggregates) {
        if (agg.kind != AggSpec::Kind::kCount &&
            (agg.column < 0 ||
             agg.column >= node->left->output_schema.num_columns())) {
          return Status::InvalidArgument("aggregate column out of range");
        }
        cols.emplace_back(agg.name, ValueType::kDouble);
      }
      node->output_schema = Schema(std::move(cols));
      break;
    }
    default:
      return Status::Internal("unexpected operator type");
  }
  return Status::OK();
}

}  // namespace

Status Plan::Finalize(const Database& db) {
  if (root_ == nullptr) return Status::InvalidArgument("empty plan");
  // The tree may have been edited since a previous finalization: any
  // memoized identity describes the old structure.
  std::atomic_store(&identity_, std::shared_ptr<const PlanIdentity>());
  int next_id = 0;
  int next_leaf = 0;
  UQP_RETURN_IF_ERROR(FinalizeNode(root_.get(), db, &next_id, &next_leaf));
  num_operators_ = next_id;
  num_leaves_ = next_leaf;
  return Status::OK();
}

namespace {

/// Field-for-field deep copy, derived (Finalize-computed) fields included.
std::unique_ptr<PlanNode> CloneNodeFinalized(const PlanNode& node) {
  auto n = std::make_unique<PlanNode>();
  n->type = node.type;
  n->table_name = node.table_name;
  n->predicate = CloneExprTree(node.predicate);
  n->index_column = node.index_column;
  n->join_keys = node.join_keys;
  n->sort_columns = node.sort_columns;
  n->group_columns = node.group_columns;
  n->aggregates = node.aggregates;
  n->id = node.id;
  n->output_schema = node.output_schema;
  n->leaf_begin = node.leaf_begin;
  n->leaf_end = node.leaf_end;
  n->has_aggregate_below = node.has_aggregate_below;
  n->leaf_row_product = node.leaf_row_product;
  if (node.left != nullptr) n->left = CloneNodeFinalized(*node.left);
  if (node.right != nullptr) n->right = CloneNodeFinalized(*node.right);
  return n;
}

}  // namespace

Plan Plan::Clone() const {
  Plan copy;
  if (root_ != nullptr) copy.root_ = CloneNodeFinalized(*root_);
  copy.num_operators_ = num_operators_;
  copy.num_leaves_ = num_leaves_;
  // The copy is structurally identical by construction: share the interned
  // identity instead of re-serializing it on the clone's first request.
  copy.identity_ = std::atomic_load(&identity_);
  return copy;
}

std::shared_ptr<const PlanIdentity> Plan::Identity() const {
  auto memo = std::atomic_load_explicit(&identity_, std::memory_order_acquire);
  if (memo != nullptr) return memo;
  auto fresh = std::make_shared<const PlanIdentity>(
      PlanIdentity{PlanFingerprint(*this), PlanStructuralKey(*this)});
  // First publisher wins, so every holder shares one instance; a losing
  // racer adopts the winner's copy (both computed the same bytes).
  std::shared_ptr<const PlanIdentity> expected;
  if (std::atomic_compare_exchange_strong_explicit(
          &identity_, &expected,
          std::shared_ptr<const PlanIdentity>(fresh),
          std::memory_order_acq_rel, std::memory_order_acquire)) {
    return fresh;
  }
  return expected;
}

std::vector<const PlanNode*> Plan::NodesPreorder() const {
  std::vector<const PlanNode*> nodes;
  std::function<void(const PlanNode*)> visit = [&](const PlanNode* n) {
    if (n == nullptr) return;
    nodes.push_back(n);
    visit(n->left.get());
    visit(n->right.get());
  };
  visit(root_.get());
  return nodes;
}

std::vector<const PlanNode*> Plan::Leaves() const {
  std::vector<const PlanNode*> leaves;
  for (const PlanNode* n : NodesPreorder()) {
    if (IsScan(n->type)) leaves.push_back(n);
  }
  return leaves;
}

std::string Plan::ToString() const {
  std::string out;
  std::function<void(const PlanNode*, int)> visit = [&](const PlanNode* n,
                                                        int depth) {
    if (n == nullptr) return;
    out.append(static_cast<size_t>(2 * depth), ' ');
    out += OpTypeName(n->type);
    if (IsScan(n->type)) {
      out += "(" + n->table_name;
      if (n->predicate != nullptr) {
        out += ": " + n->predicate->ToString(&n->output_schema);
      }
      out += ")";
    }
    out += " [id=" + std::to_string(n->id) + "]\n";
    visit(n->left.get(), depth + 1);
    visit(n->right.get(), depth + 1);
  };
  visit(root_.get(), 0);
  return out;
}

std::unique_ptr<PlanNode> MakeSeqScan(const std::string& table, ExprPtr predicate) {
  auto n = std::make_unique<PlanNode>();
  n->type = OpType::kSeqScan;
  n->table_name = table;
  n->predicate = std::move(predicate);
  return n;
}

std::unique_ptr<PlanNode> MakeIndexScan(const std::string& table, int column,
                                        ExprPtr predicate) {
  auto n = std::make_unique<PlanNode>();
  n->type = OpType::kIndexScan;
  n->table_name = table;
  n->index_column = column;
  n->predicate = std::move(predicate);
  return n;
}

namespace {
std::unique_ptr<PlanNode> MakeJoin(OpType type, std::unique_ptr<PlanNode> left,
                                   std::unique_ptr<PlanNode> right,
                                   std::vector<std::pair<int, int>> keys,
                                   ExprPtr residual) {
  auto n = std::make_unique<PlanNode>();
  n->type = type;
  n->left = std::move(left);
  n->right = std::move(right);
  n->join_keys = std::move(keys);
  n->predicate = std::move(residual);
  return n;
}
}  // namespace

std::unique_ptr<PlanNode> MakeHashJoin(std::unique_ptr<PlanNode> left,
                                       std::unique_ptr<PlanNode> right,
                                       std::vector<std::pair<int, int>> keys,
                                       ExprPtr residual) {
  return MakeJoin(OpType::kHashJoin, std::move(left), std::move(right),
                  std::move(keys), std::move(residual));
}

std::unique_ptr<PlanNode> MakeMergeJoin(std::unique_ptr<PlanNode> left,
                                        std::unique_ptr<PlanNode> right,
                                        std::vector<std::pair<int, int>> keys,
                                        ExprPtr residual) {
  return MakeJoin(OpType::kMergeJoin, std::move(left), std::move(right),
                  std::move(keys), std::move(residual));
}

std::unique_ptr<PlanNode> MakeNestLoopJoin(std::unique_ptr<PlanNode> left,
                                           std::unique_ptr<PlanNode> right,
                                           std::vector<std::pair<int, int>> keys,
                                           ExprPtr residual) {
  return MakeJoin(OpType::kNestLoopJoin, std::move(left), std::move(right),
                  std::move(keys), std::move(residual));
}

std::unique_ptr<PlanNode> MakeSort(std::unique_ptr<PlanNode> child,
                                   std::vector<int> sort_columns) {
  auto n = std::make_unique<PlanNode>();
  n->type = OpType::kSort;
  n->left = std::move(child);
  n->sort_columns = std::move(sort_columns);
  return n;
}

std::unique_ptr<PlanNode> MakeAggregate(std::unique_ptr<PlanNode> child,
                                        std::vector<int> group_columns,
                                        std::vector<AggSpec> aggregates) {
  auto n = std::make_unique<PlanNode>();
  n->type = OpType::kAggregate;
  n->left = std::move(child);
  n->group_columns = std::move(group_columns);
  n->aggregates = std::move(aggregates);
  return n;
}

std::unique_ptr<PlanNode> MakeMaterialize(std::unique_ptr<PlanNode> child) {
  auto n = std::make_unique<PlanNode>();
  n->type = OpType::kMaterialize;
  n->left = std::move(child);
  return n;
}

std::unique_ptr<PlanNode> ClonePlanTree(const PlanNode& node) {
  auto n = std::make_unique<PlanNode>();
  n->type = node.type;
  n->table_name = node.table_name;
  n->predicate = node.predicate;
  n->index_column = node.index_column;
  n->join_keys = node.join_keys;
  n->sort_columns = node.sort_columns;
  n->group_columns = node.group_columns;
  n->aggregates = node.aggregates;
  if (node.left != nullptr) n->left = ClonePlanTree(*node.left);
  if (node.right != nullptr) n->right = ClonePlanTree(*node.right);
  return n;
}

namespace {

uint64_t NodeFingerprint(const PlanNode& node) {
  uint64_t h = 0x2545f4914f6cdd1dULL;
  h = HashMix64(h, static_cast<uint64_t>(node.type));
  for (char c : node.table_name) {
    h = HashMix64(h, static_cast<uint64_t>(static_cast<unsigned char>(c)));
  }
  h = HashMix64(h, ExprFingerprint(node.predicate.get()));
  h = HashMix64(h, static_cast<uint64_t>(node.index_column) + 1);
  for (const auto& [l, r] : node.join_keys) {
    h = HashMix64(h, (static_cast<uint64_t>(l) << 32) |
                              static_cast<uint64_t>(static_cast<uint32_t>(r)));
  }
  for (int c : node.sort_columns) h = HashMix64(h, 0x5000 + c);
  for (int c : node.group_columns) h = HashMix64(h, 0x6000 + c);
  for (const AggSpec& a : node.aggregates) {
    h = HashMix64(h, static_cast<uint64_t>(a.kind));
    h = HashMix64(h, static_cast<uint64_t>(a.column) + 1);
  }
  // Distinct tags for left/right keep the tree shape in the hash.
  if (node.left != nullptr) {
    h = HashMix64(h, 0xa1b2c3d4e5f60718ULL ^ NodeFingerprint(*node.left));
  }
  if (node.right != nullptr) {
    h = HashMix64(h, 0x18f6e5d4c3b2a190ULL ^ NodeFingerprint(*node.right));
  }
  return h;
}

}  // namespace

uint64_t PlanFingerprint(const Plan& plan) {
  if (plan.root() == nullptr) return 0;
  return NodeFingerprint(*plan.root());
}

namespace {

void AppendKeyInt(std::string* out, int64_t v) {
  AppendKeyU64(out, static_cast<uint64_t>(v));
}

/// Mirrors NodeFingerprint field for field, but into an unambiguous byte
/// string (every variable-length field is length-prefixed) instead of a
/// lossy 64-bit mix.
void AppendNodeKey(const PlanNode& node, std::string* out) {
  out->push_back(static_cast<char>(node.type));
  AppendKeyInt(out, static_cast<int64_t>(node.table_name.size()));
  out->append(node.table_name);
  AppendExprKey(node.predicate.get(), out);
  AppendKeyInt(out, node.index_column);
  AppendKeyInt(out, static_cast<int64_t>(node.join_keys.size()));
  for (const auto& [l, r] : node.join_keys) {
    AppendKeyInt(out, l);
    AppendKeyInt(out, r);
  }
  AppendKeyInt(out, static_cast<int64_t>(node.sort_columns.size()));
  for (int c : node.sort_columns) AppendKeyInt(out, c);
  AppendKeyInt(out, static_cast<int64_t>(node.group_columns.size()));
  for (int c : node.group_columns) AppendKeyInt(out, c);
  AppendKeyInt(out, static_cast<int64_t>(node.aggregates.size()));
  for (const AggSpec& a : node.aggregates) {
    out->push_back(static_cast<char>(a.kind));
    AppendKeyInt(out, a.column);
  }
  out->push_back(node.left != nullptr ? 'L' : 'l');
  if (node.left != nullptr) AppendNodeKey(*node.left, out);
  out->push_back(node.right != nullptr ? 'R' : 'r');
  if (node.right != nullptr) AppendNodeKey(*node.right, out);
}

}  // namespace

std::string PlanStructuralKey(const Plan& plan) {
  std::string out;
  if (plan.root() != nullptr) AppendNodeKey(*plan.root(), &out);
  return out;
}

}  // namespace uqp
