#pragma once

#include <vector>

#include "engine/plan.h"

namespace uqp {

/// The five resource counters of PostgreSQL's cost model (paper Table 1):
///   ns — pages sequentially scanned   (charged c_s)
///   nr — pages randomly accessed      (charged c_r)
///   nt — tuples processed/emitted     (charged c_t)
///   ni — index entries processed      (charged c_i)
///   no — CPU operations (hash/compare)(charged c_o)
struct ResourceVector {
  double ns = 0.0;
  double nr = 0.0;
  double nt = 0.0;
  double ni = 0.0;
  double no = 0.0;

  ResourceVector& operator+=(const ResourceVector& o) {
    ns += o.ns;
    nr += o.nr;
    nt += o.nt;
    ni += o.ni;
    no += o.no;
    return *this;
  }

  /// t = ns*cs + nr*cr + nt*ct + ni*ci + no*co  (paper Eq. 1).
  double Dot(double cs, double cr, double ct, double ci, double co) const {
    return ns * cs + nr * cr + nt * ct + ni * ci + no * co;
  }

  double Get(int cost_unit) const;       ///< 0..4 = ns,nr,nt,ni,no
  void Set(int cost_unit, double v);
};

/// Engine-wide execution parameters.
struct EngineConfig {
  /// Memory budget per operator before hash joins / sorts / materializes
  /// spill to disk. Scaled down with the data (PostgreSQL default is 4MB
  /// against GB-scale data; we run 1:100 row scale).
  double work_mem_bytes = 64.0 * 1024;
};

/// Inputs the optimizer cost model needs for one operator.
struct OperatorContext {
  OpType type = OpType::kSeqScan;
  // Scans:
  double table_rows = 0.0;
  double table_pages = 0.0;
  int qual_ops = 0;         ///< comparison count of the local predicate
  // Cardinalities:
  double left_rows = 0.0;   ///< Nl (0 if leaf)
  double right_rows = 0.0;  ///< Nr (0 if unary)
  double out_rows = 0.0;    ///< M
  // Tuple widths of child outputs in bytes (spill estimation):
  double left_width = 0.0;
  double right_width = 0.0;
  /// Index scans: estimated (rows matching the index range) / (rows
  /// passing the whole predicate), >= 1. Index work scales with the range
  /// matches while M counts survivors of the residual filter, so the
  /// index counters are out_rows * ratio — still linear in the operator's
  /// own selectivity, preserving the C2 cost-function shape.
  double index_range_ratio = 1.0;
};

/// The optimizer's resource model: expected counter values as a function of
/// cardinalities. This is the function the logical-cost-function fitter
/// probes on grid points (paper §4.2, "feeding in the cost model with
/// different X's"). The executor's *actual* counters deviate from these
/// formulas (hash collisions, correlated index pages, exact sort
/// comparisons) — that deviation is one of the paper's three error sources
/// (errors in g).
ResourceVector EstimateResources(const OperatorContext& ctx,
                                 const EngineConfig& config);

/// Convenience: builds the OperatorContext for a finalized plan node given
/// per-node cardinality estimates (indexed by node id), then estimates.
ResourceVector EstimateNodeResources(const PlanNode& node, const Database& db,
                                     const std::vector<double>& rows_by_id,
                                     const EngineConfig& config);

/// Expected distinct heap pages touched when fetching `rows` random tuples
/// from a table of `pages` pages (Mackert–Lohman style approximation).
double ExpectedPageFetches(double rows, double pages);

/// Estimated index_range_ratio for an index-scan node (1.0 for other
/// nodes or when statistics are unavailable).
double IndexRangeRatio(const PlanNode& node, const Database& db);

/// The optimizer's scalar plan cost: estimated resource counters of every
/// node dotted with PostgreSQL's default charge weights (seq_page=1.0,
/// rand_page=4.0, tuple=0.01, index_tuple=0.005, operator=0.0025). This is
/// the coarse single-number signal the cost-only scheduling baseline ranks
/// by, and the degraded-mode predictor falls back on when sampling fails.
double OptimizerScalarCost(const Plan& plan, const Database& db);

}  // namespace uqp
