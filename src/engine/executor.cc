#include "engine/executor.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <limits>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/logging.h"

namespace uqp {

int ResolveNumThreads(int num_threads) {
  if (num_threads > 0) return num_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::max(1u, hw));
}

/// Shared pull-state of one RunTasks call: threads claim indexes from
/// `next` until exhausted; the last finisher wakes the waiting caller.
struct MorselPool::Batch {
  std::atomic<int64_t> next{0};
  std::atomic<int64_t> done{0};
  int64_t total = 0;
  const std::function<void(int64_t)>* fn = nullptr;
  std::mutex mu;
  std::condition_variable cv;

  void Pull() {
    for (;;) {
      const int64_t i = next.fetch_add(1);
      if (i >= total) return;
      (*fn)(i);
      if (done.fetch_add(1) + 1 == total) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      }
    }
  }

  bool exhausted() const { return next.load() >= total; }
};

MorselPool::MorselPool(int num_threads) {
  const int n = std::max(1, ResolveNumThreads(num_threads));
  threads_.reserve(static_cast<size_t>(n - 1));
  for (int i = 0; i < n - 1; ++i) {
    threads_.emplace_back(&MorselPool::WorkerLoop, this);
  }
}

MorselPool::~MorselPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void MorselPool::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      // Prune batches every thread has already claimed out: they only sit
      // in the list to attract helpers.
      while (!active_.empty() && active_.front()->exhausted()) {
        active_.pop_front();
      }
      cv_.wait(lock, [&] {
        while (!active_.empty() && active_.front()->exhausted()) {
          active_.pop_front();
        }
        return stop_ || !active_.empty();
      });
      if (active_.empty()) return;  // stop_ set and nothing left to help
      batch = active_.front();
    }
    batch->Pull();
  }
}

void MorselPool::RunTasks(int64_t n, const std::function<void(int64_t)>& fn) {
  if (n <= 0) return;
  if (n == 1 || threads_.empty()) {
    for (int64_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->total = n;
  batch->fn = &fn;  // outlives the call: we wait for completion below
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!stop_) active_.push_back(batch);
  }
  cv_.notify_all();
  batch->Pull();  // the calling thread shards too (incl. nested calls)
  std::unique_lock<std::mutex> lock(batch->mu);
  batch->cv.wait(lock, [&] { return batch->done.load() == batch->total; });
}

namespace {

uint64_t HashKeys(RowRef row, const std::vector<int>& cols) {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (int c : cols) h = HashMix64(h, row[c].Hash());
  return h;
}

bool KeysEqual(RowRef a, const std::vector<int>& acols, RowRef b,
               const std::vector<int>& bcols) {
  for (size_t i = 0; i < acols.size(); ++i) {
    if (!a[acols[i]].Equals(b[bcols[i]])) return false;
  }
  return true;
}

/// Total order used by Sort/MergeJoin: numeric order for numbers,
/// lexicographic for strings.
bool ValueLess(const Value& a, const Value& b) {
  if (a.type == ValueType::kString && b.type == ValueType::kString) {
    if (a.s == b.s) return false;
    return a.AsString() < b.AsString();
  }
  return a.AsDouble() < b.AsDouble();
}

int ValueCompare3(const Value& a, const Value& b) {
  if (ValueLess(a, b)) return -1;
  if (ValueLess(b, a)) return 1;
  return 0;
}

double PagesFor(double rows, double width_bytes) {
  if (rows <= 0.0) return 0.0;
  return std::ceil(rows * std::max(8.0, width_bytes) / kPageSizeBytes);
}

struct GroupAccumulator {
  std::vector<Value> group_values;
  std::vector<double> sums;
  std::vector<double> mins;
  std::vector<double> maxs;
  int64_t count = 0;
};

class ExecContext {
 public:
  ExecContext(const Database* db, const ExecOptions& options, int num_operators,
              int num_leaves, TaskRunner* runner)
      : db_(db), options_(options), runner_(runner) {
    stats_.resize(static_cast<size_t>(num_operators));
    leaf_source_rows_.resize(static_cast<size_t>(num_leaves), 1.0);
  }

  const Table& SourceTable(const PlanNode& node) const {
    if (options_.leaf_overrides != nullptr) {
      const auto& overrides = *options_.leaf_overrides;
      UQP_CHECK(node.leaf_begin >= 0 &&
                node.leaf_begin < static_cast<int>(overrides.size()))
          << "leaf override vector too short";
      return *overrides[static_cast<size_t>(node.leaf_begin)];
    }
    return db_->GetTable(node.table_name);
  }

  bool prov() const { return options_.collect_provenance; }
  const EngineConfig& engine() const { return options_.engine; }
  int64_t batch() const { return std::max<int64_t>(1, options_.max_batch_size); }

  /// Intra-query fan-out is on: shard chunked loops and join children
  /// across the task runner.
  bool parallel() const { return runner_ != nullptr; }
  TaskRunner* runner() const { return runner_; }

  OpStats& stats(const PlanNode& node) {
    return stats_[static_cast<size_t>(node.id)];
  }

  void RecordLeafRows(int leaf_pos, double rows) {
    leaf_source_rows_[static_cast<size_t>(leaf_pos)] = rows;
  }
  double LeafProduct(int begin, int end) const {
    double p = 1.0;
    for (int i = begin; i < end; ++i) p *= leaf_source_rows_[static_cast<size_t>(i)];
    return p;
  }

  std::vector<OpStats> TakeStats() { return std::move(stats_); }

 private:
  const Database* db_;
  const ExecOptions& options_;
  TaskRunner* runner_;
  std::vector<OpStats> stats_;
  std::vector<double> leaf_source_rows_;
};

class NodeRunner {
 public:
  NodeRunner(ExecContext* ctx, std::vector<RowBlock>* retained)
      : ctx_(ctx), retained_(retained) {}

  StatusOr<RowBlock> Run(const PlanNode& node) {
    UQP_ASSIGN_OR_RETURN(RowBlock block, RunImpl(node));
    if (retained_ != nullptr) {
      (*retained_)[static_cast<size_t>(node.id)] = block;  // copy
    }
    return block;
  }

 private:
  StatusOr<RowBlock> RunImpl(const PlanNode& node) {
    switch (node.type) {
      case OpType::kSeqScan:
        return RunSeqScan(node);
      case OpType::kIndexScan:
        return RunIndexScan(node);
      case OpType::kHashJoin:
        return RunHashJoin(node);
      case OpType::kMergeJoin:
        return RunMergeJoin(node);
      case OpType::kNestLoopJoin:
        return RunNestLoopJoin(node);
      case OpType::kSort:
        return RunSort(node);
      case OpType::kAggregate:
        return RunAggregate(node);
      case OpType::kMaterialize:
        return RunMaterialize(node);
    }
    return Status::Internal("unknown operator type");
  }

  void AppendOutputRow(RowBlock* out, RowRef row) {
    out->values.insert(out->values.end(), row.data, row.data + row.num_columns);
  }

  /// Appends the rows of a contiguous chunk whose selection-mask lane is
  /// set, bulk-copying consecutive runs of survivors. Provenance ids are
  /// base + lane (row indexes of the source table) — or, when `rids` is
  /// non-null, come from that parallel array instead (rows gathered from
  /// non-contiguous sources, e.g. index scans).
  void AppendSelected(RowBlock* out, const Value* rows, int ncols, int64_t n,
                      const uint8_t* mask, int64_t base,
                      const uint32_t* rids = nullptr) {
    int64_t i = 0;
    while (i < n) {
      if (mask[i] == 0) {
        ++i;
        continue;
      }
      int64_t j = i + 1;
      while (j < n && mask[j] != 0) ++j;
      out->values.insert(out->values.end(), rows + i * ncols, rows + j * ncols);
      if (out->prov_width > 0) {
        if (rids != nullptr) {
          out->prov.insert(out->prov.end(), rids + i, rids + j);
        } else {
          for (int64_t r = i; r < j; ++r) {
            out->prov.push_back(static_cast<uint32_t>(base + r));
          }
        }
      }
      i = j;
    }
  }

  // ----- intra-query sharding helpers -------------------------------------
  //
  // Chunked loops fan out one task per max_batch_size-row chunk; each task
  // fills a private RowBlock (and counter partial), and the results merge
  // in chunk order. That makes the parallel run bit-identical to the
  // sequential one: the sequential loop processes the same chunks in the
  // same order, and every counter a chunk accumulates is an integer-valued
  // count (hash ops, chain visits, qual evaluations), so summing per-chunk
  // partials regroups the same double additions exactly.

  int64_t NumChunks(int64_t total) const {
    const int64_t chunk = ctx_->batch();
    return (total + chunk - 1) / chunk;
  }

  /// True when this loop of `total` rows should fan out (pool present and
  /// more than one chunk to hand out).
  bool ShouldShard(int64_t total) const {
    return ctx_->parallel() && NumChunks(total) >= 2;
  }

  /// Runs `chunk_fn(base, nb, local_block, local_stats)` for every chunk
  /// of [0, total) across the pool, then appends the chunk blocks to `out`
  /// and the counter partials to `st` in chunk order.
  void RunChunksParallel(
      int64_t total, RowBlock* out, OpStats* st,
      const std::function<void(int64_t, int64_t, RowBlock*, OpStats*)>&
          chunk_fn) {
    const int64_t chunk = ctx_->batch();
    const int64_t nchunks = NumChunks(total);
    std::vector<RowBlock> blocks(static_cast<size_t>(nchunks));
    std::vector<OpStats> partials(static_cast<size_t>(nchunks));
    ctx_->runner()->RunTasks(nchunks, [&](int64_t c) {
      const int64_t base = c * chunk;
      const int64_t nb = std::min(chunk, total - base);
      RowBlock& local = blocks[static_cast<size_t>(c)];
      local.schema = out->schema;
      local.prov_width = out->prov_width;
      chunk_fn(base, nb, &local, &partials[static_cast<size_t>(c)]);
    });
    // Merge in chunk order. The first chunk's vectors are stolen when the
    // output is still empty; the rest append after one exact reserve.
    int64_t first = 0;
    if (out->values.empty() && out->prov.empty() && nchunks > 0) {
      out->values = std::move(blocks[0].values);
      out->prov = std::move(blocks[0].prov);
      st->actual += partials[0].actual;
      first = 1;
    }
    size_t total_values = out->values.size();
    size_t total_prov = out->prov.size();
    for (int64_t c = first; c < nchunks; ++c) {
      total_values += blocks[static_cast<size_t>(c)].values.size();
      total_prov += blocks[static_cast<size_t>(c)].prov.size();
    }
    out->values.reserve(total_values);
    out->prov.reserve(total_prov);
    for (int64_t c = first; c < nchunks; ++c) {
      RowBlock& b = blocks[static_cast<size_t>(c)];
      out->values.insert(out->values.end(),
                         std::make_move_iterator(b.values.begin()),
                         std::make_move_iterator(b.values.end()));
      out->prov.insert(out->prov.end(), b.prov.begin(), b.prov.end());
      st->actual += partials[static_cast<size_t>(c)].actual;
    }
  }

  /// Runs both children of a binary operator, concurrently when the
  /// intra-query pool is on (independent subtrees touch disjoint stats /
  /// retained-block slots). Errors keep the sequential precedence: the
  /// left child's status wins.
  Status RunChildren(const PlanNode& node, RowBlock* left, RowBlock* right) {
    if (ctx_->parallel()) {
      StatusOr<RowBlock> l = Status::Internal("left child did not run");
      StatusOr<RowBlock> r = Status::Internal("right child did not run");
      ctx_->runner()->RunTasks(2, [&](int64_t i) {
        if (i == 0) {
          l = Run(*node.left);
        } else {
          r = Run(*node.right);
        }
      });
      if (!l.ok()) return l.status();
      if (!r.ok()) return r.status();
      *left = std::move(l).value();
      *right = std::move(r).value();
      return Status::OK();
    }
    UQP_ASSIGN_OR_RETURN(*left, Run(*node.left));
    UQP_ASSIGN_OR_RETURN(*right, Run(*node.right));
    return Status::OK();
  }

  /// Assembles one join output row directly in the output block: appends
  /// lrow then rrow, evaluates the residual predicate in place (rolling
  /// back on reject, charging `quals` ops), then appends provenance.
  void AppendJoinRow(RowBlock* out, int out_cols, const RowBlock& left,
                     int64_t l, const RowBlock& right, int64_t r,
                     const PlanNode& node, int quals, OpStats* st) {
    const RowRef lrow = left.row(l);
    const RowRef rrow = right.row(r);
    const size_t row_start = out->values.size();
    out->values.insert(out->values.end(), lrow.data,
                       lrow.data + lrow.num_columns);
    out->values.insert(out->values.end(), rrow.data,
                       rrow.data + rrow.num_columns);
    if (node.predicate != nullptr) {
      st->actual.no += quals;
      const RowRef jrow{out->values.data() + row_start, out_cols};
      if (!EvalPredicate(*node.predicate, jrow)) {
        out->values.resize(row_start);
        return;
      }
    }
    if (ctx_->prov()) {
      const uint32_t* lp = left.prov_row(l);
      const uint32_t* rp = right.prov_row(r);
      out->prov.insert(out->prov.end(), lp, lp + left.prov_width);
      out->prov.insert(out->prov.end(), rp, rp + right.prov_width);
    }
  }

  StatusOr<RowBlock> RunSeqScan(const PlanNode& node) {
    const Table& src = ctx_->SourceTable(node);
    OpStats& st = ctx_->stats(node);
    st.id = node.id;
    st.type = node.type;
    ctx_->RecordLeafRows(node.leaf_begin, static_cast<double>(src.num_rows()));

    RowBlock out;
    out.schema = node.output_schema;
    out.prov_width = ctx_->prov() ? 1 : 0;
    const int quals = PredicateOpCount(node.predicate.get());
    const int64_t rows = src.num_rows();
    st.actual.ns += static_cast<double>(src.num_pages());
    st.actual.nt += static_cast<double>(rows);
    st.actual.no += static_cast<double>(rows) * quals;

    const int ncols = out.schema.num_columns();
    const Value* data = src.raw_values().data();
    if (node.predicate == nullptr) {
      out.values.assign(data, data + rows * ncols);
      if (out.prov_width > 0) {
        out.prov.resize(static_cast<size_t>(rows));
        for (int64_t r = 0; r < rows; ++r) {
          out.prov[static_cast<size_t>(r)] = static_cast<uint32_t>(r);
        }
      }
    } else if (ShouldShard(rows)) {
      // Morsel-parallel filter: one task per chunk, merged in chunk order
      // (bit-identical to the sequential loop below).
      RunChunksParallel(
          rows, &out, &st,
          [&](int64_t base, int64_t nb, RowBlock* dst, OpStats*) {
            std::vector<uint8_t> mask(static_cast<size_t>(nb));
            const Value* chunk_rows = data + base * ncols;
            EvalPredicateBatch(*node.predicate, chunk_rows, ncols, nb,
                               mask.data());
            AppendSelected(dst, chunk_rows, ncols, nb, mask.data(), base);
          });
    } else {
      // Filter in chunks: evaluate the predicate column-at-a-time into a
      // selection mask, then copy survivors in runs.
      const int64_t chunk = ctx_->batch();
      std::vector<uint8_t> mask(static_cast<size_t>(std::min(chunk, rows)));
      for (int64_t base = 0; base < rows; base += chunk) {
        const int64_t nb = std::min(chunk, rows - base);
        const Value* chunk_rows = data + base * ncols;
        EvalPredicateBatch(*node.predicate, chunk_rows, ncols, nb, mask.data());
        AppendSelected(&out, chunk_rows, ncols, nb, mask.data(), base);
      }
    }
    st.out_rows = static_cast<double>(out.num_rows());
    return out;
  }

  StatusOr<RowBlock> RunIndexScan(const PlanNode& node) {
    const Table& src = ctx_->SourceTable(node);
    OpStats& st = ctx_->stats(node);
    st.id = node.id;
    st.type = node.type;
    ctx_->RecordLeafRows(node.leaf_begin, static_cast<double>(src.num_rows()));

    double lo = -std::numeric_limits<double>::infinity();
    double hi = std::numeric_limits<double>::infinity();
    bool has_range = false, pure = true;
    CollectIndexRange(node.predicate.get(), node.index_column, &lo, &hi,
                      &has_range, &pure);
    if (!has_range) {
      return Status::InvalidArgument(
          "index scan predicate has no range over the indexed column");
    }
    const std::vector<uint32_t>& index = src.OrderedIndex(node.index_column);
    const int64_t n = src.num_rows();

    // Binary search for the boundaries in the ordered index.
    auto value_at = [&src, &node](uint32_t rid) {
      return src.at(rid, node.index_column).AsDouble();
    };
    const auto begin_it =
        std::lower_bound(index.begin(), index.end(), lo,
                         [&](uint32_t rid, double v) { return value_at(rid) < v; });
    const auto end_it =
        std::upper_bound(begin_it, index.end(), hi,
                         [&](double v, uint32_t rid) { return v < value_at(rid); });

    RowBlock out;
    out.schema = node.output_schema;
    out.prov_width = ctx_->prov() ? 1 : 0;
    const int quals = PredicateOpCount(node.predicate.get());
    std::unordered_set<int64_t> pages_touched;
    const int64_t rows_per_page = src.rows_per_page();
    const int64_t matches = end_it - begin_it;
    const int ncols = out.schema.num_columns();
    const bool residual = !pure && node.predicate != nullptr;

    // Gather matched rows a chunk at a time into a contiguous block, then
    // run the residual filter column-at-a-time over the chunk and bulk-copy
    // survivor runs (mirroring the seq-scan/hash-join batched inner loops).
    if (ShouldShard(matches)) {
      // Morsel-parallel gather: chunks index the ordered-index range
      // directly; per-chunk page sets union into one set (same size in any
      // order), and chunk outputs merge in chunk order.
      std::vector<std::unordered_set<int64_t>> chunk_pages(
          static_cast<size_t>(NumChunks(matches)));
      const int64_t chunk = ctx_->batch();
      RunChunksParallel(
          matches, &out, &st,
          [&](int64_t base, int64_t nb, RowBlock* dst, OpStats*) {
            std::unordered_set<int64_t>& pages =
                chunk_pages[static_cast<size_t>(base / chunk)];
            std::vector<Value> gathered(static_cast<size_t>(nb * ncols));
            std::vector<uint32_t> rids(static_cast<size_t>(nb));
            std::vector<uint8_t> mask(static_cast<size_t>(nb), 1);
            for (int64_t i = 0; i < nb; ++i) {
              const uint32_t rid = *(begin_it + base + i);
              pages.insert(static_cast<int64_t>(rid) / rows_per_page);
              const RowRef row = src.row(rid);
              std::copy(row.data, row.data + ncols,
                        gathered.begin() + i * ncols);
              rids[static_cast<size_t>(i)] = rid;
            }
            if (residual) {
              EvalPredicateBatch(*node.predicate, gathered.data(), ncols, nb,
                                 mask.data());
            }
            AppendSelected(dst, gathered.data(), ncols, nb, mask.data(),
                           /*base=*/0, rids.data());
          });
      for (const auto& pages : chunk_pages) {
        pages_touched.insert(pages.begin(), pages.end());
      }
    } else {
      const int64_t chunk =
          std::min<int64_t>(ctx_->batch(), std::max<int64_t>(1, matches));
      std::vector<Value> gathered(static_cast<size_t>(chunk * ncols));
      std::vector<uint32_t> rids(static_cast<size_t>(chunk));
      std::vector<uint8_t> mask(static_cast<size_t>(chunk), 1);
      auto it = begin_it;
      for (int64_t base = 0; base < matches; base += chunk) {
        const int64_t nb = std::min(chunk, matches - base);
        for (int64_t i = 0; i < nb; ++i, ++it) {
          const uint32_t rid = *it;
          pages_touched.insert(static_cast<int64_t>(rid) / rows_per_page);
          const RowRef row = src.row(rid);
          std::copy(row.data, row.data + ncols, gathered.begin() + i * ncols);
          rids[static_cast<size_t>(i)] = rid;
        }
        if (residual) {
          // Residual filter: re-evaluate the full predicate on fetched rows.
          EvalPredicateBatch(*node.predicate, gathered.data(), ncols, nb,
                             mask.data());
        }
        AppendSelected(&out, gathered.data(), ncols, nb, mask.data(),
                       /*base=*/0, rids.data());
      }
    }
    st.actual.ni += static_cast<double>(matches) + std::log2(std::max<double>(2.0, static_cast<double>(n)));
    st.actual.nr += static_cast<double>(pages_touched.size());
    st.actual.nt += static_cast<double>(matches);
    st.actual.no += static_cast<double>(matches) * quals;
    st.out_rows = static_cast<double>(out.num_rows());
    return out;
  }

  StatusOr<RowBlock> RunHashJoin(const PlanNode& node) {
    RowBlock left, right;
    UQP_RETURN_IF_ERROR(RunChildren(node, &left, &right));
    OpStats& st = ctx_->stats(node);
    st.id = node.id;
    st.type = node.type;
    st.left_rows = static_cast<double>(left.num_rows());
    st.right_rows = static_cast<double>(right.num_rows());

    std::vector<int> lcols, rcols;
    for (const auto& [l, r] : node.join_keys) {
      lcols.push_back(l);
      rcols.push_back(r);
    }

    const int64_t chunk = ctx_->batch();

    // Build on the right input. Key hashing shards across the pool; the
    // chain inserts stay in build-row order (one sequential pass), so
    // every chain lists the same rids in the same order as the sequential
    // build — which is what keeps the probe output order bit-identical.
    std::unordered_map<uint64_t, std::vector<uint32_t>> table;
    table.reserve(static_cast<size_t>(right.num_rows()) * 2 + 16);
    if (ShouldShard(right.num_rows())) {
      std::vector<uint64_t> all_hashes(
          static_cast<size_t>(right.num_rows()));
      ctx_->runner()->RunTasks(NumChunks(right.num_rows()), [&](int64_t c) {
        const int64_t base = c * chunk;
        const int64_t nb = std::min(chunk, right.num_rows() - base);
        for (int64_t i = 0; i < nb; ++i) {
          all_hashes[static_cast<size_t>(base + i)] =
              HashKeys(right.row(base + i), rcols);
        }
      });
      for (int64_t r = 0; r < right.num_rows(); ++r) {
        table[all_hashes[static_cast<size_t>(r)]].push_back(
            static_cast<uint32_t>(r));
      }
      st.actual.no += static_cast<double>(right.num_rows());  // build hash ops
    } else {
      std::vector<uint64_t> hashes(static_cast<size_t>(
          std::min(chunk, std::max<int64_t>(1, right.num_rows()))));
      for (int64_t base = 0; base < right.num_rows(); base += chunk) {
        const int64_t nb = std::min(chunk, right.num_rows() - base);
        for (int64_t i = 0; i < nb; ++i) {
          hashes[static_cast<size_t>(i)] = HashKeys(right.row(base + i), rcols);
        }
        for (int64_t i = 0; i < nb; ++i) {
          table[hashes[static_cast<size_t>(i)]].push_back(
              static_cast<uint32_t>(base + i));
        }
        st.actual.no += static_cast<double>(nb);  // build-side hash ops
      }
    }

    RowBlock out;
    out.schema = node.output_schema;
    out.prov_width = ctx_->prov() ? left.prov_width + right.prov_width : 0;
    const int quals = PredicateOpCount(node.predicate.get());
    const int out_cols = out.schema.num_columns();
    // Probe in chunks: hash a chunk of probe keys, then walk the chains,
    // assembling join rows directly in the chunk's output block. The same
    // body serves both modes; sequentially it appends straight into `out`
    // chunk by chunk, in parallel each chunk fills a private block and the
    // blocks merge in chunk order — the identical sequence of appends and
    // (integer-valued) counter additions either way.
    const auto probe_chunk = [&](int64_t base, int64_t nb, RowBlock* dst,
                                 OpStats* pst) {
      std::vector<uint64_t> hashes(static_cast<size_t>(nb));
      for (int64_t i = 0; i < nb; ++i) {
        hashes[static_cast<size_t>(i)] = HashKeys(left.row(base + i), lcols);
      }
      pst->actual.no += static_cast<double>(nb);  // probe-side hash ops
      for (int64_t i = 0; i < nb; ++i) {
        auto it = table.find(hashes[static_cast<size_t>(i)]);
        if (it == table.end()) continue;
        const int64_t l = base + i;
        const RowRef lrow = left.row(l);
        for (uint32_t r : it->second) {
          pst->actual.no += 1.0;  // chain visit / key compare
          if (!KeysEqual(lrow, lcols, right.row(r), rcols)) continue;
          AppendJoinRow(dst, out_cols, left, l, right, r, node, quals, pst);
        }
      }
    };
    if (ShouldShard(left.num_rows())) {
      RunChunksParallel(left.num_rows(), &out, &st, probe_chunk);
    } else {
      for (int64_t base = 0; base < left.num_rows(); base += chunk) {
        const int64_t nb = std::min(chunk, left.num_rows() - base);
        probe_chunk(base, nb, &out, &st);
      }
    }
    st.out_rows = static_cast<double>(out.num_rows());
    st.actual.nt += st.out_rows;
    // Grace-hash spill I/O if the build side exceeds work_mem.
    const double build_bytes =
        st.right_rows * node.right->output_schema.TupleWidthBytes();
    if (build_bytes > ctx_->engine().work_mem_bytes) {
      st.actual.ns +=
          2.0 * (PagesFor(st.left_rows, node.left->output_schema.TupleWidthBytes()) +
                 PagesFor(st.right_rows, node.right->output_schema.TupleWidthBytes()));
    }
    return out;
  }

  StatusOr<RowBlock> RunMergeJoin(const PlanNode& node) {
    // Children fan out; the two-pointer merge itself is inherently ordered
    // and stays sequential (its comparison counter is defined by the
    // sequential walk).
    RowBlock left, right;
    UQP_RETURN_IF_ERROR(RunChildren(node, &left, &right));
    OpStats& st = ctx_->stats(node);
    st.id = node.id;
    st.type = node.type;
    st.left_rows = static_cast<double>(left.num_rows());
    st.right_rows = static_cast<double>(right.num_rows());

    UQP_CHECK(node.join_keys.size() == 1)
        << "merge join supports exactly one key";
    const int lc = node.join_keys[0].first;
    const int rc = node.join_keys[0].second;

    RowBlock out;
    out.schema = node.output_schema;
    out.prov_width = ctx_->prov() ? left.prov_width + right.prov_width : 0;
    const int quals = PredicateOpCount(node.predicate.get());
    const int out_cols = out.schema.num_columns();

    int64_t li = 0, ri = 0;
    const int64_t ln = left.num_rows(), rn = right.num_rows();
    while (li < ln && ri < rn) {
      st.actual.no += 1.0;
      const int cmp = ValueCompare3(left.row(li)[lc], right.row(ri)[rc]);
      if (cmp < 0) {
        ++li;
        continue;
      }
      if (cmp > 0) {
        ++ri;
        continue;
      }
      // Equal group: gather [li, le) x [ri, re).
      int64_t le = li + 1;
      while (le < ln) {
        st.actual.no += 1.0;
        if (ValueCompare3(left.row(le)[lc], left.row(li)[lc]) != 0) break;
        ++le;
      }
      int64_t re = ri + 1;
      while (re < rn) {
        st.actual.no += 1.0;
        if (ValueCompare3(right.row(re)[rc], right.row(ri)[rc]) != 0) break;
        ++re;
      }
      for (int64_t a = li; a < le; ++a) {
        for (int64_t b = ri; b < re; ++b) {
          AppendJoinRow(&out, out_cols, left, a, right, b, node, quals, &st);
        }
      }
      li = le;
      ri = re;
    }
    st.out_rows = static_cast<double>(out.num_rows());
    st.actual.nt += st.out_rows;
    return out;
  }

  StatusOr<RowBlock> RunNestLoopJoin(const PlanNode& node) {
    RowBlock left, right;
    UQP_RETURN_IF_ERROR(RunChildren(node, &left, &right));
    OpStats& st = ctx_->stats(node);
    st.id = node.id;
    st.type = node.type;
    st.left_rows = static_cast<double>(left.num_rows());
    st.right_rows = static_cast<double>(right.num_rows());

    std::vector<int> lcols, rcols;
    for (const auto& [l, r] : node.join_keys) {
      lcols.push_back(l);
      rcols.push_back(r);
    }

    RowBlock out;
    out.schema = node.output_schema;
    out.prov_width = ctx_->prov() ? left.prov_width + right.prov_width : 0;
    const int quals = PredicateOpCount(node.predicate.get());
    const int out_cols = out.schema.num_columns();
    const int64_t rn = right.num_rows();
    // Outer loop sharded over left-row chunks (output order is left-row
    // order, so chunk-order merge is bit-identical).
    const auto outer_chunk = [&](int64_t base, int64_t nb, RowBlock* dst,
                                 OpStats* pst) {
      for (int64_t l = base; l < base + nb; ++l) {
        const RowRef lrow = left.row(l);
        pst->actual.no += static_cast<double>(rn);  // per-pair key comparisons
        for (int64_t r = 0; r < rn; ++r) {
          if (!lcols.empty() && !KeysEqual(lrow, lcols, right.row(r), rcols)) {
            continue;
          }
          AppendJoinRow(dst, out_cols, left, l, right, r, node, quals, pst);
        }
      }
    };
    if (ShouldShard(left.num_rows())) {
      RunChunksParallel(left.num_rows(), &out, &st, outer_chunk);
    } else {
      outer_chunk(0, left.num_rows(), &out, &st);
    }
    st.out_rows = static_cast<double>(out.num_rows());
    st.actual.nt += st.out_rows;
    return out;
  }

  StatusOr<RowBlock> RunSort(const PlanNode& node) {
    UQP_ASSIGN_OR_RETURN(RowBlock in, Run(*node.left));
    OpStats& st = ctx_->stats(node);
    st.id = node.id;
    st.type = node.type;
    st.left_rows = static_cast<double>(in.num_rows());

    const int64_t n = in.num_rows();
    std::vector<uint32_t> order(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) order[static_cast<size_t>(i)] = static_cast<uint32_t>(i);
    int64_t comparisons = 0;
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      ++comparisons;
      const RowRef ra = in.row(a);
      const RowRef rb = in.row(b);
      for (int c : node.sort_columns) {
        const int cmp = ValueCompare3(ra[c], rb[c]);
        if (cmp != 0) return cmp < 0;
      }
      return a < b;
    });

    RowBlock out;
    out.schema = in.schema;
    out.prov_width = in.prov_width;
    out.values.reserve(in.values.size());
    out.prov.reserve(in.prov.size());
    for (uint32_t i : order) {
      AppendOutputRow(&out, in.row(i));
      if (out.prov_width > 0) {
        const uint32_t* p = in.prov_row(i);
        out.prov.insert(out.prov.end(), p, p + in.prov_width);
      }
    }
    st.actual.no += static_cast<double>(comparisons);
    st.actual.nt += static_cast<double>(n);
    const double bytes = static_cast<double>(n) * in.schema.TupleWidthBytes();
    if (bytes > ctx_->engine().work_mem_bytes) {
      st.actual.ns += 3.0 * PagesFor(static_cast<double>(n),
                                     in.schema.TupleWidthBytes());
    }
    st.out_rows = static_cast<double>(n);
    return out;
  }

  StatusOr<RowBlock> RunAggregate(const PlanNode& node) {
    UQP_ASSIGN_OR_RETURN(RowBlock in, Run(*node.left));
    OpStats& st = ctx_->stats(node);
    st.id = node.id;
    st.type = node.type;
    st.left_rows = static_cast<double>(in.num_rows());

    const size_t nagg = node.aggregates.size();
    std::unordered_map<uint64_t, std::vector<GroupAccumulator>> groups;
    for (int64_t r = 0; r < in.num_rows(); ++r) {
      const RowRef row = in.row(r);
      st.actual.no += 1.0;  // group hash / transition op
      const uint64_t h = HashKeys(row, node.group_columns);
      auto& bucket = groups[h];
      GroupAccumulator* acc = nullptr;
      for (auto& cand : bucket) {
        bool same = true;
        for (size_t g = 0; g < node.group_columns.size(); ++g) {
          if (!cand.group_values[g].Equals(row[node.group_columns[g]])) {
            same = false;
            break;
          }
        }
        if (same) {
          acc = &cand;
          break;
        }
      }
      if (acc == nullptr) {
        bucket.emplace_back();
        acc = &bucket.back();
        for (int g : node.group_columns) acc->group_values.push_back(row[g]);
        acc->sums.assign(nagg, 0.0);
        acc->mins.assign(nagg, std::numeric_limits<double>::infinity());
        acc->maxs.assign(nagg, -std::numeric_limits<double>::infinity());
      }
      ++acc->count;
      for (size_t a = 0; a < nagg; ++a) {
        const AggSpec& spec = node.aggregates[a];
        if (spec.kind == AggSpec::Kind::kCount) continue;
        const double v = row[spec.column].AsDouble();
        acc->sums[a] += v;
        acc->mins[a] = std::min(acc->mins[a], v);
        acc->maxs[a] = std::max(acc->maxs[a], v);
      }
    }

    RowBlock out;
    out.schema = node.output_schema;
    out.prov_width = 0;  // provenance does not flow through aggregates
    for (auto& [h, bucket] : groups) {
      (void)h;
      for (auto& acc : bucket) {
        for (const Value& v : acc.group_values) out.values.push_back(v);
        for (size_t a = 0; a < nagg; ++a) {
          const AggSpec& spec = node.aggregates[a];
          double v = 0.0;
          switch (spec.kind) {
            case AggSpec::Kind::kCount:
              v = static_cast<double>(acc.count);
              break;
            case AggSpec::Kind::kSum:
              v = acc.sums[a];
              break;
            case AggSpec::Kind::kMin:
              v = acc.mins[a];
              break;
            case AggSpec::Kind::kMax:
              v = acc.maxs[a];
              break;
            case AggSpec::Kind::kAvg:
              v = acc.count > 0 ? acc.sums[a] / static_cast<double>(acc.count) : 0.0;
              break;
          }
          out.values.push_back(Value::Double(v));
        }
        st.actual.no += 1.0;  // finalize op
      }
    }
    st.out_rows = static_cast<double>(out.num_rows());
    st.actual.nt += st.out_rows;
    return out;
  }

  StatusOr<RowBlock> RunMaterialize(const PlanNode& node) {
    UQP_ASSIGN_OR_RETURN(RowBlock in, Run(*node.left));
    OpStats& st = ctx_->stats(node);
    st.id = node.id;
    st.type = node.type;
    st.left_rows = static_cast<double>(in.num_rows());
    st.actual.no += static_cast<double>(in.num_rows());
    st.actual.nt += static_cast<double>(in.num_rows());
    const double bytes =
        static_cast<double>(in.num_rows()) * in.schema.TupleWidthBytes();
    if (bytes > ctx_->engine().work_mem_bytes) {
      st.actual.ns += 2.0 * PagesFor(static_cast<double>(in.num_rows()),
                                     in.schema.TupleWidthBytes());
    }
    st.out_rows = static_cast<double>(in.num_rows());
    return in;
  }

  ExecContext* ctx_;
  std::vector<RowBlock>* retained_;
};

}  // namespace

StatusOr<ExecResult> Executor::Execute(const Plan& plan,
                                       const ExecOptions& options) const {
  if (plan.root() == nullptr) return Status::InvalidArgument("empty plan");
  if (plan.root()->id != 0) {
    return Status::FailedPrecondition("plan must be finalized before execution");
  }
  if (options.leaf_overrides != nullptr &&
      static_cast<int>(options.leaf_overrides->size()) != plan.num_leaves()) {
    return Status::InvalidArgument("leaf override count mismatch");
  }
  // Intra-query parallelism: use the caller's pool when provided (the
  // service layer shares one pool between plan-level and intra-plan
  // tasks), otherwise spin up an ephemeral one for this Execute call.
  const int threads = ResolveNumThreads(options.num_threads);
  TaskRunner* task_runner = threads > 1 ? options.task_runner : nullptr;
  std::unique_ptr<MorselPool> owned_pool;
  if (threads > 1 && task_runner == nullptr) {
    owned_pool = std::make_unique<MorselPool>(threads);
    task_runner = owned_pool.get();
  }
  ExecContext ctx(db_, options, plan.num_operators(), plan.num_leaves(),
                  task_runner);
  ExecResult result;
  if (options.retain_intermediates) {
    result.blocks.resize(static_cast<size_t>(plan.num_operators()));
  }
  NodeRunner runner(&ctx, options.retain_intermediates ? &result.blocks : nullptr);
  UQP_ASSIGN_OR_RETURN(RowBlock output, runner.Run(*plan.root()));

  result.output = std::move(output);
  result.ops = ctx.TakeStats();
  // Fill leaf-row products per node from the bound source tables.
  for (const PlanNode* node : plan.NodesPreorder()) {
    result.ops[static_cast<size_t>(node->id)].leaf_row_product =
        ctx.LeafProduct(node->leaf_begin, node->leaf_end);
  }
  return result;
}

}  // namespace uqp
